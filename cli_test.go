package pcoup_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLIs compiles the command-line tools once into a temp dir.
func buildCLIs(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"pcc", "pcsim", "pcbench", "pcfeas", "pcgen"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

const cliDemoSrc = `
(program clidemo
  (global out (array int 6))
  (def (main)
    (forall-static (i 0 6)
      (aset out i (* i 7)))))`

// TestCLIPipeline drives the full pcc -> pcsim pipeline as a user would,
// including the diagnostics, schedule table, interleave, timeline, and
// dump views, plus pcfeas.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCLIs(t)
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "demo.pcl")
	asmPath := filepath.Join(dir, "demo.pca")
	if err := os.WriteFile(srcPath, []byte(cliDemoSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	// Compile with every diagnostic view enabled.
	cmd := exec.Command(filepath.Join(bin, "pcc"), "-diag", "-schedule", "-describe", "-o", asmPath, srcPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("pcc: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"segment", "cluster 0", "words"} {
		if !strings.Contains(text, want) {
			t.Errorf("pcc output missing %q:\n%s", want, text)
		}
	}

	// Simulate with dump, interleave, and timeline.
	cmd = exec.Command(filepath.Join(bin, "pcsim"), "-dump", "out", "-interleave", "10", "-timeline", "10", asmPath)
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("pcsim: %v\n%s", err, out)
	}
	text = string(out)
	for _, want := range []string{"cycles:", "threads:  7", "[  5] 35", "unit-to-thread interleaving", "utilization timeline"} {
		if !strings.Contains(text, want) {
			t.Errorf("pcsim output missing %q:\n%s", want, text)
		}
	}

	// A custom machine config must be honored end to end.
	cmd = exec.Command(filepath.Join(bin, "pcsim"), "-machine", "configs/baseline-triport.json", asmPath)
	if out, err = cmd.CombinedOutput(); err != nil {
		t.Fatalf("pcsim -machine: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Tri-Port") {
		t.Errorf("pcsim did not use the loaded machine:\n%s", out)
	}

	// pcfeas prints the area table.
	cmd = exec.Command(filepath.Join(bin, "pcfeas"))
	if out, err = cmd.CombinedOutput(); err != nil {
		t.Fatalf("pcfeas: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Tri-Port") {
		t.Errorf("pcfeas output:\n%s", out)
	}

	// pcbench JSON mode on the cheapest experiment.
	cmd = exec.Command(filepath.Join(bin, "pcbench"), "-exp", "table3", "-json")
	if out, err = cmd.CombinedOutput(); err != nil {
		t.Fatalf("pcbench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "\"CompileSchedule\"") {
		t.Errorf("pcbench json output:\n%s", out)
	}

	// pcgen -> pcc -> pcsim: generated benchmarks flow through the tools.
	genPath := filepath.Join(dir, "fft16.pcl")
	cmd = exec.Command(filepath.Join(bin, "pcgen"), "-bench", "fft", "-size", "16", "-kind", "sequential", "-o", genPath)
	if out, err = cmd.CombinedOutput(); err != nil {
		t.Fatalf("pcgen: %v\n%s", err, out)
	}
	genAsm := filepath.Join(dir, "fft16.pca")
	cmd = exec.Command(filepath.Join(bin, "pcc"), "-o", genAsm, genPath)
	if out, err = cmd.CombinedOutput(); err != nil {
		t.Fatalf("pcc on generated source: %v\n%s", err, out)
	}
	cmd = exec.Command(filepath.Join(bin, "pcsim"), genAsm)
	if out, err = cmd.CombinedOutput(); err != nil {
		t.Fatalf("pcsim on generated program: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "cycles:") {
		t.Errorf("pcsim output:\n%s", out)
	}

	// Error handling: a bad source file must fail with a diagnostic.
	badPath := filepath.Join(dir, "bad.pcl")
	os.WriteFile(badPath, []byte("(program p (def (main) (set x y)))"), 0o644)
	cmd = exec.Command(filepath.Join(bin, "pcc"), badPath)
	out, err = cmd.CombinedOutput()
	if err == nil {
		t.Error("pcc accepted an invalid program")
	}
	if !strings.Contains(string(out), "unknown variable") {
		t.Errorf("pcc error output:\n%s", out)
	}
}

// TestExamplesRun executes the self-verifying examples end to end.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	cases := []struct {
		path string
		want string
	}{
		{"./examples/quickstart", "sum of squares 0..9 = 285"},
		{"./examples/circuitsim", "node voltages verified"},
		{"./examples/syncqueue", "processed exactly once"},
	}
	for _, c := range cases {
		cmd := exec.Command("go", "run", c.path)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", c.path, err, out)
		}
		if !strings.Contains(string(out), c.want) {
			t.Errorf("%s output missing %q:\n%s", c.path, c.want, out)
		}
	}
}
