// Command pcserved is the processor-coupling simulation daemon: it
// serves the internal/experiments suite over an HTTP JSON API with a
// bounded worker pool, a content-addressed result cache, and Prometheus
// metrics. See docs/ARCHITECTURE.md (service layer) and cmd/pcq for the
// matching client.
//
// Usage:
//
//	pcserved -addr :8091 -cache-file pcserved.cache.json
//
// SIGINT/SIGTERM trigger a graceful shutdown: new submissions are
// refused, queued and running jobs drain (bounded by -drain-timeout),
// and the cache is persisted.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pcoup/internal/machine"
	_ "pcoup/internal/progfuzz" // registers the fuzzdiff experiment
	"pcoup/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8091", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0: GOMAXPROCS)")
	sweepParallelism := flag.Int("sweep-parallelism", 0, "cells executed in parallel within a job, bounded across all jobs (0: GOMAXPROCS, 1: sequential); outputs are byte-identical at any width")
	queueCap := flag.Int("queue", 256, "job queue capacity")
	cacheFile := flag.String("cache-file", "", "persist the result cache to this file across restarts")
	cacheMaxEntries := flag.Int("cache-max-entries", 0, "evict least-recently-used cache entries beyond this count (0: unbounded)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries beyond this many payload bytes (0: unbounded)")
	journalFile := flag.String("journal", "", "write-ahead job journal: a daemon killed mid-job resumes interrupted jobs on restart")
	retryBudget := flag.Int("retry-budget", 3, "max re-executions of a journal-recovered job before it is failed")
	retryBackoff := flag.Duration("retry-backoff", time.Second, "base backoff before re-running a repeatedly interrupted job (doubles per interruption)")
	presetDir := flag.String("presets", "", "directory of machine config JSON files served as presets (by file stem)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "default per-job deadline (jobs may set timeout_ms)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for in-flight jobs before cancelling them")
	accessLog := flag.Bool("access-log", false, "log one structured line per HTTP request (method, path, tenant, status, duration, cache)")
	flag.Parse()

	presets, err := loadPresets(*presetDir)
	if err != nil {
		log.Fatalf("pcserved: %v", err)
	}

	srv := service.New(service.Options{
		Workers:          *workers,
		SweepParallelism: *sweepParallelism,
		QueueCap:         *queueCap,
		CacheFile:        *cacheFile,
		CacheMaxEntries:  *cacheMaxEntries,
		CacheMaxBytes:    *cacheMaxBytes,
		JournalFile:      *journalFile,
		RetryBudget:      *retryBudget,
		RetryBackoff:     *retryBackoff,
		DefaultTimeout:   *jobTimeout,
		Presets:          presets,
	})
	if err := srv.Start(); err != nil {
		log.Fatalf("pcserved: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pcserved: %v", err)
	}
	handler := srv.Handler()
	if *accessLog {
		handler = service.AccessLog(handler, log.Printf)
	}
	httpSrv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("pcserved: listening on http://%s", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("pcserved: %s: draining (up to %s)", s, *drainTimeout)
	case err := <-errCh:
		log.Fatalf("pcserved: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("pcserved: drain incomplete: %v (in-flight jobs cancelled)", err)
	}
	httpSrv.Shutdown(context.Background())
	log.Printf("pcserved: stopped")
}

// loadPresets reads every *.json machine config in dir, keyed by file
// stem (figure8.json -> preset "figure8").
func loadPresets(dir string) (map[string]*machine.Config, error) {
	if dir == "" {
		return nil, nil
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	out := map[string]*machine.Config{}
	for _, p := range paths {
		cfg, err := machine.Load(p)
		if err != nil {
			return nil, fmt.Errorf("preset %s: %w", p, err)
		}
		name := strings.TrimSuffix(filepath.Base(p), ".json")
		out[name] = cfg
	}
	return out, nil
}
