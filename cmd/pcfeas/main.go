// Command pcfeas prints the feasibility model's area comparison of the
// inter-cluster communication schemes (the paper's Sections 5-6
// discussion; Section 4 quotes Tri-Port at ~28% of the fully connected
// interconnect and register file area for a four-cluster machine).
//
// Usage:
//
//	pcfeas [-machine config.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"pcoup/internal/feasibility"
	"pcoup/internal/machine"
)

func main() {
	machinePath := flag.String("machine", "", "machine configuration JSON file (default: baseline)")
	flag.Parse()

	cfg := machine.Baseline()
	if *machinePath != "" {
		var err error
		cfg, err = machine.Load(*machinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcfeas:", err)
			os.Exit(1)
		}
	}
	params := feasibility.DefaultParams()
	feasibility.Write(os.Stdout, cfg, feasibility.Compare(cfg, params))
	fmt.Println()
	fmt.Println("model: register file cell area grows with (read+write ports)^2;")
	fmt.Println("buses cost wiring proportional to their span; operation caches and")
	fmt.Println("buffers are per function unit and independent of the scheme.")
}
