// Command pcbench regenerates the tables and figures of the paper's
// evaluation section. Each experiment compiles the relevant benchmarks,
// simulates them on the appropriate machine configurations, verifies the
// computed results against Go reference implementations, and prints the
// table/figure data.
//
// The experiment menu comes from the shared registry in
// internal/experiments (also served over HTTP by pcserved); run with an
// unknown -exp value to list every experiment with a description.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pcoup/internal/experiments"
	"pcoup/internal/machine"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+experiments.UsageNames()+")")
	machinePath := flag.String("machine", "", "machine configuration JSON file (default: baseline; Figure 8 always sweeps its own machines)")
	asJSON := flag.Bool("json", false, "emit raw experiment rows as JSON instead of formatted tables")
	flag.Parse()

	// A nil base config selects each driver's own default (the baseline
	// machine for the paper's experiments; threadcap defaults to the
	// long-latency Mem1 machine).
	var baseCfg *machine.Config
	if *machinePath != "" {
		var err error
		baseCfg, err = machine.Load(*machinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			os.Exit(1)
		}
	}

	var list []experiments.Experiment
	if *exp == "all" {
		list = experiments.Registry()
	} else {
		e, ok := experiments.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n\nexperiments:\n", experiments.UnknownExperimentError(*exp))
			for _, e := range experiments.Registry() {
				fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.Name, e.Brief)
			}
			os.Exit(1)
		}
		list = []experiments.Experiment{*e}
	}

	rc := &experiments.RunContext{Cfg: baseCfg}
	for i, e := range list {
		if i > 0 {
			fmt.Println()
		}
		rows, err := e.Run(rc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rows); err != nil {
				fmt.Fprintf(os.Stderr, "pcbench: %s: %v\n", e.Name, err)
				os.Exit(1)
			}
			continue
		}
		e.Write(os.Stdout, baseCfg, rows)
	}
}
