// Command pcbench regenerates the tables and figures of the paper's
// evaluation section. Each experiment compiles the relevant benchmarks,
// simulates them on the appropriate machine configurations, verifies the
// computed results against Go reference implementations, and prints the
// table/figure data.
//
// Usage:
//
//	pcbench -exp table2|figure4|figure5|table3|figure6|figure7|figure8|registers|scaling|unroll|threadcap|stalls|feasibility|all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pcoup/internal/experiments"
	"pcoup/internal/feasibility"
	"pcoup/internal/machine"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table2, figure4, figure5, table3, figure6, figure7, figure8, registers, scaling, unroll, threadcap, stalls, feasibility, all)")
	machinePath := flag.String("machine", "", "machine configuration JSON file (default: baseline; Figure 8 always sweeps its own machines)")
	asJSON := flag.Bool("json", false, "emit raw experiment rows as JSON instead of formatted tables")
	flag.Parse()

	baseCfg := machine.Baseline()
	if *machinePath != "" {
		var err error
		baseCfg, err = machine.Load(*machinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			os.Exit(1)
		}
	}

	emit := func(rows any, write func()) error {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rows)
		}
		write()
		return nil
	}

	run := func(name string) error {
		cfg := baseCfg
		switch name {
		case "table2":
			rows, err := experiments.Table2(cfg)
			if err != nil {
				return err
			}
			return emit(rows, func() { experiments.WriteTable2(os.Stdout, rows) })
		case "figure4":
			rows, err := experiments.Table2(cfg)
			if err != nil {
				return err
			}
			return emit(rows, func() { experiments.WriteFigure4(os.Stdout, rows) })
		case "figure5":
			rows, err := experiments.Figure5(cfg)
			if err != nil {
				return err
			}
			return emit(rows, func() { experiments.WriteFigure5(os.Stdout, rows) })
		case "table3":
			res, err := experiments.Table3(cfg)
			if err != nil {
				return err
			}
			return emit(res, func() { experiments.WriteTable3(os.Stdout, res) })
		case "figure6":
			rows, err := experiments.Figure6(cfg)
			if err != nil {
				return err
			}
			return emit(rows, func() { experiments.WriteFigure6(os.Stdout, rows) })
		case "figure7":
			rows, err := experiments.Figure7(cfg)
			if err != nil {
				return err
			}
			return emit(rows, func() { experiments.WriteFigure7(os.Stdout, rows) })
		case "figure8":
			rows, err := experiments.Figure8()
			if err != nil {
				return err
			}
			return emit(rows, func() { experiments.WriteFigure8(os.Stdout, rows) })
		case "registers":
			rows, err := experiments.Registers(cfg)
			if err != nil {
				return err
			}
			return emit(rows, func() { experiments.WriteRegisters(os.Stdout, rows) })
		case "scaling":
			rows, err := experiments.Scaling(cfg)
			if err != nil {
				return err
			}
			return emit(rows, func() { experiments.WriteScaling(os.Stdout, rows) })
		case "unroll":
			rows, err := experiments.Unrolling(cfg)
			if err != nil {
				return err
			}
			return emit(rows, func() { experiments.WriteUnrolling(os.Stdout, rows) })
		case "threadcap":
			rows, err := experiments.ThreadCap(nil)
			if err != nil {
				return err
			}
			return emit(rows, func() { experiments.WriteThreadCap(os.Stdout, rows) })
		case "stalls":
			rows, err := experiments.Stalls(cfg)
			if err != nil {
				return err
			}
			return emit(rows, func() { experiments.WriteStalls(os.Stdout, rows) })
		case "feasibility":
			reports := feasibility.Compare(cfg, feasibility.DefaultParams())
			return emit(reports, func() { feasibility.Write(os.Stdout, cfg, reports) })
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table2", "figure4", "figure5", "table3", "figure6", "figure7", "figure8", "registers", "scaling", "unroll", "threadcap", "stalls", "feasibility"}
	}
	for i, n := range names {
		if i > 0 {
			fmt.Println()
		}
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}
