// Command pcbench regenerates the tables and figures of the paper's
// evaluation section. Each experiment compiles the relevant benchmarks,
// simulates them on the appropriate machine configurations, verifies the
// computed results against Go reference implementations, and prints the
// table/figure data.
//
// The experiment menu comes from the shared registry in
// internal/experiments (also served over HTTP by pcserved); run with an
// unknown -exp value to list every experiment with a description.
//
// Performance tooling: -cpuprofile/-memprofile write pprof profiles of
// the run, and `-exp perf -out BENCH_sim.json` records the simulator's
// own throughput measurements in machine-readable form.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"pcoup/internal/experiments"
	_ "pcoup/internal/fleet" // registers the fleetscale experiment
	"pcoup/internal/machine"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+experiments.UsageNames()+")")
	machinePath := flag.String("machine", "", "machine configuration JSON file (default: baseline; Figure 8 always sweeps its own machines)")
	asJSON := flag.Bool("json", false, "emit raw experiment rows as JSON instead of formatted tables")
	outPath := flag.String("out", "", "also write the experiment rows as JSON to this file (e.g. -exp perf -out BENCH_sim.json)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	os.Exit(run(*exp, *machinePath, *asJSON, *outPath, *cpuProfile, *memProfile))
}

// run holds the tool body so deferred profile writers execute before the
// process exits.
func run(exp, machinePath string, asJSON bool, outPath, cpuProfile, memProfile string) int {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pcbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pcbench:", err)
			}
		}()
	}

	// A nil base config selects each driver's own default (the baseline
	// machine for the paper's experiments; threadcap defaults to the
	// long-latency Mem1 machine).
	var baseCfg *machine.Config
	if machinePath != "" {
		var err error
		baseCfg, err = machine.Load(machinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
	}

	var list []experiments.Experiment
	if exp == "all" {
		for _, e := range experiments.Registry() {
			if !e.SkipInAll {
				list = append(list, e)
			}
		}
	} else {
		e, ok := experiments.Lookup(exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n\nexperiments:\n", experiments.UnknownExperimentError(exp))
			for _, e := range experiments.Registry() {
				fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.Name, e.Brief)
			}
			return 1
		}
		list = []experiments.Experiment{*e}
	}

	rc := &experiments.RunContext{Cfg: baseCfg}
	allRows := make(map[string]any, len(list))
	for i, e := range list {
		if i > 0 {
			fmt.Println()
		}
		rows, err := e.Run(rc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %s: %v\n", e.Name, err)
			return 1
		}
		allRows[e.Name] = rows
		if asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rows); err != nil {
				fmt.Fprintf(os.Stderr, "pcbench: %s: %v\n", e.Name, err)
				return 1
			}
			continue
		}
		e.Write(os.Stdout, baseCfg, rows)
	}

	if outPath != "" {
		// A single experiment writes its rows directly; a multi-experiment
		// run writes a name-keyed object.
		var payload any = allRows
		if len(list) == 1 {
			payload = allRows[list[0].Name]
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
	}
	return 0
}
