// Command pcbench regenerates the tables and figures of the paper's
// evaluation section. Each experiment compiles the relevant benchmarks,
// simulates them on the appropriate machine configurations, verifies the
// computed results against Go reference implementations, and prints the
// table/figure data.
//
// The experiment menu comes from the shared registry in
// internal/experiments (also served over HTTP by pcserved); run with an
// unknown -exp value to list every experiment with a description.
//
// Sweeps execute their independent cells in parallel (the -j flag;
// default GOMAXPROCS) with results merged in submission order, so the
// output bytes are identical at any width.
//
// Performance tooling: -cpuprofile/-memprofile write pprof profiles of
// the run, and `-exp perf -out BENCH_sim.json` records the simulator's
// own throughput measurements in machine-readable form. CI regression
// gating uses `-exp perf -floor lud=150000,sweep@j2=500,...` to fail
// the run when a bench's simcycles/s drops below a checked-in floor or
// the warm parallel sweep exceeds a wall-clock ceiling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"pcoup/internal/experiments"
	_ "pcoup/internal/fleet" // registers the fleetscale experiment
	"pcoup/internal/machine"
	"pcoup/internal/parexec"
	_ "pcoup/internal/progfuzz" // registers the fuzzdiff experiment
)

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+experiments.UsageNames()+")")
	jobs := flag.Int("j", 0, "parallel cell-execution width for sweeps (0: GOMAXPROCS, 1: sequential); output bytes are identical at any width")
	machinePath := flag.String("machine", "", "machine configuration JSON file (default: baseline; Figure 8 always sweeps its own machines)")
	asJSON := flag.Bool("json", false, "emit raw experiment rows as JSON instead of formatted tables")
	outPath := flag.String("out", "", "also write the experiment rows as JSON to this file (e.g. -exp perf -out BENCH_sim.json)")
	floor := flag.String("floor", "", "comma-separated bench=minCyclesPerSec pairs checked against the perf experiment's rows; exit 1 if any bench falls below its floor (e.g. -exp perf -floor lud=150000,lud@Slow=1000000)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	parexec.SetDefault(*jobs)
	os.Exit(run(*exp, *machinePath, *asJSON, *outPath, *floor, *cpuProfile, *memProfile))
}

// run holds the tool body so deferred profile writers execute before the
// process exits.
func run(exp, machinePath string, asJSON bool, outPath, floor, cpuProfile, memProfile string) int {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pcbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pcbench:", err)
			}
		}()
	}

	// A nil base config selects each driver's own default (the baseline
	// machine for the paper's experiments; threadcap defaults to the
	// long-latency Mem1 machine).
	var baseCfg *machine.Config
	if machinePath != "" {
		var err error
		baseCfg, err = machine.Load(machinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
	}

	var list []experiments.Experiment
	if exp == "all" {
		for _, e := range experiments.Registry() {
			if !e.SkipInAll {
				list = append(list, e)
			}
		}
	} else {
		e, ok := experiments.Lookup(exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n\nexperiments:\n", experiments.UnknownExperimentError(exp))
			for _, e := range experiments.Registry() {
				fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.Name, e.Brief)
			}
			return 1
		}
		list = []experiments.Experiment{*e}
	}

	rc := &experiments.RunContext{Cfg: baseCfg}
	allRows := make(map[string]any, len(list))
	for i, e := range list {
		if i > 0 {
			fmt.Println()
		}
		rows, err := e.Run(rc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %s: %v\n", e.Name, err)
			return 1
		}
		allRows[e.Name] = rows
		if asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rows); err != nil {
				fmt.Fprintf(os.Stderr, "pcbench: %s: %v\n", e.Name, err)
				return 1
			}
			continue
		}
		e.Write(os.Stdout, baseCfg, rows)
	}

	if outPath != "" {
		// A single experiment writes its rows directly; a multi-experiment
		// run writes a name-keyed object.
		var payload any = allRows
		if len(list) == 1 {
			payload = allRows[list[0].Name]
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
	}

	if floor != "" {
		if err := checkFloors(floor, allRows); err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
	}
	return 0
}

// checkFloors enforces -floor against the perf experiment's rows. Two
// pair shapes are accepted:
//
//	bench=minCyclesPerSec  — a throughput floor on a single-cell row
//	                         (e.g. lud=150000)
//	sweep@jN=maxMs         — a wall-clock ceiling on the warm Table 2
//	                         parallel-sweep row at width N
//	                         (e.g. sweep@j2=500)
//
// A missing perf run or an unknown row name is an error — a floor that
// silently checks nothing is worse than no floor.
func checkFloors(spec string, allRows map[string]any) error {
	perf, ok := allRows["perf"].(*experiments.PerfResult)
	if !ok {
		return fmt.Errorf("-floor requires the perf experiment (run with -exp perf or -exp all)")
	}
	byName := make(map[string]experiments.PerfBench, len(perf.Benches))
	for _, b := range perf.Benches {
		byName[b.Bench] = b
	}
	byJobs := make(map[int]experiments.ParallelSweepRow, len(perf.ParallelSweep))
	for _, p := range perf.ParallelSweep {
		byJobs[p.Jobs] = p
	}
	var failures []string
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, limStr, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("-floor: malformed pair %q (want bench=minCyclesPerSec or sweep@jN=maxMs)", pair)
		}
		lim, err := strconv.ParseFloat(limStr, 64)
		if err != nil || lim <= 0 {
			return fmt.Errorf("-floor: bad threshold in %q", pair)
		}
		if jobsStr, found := strings.CutPrefix(name, "sweep@j"); found {
			jobs, err := strconv.Atoi(jobsStr)
			if err != nil {
				return fmt.Errorf("-floor: bad width in %q (want sweep@jN=maxMs)", pair)
			}
			row, ok := byJobs[jobs]
			if !ok {
				return fmt.Errorf("-floor: no parallel-sweep row at width %d", jobs)
			}
			if row.WarmMs > lim {
				failures = append(failures,
					fmt.Sprintf("sweep@j%d: %.1f ms warm Table 2 above ceiling %.1f ms", jobs, row.WarmMs, lim))
			}
			continue
		}
		b, ok := byName[name]
		if !ok {
			return fmt.Errorf("-floor: no perf row named %q", name)
		}
		if b.CyclesPerSec < lim {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f simcycles/s below floor %.0f", name, b.CyclesPerSec, lim))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("throughput floor violated:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
