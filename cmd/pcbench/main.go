// Command pcbench regenerates the tables and figures of the paper's
// evaluation section. Each experiment compiles the relevant benchmarks,
// simulates them on the appropriate machine configurations, verifies the
// computed results against Go reference implementations, and prints the
// table/figure data.
//
// The experiment menu comes from the shared registry in
// internal/experiments (also served over HTTP by pcserved); run with an
// unknown -exp value to list every experiment with a description.
//
// Performance tooling: -cpuprofile/-memprofile write pprof profiles of
// the run, and `-exp perf -out BENCH_sim.json` records the simulator's
// own throughput measurements in machine-readable form. CI regression
// gating uses `-exp perf -floor lud=150000,...` to fail the run when a
// bench's simcycles/s drops below a checked-in floor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"pcoup/internal/experiments"
	_ "pcoup/internal/fleet" // registers the fleetscale experiment
	"pcoup/internal/machine"
	_ "pcoup/internal/progfuzz" // registers the fuzzdiff experiment
)

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+experiments.UsageNames()+")")
	machinePath := flag.String("machine", "", "machine configuration JSON file (default: baseline; Figure 8 always sweeps its own machines)")
	asJSON := flag.Bool("json", false, "emit raw experiment rows as JSON instead of formatted tables")
	outPath := flag.String("out", "", "also write the experiment rows as JSON to this file (e.g. -exp perf -out BENCH_sim.json)")
	floor := flag.String("floor", "", "comma-separated bench=minCyclesPerSec pairs checked against the perf experiment's rows; exit 1 if any bench falls below its floor (e.g. -exp perf -floor lud=150000,lud@Slow=1000000)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	os.Exit(run(*exp, *machinePath, *asJSON, *outPath, *floor, *cpuProfile, *memProfile))
}

// run holds the tool body so deferred profile writers execute before the
// process exits.
func run(exp, machinePath string, asJSON bool, outPath, floor, cpuProfile, memProfile string) int {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pcbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pcbench:", err)
			}
		}()
	}

	// A nil base config selects each driver's own default (the baseline
	// machine for the paper's experiments; threadcap defaults to the
	// long-latency Mem1 machine).
	var baseCfg *machine.Config
	if machinePath != "" {
		var err error
		baseCfg, err = machine.Load(machinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
	}

	var list []experiments.Experiment
	if exp == "all" {
		for _, e := range experiments.Registry() {
			if !e.SkipInAll {
				list = append(list, e)
			}
		}
	} else {
		e, ok := experiments.Lookup(exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n\nexperiments:\n", experiments.UnknownExperimentError(exp))
			for _, e := range experiments.Registry() {
				fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.Name, e.Brief)
			}
			return 1
		}
		list = []experiments.Experiment{*e}
	}

	rc := &experiments.RunContext{Cfg: baseCfg}
	allRows := make(map[string]any, len(list))
	for i, e := range list {
		if i > 0 {
			fmt.Println()
		}
		rows, err := e.Run(rc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %s: %v\n", e.Name, err)
			return 1
		}
		allRows[e.Name] = rows
		if asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rows); err != nil {
				fmt.Fprintf(os.Stderr, "pcbench: %s: %v\n", e.Name, err)
				return 1
			}
			continue
		}
		e.Write(os.Stdout, baseCfg, rows)
	}

	if outPath != "" {
		// A single experiment writes its rows directly; a multi-experiment
		// run writes a name-keyed object.
		var payload any = allRows
		if len(list) == 1 {
			payload = allRows[list[0].Name]
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
	}

	if floor != "" {
		if err := checkFloors(floor, allRows); err != nil {
			fmt.Fprintln(os.Stderr, "pcbench:", err)
			return 1
		}
	}
	return 0
}

// checkFloors enforces -floor: every `bench=minCyclesPerSec` pair must
// match a perf-experiment row whose event-core throughput is at or above
// the floor. A missing perf run or an unknown bench name is an error —
// a floor that silently checks nothing is worse than no floor.
func checkFloors(spec string, allRows map[string]any) error {
	perf, ok := allRows["perf"].(*experiments.PerfResult)
	if !ok {
		return fmt.Errorf("-floor requires the perf experiment (run with -exp perf or -exp all)")
	}
	byName := make(map[string]experiments.PerfBench, len(perf.Benches))
	for _, b := range perf.Benches {
		byName[b.Bench] = b
	}
	var failures []string
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, minStr, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("-floor: malformed pair %q (want bench=minCyclesPerSec)", pair)
		}
		min, err := strconv.ParseFloat(minStr, 64)
		if err != nil || min <= 0 {
			return fmt.Errorf("-floor: bad threshold in %q", pair)
		}
		b, ok := byName[name]
		if !ok {
			return fmt.Errorf("-floor: no perf row named %q", name)
		}
		if b.CyclesPerSec < min {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f simcycles/s below floor %.0f", name, b.CyclesPerSec, min))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("throughput floor violated:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
