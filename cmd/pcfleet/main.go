// Command pcfleet is the cache-affinity sharded gateway: it fronts a
// fleet of pcserved backends behind the same HTTP job API (pcq works
// unchanged), routing each sweep cell to its content-key owner on a
// consistent-hash ring so every backend's result cache stays hot for a
// disjoint shard of the key space. Failed backends are ejected and
// their cells fail over; stragglers past a latency quantile get one
// hedged duplicate. With -tenants, submitters authenticate by API key
// and dispatch switches from FIFO to weighted deficit round-robin:
// interactive-class cells preempt batch backlogs, per-tenant quotas
// return 429 + Retry-After, idle backends steal queued cells from
// saturated ones, and warm peer caches are probed before computing.
// See docs/ARCHITECTURE.md (fleet layer).
//
// Usage:
//
//	pcfleet -addr :8090 -backends http://127.0.0.1:8091,http://127.0.0.1:8092 \
//	        -tenants configs/tenants/example.json
//
// SIGINT/SIGTERM trigger a graceful shutdown: new submissions are
// refused and in-flight jobs drain (bounded by -drain-timeout).
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pcoup/internal/fleet"
	"pcoup/internal/tenant"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address")
	backends := flag.String("backends", "", "comma-separated pcserved base URLs (required)")
	replicas := flag.Int("replicas", 0, "virtual nodes per backend on the hash ring (0: 128)")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "health probe cadence per backend")
	ejectAfter := flag.Int("eject-after", 2, "consecutive probe failures before a backend is ejected")
	loadFactor := flag.Float64("load-factor", 1.25, "bounded-load factor c: spill past an owner above ceil(c*(inflight+1)/healthy)")
	tenantsFile := flag.String("tenants", "", "tenant config file (JSON array of specs); empty: open access, no auth")
	scheduling := flag.String("scheduling", "drr", "dispatch scheduling: drr (weighted fair) or fifo")
	backendConcurrency := flag.Int("backend-concurrency", 0, "dispatch workers per backend (0: 8)")
	stealChunk := flag.Int("steal-chunk", 0, "max cells stolen per steal from another backend's queue tail (0: 8)")
	peerFill := flag.Bool("peer-fill", true, "probe the cache owner before computing a cell elsewhere")
	highWatermark := flag.Int("high-watermark", 0, "total queued cells past which batch submissions shed (0: 4096, negative: disabled)")
	retryBudget := flag.Int("retry-budget", 3, "attempts per cell across backends before the job fails")
	retryBackoff := flag.Duration("retry-backoff", 200*time.Millisecond, "base backoff between failover attempts of one cell (doubles per attempt)")
	hedgeQuantile := flag.Float64("hedge-quantile", 0.9, "completed-cell latency quantile past which a straggler is hedged (>=1 disables)")
	hedgeMinSamples := flag.Int("hedge-min-samples", 8, "completed cells observed before hedging arms")
	presetNames := flag.String("preset-names", "", "comma-separated preset names the backends serve besides baseline")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for in-flight jobs before cancelling them")
	flag.Parse()

	urls := splitList(*backends)
	if len(urls) == 0 {
		log.Fatalf("pcfleet: -backends is required (comma-separated pcserved URLs)")
	}

	var tenants *tenant.Registry
	if *tenantsFile != "" {
		var err error
		if tenants, err = tenant.Load(*tenantsFile); err != nil {
			log.Fatalf("pcfleet: %v", err)
		}
		log.Printf("pcfleet: loaded %d tenants from %s (auth required)", len(tenants.All()), *tenantsFile)
	}

	gw, err := fleet.New(fleet.Options{
		Pool: fleet.PoolOptions{
			Backends:      urls,
			Replicas:      *replicas,
			ProbeInterval: *probeInterval,
			EjectAfter:    *ejectAfter,
			LoadFactor:    *loadFactor,
		},
		Tenants:            tenants,
		Scheduling:         *scheduling,
		BackendConcurrency: *backendConcurrency,
		StealChunk:         *stealChunk,
		NoPeerFill:         !*peerFill,
		HighWatermark:      *highWatermark,
		RetryBudget:        *retryBudget,
		RetryBackoff:       *retryBackoff,
		HedgeQuantile:      *hedgeQuantile,
		HedgeMinSamples:    *hedgeMinSamples,
		PresetNames:        splitList(*presetNames),
	})
	if err != nil {
		log.Fatalf("pcfleet: %v", err)
	}
	if err := gw.Start(); err != nil {
		log.Fatalf("pcfleet: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("pcfleet: %v", err)
	}
	httpSrv := &http.Server{Handler: gw.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("pcfleet: listening on http://%s, fronting %d backends", ln.Addr(), len(urls))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("pcfleet: %s: draining (up to %s)", s, *drainTimeout)
	case err := <-errCh:
		log.Fatalf("pcfleet: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		log.Printf("pcfleet: drain incomplete: %v (in-flight jobs cancelled)", err)
	}
	httpSrv.Shutdown(context.Background())
	log.Printf("pcfleet: stopped")
}

// splitList parses a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
