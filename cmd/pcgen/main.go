// Command pcgen emits the benchmark programs' source code, letting users
// inspect or modify the exact programs the experiments run and feed them
// through pcc/pcsim by hand.
//
// Usage:
//
//	pcgen -bench matrix|fft|lud|model|modelq [-kind sequential|threaded|ideal] [-size N] [-o out.pcl]
package main

import (
	"flag"
	"fmt"
	"os"

	"pcoup/internal/bench"
)

func main() {
	name := flag.String("bench", "", "benchmark to generate (matrix, fft, lud, model, modelq)")
	kindFlag := flag.String("kind", "threaded", "source variant: sequential, threaded, or ideal")
	size := flag.Int("size", 0, "problem size (0 = the paper's size); meaning is per benchmark: matrix N, fft points, lud mesh side, model devices")
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()

	if *name == "" {
		fmt.Fprintln(os.Stderr, "usage: pcgen -bench <name> [flags]")
		flag.Usage()
		os.Exit(2)
	}
	var kind bench.SourceKind
	switch *kindFlag {
	case "sequential":
		kind = bench.Sequential
	case "threaded":
		kind = bench.Threaded
	case "ideal":
		kind = bench.Ideal
	default:
		fatal(fmt.Errorf("unknown kind %q", *kindFlag))
	}

	var b *bench.Benchmark
	var err error
	if *size > 0 {
		b, err = bench.GetN(*name, kind, *size)
	} else {
		b, err = bench.Get(*name, kind)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.WriteString(b.Source); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcgen:", err)
	os.Exit(1)
}
