// Command pcc is the processor-coupling compiler: it translates a source
// file in the paper's Lisp-syntax language into assembly for a particular
// machine configuration, and reports schedule diagnostics (the paper's
// compiler likewise emitted assembly, a diagnostic file, and register
// usage information).
//
// Usage:
//
//	pcc [-machine config.json] [-mode single|unrestricted] [-o out.pca] [-diag] prog.pcl
//
// Without -machine the baseline machine is used; without -o the assembly
// is written to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"pcoup/internal/compiler"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

func main() {
	machinePath := flag.String("machine", "", "machine configuration JSON file (default: baseline)")
	modeFlag := flag.String("mode", "unrestricted", "cluster restriction: single or unrestricted")
	out := flag.String("o", "", "output assembly file (default: stdout)")
	diag := flag.Bool("diag", false, "print per-segment schedule diagnostics to stderr")
	schedule := flag.Bool("schedule", false, "print each segment's static schedule as a word-by-unit table to stderr (the paper's Figure 1 view)")
	describe := flag.Bool("describe", false, "print the target machine organization to stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcc [flags] prog.pcl")
		flag.Usage()
		os.Exit(2)
	}

	cfg := machine.Baseline()
	if *machinePath != "" {
		var err error
		cfg, err = machine.Load(*machinePath)
		if err != nil {
			fatal(err)
		}
	}
	var mode compiler.Mode
	switch *modeFlag {
	case "single":
		mode = compiler.SingleCluster
	case "unrestricted":
		mode = compiler.Unrestricted
	default:
		fatal(fmt.Errorf("unknown mode %q", *modeFlag))
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, diags, err := compiler.Compile(string(src), cfg, compiler.Options{Mode: mode})
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := isa.WriteText(w, prog); err != nil {
		fatal(err)
	}

	if *diag {
		fmt.Fprintf(os.Stderr, "%-24s %6s %6s %6s %10s %s\n", "segment", "words", "ops", "moves", "loopwords", "regs/cluster")
		for _, d := range diags.Segments {
			fmt.Fprintf(os.Stderr, "%-24s %6d %6d %6d %10d %v\n",
				d.Name, d.Words, d.Ops, d.Moves, d.LoopWords, d.RegsPerCluster)
		}
	}
	if *describe {
		isa.Describe(os.Stderr, cfg)
	}
	if *schedule {
		for _, seg := range prog.Segments {
			isa.WriteScheduleTable(os.Stderr, seg, cfg)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcc:", err)
	os.Exit(1)
}
