// Command pcsim is the processor-coupling simulator: it executes an
// assembly program (produced by pcc) on a machine configuration and
// reports cycle count, operation counts, function unit utilization,
// per-thread statistics, and memory system counters.
//
// Usage:
//
//	pcsim [-machine config.json] [-trace] [-max N] [-dump global[:count]] prog.pca
//
// Exit codes: 0 success, 1 simulation error (including deadlock),
// 2 usage, 3 memory addressing fault (out-of-range access).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"pcoup/internal/faults"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/memsys"
	"pcoup/internal/parexec"
	"pcoup/internal/sim"
)

func main() {
	os.Exit(run())
}

// run is the tool body. It returns the process exit code so deferred
// cleanup (trace flush, profile writers) executes on every path,
// including simulation errors.
func run() int {
	machinePath := flag.String("machine", "", "machine configuration JSON file (default: baseline)")
	trace := flag.Bool("trace", false, "print an issue/writeback trace to stderr")
	maxCycles := flag.Int64("max", 0, "abort after N cycles (0 = default limit)")
	dump := flag.String("dump", "", "after the run, dump a data segment: name or name:count")
	stats := flag.Bool("stats", false, "collect and print per-thread/per-unit stall attribution")
	traceJSON := flag.String("trace-json", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	interleave := flag.Int64("interleave", 0, "render the unit-to-thread interleaving for the first N cycles (the paper's Figure 1/2 view)")
	timeline := flag.Int64("timeline", 0, "render per-class utilization over time in buckets of N cycles")
	faultSpec := flag.String("faults", "", "fault injection spec, e.g. seed=7,mem-drop=0.01,mem-delay=0.02:8,unit=0.001:4,port=0.001:2 (overrides the machine config)")
	ckptEvery := flag.Int64("checkpoint-every", 0, "snapshot full simulator state every N cycles to -checkpoint")
	ckptPath := flag.String("checkpoint", "pcsim.ckpt.json", "checkpoint file for -checkpoint-every (latest snapshot wins)")
	resume := flag.String("resume", "", "resume from a checkpoint file instead of starting at cycle 0")
	jobs := flag.Int("j", 0, "parallel execution width for any in-process sweep (0: GOMAXPROCS); a single program run is unaffected")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	parexec.SetDefault(*jobs)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcsim [flags] prog.pca")
		flag.Usage()
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pcsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pcsim:", err)
			}
		}()
	}

	cfg := machine.Baseline()
	if *machinePath != "" {
		var err error
		cfg, err = machine.Load(*machinePath)
		if err != nil {
			return fail(err)
		}
	}
	if *faultSpec != "" {
		m, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			return fail(err)
		}
		cfg = cfg.WithFaults(m)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return fail(err)
	}
	prog, err := isa.ParseText(f)
	f.Close()
	if err != nil {
		return fail(err)
	}

	var opts []sim.Option
	if *trace {
		// The trace emits a handful of lines per simulated cycle; writing
		// them unbuffered to stderr dominated traced-run wall-clock. The
		// deferred flush runs on every exit path, including deadlock and
		// address-fault reports below.
		tw := bufio.NewWriterSize(os.Stderr, 1<<16)
		defer tw.Flush()
		opts = append(opts, sim.WithTrace(tw))
	}
	var rec *sim.InterleaveRecorder
	if *interleave > 0 {
		rec = sim.NewInterleaveRecorder(cfg, *interleave)
		opts = append(opts, rec.Hook())
	}
	var tl *sim.Timeline
	if *timeline > 0 {
		tl = sim.NewTimeline(cfg, *timeline)
		opts = append(opts, tl.Hook())
	}
	if *stats {
		opts = append(opts, sim.WithStallAttribution())
	}
	var tracer *sim.JSONTracer
	if *traceJSON != "" {
		tracer = sim.NewJSONTracer(cfg)
		opts = append(opts, sim.WithJSONTrace(tracer))
	}
	if *ckptEvery > 0 {
		opts = append(opts, sim.WithCheckpointEvery(*ckptEvery, func(ck *sim.Checkpoint) error {
			return ck.WriteFile(*ckptPath)
		}))
	}
	s, err := sim.New(cfg, prog, opts...)
	if err != nil {
		return fail(err)
	}
	if *resume != "" {
		ck, err := sim.LoadCheckpoint(*resume)
		if err != nil {
			return fail(err)
		}
		if err := s.Restore(ck); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "pcsim: resumed from %s at cycle %d\n", *resume, ck.Cycle)
	}
	res, err := s.Run(*maxCycles)
	if err != nil {
		var ae *memsys.AddressError
		if errors.As(err, &ae) {
			fmt.Fprintln(os.Stderr, "pcsim:", err)
			return 3
		}
		var de *sim.DeadlockError
		if errors.As(err, &de) {
			fmt.Fprintln(os.Stderr, "pcsim:", err)
			for _, line := range de.Threads {
				fmt.Fprintln(os.Stderr, "pcsim:   "+line)
			}
			return 1
		}
		return fail(err)
	}

	fmt.Printf("program:  %s on %s\n", prog.Name, cfg)
	fmt.Printf("cycles:   %d\n", res.Cycles)
	fmt.Printf("ops:      %d (%.2f per cycle)\n", res.Ops, float64(res.Ops)/float64(res.Cycles))
	for k := 0; k < machine.NumUnitKinds; k++ {
		kind := machine.UnitKind(k)
		fmt.Printf("%-4s util: %.3f ops/cycle (%d ops over %d units)\n",
			kind, res.Utilization(kind), res.IssuedByKind[k], cfg.CountUnits(kind))
	}
	fmt.Printf("memory:   %d loads, %d stores, %d misses, %d parked\n",
		res.Mem.Loads, res.Mem.Stores, res.Mem.Misses, res.Mem.Parked)
	if fs := res.Faults; fs != nil {
		fmt.Printf("faults:   %d wakeups dropped (%d recovered in %d watchdog retries), %d delayed, %d unit outages, %d port outages (%d writebacks rejected)\n",
			fs.MemDropped, fs.WakeupsRecovered, fs.WakeupRetries, fs.MemDelayed,
			fs.UnitOutages, fs.PortOutages, fs.OutageRejects)
	}
	fmt.Printf("threads:  %d\n", len(res.Threads))
	for _, t := range res.Threads {
		fmt.Printf("  t%-3d %-24s spawn=%-7d halt=%-7d ops=%d\n",
			t.ID, t.Segment, t.SpawnAt, t.HaltAt, t.OpsIssued)
	}
	fmt.Printf("peak registers per cluster: %v\n", res.PeakRegsPerCluster)

	if rec != nil {
		rec.Write(os.Stdout)
	}
	if tl != nil {
		tl.Write(os.Stdout, res.Cycles)
	}
	if *stats {
		sim.WriteStallReport(os.Stdout, cfg, res)
	}
	if tracer != nil {
		out, err := os.Create(*traceJSON)
		if err != nil {
			return fail(err)
		}
		if err := tracer.Write(out); err != nil {
			out.Close()
			return fail(err)
		}
		if err := out.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "pcsim: wrote trace to %s\n", *traceJSON)
	}

	if *dump != "" {
		name, count := *dump, int64(-1)
		if i := strings.IndexByte(*dump, ':'); i >= 0 {
			name = (*dump)[:i]
			n, err := strconv.ParseInt((*dump)[i+1:], 10, 64)
			if err != nil {
				return fail(fmt.Errorf("bad -dump count: %v", err))
			}
			count = n
		}
		for _, d := range prog.Data {
			if d.Name != name {
				continue
			}
			n := int64(len(d.Values))
			if count >= 0 && count < n {
				n = count
			}
			fmt.Printf("%s @%d:\n", d.Name, d.Addr)
			for i := int64(0); i < n; i++ {
				v, full := s.Memory().Peek(d.Addr + i)
				state := "full"
				if !full {
					state = "empty"
				}
				fmt.Printf("  [%3d] %-22s %s\n", i, v, state)
			}
		}
	}
	return 0
}

// fail reports err and returns the generic error exit code.
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "pcsim:", err)
	return 1
}
