// Command pcsim is the processor-coupling simulator: it executes an
// assembly program (produced by pcc) on a machine configuration and
// reports cycle count, operation counts, function unit utilization,
// per-thread statistics, and memory system counters.
//
// Usage:
//
//	pcsim [-machine config.json] [-trace] [-max N] [-dump global[:count]] prog.pca
//
// Exit codes: 0 success, 1 simulation error (including deadlock),
// 2 usage, 3 memory addressing fault (out-of-range access).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pcoup/internal/faults"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/memsys"
	"pcoup/internal/sim"
)

func main() {
	machinePath := flag.String("machine", "", "machine configuration JSON file (default: baseline)")
	trace := flag.Bool("trace", false, "print an issue/writeback trace to stderr")
	maxCycles := flag.Int64("max", 0, "abort after N cycles (0 = default limit)")
	dump := flag.String("dump", "", "after the run, dump a data segment: name or name:count")
	stats := flag.Bool("stats", false, "collect and print per-thread/per-unit stall attribution")
	traceJSON := flag.String("trace-json", "", "write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	interleave := flag.Int64("interleave", 0, "render the unit-to-thread interleaving for the first N cycles (the paper's Figure 1/2 view)")
	timeline := flag.Int64("timeline", 0, "render per-class utilization over time in buckets of N cycles")
	faultSpec := flag.String("faults", "", "fault injection spec, e.g. seed=7,mem-drop=0.01,mem-delay=0.02:8,unit=0.001:4,port=0.001:2 (overrides the machine config)")
	ckptEvery := flag.Int64("checkpoint-every", 0, "snapshot full simulator state every N cycles to -checkpoint")
	ckptPath := flag.String("checkpoint", "pcsim.ckpt.json", "checkpoint file for -checkpoint-every (latest snapshot wins)")
	resume := flag.String("resume", "", "resume from a checkpoint file instead of starting at cycle 0")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcsim [flags] prog.pca")
		flag.Usage()
		os.Exit(2)
	}

	cfg := machine.Baseline()
	if *machinePath != "" {
		var err error
		cfg, err = machine.Load(*machinePath)
		if err != nil {
			fatal(err)
		}
	}
	if *faultSpec != "" {
		m, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		cfg = cfg.WithFaults(m)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := isa.ParseText(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var opts []sim.Option
	if *trace {
		opts = append(opts, sim.WithTrace(os.Stderr))
	}
	var rec *sim.InterleaveRecorder
	if *interleave > 0 {
		rec = sim.NewInterleaveRecorder(cfg, *interleave)
		opts = append(opts, rec.Hook())
	}
	var tl *sim.Timeline
	if *timeline > 0 {
		tl = sim.NewTimeline(cfg, *timeline)
		opts = append(opts, tl.Hook())
	}
	if *stats {
		opts = append(opts, sim.WithStallAttribution())
	}
	var tracer *sim.JSONTracer
	if *traceJSON != "" {
		tracer = sim.NewJSONTracer(cfg)
		opts = append(opts, sim.WithJSONTrace(tracer))
	}
	if *ckptEvery > 0 {
		opts = append(opts, sim.WithCheckpointEvery(*ckptEvery, func(ck *sim.Checkpoint) error {
			return ck.WriteFile(*ckptPath)
		}))
	}
	s, err := sim.New(cfg, prog, opts...)
	if err != nil {
		fatal(err)
	}
	if *resume != "" {
		ck, err := sim.LoadCheckpoint(*resume)
		if err != nil {
			fatal(err)
		}
		if err := s.Restore(ck); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pcsim: resumed from %s at cycle %d\n", *resume, ck.Cycle)
	}
	res, err := s.Run(*maxCycles)
	if err != nil {
		var ae *memsys.AddressError
		if errors.As(err, &ae) {
			fmt.Fprintln(os.Stderr, "pcsim:", err)
			os.Exit(3)
		}
		var de *sim.DeadlockError
		if errors.As(err, &de) {
			fmt.Fprintln(os.Stderr, "pcsim:", err)
			for _, line := range de.Threads {
				fmt.Fprintln(os.Stderr, "pcsim:   "+line)
			}
			os.Exit(1)
		}
		fatal(err)
	}

	fmt.Printf("program:  %s on %s\n", prog.Name, cfg)
	fmt.Printf("cycles:   %d\n", res.Cycles)
	fmt.Printf("ops:      %d (%.2f per cycle)\n", res.Ops, float64(res.Ops)/float64(res.Cycles))
	for k := 0; k < machine.NumUnitKinds; k++ {
		kind := machine.UnitKind(k)
		fmt.Printf("%-4s util: %.3f ops/cycle (%d ops over %d units)\n",
			kind, res.Utilization(kind), res.IssuedByKind[k], cfg.CountUnits(kind))
	}
	fmt.Printf("memory:   %d loads, %d stores, %d misses, %d parked\n",
		res.Mem.Loads, res.Mem.Stores, res.Mem.Misses, res.Mem.Parked)
	if fs := res.Faults; fs != nil {
		fmt.Printf("faults:   %d wakeups dropped (%d recovered in %d watchdog retries), %d delayed, %d unit outages, %d port outages (%d writebacks rejected)\n",
			fs.MemDropped, fs.WakeupsRecovered, fs.WakeupRetries, fs.MemDelayed,
			fs.UnitOutages, fs.PortOutages, fs.OutageRejects)
	}
	fmt.Printf("threads:  %d\n", len(res.Threads))
	for _, t := range res.Threads {
		fmt.Printf("  t%-3d %-24s spawn=%-7d halt=%-7d ops=%d\n",
			t.ID, t.Segment, t.SpawnAt, t.HaltAt, t.OpsIssued)
	}
	fmt.Printf("peak registers per cluster: %v\n", res.PeakRegsPerCluster)

	if rec != nil {
		rec.Write(os.Stdout)
	}
	if tl != nil {
		tl.Write(os.Stdout, res.Cycles)
	}
	if *stats {
		sim.WriteStallReport(os.Stdout, cfg, res)
	}
	if tracer != nil {
		out, err := os.Create(*traceJSON)
		if err != nil {
			fatal(err)
		}
		if err := tracer.Write(out); err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pcsim: wrote trace to %s\n", *traceJSON)
	}

	if *dump != "" {
		name, count := *dump, int64(-1)
		if i := strings.IndexByte(*dump, ':'); i >= 0 {
			name = (*dump)[:i]
			n, err := strconv.ParseInt((*dump)[i+1:], 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -dump count: %v", err))
			}
			count = n
		}
		for _, d := range prog.Data {
			if d.Name != name {
				continue
			}
			n := int64(len(d.Values))
			if count >= 0 && count < n {
				n = count
			}
			fmt.Printf("%s @%d:\n", d.Name, d.Addr)
			for i := int64(0); i < n; i++ {
				v, full := s.Memory().Peek(d.Addr + i)
				state := "full"
				if !full {
					state = "empty"
				}
				fmt.Printf("  [%3d] %-22s %s\n", i, v, state)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcsim:", err)
	os.Exit(1)
}
