// Command pcq is the client for pcserved and pcfleet. Both daemons
// serve the same job API, so -server may point at a single simulation
// daemon or at the fleet gateway fronting many of them. pcq submits
// simulation jobs, polls them to completion, streams sweep cells as
// NDJSON, and scrapes the health, readiness, and metrics endpoints.
//
// Usage:
//
//	pcq [-server URL] submit (-exp NAME | -bench NAME [-mode MODE] | -sweep MIN:MAX) [flags]
//	pcq [-server URL] run [flags] FILE.pcl
//	pcq [-server URL] flood -programs N [flags]
//	pcq [-server URL] get|wait|cancel|stream JOB-ID
//	pcq [-server URL] list|metrics|health|ready
//
// Examples:
//
//	pcq submit -exp figure8 -wait     # full Figure 8 grid; cached on repeat
//	pcq submit -bench fft -mode TPE -trace -wait
//	pcq submit -sweep 1:4 -benches fft,matrix
//	pcq run -verify myprog.pcl        # compile-and-run an untrusted source program
//	pcq flood -programs 50 -verify    # generated-program traffic for chaos/load runs
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"pcoup/internal/machine"
	"pcoup/internal/progfuzz"
	"pcoup/internal/service"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8091", "pcserved base URL")
	retries := flag.Int("retries", 3, "retries per request on transient failures (connection errors, 429, 5xx)")
	retryMaxWait := flag.Duration("retry-max-wait", 10*time.Second, "cap on a single retry backoff sleep")
	tenantKey := flag.String("tenant-key", "", "tenant API key for an authenticated gateway (default: $PCQ_TENANT_KEY)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	key := *tenantKey
	if key == "" {
		key = os.Getenv("PCQ_TENANT_KEY")
	}
	c := &client{base: strings.TrimRight(*server, "/"), retries: *retries, maxWait: *retryMaxWait, tenantKey: key}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = c.submit(args)
	case "run":
		err = c.run(args)
	case "flood":
		err = c.flood(args)
	case "get":
		err = c.getCmd(args)
	case "wait":
		err = c.waitCmd(args)
	case "cancel":
		err = c.cancel(args)
	case "stream":
		err = c.stream(args)
	case "list":
		err = c.list()
	case "metrics":
		err = c.text("/metrics")
	case "health":
		err = c.text("/healthz")
	case "ready":
		err = c.ready()
	default:
		fmt.Fprintf(os.Stderr, "pcq: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcq: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: pcq [-server URL] COMMAND [flags]

commands:
  submit    submit a job (-exp NAME | -bench NAME | -sweep MIN:MAX | -f spec.json)
  run       compile-and-run a source program file ("-" for stdin); 422 on limit/syntax rejection
  flood     submit -programs N generated fuzz programs (load/chaos traffic)
  get       print a job's status and result
  wait      poll a job until it finishes; non-zero exit on failure
  cancel    cancel a queued or running job
  stream    follow a job's per-cell results as NDJSON
  list      list all jobs
  metrics   dump Prometheus metrics
  health    check daemon liveness (always 200 while serving)
  ready     check readiness; non-zero exit while draining or unroutable
`)
}

type client struct {
	base      string
	retries   int           // additional attempts after the first
	maxWait   time.Duration // cap on any single backoff sleep
	backoff   time.Duration // base backoff (exposed for tests)
	tenantKey string        // sent as Authorization: Bearer on every request
}

// do performs one API call, decoding the error body on non-2xx.
// Transient failures — transport errors (connection refused or reset
// while the daemon restarts), 429, and 5xx responses — are retried up to
// c.retries times with exponential backoff plus jitter; a Retry-After
// header on 429/503 is honored when it asks for longer. The request body
// is replayed from bytes on every attempt.
func (c *client) do(method, path string, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		c.authorize(req)
		resp, err := http.DefaultClient.Do(req)
		var after time.Duration
		switch {
		case err != nil:
			lastErr = err
		case transientStatus(resp.StatusCode):
			after = retryAfter(resp)
			lastErr = apiError(resp)
		case resp.StatusCode >= 300:
			return nil, apiError(resp)
		default:
			return resp, nil
		}
		if attempt >= c.retries {
			if attempt > 0 {
				return nil, fmt.Errorf("after %d attempts: %w", attempt+1, lastErr)
			}
			return nil, lastErr
		}
		time.Sleep(c.sleepFor(attempt, after))
	}
}

// transientStatus reports whether a response status is worth retrying:
// the daemon shedding load (429), or server-side failures (5xx) such as
// 503 while draining.
func transientStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// apiError reads, closes, and renders a non-2xx response body.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, eb.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
}

// retryAfter parses a Retry-After header (delay-seconds or HTTP-date).
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// sleepFor computes the backoff before retry number attempt+1: an
// exponentially growing base with ±50% jitter (decorrelating clients
// that all watched the same daemon die), raised to the server's
// Retry-After when it asks for longer, capped at maxWait.
func (c *client) sleepFor(attempt int, after time.Duration) time.Duration {
	base := c.backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base << uint(attempt)
	if d > c.maxWait {
		d = c.maxWait
	}
	d = d/2 + time.Duration(rand.Int64N(int64(d)/2+1)) // [d/2, d]
	if after > d {
		d = after
	}
	if d > c.maxWait {
		d = c.maxWait
	}
	return d
}

// getJSON decodes a 2xx response into v.
func (c *client) getJSON(method, path string, body []byte, v any) error {
	resp, err := c.do(method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	specFile := fs.String("f", "", "job spec JSON file (\"-\" for stdin); overrides other spec flags")
	exp := fs.String("exp", "", "experiment name (see pcbench -exp)")
	benchName := fs.String("bench", "", "single-cell benchmark name")
	mode := fs.String("mode", "Coupled", "machine mode for -bench (SEQ|STS|TPE|Coupled|Ideal)")
	sweep := fs.String("sweep", "", "unit-mix sweep IU range MIN:MAX (FPU range mirrors it)")
	fpus := fs.String("fpus", "", "sweep FPU range MIN:MAX (defaults to -sweep)")
	benches := fs.String("benches", "", "comma-separated benchmarks for -sweep (default: all)")
	preset := fs.String("preset", "", "named machine preset on the server")
	machineFile := fs.String("machine", "", "machine config JSON file, sent inline")
	maxCycles := fs.Int64("max-cycles", 0, "per-cell cycle budget (0: simulator default)")
	trace := fs.Bool("trace", false, "include a Chrome trace document in the cell result")
	timeoutMS := fs.Int64("timeout-ms", 0, "job deadline in milliseconds (0: server default)")
	wait := fs.Bool("wait", false, "poll until the job finishes and print the final state")
	poll := fs.Duration("poll", 150*time.Millisecond, "poll interval for -wait")
	fs.Parse(args)

	var spec service.JobSpec
	if *specFile != "" {
		data, err := readFileOrStdin(*specFile)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("parsing %s: %w", *specFile, err)
		}
	} else {
		switch {
		case *exp != "":
			spec.Experiment = *exp
		case *benchName != "":
			spec.Cell = &service.CellSpec{Bench: *benchName, Mode: *mode}
		case *sweep != "":
			sw := &service.SweepSpec{}
			var err error
			if sw.MinIU, sw.MaxIU, err = parseRange(*sweep); err != nil {
				return fmt.Errorf("-sweep: %w", err)
			}
			if *fpus != "" {
				if sw.MinFPU, sw.MaxFPU, err = parseRange(*fpus); err != nil {
					return fmt.Errorf("-fpus: %w", err)
				}
			}
			if *benches != "" {
				sw.Benches = strings.Split(*benches, ",")
			}
			spec.Sweep = sw
		default:
			return fmt.Errorf("submit needs one of -f, -exp, -bench, -sweep")
		}
		spec.Preset = *preset
		if *machineFile != "" {
			cfg, err := machine.Load(*machineFile)
			if err != nil {
				return err
			}
			spec.Machine = cfg
		}
		spec.Options = service.SimOptions{MaxCycles: *maxCycles, Trace: *trace}
		spec.TimeoutMS = *timeoutMS
	}

	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	var view service.JobView
	if err := c.getJSON("POST", "/v1/jobs", body, &view); err != nil {
		return err
	}
	if !*wait {
		printJSON(view)
		return nil
	}
	return c.waitFor(view.ID, *poll)
}

// run submits one source program through POST /v1/programs and, by
// default, polls it to completion. A 422 (limit or syntax rejection) is
// not retried — the program itself is at fault.
func (c *client) run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	mode := fs.String("mode", "Coupled", "compile mode (SEQ|STS|TPE|Coupled|Ideal)")
	verify := fs.Bool("verify", false, "server-side check against the reference interpreter (race-free programs)")
	disableOpt := fs.Bool("disable-opt", false, "disable the scalar optimization passes")
	autoUnroll := fs.Int("auto-unroll", 0, "auto-unroll budget for constant-bound loops (0: off)")
	preset := fs.String("preset", "", "named machine preset on the server")
	machineFile := fs.String("machine", "", "machine config JSON file, sent inline")
	maxCycles := fs.Int64("max-cycles", 0, "simulation cycle budget (0: server default)")
	timeoutMS := fs.Int64("timeout-ms", 0, "job deadline in milliseconds (0: server default)")
	noWait := fs.Bool("no-wait", false, "print the accepted view without polling")
	stream := fs.Bool("stream", false, "follow the job's NDJSON stream instead of polling")
	poll := fs.Duration("poll", 150*time.Millisecond, "poll interval")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: pcq run [flags] FILE.pcl (\"-\" for stdin)")
	}
	src, err := readFileOrStdin(fs.Arg(0))
	if err != nil {
		return err
	}
	req := service.ProgramRequest{
		ProgramSpec: service.ProgramSpec{
			Source: string(src), Mode: *mode,
			DisableOpt: *disableOpt, AutoUnroll: *autoUnroll, Verify: *verify,
		},
		Preset:    *preset,
		Options:   service.SimOptions{MaxCycles: *maxCycles},
		TimeoutMS: *timeoutMS,
	}
	if *machineFile != "" {
		cfg, err := machine.Load(*machineFile)
		if err != nil {
			return err
		}
		req.Machine = cfg
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	var view service.JobView
	if err := c.getJSON("POST", "/v1/programs", body, &view); err != nil {
		return err
	}
	switch {
	case *noWait:
		printJSON(view)
		return nil
	case *stream:
		return c.stream([]string{view.ID})
	default:
		return c.waitFor(view.ID, *poll)
	}
}

// floodSummary is flood's final report: terminal-state counts over the
// submitted programs.
type floodSummary struct {
	Programs       int `json:"programs"`
	Done           int `json:"done"`
	CacheHits      int `json:"cache_hits"`
	Failed         int `json:"failed"`
	BudgetExceeded int `json:"budget_exceeded"`
	Cancelled      int `json:"cancelled"`
	Rejected       int `json:"rejected"` // refused at submission (422 etc.)
}

// flood generates -programs seeded fuzz programs and pushes them
// through the server as program jobs — load and chaos traffic whose
// results are still fully checkable (-verify turns on the server-side
// differential oracle). Failed jobs fail the process: on a healthy
// fleet every generated program must complete.
func (c *client) flood(args []string) error {
	fs := flag.NewFlagSet("flood", flag.ExitOnError)
	programs := fs.Int("programs", 0, "number of generated programs to submit")
	seed := fs.Int64("seed", 0, "base generator seed")
	wide := fs.Bool("wide", false, "wide variant: hundreds-of-threads foralls over large arrays")
	verify := fs.Bool("verify", false, "server-side verify every program against the interpreter")
	conc := fs.Int("concurrency", 8, "concurrent in-flight jobs")
	maxCycles := fs.Int64("max-cycles", 0, "per-program cycle budget (0: server default)")
	poll := fs.Duration("poll", 100*time.Millisecond, "poll interval per job")
	fs.Parse(args)
	if *programs <= 0 {
		return fmt.Errorf("flood needs -programs N")
	}
	// The wide generator caps arrays at 256 so forall-static fan-out
	// stays within the service's 512-thread limit.
	genOpts := progfuzz.GenOptions{}
	if *wide {
		genOpts = progfuzz.GenOptions{MaxArraySize: 256, WideForall: true}
	}

	type outcome struct {
		view     service.JobView
		rejected bool
		err      error
	}
	sem := make(chan struct{}, max(*conc, 1))
	results := make(chan outcome, *programs)
	for i := 0; i < *programs; i++ {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			src := progfuzz.GenerateOpts(*seed+int64(i), genOpts)
			req := service.ProgramRequest{
				ProgramSpec: service.ProgramSpec{Source: src, Verify: *verify},
				Options:     service.SimOptions{MaxCycles: *maxCycles},
			}
			body, err := json.Marshal(req)
			if err != nil {
				results <- outcome{err: err}
				return
			}
			var view service.JobView
			if err := c.getJSON("POST", "/v1/programs", body, &view); err != nil {
				results <- outcome{rejected: true, err: err}
				return
			}
			view, err = c.pollJob(view.ID, *poll)
			results <- outcome{view: view, err: err}
		}(i)
	}

	var sum floodSummary
	sum.Programs = *programs
	var firstErr error
	for i := 0; i < *programs; i++ {
		res := <-results
		switch {
		case res.rejected:
			sum.Rejected++
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		case res.err != nil:
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		switch res.view.State {
		case service.JobDone:
			sum.Done++
			if res.view.CacheHit {
				sum.CacheHits++
			}
		case service.JobFailed:
			sum.Failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("job %s failed: %s", res.view.ID, res.view.Error)
			}
		case service.JobBudgetExceeded:
			sum.BudgetExceeded++
		case service.JobCancelled:
			sum.Cancelled++
		}
	}
	printJSON(sum)
	if sum.Failed > 0 || sum.Rejected > 0 {
		return fmt.Errorf("flood: %d failed, %d rejected (first: %v)", sum.Failed, sum.Rejected, firstErr)
	}
	return firstErr
}

func parseRange(s string) (min, max int, err error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		hi = lo
	}
	if min, err = strconv.Atoi(lo); err != nil {
		return 0, 0, fmt.Errorf("bad range %q", s)
	}
	if max, err = strconv.Atoi(hi); err != nil {
		return 0, 0, fmt.Errorf("bad range %q", s)
	}
	return min, max, nil
}

func readFileOrStdin(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// needID pulls the job id argument off args.
func needID(cmd string, args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("usage: pcq %s JOB-ID", cmd)
	}
	return args[0], nil
}

func (c *client) getCmd(args []string) error {
	id, err := needID("get", args)
	if err != nil {
		return err
	}
	var view service.JobView
	if err := c.getJSON("GET", "/v1/jobs/"+id, nil, &view); err != nil {
		return err
	}
	printJSON(view)
	return nil
}

func (c *client) waitCmd(args []string) error {
	id, err := needID("wait", args)
	if err != nil {
		return err
	}
	return c.waitFor(id, 150*time.Millisecond)
}

// waitFor polls until the job is terminal; failure and cancellation are
// process failures.
func (c *client) waitFor(id string, interval time.Duration) error {
	view, err := c.pollJob(id, interval)
	if err != nil {
		return err
	}
	printJSON(view)
	if view.State != service.JobDone {
		return fmt.Errorf("job %s %s: %s", id, view.State, view.Error)
	}
	return nil
}

// pollJob polls until the job is terminal and returns the final view.
func (c *client) pollJob(id string, interval time.Duration) (service.JobView, error) {
	for {
		var view service.JobView
		if err := c.getJSON("GET", "/v1/jobs/"+id, nil, &view); err != nil {
			return view, err
		}
		if view.State.Terminal() {
			return view, nil
		}
		time.Sleep(interval)
	}
}

func (c *client) cancel(args []string) error {
	id, err := needID("cancel", args)
	if err != nil {
		return err
	}
	var view service.JobView
	if err := c.getJSON("DELETE", "/v1/jobs/"+id, nil, &view); err != nil {
		return err
	}
	printJSON(view)
	return nil
}

func (c *client) stream(args []string) error {
	id, err := needID("stream", args)
	if err != nil {
		return err
	}
	resp, err := c.do("GET", "/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func (c *client) list() error {
	var views []service.JobView
	if err := c.getJSON("GET", "/v1/jobs", nil, &views); err != nil {
		return err
	}
	printJSON(views)
	return nil
}

// authorize attaches the tenant API key, when configured. Every
// command sends it — the gateway's health endpoints ignore it, and a
// keyed gateway rejects unauthenticated job requests.
func (c *client) authorize(req *http.Request) {
	if c.tenantKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.tenantKey)
	}
}

// ready probes /readyz once, without the retry loop (a readiness check
// must report "not ready" promptly, not wait a drain out): prints the
// body either way and fails the process on a non-200.
func (c *client) ready() error {
	req, err := http.NewRequest("GET", c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	c.authorize(req)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("not ready: %s", resp.Status)
	}
	return nil
}

func (c *client) text(path string) error {
	resp, err := c.do("GET", path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
