package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pcoup/internal/fleet"
	"pcoup/internal/service"
	"pcoup/internal/tenant"
)

// startServed boots an in-process pcserved and returns its base URL.
func startServed(t *testing.T) string {
	t.Helper()
	srv := service.New(service.Options{Workers: 2})
	if err := srv.Start(); err != nil {
		t.Fatalf("service Start: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ts.URL
}

// startFleet boots a gateway over the backends, optionally keyed.
func startFleet(t *testing.T, backends []string, reg *tenant.Registry) string {
	t.Helper()
	gw, err := fleet.New(fleet.Options{
		Pool:    fleet.PoolOptions{Backends: backends, ProbeInterval: 100 * time.Millisecond},
		Tenants: reg,
	})
	if err != nil {
		t.Fatalf("fleet New: %v", err)
	}
	if err := gw.Start(); err != nil {
		t.Fatalf("gateway Start: %v", err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		gw.Shutdown(ctx)
	})
	return ts.URL
}

// e2eClient is a pcq client pointed at base with fast polling-friendly
// retry settings.
func e2eClient(base, key string) *client {
	return &client{base: base, retries: 2, maxWait: 100 * time.Millisecond, backoff: 5 * time.Millisecond, tenantKey: key}
}

// writeProgram drops source into a temp .pcl file and returns its path.
func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.pcl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const e2eProgram = `
(program pcqsmoke
  (global a (array int 4) (init 3 1 4 1))
  (global out (array int 1))
  (def (main)
    (set s 0)
    (for (i 0 4) (set s (+ s (aref a i))))
    (aset out 0 s)))`

const e2eSpin = `
(program spin
  (global out (array int 1))
  (def (main)
    (set s 0)
    (for (i 0 100000) (set s (+ s i)))
    (aset out 0 s)))`

// TestRunAgainstPcserved drives pcq run end to end against a live
// daemon: a valid program completes, a budget blowout exits non-zero
// naming budget_exceeded, and a malformed program is a 422 rejection.
func TestRunAgainstPcserved(t *testing.T) {
	c := e2eClient(startServed(t), "")

	if err := c.run([]string{"-verify", "-poll", "10ms", writeProgram(t, e2eProgram)}); err != nil {
		t.Fatalf("run valid program: %v", err)
	}

	err := c.run([]string{"-max-cycles", "500", "-poll", "10ms", writeProgram(t, e2eSpin)})
	if err == nil || !strings.Contains(err.Error(), string(service.JobBudgetExceeded)) {
		t.Fatalf("over-budget run: err = %v, want budget_exceeded", err)
	}

	err = c.run([]string{"-poll", "10ms", writeProgram(t, strings.Repeat("(", 50_000))})
	if err == nil || !strings.Contains(err.Error(), "422") {
		t.Fatalf("malformed run: err = %v, want a 422 rejection", err)
	}
}

// TestRunThroughFleet drives pcq run through a keyed two-backend
// gateway: the tenant key is honored (401 without it), the program
// completes, and an identical rerun is served from a backend cache.
func TestRunThroughFleet(t *testing.T) {
	reg, err := tenant.NewRegistry([]tenant.Spec{
		{Name: "alice", Key: "alice-key", Weight: 8, Class: "interactive"},
	})
	if err != nil {
		t.Fatal(err)
	}
	gwURL := startFleet(t, []string{startServed(t), startServed(t)}, reg)
	file := writeProgram(t, e2eProgram)

	// No key: the gateway answers 401 and pcq fails without retrying.
	if err := e2eClient(gwURL, "").run([]string{"-poll", "10ms", file}); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("keyless run: err = %v, want 401", err)
	}

	c := e2eClient(gwURL, "alice-key")
	if err := c.run([]string{"-verify", "-poll", "10ms", file}); err != nil {
		t.Fatalf("run through gateway: %v", err)
	}
	// Identical rerun: content routing lands it on the same backend,
	// whose cache serves it. pcq only reports success here; cache-hit
	// plumbing itself is pinned by the fleet package tests.
	if err := c.run([]string{"-verify", "-poll", "10ms", file}); err != nil {
		t.Fatalf("cached rerun through gateway: %v", err)
	}
}

// TestFloodAgainstPcserved pushes a batch of generated programs through
// flood with server-side verification: every one must complete.
func TestFloodAgainstPcserved(t *testing.T) {
	c := e2eClient(startServed(t), "")
	if err := c.flood([]string{"-programs", "8", "-seed", "42", "-verify", "-poll", "10ms"}); err != nil {
		t.Fatalf("flood: %v", err)
	}
}
