package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func listenAt(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// testClient points at ts with fast, deterministic-enough backoff.
func testClient(ts *httptest.Server, retries int) *client {
	return &client{base: ts.URL, retries: retries, maxWait: 50 * time.Millisecond, backoff: time.Millisecond}
}

func TestDoRetriesServerErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, `{"ok":true}`)
	}))
	defer ts.Close()

	resp, err := testClient(ts, 3).do("GET", "/", nil)
	if err != nil {
		t.Fatalf("do after flaky 500s: %v", err)
	}
	resp.Body.Close()
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (two 500s then success)", got)
	}
}

func TestDoRetries429HonoringRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstRetryGap atomic.Int64
	var last atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 && firstRetryGap.Load() == 0 {
			firstRetryGap.Store(now - prev)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, "{}")
	}))
	defer ts.Close()

	c := testClient(ts, 2)
	c.maxWait = 2 * time.Second // must not truncate the server's ask
	resp, err := c.do("GET", "/", nil)
	if err != nil {
		t.Fatalf("do after 429: %v", err)
	}
	resp.Body.Close()
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2", got)
	}
	if gap := time.Duration(firstRetryGap.Load()); gap < 900*time.Millisecond {
		t.Errorf("retry came after %v, want >= ~1s per Retry-After", gap)
	}
}

func TestDoDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "bad spec"})
	}))
	defer ts.Close()

	_, err := testClient(ts, 5).do("POST", "/v1/jobs", []byte("{}"))
	if err == nil || !strings.Contains(err.Error(), "bad spec") {
		t.Fatalf("err = %v, want the decoded 400 error", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want 1 (400 is not transient)", got)
	}
}

func TestDoExhaustsRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	_, err := testClient(ts, 2).do("GET", "/", nil)
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want exhaustion after 3 attempts", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
}

func TestDoRetriesConnectionRefused(t *testing.T) {
	// A daemon restarting mid-request: the first attempts hit a closed
	// port, then the server comes up at the same address.
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "{}")
	}))
	addr := ts.Listener.Addr().String()
	ts.Listener.Close() // connection refused until restarted below

	c := &client{base: "http://" + addr, retries: 10, maxWait: 50 * time.Millisecond, backoff: 5 * time.Millisecond}
	restarted := make(chan *httptest.Server, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		s2 := httptest.NewUnstartedServer(ts.Config.Handler)
		s2.Listener.Close()
		var err error
		s2.Listener, err = listenAt(addr)
		if err != nil {
			restarted <- nil
			return
		}
		s2.Start()
		restarted <- s2
	}()

	resp, err := c.do("GET", "/healthz", nil)
	s2 := <-restarted
	if s2 == nil {
		t.Skip("could not rebind the test port")
	}
	defer s2.Close()
	if err != nil {
		t.Fatalf("do across restart: %v", err)
	}
	resp.Body.Close()
}

func TestDoReplaysBodyOnRetry(t *testing.T) {
	var calls atomic.Int64
	var bodies []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(data))
		if calls.Add(1) == 1 {
			http.Error(w, "boom", http.StatusBadGateway)
			return
		}
		io.WriteString(w, "{}")
	}))
	defer ts.Close()

	resp, err := testClient(ts, 2).do("POST", "/v1/jobs", []byte(`{"experiment":"table2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bodies) != 2 || bodies[0] != bodies[1] || bodies[1] != `{"experiment":"table2"}` {
		t.Errorf("bodies = %q, want the same full body on both attempts", bodies)
	}
}

func TestRetryAfterParsing(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	if d := retryAfter(mk("")); d != 0 {
		t.Errorf("no header: %v, want 0", d)
	}
	if d := retryAfter(mk("7")); d != 7*time.Second {
		t.Errorf("seconds: %v, want 7s", d)
	}
	date := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if d := retryAfter(mk(date)); d <= 0 || d > 5*time.Second {
		t.Errorf("http-date: %v, want (0, 5s]", d)
	}
	if d := retryAfter(mk("garbage")); d != 0 {
		t.Errorf("garbage: %v, want 0", d)
	}
}
