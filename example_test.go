package pcoup_test

import (
	"fmt"

	"pcoup"
)

// Example compiles a small threaded program and runs it on the paper's
// baseline machine.
func Example() {
	const src = `
(program demo
  (global squares (array int 8))
  (def (main)
    (forall-static (i 0 8)
      (aset squares i (* i i)))))`

	cfg := pcoup.Baseline()
	prog, _, err := pcoup.Compile(src, cfg, pcoup.Unrestricted)
	if err != nil {
		panic(err)
	}
	s, err := pcoup.NewSimulator(cfg, prog)
	if err != nil {
		panic(err)
	}
	if _, err := s.Run(0); err != nil {
		panic(err)
	}
	v, _ := pcoup.PeekGlobal(s, prog, "squares", 7)
	fmt.Println("squares[7] =", v.AsInt())
	// Output: squares[7] = 49
}

// ExampleCompile shows the five machine organizations of the paper as
// combinations of source variant and compile mode.
func ExampleCompile() {
	b, err := pcoup.GenerateBenchmark("matrix", pcoup.SequentialSource)
	if err != nil {
		panic(err)
	}
	cfg := pcoup.Baseline()
	// SEQ: single thread on one cluster. STS: single thread, all units.
	for _, mode := range []pcoup.CompileMode{pcoup.SingleCluster, pcoup.Unrestricted} {
		prog, _, err := pcoup.Compile(b.Source, cfg, mode)
		if err != nil {
			panic(err)
		}
		res, err := pcoup.Simulate(cfg, prog)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: ops=%d\n", mode, res.Ops)
	}
	// Output:
	// single: ops=3550
	// unrestricted: ops=3793
}

// ExampleGenerateBenchmarkN sizes a benchmark beyond the paper's choice.
func ExampleGenerateBenchmarkN() {
	b, err := pcoup.GenerateBenchmarkN("matrix", pcoup.ThreadedSource, 4)
	if err != nil {
		panic(err)
	}
	cfg := pcoup.Baseline()
	prog, _, err := pcoup.Compile(b.Source, cfg, pcoup.Unrestricted)
	if err != nil {
		panic(err)
	}
	s, err := pcoup.NewSimulator(cfg, prog)
	if err != nil {
		panic(err)
	}
	if _, err := s.Run(0); err != nil {
		panic(err)
	}
	err = b.Verify(func(g string, off int64) (pcoup.Value, bool) {
		return pcoup.PeekGlobal(s, prog, g, off)
	})
	fmt.Println("verified:", err == nil)
	// Output: verified: true
}
