// Latency: demonstrate latency tolerance through multithreading — the
// core claim of processor coupling. The Matrix benchmark runs statically
// scheduled (STS) and coupled under increasingly hostile memory systems
// (Min: 1 cycle; Mem1: 5% misses of 20-100 cycles; Mem2: 10% misses).
// The statically scheduled machine stalls on every miss; the coupled
// machine hides misses behind the other threads.
//
//	go run ./examples/latency
package main

import (
	"fmt"
	"log"

	"pcoup"
)

func main() {
	memories := []pcoup.MemoryModel{pcoup.MemMin, pcoup.Mem1, pcoup.Mem2}

	type variant struct {
		name    string
		kind    pcoup.SourceKind
		compile pcoup.CompileMode
	}
	variants := []variant{
		{"STS", pcoup.SequentialSource, pcoup.Unrestricted},
		{"Coupled", pcoup.ThreadedSource, pcoup.Unrestricted},
	}

	fmt.Printf("%-8s %-6s %8s %8s %9s\n", "Mode", "Memory", "Cycles", "vs Min", "Misses")
	for _, v := range variants {
		var minCycles int64
		for _, mem := range memories {
			cfg := pcoup.Baseline().WithMemory(mem).WithSeed(42)
			b, err := pcoup.GenerateBenchmark("matrix", v.kind)
			if err != nil {
				log.Fatal(err)
			}
			prog, _, err := pcoup.Compile(b.Source, cfg, v.compile)
			if err != nil {
				log.Fatal(err)
			}
			s, err := pcoup.NewSimulator(cfg, prog)
			if err != nil {
				log.Fatal(err)
			}
			res, err := s.Run(0)
			if err != nil {
				log.Fatal(err)
			}
			err = b.Verify(func(g string, off int64) (pcoup.Value, bool) {
				return pcoup.PeekGlobal(s, prog, g, off)
			})
			if err != nil {
				log.Fatal(err)
			}
			if mem.Name == "Min" {
				minCycles = res.Cycles
			}
			fmt.Printf("%-8s %-6s %8d %8.2f %9d\n",
				v.name, mem.Name, res.Cycles,
				float64(res.Cycles)/float64(minCycles), res.Mem.Misses)
		}
	}
	fmt.Println("\nthe coupled machine degrades far less: other threads run during misses")
}
