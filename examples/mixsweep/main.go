// Mixsweep: explore the number and mix of function units (the paper's
// Figure 8) for one benchmark. Machines with 1-4 integer units and 1-4
// floating-point units (always 4 memory units and 1 branch unit) run the
// FFT benchmark in coupled mode.
//
//	go run ./examples/mixsweep [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"pcoup"
)

func main() {
	benchName := "fft"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}
	b, err := pcoup.GenerateBenchmark(benchName, pcoup.ThreadedSource)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("coupled cycle counts for %s (4 MEM units, 1 BR unit):\n", benchName)
	fmt.Printf("        ")
	for fpu := 1; fpu <= 4; fpu++ {
		fmt.Printf("%7d FPU", fpu)
	}
	fmt.Println()
	for iu := 1; iu <= 4; iu++ {
		fmt.Printf("%2d IU   ", iu)
		for fpu := 1; fpu <= 4; fpu++ {
			cfg := pcoup.MixMachine(iu, fpu)
			prog, _, err := pcoup.Compile(b.Source, cfg, pcoup.Unrestricted)
			if err != nil {
				log.Fatal(err)
			}
			s, err := pcoup.NewSimulator(cfg, prog)
			if err != nil {
				log.Fatal(err)
			}
			res, err := s.Run(0)
			if err != nil {
				log.Fatal(err)
			}
			err = b.Verify(func(g string, off int64) (pcoup.Value, bool) {
				return pcoup.PeekGlobal(s, prog, g, off)
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10d", res.Cycles)
		}
		fmt.Println()
	}
	fmt.Println("\ncycle count falls as units are added; the minimum sits near 4x4")
}
