// Quickstart: compile a small program in the processor-coupling source
// language, run it on the baseline machine, and read back results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pcoup"
)

// The source language has simplified C semantics with Lisp syntax:
// globals live in memory, locals live in registers, fork/forall spawn
// threads, and loads/stores may synchronize on per-word presence bits.
const src = `
(program quickstart
  (global squares (array int 10))
  (global total int)
  (def (main)
    ;; Ten threads, one per element, running concurrently.
    (forall-static (i 0 10)
      (aset squares i (* i i)))
    ;; Back on the main thread: sum the results.
    (set sum 0)
    (for (i 0 10)
      (set sum (+ sum (aref squares i))))
    (set total sum)))
`

func main() {
	cfg := pcoup.Baseline()
	prog, diags, err := pcoup.Compile(src, cfg, pcoup.Unrestricted)
	if err != nil {
		log.Fatal(err)
	}
	simulator, err := pcoup.NewSimulator(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := simulator.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	total, _ := pcoup.PeekGlobal(simulator, prog, "total", 0)
	fmt.Printf("machine:  %s\n", cfg)
	fmt.Printf("segments: %d (main + one per forked thread)\n", len(diags.Segments))
	fmt.Printf("threads:  %d ran over %d cycles, %d operations\n",
		len(res.Threads), res.Cycles, res.Ops)
	fmt.Printf("sum of squares 0..9 = %d (want 285)\n", total.AsInt())
	fmt.Printf("unit utilization: IU %.2f  FPU %.2f  MEM %.2f  BR %.2f ops/cycle\n",
		res.Utilization(pcoup.IU), res.Utilization(pcoup.FPU),
		res.Utilization(pcoup.MEM), res.Utilization(pcoup.BR))
}
