// Matmul: run the paper's Matrix benchmark (9x9 floating-point matrix
// multiply) under all five machine organizations and compare cycle
// counts — a one-benchmark slice of the paper's Table 2.
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"

	"pcoup"
)

func main() {
	cfg := pcoup.Baseline()
	type mode struct {
		name    string
		kind    pcoup.SourceKind
		compile pcoup.CompileMode
	}
	modes := []mode{
		{"SEQ", pcoup.SequentialSource, pcoup.SingleCluster},
		{"STS", pcoup.SequentialSource, pcoup.Unrestricted},
		{"TPE", pcoup.ThreadedSource, pcoup.SingleCluster},
		{"Coupled", pcoup.ThreadedSource, pcoup.Unrestricted},
		{"Ideal", pcoup.IdealSource, pcoup.Unrestricted},
	}

	fmt.Printf("%-8s %8s %8s %7s %7s\n", "Mode", "Cycles", "Ops", "FPU", "IU")
	var coupled int64
	for _, m := range modes {
		b, err := pcoup.GenerateBenchmark("matrix", m.kind)
		if err != nil {
			log.Fatal(err)
		}
		prog, _, err := pcoup.Compile(b.Source, cfg, m.compile)
		if err != nil {
			log.Fatal(err)
		}
		s, err := pcoup.NewSimulator(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(0)
		if err != nil {
			log.Fatal(err)
		}
		// Check the product against the exact Go reference.
		err = b.Verify(func(global string, off int64) (pcoup.Value, bool) {
			return pcoup.PeekGlobal(s, prog, global, off)
		})
		if err != nil {
			log.Fatalf("%s: wrong result: %v", m.name, err)
		}
		if m.name == "Coupled" {
			coupled = res.Cycles
		}
		fmt.Printf("%-8s %8d %8d %7.2f %7.2f\n",
			m.name, res.Cycles, res.Ops,
			res.Utilization(pcoup.FPU), res.Utilization(pcoup.IU))
	}
	fmt.Printf("\nall results verified bit-exact; Coupled baseline = %d cycles\n", coupled)
}
