// Circuitsim: the application the paper's benchmarks were carved from.
// "The compute intensive portions of a circuit simulator such as SPICE
// include a model evaluator and sparse matrix solver" (Section 4) — this
// example combines both in one program: a fixed-point operating-point
// iteration over a small MOS circuit that alternates threaded device
// evaluation (the Model benchmark's kernel) with an LU solve of the
// nodal conductance system (the LUD benchmark's kernel).
//
// The whole computation is expressed in the source language, compiled,
// and simulated twice — once restricted to a single cluster (SEQ-style)
// and once coupled — and the final node voltages are verified bit-exactly
// against a Go reference that performs the same operations in the same
// order.
//
//	go run ./examples/circuitsim
package main

import (
	"fmt"
	"log"
	"strings"

	"pcoup"
)

const (
	nodes   = 8  // circuit nodes (excluding ground)
	devices = 12 // MOS transistors
	iters   = 3  // fixed-point iterations
	damp    = 0.125
)

type device struct {
	typ     int64 // 0 NMOS, 1 PMOS
	d, g, s int64 // node indices; 0..nodes-1, "nodes" = ground
	k, vt   float64
}

// netlist builds a deterministic small circuit.
func netlist() ([]device, []float64, []float64) {
	devs := make([]device, devices)
	for i := range devs {
		devs[i] = device{
			typ: int64(i % 2),
			d:   int64((i*3 + 1) % nodes),
			g:   int64((i*5 + 2) % nodes),
			s:   int64((i * 7) % (nodes + 1)), // may be ground
			k:   0.0002 * float64(1+i%4),
			vt:  0.25,
		}
	}
	// Conductance matrix: resistor grid, diagonally dominant.
	gmat := make([]float64, nodes*nodes)
	for i := 0; i < nodes; i++ {
		gmat[i*nodes+i] = 0.004
		if i > 0 {
			gmat[i*nodes+i-1] = -0.001
		}
		if i < nodes-1 {
			gmat[i*nodes+i+1] = -0.001
		}
	}
	v0 := make([]float64, nodes+1) // last entry is ground (0V)
	for i := 0; i < nodes; i++ {
		v0[i] = 0.5 + 0.375*float64(i%5)
	}
	return devs, gmat, v0
}

// evalDevice mirrors the generated evaluation exactly.
func evalDevice(dv device, v []float64) float64 {
	vd, vg, vs := v[dv.d], v[dv.g], v[dv.s]
	var vgs, vds float64
	if dv.typ == 0 {
		vgs, vds = vg-vs, vd-vs
	} else {
		vgs, vds = vs-vg, vs-vd
	}
	cur := 0.0
	if vgs > dv.vt {
		if vds < vgs-dv.vt {
			cur = (dv.k * ((vgs-dv.vt)*vds - 0.5*(vds*vds))) * 1.0
		} else {
			cur = ((0.5 * dv.k) * ((vgs - dv.vt) * (vgs - dv.vt))) * 1.0
		}
	}
	if dv.typ == 1 {
		cur = -cur
	}
	return cur
}

// reference runs the whole simulation in Go with the same operation
// order as the generated program.
func reference(devs []device, gmat, v0 []float64) []float64 {
	n := nodes
	// LU factor once (in place, no pivoting; same loop order).
	lu := append([]float64{}, gmat...)
	for k := 0; k < n; k++ {
		for t := k + 1; t < n; t++ {
			f := lu[t*n+k] / lu[k*n+k]
			lu[t*n+k] = f
			for j := k + 1; j < n; j++ {
				lu[t*n+j] = lu[t*n+j] - f*lu[k*n+j]
			}
		}
	}
	v := append([]float64{}, v0...)
	for it := 0; it < iters; it++ {
		// Device currents.
		idev := make([]float64, devices)
		for d, dv := range devs {
			idev[d] = evalDevice(dv, v)
		}
		// Stamp into node current vector.
		in := make([]float64, n)
		for d, dv := range devs {
			if dv.d < nodes {
				in[dv.d] = in[dv.d] - idev[d]
			}
			if dv.s < nodes {
				in[dv.s] = in[dv.s] + idev[d]
			}
		}
		// Solve LU x = in: forward then backward substitution.
		x := append([]float64{}, in...)
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				x[i] = x[i] - lu[i*n+j]*x[j]
			}
		}
		for i := n - 1; i >= 0; i-- {
			for j := i + 1; j < n; j++ {
				x[i] = x[i] - lu[i*n+j]*x[j]
			}
			x[i] = x[i] / lu[i*n+i]
		}
		// Damped update.
		for i := 0; i < n; i++ {
			v[i] = v[i] + damp*x[i]
		}
	}
	return v
}

// genSource emits the simulator in the source language. Device node
// indices and parameters are compile-time constants (the generator plays
// the role of a netlist front end).
func genSource(devs []device, gmat, v0 []float64) string {
	var b strings.Builder
	f := func(x float64) string {
		s := fmt.Sprintf("%g", x)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	}
	b.WriteString("(program circuitsim\n")
	fmt.Fprintf(&b, "  (global G (array float %d) (init", nodes*nodes)
	for _, x := range gmat {
		b.WriteString(" " + f(x))
	}
	b.WriteString("))\n")
	fmt.Fprintf(&b, "  (global V (array float %d) (init", nodes+1)
	for _, x := range v0 {
		b.WriteString(" " + f(x))
	}
	b.WriteString("))\n")
	fmt.Fprintf(&b, "  (global Idev (array float %d))\n", devices)
	fmt.Fprintf(&b, "  (global In (array float %d))\n", nodes)
	fmt.Fprintf(&b, "  (global X (array float %d))\n", nodes)

	// One evaluation procedure per device would bloat the code; instead
	// a single procedure takes the (constant) parameters.
	b.WriteString(`  (def (evaldev idx ty nd ng ns kp vt)
    (let ((vd (aref V nd)) (vg (aref V ng)) (vs (aref V ns)))
      (set vgs 0.0)
      (set vds 0.0)
      (if (= ty 0)
          (begin (set vgs (- vg vs)) (set vds (- vd vs)))
          (begin (set vgs (- vs vg)) (set vds (- vs vd))))
      (set cur 0.0)
      (if (> vgs vt)
          (if (< vds (- vgs vt))
              (set cur (* (* kp (- (* (- vgs vt) vds) (* 0.5 (* vds vds)))) 1.0))
              (set cur (* (* (* 0.5 kp) (* (- vgs vt) (- vgs vt))) 1.0))))
      (if (= ty 1)
          (set cur (- cur)))
      (aset Idev idx cur)))
`)
	b.WriteString("  (def (main)\n")
	// Factor G once (sequential dense LU, same order as the reference).
	fmt.Fprintf(&b, `    (for (k 0 %d)
      (for (t (+ k 1) %d)
        (let ((fv (/ (aref G (+ (* t %d) k)) (aref G (+ (* k %d) k)))))
          (aset G (+ (* t %d) k) fv)
          (for (j (+ k 1) %d)
            (aset G (+ (* t %d) j)
                  (- (aref G (+ (* t %d) j)) (* fv (aref G (+ (* k %d) j)))))))))
`, nodes, nodes, nodes, nodes, nodes, nodes, nodes, nodes, nodes)

	fmt.Fprintf(&b, "    (unroll (it 0 %d)\n", iters)
	// Threaded device evaluation: one thread per device, constants baked.
	b.WriteString("      (begin\n")
	for d, dv := range devs {
		fmt.Fprintf(&b, "        (fork (evaldev %d %d %d %d %d %s %s))\n",
			d, dv.typ, dv.d, dv.g, dv.s, f(dv.k), f(dv.vt))
	}
	b.WriteString("        (join)\n")
	// Stamp node currents (unrolled; node indices are constants).
	for i := 0; i < nodes; i++ {
		fmt.Fprintf(&b, "        (aset In %d 0.0)\n", i)
	}
	for d, dv := range devs {
		if dv.d < nodes {
			fmt.Fprintf(&b, "        (aset In %d (- (aref In %d) (aref Idev %d)))\n", dv.d, dv.d, d)
		}
		if dv.s < nodes {
			fmt.Fprintf(&b, "        (aset In %d (+ (aref In %d) (aref Idev %d)))\n", dv.s, dv.s, d)
		}
	}
	// Forward/backward substitution (sequential, data-dependent chain).
	fmt.Fprintf(&b, "        (for (i 0 %d) (aset X i (aref In i)))\n", nodes)
	fmt.Fprintf(&b, `        (for (i 0 %d)
          (for (j 0 i)
            (aset X i (- (aref X i) (* (aref G (+ (* i %d) j)) (aref X j))))))
`, nodes, nodes)
	fmt.Fprintf(&b, `        (for (i2 0 %d)
          (let ((i (- %d i2)))
            (for (j (+ i 1) %d)
              (aset X i (- (aref X i) (* (aref G (+ (* i %d) j)) (aref X j)))))
            (aset X i (/ (aref X i) (aref G (+ (* i %d) i))))))
`, nodes, nodes-1, nodes, nodes, nodes)
	// Damped voltage update.
	fmt.Fprintf(&b, "        (for (i 0 %d) (aset V i (+ (aref V i) (* %s (aref X i)))))\n",
		nodes, f(damp))
	b.WriteString("      ))\n")
	b.WriteString("))\n")
	return b.String()
}

func main() {
	devs, gmat, v0 := netlist()
	want := reference(devs, gmat, v0)
	src := genSource(devs, gmat, v0)

	type variant struct {
		name string
		mode pcoup.CompileMode
	}
	for _, vr := range []variant{{"single-cluster", pcoup.SingleCluster}, {"coupled", pcoup.Unrestricted}} {
		cfg := pcoup.Baseline()
		prog, _, err := pcoup.Compile(src, cfg, vr.mode)
		if err != nil {
			log.Fatalf("%s: %v", vr.name, err)
		}
		s, err := pcoup.NewSimulator(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(0)
		if err != nil {
			log.Fatalf("%s: %v", vr.name, err)
		}
		for i := 0; i < nodes; i++ {
			got, _ := pcoup.PeekGlobal(s, prog, "V", int64(i))
			if got.AsFloat() != want[i] {
				log.Fatalf("%s: V[%d] = %v, want %v", vr.name, i, got.AsFloat(), want[i])
			}
		}
		fmt.Printf("%-15s %6d cycles, %5d ops, %d threads — node voltages verified\n",
			vr.name, res.Cycles, res.Ops, len(res.Threads))
	}
	fmt.Println("\nfinal node voltages:")
	for i := 0; i < nodes; i++ {
		fmt.Printf("  V[%d] = %.6f\n", i, want[i])
	}
}
