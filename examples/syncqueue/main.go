// Syncqueue: demonstrate the memory system's presence-bit
// synchronization (Table 1 of the paper). Producer and consumer threads
// coordinate through a one-word mailbox: the producer's store waits until
// the word is empty and sets it full; the consumer's load waits until the
// word is full and sets it empty. Four consumers drain work produced by
// the main thread with no other synchronization.
//
//	go run ./examples/syncqueue
package main

import (
	"fmt"
	"log"

	"pcoup"
)

const src = `
(program syncqueue
  (global mailbox int empty)          ; presence bit starts empty
  (global results (array int 16))
  (global done (array int 4))
  (def (consumer cid)
    (set item (aref mailbox 0 consume))  ; wait-until-full, set-empty
    (while (>= item 0)
      (aset results item (* item item))
      (set item (aref mailbox 0 consume)))
    (aset done cid 1))
  (def (main)
    (fork (consumer 0))
    (fork (consumer 1))
    (fork (consumer 2))
    (fork (consumer 3))
    ;; Produce 16 work items, then one poison pill per consumer.
    (for (i 0 16)
      (aset mailbox 0 i produce))     ; wait-until-empty, set-full
    (for (p 0 4)
      (aset mailbox 0 -1 produce))
    (join)))
`

func main() {
	cfg := pcoup.Baseline()
	prog, _, err := pcoup.Compile(src, cfg, pcoup.Unrestricted)
	if err != nil {
		log.Fatal(err)
	}
	s, err := pcoup.NewSimulator(cfg, prog)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d threads, %d cycles, %d parked memory references (split transactions)\n",
		len(res.Threads), res.Cycles, res.Mem.Parked)
	for i := int64(0); i < 16; i++ {
		v, _ := pcoup.PeekGlobal(s, prog, "results", i)
		if v.AsInt() != i*i {
			log.Fatalf("results[%d] = %d, want %d", i, v.AsInt(), i*i)
		}
	}
	fmt.Println("all 16 items processed exactly once via produce/consume presence bits")
	for c := int64(0); c < 4; c++ {
		v, _ := pcoup.PeekGlobal(s, prog, "done", c)
		fmt.Printf("consumer %d done=%d\n", c, v.AsInt())
	}
}
