// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark reports the simulated cycle counts of its
// experiment as custom metrics, so `go test -bench=.` doubles as the
// reproduction harness:
//
//	go test -bench=Table2 -benchtime=1x
//	go test -bench=. -benchmem
package pcoup_test

import (
	"fmt"
	"testing"

	"pcoup"
	"pcoup/internal/compiler"
	"pcoup/internal/experiments"
	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

// BenchmarkTable2 regenerates Table 2 (and Figure 4's data): baseline
// cycle counts for each benchmark under SEQ, STS, TPE, Coupled, and
// Ideal.
func BenchmarkTable2(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Cycles), fmt.Sprintf("cyc_%s_%s", r.Bench, r.Mode))
	}
}

// BenchmarkFigure4 is the bar-chart view of Table 2 (same simulation
// work; kept as its own target so every figure has one).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates the function-unit utilization chart.
func BenchmarkFigure5(b *testing.B) {
	var rows []experiments.Figure5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure5(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Mode == experiments.COUPLED {
			b.ReportMetric(r.Util[machine.FPU], "fpu_"+r.Bench)
		}
	}
}

// BenchmarkTable3 regenerates the thread-interference experiment.
func BenchmarkTable3(b *testing.B) {
	var res *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Table3(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.STSCycles), "cyc_sts")
	b.ReportMetric(float64(res.CoupledCycles), "cyc_coupled")
	b.ReportMetric(res.CoupledWeighted, "cyc_per_eval")
}

// BenchmarkFigure6 regenerates the restricted-communication experiment.
func BenchmarkFigure6(b *testing.B) {
	var rows []experiments.Figure6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure6(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Interconnect == machine.TriPort {
			b.ReportMetric(r.VsFull, "triport_vs_full_"+r.Bench)
		}
	}
}

// BenchmarkFigure7 regenerates the variable-memory-latency experiment.
func BenchmarkFigure7(b *testing.B) {
	var rows []experiments.Figure7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure7(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Memory == "Mem2" {
			b.ReportMetric(r.VsMin, fmt.Sprintf("mem2_vs_min_%s_%s", r.Bench, r.Mode))
		}
	}
}

// BenchmarkFigure8 regenerates the function-unit-mix sweep.
func BenchmarkFigure8(b *testing.B) {
	var rows []experiments.Figure8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure8()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.IUs == 4 && r.FPUs == 4 {
			b.ReportMetric(float64(r.Cycles), "cyc44_"+r.Bench)
		}
	}
}

// runCell compiles and simulates one benchmark/mode cell, reporting the
// simulated cycles.
func runCell(b *testing.B, benchName string, mode experiments.Mode, cfg *machine.Config) int64 {
	b.Helper()
	var cycles int64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Execute(benchName, mode, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
	return cycles
}

// BenchmarkModes gives one target per (benchmark, mode) cell for
// fine-grained measurement of the toolchain itself.
func BenchmarkModes(b *testing.B) {
	for _, name := range pcoup.BenchmarkNames() {
		for _, mode := range experiments.Modes() {
			if !experiments.ModeSupported(name, mode) {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", name, mode), func(b *testing.B) {
				runCell(b, name, mode, machine.Baseline())
			})
		}
	}
}

// BenchmarkAblationArbitration compares priority against round-robin
// function-unit arbitration on the Table 3 workload.
func BenchmarkAblationArbitration(b *testing.B) {
	for _, arb := range []machine.ArbitrationKind{machine.PriorityArbitration, machine.RoundRobinArbitration} {
		b.Run(arb.String(), func(b *testing.B) {
			cfg := machine.Baseline()
			cfg.Arbitration = arb
			runCell(b, "modelq", experiments.COUPLED, cfg)
		})
	}
}

// BenchmarkAblationLockStep quantifies the value of letting the static
// schedule slip: coupled execution with and without lock-step issue.
func BenchmarkAblationLockStep(b *testing.B) {
	for _, lock := range []bool{false, true} {
		name := "slip"
		if lock {
			name = "lockstep"
		}
		b.Run(name, func(b *testing.B) {
			cfg := machine.Baseline()
			cfg.LockStepIssue = lock
			runCell(b, "matrix", experiments.COUPLED, cfg)
		})
	}
}

// BenchmarkAblationBankConflicts measures the error of the paper's
// no-bank-conflict assumption by enabling conflict modeling.
func BenchmarkAblationBankConflicts(b *testing.B) {
	for _, conflicts := range []bool{false, true} {
		name := "ideal_banks"
		if conflicts {
			name = "real_banks"
		}
		b.Run(name, func(b *testing.B) {
			cfg := machine.Baseline()
			cfg.Memory.ModelBankConflicts = conflicts
			runCell(b, "fft", experiments.COUPLED, cfg)
		})
	}
}

// BenchmarkAblationOptimizer measures the contribution of the compiler's
// scalar optimizations.
func BenchmarkAblationOptimizer(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "opt"
		if disable {
			name = "noopt"
		}
		b.Run(name, func(b *testing.B) {
			cfg := machine.Baseline()
			bm, err := pcoup.GenerateBenchmark("matrix", pcoup.SequentialSource)
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			for i := 0; i < b.N; i++ {
				prog, _, err := compiler.Compile(bm.Source, cfg, compiler.Options{
					Mode: compiler.Unrestricted, DisableOpt: disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				s, err := sim.New(cfg, prog)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim_cycles")
		})
	}
}

// BenchmarkCompiler measures raw compile throughput on the largest
// benchmark source (LUD).
func BenchmarkCompiler(b *testing.B) {
	bm, err := pcoup.GenerateBenchmark("lud", pcoup.ThreadedSource)
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := compiler.Compile(bm.Source, cfg, compiler.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures raw simulation throughput (cycles per
// second of host time) on the coupled Matrix benchmark.
func BenchmarkSimulator(b *testing.B) {
	bm, err := pcoup.GenerateBenchmark("matrix", pcoup.ThreadedSource)
	if err != nil {
		b.Fatal(err)
	}
	cfg := machine.Baseline()
	prog, _, err := compiler.Compile(bm.Source, cfg, compiler.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		s, err := sim.New(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Cycles
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkAblationOpCache measures the cost of the paper's
// no-instruction-cache-miss assumption: coupled FFT with per-unit
// operation caches of decreasing size (0 = the paper's infinite-cache
// assumption).
func BenchmarkAblationOpCache(b *testing.B) {
	for _, entries := range []int{0, 1024, 64} {
		name := "paper_assumption"
		if entries > 0 {
			name = fmt.Sprintf("entries_%d", entries)
		}
		b.Run(name, func(b *testing.B) {
			cfg := machine.Baseline()
			if entries > 0 {
				cfg.OpCache = machine.OpCacheModel{Entries: entries, MissPenalty: 4}
			}
			runCell(b, "fft", experiments.COUPLED, cfg)
		})
	}
}

// BenchmarkRegisters regenerates the register-usage report (Section 3's
// infinite-register assumption).
func BenchmarkRegisters(b *testing.B) {
	var rows []experiments.RegisterRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Registers(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Mode == experiments.IDEAL {
			b.ReportMetric(float64(r.PeakPerCluster), "peak_regs_"+r.Bench+"_ideal")
		}
	}
}

// BenchmarkScaling regenerates the problem-size scaling study.
func BenchmarkScaling(b *testing.B) {
	var rows []experiments.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Scaling(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, fmt.Sprintf("speedup_%s_%d", r.Bench, r.Size))
	}
}

// BenchmarkExtensionUnroll regenerates the automatic-unrolling study.
func BenchmarkExtensionUnroll(b *testing.B) {
	var rows []experiments.UnrollRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Unrolling(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Gain, fmt.Sprintf("gain_%s_%s", r.Bench, r.Mode))
	}
}

// BenchmarkExtensionThreadCap regenerates the active-thread-limit sweep.
func BenchmarkExtensionThreadCap(b *testing.B) {
	var rows []experiments.ThreadCapRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ThreadCap(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Cycles), fmt.Sprintf("cyc_%s_cap%d", r.Bench, r.Cap))
	}
}
