package pcoup_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"pcoup"
)

const apiTestSrc = `
(program api
  (global out (array int 4))
  (global total int)
  (def (main)
    (forall-static (i 0 4)
      (aset out i (* i 10)))
    (set s 0)
    (for (i 0 4) (set s (+ s (aref out i))))
    (set total s)))`

// TestPublicAPIPipeline drives the whole public surface: machine
// construction, compile, simulate, result inspection, memory peeking,
// and assembly round-tripping.
func TestPublicAPIPipeline(t *testing.T) {
	cfg := pcoup.Baseline()
	prog, diags, err := pcoup.Compile(apiTestSrc, cfg, pcoup.Unrestricted)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags.Segments) != 5 {
		t.Errorf("segments = %d, want 5 (main + 4 forks)", len(diags.Segments))
	}
	s, err := pcoup.NewSimulator(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Ops <= 0 {
		t.Errorf("empty result: %+v", res)
	}
	if got, ok := pcoup.PeekGlobal(s, prog, "total", 0); !ok || got.AsInt() != 60 {
		t.Errorf("total = %v (%v), want 60", got, ok)
	}
	if _, ok := pcoup.PeekGlobal(s, prog, "nope", 0); ok {
		t.Error("PeekGlobal found nonexistent global")
	}
	if res.Utilization(pcoup.IU) < 0 || res.Utilization(pcoup.BR) <= 0 {
		t.Error("utilization accessors broken")
	}

	// Assembly round trip through the facade.
	var buf bytes.Buffer
	if err := pcoup.WriteAssembly(&buf, prog); err != nil {
		t.Fatal(err)
	}
	back, err := pcoup.ParseAssembly(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := pcoup.Simulate(cfg, back)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles != res.Cycles {
		t.Errorf("assembly round trip changed cycles: %d vs %d", res2.Cycles, res.Cycles)
	}
}

func TestPublicBenchmarkAccess(t *testing.T) {
	names := pcoup.BenchmarkNames()
	if len(names) != 4 {
		t.Fatalf("BenchmarkNames = %v", names)
	}
	b, err := pcoup.GenerateBenchmark("matrix", pcoup.ThreadedSource)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pcoup.Baseline()
	prog, _, err := pcoup.Compile(b.Source, cfg, pcoup.Unrestricted)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pcoup.NewSimulator(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	err = b.Verify(func(g string, off int64) (pcoup.Value, bool) {
		return pcoup.PeekGlobal(s, prog, g, off)
	})
	if err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestPublicMachineHelpers(t *testing.T) {
	mix := pcoup.MixMachine(2, 3)
	if mix.CountUnits(pcoup.IU) != 2 || mix.CountUnits(pcoup.FPU) != 3 {
		t.Errorf("MixMachine miscounted units")
	}
	for _, mem := range []pcoup.MemoryModel{pcoup.MemMin, pcoup.Mem1, pcoup.Mem2} {
		cfg := pcoup.Baseline().WithMemory(mem)
		if cfg.Memory.Name != mem.Name {
			t.Errorf("WithMemory(%s) failed", mem.Name)
		}
	}
	cfg := pcoup.Baseline().WithInterconnect(pcoup.TriPort)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := pcoup.LoadMachine(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Interconnect != pcoup.TriPort {
		t.Error("LoadMachine lost the interconnect setting")
	}
}

func TestPublicCompileErrorsSurface(t *testing.T) {
	_, _, err := pcoup.Compile("(program p (def (main) (set x y)))", pcoup.Baseline(), pcoup.Unrestricted)
	if err == nil {
		t.Error("compile error not surfaced")
	}
}
