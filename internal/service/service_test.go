package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pcoup/internal/machine"
)

// newTestServer starts a service with its HTTP API on an ephemeral port.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	if err := srv.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

// apiJSON performs one API call and decodes the response into out.
func apiJSON(t *testing.T, method, url string, body []byte, wantStatus int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("%s %s: status %d, want %d; body: %s", method, url, resp.StatusCode, wantStatus, buf.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, url, err)
		}
	}
}

func submit(t *testing.T, ts *httptest.Server, spec JobSpec) JobView {
	t.Helper()
	body, _ := json.Marshal(spec)
	var view JobView
	apiJSON(t, "POST", ts.URL+"/v1/jobs", body, http.StatusAccepted, &view)
	return view
}

// waitJob polls until the job is terminal and returns the final view
// (with result).
func waitJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var view JobView
		apiJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil, http.StatusOK, &view)
		if view.State.Terminal() {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// metricValue scrapes one sample value from /metrics.
func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(buf.String())
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, buf.String())
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

// TestSweepCacheByteIdentical is the tentpole acceptance test: the same
// sweep submitted twice — with unrelated fresh jobs running concurrently
// — produces byte-identical result payloads, with the repeat served from
// the cache.
func TestSweepCacheByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})

	sweep := JobSpec{Sweep: &SweepSpec{Benches: []string{"fft", "matrix"}, MinIU: 1, MaxIU: 2}}
	first := submit(t, ts, sweep)

	// Fresh, unrelated jobs churn the pool and the cache concurrently.
	var wg sync.WaitGroup
	for _, spec := range []JobSpec{
		{Cell: &CellSpec{Bench: "model", Mode: "SEQ"}},
		{Cell: &CellSpec{Bench: "matrix", Mode: "TPE"}},
		{Experiment: "table2"},
	} {
		id := submit(t, ts, spec).ID
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v := waitJob(t, ts, id); v.State != JobDone {
				t.Errorf("fresh job %s: %s (%s)", id, v.State, v.Error)
			}
		}()
	}

	firstDone := waitJob(t, ts, first.ID)
	wg.Wait()
	if firstDone.State != JobDone {
		t.Fatalf("first sweep: %s (%s)", firstDone.State, firstDone.Error)
	}
	if firstDone.CacheHit {
		t.Fatal("first sweep claims a whole-job cache hit on a cold cache")
	}
	if firstDone.CellsDone != firstDone.CellsTotal || firstDone.CellsTotal != 2*2*2 {
		t.Fatalf("first sweep cells: %d/%d, want 8/8", firstDone.CellsDone, firstDone.CellsTotal)
	}

	hitsBefore := metricValue(t, ts, "pcserved_cache_hits_total")

	second := submit(t, ts, sweep)
	secondDone := waitJob(t, ts, second.ID)
	if secondDone.State != JobDone {
		t.Fatalf("second sweep: %s (%s)", secondDone.State, secondDone.Error)
	}
	if !secondDone.CacheHit {
		t.Fatal("second identical sweep was not served from the cache")
	}
	if !bytes.Equal(firstDone.Result, secondDone.Result) {
		t.Fatalf("repeat sweep payload differs:\n first: %s\nsecond: %s", firstDone.Result, secondDone.Result)
	}
	if len(firstDone.Result) == 0 {
		t.Fatal("sweep result is empty")
	}
	if hitsAfter := metricValue(t, ts, "pcserved_cache_hits_total"); hitsAfter <= hitsBefore {
		t.Fatalf("cache hits did not increase across the repeat sweep: %v -> %v", hitsBefore, hitsAfter)
	}
	if misses := metricValue(t, ts, "pcserved_cache_misses_total"); misses == 0 {
		t.Fatal("expected cold-cache misses to be counted")
	}
}

// TestCancelMidRun covers prompt DELETE cancellation: a running sweep
// transitions to cancelled quickly after the request.
func TestCancelMidRun(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	// ~100 lud cells: tens of seconds of work if left alone.
	big := JobSpec{Sweep: &SweepSpec{Benches: []string{"lud"}, MinIU: 1, MaxIU: 10}}
	job := submit(t, ts, big)

	// Wait until it is actually running (first cells landing).
	deadline := time.Now().Add(time.Minute)
	for {
		var view JobView
		apiJSON(t, "GET", ts.URL+"/v1/jobs/"+job.ID, nil, http.StatusOK, &view)
		if view.State == JobRunning && view.CellsDone >= 1 {
			break
		}
		if view.State.Terminal() {
			t.Fatalf("job finished before it could be cancelled: %s", view.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	var view JobView
	apiJSON(t, "DELETE", ts.URL+"/v1/jobs/"+job.ID, nil, http.StatusOK, &view)
	final := waitJob(t, ts, job.ID)
	latency := time.Since(start)
	if final.State != JobCancelled {
		t.Fatalf("after DELETE: state %s (%s), want cancelled", final.State, final.Error)
	}
	if latency > 5*time.Second {
		t.Fatalf("cancellation took %s; want prompt (<5s)", latency)
	}
	if final.CellsDone >= final.CellsTotal {
		t.Fatalf("cancelled sweep claims all %d cells done", final.CellsTotal)
	}
}

// TestCancelQueued covers cancelling before a worker picks the job up.
func TestCancelQueued(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1})

	// Occupy the single worker so the next submission stays queued.
	blocker := submit(t, ts, JobSpec{Sweep: &SweepSpec{Benches: []string{"lud"}, MinIU: 1, MaxIU: 8}})
	queued := submit(t, ts, JobSpec{Cell: &CellSpec{Bench: "matrix", Mode: "SEQ"}})

	var view JobView
	apiJSON(t, "DELETE", ts.URL+"/v1/jobs/"+queued.ID, nil, http.StatusOK, &view)
	if view.State != JobCancelled {
		t.Fatalf("queued job after DELETE: %s, want cancelled immediately", view.State)
	}
	if _, err := srv.Cancel(blocker.ID); err != nil {
		t.Fatalf("cancelling blocker: %v", err)
	}
	waitJob(t, ts, blocker.ID)
}

// TestGracefulShutdownDrains covers the drain path: in-flight jobs
// complete, new submissions are refused, and the cache persists to disk.
func TestGracefulShutdownDrains(t *testing.T) {
	cacheFile := filepath.Join(t.TempDir(), "cache.json")
	srv := New(Options{Workers: 2, CacheFile: cacheFile})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ids := []string{
		submit(t, ts, JobSpec{Cell: &CellSpec{Bench: "fft", Mode: "Coupled"}}).ID,
		submit(t, ts, JobSpec{Cell: &CellSpec{Bench: "matrix", Mode: "STS"}}).ID,
		submit(t, ts, JobSpec{Cell: &CellSpec{Bench: "model", Mode: "TPE"}}).ID,
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	for _, id := range ids {
		job, err := srv.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v := job.view(false); v.State != JobDone {
			t.Errorf("job %s after drain: %s (%s), want done", id, v.State, v.Error)
		}
	}
	if _, err := srv.Submit(JobSpec{Cell: &CellSpec{Bench: "fft", Mode: "SEQ"}}); err != ErrDraining {
		t.Fatalf("submit during drain: err %v, want ErrDraining", err)
	}

	data, err := os.ReadFile(cacheFile)
	if err != nil {
		t.Fatalf("cache not persisted: %v", err)
	}
	var doc struct {
		Version int `json:"version"`
		Entries []struct {
			Key     string `json:"key"`
			Payload []byte `json:"payload"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("cache file: %v", err)
	}
	if len(doc.Entries) < 3 {
		t.Fatalf("cache file has %d entries, want >= 3", len(doc.Entries))
	}

	// A new daemon warm-starts from the file: the same cell is a hit.
	srv2 := New(Options{Workers: 1, CacheFile: cacheFile})
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	view := waitJob(t, ts2, submit(t, ts2, JobSpec{Cell: &CellSpec{Bench: "fft", Mode: "Coupled"}}).ID)
	if view.State != JobDone || !view.CacheHit {
		t.Fatalf("warm-start repeat cell: state %s, hit %v; want done from cache", view.State, view.CacheHit)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if err := srv2.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
}

// TestStreamNDJSON covers the sweep streaming endpoint: one JSON object
// per cell in grid order plus a terminal status line.
func TestStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	job := submit(t, ts, JobSpec{Sweep: &SweepSpec{Benches: []string{"matrix"}, MinIU: 1, MaxIU: 2}})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("stream content type: %s", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4+1 { // 1 bench x 2 IU x 2 FPU cells + status line
		t.Fatalf("stream had %d lines, want 5:\n%s", len(lines), buf.String())
	}
	for i, line := range lines[:4] {
		var cell CellResult
		if err := json.Unmarshal([]byte(line), &cell); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if cell.Bench != "matrix" || cell.Cycles <= 0 {
			t.Fatalf("line %d: bad cell %+v", i, cell)
		}
	}
	var status struct {
		State JobState `json:"state"`
	}
	if err := json.Unmarshal([]byte(lines[4]), &status); err != nil || status.State != JobDone {
		t.Fatalf("status line %q: %v", lines[4], err)
	}
}

// TestSpecValidation covers the API's rejection paths.
func TestSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"empty", `{}`},
		{"two selectors", `{"experiment":"table2","cell":{"bench":"fft","mode":"SEQ"}}`},
		{"unknown experiment", `{"experiment":"figure99"}`},
		{"unknown bench", `{"cell":{"bench":"nope","mode":"SEQ"}}`},
		{"unknown mode", `{"cell":{"bench":"fft","mode":"Turbo"}}`},
		{"missing ideal variant", `{"cell":{"bench":"lud","mode":"Ideal"}}`},
		{"unknown preset", `{"experiment":"table2","preset":"nope"}`},
		{"machine and preset", `{"experiment":"table2","preset":"baseline","machine":{"name":"x"}}`},
		{"invalid machine", `{"experiment":"table2","machine":{"name":"x","clusters":[]}}`},
		{"bad sweep range", `{"sweep":{"min_iu":3,"max_iu":1}}`},
		{"oversized sweep", `{"sweep":{"min_iu":1,"max_iu":17}}`},
		{"trace on sweep", `{"sweep":{"min_iu":1,"max_iu":1},"options":{"trace":true}}`},
		{"unknown field", `{"experiment":"table2","bogus":1}`},
		{"negative timeout", `{"experiment":"table2","timeout_ms":-5}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			apiJSON(t, "POST", ts.URL+"/v1/jobs", []byte(tc.body), http.StatusBadRequest, nil)
		})
	}

	apiJSON(t, "GET", ts.URL+"/v1/jobs/j-999999", nil, http.StatusNotFound, nil)
}

// TestQueueFull covers the bounded-queue backpressure path.
func TestQueueFull(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, QueueCap: 2})

	// The worker takes one job; two more fill the queue.
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		ids = append(ids, submit(t, ts, JobSpec{Sweep: &SweepSpec{Benches: []string{"lud"}, MinIU: 1, MaxIU: 4}}).ID)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		if v, _ := srv.Get(ids[0]); func() bool {
			view := v.view(false)
			return view.State == JobRunning
		}() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	body, _ := json.Marshal(JobSpec{Cell: &CellSpec{Bench: "fft", Mode: "SEQ"}})
	apiJSON(t, "POST", ts.URL+"/v1/jobs", body, http.StatusServiceUnavailable, nil)

	for _, id := range ids {
		if _, err := srv.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExperimentJobMatchesPcbench pins the experiment job payload shape.
func TestExperimentJobMatchesPcbench(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	view := waitJob(t, ts, submit(t, ts, JobSpec{Experiment: "table3"}).ID)
	if view.State != JobDone {
		t.Fatalf("table3 job: %s (%s)", view.State, view.Error)
	}
	var res struct {
		Experiment string          `json:"experiment"`
		MachineSHA string          `json:"machine_sha256"`
		Rows       json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(view.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Experiment != "table3" || len(res.MachineSHA) != 64 || len(res.Rows) == 0 {
		t.Fatalf("bad experiment payload: %s", view.Result)
	}
}

// TestCellTraceOption covers the trace knob end to end: the result embeds
// a parseable Chrome trace document, and traced/untraced runs cache
// under different keys.
func TestCellTraceOption(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	plain := waitJob(t, ts, submit(t, ts, JobSpec{Cell: &CellSpec{Bench: "model", Mode: "Coupled"}}).ID)
	traced := waitJob(t, ts, submit(t, ts, JobSpec{
		Cell:    &CellSpec{Bench: "model", Mode: "Coupled"},
		Options: SimOptions{Trace: true},
	}).ID)
	if plain.State != JobDone || traced.State != JobDone {
		t.Fatalf("states: %s / %s", plain.State, traced.State)
	}
	if traced.CacheHit {
		t.Fatal("traced run must not hit the untraced run's cache entry")
	}
	var cell CellResult
	if err := json.Unmarshal(traced.Result, &cell); err != nil {
		t.Fatal(err)
	}
	if len(cell.Trace) == 0 {
		t.Fatal("traced cell has no trace document")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(cell.Trace, &doc); err != nil {
		t.Fatalf("trace document: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace document is empty")
	}
}

// TestPresets covers preset resolution and that preset names surface in
// the rejection message.
func TestPresets(t *testing.T) {
	// An unusual machine so a preset run cannot collide with baseline
	// cache entries.
	cfg := machine.Mix(3, 3)
	_, ts := newTestServer(t, Options{Workers: 1, Presets: map[string]*machine.Config{"wide": cfg}})
	view := waitJob(t, ts, submit(t, ts, JobSpec{Cell: &CellSpec{Bench: "fft", Mode: "Coupled"}, Preset: "wide"}).ID)
	if view.State != JobDone {
		t.Fatalf("preset job: %s (%s)", view.State, view.Error)
	}
	var cell CellResult
	if err := json.Unmarshal(view.Result, &cell); err != nil {
		t.Fatal(err)
	}
	wantSHA, err := cfg.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if cell.MachineSHA != wantSHA {
		t.Fatalf("preset cell ran on machine %s, want %s", cell.MachineSHA, wantSHA)
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"table2","preset":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(buf.String(), "wide") {
		t.Fatalf("unknown-preset error should list valid presets: %d %s", resp.StatusCode, buf.String())
	}
}

func ExampleJobState_Terminal() {
	fmt.Println(JobQueued.Terminal(), JobDone.Terminal())
	// Output: false true
}
