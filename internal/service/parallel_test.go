package service

// Tests for intra-job parallel cell execution (Options.SweepParallelism):
// the parallel engine must be invisible in every output byte — result
// payloads and NDJSON streams identical to a sequential daemon's, and a
// mid-sweep cancellation must still stream a contiguous grid-order
// prefix before the terminal state line.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// streamAll reads a job's NDJSON stream to completion.
func streamAll(t *testing.T, url, id string) string {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestParallelSweepByteIdentical runs the same sweep on a sequential
// daemon (SweepParallelism 1) and a 4-wide one, each with a cold cache,
// and requires the full NDJSON stream and the result payload to match
// byte for byte.
func TestParallelSweepByteIdentical(t *testing.T) {
	spec := JobSpec{Sweep: &SweepSpec{Benches: []string{"fft", "matrix"}, MinIU: 1, MaxIU: 2}}

	run := func(par int) (stream string, result json.RawMessage) {
		_, ts := newTestServer(t, Options{Workers: 2, SweepParallelism: par})
		job := submit(t, ts, spec)
		stream = streamAll(t, ts.URL, job.ID)
		view := waitJob(t, ts, job.ID)
		if view.State != JobDone {
			t.Fatalf("par=%d: job finished %s (%s), want done", par, view.State, view.Error)
		}
		return stream, view.Result
	}

	seqStream, seqResult := run(1)
	parStream, parResult := run(4)
	if seqStream != parStream {
		t.Errorf("NDJSON stream differs between sequential and parallel engines:\nseq:\n%s\npar:\n%s", seqStream, parStream)
	}
	if !bytes.Equal(seqResult, parResult) {
		t.Errorf("result payload differs between sequential and parallel engines:\nseq: %s\npar: %s", seqResult, parResult)
	}
}

// TestParallelSweepCancelContiguousPrefix cancels a 4-wide sweep mid-run
// while following its stream: the cells that made it out must be exactly
// the grid-order prefix (no gaps, no out-of-order stragglers from
// in-flight workers), and the stream must terminate with the cancelled
// state.
func TestParallelSweepCancelContiguousPrefix(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, SweepParallelism: 4})

	sw := &SweepSpec{Benches: []string{"lud", "fft", "matrix", "model"}, MinIU: 1, MaxIU: 4}
	job := submit(t, ts, JobSpec{Sweep: sw})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The server normalizes the spec on submit (FPU range defaults);
	// build the expected grid from the normalized spec it echoes back.
	grid := job.Spec.Sweep.Cells()
	var cells []CellResult
	var finalState JobState
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var state struct {
			State JobState `json:"state"`
		}
		if json.Unmarshal(sc.Bytes(), &state) == nil && state.State != "" {
			finalState = state.State
			break
		}
		var cell CellResult
		if err := json.Unmarshal(sc.Bytes(), &cell); err != nil {
			t.Fatalf("stream line %d: %v", len(cells), err)
		}
		cells = append(cells, cell)
		if len(cells) == 2 {
			// Mid-sweep: in-flight cells beyond the frontier exist at
			// width 4. Cancel and keep draining the stream.
			apiJSON(t, "DELETE", ts.URL+"/v1/jobs/"+job.ID, nil, http.StatusOK, nil)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if finalState != JobCancelled {
		t.Fatalf("stream ended in state %q with %d/%d cells, want cancelled", finalState, len(cells), len(grid))
	}
	if len(cells) < 2 || len(cells) >= len(grid) {
		t.Fatalf("streamed %d cells of %d; cancellation was not mid-sweep", len(cells), len(grid))
	}
	for i, cell := range cells {
		want := grid[i]
		if cell.Bench != want.Bench || cell.IUs != want.IU || cell.FPUs != want.FPU {
			t.Errorf("cell %d = %s %diu %dfpu, want grid-order %s %diu %dfpu",
				i, cell.Bench, cell.IUs, cell.FPUs, want.Bench, want.IU, want.FPU)
		}
	}

	view := waitJob(t, ts, job.ID)
	if view.State != JobCancelled {
		t.Fatalf("job state %s, want cancelled", view.State)
	}
	// The job must settle promptly: cancelled in-flight workers drain
	// without emitting, they do not hang the pool.
	if view.Finished == nil || time.Since(*view.Finished) < 0 {
		t.Fatal("cancelled job has no finish time")
	}
}
