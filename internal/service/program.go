package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"pcoup/internal/compiler"
	"pcoup/internal/experiments"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/oracle"
	"pcoup/internal/sexpr"
	"pcoup/internal/sim"
)

// ProgramSpec is an untrusted source program submitted for compilation
// and simulation (POST /v1/programs, or the "program" field of a job
// spec). The source crosses a trust boundary: it is parsed, compiled,
// and simulated under the strict resource limits of
// compiler.ServiceLimits plus a cycle budget, and every submission is
// validated by a bounded compile before it is accepted.
type ProgramSpec struct {
	// Source is the program text (s-expression surface syntax).
	Source string `json:"source"`
	// Mode selects the compiler schedule (seq, sts, tpe, coupled,
	// ideal; default coupled).
	Mode string `json:"mode,omitempty"`
	// DisableOpt turns off the scalar optimization passes.
	DisableOpt bool `json:"disable_opt,omitempty"`
	// AutoUnroll expands counted constant-bound loops up to this many
	// replicated iterations (0: off).
	AutoUnroll int `json:"auto_unroll,omitempty"`
	// Verify additionally runs the reference interpreter and fails the
	// job on any divergence from the simulated memory image. Only valid
	// for race-free programs (the interpreter executes forks
	// sequentially).
	Verify bool `json:"verify,omitempty"`
}

// ProgramError marks a program submission rejected for what it contains
// — a syntax error, a resource-limit violation, or an invalid knob —
// rather than for how the service is doing. The HTTP layer maps it to
// 422 Unprocessable Entity, and the fleet gateway treats it as
// permanent (no failover: every backend would reject it identically).
type ProgramError struct{ Err error }

func (e *ProgramError) Error() string { return "program: " + e.Err.Error() }
func (e *ProgramError) Unwrap() error { return e.Err }

// programCompileTimeout bounds the submission-time validation compile.
// The worker's execution compile runs under the job's own deadline.
const programCompileTimeout = 5 * time.Second

// DefaultProgramCycles is the simulation cycle budget applied to
// program jobs that set no options.max_cycles. Exceeding it finishes
// the job in the budget_exceeded state rather than pinning a worker.
const DefaultProgramCycles = 10_000_000

// normalize validates the program spec: the mode must parse, and the
// source must compile under the service limits against the resolved
// machine (nil = baseline). Every rejection is wrapped in ProgramError
// so the transport layers can distinguish "your program is bad" (422)
// from "the service is unhealthy" (5xx).
func (p *ProgramSpec) normalize(cfg *machine.Config) error {
	if strings.TrimSpace(p.Source) == "" {
		return &ProgramError{Err: fmt.Errorf("source is empty")}
	}
	if p.Mode == "" {
		p.Mode = string(experiments.COUPLED)
	}
	mode, err := experiments.ParseMode(p.Mode)
	if err != nil {
		return &ProgramError{Err: err}
	}
	p.Mode = string(mode)
	if p.AutoUnroll < 0 {
		return &ProgramError{Err: fmt.Errorf("auto_unroll: must be >= 0")}
	}
	lim := compiler.ServiceLimits()
	lim.Deadline = time.Now().Add(programCompileTimeout)
	if _, _, err := compiler.CompileBounded(context.Background(), p.Source, cfg, p.compilerOptions(), lim); err != nil {
		return &ProgramError{Err: err}
	}
	return nil
}

// compilerOptions maps the spec's knobs to compiler options. Call after
// normalize (Mode must be canonical).
func (p *ProgramSpec) compilerOptions() compiler.Options {
	return compiler.Options{
		Mode:       experiments.CompilerMode(experiments.Mode(p.Mode)),
		DisableOpt: p.DisableOpt,
		AutoUnroll: p.AutoUnroll,
	}
}

// canonicalSourceSHA parses the source under the service's parse limits
// and hashes the re-rendered forms, so formatting and comments do not
// fragment the cache: two submissions of the same program share one
// cache entry and one fleet routing home.
func canonicalSourceSHA(src string) (string, error) {
	lim := compiler.ServiceLimits()
	forms, err := sexpr.ParseLimits(src, sexpr.Limits{
		MaxBytes: lim.MaxSourceBytes,
		MaxNodes: lim.MaxNodes,
		MaxDepth: lim.MaxDepth,
	})
	if err != nil {
		return "", &ProgramError{Err: err}
	}
	h := sha256.New()
	for _, f := range forms {
		h.Write([]byte(f.String()))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ProgramContentKey is the exported program cache key: the SHA-256
// content address of one (canonical source, machine, compiler options,
// sim options) compile-and-run. The fleet gateway routes program jobs
// on it so identical resubmissions land on the same backend and find
// its cache hot.
func ProgramContentKey(p *ProgramSpec, cfg *machine.Config, o SimOptions) (string, error) {
	src, err := canonicalSourceSHA(p.Source)
	if err != nil {
		return "", err
	}
	msha, err := machineSHA(cfg)
	if err != nil {
		return "", err
	}
	mode := p.Mode
	if mode == "" {
		mode = string(experiments.COUPLED)
	}
	return keyDoc{
		Kind: "program", Mode: mode, SourceSHA: src, MachineSHA: msha, Options: o,
		Extra: fmt.Sprintf("opt=%t,unroll=%d,verify=%t", !p.DisableOpt, p.AutoUnroll, p.Verify),
	}.hash(), nil
}

// ProgramResult is the payload of a program job: run statistics plus
// the final contents of every declared global (the program's observable
// output).
type ProgramResult struct {
	Name       string             `json:"name"`
	Mode       string             `json:"mode"`
	MachineSHA string             `json:"machine_sha256"`
	Cycles     int64              `json:"cycles"`
	Ops        int64              `json:"ops"`
	Threads    int                `json:"threads"`
	Util       map[string]float64 `json:"utilization"`
	// Globals maps each declared global to its final values, rendered
	// as decimal strings (integers) or Go floats.
	Globals map[string][]string `json:"globals"`
	// Verified is set when the run was cross-checked against the
	// reference interpreter.
	Verified bool `json:"verified,omitempty"`
}

// runProgramJob compiles and simulates one untrusted program under the
// service limits and the cycle budget, consulting the cache first.
func (s *Server) runProgramJob(ctx context.Context, job *Job) (json.RawMessage, error) {
	p := job.spec.Program
	key, err := ProgramContentKey(p, job.cfg, job.spec.Options)
	if err != nil {
		return nil, err
	}
	if payload, ok := s.cache.Get(key); ok {
		s.markHit(job)
		return payload, nil
	}

	cfg := job.cfg
	if cfg == nil {
		cfg = machine.Baseline()
	}
	// Recompile at execution (normalize compiled for validation only and
	// discarded the binary — jobs may sit queued or journaled across a
	// restart, and cached hits skip this entirely).
	prog, _, err := compiler.CompileBounded(ctx, p.Source, cfg, p.compilerOptions(), compiler.ServiceLimits())
	if err != nil {
		if compiler.IsResourceLimit(err) {
			return nil, &ProgramError{Err: err}
		}
		return nil, err
	}

	sm, err := sim.New(cfg, prog, sim.WithContext(ctx))
	if err != nil {
		return nil, err
	}
	maxCycles := job.spec.Options.MaxCycles
	if maxCycles <= 0 {
		maxCycles = DefaultProgramCycles
	}
	r, err := sm.Run(maxCycles)
	if err != nil {
		return nil, err
	}

	msha, err := cfg.Hash()
	if err != nil {
		return nil, err
	}
	out := ProgramResult{
		Name: prog.Name, Mode: p.Mode, MachineSHA: msha,
		Cycles: r.Cycles, Ops: r.Ops, Threads: len(r.Threads),
		Util:    map[string]float64{},
		Globals: map[string][]string{},
	}
	for k := 0; k < machine.NumUnitKinds; k++ {
		kind := machine.UnitKind(k)
		out.Util[kind.String()] = r.Utilization(kind)
	}
	for _, d := range prog.Data {
		if strings.HasPrefix(d.Name, "_") {
			continue // hidden synchronization cells
		}
		vals := make([]string, len(d.Values))
		for i := range d.Values {
			v, _ := sm.Memory().Peek(d.Addr + int64(i))
			vals[i] = v.String()
		}
		out.Globals[d.Name] = vals
	}

	if p.Verify {
		if err := verifyProgram(p.Source, prog, sm); err != nil {
			return nil, err
		}
		out.Verified = true
	}
	sm.Release()

	payload, err := json.Marshal(out)
	if err != nil {
		return nil, err
	}
	s.cache.Put(key, payload)
	return payload, nil
}

// verifyProgram replays the source on the reference interpreter and
// compares every global against the simulation's memory image. Any
// mismatch on a race-free program is a toolchain bug; on a racy program
// it flags the race.
func verifyProgram(src string, prog *isa.Program, sm *sim.Sim) error {
	want, err := oracle.Run(src)
	if err != nil {
		return &ProgramError{Err: fmt.Errorf("verify: interpreter: %w", err)}
	}
	addrs := map[string]int64{}
	for _, d := range prog.Data {
		addrs[d.Name] = d.Addr
	}
	for name, vals := range want {
		if strings.HasPrefix(name, "_") {
			continue
		}
		base, ok := addrs[name]
		if !ok {
			return fmt.Errorf("verify: global %q missing from compiled program", name)
		}
		for i, w := range vals {
			got, _ := sm.Memory().Peek(base + int64(i))
			if !got.Equal(w) {
				return fmt.Errorf("verify: divergence: %s[%d] = %v, interpreter says %v", name, i, got, w)
			}
		}
	}
	return nil
}
