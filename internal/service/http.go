package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"pcoup/internal/machine"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs             submit a job (202 + job view)
//	POST   /v1/programs         compile-and-run an untrusted source program (202 + job view; 422 on limit/syntax rejection)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status; includes result when done
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/stream NDJSON: per-cell results as they finish
//	GET    /v1/cache/{key}      raw cached payload for a content key (404 on miss)
//	GET    /healthz             liveness: always 200 while the process serves, with load detail
//	GET    /readyz              readiness: 503 + Retry-After while draining
//	GET    /metrics             Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/programs", s.handleProgram)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON renders v with a stable, readable encoding.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The tenant name is pure attribution (journal, metrics, views) —
	// authentication happens at the gateway, which sets this header from
	// the verified API key. Length-cap the client-supplied value so a
	// hostile direct submitter cannot bloat journal records.
	tenant := r.Header.Get("X-PC-Tenant")
	if len(tenant) > 64 {
		tenant = tenant[:64]
	}
	s.submitAndRespond(w, spec, tenant)
}

// submitAndRespond enqueues spec and writes the submission response:
// 202 with the job view, 503 when draining or full, 422 when the
// submitted program itself was rejected (ProgramError), 400 otherwise.
func (s *Server) submitAndRespond(w http.ResponseWriter, spec JobSpec, tenant string) {
	job, err := s.SubmitWithTenant(spec, tenant)
	var pe *ProgramError
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, job.view(false))
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &pe):
		writeError(w, http.StatusUnprocessableEntity, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// ProgramRequest is the POST /v1/programs body: the program spec
// flattened to the top level plus the usual machine/options/timeout job
// fields. It is sugar for POST /v1/jobs with a "program" spec — both
// produce identical jobs, cache entries, and fleet routing keys.
type ProgramRequest struct {
	ProgramSpec
	Machine   *machine.Config `json:"machine,omitempty"`
	Preset    string          `json:"preset,omitempty"`
	Options   SimOptions      `json:"options,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
}

// JobSpec converts the request to the equivalent job spec.
func (pr *ProgramRequest) JobSpec() JobSpec {
	p := pr.ProgramSpec
	return JobSpec{
		Program: &p,
		Machine: pr.Machine, Preset: pr.Preset,
		Options: pr.Options, TimeoutMS: pr.TimeoutMS,
	}
}

func (s *Server) handleProgram(w http.ResponseWriter, r *http.Request) {
	var req ProgramRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tenant := r.Header.Get("X-PC-Tenant")
	if len(tenant) > 64 {
		tenant = tenant[:64]
	}
	s.submitAndRespond(w, req.JobSpec(), tenant)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

// jobFor resolves {id}, writing a 404 on miss.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	job, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, false
	}
	return job, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, job.view(true))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job.view(false))
}

// handleStream writes NDJSON: one line per completed sweep cell (in grid
// order), then a terminal status line {"state":...}. Non-sweep jobs get
// their whole result as the single data line once done. The stream
// follows a live job until it reaches a terminal state or the client
// goes away.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		job.mu.Lock()
		cells := job.cells[sent:]
		state := job.state
		result := job.result
		errMsg := job.errMsg
		updated := job.updated
		job.mu.Unlock()

		for _, cell := range cells {
			w.Write(cell)
			w.Write([]byte("\n"))
			sent++
		}
		if state.Terminal() {
			if sent == 0 && len(result) > 0 {
				w.Write(result)
				w.Write([]byte("\n"))
			}
			final, _ := json.Marshal(struct {
				State JobState `json:"state"`
				Error string   `json:"error,omitempty"`
			}{state, errMsg})
			w.Write(final)
			w.Write([]byte("\n"))
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

// handleCacheGet serves the raw cached payload for a content key. The
// fleet gateway uses this as the peer-fill probe: before computing a
// cell it owns (or stole), it asks the cell's cache home whether the
// bytes already exist. Payloads are content-addressed, so serving them
// cross-node cannot change results. Lookups go through Get, not Peek:
// a served payload is a genuine hit and should refresh LRU recency.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	payload, ok := s.cache.Get(key)
	if !ok {
		w.Header().Set("X-PC-Cache", "miss")
		writeError(w, http.StatusNotFound, errors.New("cache: no entry for key"))
		return
	}
	w.Header().Set("X-PC-Cache", "hit")
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}

// Health is the /healthz response body. Liveness is distinct from
// readiness: a draining daemon is still alive (200 here) but not ready
// (503 on /readyz), so load balancers and the fleet gateway stop routing
// to it without a liveness-triggered restart. The load fields
// (queue depth, inflight) feed the fleet gateway's probes.
type Health struct {
	Status     string `json:"status"`
	Accepting  bool   `json:"accepting"`
	QueueDepth int    `json:"queue_depth"`
	Inflight   int    `json:"inflight"`
	Workers    int    `json:"workers"`
}

func (s *Server) health() Health {
	g := s.gauges()
	return Health{
		Status:     "ok",
		Accepting:  g.Accepting,
		QueueDepth: g.QueueDepth,
		Inflight:   g.Inflight,
		Workers:    g.Workers,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleReadyz reports whether the daemon accepts new jobs. During a
// drain it returns 503 with Retry-After so probes eject the backend and
// clients back off until the replacement process is up.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	if !h.Accepting {
		h.Status = "draining"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	h.Status = "ready"
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteText(w, s.gauges())
}
