package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// seedJournal writes raw records as a previous daemon would have left
// them (no compaction, no finish for pending jobs).
func seedJournal(t *testing.T, path string, write func(j *journal)) {
	t.Helper()
	j, pending, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if pending != nil {
		t.Fatalf("fresh journal reported pending jobs: %v", pending)
	}
	write(j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func cellSpec() JobSpec {
	return JobSpec{Cell: &CellSpec{Bench: "matrix", Mode: "Coupled"}}
}

// TestJournalRecoversInterruptedJob simulates a daemon killed mid-job:
// the journal holds a submit with no finish. The next Start must
// resubmit the job under the same ID, run it to completion, and count
// the recovery in /metrics.
func TestJournalRecoversInterruptedJob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	seedJournal(t, path, func(j *journal) {
		spec := cellSpec()
		if err := j.submit("j-000007", spec, "", 0); err != nil {
			t.Fatal(err)
		}
	})

	srv, ts := newTestServer(t, Options{Workers: 1, JournalFile: path, RetryBackoff: time.Millisecond})
	view := waitJob(t, ts, "j-000007")
	if view.State != JobDone {
		t.Fatalf("recovered job state %s (%s), want done", view.State, view.Error)
	}
	if view.Attempts != 1 {
		t.Errorf("recovered job attempts = %d, want 1", view.Attempts)
	}

	if v := metricValue(t, ts, "pcserved_journal_recovered_total"); v != 1 {
		t.Errorf("pcserved_journal_recovered_total = %v, want 1", v)
	}

	// New submissions must not collide with the recovered ID space.
	next := submit(t, ts, cellSpec())
	if next.ID <= "j-000007" {
		t.Errorf("post-recovery submission got ID %s, want one after j-000007", next.ID)
	}
	_ = srv
}

// TestJournalFinishedJobNotReplayed: a submit paired with a finish is
// complete; restart must not resurrect it.
func TestJournalFinishedJobNotReplayed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	seedJournal(t, path, func(j *journal) {
		spec := cellSpec()
		j.submit("j-000001", spec, "", 0)
		j.finish("j-000001", JobDone)
	})
	srv, ts := newTestServer(t, Options{Workers: 1, JournalFile: path})
	if _, err := srv.Get("j-000001"); err == nil {
		t.Error("finished job was resurrected from the journal")
	}
	if v := metricValue(t, ts, "pcserved_journal_recovered_total"); v != 0 {
		t.Errorf("pcserved_journal_recovered_total = %v, want 0", v)
	}
}

// TestJournalRetryBudget: a job interrupted as many times as the budget
// allows is failed, not re-run, and the exhaustion is counted.
func TestJournalRetryBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	seedJournal(t, path, func(j *journal) {
		spec := cellSpec()
		j.submit("j-000003", spec, "", 2) // two prior interruptions; budget 2 -> third attempt over budget
	})
	_, ts := newTestServer(t, Options{Workers: 1, JournalFile: path, RetryBudget: 2})
	view := waitJob(t, ts, "j-000003")
	if view.State != JobFailed || !strings.Contains(view.Error, "retry budget") {
		t.Errorf("over-budget job: state %s error %q, want failed with retry budget message", view.State, view.Error)
	}
	if v := metricValue(t, ts, "pcserved_retry_budget_exhausted_total"); v != 1 {
		t.Errorf("pcserved_retry_budget_exhausted_total = %v, want 1", v)
	}
}

// TestJournalSurvivesTornTrailingRecord: a record half-written at kill
// time must not poison replay of the earlier records.
func TestJournalSurvivesTornTrailingRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	seedJournal(t, path, func(j *journal) {
		spec := cellSpec()
		j.submit("j-000001", spec, "", 0)
	})
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"fin`) // torn mid-record
	f.Close()

	_, pending, err := openJournal(path)
	if err != nil {
		t.Fatalf("torn journal failed to open: %v", err)
	}
	if len(pending) != 1 || pending[0].ID != "j-000001" {
		t.Errorf("pending = %v, want the one intact submission", pending)
	}
}

// TestJournalCompaction: reopening rewrites the file to only live
// records, so the journal does not grow with daemon lifetime.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	seedJournal(t, path, func(j *journal) {
		spec := cellSpec()
		for i := 1; i <= 20; i++ {
			id := "j-00000" + string(rune('0'+i%10))
			j.submit(id, spec, "", 0)
			j.finish(id, JobDone)
		}
	})
	j, pending, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if len(pending) != 0 {
		t.Fatalf("pending = %v, want none", pending)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Errorf("compacted journal not empty: %q", data)
	}
}

func TestRetryDelay(t *testing.T) {
	base := time.Second
	for _, tc := range []struct {
		attempts int
		want     time.Duration
	}{
		{0, 0}, {1, 0}, {2, base}, {3, 2 * base}, {4, 4 * base}, {100, maxRetryBackoff},
	} {
		if got := retryDelay(base, tc.attempts); got != tc.want {
			t.Errorf("retryDelay(%v, %d) = %v, want %v", base, tc.attempts, got, tc.want)
		}
	}
}
