package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testProgram is a small race-free program with a known output.
const testProgram = `
(program smoke
  (global a (array int 4) (init 1 2 3 4))
  (global out (array int 2))
  (def (main)
    (set s 0)
    (for (i 0 4) (set s (+ s (aref a i))))
    (aset out 0 s)
    (fork (aset out 1 (* 2 21)))
    (join)))`

// postProgram submits one ProgramRequest and returns the HTTP status
// plus the decoded job view (valid only on 202).
func postProgram(t *testing.T, ts *httptest.Server, req ProgramRequest) (int, JobView) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/programs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatalf("decoding view: %v", err)
		}
	}
	return resp.StatusCode, view
}

// TestProgramJobEndToEnd submits a program over POST /v1/programs,
// checks the computed globals, and verifies an identical resubmission is
// a cache hit with byte-identical payload.
func TestProgramJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	status, view := postProgram(t, ts, ProgramRequest{ProgramSpec: ProgramSpec{Source: testProgram, Verify: true}})
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	final := waitJob(t, ts, view.ID)
	if final.State != JobDone {
		t.Fatalf("state %s (%s), want done", final.State, final.Error)
	}
	var res ProgramResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if got := res.Globals["out"]; len(got) != 2 || got[0] != "10" || got[1] != "42" {
		t.Fatalf("out = %v, want [10 42]", got)
	}
	if !res.Verified {
		t.Fatal("result not marked verified")
	}
	if res.Threads < 2 {
		t.Fatalf("threads = %d, want >= 2 (main + fork)", res.Threads)
	}

	// Identical resubmission — different formatting, same canonical
	// forms — must be served from the cache.
	reformatted := strings.ReplaceAll(testProgram, "\n", " \n ") + " ; trailing comment\n"
	status, again := postProgram(t, ts, ProgramRequest{ProgramSpec: ProgramSpec{Source: reformatted, Verify: true}})
	if status != http.StatusAccepted {
		t.Fatalf("resubmit status %d", status)
	}
	refinal := waitJob(t, ts, again.ID)
	if refinal.State != JobDone || !refinal.CacheHit {
		t.Fatalf("resubmit: state %s hit=%v, want done hit=true", refinal.State, refinal.CacheHit)
	}
	if string(refinal.Result) != string(final.Result) {
		t.Fatal("cached payload differs from original")
	}
}

// TestProgramNestingBomb422 submits a parser recursion bomb: it must be
// rejected at submission with 422, not crash the daemon or occupy a
// worker.
func TestProgramNestingBomb422(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	bomb := strings.Repeat("(", 100_000)
	status, _ := postProgram(t, ts, ProgramRequest{ProgramSpec: ProgramSpec{Source: bomb}})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("nesting bomb: status %d, want 422", status)
	}
	// The daemon still serves.
	status, view := postProgram(t, ts, ProgramRequest{ProgramSpec: ProgramSpec{Source: testProgram}})
	if status != http.StatusAccepted {
		t.Fatalf("follow-up submit status %d", status)
	}
	if final := waitJob(t, ts, view.ID); final.State != JobDone {
		t.Fatalf("follow-up state %s", final.State)
	}
}

// TestProgramOverCap422 covers the remaining limit dimensions: oversized
// source, a forall-static thread explosion, and an unrolling IR bomb all
// answer 422 with a limit message.
func TestProgramOverCap422(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		src  string
	}{
		{"bytes", "(program p (def (main) (set x " + strings.Repeat("1", 70_000) + ")))"},
		{"threads", `
(program p
  (global a (array int 4096))
  (def (main) (forall-static (i 0 4096) (aset a i i))))`},
		{"irops", `
(program p
  (global out (array int 1))
  (def (main)
    (unroll (a 0 100) (unroll (b 0 100) (unroll (c 0 100)
      (aset out 0 (+ (aref out 0) 1)))))))`},
		{"memwords", `
(program p
  (global big (array int 9000000))
  (def (main) (aset big 0 1)))`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, _ := postProgram(t, ts, ProgramRequest{ProgramSpec: ProgramSpec{Source: c.src}})
			if status != http.StatusUnprocessableEntity {
				t.Fatalf("%s: status %d, want 422", c.name, status)
			}
		})
	}
}

// TestProgramBudgetExceeded runs a long loop under a tiny cycle budget:
// the job must land in the distinct budget_exceeded terminal state, not
// failed.
func TestProgramBudgetExceeded(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	long := `
(program spin
  (global out (array int 1))
  (def (main)
    (set s 0)
    (for (i 0 100000) (set s (+ s i)))
    (aset out 0 s)))`
	status, view := postProgram(t, ts, ProgramRequest{
		ProgramSpec: ProgramSpec{Source: long},
		Options:     SimOptions{MaxCycles: 500},
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	final := waitJob(t, ts, view.ID)
	if final.State != JobBudgetExceeded {
		t.Fatalf("state %s (%s), want budget_exceeded", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "cycles") {
		t.Fatalf("error %q does not mention cycles", final.Error)
	}
}

// TestPanicIsolation injects a panic into one job's execution: that job
// must fail with a typed message, pcserved_panics_total must increment,
// and the daemon must keep serving subsequent jobs.
func TestPanicIsolation(t *testing.T) {
	srv, ts := newTestServer(t, Options{
		Workers: 2,
		ExecHook: func(job *Job) {
			if job.spec.Program != nil && strings.Contains(job.spec.Program.Source, "boom") {
				panic("injected compiler crash")
			}
		},
	})

	boom := `
(program boom
  (global out (array int 1))
  (def (main) (aset out 0 1)))`
	status, view := postProgram(t, ts, ProgramRequest{ProgramSpec: ProgramSpec{Source: boom}})
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d", status)
	}
	final := waitJob(t, ts, view.ID)
	if final.State != JobFailed {
		t.Fatalf("state %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "panic") {
		t.Fatalf("error %q does not mention the panic", final.Error)
	}
	if got := metricValue(t, ts, "pcserved_panics_total"); got != 1 {
		t.Fatalf("pcserved_panics_total = %v, want 1", got)
	}

	// The worker that recovered is still alive and runs the next job.
	status, view = postProgram(t, ts, ProgramRequest{ProgramSpec: ProgramSpec{Source: testProgram}})
	if status != http.StatusAccepted {
		t.Fatalf("follow-up submit status %d", status)
	}
	if final := waitJob(t, ts, view.ID); final.State != JobDone {
		t.Fatalf("follow-up state %s (%s)", final.State, final.Error)
	}
	_ = srv
}

// TestProgramSpecValidation exercises the submit-time rejections that
// are plain 400s (shape errors) versus 422s (program content).
func TestProgramSpecValidation(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})

	// Program + cell is a shape error, not a program error.
	_, err := srv.Submit(JobSpec{
		Program: &ProgramSpec{Source: testProgram},
		Cell:    &CellSpec{Bench: "fft", Mode: "coupled"},
	})
	var pe *ProgramError
	if err == nil || errors.As(err, &pe) {
		t.Fatalf("program+cell: err = %v, want plain validation error", err)
	}

	// Unknown mode and empty source are program errors (422 path).
	for _, spec := range []ProgramSpec{
		{Source: testProgram, Mode: "warp"},
		{Source: "   "},
		{Source: "(program p (def (main) (frobnicate x)))"},
	} {
		_, err := srv.Submit(JobSpec{Program: &spec})
		if !errors.As(err, &pe) {
			t.Fatalf("spec %+v: err = %v, want ProgramError", spec, err)
		}
	}
}

// TestProgramKeyStability pins the content key against accidental
// drift: same canonical program, different formatting, same key — and
// every knob change moves the key.
func TestProgramKeyStability(t *testing.T) {
	base := &ProgramSpec{Source: testProgram, Mode: "coupled"}
	k1, err := ProgramContentKey(base, nil, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reformatted := &ProgramSpec{Source: "; c\n" + strings.ReplaceAll(testProgram, "\n", "\n "), Mode: "coupled"}
	k2, err := ProgramContentKey(reformatted, nil, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("formatting changed the content key")
	}
	variants := []*ProgramSpec{
		{Source: testProgram, Mode: "seq"},
		{Source: testProgram, Mode: "coupled", DisableOpt: true},
		{Source: testProgram, Mode: "coupled", Verify: true},
		{Source: testProgram, Mode: "coupled", AutoUnroll: 8},
	}
	seen := map[string]bool{k1: true}
	for i, v := range variants {
		k, err := ProgramContentKey(v, nil, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if seen[k] {
			t.Fatalf("variant %d collided with a previous key", i)
		}
		seen[k] = true
	}
}

// TestProgramCompileDeadline pins that normalize applies a compile
// deadline at all (a regression guard for the untrusted boundary — the
// actual bomb rejection is covered by the irops test above).
func TestProgramCompileDeadline(t *testing.T) {
	if programCompileTimeout <= 0 || programCompileTimeout > 30*time.Second {
		t.Fatalf("programCompileTimeout = %v out of sane range", programCompileTimeout)
	}
}
