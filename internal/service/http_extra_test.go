package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestStreamClientDisconnect: a stream follower whose client goes away
// must release its handler goroutine promptly instead of blocking on
// the job's update channel forever.
func TestStreamClientDisconnect(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1})

	// Occupy the only worker so the streamed job stays queued (and thus
	// never publishes an update the stream could wake on).
	blocker := submit(t, ts, JobSpec{Sweep: &SweepSpec{Benches: []string{"lud"}, MinIU: 1, MaxIU: 6}})
	queued := submit(t, ts, JobSpec{Cell: &CellSpec{Bench: "matrix", Mode: "SEQ"}})

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/v1/jobs/"+queued.ID+"/stream", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	returned := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(rec, req)
		close(returned)
	}()

	// Let the handler reach its blocking select, then disconnect.
	select {
	case <-returned:
		t.Fatal("stream returned before the client disconnected (job should still be queued)")
	case <-time.After(100 * time.Millisecond):
	}
	cancel()
	select {
	case <-returned:
	case <-time.After(5 * time.Second):
		t.Fatal("stream handler still blocked 5s after client disconnect")
	}

	if _, err := srv.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
}

// TestReadyzDrain: during shutdown the daemon stays live (200 /healthz)
// but turns unready (503 /readyz with Retry-After), so probes stop
// routing to it without restarting it.
func TestReadyzDrain(t *testing.T) {
	srv := New(Options{Workers: 1})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// Park a slow job so Shutdown blocks in its drain phase.
	blocker := submit(t, ts, JobSpec{Sweep: &SweepSpec{Benches: []string{"lud"}, MinIU: 1, MaxIU: 6}})
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		code, retryAfter := resp.StatusCode, resp.Header.Get("Retry-After")
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			if retryAfter == "" {
				t.Fatal("draining readyz has no Retry-After header")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never turned 503 during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Liveness is unaffected by the drain.
	var h Health
	apiJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &h)
	if h.Status != "ok" || h.Accepting {
		t.Fatalf("healthz during drain: %+v", h)
	}

	if _, err := srv.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestCacheEvictionMetric: a 1-entry cache bound forces an eviction
// across two distinct jobs, visible in /metrics.
func TestCacheEvictionMetric(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, CacheMaxEntries: 1})

	for _, spec := range []JobSpec{
		{Cell: &CellSpec{Bench: "matrix", Mode: "SEQ"}},
		{Cell: &CellSpec{Bench: "fft", Mode: "SEQ"}},
	} {
		if v := waitJob(t, ts, submit(t, ts, spec).ID); v.State != JobDone {
			t.Fatalf("job: %s (%s)", v.State, v.Error)
		}
	}
	if n := metricValue(t, ts, "pcserved_cache_evictions_total"); n < 1 {
		t.Fatalf("evictions = %v, want >= 1", n)
	}
	if n := metricValue(t, ts, "pcserved_cache_entries"); n != 1 {
		t.Fatalf("cache entries = %v, want 1 under a 1-entry bound", n)
	}
	if n := metricValue(t, ts, "pcserved_cache_bytes"); n <= 0 {
		t.Fatalf("cache bytes = %v, want > 0", n)
	}
}
