package service

import (
	"net/http"
	"time"
)

// statusRecorder captures the status code and preserves streaming: the
// NDJSON endpoints rely on Flush, so the wrapper must keep implementing
// http.Flusher when the underlying writer does.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps h so every request emits one structured line through
// logf: method, path, tenant (from the X-PC-Tenant header, "-" when
// anonymous), status, duration, and cache disposition (from the
// response's X-PC-Cache header, "-" for endpoints that don't set one).
// One line per request keeps the log greppable by field.
func AccessLog(h http.Handler, logf func(format string, args ...any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		tenant := r.Header.Get("X-PC-Tenant")
		if tenant == "" {
			tenant = "-"
		}
		cache := rec.Header().Get("X-PC-Cache")
		if cache == "" {
			cache = "-"
		}
		logf("access method=%s path=%s tenant=%s status=%d duration=%s cache=%s",
			r.Method, r.URL.Path, tenant, status, time.Since(start).Round(time.Microsecond), cache)
	})
}
