package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// cacheFileVersion guards the persisted cache format; a mismatch makes
// LoadFile start empty rather than serve results computed by an
// incompatible build.
const cacheFileVersion = 1

// Cache is the content-addressed result cache: payload bytes keyed by
// the SHA-256 of everything that determines them (benchmark sources,
// mode, canonical machine configuration, simulation options — see
// key.go). Because simulations are deterministic, a hit returns a
// byte-identical payload to the run it replaces, in O(1).
type Cache struct {
	mu      sync.Mutex
	entries map[string][]byte
	hits    int64
	misses  int64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: map[string][]byte{}}
}

// Get returns the payload for key, counting a hit or a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	payload, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return payload, ok
}

// Peek is Get without touching the hit/miss counters (used when a lookup
// is speculative and should not skew the ratio).
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	payload, ok := c.entries[key]
	return payload, ok
}

// Put stores payload under key. The caller must not mutate payload after
// handing it over.
func (c *Cache) Put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = payload
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// cacheFile is the on-disk representation. []byte values JSON-encode as
// base64, keeping the file self-contained and diff-friendly enough.
type cacheFile struct {
	Version int               `json:"version"`
	Entries map[string][]byte `json:"entries"`
}

// SaveFile persists the entries to path atomically (write to a temp file
// in the same directory, then rename).
func (c *Cache) SaveFile(path string) error {
	c.mu.Lock()
	doc := cacheFile{Version: cacheFileVersion, Entries: make(map[string][]byte, len(c.entries))}
	for k, v := range c.entries {
		doc.Entries[k] = v
	}
	c.mu.Unlock()

	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("service: encoding cache: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pcserved-cache-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile restores entries from path. A missing file or a version
// mismatch leaves the cache empty and returns nil: a cold cache is a
// correct cache.
func (c *Cache) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var doc cacheFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("service: parsing cache %s: %w", path, err)
	}
	if doc.Version != cacheFileVersion {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range doc.Entries {
		c.entries[k] = v
	}
	return nil
}
