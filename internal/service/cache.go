package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// cacheFileVersion guards the persisted cache format; a mismatch makes
// LoadFile start empty rather than serve results computed by an
// incompatible build. Version 2 switched from an unordered map to a
// recency-ordered entry list so that warm starts restore the LRU order.
const cacheFileVersion = 2

// Cache is the content-addressed result cache: payload bytes keyed by
// the SHA-256 of everything that determines them (benchmark sources,
// mode, canonical machine configuration, simulation options — see
// key.go). Because simulations are deterministic, a hit returns a
// byte-identical payload to the run it replaces, in O(1).
//
// The cache is bounded: when maxEntries or maxBytes is exceeded the
// least-recently-used entries are evicted (a long-lived daemon must not
// grow without limit). Zero limits mean unbounded.
type Cache struct {
	mu         sync.Mutex
	entries    map[string]*list.Element
	ll         *list.List // front = most recently used
	maxEntries int
	maxBytes   int64
	curBytes   int64
	hits       int64
	misses     int64
	evictions  int64
}

// cacheEntry is one resident payload; list elements carry it so eviction
// from the list tail can also delete the map key.
type cacheEntry struct {
	key     string
	payload []byte
}

// NewCache returns an empty, unbounded cache.
func NewCache() *Cache { return NewBoundedCache(0, 0) }

// NewBoundedCache returns an empty cache that evicts least-recently-used
// entries beyond maxEntries entries or maxBytes payload bytes (zero:
// unbounded in that dimension).
func NewBoundedCache(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		entries:    map[string]*list.Element{},
		ll:         list.New(),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
}

// Get returns the payload for key, counting a hit or a miss. A hit
// refreshes the entry's recency.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).payload, true
}

// Peek is Get without touching the hit/miss counters or the recency
// order (used when a lookup is speculative and should not skew either).
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).payload, true
}

// Put stores payload under key as the most recently used entry, evicting
// from the LRU end while over either bound. The caller must not mutate
// payload after handing it over.
func (c *Cache) Put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.curBytes += int64(len(payload)) - int64(len(ent.payload))
		ent.payload = payload
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, payload: payload})
		c.curBytes += int64(len(payload))
	}
	c.evictLocked()
}

// evictLocked drops LRU entries until both bounds hold again. The most
// recent entry is never evicted, so a single oversized payload still
// caches (and evicts everything else).
func (c *Cache) evictLocked() {
	for c.ll.Len() > 1 &&
		((c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.curBytes > c.maxBytes)) {
		el := c.ll.Back()
		ent := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.entries, ent.key)
		c.curBytes -= int64(len(ent.payload))
		c.evictions++
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the resident payload bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}

// Stats returns the lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns the lifetime evicted-entry count.
func (c *Cache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// cacheFile is the on-disk representation: entries most-recently-used
// first, so that loading under a tighter bound keeps the hottest ones
// and a warm start restores the recency order. []byte values JSON-encode
// as base64, keeping the file self-contained.
type cacheFile struct {
	Version int             `json:"version"`
	Entries []cacheFileItem `json:"entries"`
}

type cacheFileItem struct {
	Key     string `json:"key"`
	Payload []byte `json:"payload"`
}

// SaveFile persists the entries to path atomically (write to a temp file
// in the same directory, then rename), most recently used first.
func (c *Cache) SaveFile(path string) error {
	c.mu.Lock()
	doc := cacheFile{Version: cacheFileVersion, Entries: make([]cacheFileItem, 0, c.ll.Len())}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		doc.Entries = append(doc.Entries, cacheFileItem{Key: ent.key, Payload: ent.payload})
	}
	c.mu.Unlock()

	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("service: encoding cache: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pcserved-cache-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile restores entries from path, preserving the persisted recency
// order and honoring the cache's bounds (the most recent entries win). A
// missing file or a version mismatch leaves the cache empty and returns
// nil: a cold cache is a correct cache.
func (c *Cache) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	// Check the version before decoding the entries: older formats lay
	// them out differently (v1 used a map), and an incompatible file
	// should mean "start cold", not an error.
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("service: parsing cache %s: %w", path, err)
	}
	if probe.Version != cacheFileVersion {
		return nil
	}
	var doc cacheFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("service: parsing cache %s: %w", path, err)
	}
	// Insert least recent first so Put's front-insertion rebuilds the
	// original order and bound-eviction drops the coldest entries.
	for i := len(doc.Entries) - 1; i >= 0; i-- {
		c.Put(doc.Entries[i].Key, doc.Entries[i].Payload)
	}
	// Loading is not churn: reset the eviction counter so the metric
	// reports only evictions caused by live traffic.
	c.mu.Lock()
	c.evictions = 0
	c.mu.Unlock()
	return nil
}
