// Package service is the simulation-as-a-service layer: a job queue, a
// bounded worker pool, and a content-addressed result cache behind an
// HTTP JSON API (see http.go for the routes). It turns the one-shot
// experiment drivers of internal/experiments into a long-lived daemon
// (cmd/pcserved) that serves repeated sweeps in O(1) via caching,
// supports per-job deadlines and cancellation threaded down into the
// simulator's cycle loop, and drains gracefully on shutdown.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"pcoup/internal/experiments"
	"pcoup/internal/machine"
	"pcoup/internal/parexec"
	"pcoup/internal/sim"
)

// Submission errors distinguished by the HTTP layer.
var (
	// ErrDraining: the daemon is shutting down and accepts no new jobs.
	ErrDraining = errors.New("service: shutting down, not accepting jobs")
	// ErrQueueFull: the FIFO queue is at capacity.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrNotFound: no such job.
	ErrNotFound = errors.New("service: no such job")
)

// Options configures a Server.
type Options struct {
	// Workers is the worker pool size (default GOMAXPROCS). Each job
	// occupies one worker; experiment drivers additionally parallelize
	// across cells internally.
	Workers int
	// SweepParallelism bounds intra-job cell parallelism: sweep jobs and
	// experiment drivers fan independent cells to this many goroutines
	// through a limiter SHARED across all workers, so total in-flight
	// cells stay bounded no matter how many jobs run at once (fair with
	// Workers rather than multiplicative). Results are merged in
	// submission order, so payloads and NDJSON streams are byte-identical
	// to sequential execution. Default GOMAXPROCS; 1 restores fully
	// sequential intra-job behavior.
	SweepParallelism int
	// QueueCap bounds the FIFO queue (default 256).
	QueueCap int
	// CacheFile, when set, is loaded at Start and persisted on Shutdown.
	CacheFile string
	// CacheMaxEntries bounds the result cache's entry count; beyond it
	// the least-recently-used entries are evicted (0: unbounded).
	CacheMaxEntries int
	// CacheMaxBytes bounds the result cache's payload bytes (0:
	// unbounded).
	CacheMaxBytes int64
	// JournalFile, when set, enables the write-ahead job journal: every
	// accepted job is durable, and a daemon killed mid-job resumes the
	// interrupted jobs (same IDs) on restart.
	JournalFile string
	// RetryBudget bounds how many times an interrupted job is re-run
	// before it is failed instead (default 3).
	RetryBudget int
	// RetryBackoff is the base delay before re-running a job that was
	// already interrupted more than once; it doubles per additional
	// interruption, capped at maxRetryBackoff (default 1s).
	RetryBackoff time.Duration
	// DefaultTimeout bounds jobs that set no timeout_ms (default 10m;
	// negative disables).
	DefaultTimeout time.Duration
	// Presets are named machine configurations offered to job specs, in
	// addition to the always-present "baseline".
	Presets map[string]*machine.Config
	// ExecHook, when set, runs at the start of every job execution
	// (before the cache lookup). Tests use it to inject failures —
	// notably panics, to exercise the worker's panic isolation. A panic
	// from the hook is indistinguishable from a compiler or simulator
	// panic.
	ExecHook func(job *Job)
}

// Server owns the queue, the pool, the cache, and the job table.
type Server struct {
	opts    Options
	cache   *Cache
	metrics *Metrics
	presets map[string]*machine.Config
	journal *journal
	// sweepLim is the process-wide cell-execution limiter shared by every
	// job (nil when SweepParallelism is 1: jobs run cells sequentially).
	sweepLim *parexec.Limiter

	queue      chan *Job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []*Job
	nextID    int
	accepting bool
	started   bool
}

// New builds a Server; call Start before serving its Handler.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.SweepParallelism <= 0 {
		opts.SweepParallelism = runtime.GOMAXPROCS(0)
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 256
	}
	if opts.DefaultTimeout == 0 {
		opts.DefaultTimeout = 10 * time.Minute
	}
	if opts.RetryBudget <= 0 {
		opts.RetryBudget = 3
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = time.Second
	}
	presets := map[string]*machine.Config{"baseline": machine.Baseline()}
	for name, cfg := range opts.Presets {
		presets[name] = cfg
	}
	var lim *parexec.Limiter
	if opts.SweepParallelism > 1 {
		lim = parexec.NewLimiter(opts.SweepParallelism)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		opts:       opts,
		sweepLim:   lim,
		cache:      NewBoundedCache(opts.CacheMaxEntries, opts.CacheMaxBytes),
		metrics:    NewMetrics(),
		presets:    presets,
		queue:      make(chan *Job, opts.QueueCap),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		accepting:  true,
	}
}

// Cache exposes the result cache (tests and tooling).
func (s *Server) Cache() *Cache { return s.cache }

// Start loads the persisted cache (if configured), replays the job
// journal (resubmitting work interrupted by a previous crash), and
// launches the worker pool.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("service: already started")
	}
	s.started = true
	if s.opts.CacheFile != "" {
		if err := s.cache.LoadFile(s.opts.CacheFile); err != nil {
			return err
		}
	}
	if s.opts.JournalFile != "" {
		j, pending, err := openJournal(s.opts.JournalFile)
		if err != nil {
			return err
		}
		s.journal = j
		for _, p := range pending {
			s.recoverLocked(p)
		}
	}
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return nil
}

// recoverLocked resubmits one journaled job that the previous process
// never finished, under its original ID so clients polling across the
// restart see it complete. Called from Start with s.mu held.
func (s *Server) recoverLocked(p pendingJob) {
	spec := p.Spec
	cfg, specErr := spec.normalize(s.presets)
	attempts := p.Attempts + 1
	job := newJob(p.ID, spec, cfg, time.Now())
	job.tenant = p.Tenant
	job.attempts = attempts
	s.jobs[p.ID] = job
	s.order = append(s.order, job)
	if n := jobIDNumber(p.ID); n > s.nextID {
		s.nextID = n
	}
	s.metrics.JournalRecovered()
	s.metrics.JobState(string(JobQueued))
	switch {
	case specErr != nil:
		// The spec no longer validates (e.g. a preset directory changed
		// across the restart): surface the error on the job itself.
		s.finishJob(job, JobFailed, nil, specErr.Error())
	case attempts > s.opts.RetryBudget:
		s.metrics.RetryBudgetExhausted()
		s.finishJob(job, JobFailed, nil,
			fmt.Sprintf("retry budget exhausted: interrupted %d times (budget %d)", p.Attempts, s.opts.RetryBudget))
	default:
		if err := s.journal.submit(p.ID, spec, p.Tenant, attempts); err != nil {
			s.finishJob(job, JobFailed, nil, fmt.Sprintf("journal: %v", err))
			return
		}
		go s.enqueueAfter(job, retryDelay(s.opts.RetryBackoff, attempts))
	}
}

// enqueueAfter places a recovered job on the queue once its retry
// backoff elapses. Shutdown during the wait cancels the job instead.
func (s *Server) enqueueAfter(job *Job, delay time.Duration) {
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-s.baseCtx.Done():
		}
	}
	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		s.finishJob(job, JobCancelled, nil, "cancelled by shutdown")
		return
	}
	select {
	case s.queue <- job:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.finishJob(job, JobFailed, nil, "queue full during journal recovery")
	}
}

// jobIDNumber parses the numeric part of a "j-%06d" job ID (0 if the ID
// has another shape).
func jobIDNumber(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "j-%d", &n); err != nil {
		return 0
	}
	return n
}

// Shutdown gracefully stops the daemon: new submissions are refused
// immediately, queued and running jobs drain, and the cache is persisted.
// If ctx expires before the drain completes, in-flight simulations are
// cancelled (they observe the context within a few thousand cycles) and
// finish in the cancelled state. The cache is persisted in either case.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	wasAccepting := s.accepting
	s.accepting = false
	if wasAccepting && s.started {
		close(s.queue)
	}
	s.mu.Unlock()

	waited := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(waited)
	}()
	var drainErr error
	select {
	case <-waited:
	case <-ctx.Done():
		s.baseCancel()
		<-waited
		drainErr = ctx.Err()
	}
	s.baseCancel()

	if s.opts.CacheFile != "" {
		if err := s.cache.SaveFile(s.opts.CacheFile); err != nil {
			return err
		}
	}
	if s.journal != nil {
		if err := s.journal.Close(); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	return drainErr
}

// Submit validates spec and enqueues a job with no tenant attribution.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	return s.SubmitWithTenant(spec, "")
}

// SubmitWithTenant validates spec and enqueues a job attributed to the
// named tenant (the gateway's X-PC-Tenant pass-through). The tenant
// label rides into the job view, the journal, the access log, and the
// per-tenant counters; it never changes result bytes.
func (s *Server) SubmitWithTenant(spec JobSpec, tenant string) (*Job, error) {
	cfg, err := spec.normalize(s.presets)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.accepting {
		return nil, ErrDraining
	}
	s.nextID++
	job := newJob(fmt.Sprintf("j-%06d", s.nextID), spec, cfg, time.Now())
	job.tenant = tenant
	// Journal before enqueue: a crash between the two replays the job on
	// restart (at-least-once), never loses an accepted one.
	if s.journal != nil {
		if err := s.journal.submit(job.id, spec, tenant, 0); err != nil {
			s.nextID--
			return nil, fmt.Errorf("service: journal: %w", err)
		}
	}
	select {
	case s.queue <- job:
	default:
		s.nextID--
		if s.journal != nil {
			s.journal.finish(job.id, JobFailed)
		}
		return nil, ErrQueueFull
	}
	s.jobs[job.id] = job
	s.order = append(s.order, job)
	s.metrics.JobState(string(JobQueued))
	s.metrics.TenantJob(tenant)
	return job, nil
}

// Get returns a job by id.
func (s *Server) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return job, nil
}

// List snapshots all jobs in submission order.
func (s *Server) List() []JobView {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.view(false)
	}
	return out
}

// Cancel requests cancellation of a job. A queued job transitions to
// cancelled immediately; a running job's context is cancelled and the
// simulator aborts within a few thousand simulated cycles. Cancelling a
// terminal job is a no-op.
func (s *Server) Cancel(id string) (*Job, error) {
	job, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	job.mu.Lock()
	job.cancelled = true
	state := job.state
	cancel := job.cancel
	job.mu.Unlock()

	switch state {
	case JobQueued:
		s.finishJob(job, JobCancelled, nil, "cancelled before execution")
	case JobRunning:
		if cancel != nil {
			cancel()
		}
	}
	return job, nil
}

// finishJob moves a job to a terminal state (once) and keeps the metrics
// in step.
func (s *Server) finishJob(job *Job, state JobState, result json.RawMessage, errMsg string) {
	job.mu.Lock()
	if job.state.Terminal() {
		job.mu.Unlock()
		return
	}
	job.mu.Unlock()
	job.finish(state, result, errMsg, time.Now())
	s.metrics.JobState(string(state))
	if s.journal != nil {
		s.journal.finish(job.id, state)
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one job end to end.
func (s *Server) runJob(job *Job) {
	job.mu.Lock()
	if job.state.Terminal() { // cancelled while queued
		job.mu.Unlock()
		return
	}
	job.state = JobRunning
	job.started = time.Now()
	queueWait := job.started.Sub(job.created)
	timeout := s.opts.DefaultTimeout
	if job.spec.TimeoutMS > 0 {
		timeout = time.Duration(job.spec.TimeoutMS) * time.Millisecond
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	// Intra-job cell parallelism: the width rides the context into
	// runSweep and into the experiment drivers' internal fan-outs; the
	// shared limiter keeps the total across all concurrent jobs bounded.
	ctx = parexec.WithLimit(ctx, s.opts.SweepParallelism)
	if s.sweepLim != nil {
		ctx = parexec.WithLimiter(ctx, s.sweepLim)
	}
	job.cancel = cancel
	alreadyCancelled := job.cancelled
	job.notifyLocked()
	job.mu.Unlock()
	defer cancel()

	s.metrics.JobState(string(JobRunning))
	s.metrics.Observe("queue", queueWait.Seconds())
	if alreadyCancelled {
		cancel()
	}

	payload, err := s.executeSafe(ctx, job)
	runDur := time.Since(job.started)
	s.metrics.Observe("run", runDur.Seconds())

	switch {
	case err == nil:
		s.finishJob(job, JobDone, payload, "")
	case isCancellation(err) && jobWasCancelled(job):
		s.finishJob(job, JobCancelled, nil, "cancelled")
	case errors.Is(err, context.DeadlineExceeded):
		s.finishJob(job, JobFailed, nil, fmt.Sprintf("deadline exceeded after %s", runDur.Round(time.Millisecond)))
	case isCancellation(err):
		// Shutdown cancelled the base context.
		s.finishJob(job, JobCancelled, nil, "cancelled by shutdown")
	case isBudgetExceeded(err):
		s.finishJob(job, JobBudgetExceeded, nil, err.Error())
	default:
		s.finishJob(job, JobFailed, nil, err.Error())
	}
}

// isBudgetExceeded reports whether err is the simulator's typed
// cycle-budget overrun — a property of the submitted work, not a
// service fault, so it gets its own terminal state.
func isBudgetExceeded(err error) bool {
	var be *sim.BudgetError
	return errors.As(err, &be)
}

// executeSafe runs execute behind a recover barrier: a panic anywhere
// in the compiler or simulator — reachable from untrusted program
// source — fails that one job with a typed message and increments
// pcserved_panics_total, instead of taking the daemon (and every other
// tenant's jobs) down with it.
func (s *Server) executeSafe(ctx context.Context, job *Job) (payload json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.Panic()
			log.Printf("service: job %s: recovered panic: %v\n%s", job.id, r, debug.Stack())
			err = fmt.Errorf("internal error: panic during execution: %v", r)
			payload = nil
		}
	}()
	if s.opts.ExecHook != nil {
		s.opts.ExecHook(job)
	}
	return s.execute(ctx, job)
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func jobWasCancelled(job *Job) bool {
	job.mu.Lock()
	defer job.mu.Unlock()
	return job.cancelled
}

// execute produces the job's result payload, consulting the cache first.
func (s *Server) execute(ctx context.Context, job *Job) (json.RawMessage, error) {
	switch {
	case job.spec.Experiment != "":
		return s.runExperiment(ctx, job)
	case job.spec.Cell != nil:
		return s.runCellJob(ctx, job)
	case job.spec.Sweep != nil:
		return s.runSweep(ctx, job)
	case job.spec.Program != nil:
		return s.runProgramJob(ctx, job)
	}
	return nil, errors.New("service: empty job spec")
}

// markHit flags the job as cache-served and attributes the hit to its
// tenant.
func (s *Server) markHit(job *Job) {
	job.mu.Lock()
	job.hit = true
	tenant := job.tenant
	job.mu.Unlock()
	s.metrics.TenantHit(tenant)
}

// experimentResult is the payload of an experiment job.
type experimentResult struct {
	Experiment string `json:"experiment"`
	MachineSHA string `json:"machine_sha256"`
	Rows       any    `json:"rows"`
}

func (s *Server) runExperiment(ctx context.Context, job *Job) (json.RawMessage, error) {
	key, err := experimentKey(job.spec.Experiment, job.cfg, job.spec.Options)
	if err != nil {
		return nil, err
	}
	if payload, ok := s.cache.Get(key); ok {
		s.markHit(job)
		return payload, nil
	}
	e, ok := experiments.Lookup(job.spec.Experiment)
	if !ok {
		return nil, experiments.UnknownExperimentError(job.spec.Experiment)
	}
	rows, err := e.Run(&experiments.RunContext{Ctx: ctx, Cfg: job.cfg})
	if err != nil {
		return nil, err
	}
	msha, err := machineSHA(job.cfg)
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(experimentResult{Experiment: e.Name, MachineSHA: msha, Rows: rows})
	if err != nil {
		return nil, err
	}
	s.cache.Put(key, payload)
	return payload, nil
}

// CellResult is the payload of a single simulation cell (standalone cell
// jobs and each streamed cell of a sweep).
type CellResult struct {
	Bench string `json:"bench"`
	Mode  string `json:"mode"`
	// IUs/FPUs describe the swept machine (sweep cells only).
	IUs        int                `json:"ius,omitempty"`
	FPUs       int                `json:"fpus,omitempty"`
	MachineSHA string             `json:"machine_sha256"`
	Cycles     int64              `json:"cycles"`
	Ops        int64              `json:"ops"`
	Threads    int                `json:"threads"`
	Util       map[string]float64 `json:"utilization"`
	WBRetries  int64              `json:"writeback_retries"`
	Trace      json.RawMessage    `json:"trace,omitempty"`
}

// runCell simulates one (bench, mode, cfg) cell and encodes its payload.
func (s *Server) runCell(ctx context.Context, benchName string, mode experiments.Mode, cfg *machine.Config, o SimOptions, ius, fpus int) (json.RawMessage, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	var opts []sim.Option
	if o.MaxCycles > 0 {
		opts = append(opts, sim.WithMaxCycles(o.MaxCycles))
	}
	var tracer *sim.JSONTracer
	if o.Trace {
		tracer = sim.NewJSONTracer(cfg)
		opts = append(opts, sim.WithJSONTrace(tracer))
	}
	r, err := experiments.ExecuteCtx(ctx, benchName, mode, cfg, opts...)
	if err != nil {
		return nil, err
	}
	msha, err := cfg.Hash()
	if err != nil {
		return nil, err
	}
	out := CellResult{
		Bench: benchName, Mode: string(mode), IUs: ius, FPUs: fpus,
		MachineSHA: msha,
		Cycles:     r.Cycles, Ops: r.Result.Ops, Threads: len(r.Result.Threads),
		Util:      map[string]float64{},
		WBRetries: r.Result.WritebackRetries,
	}
	for k := 0; k < machine.NumUnitKinds; k++ {
		kind := machine.UnitKind(k)
		out.Util[kind.String()] = r.Utilization(kind)
	}
	if tracer != nil {
		var buf bytes.Buffer
		if err := tracer.Write(&buf); err != nil {
			return nil, err
		}
		out.Trace = buf.Bytes()
	}
	return json.Marshal(out)
}

func (s *Server) runCellJob(ctx context.Context, job *Job) (json.RawMessage, error) {
	mode, err := experiments.ParseMode(job.spec.Cell.Mode)
	if err != nil {
		return nil, err
	}
	key, err := cellKey(job.spec.Cell.Bench, mode, job.cfg, job.spec.Options)
	if err != nil {
		return nil, err
	}
	if payload, ok := s.cache.Get(key); ok {
		s.markHit(job)
		return payload, nil
	}
	payload, err := s.runCell(ctx, job.spec.Cell.Bench, mode, job.cfg, job.spec.Options, 0, 0)
	if err != nil {
		return nil, err
	}
	s.cache.Put(key, payload)
	return payload, nil
}

// sweepResult is the payload of a sweep job: the cells in stable grid
// order (bench-major, then IU, then FPU — the order they also stream).
type sweepResult struct {
	Sweep SweepSpec         `json:"sweep"`
	Cells []json.RawMessage `json:"cells"`
}

func (s *Server) runSweep(ctx context.Context, job *Job) (json.RawMessage, error) {
	sw := job.spec.Sweep
	cells := sw.Cells()
	job.mu.Lock()
	job.total = len(cells)
	job.mu.Unlock()

	jobKey, err := sweepKey(sw, job.spec.Options)
	if err != nil {
		return nil, err
	}
	if payload, ok := s.cache.Get(jobKey); ok {
		// Replay the cached cells to any stream subscribers.
		var res sweepResult
		if err := json.Unmarshal(payload, &res); err == nil {
			for _, cell := range res.Cells {
				job.appendCell(cell)
			}
		}
		s.markHit(job)
		return payload, nil
	}

	// Cells execute in parallel (width and shared limiter from ctx, set
	// in runJob), but results are merged in grid order: cache fills,
	// res.Cells, and the NDJSON stream (job.appendCell) all happen in the
	// emit stage, which parexec.Stream runs strictly in submission order.
	// The payload and the streamed bytes are therefore identical to the
	// sequential loop's, and a mid-sweep cancellation still streams a
	// contiguous prefix. Only the cache's LRU recency order can differ
	// (parallel lookups touch entries in completion order).
	mode := experiments.Mode(sw.Mode)
	res := sweepResult{Sweep: *sw, Cells: make([]json.RawMessage, 0, len(cells))}
	type cellOut struct {
		key     string
		payload json.RawMessage
		hit     bool
	}
	err = parexec.Stream(ctx, len(cells),
		func(ctx context.Context, i int) (cellOut, error) {
			c := cells[i]
			cfg := machine.Mix(c.IU, c.FPU)
			key, err := cellKey(c.Bench, mode, cfg, job.spec.Options)
			if err != nil {
				return cellOut{}, err
			}
			if payload, ok := s.cache.Get(key); ok {
				return cellOut{key: key, payload: payload, hit: true}, nil
			}
			payload, err := s.runCell(ctx, c.Bench, mode, cfg, job.spec.Options, c.IU, c.FPU)
			if err != nil {
				return cellOut{}, fmt.Errorf("sweep %s %diu %dfpu: %w", c.Bench, c.IU, c.FPU, err)
			}
			return cellOut{key: key, payload: payload}, nil
		},
		func(i int, out cellOut) error {
			if !out.hit {
				s.cache.Put(out.key, out.payload)
			}
			res.Cells = append(res.Cells, out.payload)
			job.appendCell(out.payload)
			return nil
		})
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	s.cache.Put(jobKey, payload)
	return payload, nil
}

// MergeSweepPayload reconstitutes a whole-sweep result payload from
// per-cell payloads in grid order. The fleet gateway uses it to merge a
// scattered sweep into bytes identical to a single backend's runSweep
// output (sw must be normalized).
func MergeSweepPayload(sw *SweepSpec, cells []json.RawMessage) (json.RawMessage, error) {
	return json.Marshal(sweepResult{Sweep: *sw, Cells: cells})
}

// gauges samples the live state for /metrics.
func (s *Server) gauges() Gauges {
	s.mu.Lock()
	byState := map[string]int{}
	for _, j := range s.order {
		j.mu.Lock()
		byState[string(j.state)]++
		j.mu.Unlock()
	}
	accepting := s.accepting
	depth := len(s.queue)
	s.mu.Unlock()
	hits, misses := s.cache.Stats()
	return Gauges{
		QueueDepth:     depth,
		Inflight:       byState[string(JobRunning)],
		Workers:        s.opts.Workers,
		JobsByState:    byState,
		CacheEntries:   s.cache.Len(),
		CacheBytes:     s.cache.Bytes(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEvictions: s.cache.Evictions(),
		Accepting:      accepting,
	}
}
