package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCacheEvictsByEntryCount(t *testing.T) {
	c := NewBoundedCache(3, 0)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if c.Evictions() != 2 {
		t.Fatalf("Evictions = %d, want 2", c.Evictions())
	}
	for _, gone := range []string{"k0", "k1"} {
		if _, ok := c.Peek(gone); ok {
			t.Fatalf("oldest entry %s survived eviction", gone)
		}
	}
	for _, kept := range []string{"k2", "k3", "k4"} {
		if _, ok := c.Peek(kept); !ok {
			t.Fatalf("recent entry %s was evicted", kept)
		}
	}
}

func TestCacheEvictsByBytes(t *testing.T) {
	c := NewBoundedCache(0, 10)
	c.Put("a", make([]byte, 4))
	c.Put("b", make([]byte, 4))
	c.Put("c", make([]byte, 4)) // 12 bytes: "a" must go
	if _, ok := c.Peek("a"); ok {
		t.Fatal("LRU entry survived the byte bound")
	}
	if got := c.Bytes(); got != 8 {
		t.Fatalf("Bytes = %d, want 8", got)
	}
	// One oversized payload still caches (and evicts the rest).
	c.Put("huge", make([]byte, 64))
	if c.Len() != 1 {
		t.Fatalf("after oversized Put: Len = %d, want 1", c.Len())
	}
	if _, ok := c.Peek("huge"); !ok {
		t.Fatal("oversized entry was not cached")
	}
}

func TestCacheGetRefreshesRecency(t *testing.T) {
	c := NewBoundedCache(2, 0)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // "a" becomes MRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // must evict "b", not "a"
	if _, ok := c.Peek("b"); ok {
		t.Fatal("b survived; Get did not refresh a's recency")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
}

func TestCachePeekDoesNotRefreshOrCount(t *testing.T) {
	c := NewBoundedCache(2, 0)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Peek("a") // no recency refresh
	c.Put("c", []byte("C"))
	if _, ok := c.Peek("a"); ok {
		t.Fatal("Peek refreshed recency; a should have been the LRU victim")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("Peek skewed counters: hits=%d misses=%d", hits, misses)
	}
}

func TestCacheUpdateExistingKeyAdjustsBytes(t *testing.T) {
	c := NewBoundedCache(0, 0)
	c.Put("a", make([]byte, 10))
	c.Put("a", make([]byte, 3))
	if got := c.Bytes(); got != 3 {
		t.Fatalf("Bytes after shrink = %d, want 3", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestCacheSaveLoadMRUFirst: the persisted file lists entries most
// recently used first, so a restart under a tighter bound keeps the
// hottest entries and the restored cache evicts in the original order.
func TestCacheSaveLoadMRUFirst(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c := NewCache()
	c.Put("cold", []byte("1"))
	c.Put("warm", []byte("2"))
	c.Put("hot", []byte("3"))
	c.Get("cold") // recency now: cold, hot, warm
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	// Restore into a cache that can only hold the two hottest.
	tight := NewBoundedCache(2, 0)
	if err := tight.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := tight.Peek("warm"); ok {
		t.Fatal("coldest entry survived a bounded load")
	}
	for _, k := range []string{"cold", "hot"} {
		if _, ok := tight.Peek(k); !ok {
			t.Fatalf("hot entry %s dropped by bounded load", k)
		}
	}
	// Bound-trimming during load must not count as live-traffic churn.
	if tight.Evictions() != 0 {
		t.Fatalf("load reported %d evictions, want 0", tight.Evictions())
	}

	// An unbounded restore preserves both content and recency order.
	full := NewCache()
	if err := full.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if v, ok := full.Peek("warm"); !ok || !bytes.Equal(v, []byte("2")) {
		t.Fatalf("warm after load: %q, %v", v, ok)
	}
	// The restored recency order matches the saved one: under a new
	// 2-entry bound, "warm" (the saved LRU) is the first victim.
	full.Put("new", []byte("4"))
	if full.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (unbounded cache must not evict)", full.Len())
	}
}

// TestCacheVersionMismatchStartsEmpty: a cache file from an incompatible
// build is ignored, not trusted.
func TestCacheVersionMismatchStartsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"entries":{"k":"cGF5bG9hZA=="}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	if err := c.LoadFile(path); err != nil {
		t.Fatalf("LoadFile on version mismatch: %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after version mismatch, want 0", c.Len())
	}
}
