package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"pcoup/internal/bench"
	"pcoup/internal/experiments"
	"pcoup/internal/machine"
)

// SimOptions are the simulation knobs that participate in cache keys.
type SimOptions struct {
	// MaxCycles bounds each cell's simulation (0: simulator default).
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// Trace includes a Chrome trace-event document in cell results.
	Trace bool `json:"trace,omitempty"`
}

// keyDoc is the canonical pre-image of a cache key. Field order is fixed
// by the struct, so equal work produces byte-identical pre-images.
type keyDoc struct {
	Kind       string     `json:"kind"` // "cell", "experiment", or "sweep"
	Name       string     `json:"name,omitempty"`
	Mode       string     `json:"mode,omitempty"`
	SourceSHA  string     `json:"source_sha256,omitempty"`
	MachineSHA string     `json:"machine_sha256"`
	Options    SimOptions `json:"options"`
	Extra      string     `json:"extra,omitempty"`
}

func (d keyDoc) hash() string {
	data, err := json.Marshal(d)
	if err != nil {
		// keyDoc contains only strings and scalars; Marshal cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// sourceSHA hashes one benchmark's generated source for the variant a
// mode runs.
func sourceSHA(benchName string, mode experiments.Mode) (string, error) {
	kind := bench.Threaded
	switch mode {
	case experiments.SEQ, experiments.STS:
		kind = bench.Sequential
	case experiments.IDEAL:
		kind = bench.Ideal
	}
	b, err := bench.Get(benchName, kind)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(b.Source))
	return hex.EncodeToString(sum[:]), nil
}

// suiteDigest hashes every benchmark source variant the experiments can
// touch. Experiment-level cache keys include it so that any benchmark
// generator change invalidates cached experiment results. Sources are
// deterministic generators, so this is computed once.
var suiteDigest = sync.OnceValue(func() string {
	h := sha256.New()
	names := append(bench.Names(), "modelq")
	for _, name := range names {
		for _, kind := range []bench.SourceKind{bench.Sequential, bench.Threaded, bench.Ideal} {
			b, err := bench.Get(name, kind)
			if err != nil {
				continue // variant does not exist (e.g. lud/ideal)
			}
			fmt.Fprintf(h, "%s/%s\x00%s\x00", name, kind, b.Source)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
})

// machineSHA returns the canonical hash of cfg (nil selects the
// baseline, matching the drivers' defaulting).
func machineSHA(cfg *machine.Config) (string, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	return cfg.Hash()
}

// cellKey keys one (benchmark, mode, machine, options) simulation.
func cellKey(benchName string, mode experiments.Mode, cfg *machine.Config, o SimOptions) (string, error) {
	src, err := sourceSHA(benchName, mode)
	if err != nil {
		return "", err
	}
	msha, err := machineSHA(cfg)
	if err != nil {
		return "", err
	}
	return keyDoc{Kind: "cell", Name: benchName, Mode: string(mode), SourceSHA: src, MachineSHA: msha, Options: o}.hash(), nil
}

// experimentKey keys a whole registry experiment under a machine config.
func experimentKey(name string, cfg *machine.Config, o SimOptions) (string, error) {
	msha, err := machineSHA(cfg)
	if err != nil {
		return "", err
	}
	return keyDoc{Kind: "experiment", Name: name, SourceSHA: suiteDigest(), MachineSHA: msha, Options: o}.hash(), nil
}

// CellContentKey is the exported cell cache key: the SHA-256 content
// address of one (benchmark, mode, machine, options) simulation. The
// fleet gateway routes on it so identical cells land on the same
// backend and find its cache hot.
func CellContentKey(benchName, modeName string, cfg *machine.Config, o SimOptions) (string, error) {
	mode, err := experiments.ParseMode(modeName)
	if err != nil {
		return "", err
	}
	return cellKey(benchName, mode, cfg, o)
}

// SweepCellContentKey is CellContentKey for one cell of a unit-mix
// sweep, which runs on machine.Mix(iu, fpu).
func SweepCellContentKey(c SweepCell, modeName string, o SimOptions) (string, error) {
	return CellContentKey(c.Bench, modeName, machine.Mix(c.IU, c.FPU), o)
}

// ExperimentContentKey is the exported experiment cache key.
func ExperimentContentKey(name string, cfg *machine.Config, o SimOptions) (string, error) {
	return experimentKey(name, cfg, o)
}

// sweepKey keys a whole unit-mix sweep job (per-cell results are
// additionally cached under their own cellKeys; Mix builds its own
// machines, so the key hashes the sweep geometry instead of a config).
func sweepKey(sw *SweepSpec, o SimOptions) (string, error) {
	geom, err := json.Marshal(sw)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(geom)
	return keyDoc{Kind: "sweep", SourceSHA: suiteDigest(), MachineSHA: "mix", Options: o, Extra: hex.EncodeToString(sum[:])}.hash(), nil
}
