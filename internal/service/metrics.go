package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// latencyBuckets are the histogram upper bounds, in seconds. Simulation
// jobs span milliseconds (cached) to minutes (full sweeps), so the
// buckets cover five decades.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300}

// histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative style (each bucket counts observations <= its bound).
type histogram struct {
	counts []int64 // one per bucket; observations above the last bound
	over   int64   // land in over (the +Inf bucket)
	sum    float64
	count  int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets))}
}

func (h *histogram) observe(v float64) {
	h.sum += v
	h.count++
	for i, le := range latencyBuckets {
		if v <= le {
			h.counts[i]++
			return
		}
	}
	h.over++
}

// Metrics aggregates the daemon's counters and histograms. All methods
// are safe for concurrent use. Gauges that reflect live structures
// (queue depth, jobs by state, cache size) are sampled at render time by
// the server rather than stored here.
type Metrics struct {
	mu        sync.Mutex
	jobsTotal map[string]int64      // submissions and state transitions
	stages    map[string]*histogram // per-stage latency

	journalRecovered int64 // jobs resubmitted from the journal at start
	retriesExhausted int64 // recovered jobs failed for exceeding the budget
	panics           int64 // panics recovered in the execution barrier

	// Per-tenant attribution. The tenant set is normally bounded by the
	// gateway's -tenants file; because the header is client-supplied the
	// maps additionally cap at maxTenantLabels distinct names, folding
	// overflow into "_other" so a label-cardinality blowup is impossible.
	tenantJobs map[string]int64 // submissions per tenant
	tenantHits map[string]int64 // whole-job cache hits per tenant
}

// maxTenantLabels bounds the distinct tenant label values retained.
const maxTenantLabels = 256

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		jobsTotal:  map[string]int64{},
		stages:     map[string]*histogram{},
		tenantJobs: map[string]int64{},
		tenantHits: map[string]int64{},
	}
}

// JobState counts a job transition into the named state ("queued" on
// submission, then "running" and one terminal state).
func (m *Metrics) JobState(state string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsTotal[state]++
}

// Observe records a stage latency in seconds ("queue": submission to
// dispatch; "run": dispatch to completion).
func (m *Metrics) Observe(stage string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.stages[stage]
	if h == nil {
		h = newHistogram()
		m.stages[stage] = h
	}
	h.observe(seconds)
}

// JournalRecovered counts one job resubmitted from the write-ahead
// journal after a restart.
func (m *Metrics) JournalRecovered() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalRecovered++
}

// RetryBudgetExhausted counts one recovered job failed instead of
// retried because it exceeded the per-job retry budget.
func (m *Metrics) RetryBudgetExhausted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retriesExhausted++
}

// Panic counts one panic recovered by the worker's execution barrier
// (a compiler or simulator crash isolated to the offending job).
func (m *Metrics) Panic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

// tenantLabel folds new tenant names past the cardinality cap into
// "_other". Callers hold m.mu.
func tenantLabel(counts map[string]int64, tenant string) string {
	if _, ok := counts[tenant]; ok || len(counts) < maxTenantLabels {
		return tenant
	}
	return "_other"
}

// TenantJob counts one submission attributed to a tenant. Anonymous
// submissions (empty tenant) are not counted — pcserved_jobs_total
// already covers the aggregate.
func (m *Metrics) TenantJob(tenant string) {
	if tenant == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenantJobs[tenantLabel(m.tenantJobs, tenant)]++
}

// TenantHit counts one whole-job cache hit attributed to a tenant.
func (m *Metrics) TenantHit(tenant string) {
	if tenant == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenantHits[tenantLabel(m.tenantHits, tenant)]++
}

// Gauges is the live state sampled by the server at scrape time.
type Gauges struct {
	QueueDepth     int
	Inflight       int // jobs currently running
	Workers        int
	JobsByState    map[string]int
	CacheEntries   int
	CacheBytes     int64
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	Accepting      bool
}

// WriteText renders everything in the Prometheus text exposition format.
func (m *Metrics) WriteText(w io.Writer, g Gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP pcserved_jobs_total Job state transitions since start.\n")
	fmt.Fprintf(w, "# TYPE pcserved_jobs_total counter\n")
	for _, state := range sortedKeys(m.jobsTotal) {
		fmt.Fprintf(w, "pcserved_jobs_total{state=%q} %d\n", state, m.jobsTotal[state])
	}

	fmt.Fprintf(w, "# HELP pcserved_jobs_current Jobs currently in each state.\n")
	fmt.Fprintf(w, "# TYPE pcserved_jobs_current gauge\n")
	states := make([]string, 0, len(g.JobsByState))
	for s := range g.JobsByState {
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		fmt.Fprintf(w, "pcserved_jobs_current{state=%q} %d\n", s, g.JobsByState[s])
	}

	fmt.Fprintf(w, "# HELP pcserved_queue_depth Jobs waiting for a worker.\n")
	fmt.Fprintf(w, "# TYPE pcserved_queue_depth gauge\n")
	fmt.Fprintf(w, "pcserved_queue_depth %d\n", g.QueueDepth)

	fmt.Fprintf(w, "# HELP pcserved_inflight Jobs currently executing.\n")
	fmt.Fprintf(w, "# TYPE pcserved_inflight gauge\n")
	fmt.Fprintf(w, "pcserved_inflight %d\n", g.Inflight)

	fmt.Fprintf(w, "# HELP pcserved_workers Size of the worker pool.\n")
	fmt.Fprintf(w, "# TYPE pcserved_workers gauge\n")
	fmt.Fprintf(w, "pcserved_workers %d\n", g.Workers)

	accepting := 0
	if g.Accepting {
		accepting = 1
	}
	fmt.Fprintf(w, "# HELP pcserved_accepting Whether new jobs are accepted (0 during drain).\n")
	fmt.Fprintf(w, "# TYPE pcserved_accepting gauge\n")
	fmt.Fprintf(w, "pcserved_accepting %d\n", accepting)

	fmt.Fprintf(w, "# HELP pcserved_journal_recovered_total Jobs resubmitted from the write-ahead journal after a restart.\n")
	fmt.Fprintf(w, "# TYPE pcserved_journal_recovered_total counter\n")
	fmt.Fprintf(w, "pcserved_journal_recovered_total %d\n", m.journalRecovered)
	fmt.Fprintf(w, "# HELP pcserved_retry_budget_exhausted_total Recovered jobs failed for exceeding the retry budget.\n")
	fmt.Fprintf(w, "# TYPE pcserved_retry_budget_exhausted_total counter\n")
	fmt.Fprintf(w, "pcserved_retry_budget_exhausted_total %d\n", m.retriesExhausted)
	fmt.Fprintf(w, "# HELP pcserved_panics_total Panics recovered by the worker execution barrier (each failed one job, never the daemon).\n")
	fmt.Fprintf(w, "# TYPE pcserved_panics_total counter\n")
	fmt.Fprintf(w, "pcserved_panics_total %d\n", m.panics)

	fmt.Fprintf(w, "# HELP pcserved_cache_hits_total Result cache hits.\n")
	fmt.Fprintf(w, "# TYPE pcserved_cache_hits_total counter\n")
	fmt.Fprintf(w, "pcserved_cache_hits_total %d\n", g.CacheHits)
	fmt.Fprintf(w, "# HELP pcserved_cache_misses_total Result cache misses.\n")
	fmt.Fprintf(w, "# TYPE pcserved_cache_misses_total counter\n")
	fmt.Fprintf(w, "pcserved_cache_misses_total %d\n", g.CacheMisses)
	fmt.Fprintf(w, "# HELP pcserved_cache_entries Result cache entries resident.\n")
	fmt.Fprintf(w, "# TYPE pcserved_cache_entries gauge\n")
	fmt.Fprintf(w, "pcserved_cache_entries %d\n", g.CacheEntries)
	fmt.Fprintf(w, "# HELP pcserved_cache_bytes Result cache payload bytes resident.\n")
	fmt.Fprintf(w, "# TYPE pcserved_cache_bytes gauge\n")
	fmt.Fprintf(w, "pcserved_cache_bytes %d\n", g.CacheBytes)
	fmt.Fprintf(w, "# HELP pcserved_cache_evictions_total Result cache entries evicted by the LRU bounds.\n")
	fmt.Fprintf(w, "# TYPE pcserved_cache_evictions_total counter\n")
	fmt.Fprintf(w, "pcserved_cache_evictions_total %d\n", g.CacheEvictions)
	if total := g.CacheHits + g.CacheMisses; total > 0 {
		fmt.Fprintf(w, "# HELP pcserved_cache_hit_ratio Hits over lookups since start.\n")
		fmt.Fprintf(w, "# TYPE pcserved_cache_hit_ratio gauge\n")
		fmt.Fprintf(w, "pcserved_cache_hit_ratio %.6f\n", float64(g.CacheHits)/float64(total))
	}

	if len(m.tenantJobs) > 0 {
		fmt.Fprintf(w, "# HELP pcserved_tenant_jobs_total Submissions per tenant.\n")
		fmt.Fprintf(w, "# TYPE pcserved_tenant_jobs_total counter\n")
		for _, t := range sortedKeys(m.tenantJobs) {
			fmt.Fprintf(w, "pcserved_tenant_jobs_total{tenant=%q} %d\n", t, m.tenantJobs[t])
		}
	}
	if len(m.tenantHits) > 0 {
		fmt.Fprintf(w, "# HELP pcserved_tenant_cache_hits_total Whole-job cache hits per tenant.\n")
		fmt.Fprintf(w, "# TYPE pcserved_tenant_cache_hits_total counter\n")
		for _, t := range sortedKeys(m.tenantHits) {
			fmt.Fprintf(w, "pcserved_tenant_cache_hits_total{tenant=%q} %d\n", t, m.tenantHits[t])
		}
	}

	fmt.Fprintf(w, "# HELP pcserved_stage_latency_seconds Per-stage job latency.\n")
	fmt.Fprintf(w, "# TYPE pcserved_stage_latency_seconds histogram\n")
	for _, stage := range sortedKeys(m.stages) {
		h := m.stages[stage]
		var cum int64
		for i, le := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "pcserved_stage_latency_seconds_bucket{stage=%q,le=\"%g\"} %d\n", stage, le, cum)
		}
		fmt.Fprintf(w, "pcserved_stage_latency_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", stage, cum+h.over)
		fmt.Fprintf(w, "pcserved_stage_latency_seconds_sum{stage=%q} %.6f\n", stage, h.sum)
		fmt.Fprintf(w, "pcserved_stage_latency_seconds_count{stage=%q} %d\n", stage, h.count)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
