package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"pcoup/internal/bench"
	"pcoup/internal/experiments"
	"pcoup/internal/machine"
)

// JobState is a job's lifecycle state.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is executing it.
	JobRunning JobState = "running"
	// JobDone: finished with a result.
	JobDone JobState = "done"
	// JobFailed: finished with an error.
	JobFailed JobState = "failed"
	// JobCancelled: cancelled before or during execution.
	JobCancelled JobState = "cancelled"
	// JobBudgetExceeded: the simulation hit its cycle budget before
	// completing. Distinct from failed so clients (and the fuzz oracle)
	// can tell "your program ran too long" from "the toolchain broke".
	JobBudgetExceeded JobState = "budget_exceeded"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled || s == JobBudgetExceeded
}

// CellSpec selects a single (benchmark, mode) simulation.
type CellSpec struct {
	Bench string `json:"bench"`
	Mode  string `json:"mode"`
}

// SweepSpec selects a function-unit mix sweep (the paper's Figure 8
// geometry, parameterized): every (bench, nIU, nFPU) cell in the given
// ranges runs on machine.Mix(nIU, nFPU). Cells stream as they finish and
// are cached individually.
type SweepSpec struct {
	// Benches defaults to the full suite.
	Benches []string `json:"benches,omitempty"`
	// Mode defaults to Coupled.
	Mode  string `json:"mode,omitempty"`
	MinIU int    `json:"min_iu"`
	MaxIU int    `json:"max_iu"`
	// MinFPU/MaxFPU default to the IU range when zero.
	MinFPU int `json:"min_fpu,omitempty"`
	MaxFPU int `json:"max_fpu,omitempty"`
}

// maxSweepCells bounds a single sweep job's size (the API is
// network-facing; a runaway spec must not pin the pool forever).
const maxSweepCells = 1024

// JobSpec is the POST /v1/jobs request body. Exactly one of Experiment,
// Cell, or Sweep selects the work; Machine (inline) or Preset (by name)
// selects the machine configuration, defaulting to the paper's baseline.
type JobSpec struct {
	// Experiment names a registry experiment (see pcbench -exp).
	Experiment string `json:"experiment,omitempty"`
	// Cell runs a single benchmark x mode simulation.
	Cell *CellSpec `json:"cell,omitempty"`
	// Sweep runs a unit-mix sweep with per-cell streaming and caching.
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Program compiles and simulates an untrusted source program under
	// the service resource limits (also reachable via POST /v1/programs).
	Program *ProgramSpec `json:"program,omitempty"`

	// Machine is an inline machine configuration; it is validated before
	// the job is accepted.
	Machine *machine.Config `json:"machine,omitempty"`
	// Preset names a configuration registered with the daemon
	// ("baseline" is always available; -presets adds a directory of
	// config files by file stem).
	Preset string `json:"preset,omitempty"`

	// Options are the simulation knobs that also key the result cache.
	Options SimOptions `json:"options,omitempty"`
	// TimeoutMS bounds the job's wall-clock execution (0: server
	// default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Normalize validates the spec against the registry, the benchmark
// suite, and the preset table, and fills defaults (exported for the
// fleet gateway, which validates with the presets it knows). It returns
// the resolved machine config (nil meaning "driver default").
func (spec *JobSpec) Normalize(presets map[string]*machine.Config) (*machine.Config, error) {
	return spec.normalize(presets)
}

// normalize is Normalize's implementation.
func (spec *JobSpec) normalize(presets map[string]*machine.Config) (*machine.Config, error) {
	selected := 0
	if spec.Experiment != "" {
		selected++
	}
	if spec.Cell != nil {
		selected++
	}
	if spec.Sweep != nil {
		selected++
	}
	if spec.Program != nil {
		selected++
	}
	if selected != 1 {
		return nil, fmt.Errorf("spec must set exactly one of experiment, cell, sweep, program (got %d)", selected)
	}
	if spec.Machine != nil && spec.Preset != "" {
		return nil, fmt.Errorf("spec sets both machine and preset")
	}
	if spec.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms: must be >= 0")
	}
	if spec.Options.MaxCycles < 0 {
		return nil, fmt.Errorf("options.max_cycles: must be >= 0")
	}

	var cfg *machine.Config
	switch {
	case spec.Machine != nil:
		if err := spec.Machine.Validate(); err != nil {
			return nil, err
		}
		cfg = spec.Machine
	case spec.Preset != "":
		p, ok := presets[spec.Preset]
		if !ok {
			return nil, fmt.Errorf("unknown preset %q (valid: %s)", spec.Preset, presetNames(presets))
		}
		cfg = p
	}

	switch {
	case spec.Experiment != "":
		if _, ok := experiments.Lookup(spec.Experiment); !ok {
			return nil, experiments.UnknownExperimentError(spec.Experiment)
		}
		if spec.Options.Trace {
			return nil, fmt.Errorf("options.trace applies to cell jobs only")
		}
	case spec.Cell != nil:
		mode, err := experiments.ParseMode(spec.Cell.Mode)
		if err != nil {
			return nil, err
		}
		spec.Cell.Mode = string(mode)
		if _, err := bench.Get(spec.Cell.Bench, bench.Sequential); err != nil {
			return nil, err
		}
		if !experiments.ModeSupported(spec.Cell.Bench, mode) {
			return nil, fmt.Errorf("benchmark %q has no %s variant", spec.Cell.Bench, mode)
		}
	case spec.Sweep != nil:
		if err := spec.Sweep.Normalize(); err != nil {
			return nil, err
		}
		if cfg != nil {
			return nil, fmt.Errorf("sweep jobs build their own machines (machine/preset must be unset)")
		}
		if spec.Options.Trace {
			return nil, fmt.Errorf("options.trace applies to cell jobs only")
		}
	case spec.Program != nil:
		if spec.Options.Trace {
			return nil, fmt.Errorf("options.trace applies to cell jobs only")
		}
		// Validate by compiling under the service limits against the
		// resolved machine: a recursion bomb, an over-cap source, or a
		// thread explosion is rejected here with a typed ProgramError
		// (HTTP 422) instead of ever reaching a worker.
		if err := spec.Program.normalize(cfg); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// Normalize fills sweep defaults and bounds the geometry. The fleet
// gateway applies the same normalization before splitting a sweep, so
// its merged payload embeds a spec byte-identical to a single backend's.
func (sw *SweepSpec) Normalize() error {
	if len(sw.Benches) == 0 {
		sw.Benches = bench.Names()
	}
	for _, b := range sw.Benches {
		if _, err := bench.Get(b, bench.Sequential); err != nil {
			return err
		}
	}
	if sw.Mode == "" {
		sw.Mode = string(experiments.COUPLED)
	}
	mode, err := experiments.ParseMode(sw.Mode)
	if err != nil {
		return err
	}
	sw.Mode = string(mode)
	if sw.MinFPU == 0 && sw.MaxFPU == 0 {
		sw.MinFPU, sw.MaxFPU = sw.MinIU, sw.MaxIU
	}
	for _, b := range [...]struct {
		name     string
		min, max int
	}{{"iu", sw.MinIU, sw.MaxIU}, {"fpu", sw.MinFPU, sw.MaxFPU}} {
		if b.min < 1 || b.max < b.min {
			return fmt.Errorf("sweep: %s range [%d,%d] invalid (need 1 <= min <= max)", b.name, b.min, b.max)
		}
		// Mix spreads units over max(nIU, nFPU) clusters plus a branch
		// cluster; keep within the machine package's cluster bound.
		if b.max >= machine.MaxClusters {
			return fmt.Errorf("sweep: %s max %d too large (max %d)", b.name, b.max, machine.MaxClusters-1)
		}
	}
	if n := len(sw.Benches) * (sw.MaxIU - sw.MinIU + 1) * (sw.MaxFPU - sw.MinFPU + 1); n > maxSweepCells {
		return fmt.Errorf("sweep: %d cells exceeds the %d-cell limit", n, maxSweepCells)
	}
	return nil
}

// Cells enumerates the sweep's (bench, iu, fpu) grid in a stable order —
// the order cells stream, merge, and key the sweep payload. Call
// Normalize first.
func (sw *SweepSpec) Cells() []SweepCell {
	var out []SweepCell
	for _, b := range sw.Benches {
		for iu := sw.MinIU; iu <= sw.MaxIU; iu++ {
			for fpu := sw.MinFPU; fpu <= sw.MaxFPU; fpu++ {
				out = append(out, SweepCell{Bench: b, IU: iu, FPU: fpu})
			}
		}
	}
	return out
}

// SweepCell is one (benchmark, unit mix) coordinate of a sweep grid.
type SweepCell struct {
	Bench string
	IU    int
	FPU   int
}

// SingleCellSweep returns the sweep spec that runs exactly cell c — the
// unit the fleet gateway scatters. Its per-cell payload (and cell cache
// key) is identical to the same cell inside any larger sweep.
func (sw *SweepSpec) SingleCellSweep(c SweepCell) *SweepSpec {
	return &SweepSpec{
		Benches: []string{c.Bench},
		Mode:    sw.Mode,
		MinIU:   c.IU, MaxIU: c.IU,
		MinFPU: c.FPU, MaxFPU: c.FPU,
	}
}

// Job is one submitted unit of work and its full lifecycle.
type Job struct {
	mu sync.Mutex

	id       string
	spec     JobSpec
	tenant   string          // submitting tenant (X-PC-Tenant; "" when unattributed)
	cfg      *machine.Config // resolved from spec; nil = driver default
	state    JobState
	errMsg   string
	result   json.RawMessage
	cells    []json.RawMessage // per-cell payloads (sweep jobs)
	total    int               // expected cell count (sweep jobs)
	hit      bool              // served from the whole-job cache entry
	attempts int               // executions after journal recoveries (0: first run)
	created  time.Time
	started  time.Time
	ended    time.Time

	cancelled bool // DELETE received
	cancel    context.CancelFunc
	// updated is closed and replaced whenever cells/state change, waking
	// stream subscribers; done is closed once on reaching a terminal
	// state.
	updated chan struct{}
	done    chan struct{}
}

func newJob(id string, spec JobSpec, cfg *machine.Config, now time.Time) *Job {
	return &Job{
		id: id, spec: spec, cfg: cfg,
		state:   JobQueued,
		created: now,
		updated: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// notifyLocked wakes stream subscribers; callers hold j.mu.
func (j *Job) notifyLocked() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// appendCell records one completed sweep cell and wakes streamers.
func (j *Job) appendCell(payload json.RawMessage) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cells = append(j.cells, payload)
	j.notifyLocked()
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state JobState, result json.RawMessage, errMsg string, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.ended = now
	j.notifyLocked()
	close(j.done)
}

// JobView is the wire representation of a job.
type JobView struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Spec  JobSpec  `json:"spec"`
	// Tenant attributes the job to its submitter (omitted when the
	// submission carried no tenant identity). Views only — never part of
	// result payloads or NDJSON data lines, so byte-identity of cell
	// streams is unaffected.
	Tenant   string `json:"tenant,omitempty"`
	Error    string `json:"error,omitempty"`
	CacheHit bool   `json:"cache_hit"`
	// Attempts counts journal-recovery re-executions (0: never
	// interrupted).
	Attempts int `json:"attempts,omitempty"`
	// CellsDone/CellsTotal report sweep progress (0/0 otherwise).
	CellsDone  int             `json:"cells_done,omitempty"`
	CellsTotal int             `json:"cells_total,omitempty"`
	Created    time.Time       `json:"created"`
	Started    *time.Time      `json:"started,omitempty"`
	Finished   *time.Time      `json:"finished,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// view snapshots the job. withResult controls whether the (possibly
// large) result payload is included.
func (j *Job) view(withResult bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.id, State: j.state, Spec: j.spec, Tenant: j.tenant, Error: j.errMsg,
		CacheHit: j.hit, Attempts: j.attempts,
		CellsDone: len(j.cells), CellsTotal: j.total,
		Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.ended.IsZero() {
		t := j.ended
		v.Finished = &t
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

func presetNames(presets map[string]*machine.Config) string {
	names := sortedKeys(presets)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
