package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// The write-ahead job journal makes accepted jobs durable: every
// submission appends a record before the job is visible, every terminal
// transition appends a matching finish record. A pcserved killed
// mid-job (even with SIGKILL — appends go straight to the kernel page
// cache, which survives process death) restarts, replays the journal,
// and resubmits every job whose finish record is missing, under the same
// job ID, so clients polling across the restart see their job complete.
// Each replay increments the job's attempt count; a job interrupted more
// often than the retry budget is failed instead of retried, and retries
// are delayed by exponential backoff so a crash-looping job cannot pin
// the pool.

// journalRecord is one NDJSON line of the journal.
type journalRecord struct {
	// Kind is "submit" or "finish".
	Kind string `json:"kind"`
	ID   string `json:"id"`
	// Spec is the full job specification (submit records).
	Spec *JobSpec `json:"spec,omitempty"`
	// Tenant attributes the submission (submit records; "" when the
	// submitter carried no tenant identity).
	Tenant string `json:"tenant,omitempty"`
	// Attempts counts prior interrupted executions (submit records).
	Attempts int `json:"attempts,omitempty"`
	// State is the terminal state (finish records).
	State JobState  `json:"state,omitempty"`
	Time  time.Time `json:"time"`
}

// pendingJob is a journaled submission with no finish record: work that
// was accepted but not completed when the previous process died.
type pendingJob struct {
	ID       string
	Spec     JobSpec
	Tenant   string
	Attempts int
}

// journal is the append-only NDJSON write-ahead log. Appends are
// unbuffered writes to the underlying file so that records survive an
// abrupt process kill without any flush protocol.
type journal struct {
	mu   sync.Mutex
	file *os.File
}

// openJournal replays path and reopens it compacted: finished jobs are
// dropped, and every still-pending job is returned for the caller to
// resubmit (the caller re-journals what it keeps). A missing file starts
// an empty journal. Unparsable lines — e.g. a record half-written when
// the previous process was killed — are skipped, not fatal: the journal
// must be readable after exactly the crashes it exists to survive.
func openJournal(path string) (*journal, []pendingJob, error) {
	byID := map[string]*pendingJob{}
	var order []string
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
		for sc.Scan() {
			var rec journalRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				continue
			}
			switch rec.Kind {
			case "submit":
				if rec.Spec == nil || rec.ID == "" {
					continue
				}
				if _, seen := byID[rec.ID]; !seen {
					order = append(order, rec.ID)
				}
				byID[rec.ID] = &pendingJob{ID: rec.ID, Spec: *rec.Spec, Tenant: rec.Tenant, Attempts: rec.Attempts}
			case "finish":
				delete(byID, rec.ID)
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, nil, fmt.Errorf("service: reading journal %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}

	var pending []pendingJob
	for _, id := range order {
		if p, ok := byID[id]; ok {
			pending = append(pending, *p)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].ID < pending[j].ID })

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &journal{file: f}, pending, nil
}

// append writes one record as a single NDJSON line.
func (j *journal) append(rec journalRecord) error {
	rec.Time = time.Now().UTC()
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.file.Write(append(data, '\n'))
	return err
}

// submit journals an accepted job before it becomes visible.
func (j *journal) submit(id string, spec JobSpec, tenant string, attempts int) error {
	return j.append(journalRecord{Kind: "submit", ID: id, Spec: &spec, Tenant: tenant, Attempts: attempts})
}

// finish journals a terminal transition; the job will not be replayed.
func (j *journal) finish(id string, state JobState) error {
	return j.append(journalRecord{Kind: "finish", ID: id, State: state})
}

// Close closes the underlying file.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.file.Close()
}

// retryDelay computes the exponential backoff before re-running a job on
// its nth attempt (attempts >= 1), capped at maxRetryBackoff.
func retryDelay(base time.Duration, attempts int) time.Duration {
	if base <= 0 || attempts <= 1 {
		return 0
	}
	d := base
	for i := 2; i < attempts; i++ {
		d *= 2
		if d >= maxRetryBackoff {
			return maxRetryBackoff
		}
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	return d
}

// maxRetryBackoff caps the exponential retry delay.
const maxRetryBackoff = 30 * time.Second
