package memsys

import (
	"math/rand"
	"testing"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

// TestPropertyLastStoreWins drives random non-synchronizing traffic and
// checks, against a shadow memory, that after quiescence every word
// holds the value of the last store issued to it (the memory system
// orders conflicting same-address references by issue).
func TestPropertyLastStoreWins(t *testing.T) {
	for _, model := range []machine.MemoryModel{machine.MemMin, machine.Mem2} {
		r := rand.New(rand.NewSource(42))
		const size = 64
		m := New(model, 7, size)
		shadow := make([]int64, size)
		for i := 0; i < 2000; i++ {
			addr := int64(r.Intn(size))
			if r.Intn(2) == 0 {
				v := int64(r.Intn(1000))
				if err := m.Issue(&Request{IsStore: true, Addr: addr, Store: isa.Int(v)}); err != nil {
					t.Fatal(err)
				}
				shadow[addr] = v
			} else {
				if err := m.Issue(&Request{Addr: addr}); err != nil {
					t.Fatal(err)
				}
			}
			if r.Intn(4) == 0 {
				m.Tick()
			}
		}
		for i := 0; i < 100000 && !m.Quiescent(); i++ {
			m.Tick()
		}
		if !m.Quiescent() {
			t.Fatalf("%s: memory never drained", model.Name)
		}
		for a := int64(0); a < size; a++ {
			v, full := m.Peek(a)
			if !full {
				t.Errorf("%s: word %d lost its presence bit", model.Name, a)
			}
			if v.AsInt() != shadow[a] {
				t.Errorf("%s: word %d = %d, shadow %d", model.Name, a, v.AsInt(), shadow[a])
			}
		}
	}
}

// TestPropertyProducerConsumerCounts pushes N produces and N consumes at
// one cell in random interleaving; every produced value must be consumed
// exactly once, in production order.
func TestPropertyProducerConsumerCounts(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	m := New(machine.Mem1, 3, 8)
	m.Poke(0, isa.Int(0), false)
	const n = 200
	produced, consumed := 0, 0
	var got []int64
	for produced < n || consumed < n || !m.Quiescent() {
		if produced < n && r.Intn(2) == 0 {
			m.Issue(&Request{IsStore: true, Addr: 0, Store: isa.Int(int64(produced)), Sync: isa.SyncProduce})
			produced++
		}
		if consumed < n && r.Intn(2) == 0 {
			m.Issue(&Request{Addr: 0, Sync: isa.SyncConsume, Tag: tg(1)})
			consumed++
		}
		for _, c := range m.Tick() {
			if !c.Req.IsStore {
				got = append(got, c.Value.AsInt())
			}
		}
	}
	for i := 0; i < 100000 && !m.Quiescent(); i++ {
		for _, c := range m.Tick() {
			if !c.Req.IsStore {
				got = append(got, c.Value.AsInt())
			}
		}
	}
	if len(got) != n {
		t.Fatalf("consumed %d values, want %d", len(got), n)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("consumption out of order at %d: got %d", i, v)
		}
	}
}
