package memsys

import (
	"testing"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

// drain ticks until n completions arrive or the limit is hit.
func drain(t *testing.T, m *Memory, n int, limit int) []Completion {
	t.Helper()
	var out []Completion
	for i := 0; i < limit && len(out) < n; i++ {
		out = append(out, m.Tick()...)
	}
	if len(out) < n {
		t.Fatalf("only %d of %d completions after %d ticks (parked=%d)", len(out), n, limit, m.ParkedCount())
	}
	return out
}

func newMin(t *testing.T, size int64) *Memory {
	t.Helper()
	return New(machine.MemMin, 1, size)
}

// tg builds a distinct Tag for request identification in tests.
func tg(n int) Tag { return Tag{IP: n} }

func TestPlainStoreLoad(t *testing.T) {
	m := newMin(t, 16)
	if err := m.Issue(&Request{IsStore: true, Addr: 3, Store: isa.Int(42), Tag: tg(1)}); err != nil {
		t.Fatal(err)
	}
	drain(t, m, 1, 10)
	if err := m.Issue(&Request{Addr: 3, Tag: tg(2)}); err != nil {
		t.Fatal(err)
	}
	done := drain(t, m, 1, 10)
	if done[0].Value.AsInt() != 42 || done[0].Req.Tag != tg(2) {
		t.Errorf("load returned %v (%v)", done[0].Value, done[0].Req.Tag)
	}
}

// TestTable1Semantics checks every row of the paper's Table 1.
func TestTable1Semantics(t *testing.T) {
	// Row: unconditional load leaves the presence bit as is.
	m := newMin(t, 8)
	m.Poke(0, isa.Int(5), false) // empty
	m.Issue(&Request{Addr: 0, Sync: isa.SyncNone})
	drain(t, m, 1, 10)
	if _, full := m.Peek(0); full {
		t.Error("unconditional load changed empty->full")
	}

	// Row: wait-until-full load leaves full; parks on empty.
	m = newMin(t, 8)
	m.Poke(0, isa.Int(5), true)
	m.Issue(&Request{Addr: 0, Sync: isa.SyncWaitFull})
	drain(t, m, 1, 10)
	if _, full := m.Peek(0); !full {
		t.Error("wait-full load cleared the bit")
	}

	// Row: consuming load waits until full and sets empty.
	m = newMin(t, 8)
	m.Poke(0, isa.Int(7), true)
	m.Issue(&Request{Addr: 0, Sync: isa.SyncConsume})
	done := drain(t, m, 1, 10)
	if done[0].Value.AsInt() != 7 {
		t.Errorf("consume read %v", done[0].Value)
	}
	if _, full := m.Peek(0); full {
		t.Error("consume left the bit full")
	}

	// Row: unconditional store sets full.
	m = newMin(t, 8)
	m.Poke(0, isa.Int(0), false)
	m.Issue(&Request{IsStore: true, Addr: 0, Store: isa.Int(9)})
	drain(t, m, 1, 10)
	if v, full := m.Peek(0); !full || v.AsInt() != 9 {
		t.Error("unconditional store did not set full")
	}

	// Row: wait-until-full store leaves full (update-in-place).
	m = newMin(t, 8)
	m.Poke(0, isa.Int(1), true)
	m.Issue(&Request{IsStore: true, Addr: 0, Store: isa.Int(2), Sync: isa.SyncWaitFull})
	drain(t, m, 1, 10)
	if v, full := m.Peek(0); !full || v.AsInt() != 2 {
		t.Error("wait-full store failed")
	}

	// Row: producing store waits until empty and sets full.
	m = newMin(t, 8)
	m.Poke(0, isa.Int(0), false)
	m.Issue(&Request{IsStore: true, Addr: 0, Store: isa.Int(3), Sync: isa.SyncProduce})
	drain(t, m, 1, 10)
	if v, full := m.Peek(0); !full || v.AsInt() != 3 {
		t.Error("produce store failed")
	}
}

func TestSplitTransactionWakeup(t *testing.T) {
	// A consuming load of an empty word parks; a later store wakes it.
	m := newMin(t, 8)
	m.Poke(2, isa.Int(0), false)
	m.Issue(&Request{Addr: 2, Sync: isa.SyncConsume, Tag: tg(1)})
	for i := 0; i < 5; i++ {
		if got := m.Tick(); len(got) != 0 {
			t.Fatalf("parked load completed early: %v", got)
		}
	}
	if m.ParkedCount() != 1 {
		t.Fatalf("parked = %d, want 1", m.ParkedCount())
	}
	m.Issue(&Request{IsStore: true, Addr: 2, Store: isa.Int(11), Tag: tg(2)})
	done := drain(t, m, 2, 10)
	var sawLoad bool
	for _, c := range done {
		if c.Req.Tag == tg(1) {
			sawLoad = true
			if c.Value.AsInt() != 11 {
				t.Errorf("woken load read %v", c.Value)
			}
		}
	}
	if !sawLoad {
		t.Error("parked load never completed")
	}
	if m.ParkedCount() != 0 || !m.Quiescent() {
		t.Error("memory not quiescent after wakeup")
	}
}

func TestProduceConsumeChain(t *testing.T) {
	// Two producers to the same cell serialize through a consumer.
	m := newMin(t, 8)
	m.Poke(0, isa.Int(0), false)
	m.Issue(&Request{IsStore: true, Addr: 0, Store: isa.Int(1), Sync: isa.SyncProduce, Tag: tg(1)})
	m.Issue(&Request{IsStore: true, Addr: 0, Store: isa.Int(2), Sync: isa.SyncProduce, Tag: tg(2)})
	// p1 fills the cell; p2 (serialized behind it by the bank) parks.
	drain(t, m, 1, 10)
	for i := 0; i < 4; i++ {
		m.Tick()
	}
	if m.ParkedCount() != 1 {
		t.Fatalf("second producer should park (parked=%d)", m.ParkedCount())
	}
	m.Issue(&Request{Addr: 0, Sync: isa.SyncConsume, Tag: tg(3)})
	done := drain(t, m, 2, 20)
	if len(done) < 2 {
		t.Fatal("consumer or second producer missing")
	}
	m.Issue(&Request{Addr: 0, Sync: isa.SyncConsume, Tag: tg(4)})
	final := drain(t, m, 1, 20)
	vals := map[Tag]int64{}
	for _, c := range append(done, final...) {
		if !c.Req.IsStore {
			vals[c.Req.Tag] = c.Value.AsInt()
		}
	}
	if vals[tg(3)] != 1 || vals[tg(4)] != 2 {
		t.Errorf("consumers read %v, want c1=1 c2=2", vals)
	}
}

func TestWaitFullLoadsWakeInOrder(t *testing.T) {
	// Multiple wait-full loads park; a store wakes them (one per flip,
	// serialized one cycle apart) without clearing the bit.
	m := newMin(t, 8)
	m.Poke(1, isa.Int(0), false)
	for i := 0; i < 3; i++ {
		m.Issue(&Request{Addr: 1, Sync: isa.SyncWaitFull, Tag: tg(i)})
	}
	for i := 0; i < 3; i++ {
		m.Tick()
	}
	if m.ParkedCount() != 3 {
		t.Fatalf("parked = %d, want 3", m.ParkedCount())
	}
	m.Issue(&Request{IsStore: true, Addr: 1, Store: isa.Int(8), Tag: tg(100)})
	done := drain(t, m, 4, 30)
	order := []Tag{}
	for _, c := range done {
		if !c.Req.IsStore {
			order = append(order, c.Req.Tag)
			if c.Value.AsInt() != 8 {
				t.Errorf("waiter %v read %v", c.Req.Tag, c.Value)
			}
		}
	}
	if len(order) != 3 || order[0] != tg(0) || order[1] != tg(1) || order[2] != tg(2) {
		t.Errorf("wake order = %v, want [0 1 2]", order)
	}
}

func TestStatisticalLatencyDeterministic(t *testing.T) {
	run := func(seed uint64) []int {
		m := New(machine.Mem2, seed, 1024)
		var latencies []int
		for a := int64(0); a < 200; a++ {
			m.Issue(&Request{Addr: a, Tag: tg(int(a))})
			lat := 0
			for len(m.Tick()) == 0 {
				lat++
				if lat > 1000 {
					t.Fatal("reference never completed")
				}
			}
			latencies = append(latencies, lat+1)
		}
		return latencies
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at ref %d: %d vs %d", i, a[i], b[i])
		}
	}
	// With a 10% miss rate over 200 refs, expect some misses with
	// penalties in [20, 100].
	misses := 0
	for _, l := range a {
		if l > 1 {
			misses++
			if l < 21 || l > 101 {
				t.Errorf("miss latency %d outside [21,101]", l)
			}
		}
	}
	if misses < 5 || misses > 50 {
		t.Errorf("misses = %d over 200 refs at 10%%", misses)
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical miss patterns")
	}
}

func TestSameAddressStoreOrdering(t *testing.T) {
	// Two stores to one address must commit in issue order even when the
	// first draws a long miss latency.
	m := New(machine.MemoryModel{Name: "allmiss", HitLatency: 1, MissRate: 1,
		MissPenaltyMin: 30, MissPenaltyMax: 30, Banks: 4}, 1, 64)
	m.Issue(&Request{IsStore: true, Addr: 5, Store: isa.Int(1), Tag: tg(1)})
	// Second store issued later but would complete sooner without the
	// ordering rule (its latency is drawn independently).
	m2 := machine.MemMin
	_ = m2
	m.Issue(&Request{IsStore: true, Addr: 5, Store: isa.Int(2), Tag: tg(2)})
	done := drain(t, m, 2, 200)
	if done[len(done)-1].Req.Tag != tg(2) {
		t.Errorf("stores completed out of order: last = %v", done[len(done)-1].Req.Tag)
	}
	if v, _ := m.Peek(5); v.AsInt() != 2 {
		t.Errorf("final value %v, want 2 (program order)", v)
	}
}

func TestBankConflicts(t *testing.T) {
	model := machine.MemMin
	model.ModelBankConflicts = true
	model.Banks = 2
	m := New(model, 1, 64)
	// Four refs to the same bank (addresses 0,2,4,6 all hit bank 0).
	for i := int64(0); i < 4; i++ {
		m.Issue(&Request{Addr: i * 2, Tag: tg(int(i))})
	}
	if m.Stats().BankConflict != 3 {
		t.Errorf("bank conflicts = %d, want 3", m.Stats().BankConflict)
	}
	done := drain(t, m, 4, 20)
	if len(done) != 4 {
		t.Fatal("refs lost")
	}
	// Without conflicts all four complete together; with them they
	// serialize one per cycle per bank.
	m2 := New(machine.MemMin, 1, 64)
	for i := int64(0); i < 4; i++ {
		m2.Issue(&Request{Addr: i * 2, Tag: tg(int(i))})
	}
	if got := len(m2.Tick()); got != 4 {
		t.Errorf("conflict-free model completed %d, want 4", got)
	}
}

func TestAddressFaults(t *testing.T) {
	m := newMin(t, 8)
	if err := m.Issue(&Request{Addr: -1}); err == nil {
		t.Error("accepted negative address")
	}
	if err := m.Issue(&Request{Addr: 8}); err == nil {
		t.Error("accepted out-of-range address")
	}
	if m.Fault() == nil {
		t.Error("fault not recorded")
	}
}

func TestLoadImage(t *testing.T) {
	m := newMin(t, 32)
	segs := []isa.DataSegment{
		{Name: "a", Addr: 4, Values: []isa.Value{isa.Int(1), isa.Int(2)}, Full: true},
		{Name: "s", Addr: 10, Values: []isa.Value{isa.Int(0)}, Full: false},
	}
	if err := m.LoadImage(segs); err != nil {
		t.Fatal(err)
	}
	if v, full := m.Peek(4); !full || v.AsInt() != 1 {
		t.Error("image word 4 wrong")
	}
	if _, full := m.Peek(10); full {
		t.Error("empty segment word marked full")
	}
	if _, full := m.Peek(20); !full {
		t.Error("uncovered words must start full")
	}
	if err := m.LoadImage([]isa.DataSegment{{Name: "x", Addr: 30, Values: make([]isa.Value, 5)}}); err == nil {
		t.Error("accepted segment beyond memory size")
	}
}

func TestStatsCounts(t *testing.T) {
	m := newMin(t, 16)
	m.Issue(&Request{Addr: 1})
	m.Issue(&Request{IsStore: true, Addr: 2, Store: isa.Int(1)})
	drain(t, m, 2, 10)
	st := m.Stats()
	if st.Loads != 1 || st.Stores != 1 || st.Hits != 2 || st.Misses != 0 {
		t.Errorf("stats = %+v", st)
	}
}
