// Package memsys implements the node's memory system: interleaved banks of
// words, each with a presence (valid) bit, the precondition/postcondition
// load and store flavors of Table 1 of the paper, split-transaction
// handling of references whose precondition is not yet satisfied, and the
// statistical hit/miss latency model used for the variable-memory-latency
// experiments (Figure 7).
package memsys

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"pcoup/internal/faults"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/rng"
)

// AddressError is an addressing fault: a reference outside the node's
// memory. It aborts the simulated run (distinct from transient injected
// faults, which the machine recovers from).
type AddressError struct {
	Addr    int64 `json:"addr"`
	Size    int64 `json:"size"`
	IsStore bool  `json:"is_store"`
}

func (e *AddressError) Error() string {
	kind := "load"
	if e.IsStore {
		kind = "store"
	}
	return fmt.Sprintf("memsys: %s address %d out of range [0,%d)", kind, e.Addr, e.Size)
}

// Tag links a memory reference back to the issuing operation: the
// issuing thread's ID and the operation's (segment, word, slot) program
// coordinates, plus the cluster the reference issued from. It is carried
// by value (no boxing) and returned with the Completion. The JSON field
// names match the simulator's historical checkpoint tag encoding, so
// checkpoints taken before the tag became typed still decode.
type Tag struct {
	Thread     int `json:"t"`
	SegIdx     int `json:"seg"`
	IP         int `json:"ip"`
	Slot       int `json:"slot"`
	SrcCluster int `json:"c"`
}

// Request describes one memory reference issued by a memory unit.
type Request struct {
	IsStore bool
	Sync    isa.SyncFlavor
	Addr    int64
	Store   isa.Value // value to write (stores only)
	// Tag is caller context, returned with the Completion.
	Tag Tag

	// PrefHit marks a load whose address was covered by a stride
	// prefetch; PrefReady is the tick the prefetched data arrives. The
	// hint is timing-only: a covered load completes at hit latency once
	// the prefetch has landed, and is otherwise capped by the prefetch's
	// arrival — it can never be slower than an unhinted load.
	PrefHit   bool
	PrefReady int64

	// issuedAt records the tick the reference entered the memory system
	// (latency histogram bookkeeping).
	issuedAt int64
}

// Completion reports a finished reference.
type Completion struct {
	Req   *Request
	Value isa.Value // loaded value (loads only)
}

// NumLatencyBuckets is the size of the reference-latency histogram:
// power-of-two buckets 1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, 65-128, >128.
const NumLatencyBuckets = 9

// LatencyBucketLabel names histogram bucket i.
func LatencyBucketLabel(i int) string {
	switch {
	case i <= 0:
		return "1"
	case i == 1:
		return "2"
	case i >= NumLatencyBuckets-1:
		return ">128"
	default:
		return fmt.Sprintf("%d-%d", 1<<uint(i-1)+1, 1<<uint(i))
	}
}

// latencyBucket maps a completed reference's total latency to a bucket.
func latencyBucket(lat int64) int {
	b := 0
	for lat > 1 && b < NumLatencyBuckets-1 {
		lat = (lat + 1) / 2
		b++
	}
	return b
}

// Stats accumulates memory system counters.
type Stats struct {
	Loads        int64
	Stores       int64
	Hits         int64
	Misses       int64
	PenaltySum   int64
	Parked       int64 // references that had to wait on a presence bit
	MaxParked    int   // peak number of simultaneously parked references
	BankConflict int64 // references delayed by bank conflicts (if modeled)
	// LatencyHist counts completed references by total observed latency
	// in cycles from issue to commit — transit plus any bank-queue and
	// presence-bit park time (see LatencyBucketLabel for bucket bounds).
	LatencyHist [NumLatencyBuckets]int64
}

// inflight is a reference travelling to/from memory.
type inflight struct {
	req       *Request
	remaining int // cycles until arrival
}

// Memory is the node memory: words, presence bits, banks, and in-flight
// reference bookkeeping. It is advanced one cycle at a time by Tick.
type Memory struct {
	model machine.MemoryModel
	rnd   *rng.Source

	words []isa.Value
	full  []bool

	pending []inflight
	// References waiting for a presence-bit transition, strict FIFO per
	// address and direction: parkedFull holds references waiting for the
	// word to become full (waitfull/consume loads, waitfull stores);
	// parkedEmpty holds producing stores waiting for it to become empty.
	// A newly arriving reference parks behind earlier waiters of its
	// direction even if its own precondition currently holds, so
	// producers and consumers at one cell are each served in issue order.
	parkedFull  map[int64][]*Request
	parkedEmpty map[int64][]*Request
	nPark       int
	// dueService lists addresses whose parked queue is re-examined this
	// tick; nextService collects addresses enabled by this tick's commits
	// (one-cycle split-transaction reactivation latency). Both are kept
	// sorted and deduplicated for deterministic service order. delayed
	// holds reactivations pushed out by injected faults, sorted by
	// (due, addr).
	dueService  []int64
	nextService []int64
	delayed     []delayedService

	// inj, when set, injects reactivation faults: a scheduled service
	// may be delayed beyond the usual one-cycle latency or dropped
	// outright (a lost wakeup, healed only by RecoverLostWakeups).
	inj *faults.Injector

	// bankQueue holds references not yet started because their bank
	// already accepted one this cycle (only when ModelBankConflicts).
	bankQueue [][]*Request
	bankBusy  []bool

	// tick counts Tick calls (the memory's local clock, used to measure
	// per-reference latency including queueing and park time).
	tick int64

	// doneScratch and arrivalsScratch are per-Memory scratch buffers
	// reused across Tick calls so the steady-state cycle path allocates
	// nothing. The slice Tick returns aliases doneScratch and is valid
	// only until the next Tick call.
	doneScratch     []Completion
	arrivalsScratch []*Request

	stats Stats
	fault error
}

// delayedService is a reactivation postponed by an injected fault.
type delayedService struct {
	Addr int64 `json:"addr"`
	Due  int64 `json:"due"` // tick at which the address is serviced
}

// backing is a recycled words/presence-bits pair held by backingPool.
type backing struct {
	words []isa.Value
	full  []bool
}

// backingPool recycles the memory image arrays — the single largest
// allocation of a simulation cell — across Memories (see Recycle).
var backingPool sync.Pool

// newBacking returns zeroed word and presence arrays of the given size,
// reusing a pooled backing when one is large enough. Reused arrays are
// cleared to exactly the state make() would produce, so pooling can
// never change simulation results.
func newBacking(size int64) ([]isa.Value, []bool) {
	if b, _ := backingPool.Get().(*backing); b != nil && int64(cap(b.words)) >= size && int64(cap(b.full)) >= size {
		words := b.words[:size]
		full := b.full[:size]
		for i := range words {
			words[i] = isa.Value{}
		}
		for i := range full {
			full[i] = false
		}
		return words, full
	}
	return make([]isa.Value, size), make([]bool, size)
}

// Recycle returns the memory's image arrays to the package pool for
// reuse by a future New. The Memory (including values previously
// returned by Peek-style inspection of it) must not be used afterwards.
func (m *Memory) Recycle() {
	if m.words == nil {
		return
	}
	backingPool.Put(&backing{words: m.words, full: m.full})
	m.words, m.full = nil, nil
}

// New creates a memory of size words using the given model and seed.
func New(model machine.MemoryModel, seed uint64, size int64) *Memory {
	if size < 1 {
		size = 1
	}
	words, full := newBacking(size)
	m := &Memory{
		model:       model,
		rnd:         rng.New(seed),
		words:       words,
		full:        full,
		parkedFull:  make(map[int64][]*Request),
		parkedEmpty: make(map[int64][]*Request),
	}
	if model.ModelBankConflicts {
		m.bankQueue = make([][]*Request, model.Banks)
		m.bankBusy = make([]bool, model.Banks)
	}
	return m
}

// LoadImage installs the program's initial data segments. Words covered by
// a segment get the segment's presence state; all other words start full
// (ordinary uninitialized data) with value zero.
func (m *Memory) LoadImage(segs []isa.DataSegment) error {
	for i := range m.full {
		m.full[i] = true
	}
	for _, seg := range segs {
		if seg.Addr < 0 || seg.Addr+int64(len(seg.Values)) > int64(len(m.words)) {
			return fmt.Errorf("memsys: data segment %q [%d,%d) outside memory of %d words",
				seg.Name, seg.Addr, seg.Addr+int64(len(seg.Values)), len(m.words))
		}
		for i, v := range seg.Values {
			m.words[seg.Addr+int64(i)] = v
			m.full[seg.Addr+int64(i)] = seg.Full
		}
	}
	return nil
}

// SetFaults installs a fault injector consulted when split-transaction
// reactivations are scheduled. Pass nil to disable injection.
func (m *Memory) SetFaults(inj *faults.Injector) { m.inj = inj }

// Size returns the memory size in words.
func (m *Memory) Size() int64 { return int64(len(m.words)) }

// Now returns the current memory tick (the clock prefetch hints are
// expressed in).
func (m *Memory) Now() int64 { return m.tick }

// Stats returns a copy of the accumulated counters.
func (m *Memory) Stats() Stats { return m.stats }

// Fault returns the first addressing fault encountered, if any.
func (m *Memory) Fault() error { return m.fault }

// Peek reads a word directly (for harnesses and tests; not a simulated
// reference).
func (m *Memory) Peek(addr int64) (isa.Value, bool) {
	if addr < 0 || addr >= int64(len(m.words)) {
		return isa.Value{}, false
	}
	return m.words[addr], m.full[addr]
}

// Poke writes a word directly (for harnesses and tests).
func (m *Memory) Poke(addr int64, v isa.Value, full bool) {
	if addr < 0 || addr >= int64(len(m.words)) {
		return
	}
	m.words[addr] = v
	m.full[addr] = full
}

// latency draws the total access latency for a new reference.
func (m *Memory) latency() int {
	lat := m.model.HitLatency
	if m.model.MissRate > 0 && m.rnd.Float64() < m.model.MissRate {
		m.stats.Misses++
		pen := m.model.MissPenaltyMin
		if m.model.MissPenaltyMax > m.model.MissPenaltyMin {
			pen = m.rnd.Range(m.model.MissPenaltyMin, m.model.MissPenaltyMax)
		}
		m.stats.PenaltySum += int64(pen)
		lat += pen
	} else {
		m.stats.Hits++
	}
	return lat
}

// Issue accepts a new reference. The reference arrives at the addressed
// word after the model's (possibly random) latency; its precondition is
// evaluated on arrival.
func (m *Memory) Issue(req *Request) error {
	if req.Addr < 0 || req.Addr >= int64(len(m.words)) {
		err := &AddressError{Addr: req.Addr, Size: int64(len(m.words)), IsStore: req.IsStore}
		if m.fault == nil {
			m.fault = err
		}
		return err
	}
	if req.IsStore {
		m.stats.Stores++
	} else {
		m.stats.Loads++
	}
	req.issuedAt = m.tick
	if m.model.ModelBankConflicts {
		bank := int(req.Addr % int64(m.model.Banks))
		if m.bankBusy[bank] {
			m.stats.BankConflict++
			m.bankQueue[bank] = append(m.bankQueue[bank], req)
			return nil
		}
		m.bankBusy[bank] = true
	}
	m.start(req)
	return nil
}

// start places a reference in flight. References to the same address are
// kept in issue order when at least one is a store (the bank serializes
// conflicting accesses), so a short-latency store can never overtake an
// earlier long-latency store to the same word.
func (m *Memory) start(req *Request) {
	var remaining int
	if !req.IsStore && req.PrefHit {
		// A stride prefetch already fetched this word. Once the prefetch
		// has (nearly) landed the demand load completes at hit latency
		// with no demand draw; while still in flight, the load waits for
		// it, capped by its own draw — a prefetch never slows a load.
		wait := int(req.PrefReady - m.tick)
		if wait <= m.model.HitLatency {
			m.stats.Hits++
			remaining = m.model.HitLatency
		} else {
			remaining = m.latency()
			if wait < remaining {
				remaining = wait
			}
		}
	} else {
		remaining = m.latency()
	}
	for _, f := range m.pending {
		if f.req.Addr == req.Addr && (f.req.IsStore || req.IsStore) && f.remaining >= remaining {
			remaining = f.remaining + 1
		}
	}
	m.pending = append(m.pending, inflight{req: req, remaining: remaining})
}

// Tick advances the memory one cycle and returns the references that
// completed this cycle. The returned slice aliases an internal scratch
// buffer: it is valid only until the next Tick call, and callers must
// consume (or copy) it immediately.
func (m *Memory) Tick() []Completion {
	m.tick++
	done := m.doneScratch[:0]
	// Age in-flight references; arrivals are processed in issue order.
	next := m.pending[:0]
	arrivals := m.arrivalsScratch[:0]
	for _, f := range m.pending {
		f.remaining--
		if f.remaining <= 0 {
			arrivals = append(arrivals, f.req)
		} else {
			next = append(next, f)
		}
	}
	m.pending = next
	m.arrivalsScratch = arrivals[:0]
	// Service parked queues scheduled by earlier commits: commit the
	// front of the queue matching the word's current state (one
	// reference per address per cycle, strict FIFO per direction).
	// The due list's backing is reused for the next tick's schedule:
	// nothing appends to dueService until the merge below, after this
	// loop has finished reading it.
	due := m.dueService
	m.dueService = due[:0]
	for _, addr := range due {
		queues := m.parkedEmpty
		if m.full[addr] {
			queues = m.parkedFull
		}
		queue := queues[addr]
		if len(queue) == 0 {
			continue // the next enabling commit re-schedules service
		}
		front := queue[0]
		queues[addr] = queue[1:]
		if len(queues[addr]) == 0 {
			delete(queues, addr)
		}
		m.nPark--
		done = append(done, m.commit(front))
	}
	for _, req := range arrivals {
		done = m.arrive(req, done)
	}
	// Fault-delayed reactivations whose time has come join the commits
	// made this tick; both re-examine their queues next tick.
	for len(m.delayed) > 0 && m.delayed[0].Due <= m.tick+1 {
		m.nextService = append(m.nextService, m.delayed[0].Addr)
		m.delayed = m.delayed[1:]
	}
	if len(m.nextService) > 0 {
		slices.Sort(m.nextService)
		for _, a := range m.nextService {
			if len(m.dueService) == 0 || m.dueService[len(m.dueService)-1] != a {
				m.dueService = append(m.dueService, a)
			}
		}
		m.nextService = m.nextService[:0]
	}
	// Release banks and start queued references (one per bank per cycle).
	if m.model.ModelBankConflicts {
		for b := range m.bankBusy {
			m.bankBusy[b] = false
			if len(m.bankQueue[b]) > 0 {
				req := m.bankQueue[b][0]
				m.bankQueue[b] = m.bankQueue[b][1:]
				m.bankBusy[b] = true
				m.start(req)
			}
		}
	}
	m.doneScratch = done
	return done
}

// waitQueue returns the direction queue a synchronizing reference waits
// in, or nil for unconditional references.
func (m *Memory) waitQueue(req *Request) map[int64][]*Request {
	switch req.Sync {
	case isa.SyncWaitFull, isa.SyncConsume:
		return m.parkedFull
	case isa.SyncProduce:
		return m.parkedEmpty
	}
	return nil
}

// arrive applies one reference at its addressed word: it completes when
// its precondition holds and no earlier reference of the same wait
// direction is parked at the address (strict FIFO per direction);
// otherwise it parks at the back of its direction's queue, serviced one
// per cycle as commits flip the presence bit.
func (m *Memory) arrive(req *Request, done []Completion) []Completion {
	addr := req.Addr
	q := m.waitQueue(req)
	if q != nil && (!m.preconditionHolds(req) || len(q[addr]) > 0) {
		q[addr] = append(q[addr], req)
		m.nPark++
		m.stats.Parked++
		if m.nPark > m.stats.MaxParked {
			m.stats.MaxParked = m.nPark
		}
		return done
	}
	done = append(done, m.commit(req))
	return done
}

// scheduleService arranges for the parked queues at addr to be
// re-examined after the split-transaction reactivation latency. With a
// fault injector installed the reactivation may be delayed by extra
// cycles or lost outright; a lost wakeup leaves the parked references
// stranded until the simulator's watchdog calls RecoverLostWakeups.
func (m *Memory) scheduleService(addr int64) {
	if len(m.parkedFull[addr]) == 0 && len(m.parkedEmpty[addr]) == 0 {
		return
	}
	if m.inj != nil {
		extra, dropped := m.inj.ReactivationFault()
		if dropped {
			return
		}
		if extra > 0 {
			m.delayed = append(m.delayed, delayedService{Addr: addr, Due: m.tick + 1 + int64(extra)})
			sort.Slice(m.delayed, func(i, j int) bool {
				if m.delayed[i].Due != m.delayed[j].Due {
					return m.delayed[i].Due < m.delayed[j].Due
				}
				return m.delayed[i].Addr < m.delayed[j].Addr
			})
			return
		}
	}
	m.nextService = append(m.nextService, addr)
}

func (m *Memory) preconditionHolds(req *Request) bool {
	full := m.full[req.Addr]
	switch req.Sync {
	case isa.SyncNone:
		return true
	case isa.SyncWaitFull, isa.SyncConsume:
		return full
	case isa.SyncProduce:
		return !full
	}
	return true
}

// commit applies the reference's effect and postcondition, then arranges
// for any parked references at the address to be serviced.
func (m *Memory) commit(req *Request) Completion {
	addr := req.Addr
	c := Completion{Req: req}
	lat := m.tick - req.issuedAt
	if lat < 1 {
		lat = 1
	}
	m.stats.LatencyHist[latencyBucket(lat)]++
	if req.IsStore {
		m.words[addr] = req.Store
		switch req.Sync {
		case isa.SyncNone, isa.SyncProduce:
			m.full[addr] = true
		case isa.SyncWaitFull:
			// leave full
		}
	} else {
		c.Value = m.words[addr]
		switch req.Sync {
		case isa.SyncConsume:
			m.full[addr] = false
		default:
			// leave as is
		}
	}
	m.scheduleService(addr)
	return c
}

// SkipBudget returns how many immediately upcoming Ticks are provably
// no-ops: no arrival completes, no parked queue is serviced, no delayed
// reactivation is promoted, and no bank starts a queued reference. The
// simulator's event core uses it to jump over idle stretches; SkipTicks
// applies the jump. 0 means the next tick may do work and must execute.
//
// The delayed bound is tick Due-2, not Due-1: a reactivation due at D is
// promoted into dueService during Tick(D-1) (the `Due <= tick+1` test)
// and serviced during Tick(D), so Tick(D-1) must execute normally.
func (m *Memory) SkipBudget() int64 {
	if len(m.dueService) > 0 || len(m.nextService) > 0 {
		return 0
	}
	budget := int64(1) << 62
	for i := range m.pending {
		if r := int64(m.pending[i].remaining) - 1; r < budget {
			budget = r
		}
	}
	if len(m.delayed) > 0 {
		if d := m.delayed[0].Due - m.tick - 2; d < budget {
			budget = d
		}
	}
	for b := range m.bankQueue {
		if len(m.bankQueue[b]) > 0 {
			return 0
		}
	}
	if budget < 0 {
		return 0
	}
	return budget
}

// SkipTicks advances the memory clock by k ticks at once, equivalent to
// k consecutive Tick calls under a SkipBudget() >= k guarantee: in-flight
// references age without arriving, no queue is touched, and busy banks
// release exactly as the first skipped tick would have released them. The
// statistical latency stream is untouched (draws happen at Issue, and no
// reference can issue during a skipped tick).
func (m *Memory) SkipTicks(k int64) {
	m.tick += k
	for i := range m.pending {
		m.pending[i].remaining -= int(k)
	}
	for b := range m.bankBusy {
		m.bankBusy[b] = false
	}
}

// HasLostWakeups is the read-only twin of RecoverLostWakeups' scan: it
// reports whether any parked queue in the direction enabled by its word's
// presence state lacks a scheduled reactivation. The event core uses it
// to decide whether the watchdog window is a real skip horizon (a sweep
// that would find nothing changes nothing and may be jumped over).
func (m *Memory) HasLostWakeups() bool {
	for addr, q := range m.parkedFull {
		if len(q) > 0 && m.full[addr] && !m.serviceScheduled(addr) {
			return true
		}
	}
	for addr, q := range m.parkedEmpty {
		if len(q) > 0 && !m.full[addr] && !m.serviceScheduled(addr) {
			return true
		}
	}
	return false
}

// ParkedCount returns the number of references currently waiting on
// presence bits (for tests and deadlock diagnosis).
func (m *Memory) ParkedCount() int { return m.nPark }

// PendingCount returns the number of in-flight references.
func (m *Memory) PendingCount() int {
	n := len(m.pending)
	for _, q := range m.bankQueue {
		n += len(q)
	}
	return n
}

// Quiescent reports whether no references are in flight, queued, or
// parked.
func (m *Memory) Quiescent() bool { return m.nPark == 0 && m.PendingCount() == 0 }

// WaitState locates an outstanding reference for stall attribution.
type WaitState int

const (
	// WaitNone: no matching reference is outstanding.
	WaitNone WaitState = iota
	// WaitInFlight: travelling to/from the memory (plain latency).
	WaitInFlight
	// WaitBank: queued behind a busy bank (bank-conflict model).
	WaitBank
	// WaitParked: parked on a presence-bit precondition.
	WaitParked
)

// FindWait reports where the first outstanding reference whose tag
// satisfies match currently waits, preferring the most specific state
// (parked, then bank-queued, then in flight). Used by the simulator's
// stall attribution; read-only.
func (m *Memory) FindWait(match func(Tag) bool) WaitState {
	st, _ := m.FindWaitAddr(match)
	return st
}

// FindWaitAddr is FindWait plus the waited-on address (valid unless the
// state is WaitNone). Used by deadlock diagnosis to name the memory
// word blocking a stalled thread.
func (m *Memory) FindWaitAddr(match func(Tag) bool) (WaitState, int64) {
	for _, q := range m.parkedFull {
		for _, r := range q {
			if match(r.Tag) {
				return WaitParked, r.Addr
			}
		}
	}
	for _, q := range m.parkedEmpty {
		for _, r := range q {
			if match(r.Tag) {
				return WaitParked, r.Addr
			}
		}
	}
	for _, q := range m.bankQueue {
		for _, r := range q {
			if match(r.Tag) {
				return WaitBank, r.Addr
			}
		}
	}
	for i := range m.pending {
		if match(m.pending[i].req.Tag) {
			return WaitInFlight, m.pending[i].req.Addr
		}
	}
	return WaitNone, 0
}

// serviceScheduled reports whether a reactivation for addr is already
// queued (due this tick, enabled this tick, or fault-delayed).
func (m *Memory) serviceScheduled(addr int64) bool {
	for _, a := range m.dueService {
		if a == addr {
			return true
		}
	}
	for _, a := range m.nextService {
		if a == addr {
			return true
		}
	}
	for _, d := range m.delayed {
		if d.Addr == addr {
			return true
		}
	}
	return false
}

// RecoverLostWakeups re-schedules service for every address whose
// parked queue in the direction enabled by the word's current presence
// state is non-empty but has no reactivation queued — the signature of
// a dropped wakeup. On a healthy machine this is a no-op: every commit
// that leaves parked references behind schedules a service, and a
// direction-mismatched queue is a genuine unsatisfied precondition, not
// a lost wakeup. Returns the number of addresses recovered. Called by
// the simulator's forward-progress watchdog between cycles.
func (m *Memory) RecoverLostWakeups() int {
	var addrs []int64
	for addr, q := range m.parkedFull {
		if len(q) > 0 && m.full[addr] && !m.serviceScheduled(addr) {
			addrs = append(addrs, addr)
		}
	}
	for addr, q := range m.parkedEmpty {
		if len(q) > 0 && !m.full[addr] && !m.serviceScheduled(addr) {
			addrs = append(addrs, addr)
		}
	}
	if len(addrs) == 0 {
		return 0
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	// Retried wakeups bypass the injector: re-faulting a recovery would
	// let an unlucky stream livelock the watchdog's bounded retries.
	merged := append(m.dueService, addrs...)
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	m.dueService = merged[:0]
	for _, a := range merged {
		if len(m.dueService) == 0 || m.dueService[len(m.dueService)-1] != a {
			m.dueService = append(m.dueService, a)
		}
	}
	return len(addrs)
}

// ReqState is a Request's serializable form.
type ReqState struct {
	IsStore   bool      `json:"is_store,omitempty"`
	Sync      int       `json:"sync"`
	Addr      int64     `json:"addr"`
	Store     isa.Value `json:"store"`
	Tag       Tag       `json:"tag"`
	PrefHit   bool      `json:"pref_hit,omitempty"`
	PrefReady int64     `json:"pref_ready,omitempty"`
	IssuedAt  int64     `json:"issued_at"`
}

// PendingState is an in-flight reference's serializable form.
type PendingState struct {
	Req       ReqState `json:"req"`
	Remaining int      `json:"remaining"`
}

// QueueState is one parked-queue (per address, per direction) in
// serializable form; queue order is preserved.
type QueueState struct {
	Addr int64      `json:"addr"`
	Reqs []ReqState `json:"reqs"`
}

// State is the memory's complete serializable state for cycle-boundary
// checkpoints.
type State struct {
	Words       []isa.Value      `json:"words"`
	Full        []bool           `json:"full"`
	Pending     []PendingState   `json:"pending,omitempty"`
	ParkedFull  []QueueState     `json:"parked_full,omitempty"`
	ParkedEmpty []QueueState     `json:"parked_empty,omitempty"`
	DueService  []int64          `json:"due_service,omitempty"`
	NextService []int64          `json:"next_service,omitempty"`
	Delayed     []delayedService `json:"delayed,omitempty"`
	BankQueues  [][]ReqState     `json:"bank_queues,omitempty"`
	BankBusy    []bool           `json:"bank_busy,omitempty"`
	Tick        int64            `json:"tick"`
	Stats       Stats            `json:"stats"`
	Rnd         uint64           `json:"rnd"`
	Fault       *AddressError    `json:"fault,omitempty"`
}

func encodeReq(r *Request) ReqState {
	return ReqState{
		IsStore: r.IsStore, Sync: int(r.Sync), Addr: r.Addr,
		Store: r.Store, Tag: r.Tag, IssuedAt: r.issuedAt,
		PrefHit: r.PrefHit, PrefReady: r.PrefReady,
	}
}

func decodeReq(rs ReqState) *Request {
	return &Request{
		IsStore: rs.IsStore, Sync: isa.SyncFlavor(rs.Sync), Addr: rs.Addr,
		Store: rs.Store, Tag: rs.Tag, issuedAt: rs.IssuedAt,
		PrefHit: rs.PrefHit, PrefReady: rs.PrefReady,
	}
}

func encodeQueues(queues map[int64][]*Request) []QueueState {
	addrs := make([]int64, 0, len(queues))
	for addr := range queues {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var out []QueueState
	for _, addr := range addrs {
		qs := QueueState{Addr: addr}
		for _, r := range queues[addr] {
			qs.Reqs = append(qs.Reqs, encodeReq(r))
		}
		out = append(out, qs)
	}
	return out
}

// Snapshot captures the memory's complete state at a tick boundary.
func (m *Memory) Snapshot() (*State, error) {
	st := &State{
		Words:       append([]isa.Value(nil), m.words...),
		Full:        append([]bool(nil), m.full...),
		DueService:  append([]int64(nil), m.dueService...),
		NextService: append([]int64(nil), m.nextService...),
		Delayed:     append([]delayedService(nil), m.delayed...),
		BankBusy:    append([]bool(nil), m.bankBusy...),
		Tick:        m.tick,
		Stats:       m.stats,
		Rnd:         m.rnd.State(),
	}
	if m.fault != nil {
		if ae, ok := m.fault.(*AddressError); ok {
			st.Fault = ae
		} else {
			return nil, fmt.Errorf("memsys: cannot snapshot non-address fault: %v", m.fault)
		}
	}
	for _, f := range m.pending {
		st.Pending = append(st.Pending, PendingState{Req: encodeReq(f.req), Remaining: f.remaining})
	}
	st.ParkedFull = encodeQueues(m.parkedFull)
	st.ParkedEmpty = encodeQueues(m.parkedEmpty)
	for _, q := range m.bankQueue {
		var bq []ReqState
		for _, r := range q {
			bq = append(bq, encodeReq(r))
		}
		st.BankQueues = append(st.BankQueues, bq)
	}
	return st, nil
}

func decodeQueues(states []QueueState) (map[int64][]*Request, int) {
	out := make(map[int64][]*Request)
	n := 0
	for _, qs := range states {
		var q []*Request
		for _, rs := range qs.Reqs {
			q = append(q, decodeReq(rs))
			n++
		}
		out[qs.Addr] = q
	}
	return out, n
}

// Restore resets the memory to a snapshotted state. The memory must
// have been built from the same machine model and size.
func (m *Memory) Restore(st *State) error {
	if int64(len(st.Words)) != int64(len(m.words)) {
		return fmt.Errorf("memsys: snapshot has %d words, memory has %d", len(st.Words), len(m.words))
	}
	if len(st.BankQueues) > 0 && m.bankQueue == nil {
		return fmt.Errorf("memsys: snapshot models bank conflicts, memory does not")
	}
	copy(m.words, st.Words)
	copy(m.full, st.Full)
	m.pending = nil
	for _, ps := range st.Pending {
		m.pending = append(m.pending, inflight{req: decodeReq(ps.Req), remaining: ps.Remaining})
	}
	var nFull, nEmpty int
	m.parkedFull, nFull = decodeQueues(st.ParkedFull)
	m.parkedEmpty, nEmpty = decodeQueues(st.ParkedEmpty)
	m.nPark = nFull + nEmpty
	m.dueService = append([]int64(nil), st.DueService...)
	m.nextService = append([]int64(nil), st.NextService...)
	m.delayed = append([]delayedService(nil), st.Delayed...)
	if m.bankQueue != nil {
		m.bankQueue = make([][]*Request, len(m.bankQueue))
		for b, bq := range st.BankQueues {
			for _, rs := range bq {
				m.bankQueue[b] = append(m.bankQueue[b], decodeReq(rs))
			}
		}
		copy(m.bankBusy, st.BankBusy)
	}
	m.tick = st.Tick
	m.stats = st.Stats
	m.rnd.SetState(st.Rnd)
	m.fault = nil
	if st.Fault != nil {
		m.fault = st.Fault
	}
	return nil
}

// ForEachRequest visits every outstanding reference (in flight, bank
// queued, and parked, in that order), stopping at the first error. The
// simulator uses it after Restore to validate restored tags against the
// loaded program.
func (m *Memory) ForEachRequest(f func(*Request) error) error {
	for i := range m.pending {
		if err := f(m.pending[i].req); err != nil {
			return err
		}
	}
	for _, q := range m.bankQueue {
		for _, r := range q {
			if err := f(r); err != nil {
				return err
			}
		}
	}
	for _, queues := range []map[int64][]*Request{m.parkedFull, m.parkedEmpty} {
		for _, q := range queues {
			for _, r := range q {
				if err := f(r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
