package machine

import (
	"encoding/json"
	"fmt"
	"sort"
)

// DynamicModel configures the optional dynamic-scheduling subsystem
// (internal/dynsched): a bounded out-of-order issue window, a branch
// predictor replacing the fixed branch-resolution charge, and a
// stride/delta memory prefetcher feeding the statistical memory model.
// The zero value disables all three, which is the paper-exact machine.
type DynamicModel struct {
	// Window is the per-thread issue-window depth in instruction words.
	// Zero disables out-of-order issue (paper-exact in-order buffers);
	// with Window = W, ready operations from up to W words may bypass a
	// stalled head as long as register presence-bit semantics and
	// per-thread memory ordering are preserved.
	Window int

	// Predictor selects the branch predictor: "" (none — conditional
	// branches stall the window until resolved), "bimodal" (2-bit
	// saturating counters), or "tage" (tagged-geometric with a bimodal
	// base). Requires Window >= 1: prediction speculates past the
	// unresolved branch inside the window.
	Predictor string

	// PredictorBits sizes the predictor tables: 1<<PredictorBits
	// counters for bimodal, and the base + each tagged table for TAGE.
	// Zero means 10 (1024 entries).
	PredictorBits int

	// SquashPenalty is the number of cycles the thread is suppressed
	// from issuing after a misprediction squash (re-fetch/re-decode
	// charge). Zero means 3.
	SquashPenalty int

	// PrefetchStreams is the number of PC-indexed entries in the stride
	// prefetcher's table. Zero disables prefetching.
	PrefetchStreams int

	// PrefetchDegree is the number of strided addresses prefetched
	// ahead once a stream's stride is confident. Zero means 4.
	PrefetchDegree int
}

// Enabled reports whether any dynamic-scheduling feature is on.
func (d DynamicModel) Enabled() bool {
	return d.Window > 0 || d.Predictor != "" || d.PrefetchStreams > 0
}

// Effective-default accessors: the zero value of each tunable maps to
// its documented default so configs stay terse.

// EffPredictorBits returns the effective predictor table size exponent.
func (d DynamicModel) EffPredictorBits() int {
	if d.PredictorBits == 0 {
		return 10
	}
	return d.PredictorBits
}

// EffSquashPenalty returns the effective misprediction penalty.
func (d DynamicModel) EffSquashPenalty() int {
	if d.SquashPenalty == 0 {
		return 3
	}
	return d.SquashPenalty
}

// EffPrefetchDegree returns the effective prefetch degree.
func (d DynamicModel) EffPrefetchDegree() int {
	if d.PrefetchDegree == 0 {
		return 4
	}
	return d.PrefetchDegree
}

// Validation bounds for the dynamic section.
const (
	// MaxDynWindow bounds the issue-window depth in instruction words.
	MaxDynWindow = 64
	// MaxPredictorBits bounds predictor table size (1<<bits entries).
	MaxPredictorBits = 20
	// MaxPrefetchStreams bounds the prefetcher's stream table.
	MaxPrefetchStreams = 4096
	// MaxPrefetchDegree bounds how far ahead a stream prefetches.
	MaxPrefetchDegree = 16
)

// validate checks the dynamic section; errors name the offending field
// in the JSON spelling ("machine: dynamic.window: ...").
func (d DynamicModel) validate(c *Config) error {
	if d.Window < 0 {
		return fmt.Errorf("machine: dynamic.window: %d (must be >= 0)", d.Window)
	}
	if d.Window > MaxDynWindow {
		return fmt.Errorf("machine: dynamic.window: %d (max %d)", d.Window, MaxDynWindow)
	}
	switch d.Predictor {
	case "", "bimodal", "tage":
	default:
		return fmt.Errorf("machine: dynamic.predictor: unknown predictor %q (want bimodal or tage)", d.Predictor)
	}
	if d.Predictor != "" && d.Window < 1 {
		return fmt.Errorf("machine: dynamic.predictor: requires dynamic.window >= 1 (speculation needs a window)")
	}
	if d.PredictorBits < 0 {
		return fmt.Errorf("machine: dynamic.predictor_bits: %d (must be >= 0)", d.PredictorBits)
	}
	if d.PredictorBits > MaxPredictorBits {
		return fmt.Errorf("machine: dynamic.predictor_bits: %d (max %d)", d.PredictorBits, MaxPredictorBits)
	}
	if d.PredictorBits > 0 && d.Predictor == "" {
		return fmt.Errorf("machine: dynamic.predictor_bits: set without dynamic.predictor")
	}
	if d.SquashPenalty < 0 {
		return fmt.Errorf("machine: dynamic.squash_penalty: %d (must be >= 0)", d.SquashPenalty)
	}
	if d.SquashPenalty > MaxLatency {
		return fmt.Errorf("machine: dynamic.squash_penalty: %d (max %d)", d.SquashPenalty, MaxLatency)
	}
	if d.SquashPenalty > 0 && d.Window < 1 {
		return fmt.Errorf("machine: dynamic.squash_penalty: set without dynamic.window")
	}
	if d.PrefetchStreams < 0 {
		return fmt.Errorf("machine: dynamic.prefetch_streams: %d (must be >= 0)", d.PrefetchStreams)
	}
	if d.PrefetchStreams > MaxPrefetchStreams {
		return fmt.Errorf("machine: dynamic.prefetch_streams: %d (max %d)", d.PrefetchStreams, MaxPrefetchStreams)
	}
	if d.PrefetchDegree < 0 {
		return fmt.Errorf("machine: dynamic.prefetch_degree: %d (must be >= 0)", d.PrefetchDegree)
	}
	if d.PrefetchDegree > MaxPrefetchDegree {
		return fmt.Errorf("machine: dynamic.prefetch_degree: %d (max %d)", d.PrefetchDegree, MaxPrefetchDegree)
	}
	if d.PrefetchDegree > 0 && d.PrefetchStreams == 0 {
		return fmt.Errorf("machine: dynamic.prefetch_degree: set without dynamic.prefetch_streams")
	}
	if d.Window > 0 {
		// The lock-step issue ablation requires whole-word issue and the
		// op-cache model charges per-head-word fetch stalls; both are
		// incompatible with word lookahead.
		if c.LockStepIssue {
			return fmt.Errorf("machine: dynamic.window: incompatible with lock_step_issue")
		}
		if c.OpCache.Entries > 0 {
			return fmt.Errorf("machine: dynamic.window: incompatible with op_cache")
		}
	}
	return nil
}

// canonicalDynamic normalizes the section for content addressing:
// disabled features zero their tunables, enabled features make the
// documented defaults explicit.
func (d DynamicModel) canonical() DynamicModel {
	out := d
	if out.Window > 0 {
		out.SquashPenalty = out.EffSquashPenalty()
	} else {
		out.SquashPenalty = 0
	}
	if out.Predictor != "" {
		out.PredictorBits = out.EffPredictorBits()
	} else {
		out.PredictorBits = 0
	}
	if out.PrefetchStreams > 0 {
		out.PrefetchDegree = out.EffPrefetchDegree()
	} else {
		out.PrefetchDegree = 0
	}
	return out
}

// jsonDynamic is the on-disk form of the dynamic section. All fields are
// omitempty so a disabled section round-trips to nothing.
type jsonDynamic struct {
	Window          int    `json:"window,omitempty"`
	Predictor       string `json:"predictor,omitempty"`
	PredictorBits   int    `json:"predictor_bits,omitempty"`
	SquashPenalty   int    `json:"squash_penalty,omitempty"`
	PrefetchStreams int    `json:"prefetch_streams,omitempty"`
	PrefetchDegree  int    `json:"prefetch_degree,omitempty"`
}

// dynamicFields is the set of accepted keys, used to reject unknown
// fields with an error naming the offender (a typo in a dynamic tunable
// must not silently fall back to paper-exact behavior).
var dynamicFields = map[string]bool{
	"window": true, "predictor": true, "predictor_bits": true,
	"squash_penalty": true, "prefetch_streams": true, "prefetch_degree": true,
}

// UnmarshalJSON rejects unknown keys before decoding the known ones.
func (jd *jsonDynamic) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("machine: dynamic: %w", err)
	}
	var unknown []string
	for k := range raw {
		if !dynamicFields[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("machine: dynamic.%s: unknown field", unknown[0])
	}
	type plain jsonDynamic
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("machine: dynamic: %w", err)
	}
	*jd = jsonDynamic(p)
	return nil
}

// Dynamic-scheduling presets, composed with the paper's machine modes by
// Config.WithDynamic (experiments name the results CoupledOoO,
// CoupledTAGE, CoupledPrefetch, CoupledDyn).
var (
	// DynOoO: a 4-word out-of-order issue window, no speculation.
	DynOoO = DynamicModel{Window: 4}
	// DynTAGE: the window plus a TAGE branch predictor.
	DynTAGE = DynamicModel{Window: 4, Predictor: "tage"}
	// DynPrefetch: a 16-stream stride prefetcher, in-order issue.
	DynPrefetch = DynamicModel{PrefetchStreams: 16, PrefetchDegree: 4}
	// DynAll: all three mechanisms together.
	DynAll = DynamicModel{Window: 4, Predictor: "tage", PrefetchStreams: 16, PrefetchDegree: 4}
)

// WithDynamic returns a copy of c with the given dynamic-scheduling
// model.
func (c *Config) WithDynamic(d DynamicModel) *Config {
	out := c.Clone()
	out.Dynamic = d
	return out
}
