package machine

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSampleConfigsUpToDate regenerates the example configuration files
// shipped in configs/ and verifies they load. Run with -regen to rewrite
// them (the files are committed artifacts used by the CLI documentation).
func TestSampleConfigsUpToDate(t *testing.T) {
	dir := filepath.Join("..", "..", "configs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	samples := map[string]*Config{
		"baseline.json":         Baseline(),
		"baseline-triport.json": Baseline().WithInterconnect(TriPort),
		"baseline-mem1.json":    Baseline().WithMemory(Mem1),
		"mix-2iu-2fpu.json":     Mix(2, 2),
	}
	for name, cfg := range samples {
		path := filepath.Join(dir, name)
		if _, err := os.Stat(path); err != nil {
			if err := cfg.Save(path); err != nil {
				t.Fatal(err)
			}
		}
		loaded, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if loaded.NumUnits() != cfg.NumUnits() || loaded.Interconnect != cfg.Interconnect {
			t.Errorf("%s: stale sample config (regenerate by deleting it)", name)
		}
	}
}
