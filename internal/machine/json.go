package machine

import (
	"encoding/json"
	"fmt"
	"os"

	"pcoup/internal/faults"
)

// jsonConfig is the on-disk representation of a Config. Unit kinds and the
// interconnect model are spelled by name so configuration files remain
// readable and stable across code changes.
type jsonConfig struct {
	Name         string        `json:"name"`
	Clusters     []jsonCluster `json:"clusters"`
	Interconnect string        `json:"interconnect"`
	Memory       jsonMemory    `json:"memory"`
	MaxDests     int           `json:"max_dests"`
	Seed         uint64        `json:"seed,omitempty"`
	Arbitration  string        `json:"arbitration,omitempty"`
	LockStep     bool          `json:"lock_step_issue,omitempty"`
	MaxThreads   int           `json:"max_threads,omitempty"`
	OpCache      *jsonOpCache  `json:"op_cache,omitempty"`
	Faults       *jsonFaults   `json:"faults,omitempty"`
	Dynamic      *jsonDynamic  `json:"dynamic,omitempty"`
}

type jsonFaults struct {
	Seed             uint64  `json:"seed,omitempty"`
	MemDelayRate     float64 `json:"mem_delay_rate,omitempty"`
	MemDelayMax      int     `json:"mem_delay_max,omitempty"`
	MemDropRate      float64 `json:"mem_drop_rate,omitempty"`
	PortOutageRate   float64 `json:"port_outage_rate,omitempty"`
	PortOutageCycles int     `json:"port_outage_cycles,omitempty"`
	UnitOutageRate   float64 `json:"unit_outage_rate,omitempty"`
	UnitOutageCycles int     `json:"unit_outage_cycles,omitempty"`
}

type jsonOpCache struct {
	Entries     int `json:"entries"`
	MissPenalty int `json:"miss_penalty"`
}

type jsonCluster struct {
	Units     []jsonUnit `json:"units"`
	Registers int        `json:"registers,omitempty"`
}

type jsonUnit struct {
	Kind    string `json:"kind"`
	Latency int    `json:"latency"`
}

type jsonMemory struct {
	Name           string  `json:"name"`
	HitLatency     int     `json:"hit_latency"`
	MissRate       float64 `json:"miss_rate,omitempty"`
	MissPenaltyMin int     `json:"miss_penalty_min,omitempty"`
	MissPenaltyMax int     `json:"miss_penalty_max,omitempty"`
	Banks          int     `json:"banks"`
	BankConflicts  bool    `json:"bank_conflicts,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (c *Config) MarshalJSON() ([]byte, error) {
	jc := jsonConfig{
		Name:       c.Name,
		MaxDests:   c.MaxDests,
		Seed:       c.Seed,
		LockStep:   c.LockStepIssue,
		MaxThreads: c.MaxThreads,
	}
	switch c.Arbitration {
	case PriorityArbitration:
		jc.Arbitration = "priority"
	case RoundRobinArbitration:
		jc.Arbitration = "round-robin"
	}
	jc.Interconnect = interconnectToken(c.Interconnect)
	if c.OpCache.Entries > 0 {
		jc.OpCache = &jsonOpCache{Entries: c.OpCache.Entries, MissPenalty: c.OpCache.MissPenalty}
	}
	if c.Faults != (faults.Model{}) {
		jc.Faults = &jsonFaults{
			Seed:             c.Faults.Seed,
			MemDelayRate:     c.Faults.MemDelayRate,
			MemDelayMax:      c.Faults.MemDelayMax,
			MemDropRate:      c.Faults.MemDropRate,
			PortOutageRate:   c.Faults.PortOutageRate,
			PortOutageCycles: c.Faults.PortOutageCycles,
			UnitOutageRate:   c.Faults.UnitOutageRate,
			UnitOutageCycles: c.Faults.UnitOutageCycles,
		}
	}
	if c.Dynamic != (DynamicModel{}) {
		jc.Dynamic = &jsonDynamic{
			Window:          c.Dynamic.Window,
			Predictor:       c.Dynamic.Predictor,
			PredictorBits:   c.Dynamic.PredictorBits,
			SquashPenalty:   c.Dynamic.SquashPenalty,
			PrefetchStreams: c.Dynamic.PrefetchStreams,
			PrefetchDegree:  c.Dynamic.PrefetchDegree,
		}
	}
	jc.Memory = jsonMemory{
		Name:           c.Memory.Name,
		HitLatency:     c.Memory.HitLatency,
		MissRate:       c.Memory.MissRate,
		MissPenaltyMin: c.Memory.MissPenaltyMin,
		MissPenaltyMax: c.Memory.MissPenaltyMax,
		Banks:          c.Memory.Banks,
		BankConflicts:  c.Memory.ModelBankConflicts,
	}
	for _, cl := range c.Clusters {
		jcl := jsonCluster{Registers: cl.Registers}
		for _, u := range cl.Units {
			jcl.Units = append(jcl.Units, jsonUnit{Kind: u.Kind.String(), Latency: u.Latency})
		}
		jc.Clusters = append(jc.Clusters, jcl)
	}
	return json.MarshalIndent(jc, "", "  ")
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *Config) UnmarshalJSON(data []byte) error {
	var jc jsonConfig
	if err := json.Unmarshal(data, &jc); err != nil {
		return err
	}
	out := Config{
		Name:          jc.Name,
		MaxDests:      jc.MaxDests,
		Seed:          jc.Seed,
		LockStepIssue: jc.LockStep,
		MaxThreads:    jc.MaxThreads,
	}
	switch jc.Arbitration {
	case "", "priority":
		out.Arbitration = PriorityArbitration
	case "round-robin":
		out.Arbitration = RoundRobinArbitration
	default:
		return fmt.Errorf("machine: unknown arbitration %q", jc.Arbitration)
	}
	ic, err := parseInterconnectToken(jc.Interconnect)
	if err != nil {
		return err
	}
	out.Interconnect = ic
	if jc.OpCache != nil {
		out.OpCache = OpCacheModel{Entries: jc.OpCache.Entries, MissPenalty: jc.OpCache.MissPenalty}
	}
	if jc.Faults != nil {
		out.Faults = faults.Model{
			Seed:             jc.Faults.Seed,
			MemDelayRate:     jc.Faults.MemDelayRate,
			MemDelayMax:      jc.Faults.MemDelayMax,
			MemDropRate:      jc.Faults.MemDropRate,
			PortOutageRate:   jc.Faults.PortOutageRate,
			PortOutageCycles: jc.Faults.PortOutageCycles,
			UnitOutageRate:   jc.Faults.UnitOutageRate,
			UnitOutageCycles: jc.Faults.UnitOutageCycles,
		}
	}
	if jc.Dynamic != nil {
		out.Dynamic = DynamicModel{
			Window:          jc.Dynamic.Window,
			Predictor:       jc.Dynamic.Predictor,
			PredictorBits:   jc.Dynamic.PredictorBits,
			SquashPenalty:   jc.Dynamic.SquashPenalty,
			PrefetchStreams: jc.Dynamic.PrefetchStreams,
			PrefetchDegree:  jc.Dynamic.PrefetchDegree,
		}
	}
	out.Memory = MemoryModel{
		Name:               jc.Memory.Name,
		HitLatency:         jc.Memory.HitLatency,
		MissRate:           jc.Memory.MissRate,
		MissPenaltyMin:     jc.Memory.MissPenaltyMin,
		MissPenaltyMax:     jc.Memory.MissPenaltyMax,
		Banks:              jc.Memory.Banks,
		ModelBankConflicts: jc.Memory.BankConflicts,
	}
	for i, jcl := range jc.Clusters {
		cl := ClusterSpec{Registers: jcl.Registers}
		for _, ju := range jcl.Units {
			k, err := ParseUnitKind(ju.Kind)
			if err != nil {
				return fmt.Errorf("machine: cluster %d: %w", i, err)
			}
			cl.Units = append(cl.Units, UnitSpec{Kind: k, Latency: ju.Latency})
		}
		out.Clusters = append(out.Clusters, cl)
	}
	*c = out
	return nil
}

func interconnectToken(k InterconnectKind) string {
	switch k {
	case Full:
		return "full"
	case TriPort:
		return "tri-port"
	case DualPort:
		return "dual-port"
	case SinglePort:
		return "single-port"
	case SharedBus:
		return "shared-bus"
	}
	return "full"
}

func parseInterconnectToken(s string) (InterconnectKind, error) {
	switch s {
	case "", "full":
		return Full, nil
	case "tri-port":
		return TriPort, nil
	case "dual-port":
		return DualPort, nil
	case "single-port":
		return SinglePort, nil
	case "shared-bus":
		return SharedBus, nil
	}
	return 0, fmt.Errorf("machine: unknown interconnect %q", s)
}

// Load reads a machine configuration from a JSON file and validates it.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("machine: parsing %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("machine: %s: %w", path, err)
	}
	return &c, nil
}

// Save writes the configuration to a JSON file.
func (c *Config) Save(path string) error {
	data, err := c.MarshalJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
