// Package machine describes the configuration of a processor-coupled node:
// the grouping of function units into clusters, unit pipeline latencies,
// the interconnection network between clusters, and the memory system
// model. Both the compiler and the simulator are parameterized by a
// machine.Config, mirroring the configuration files used by the paper's
// toolchain.
package machine

import (
	"errors"
	"fmt"
	"strings"

	"pcoup/internal/faults"
)

// UnitKind identifies the class of a function unit.
type UnitKind int

const (
	// IU is an integer arithmetic/logic unit.
	IU UnitKind = iota
	// FPU is a floating-point unit.
	FPU
	// MEM is a memory (load/store and address calculation) unit.
	MEM
	// BR is a branch calculation unit.
	BR
	numUnitKinds
)

// NumUnitKinds is the number of distinct function unit classes.
const NumUnitKinds = int(numUnitKinds)

var unitKindNames = [...]string{"IU", "FPU", "MEM", "BR"}

func (k UnitKind) String() string {
	if k < 0 || int(k) >= len(unitKindNames) {
		return fmt.Sprintf("UnitKind(%d)", int(k))
	}
	return unitKindNames[k]
}

// ParseUnitKind converts a name such as "IU" or "fpu" into a UnitKind.
func ParseUnitKind(s string) (UnitKind, error) {
	for i, n := range unitKindNames {
		if strings.EqualFold(s, n) {
			return UnitKind(i), nil
		}
	}
	return 0, fmt.Errorf("machine: unknown unit kind %q", s)
}

// UnitSpec describes one function unit within a cluster.
type UnitSpec struct {
	Kind UnitKind
	// Latency is the execution pipeline depth in cycles; results written
	// back Latency cycles after issue. Must be >= 1.
	Latency int
}

// ClusterSpec describes one cluster: a set of function units sharing a
// register file.
type ClusterSpec struct {
	Units []UnitSpec
	// Registers is the register file capacity per thread. Zero means
	// unbounded (the paper's compiler assumes infinite registers and
	// reports the peak actually used).
	Registers int
}

// Has reports whether the cluster contains a unit of kind k.
func (c ClusterSpec) Has(k UnitKind) bool {
	for _, u := range c.Units {
		if u.Kind == k {
			return true
		}
	}
	return false
}

// InterconnectKind selects the model of communication between function
// units and register files (Section 4, "Restricting Communication").
type InterconnectKind int

const (
	// Full: unlimited buses and register file write ports.
	Full InterconnectKind = iota
	// TriPort: three write ports per register file; one reserved for
	// units local to the cluster, two global ports each with its own bus.
	TriPort
	// DualPort: two write ports; one local, one global with its own bus.
	DualPort
	// SinglePort: one write port per register file with its own bus,
	// shared by local and remote writers.
	SinglePort
	// SharedBus: two ports per register file; one local, one attached to
	// a single bus shared by the entire machine.
	SharedBus
)

var interconnectNames = [...]string{"Full", "Tri-Port", "Dual-Port", "Single-Port", "Shared-Bus"}

func (k InterconnectKind) String() string {
	if k < 0 || int(k) >= len(interconnectNames) {
		return fmt.Sprintf("InterconnectKind(%d)", int(k))
	}
	return interconnectNames[k]
}

// Interconnects lists every interconnect model, in the order used by
// Figure 6 of the paper.
func Interconnects() []InterconnectKind {
	return []InterconnectKind{Full, TriPort, DualPort, SinglePort, SharedBus}
}

// MemoryModel describes the statistical memory system (Section 4,
// "Variable Memory Latency"). A reference hits with probability
// 1-MissRate and completes after HitLatency cycles; otherwise it
// completes after HitLatency plus a penalty drawn uniformly from
// [MissPenaltyMin, MissPenaltyMax].
type MemoryModel struct {
	Name           string
	HitLatency     int
	MissRate       float64
	MissPenaltyMin int
	MissPenaltyMax int
	// Banks is the number of interleaved banks. The paper assumes no
	// bank conflicts; set ModelBankConflicts to simulate them anyway
	// (ablation).
	Banks              int
	ModelBankConflicts bool
}

// OpCacheModel describes per-unit operation caches. Summed over all
// function units the operation caches form the node's instruction cache
// (Section 2 of the paper). The paper's simulations assume no operation
// cache misses; enabling this model is an extension that measures the
// cost of that assumption. The cache is direct-mapped over instruction
// word addresses; a miss stalls the operation's issue for MissPenalty
// cycles while the word's operations are fetched.
type OpCacheModel struct {
	// Entries is the per-unit cache size in operations; 0 disables the
	// model (the paper's assumption).
	Entries int
	// MissPenalty is the fetch delay in cycles on a miss.
	MissPenalty int
}

// Memory model presets from the paper.
var (
	// MemMin: single-cycle latency for all references.
	MemMin = MemoryModel{Name: "Min", HitLatency: 1, Banks: 4}
	// Mem1: single-cycle hit, 5% miss rate, 20-100 cycle penalty.
	Mem1 = MemoryModel{Name: "Mem1", HitLatency: 1, MissRate: 0.05, MissPenaltyMin: 20, MissPenaltyMax: 100, Banks: 4}
	// Mem2: like Mem1 with a 10% miss rate.
	Mem2 = MemoryModel{Name: "Mem2", HitLatency: 1, MissRate: 0.10, MissPenaltyMin: 20, MissPenaltyMax: 100, Banks: 4}
	// MemSlow: Mem2-style statistical memory with an order-of-magnitude
	// longer miss tail (200-1000 cycles), modeling DRAM or remote-node
	// references for the scaling studies. Not part of the paper's Figure 7
	// sweep (MemoryModels); cells on this model are latency-dominated and
	// exercise the simulator's event core.
	MemSlow = MemoryModel{Name: "Slow", HitLatency: 1, MissRate: 0.10, MissPenaltyMin: 200, MissPenaltyMax: 1000, Banks: 4}
)

// MemoryModels lists the three presets in the order used by Figure 7.
func MemoryModels() []MemoryModel { return []MemoryModel{MemMin, Mem1, Mem2} }

// ArbitrationKind selects how function units choose among ready
// operations from competing threads.
type ArbitrationKind int

const (
	// PriorityArbitration always favors the lowest-numbered thread
	// (threads are assigned priorities at spawn time). This is the policy
	// assumed by Table 3 of the paper.
	PriorityArbitration ArbitrationKind = iota
	// RoundRobinArbitration rotates the favored thread each cycle
	// (ablation).
	RoundRobinArbitration
)

func (k ArbitrationKind) String() string {
	switch k {
	case PriorityArbitration:
		return "priority"
	case RoundRobinArbitration:
		return "round-robin"
	}
	return fmt.Sprintf("ArbitrationKind(%d)", int(k))
}

// Config is a complete machine description.
type Config struct {
	Name     string
	Clusters []ClusterSpec

	Interconnect InterconnectKind
	Memory       MemoryModel

	// MaxDests is the maximum number of simultaneous register
	// destinations an operation may name (the baseline machine allows 2).
	MaxDests int

	// Seed seeds the statistical memory model's generator.
	Seed uint64

	Arbitration ArbitrationKind

	// LockStepIssue disables instruction-word "slip": all operations of a
	// thread's instruction word must issue in the same cycle (classic
	// VLIW issue; ablation — the paper's mechanism allows slip).
	LockStepIssue bool

	// OpCache, when enabled, models per-unit operation cache misses
	// (extension; the paper assumes none).
	OpCache OpCacheModel

	// MaxThreads bounds the active thread set. Zero means 64.
	MaxThreads int

	// Faults configures deterministic fault injection (lost/delayed
	// split-transaction wakeups, register-file port outages, function
	// unit degradation windows). The zero value disables it.
	Faults faults.Model

	// Dynamic configures the optional dynamic-scheduling subsystem
	// (out-of-order issue window, branch predictor, stride prefetcher).
	// The zero value disables it (paper-exact in-order issue).
	Dynamic DynamicModel
}

// UnitRef identifies one function unit within a Config.
type UnitRef struct {
	Global  int // index over all units, cluster-major
	Cluster int
	Local   int // index within the cluster
	Kind    UnitKind
	Latency int
}

// Units enumerates all function units cluster-major. The global index of
// a unit is its slot index in compiled instruction words.
func (c *Config) Units() []UnitRef {
	var refs []UnitRef
	g := 0
	for ci, cl := range c.Clusters {
		for li, u := range cl.Units {
			refs = append(refs, UnitRef{Global: g, Cluster: ci, Local: li, Kind: u.Kind, Latency: u.Latency})
			g++
		}
	}
	return refs
}

// NumUnits returns the total number of function units.
func (c *Config) NumUnits() int {
	n := 0
	for _, cl := range c.Clusters {
		n += len(cl.Units)
	}
	return n
}

// CountUnits returns the number of units of kind k.
func (c *Config) CountUnits(k UnitKind) int {
	n := 0
	for _, cl := range c.Clusters {
		for _, u := range cl.Units {
			if u.Kind == k {
				n++
			}
		}
	}
	return n
}

// Validation bounds. Configs now also arrive over the network (the
// pcserved job API), so structural limits are enforced here rather than
// trusted: instruction words carry one operation slot per function unit,
// and pipeline/penalty latencies bound per-op simulation work.
const (
	// MaxTotalUnits bounds the machine's function-unit (instruction word
	// slot) count.
	MaxTotalUnits = 64
	// MaxClusters bounds the cluster count.
	MaxClusters = 32
	// MaxLatency bounds unit pipeline depth and memory latencies/penalties.
	MaxLatency = 1 << 20
)

// Validate checks structural invariants of the configuration. Errors name
// the offending field using the JSON configuration spelling (for example
// "clusters[2].units[0].latency") so that callers feeding configs from
// files or the network can report precise diagnostics.
func (c *Config) Validate() error {
	if len(c.Clusters) == 0 {
		return errors.New("machine: clusters: config has no clusters")
	}
	if len(c.Clusters) > MaxClusters {
		return fmt.Errorf("machine: clusters: %d clusters (max %d)", len(c.Clusters), MaxClusters)
	}
	for ci, cl := range c.Clusters {
		if len(cl.Units) == 0 {
			return fmt.Errorf("machine: clusters[%d].units: cluster has no units", ci)
		}
		branches := 0
		for li, u := range cl.Units {
			if u.Kind < 0 || int(u.Kind) >= NumUnitKinds {
				return fmt.Errorf("machine: clusters[%d].units[%d].kind: invalid unit kind %d", ci, li, int(u.Kind))
			}
			if u.Latency < 1 {
				return fmt.Errorf("machine: clusters[%d].units[%d].latency: %d (must be >= 1)", ci, li, u.Latency)
			}
			if u.Latency > MaxLatency {
				return fmt.Errorf("machine: clusters[%d].units[%d].latency: %d (max %d)", ci, li, u.Latency, MaxLatency)
			}
			if u.Kind == BR {
				branches++
				if branches > 1 {
					return fmt.Errorf("machine: clusters[%d].units[%d]: duplicate BR slot (a cluster sequences at most one branch unit)", ci, li)
				}
			}
		}
		if cl.Registers < 0 {
			return fmt.Errorf("machine: clusters[%d].registers: %d (must be >= 0)", ci, cl.Registers)
		}
		// A cluster with a memory unit but no arithmetic unit could load
		// values it can never forward (register reads are local and only
		// IU/FPU operations can copy a register to another cluster).
		if cl.Has(MEM) && !cl.Has(IU) && !cl.Has(FPU) {
			return fmt.Errorf("machine: clusters[%d].units: a memory unit needs an IU or FPU in the same cluster to forward loaded values", ci)
		}
	}
	if n := c.NumUnits(); n > MaxTotalUnits {
		return fmt.Errorf("machine: clusters: %d function units in total (max %d)", n, MaxTotalUnits)
	}
	if c.CountUnits(BR) == 0 {
		return errors.New("machine: clusters: config has no branch unit")
	}
	if c.CountUnits(MEM) == 0 {
		return errors.New("machine: clusters: config has no memory unit")
	}
	if c.MaxDests < 1 {
		return fmt.Errorf("machine: max_dests: %d (must be >= 1)", c.MaxDests)
	}
	if c.Memory.HitLatency < 1 {
		return fmt.Errorf("machine: memory.hit_latency: %d (must be >= 1)", c.Memory.HitLatency)
	}
	if c.Memory.HitLatency > MaxLatency {
		return fmt.Errorf("machine: memory.hit_latency: %d (max %d)", c.Memory.HitLatency, MaxLatency)
	}
	if c.Memory.MissRate < 0 || c.Memory.MissRate > 1 {
		return fmt.Errorf("machine: memory.miss_rate: %g (must be in [0,1])", c.Memory.MissRate)
	}
	if c.Memory.MissRate > 0 {
		if c.Memory.MissPenaltyMin < 0 {
			return fmt.Errorf("machine: memory.miss_penalty_min: %d (must be >= 0)", c.Memory.MissPenaltyMin)
		}
		if c.Memory.MissPenaltyMax < c.Memory.MissPenaltyMin {
			return fmt.Errorf("machine: memory.miss_penalty_max: %d below miss_penalty_min %d", c.Memory.MissPenaltyMax, c.Memory.MissPenaltyMin)
		}
		if c.Memory.MissPenaltyMax > MaxLatency {
			return fmt.Errorf("machine: memory.miss_penalty_max: %d (max %d)", c.Memory.MissPenaltyMax, MaxLatency)
		}
	}
	if c.Memory.Banks < 1 {
		return fmt.Errorf("machine: memory.banks: %d (must be >= 1)", c.Memory.Banks)
	}
	if c.MaxThreads < 0 {
		return fmt.Errorf("machine: max_threads: %d (must be >= 0)", c.MaxThreads)
	}
	if c.OpCache.Entries < 0 {
		return fmt.Errorf("machine: op_cache.entries: %d (must be >= 0)", c.OpCache.Entries)
	}
	if c.OpCache.Entries > 0 && c.OpCache.MissPenalty < 1 {
		return fmt.Errorf("machine: op_cache.miss_penalty: %d (must be >= 1 when the cache is enabled)", c.OpCache.MissPenalty)
	}
	if err := c.Faults.Validate("machine: faults."); err != nil {
		return err
	}
	if err := c.Dynamic.validate(c); err != nil {
		return err
	}
	return nil
}

// MaxActiveThreads returns the effective active-thread bound.
func (c *Config) MaxActiveThreads() int {
	if c.MaxThreads == 0 {
		return 64
	}
	return c.MaxThreads
}

// ArithClusters returns the indices of clusters that contain at least one
// IU, FPU, or MEM unit (i.e. non-branch clusters). The compiler schedules
// computation onto these.
func (c *Config) ArithClusters() []int {
	var out []int
	for i, cl := range c.Clusters {
		if cl.Has(IU) || cl.Has(FPU) || cl.Has(MEM) {
			out = append(out, i)
		}
	}
	return out
}

// BranchClusters returns the indices of clusters that contain a branch
// unit.
func (c *Config) BranchClusters() []int {
	var out []int
	for i, cl := range c.Clusters {
		if cl.Has(BR) {
			out = append(out, i)
		}
	}
	return out
}

func (c *Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %q: %d clusters, interconnect=%s, memory=%s", c.Name, len(c.Clusters), c.Interconnect, c.Memory.Name)
	return b.String()
}
