package machine

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBaselineShape(t *testing.T) {
	cfg := Baseline()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	if got := len(cfg.Clusters); got != 6 {
		t.Errorf("baseline clusters = %d, want 6 (4 arith + 2 branch)", got)
	}
	for k, want := range map[UnitKind]int{IU: 4, FPU: 4, MEM: 4, BR: 2} {
		if got := cfg.CountUnits(k); got != want {
			t.Errorf("baseline %v units = %d, want %d", k, got, want)
		}
	}
	if cfg.MaxDests != 2 {
		t.Errorf("baseline MaxDests = %d, want 2", cfg.MaxDests)
	}
	if got := cfg.NumUnits(); got != 14 {
		t.Errorf("baseline NumUnits = %d, want 14", got)
	}
	if got := cfg.ArithClusters(); len(got) != 4 {
		t.Errorf("arith clusters = %v, want 4", got)
	}
	if got := cfg.BranchClusters(); len(got) != 2 {
		t.Errorf("branch clusters = %v, want 2", got)
	}
}

func TestUnitsEnumeration(t *testing.T) {
	cfg := Baseline()
	units := cfg.Units()
	if len(units) != cfg.NumUnits() {
		t.Fatalf("Units() returned %d, NumUnits %d", len(units), cfg.NumUnits())
	}
	for i, u := range units {
		if u.Global != i {
			t.Errorf("unit %d has Global %d", i, u.Global)
		}
		if u.Cluster < 0 || u.Cluster >= len(cfg.Clusters) {
			t.Errorf("unit %d cluster %d out of range", i, u.Cluster)
		}
		if cfg.Clusters[u.Cluster].Units[u.Local].Kind != u.Kind {
			t.Errorf("unit %d kind mismatch", i)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no clusters", func(c *Config) { c.Clusters = nil }},
		{"empty cluster", func(c *Config) { c.Clusters[0].Units = nil }},
		{"bad latency", func(c *Config) { c.Clusters[0].Units[0].Latency = 0 }},
		{"no branch unit", func(c *Config) {
			c.Clusters = c.Clusters[:4] // drop both branch clusters
		}},
		{"no mem unit", func(c *Config) {
			for i := range c.Clusters {
				var kept []UnitSpec
				for _, u := range c.Clusters[i].Units {
					if u.Kind != MEM {
						kept = append(kept, u)
					}
				}
				c.Clusters[i].Units = kept
			}
		}},
		{"zero MaxDests", func(c *Config) { c.MaxDests = 0 }},
		{"bad miss rate", func(c *Config) { c.Memory.MissRate = 1.5 }},
		{"inverted penalty", func(c *Config) {
			c.Memory.MissRate = 0.1
			c.Memory.MissPenaltyMin = 50
			c.Memory.MissPenaltyMax = 20
		}},
		{"no banks", func(c *Config) { c.Memory.Banks = 0 }},
		{"zero hit latency", func(c *Config) { c.Memory.HitLatency = 0 }},
	}
	for _, tc := range cases {
		cfg := Baseline()
		tc.mutate(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

func TestMixShape(t *testing.T) {
	for iu := 1; iu <= 4; iu++ {
		for fpu := 1; fpu <= 4; fpu++ {
			cfg := Mix(iu, fpu)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("Mix(%d,%d) invalid: %v", iu, fpu, err)
			}
			if got := cfg.CountUnits(IU); got != iu {
				t.Errorf("Mix(%d,%d) IUs = %d", iu, fpu, got)
			}
			if got := cfg.CountUnits(FPU); got != fpu {
				t.Errorf("Mix(%d,%d) FPUs = %d", iu, fpu, got)
			}
			if got := cfg.CountUnits(MEM); got != 4 {
				t.Errorf("Mix(%d,%d) MEMs = %d, want 4", iu, fpu, got)
			}
			if got := cfg.CountUnits(BR); got != 1 {
				t.Errorf("Mix(%d,%d) BRs = %d, want 1", iu, fpu, got)
			}
		}
	}
}

func TestMixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mix(0,1) did not panic")
		}
	}()
	Mix(0, 1)
}

func TestCloneIndependence(t *testing.T) {
	a := Baseline()
	b := a.Clone()
	b.Clusters[0].Units[0].Latency = 99
	b.Name = "changed"
	if a.Clusters[0].Units[0].Latency == 99 {
		t.Error("Clone shares cluster storage")
	}
	if a.Name == "changed" {
		t.Error("Clone shares name")
	}
}

func TestWithHelpers(t *testing.T) {
	base := Baseline()
	ic := base.WithInterconnect(TriPort)
	if ic.Interconnect != TriPort || base.Interconnect != Full {
		t.Error("WithInterconnect mutated the original or failed")
	}
	mm := base.WithMemory(Mem2)
	if mm.Memory.Name != "Mem2" || base.Memory.Name != "Min" {
		t.Error("WithMemory mutated the original or failed")
	}
	sd := base.WithSeed(777)
	if sd.Seed != 777 || base.Seed == 777 {
		t.Error("WithSeed mutated the original or failed")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, cfg := range []*Config{
		Baseline(),
		Mix(2, 3).WithInterconnect(SharedBus).WithMemory(Mem1).WithSeed(5),
	} {
		cfg.MaxThreads = 32
		cfg.LockStepIssue = true
		cfg.Arbitration = RoundRobinArbitration
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Config
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if back.Name != cfg.Name || len(back.Clusters) != len(cfg.Clusters) ||
			back.Interconnect != cfg.Interconnect || back.Memory != cfg.Memory ||
			back.MaxDests != cfg.MaxDests || back.Seed != cfg.Seed ||
			back.Arbitration != cfg.Arbitration || back.LockStepIssue != cfg.LockStepIssue ||
			back.MaxThreads != cfg.MaxThreads {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, *cfg)
		}
		for i := range cfg.Clusters {
			if len(back.Clusters[i].Units) != len(cfg.Clusters[i].Units) {
				t.Fatalf("cluster %d unit count mismatch", i)
			}
			for j := range cfg.Clusters[i].Units {
				if back.Clusters[i].Units[j] != cfg.Clusters[i].Units[j] {
					t.Errorf("cluster %d unit %d mismatch", i, j)
				}
			}
		}
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	cfg := Mix(3, 2)
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != cfg.Name || back.NumUnits() != cfg.NumUnits() {
		t.Errorf("Load returned different machine: %s vs %s", back, cfg)
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	cfg := Baseline()
	cfg.MaxDests = 0
	data, _ := json.Marshal(cfg)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted an invalid configuration")
	}
}

func TestParseUnitKind(t *testing.T) {
	for _, k := range []UnitKind{IU, FPU, MEM, BR} {
		got, err := ParseUnitKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseUnitKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseUnitKind("bogus"); err == nil {
		t.Error("ParseUnitKind accepted bogus kind")
	}
}

func TestInterconnectTokens(t *testing.T) {
	for _, k := range Interconnects() {
		tok := interconnectToken(k)
		back, err := parseInterconnectToken(tok)
		if err != nil || back != k {
			t.Errorf("interconnect token round trip failed for %v", k)
		}
	}
	if _, err := parseInterconnectToken("bogus"); err == nil {
		t.Error("parseInterconnectToken accepted bogus token")
	}
}

func TestMaxActiveThreadsDefault(t *testing.T) {
	cfg := Baseline()
	if got := cfg.MaxActiveThreads(); got != 64 {
		t.Errorf("default MaxActiveThreads = %d, want 64", got)
	}
	cfg.MaxThreads = 8
	if got := cfg.MaxActiveThreads(); got != 8 {
		t.Errorf("MaxActiveThreads = %d, want 8", got)
	}
}
