package machine

import (
	"crypto/sha256"
	"encoding/hex"
)

// Canonical returns a normalized copy of the configuration suitable for
// content addressing: the display labels (config name and memory model
// name) are cleared, defaulted fields are made explicit, and everything
// that influences compilation or simulation is preserved. Two configs
// with equal Canonical forms produce identical schedules and identical
// simulation results.
func (c *Config) Canonical() *Config {
	out := c.Clone()
	out.Name = ""
	out.Memory.Name = ""
	out.MaxThreads = out.MaxActiveThreads()
	if out.Memory.MissRate == 0 {
		// Penalty bounds are never sampled when nothing misses.
		out.Memory.MissPenaltyMin = 0
		out.Memory.MissPenaltyMax = 0
	}
	if out.OpCache.Entries == 0 {
		out.OpCache.MissPenalty = 0
	}
	out.Faults = out.Faults.Canonical()
	out.Dynamic = out.Dynamic.canonical()
	return out
}

// CanonicalJSON serializes the canonical form. The JSON field order is
// fixed by the jsonConfig struct, so equal canonical configs yield
// byte-identical output.
func (c *Config) CanonicalJSON() ([]byte, error) {
	return c.Canonical().MarshalJSON()
}

// Hash returns the hex SHA-256 of the canonical serialization. It is the
// machine-configuration component of content-addressed result cache keys:
// renaming a config (or its memory model) does not change its hash, while
// any semantically meaningful edit does.
func (c *Config) Hash() (string, error) {
	data, err := c.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
