package machine

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func dynCfg(d DynamicModel) *Config {
	c := Baseline()
	c.Dynamic = d
	return c
}

func TestDynamicPresetsValid(t *testing.T) {
	for name, d := range map[string]DynamicModel{
		"DynOoO": DynOoO, "DynTAGE": DynTAGE, "DynPrefetch": DynPrefetch, "DynAll": DynAll,
	} {
		if !d.Enabled() {
			t.Errorf("%s: preset reports disabled", name)
		}
		if err := dynCfg(d).Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if (DynamicModel{}).Enabled() {
		t.Error("zero DynamicModel reports enabled")
	}
}

// TestDynamicJSONRoundTrip: every preset (and a fully explicit model)
// survives marshal/unmarshal exactly and byte-stably, and the canonical
// hash survives the trip.
func TestDynamicJSONRoundTrip(t *testing.T) {
	models := []DynamicModel{
		{}, DynOoO, DynTAGE, DynPrefetch, DynAll,
		{Window: 2, Predictor: "bimodal", PredictorBits: 12, SquashPenalty: 5,
			PrefetchStreams: 64, PrefetchDegree: 8},
	}
	for _, d := range models {
		cfg := dynCfg(d)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%+v: %v", d, err)
		}
		h1, err := cfg.Hash()
		if err != nil {
			t.Fatal(err)
		}
		enc1, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var back Config
		if err := json.Unmarshal(enc1, &back); err != nil {
			t.Fatalf("%+v: round trip parse: %v\n%s", d, err, enc1)
		}
		if !reflect.DeepEqual(cfg, &back) {
			t.Errorf("%+v: round trip changed the config", d)
		}
		enc2, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Errorf("%+v: serialization not byte-stable", d)
		}
		h2, err := back.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Errorf("%+v: canonical hash changed across round trip", d)
		}
	}
}

// TestDynamicZeroSectionOmitted: the paper-exact machine's JSON must not
// mention the dynamic section at all, and a config parsed from JSON that
// never heard of the section must equal one with an explicit zero value
// (same hash, same bytes).
func TestDynamicZeroSectionOmitted(t *testing.T) {
	plain := Baseline()
	enc, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(enc, []byte(`"dynamic"`)) {
		t.Errorf("zero dynamic section serialized: %s", enc)
	}
	zeroed := plain.WithDynamic(DynamicModel{})
	encZ, err := json.Marshal(zeroed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, encZ) {
		t.Error("explicit zero dynamic section changed serialization")
	}
	h1, _ := plain.Hash()
	h2, _ := zeroed.Hash()
	if h1 != h2 {
		t.Error("explicit zero dynamic section changed the canonical hash")
	}
}

// TestDynamicHashSensitivity: the canonical hash must distinguish every
// dynamic tunable (cache keys may not collide across machines that
// simulate differently), while implied defaults hash identically to
// explicit ones.
func TestDynamicHashSensitivity(t *testing.T) {
	base := dynCfg(DynAll)
	h0, _ := base.Hash()
	mutants := []DynamicModel{
		{Window: 8, Predictor: "tage", PrefetchStreams: 16, PrefetchDegree: 4},
		{Window: 4, Predictor: "bimodal", PrefetchStreams: 16, PrefetchDegree: 4},
		{Window: 4, Predictor: "tage", PredictorBits: 14, PrefetchStreams: 16, PrefetchDegree: 4},
		{Window: 4, Predictor: "tage", SquashPenalty: 9, PrefetchStreams: 16, PrefetchDegree: 4},
		{Window: 4, Predictor: "tage", PrefetchStreams: 32, PrefetchDegree: 4},
		{Window: 4, Predictor: "tage", PrefetchStreams: 16, PrefetchDegree: 2},
		{Window: 4, Predictor: "tage"},
	}
	for _, d := range mutants {
		h, _ := dynCfg(d).Hash()
		if h == h0 {
			t.Errorf("hash ignored dynamic change: %+v", d)
		}
	}
	// Implied defaults == explicit defaults.
	explicit := DynAll
	explicit.PredictorBits = DynAll.EffPredictorBits()
	explicit.SquashPenalty = DynAll.EffSquashPenalty()
	explicit.PrefetchDegree = DynAll.EffPrefetchDegree()
	if h, _ := dynCfg(explicit).Hash(); h != h0 {
		t.Error("explicit documented defaults hash differently from implied ones")
	}
}

// TestDynamicUnknownField: a typo in the dynamic section must fail the
// parse with an error naming the offending key, not silently run the
// paper-exact machine.
func TestDynamicUnknownField(t *testing.T) {
	cfg := dynCfg(DynAll)
	enc, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(enc, []byte(`"prefetch_streams"`), []byte(`"prefetch_straems"`), 1)
	var back Config
	err = json.Unmarshal(bad, &back)
	if err == nil {
		t.Fatal("unknown dynamic field accepted")
	}
	if !strings.Contains(err.Error(), "dynamic.prefetch_straems") {
		t.Errorf("error does not name the offending field: %v", err)
	}
}

// TestDynamicValidateErrors: each out-of-range or inconsistent tunable is
// rejected with an error naming its JSON field.
func TestDynamicValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		d     DynamicModel
		also  func(*Config)
		field string
	}{
		{"negative window", DynamicModel{Window: -1}, nil, "dynamic.window"},
		{"window too deep", DynamicModel{Window: MaxDynWindow + 1}, nil, "dynamic.window"},
		{"unknown predictor", DynamicModel{Window: 4, Predictor: "gshare"}, nil, "dynamic.predictor"},
		{"predictor without window", DynamicModel{Predictor: "tage"}, nil, "dynamic.predictor"},
		{"negative predictor bits", DynamicModel{Window: 4, Predictor: "tage", PredictorBits: -1}, nil, "dynamic.predictor_bits"},
		{"predictor bits too big", DynamicModel{Window: 4, Predictor: "tage", PredictorBits: MaxPredictorBits + 1}, nil, "dynamic.predictor_bits"},
		{"bits without predictor", DynamicModel{Window: 4, PredictorBits: 8}, nil, "dynamic.predictor_bits"},
		{"negative squash", DynamicModel{Window: 4, SquashPenalty: -3}, nil, "dynamic.squash_penalty"},
		{"squash without window", DynamicModel{SquashPenalty: 3, PrefetchStreams: 4}, nil, "dynamic.squash_penalty"},
		{"negative streams", DynamicModel{PrefetchStreams: -1}, nil, "dynamic.prefetch_streams"},
		{"too many streams", DynamicModel{PrefetchStreams: MaxPrefetchStreams + 1}, nil, "dynamic.prefetch_streams"},
		{"negative degree", DynamicModel{PrefetchStreams: 8, PrefetchDegree: -1}, nil, "dynamic.prefetch_degree"},
		{"degree too far", DynamicModel{PrefetchStreams: 8, PrefetchDegree: MaxPrefetchDegree + 1}, nil, "dynamic.prefetch_degree"},
		{"degree without streams", DynamicModel{Window: 4, PrefetchDegree: 2}, nil, "dynamic.prefetch_degree"},
		{"window vs lock-step", DynamicModel{Window: 4}, func(c *Config) { c.LockStepIssue = true }, "dynamic.window"},
		{"window vs op cache", DynamicModel{Window: 4}, func(c *Config) { c.OpCache = OpCacheModel{Entries: 64, MissPenalty: 2} }, "dynamic.window"},
	}
	for _, tc := range cases {
		cfg := dynCfg(tc.d)
		if tc.also != nil {
			tc.also(cfg)
		}
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s: error does not name %s: %v", tc.name, tc.field, err)
		}
	}
}

// TestDynamicEffDefaults pins the documented zero-value defaults.
func TestDynamicEffDefaults(t *testing.T) {
	var d DynamicModel
	if d.EffPredictorBits() != 10 || d.EffSquashPenalty() != 3 || d.EffPrefetchDegree() != 4 {
		t.Errorf("zero-value defaults wrong: bits=%d squash=%d degree=%d",
			d.EffPredictorBits(), d.EffSquashPenalty(), d.EffPrefetchDegree())
	}
	d = DynamicModel{PredictorBits: 7, SquashPenalty: 1, PrefetchDegree: 2}
	if d.EffPredictorBits() != 7 || d.EffSquashPenalty() != 1 || d.EffPrefetchDegree() != 2 {
		t.Error("explicit tunables not honored")
	}
}

// TestWithDynamicDoesNotMutate mirrors TestWithHelpers for the new
// builder.
func TestWithDynamicDoesNotMutate(t *testing.T) {
	base := Baseline()
	dyn := base.WithDynamic(DynAll)
	if base.Dynamic.Enabled() {
		t.Error("WithDynamic mutated the receiver")
	}
	if !dyn.Dynamic.Enabled() || dyn.Dynamic != DynAll {
		t.Error("WithDynamic failed to set the model")
	}
}
