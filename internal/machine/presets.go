package machine

import (
	"fmt"

	"pcoup/internal/faults"
)

// arithCluster builds the paper's standard arithmetic cluster: an integer
// unit, a floating-point unit, and a memory unit sharing one register file,
// each with the given pipeline latency.
func arithCluster(latency int) ClusterSpec {
	return ClusterSpec{Units: []UnitSpec{
		{Kind: IU, Latency: latency},
		{Kind: FPU, Latency: latency},
		{Kind: MEM, Latency: latency},
	}}
}

// branchCluster builds a branch cluster: a single branch unit with its own
// register file.
func branchCluster(latency int) ClusterSpec {
	return ClusterSpec{Units: []UnitSpec{{Kind: BR, Latency: latency}}}
}

// Baseline returns the paper's baseline machine (Section 4): four
// arithmetic clusters, each with an integer unit, a floating point unit,
// and a memory unit sharing a register file, plus two branch clusters.
// Every unit has a pipeline latency of one cycle; memory references take a
// single cycle (Min model); the interconnect is fully connected; an
// operation may name at most two simultaneous register destinations.
func Baseline() *Config {
	cfg := &Config{
		Name: "baseline",
		Clusters: []ClusterSpec{
			arithCluster(1), arithCluster(1), arithCluster(1), arithCluster(1),
			branchCluster(1), branchCluster(1),
		},
		Interconnect: Full,
		Memory:       MemMin,
		MaxDests:     2,
		Arbitration:  PriorityArbitration,
	}
	return cfg
}

// WithInterconnect returns a copy of c using interconnect model k.
func (c *Config) WithInterconnect(k InterconnectKind) *Config {
	out := c.Clone()
	out.Interconnect = k
	out.Name = fmt.Sprintf("%s/%s", c.Name, k)
	return out
}

// WithMemory returns a copy of c using memory model m.
func (c *Config) WithMemory(m MemoryModel) *Config {
	out := c.Clone()
	out.Memory = m
	out.Name = fmt.Sprintf("%s/%s", c.Name, m.Name)
	return out
}

// WithSeed returns a copy of c with the given statistical-memory seed.
func (c *Config) WithSeed(seed uint64) *Config {
	out := c.Clone()
	out.Seed = seed
	return out
}

// WithFaults returns a copy of c with the given fault-injection model.
func (c *Config) WithFaults(m faults.Model) *Config {
	out := c.Clone()
	out.Faults = m
	return out
}

// Mix returns the machine used by the Figure 8 sweep: nIU integer units
// and nFPU floating-point units spread over max(nIU,nFPU) clusters, four
// memory units, and one branch cluster. Memory units are distributed one
// per arithmetic cluster (cluster i gets MEM unit i%4 style round-robin);
// with fewer than four arithmetic clusters the extra memory units stack in
// the existing clusters so the total remains four.
func Mix(nIU, nFPU int) *Config {
	if nIU < 1 || nFPU < 1 {
		panic("machine: Mix requires at least one IU and one FPU")
	}
	const nMEM = 4
	nClusters := nIU
	if nFPU > nClusters {
		nClusters = nFPU
	}
	clusters := make([]ClusterSpec, nClusters)
	for i := 0; i < nClusters; i++ {
		var units []UnitSpec
		if i < nIU {
			units = append(units, UnitSpec{Kind: IU, Latency: 1})
		}
		if i < nFPU {
			units = append(units, UnitSpec{Kind: FPU, Latency: 1})
		}
		clusters[i] = ClusterSpec{Units: units}
	}
	for i := 0; i < nMEM; i++ {
		ci := i % nClusters
		clusters[ci].Units = append(clusters[ci].Units, UnitSpec{Kind: MEM, Latency: 1})
	}
	cfg := &Config{
		Name:         fmt.Sprintf("mix-%diu-%dfpu", nIU, nFPU),
		Clusters:     append(clusters, branchCluster(1)),
		Interconnect: Full,
		Memory:       MemMin,
		MaxDests:     2,
		Arbitration:  PriorityArbitration,
	}
	return cfg
}

// Clone returns a deep copy of c.
func (c *Config) Clone() *Config {
	out := *c
	out.Clusters = make([]ClusterSpec, len(c.Clusters))
	for i, cl := range c.Clusters {
		units := make([]UnitSpec, len(cl.Units))
		copy(units, cl.Units)
		out.Clusters[i] = ClusterSpec{Units: units, Registers: cl.Registers}
	}
	return &out
}
