package machine

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// seedConfigs reads the checked-in machine configuration files, which
// seed the fuzz corpus and anchor the round-trip properties to real
// inputs.
func seedConfigs(t testing.TB) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "configs", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no seed configs found under configs/")
	}
	out := map[string][]byte{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = data
	}
	return out
}

// FuzzConfigRoundTrip checks, for any parseable and valid configuration:
// Save/Load (via MarshalJSON/UnmarshalJSON) reproduces the config
// exactly, a second round trip is byte-stable, and the canonical hash
// survives the trip (the content-addressed cache key may not depend on
// serialization round trips).
func FuzzConfigRoundTrip(f *testing.F) {
	for _, data := range seedConfigs(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Config
		if err := json.Unmarshal(data, &c); err != nil {
			t.Skip()
		}
		if err := c.Validate(); err != nil {
			t.Skip()
		}
		hash1, err := c.Hash()
		if err != nil {
			t.Fatalf("Hash: %v", err)
		}

		enc1, err := c.MarshalJSON()
		if err != nil {
			t.Fatalf("MarshalJSON: %v", err)
		}
		var back Config
		if err := json.Unmarshal(enc1, &back); err != nil {
			t.Fatalf("round trip failed to parse: %v\n%s", err, enc1)
		}
		if !reflect.DeepEqual(&c, &back) {
			t.Fatalf("round trip changed the config:\nbefore: %+v\nafter:  %+v", c, back)
		}
		enc2, err := back.MarshalJSON()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("serialization is not byte-stable:\nfirst:  %s\nsecond: %s", enc1, enc2)
		}

		hash2, err := back.Hash()
		if err != nil {
			t.Fatalf("Hash after round trip: %v", err)
		}
		if hash1 != hash2 {
			t.Fatalf("canonical hash changed across round trip: %s != %s", hash1, hash2)
		}
	})
}

// TestConfigFileRoundTrip exercises the full Save/Load file path on every
// checked-in config, including hash stability and rename-invariance of
// the canonical hash.
func TestConfigFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for name, data := range seedConfigs(t) {
		var c Config
		if err := json.Unmarshal(data, &c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: checked-in config invalid: %v", name, err)
		}
		path := filepath.Join(dir, name)
		if err := c.Save(path); err != nil {
			t.Fatalf("%s: Save: %v", name, err)
		}
		loaded, err := Load(path)
		if err != nil {
			t.Fatalf("%s: Load: %v", name, err)
		}
		if !reflect.DeepEqual(&c, loaded) {
			t.Errorf("%s: Save/Load changed the config", name)
		}
		h1, _ := c.Hash()
		h2, _ := loaded.Hash()
		if h1 != h2 {
			t.Errorf("%s: canonical hash changed across Save/Load: %s != %s", name, h1, h2)
		}

		renamed := c.Clone()
		renamed.Name = "renamed"
		renamed.Memory.Name = "renamed-mem"
		h3, _ := renamed.Hash()
		if h3 != h1 {
			t.Errorf("%s: canonical hash depends on display names", name)
		}

		mutated := c.Clone()
		mutated.Clusters[0].Units[0].Latency++
		h4, _ := mutated.Hash()
		if h4 == h1 {
			t.Errorf("%s: canonical hash ignored a latency change", name)
		}
	}
}
