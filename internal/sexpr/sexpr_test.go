package sexpr

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAtoms(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"foo", KSymbol}, {"+", KSymbol}, {"<=", KSymbol}, {"-x", KSymbol},
		{"42", KInt}, {"-7", KInt}, {"+3", KInt},
		{"1.5", KFloat}, {"-0.25", KFloat}, {"1e3", KFloat}, {".5", KFloat}, {"-.5", KFloat},
		{`"hi there"`, KString},
	}
	for _, c := range cases {
		n, err := ParseOne(c.src)
		if err != nil {
			t.Errorf("ParseOne(%q): %v", c.src, err)
			continue
		}
		if n.Kind != c.kind {
			t.Errorf("ParseOne(%q).Kind = %v, want %v", c.src, n.Kind, c.kind)
		}
	}
}

func TestParseValues(t *testing.T) {
	n, _ := ParseOne("-42")
	if n.Int != -42 {
		t.Errorf("int value %d", n.Int)
	}
	n, _ = ParseOne("2.5e2")
	if n.Float != 250 {
		t.Errorf("float value %v", n.Float)
	}
	n, _ = ParseOne(`"a\nb\"c"`)
	if n.Str != "a\nb\"c" {
		t.Errorf("string value %q", n.Str)
	}
}

func TestParseNesting(t *testing.T) {
	n, err := ParseOne("(a (b 1 2.5) (c) ())")
	if err != nil {
		t.Fatal(err)
	}
	if n.Head() != "a" || len(n.List) != 4 {
		t.Fatalf("structure: %s", n)
	}
	if n.List[1].Head() != "b" || len(n.List[1].List) != 3 {
		t.Errorf("inner list: %s", n.List[1])
	}
	if len(n.List[3].List) != 0 {
		t.Errorf("empty list: %s", n.List[3])
	}
}

func TestComments(t *testing.T) {
	forms, err := Parse("; leading\n(a 1) ; trailing\n(b 2)\n;end")
	if err != nil {
		t.Fatal(err)
	}
	if len(forms) != 2 || forms[0].Head() != "a" || forms[1].Head() != "b" {
		t.Errorf("comment parse: %v", forms)
	}
}

func TestPositions(t *testing.T) {
	forms, err := Parse("(a\n  (b))")
	if err != nil {
		t.Fatal(err)
	}
	inner := forms[0].List[1]
	if inner.Line != 2 || inner.Col != 3 {
		t.Errorf("inner position = %d:%d, want 2:3", inner.Line, inner.Col)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"(a", ")", "(a))", `"unterminated`, "(1.2.3)"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", src)
		}
	}
	if _, err := ParseOne("(a) (b)"); err == nil {
		t.Error("ParseOne accepted two forms")
	}
}

func TestHelpers(t *testing.T) {
	n := ListNode(Sym("set"), Sym("x"), IntNode(1))
	if !n.List[0].IsSym("set") || n.Head() != "set" {
		t.Error("IsSym/Head")
	}
	if (&Node{Kind: KInt, Int: 3}).Head() != "" {
		t.Error("Head on non-list")
	}
}

// randomTree builds a random node tree for the round-trip property.
func randomTree(r *rand.Rand, depth int) *Node {
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			syms := []string{"a", "foo", "+", "-", "<=", "set!", "x1"}
			return Sym(syms[r.Intn(len(syms))])
		case 1:
			return IntNode(r.Int63n(2000) - 1000)
		default:
			return FloatNode(float64(r.Int63n(1000)) / 8)
		}
	}
	n := &Node{Kind: KList}
	for i := r.Intn(4); i > 0; i-- {
		n.List = append(n.List, randomTree(r, depth-1))
	}
	return n
}

// stripPos zeroes positions for structural comparison.
func stripPos(n *Node) {
	n.Line, n.Col = 0, 0
	for _, c := range n.List {
		stripPos(c)
	}
}

func TestPrintParseRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		tree := randomTree(r, 4)
		back, err := ParseOne(tree.String())
		if err != nil {
			t.Fatalf("round trip parse of %q: %v", tree, err)
		}
		stripPos(back)
		stripPos(tree)
		if !reflect.DeepEqual(tree, back) {
			t.Fatalf("round trip mismatch:\nsrc  %s\nback %s", tree, back)
		}
	}
}

func TestFloatPrintKeepsTag(t *testing.T) {
	check := func(k int64) bool {
		f := FloatNode(float64(k))
		s := f.String()
		return strings.ContainsAny(s, ".eE")
	}
	if err := quick.Check(check, nil); err != nil {
		t.Errorf("integral floats must print with a marker: %v", err)
	}
}
