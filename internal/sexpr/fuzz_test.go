package sexpr

import (
	"strings"
	"testing"
)

// FuzzParse hammers the reader with arbitrary bytes: it must never
// panic, always honor its limits, and round-trip anything it accepts
// (render with String, reparse, same shape).
func FuzzParse(f *testing.F) {
	f.Add("(program p (def (main) (set x 1)))")
	f.Add("(+ 1 2.5 \"str\\n\" sym)")
	f.Add(strings.Repeat("(", 300))
	f.Add("\"unterminated")
	f.Add("; comment only\n")
	f.Fuzz(func(t *testing.T, src string) {
		forms, err := ParseLimits(src, Limits{MaxBytes: 1 << 16, MaxNodes: 10_000, MaxDepth: 100})
		if err != nil {
			return
		}
		var b strings.Builder
		for _, fm := range forms {
			b.WriteString(fm.String())
			b.WriteByte('\n')
		}
		again, err := Parse(b.String())
		if err != nil {
			t.Fatalf("round-trip reparse failed: %v\nrendered: %q", err, b.String())
		}
		if len(again) != len(forms) {
			t.Fatalf("round-trip form count %d != %d\nrendered: %q", len(again), len(forms), b.String())
		}
	})
}
