package sexpr

import (
	"errors"
	"strings"
	"testing"
)

// TestNestingBomb feeds a deeply nested source to the default Parse entry
// point. Before limits existed this recursed once per paren and could
// exhaust the goroutine stack; now it must return a typed LimitError.
func TestNestingBomb(t *testing.T) {
	depth := DefaultMaxDepth * 10
	src := strings.Repeat("(", depth) + "x" + strings.Repeat(")", depth)
	_, err := Parse(src)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("Parse(bomb) = %v, want *LimitError", err)
	}
	if le.What != "depth" || le.Limit != DefaultMaxDepth {
		t.Fatalf("LimitError = %+v, want depth/%d", le, DefaultMaxDepth)
	}
}

// TestNestingBombUnbalanced is the open-parens-only variant: no closer
// ever arrives, so the reader must bail on depth, not end-of-input.
func TestNestingBombUnbalanced(t *testing.T) {
	src := strings.Repeat("(", DefaultMaxDepth*10)
	_, err := Parse(src)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("Parse(open bomb) = %v, want *LimitError", err)
	}
}

func TestParseLimitsBytes(t *testing.T) {
	_, err := ParseLimits("(a b c)", Limits{MaxBytes: 3})
	var le *LimitError
	if !errors.As(err, &le) || le.What != "bytes" {
		t.Fatalf("err = %v, want bytes LimitError", err)
	}
	if _, err := ParseLimits("(a b c)", Limits{MaxBytes: 7}); err != nil {
		t.Fatalf("in-budget source rejected: %v", err)
	}
}

func TestParseLimitsNodes(t *testing.T) {
	_, err := ParseLimits("(a b c d e)", Limits{MaxNodes: 4})
	var le *LimitError
	if !errors.As(err, &le) || le.What != "nodes" {
		t.Fatalf("err = %v, want nodes LimitError", err)
	}
	if _, err := ParseLimits("(a b c d e)", Limits{MaxNodes: 6}); err != nil {
		t.Fatalf("in-budget source rejected: %v", err)
	}
}

func TestParseLimitsDepth(t *testing.T) {
	if _, err := ParseLimits("(a (b (c)))", Limits{MaxDepth: 3}); err != nil {
		t.Fatalf("depth-3 source rejected at MaxDepth=3: %v", err)
	}
	_, err := ParseLimits("(a (b (c)))", Limits{MaxDepth: 2})
	var le *LimitError
	if !errors.As(err, &le) || le.What != "depth" {
		t.Fatalf("err = %v, want depth LimitError", err)
	}
	// MaxDepth cannot be widened past the stack-safety ceiling.
	bomb := strings.Repeat("(", DefaultMaxDepth+5) + strings.Repeat(")", DefaultMaxDepth+5)
	if _, err := ParseLimits(bomb, Limits{MaxDepth: DefaultMaxDepth * 100}); err == nil {
		t.Fatal("MaxDepth above DefaultMaxDepth was not clamped")
	}
}

// TestDeepButLegalNesting makes sure real programs near the bound parse.
func TestDeepButLegalNesting(t *testing.T) {
	depth := 500
	src := strings.Repeat("(+ 1 ", depth) + "2" + strings.Repeat(")", depth)
	forms, err := Parse(src)
	if err != nil || len(forms) != 1 {
		t.Fatalf("Parse = %v (forms=%d), want success", err, len(forms))
	}
}
