// Package sexpr provides the reader for the compiler's source language:
// a Lisp-syntax surface over simplified C semantics, as described in
// Section 3 of the paper. The reader produces a tree of Nodes; all
// semantic processing happens in the compiler package.
package sexpr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Kind discriminates Node variants.
type Kind int

const (
	// KSymbol is an identifier such as foo or +.
	KSymbol Kind = iota
	// KInt is an integer literal.
	KInt
	// KFloat is a floating-point literal.
	KFloat
	// KString is a quoted string literal.
	KString
	// KList is a parenthesized list.
	KList
)

// Node is one element of the parse tree.
type Node struct {
	Kind  Kind
	Sym   string
	Int   int64
	Float float64
	Str   string
	List  []*Node
	Line  int
	Col   int
}

// Sym constructs a symbol node (for tests and code generators).
func Sym(s string) *Node { return &Node{Kind: KSymbol, Sym: s} }

// IntNode constructs an integer literal node.
func IntNode(i int64) *Node { return &Node{Kind: KInt, Int: i} }

// FloatNode constructs a float literal node.
func FloatNode(f float64) *Node { return &Node{Kind: KFloat, Float: f} }

// ListNode constructs a list node.
func ListNode(items ...*Node) *Node { return &Node{Kind: KList, List: items} }

// IsSym reports whether the node is the given symbol.
func (n *Node) IsSym(s string) bool { return n != nil && n.Kind == KSymbol && n.Sym == s }

// Head returns the leading symbol of a list node, or "".
func (n *Node) Head() string {
	if n == nil || n.Kind != KList || len(n.List) == 0 || n.List[0].Kind != KSymbol {
		return ""
	}
	return n.List[0].Sym
}

// Pos formats the node's source position.
func (n *Node) Pos() string { return fmt.Sprintf("%d:%d", n.Line, n.Col) }

// String renders the node back to source form.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	switch n.Kind {
	case KSymbol:
		b.WriteString(n.Sym)
	case KInt:
		fmt.Fprintf(b, "%d", n.Int)
	case KFloat:
		s := strconv.FormatFloat(n.Float, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		b.WriteString(s)
	case KString:
		fmt.Fprintf(b, "%q", n.Str)
	case KList:
		b.WriteByte('(')
		for i, c := range n.List {
			if i > 0 {
				b.WriteByte(' ')
			}
			c.write(b)
		}
		b.WriteByte(')')
	}
}

// SyntaxError reports a reader failure with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sexpr: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// DefaultMaxDepth is the list-nesting bound applied by Parse. The reader
// is recursive-descent, so nesting depth translates directly into Go
// stack frames; an adversarial source of matched parens must hit this
// bound long before the runtime's stack limit does.
const DefaultMaxDepth = 10_000

// Limits bounds the work the reader will perform on untrusted input.
// Zero values leave the corresponding dimension unlimited (Parse still
// applies DefaultMaxDepth so nesting can never exhaust the stack).
type Limits struct {
	MaxBytes int // source length in bytes
	MaxNodes int // total parse-tree nodes
	MaxDepth int // list nesting depth
}

// LimitError reports that parsing stopped because a Limits bound was
// exceeded. It is a typed error so services can map it to a 4xx response
// rather than treating it as an internal failure.
type LimitError struct {
	What      string // "bytes", "nodes", or "depth"
	Limit     int
	Line, Col int
}

func (e *LimitError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("sexpr: %d:%d: source exceeds %s limit %d", e.Line, e.Col, e.What, e.Limit)
	}
	return fmt.Sprintf("sexpr: source exceeds %s limit %d", e.What, e.Limit)
}

type lexer struct {
	src   string
	pos   int
	line  int
	col   int
	lim   Limits
	nodes int
	depth int
}

func (l *lexer) limitErr(what string, limit int) error {
	return &LimitError{What: what, Limit: limit, Line: l.line, Col: l.col}
}

func (l *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) next() (byte, bool) {
	c, ok := l.peek()
	if !ok {
		return 0, false
	}
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c, true
}

func (l *lexer) skipSpace() {
	for {
		c, ok := l.peek()
		if !ok {
			return
		}
		if c == ';' {
			for {
				c, ok = l.next()
				if !ok || c == '\n' {
					break
				}
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.next()
			continue
		}
		return
	}
}

func isSymbolByte(c byte) bool {
	if c == '(' || c == ')' || c == ';' || c == '"' {
		return false
	}
	return !unicode.IsSpace(rune(c))
}

// Parse reads all top-level forms from src. Nesting is bounded by
// DefaultMaxDepth; use ParseLimits to tighten (or widen) the bounds.
func Parse(src string) ([]*Node, error) {
	return ParseLimits(src, Limits{})
}

// ParseLimits reads all top-level forms from src under the given bounds.
// A violated bound returns a *LimitError. Whatever MaxDepth says, the
// effective nesting bound never exceeds DefaultMaxDepth: the reader's
// recursion must stay well inside the goroutine stack.
func ParseLimits(src string, lim Limits) ([]*Node, error) {
	if lim.MaxDepth <= 0 || lim.MaxDepth > DefaultMaxDepth {
		lim.MaxDepth = DefaultMaxDepth
	}
	if lim.MaxBytes > 0 && len(src) > lim.MaxBytes {
		return nil, &LimitError{What: "bytes", Limit: lim.MaxBytes}
	}
	l := &lexer{src: src, line: 1, col: 1, lim: lim}
	var forms []*Node
	for {
		l.skipSpace()
		if _, ok := l.peek(); !ok {
			return forms, nil
		}
		n, err := l.parseNode()
		if err != nil {
			return nil, err
		}
		forms = append(forms, n)
	}
}

// ParseOne reads exactly one form from src.
func ParseOne(src string) (*Node, error) {
	forms, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(forms) != 1 {
		return nil, fmt.Errorf("sexpr: expected one form, found %d", len(forms))
	}
	return forms[0], nil
}

func (l *lexer) parseNode() (*Node, error) {
	l.skipSpace()
	line, col := l.line, l.col
	c, ok := l.peek()
	if !ok {
		return nil, l.errf("unexpected end of input")
	}
	l.nodes++
	if l.lim.MaxNodes > 0 && l.nodes > l.lim.MaxNodes {
		return nil, l.limitErr("nodes", l.lim.MaxNodes)
	}
	switch {
	case c == '(':
		l.depth++
		if l.depth > l.lim.MaxDepth {
			return nil, l.limitErr("depth", l.lim.MaxDepth)
		}
		l.next()
		node := &Node{Kind: KList, Line: line, Col: col}
		for {
			l.skipSpace()
			c, ok := l.peek()
			if !ok {
				return nil, l.errf("unterminated list opened at %d:%d", line, col)
			}
			if c == ')' {
				l.next()
				l.depth--
				return node, nil
			}
			child, err := l.parseNode()
			if err != nil {
				return nil, err
			}
			node.List = append(node.List, child)
		}
	case c == ')':
		return nil, l.errf("unexpected ')'")
	case c == '"':
		l.next()
		var b strings.Builder
		for {
			c, ok := l.next()
			if !ok {
				return nil, l.errf("unterminated string")
			}
			if c == '"' {
				break
			}
			if c == '\\' {
				e, ok := l.next()
				if !ok {
					return nil, l.errf("unterminated escape")
				}
				switch e {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					b.WriteByte(e)
				}
				continue
			}
			b.WriteByte(c)
		}
		return &Node{Kind: KString, Str: b.String(), Line: line, Col: col}, nil
	default:
		start := l.pos
		for {
			c, ok := l.peek()
			if !ok || !isSymbolByte(c) {
				break
			}
			l.next()
		}
		tok := l.src[start:l.pos]
		if tok == "" {
			return nil, l.errf("invalid character %q", c)
		}
		if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
			return &Node{Kind: KInt, Int: n, Line: line, Col: col}, nil
		}
		if looksNumeric(tok) {
			if f, err := strconv.ParseFloat(tok, 64); err == nil {
				return &Node{Kind: KFloat, Float: f, Line: line, Col: col}, nil
			}
			return nil, l.errf("malformed number %q", tok)
		}
		return &Node{Kind: KSymbol, Sym: tok, Line: line, Col: col}, nil
	}
}

// looksNumeric reports whether tok begins like a number (so that symbols
// such as +, -, and 1+foo are handled sensibly).
func looksNumeric(tok string) bool {
	i := 0
	if tok[0] == '+' || tok[0] == '-' {
		if len(tok) == 1 {
			return false
		}
		i = 1
	}
	return tok[i] >= '0' && tok[i] <= '9' || (tok[i] == '.' && i+1 < len(tok) && tok[i+1] >= '0' && tok[i+1] <= '9')
}
