package isa

import (
	"strings"
	"testing"

	"pcoup/internal/machine"
)

func TestWriteScheduleTable(t *testing.T) {
	cfg := machine.Baseline()
	seg := sampleProgram().Segments[0]
	var buf strings.Builder
	WriteScheduleTable(&buf, seg, cfg)
	out := buf.String()
	for _, want := range []string{"segment main", "IU0(c0)", "BR1(c5)", "add", "ld.cons", "st.prod", "halt", "fork>s1"} {
		if !strings.Contains(out, want) {
			t.Errorf("schedule table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Two header lines plus one line per instruction word.
	if len(lines) != 2+len(seg.Instrs) {
		t.Errorf("table has %d lines for %d words", len(lines), len(seg.Instrs))
	}
}

func TestCompactOp(t *testing.T) {
	op := &Op{Code: OpAdd, Dests: []RegRef{{0, 1}, {2, 3}}}
	if got := compactOp(op); !strings.Contains(got, "add c0.r1+") {
		t.Errorf("compactOp multi-dest = %q", got)
	}
	br := &Op{Code: OpBt, Target: 7}
	if got := compactOp(br); !strings.Contains(got, ">7") {
		t.Errorf("compactOp branch = %q", got)
	}
}

func TestDescribe(t *testing.T) {
	var buf strings.Builder
	Describe(&buf, machine.Baseline())
	out := buf.String()
	for _, want := range []string{"cluster 0", "IU(lat 1)", "Full", "Min", "priority"} {
		if !strings.Contains(out, want) {
			t.Errorf("describe missing %q:\n%s", want, out)
		}
	}
	var buf2 strings.Builder
	Describe(&buf2, machine.Baseline().WithMemory(machine.Mem1))
	if !strings.Contains(buf2.String(), "5% miss") {
		t.Errorf("describe missing miss model:\n%s", buf2.String())
	}
}
