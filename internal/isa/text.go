package isa

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The textual assembly format is line oriented:
//
//	.program <name>
//	.memwords <n>
//	.data <name> <addr> <full|empty>
//	<value> <value> ...
//	.enddata
//	.segment <name>
//	.regcount <n0> <n1> ...
//	.word
//	<slot> <mnemonic[.sync]> [dest ...] <- [src ...] [@offset] [->target]
//	...
//
// Every operation line belongs to the most recent .word directive. The
// "<-" token separates destinations from sources unambiguously.

// WriteText serializes the program in assembly form.
func WriteText(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".program %s\n", p.Name)
	fmt.Fprintf(bw, ".memwords %d\n", p.MemWords)
	for _, d := range p.Data {
		state := "full"
		if !d.Full {
			state = "empty"
		}
		fmt.Fprintf(bw, ".data %s %d %s\n", d.Name, d.Addr, state)
		for i, v := range d.Values {
			if i > 0 {
				if i%8 == 0 {
					bw.WriteByte('\n')
				} else {
					bw.WriteByte(' ')
				}
			}
			bw.WriteString(v.String())
		}
		if len(d.Values) > 0 {
			bw.WriteByte('\n')
		}
		bw.WriteString(".enddata\n")
	}
	for _, seg := range p.Segments {
		fmt.Fprintf(bw, ".segment %s\n", seg.Name)
		if len(seg.RegCount) > 0 {
			fmt.Fprintf(bw, ".regcount")
			for _, n := range seg.RegCount {
				fmt.Fprintf(bw, " %d", n)
			}
			bw.WriteByte('\n')
		}
		for wi := range seg.Instrs {
			bw.WriteString(".word\n")
			for slot, op := range seg.Instrs[wi].Ops {
				if op == nil {
					continue
				}
				writeOpText(bw, slot, op)
			}
		}
	}
	return bw.Flush()
}

func writeOpText(w *bufio.Writer, slot int, op *Op) {
	fmt.Fprintf(w, "%d %s", slot, op.Code)
	if op.IsMemory() && op.Sync != SyncNone {
		fmt.Fprintf(w, ".%s", op.Sync)
	}
	for _, d := range op.Dests {
		fmt.Fprintf(w, " c%d.r%d", d.Cluster, d.Index)
	}
	w.WriteString(" <-")
	for _, s := range op.Srcs {
		if s.Kind == OperandImm {
			fmt.Fprintf(w, " #%s", s.Imm)
		} else {
			fmt.Fprintf(w, " c%d.r%d", s.Reg.Cluster, s.Reg.Index)
		}
	}
	if op.IsMemory() {
		fmt.Fprintf(w, " @%d", op.Offset)
	}
	switch op.Code {
	case OpJmp, OpBt, OpBf, OpFork:
		fmt.Fprintf(w, " ->%d", op.Target)
	}
	w.WriteByte('\n')
}

// ParseText parses a program previously written by WriteText.
func ParseText(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	p := &Program{}
	var seg *ThreadCode
	var data *DataSegment
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case data != nil && fields[0] != ".enddata":
			for _, f := range fields {
				v, err := ParseValue(f)
				if err != nil {
					return nil, fmt.Errorf("isa: line %d: %w", lineno, err)
				}
				data.Values = append(data.Values, v)
			}
		case fields[0] == ".program":
			if len(fields) > 1 {
				p.Name = fields[1]
			}
		case fields[0] == ".memwords":
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("isa: line %d: bad .memwords: %w", lineno, err)
			}
			p.MemWords = n
		case fields[0] == ".data":
			if len(fields) != 4 {
				return nil, fmt.Errorf("isa: line %d: .data wants name addr state", lineno)
			}
			addr, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("isa: line %d: bad data address: %w", lineno, err)
			}
			p.Data = append(p.Data, DataSegment{Name: fields[1], Addr: addr, Full: fields[3] == "full"})
			data = &p.Data[len(p.Data)-1]
		case fields[0] == ".enddata":
			data = nil
		case fields[0] == ".segment":
			p.Segments = append(p.Segments, &ThreadCode{Name: fields[1]})
			seg = p.Segments[len(p.Segments)-1]
		case fields[0] == ".regcount":
			if seg == nil {
				return nil, fmt.Errorf("isa: line %d: .regcount outside segment", lineno)
			}
			for _, f := range fields[1:] {
				n, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("isa: line %d: bad regcount: %w", lineno, err)
				}
				seg.RegCount = append(seg.RegCount, n)
			}
		case fields[0] == ".word":
			if seg == nil {
				return nil, fmt.Errorf("isa: line %d: .word outside segment", lineno)
			}
			seg.Instrs = append(seg.Instrs, Instruction{})
			seg.ScheduleLen = len(seg.Instrs)
		default:
			if seg == nil || len(seg.Instrs) == 0 {
				return nil, fmt.Errorf("isa: line %d: operation outside .word", lineno)
			}
			slot, op, err := parseOpLine(fields)
			if err != nil {
				return nil, fmt.Errorf("isa: line %d: %w", lineno, err)
			}
			word := &seg.Instrs[len(seg.Instrs)-1]
			for len(word.Ops) <= slot {
				word.Ops = append(word.Ops, nil)
			}
			if word.Ops[slot] != nil {
				return nil, fmt.Errorf("isa: line %d: slot %d already occupied", lineno, slot)
			}
			op.Unit = slot
			word.Ops[slot] = op
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(p.Segments) == 0 {
		return nil, fmt.Errorf("isa: no code segments")
	}
	return p, nil
}

func parseOpLine(fields []string) (int, *Op, error) {
	if len(fields) < 2 {
		return 0, nil, fmt.Errorf("malformed operation line")
	}
	slot, err := strconv.Atoi(fields[0])
	if err != nil || slot < 0 {
		return 0, nil, fmt.Errorf("bad slot %q", fields[0])
	}
	mnem := fields[1]
	var sync SyncFlavor
	if dot := strings.IndexByte(mnem, '.'); dot >= 0 {
		sync, err = ParseSyncFlavor(mnem[dot+1:])
		if err != nil {
			return 0, nil, err
		}
		mnem = mnem[:dot]
	}
	code, err := ParseOpcode(mnem)
	if err != nil {
		return 0, nil, err
	}
	op := &Op{Code: code, Sync: sync}
	inSrcs := false
	sawArrow := false
	for _, tok := range fields[2:] {
		switch {
		case tok == "<-":
			inSrcs = true
			sawArrow = true
		case strings.HasPrefix(tok, "->"):
			t, err := strconv.Atoi(tok[2:])
			if err != nil {
				return 0, nil, fmt.Errorf("bad target %q", tok)
			}
			op.Target = t
		case strings.HasPrefix(tok, "@"):
			off, err := strconv.ParseInt(tok[1:], 10, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("bad offset %q", tok)
			}
			op.Offset = off
		case strings.HasPrefix(tok, "#"):
			if !inSrcs {
				return 0, nil, fmt.Errorf("immediate %q before <-", tok)
			}
			v, err := ParseValue(tok[1:])
			if err != nil {
				return 0, nil, err
			}
			op.Srcs = append(op.Srcs, Imm(v))
		default:
			reg, err := parseRegToken(tok)
			if err != nil {
				return 0, nil, err
			}
			if inSrcs {
				op.Srcs = append(op.Srcs, Reg(reg))
			} else {
				op.Dests = append(op.Dests, reg)
			}
		}
	}
	if !sawArrow {
		return 0, nil, fmt.Errorf("operation line missing <-")
	}
	return slot, op, nil
}

func parseRegToken(tok string) (RegRef, error) {
	rest, ok := strings.CutPrefix(tok, "c")
	if !ok {
		return RegRef{}, fmt.Errorf("bad register %q", tok)
	}
	cs, rs, ok := strings.Cut(rest, ".r")
	if !ok {
		return RegRef{}, fmt.Errorf("bad register %q", tok)
	}
	c, err1 := strconv.Atoi(cs)
	r, err2 := strconv.Atoi(rs)
	if err1 != nil || err2 != nil || c < 0 || r < 0 {
		return RegRef{}, fmt.Errorf("bad register %q", tok)
	}
	return RegRef{Cluster: c, Index: r}, nil
}
