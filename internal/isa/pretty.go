package isa

import (
	"fmt"
	"io"

	"pcoup/internal/machine"
)

// WriteScheduleTable renders a segment's static schedule as the paper
// draws instruction streams (Figure 1): one row per wide instruction
// word, one column per function unit. Comparing this view with the
// simulator's runtime interleaving shows exactly where the schedule
// "slips".
func WriteScheduleTable(w io.Writer, seg *ThreadCode, cfg *machine.Config) {
	units := cfg.Units()
	const colWidth = 14
	fmt.Fprintf(w, "segment %s: %d words\n", seg.Name, len(seg.Instrs))
	fmt.Fprintf(w, "%5s", "word")
	counts := map[machine.UnitKind]int{}
	for _, u := range units {
		fmt.Fprintf(w, " %-*s", colWidth, fmt.Sprintf("%s%d(c%d)", u.Kind, counts[u.Kind], u.Cluster))
		counts[u.Kind]++
	}
	fmt.Fprintln(w)
	for wi := range seg.Instrs {
		fmt.Fprintf(w, "%5d", wi)
		for slot := range units {
			cell := ""
			if slot < len(seg.Instrs[wi].Ops) && seg.Instrs[wi].Ops[slot] != nil {
				cell = compactOp(seg.Instrs[wi].Ops[slot])
			}
			if len(cell) > colWidth {
				cell = cell[:colWidth-1] + "~"
			}
			fmt.Fprintf(w, " %-*s", colWidth, cell)
		}
		fmt.Fprintln(w)
	}
}

// compactOp renders an operation tersely for schedule tables.
func compactOp(op *Op) string {
	s := op.Code.String()
	if op.IsMemory() && op.Sync != SyncNone {
		s += "." + op.Sync.String()
	}
	if len(op.Dests) > 0 {
		d := op.Dests[0]
		s += fmt.Sprintf(" c%d.r%d", d.Cluster, d.Index)
		if len(op.Dests) > 1 {
			s += "+"
		}
	}
	switch op.Code {
	case OpJmp, OpBt, OpBf:
		s += fmt.Sprintf(">%d", op.Target)
	case OpFork:
		s += fmt.Sprintf(">s%d", op.Target)
	}
	return s
}

// Describe renders the machine organization in the style of the paper's
// Figure 3: clusters with their units, the interconnect scheme, and the
// memory system.
func Describe(w io.Writer, cfg *machine.Config) {
	fmt.Fprintf(w, "%s\n", cfg)
	for ci, cl := range cfg.Clusters {
		fmt.Fprintf(w, "  cluster %d: ", ci)
		for i, u := range cl.Units {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s(lat %d)", u.Kind, u.Latency)
		}
		fmt.Fprintf(w, " | shared register file\n")
	}
	fmt.Fprintf(w, "  unit interconnect: %s (max %d register destinations per op)\n",
		cfg.Interconnect, cfg.MaxDests)
	mm := cfg.Memory
	if mm.MissRate > 0 {
		fmt.Fprintf(w, "  memory: %s — %d-cycle hit, %.0f%% miss of %d-%d cycles, %d banks\n",
			mm.Name, mm.HitLatency, mm.MissRate*100, mm.MissPenaltyMin, mm.MissPenaltyMax, mm.Banks)
	} else {
		fmt.Fprintf(w, "  memory: %s — %d-cycle references, %d banks\n", mm.Name, mm.HitLatency, mm.Banks)
	}
	fmt.Fprintf(w, "  arbitration: %s; active thread limit %d\n",
		cfg.Arbitration, cfg.MaxActiveThreads())
}
