package isa

import (
	"fmt"
	"strings"
)

// RegRef names one logical register: a slot in a particular cluster's
// register file. Register sets are per-thread; two threads using the same
// RegRef address distinct physical storage.
type RegRef struct {
	Cluster int
	Index   int
}

func (r RegRef) String() string { return fmt.Sprintf("c%d.r%d", r.Cluster, r.Index) }

// OperandKind distinguishes register from immediate operands.
type OperandKind int

const (
	// OperandReg reads a register (which must be local to the executing
	// unit's cluster).
	OperandReg OperandKind = iota
	// OperandImm is an immediate value encoded in the operation.
	OperandImm
)

// Operand is one source of an operation.
type Operand struct {
	Kind OperandKind
	Reg  RegRef
	Imm  Value
}

// Reg returns a register operand.
func Reg(r RegRef) Operand { return Operand{Kind: OperandReg, Reg: r} }

// Imm returns an immediate operand.
func Imm(v Value) Operand { return Operand{Kind: OperandImm, Imm: v} }

// ImmInt returns an integer immediate operand.
func ImmInt(i int64) Operand { return Imm(Int(i)) }

func (o Operand) String() string {
	if o.Kind == OperandImm {
		return "#" + o.Imm.String()
	}
	return o.Reg.String()
}

// Op is a single operation occupying one function-unit slot of an
// instruction word.
//
// Memory operations: for OpLoad, Srcs holds the address components (one or
// two registers/immediates that are summed with Offset) and Dests receives
// the loaded value. For OpStore, Srcs[0] is the value to store and the
// remaining sources are the address components.
//
// Branch operations: Target is the branch destination (an instruction
// word index within the thread's code segment) or, for OpFork, the index
// of the code segment to spawn. TargetLabel carries the symbolic name
// until the assembler resolves it.
type Op struct {
	Code   Opcode
	Sync   SyncFlavor
	Srcs   []Operand
	Dests  []RegRef
	Offset int64 // constant added to the effective address of memory ops

	Target      int
	TargetLabel string

	// Unit is the global function-unit slot this operation was scheduled
	// on; assigned by the compiler/assembler.
	Unit int
}

// Clone returns a deep copy of the operation.
func (o *Op) Clone() *Op {
	out := *o
	out.Srcs = append([]Operand(nil), o.Srcs...)
	out.Dests = append([]RegRef(nil), o.Dests...)
	return &out
}

// SrcRegs returns the registers read by the operation.
func (o *Op) SrcRegs() []RegRef {
	var out []RegRef
	for _, s := range o.Srcs {
		if s.Kind == OperandReg {
			out = append(out, s.Reg)
		}
	}
	return out
}

// IsMemory reports whether the operation is a load or store.
func (o *Op) IsMemory() bool { return o.Code == OpLoad || o.Code == OpStore }

// IsBranch reports whether the operation redirects control flow.
func (o *Op) IsBranch() bool { return o.Code == OpJmp || o.Code == OpBt || o.Code == OpBf }

func (o *Op) String() string {
	var b strings.Builder
	b.WriteString(o.Code.String())
	if o.IsMemory() && o.Sync != SyncNone {
		b.WriteString("." + o.Sync.String())
	}
	first := true
	writeSep := func() {
		if first {
			b.WriteByte(' ')
			first = false
		} else {
			b.WriteString(", ")
		}
	}
	for _, d := range o.Dests {
		writeSep()
		b.WriteString(d.String())
	}
	for _, s := range o.Srcs {
		writeSep()
		b.WriteString(s.String())
	}
	if o.IsMemory() {
		writeSep()
		fmt.Fprintf(&b, "@%d", o.Offset)
	}
	if o.Code == OpJmp || o.Code == OpBt || o.Code == OpBf || o.Code == OpFork {
		writeSep()
		if o.TargetLabel != "" {
			b.WriteString(o.TargetLabel)
		} else {
			fmt.Fprintf(&b, "%d", o.Target)
		}
	}
	return b.String()
}

// Instruction is one wide instruction word: at most one operation per
// function unit, indexed by global unit slot. Empty slots are nil.
type Instruction struct {
	Ops []*Op
}

// NumOps returns the number of occupied slots.
func (in *Instruction) NumOps() int {
	n := 0
	for _, op := range in.Ops {
		if op != nil {
			n++
		}
	}
	return n
}

// ThreadCode is the compiled code of one thread: a sequence of wide
// instruction words plus metadata.
type ThreadCode struct {
	Name   string
	Instrs []Instruction
	// RegCount[c] is the number of logical registers the code uses in
	// cluster c (the compiler assumes unbounded registers and reports
	// usage, as in the paper).
	RegCount []int
	// ScheduleLen is the static schedule length in words (diagnostic;
	// equals len(Instrs)).
	ScheduleLen int
}

// DataSegment is a region of the initial memory image.
type DataSegment struct {
	Name   string
	Addr   int64
	Values []Value
	// Full marks the words' presence bits as full at startup (normal
	// data). If false the words start empty (synchronization cells).
	Full bool
}

// Program is a complete compiled program: code segments for every thread
// body (segment 0 is the main thread) and the initial memory image.
type Program struct {
	Name     string
	Segments []*ThreadCode
	Data     []DataSegment
	// MemWords is the total memory size in words the program requires.
	MemWords int64
}

// SegmentIndex returns the index of the named code segment.
func (p *Program) SegmentIndex(name string) (int, bool) {
	for i, s := range p.Segments {
		if s.Name == name {
			return i, true
		}
	}
	return 0, false
}

// TotalOps counts all operations across all segments (static, not
// dynamic).
func (p *Program) TotalOps() int {
	n := 0
	for _, s := range p.Segments {
		for i := range s.Instrs {
			n += s.Instrs[i].NumOps()
		}
	}
	return n
}

// Validate checks structural invariants of a compiled program against the
// slot count of the target machine: operations are placed in slots,
// branch/fork targets are in range, and register operands name valid
// clusters.
func (p *Program) Validate(numUnits, numClusters, maxDests int) error {
	if len(p.Segments) == 0 {
		return fmt.Errorf("isa: program %q has no code segments", p.Name)
	}
	for si, seg := range p.Segments {
		for wi := range seg.Instrs {
			word := &seg.Instrs[wi]
			if len(word.Ops) > numUnits {
				return fmt.Errorf("isa: %s word %d has %d slots (> %d units)", seg.Name, wi, len(word.Ops), numUnits)
			}
			for slot, op := range word.Ops {
				if op == nil {
					continue
				}
				if op.Unit != slot {
					return fmt.Errorf("isa: %s word %d slot %d holds op tagged for unit %d", seg.Name, wi, slot, op.Unit)
				}
				if len(op.Dests) > maxDests {
					return fmt.Errorf("isa: %s word %d: op %s has %d destinations (> %d)", seg.Name, wi, op, len(op.Dests), maxDests)
				}
				for _, d := range op.Dests {
					if d.Cluster < 0 || d.Cluster >= numClusters || d.Index < 0 {
						return fmt.Errorf("isa: %s word %d: bad destination %s", seg.Name, wi, d)
					}
				}
				for _, s := range op.Srcs {
					if s.Kind == OperandReg && (s.Reg.Cluster < 0 || s.Reg.Cluster >= numClusters || s.Reg.Index < 0) {
						return fmt.Errorf("isa: %s word %d: bad source %s", seg.Name, wi, s.Reg)
					}
				}
				switch op.Code {
				case OpJmp, OpBt, OpBf:
					if op.Target < 0 || op.Target > len(seg.Instrs) {
						return fmt.Errorf("isa: %s word %d: branch target %d out of range", seg.Name, wi, op.Target)
					}
				case OpFork:
					if op.Target < 0 || op.Target >= len(p.Segments) {
						return fmt.Errorf("isa: %s word %d: fork target %d out of range", seg.Name, wi, op.Target)
					}
				}
				_ = si
			}
		}
	}
	return nil
}
