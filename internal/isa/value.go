// Package isa defines the instruction set of the processor-coupled node:
// machine values, operations, wide instruction words, compiled programs,
// and a textual assembly format. The compiler emits isa.Program values and
// the simulator executes them; constant folding in the compiler and
// execution in the simulator share the evaluation semantics defined here.
package isa

import (
	"fmt"
	"math"
	"strconv"
)

// Value is one machine word. Integers and floating-point numbers reside in
// the same register files (Section 3 of the paper), so a Value carries a
// tag distinguishing the two.
type Value struct {
	F       float64
	I       int64
	IsFloat bool
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{I: i} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{F: f, IsFloat: true} }

// Bool returns an integer Value of 1 or 0.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// AsInt returns the value as an integer, truncating floats.
func (v Value) AsInt() int64 {
	if v.IsFloat {
		return int64(v.F)
	}
	return v.I
}

// AsFloat returns the value as a float, converting integers.
func (v Value) AsFloat() float64 {
	if v.IsFloat {
		return v.F
	}
	return float64(v.I)
}

// Truthy reports whether the value is non-zero.
func (v Value) Truthy() bool {
	if v.IsFloat {
		return v.F != 0
	}
	return v.I != 0
}

// Equal reports exact equality of tag and payload. NaN != NaN.
func (v Value) Equal(w Value) bool {
	if v.IsFloat != w.IsFloat {
		return false
	}
	if v.IsFloat {
		return v.F == w.F
	}
	return v.I == w.I
}

func (v Value) String() string {
	if v.IsFloat {
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		// Keep a trailing marker so the text form round-trips the tag.
		if _, err := strconv.ParseInt(s, 10, 64); err == nil {
			s += ".0"
		}
		if math.IsInf(v.F, 1) {
			return "+Inf"
		}
		if math.IsInf(v.F, -1) {
			return "-Inf"
		}
		return s
	}
	return fmt.Sprintf("%d", v.I)
}

// ParseValue parses the textual form produced by Value.String.
func ParseValue(s string) (Value, error) {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return Value{}, fmt.Errorf("isa: invalid value %q", s)
	}
	return Float(f), nil
}
