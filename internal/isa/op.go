package isa

import (
	"fmt"
	"math"

	"pcoup/internal/machine"
)

// Opcode enumerates every operation the node can execute.
type Opcode int

const (
	OpInvalid Opcode = iota

	// Integer unit operations.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl
	OpShr
	OpSlt
	OpSle
	OpSeq
	OpSne
	OpSgt
	OpSge
	OpMov // register-to-register (or immediate) move; also used for cross-cluster transfer

	// Floating-point unit operations.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg
	OpFAbs
	OpFMov
	OpFlt
	OpFle
	OpFeq
	OpFne
	OpFgt
	OpFge
	OpItoF
	OpFtoI

	// Memory unit operations. The effective address is src[last] (+ index)
	// plus the Offset field; see Op.
	OpLoad
	OpStore

	// Branch unit operations.
	OpJmp  // unconditional branch to Target
	OpBt   // branch to Target if src0 is non-zero
	OpBf   // branch to Target if src0 is zero
	OpFork // spawn a new thread running code segment Target
	OpHalt // terminate this thread

	numOpcodes
)

// opcodeDesc describes one opcode's static properties.
type opcodeDesc struct {
	name string
	unit machine.UnitKind
	// nsrc is the required operand count; -1 means variable (memory ops).
	nsrc int
	// pure marks side-effect-free value operations that the compiler may
	// constant-fold.
	pure bool
}

// opcodeInfo is indexed by Opcode (a dense enum); undefined opcodes have
// an empty name. An array keeps the per-issue lookups in the simulator's
// hot path free of map hashing.
var opcodeInfo = [numOpcodes]opcodeDesc{
	OpAdd:   {"add", machine.IU, 2, true},
	OpSub:   {"sub", machine.IU, 2, true},
	OpMul:   {"mul", machine.IU, 2, true},
	OpDiv:   {"div", machine.IU, 2, true},
	OpMod:   {"mod", machine.IU, 2, true},
	OpNeg:   {"neg", machine.IU, 1, true},
	OpAnd:   {"and", machine.IU, 2, true},
	OpOr:    {"or", machine.IU, 2, true},
	OpXor:   {"xor", machine.IU, 2, true},
	OpNot:   {"not", machine.IU, 1, true},
	OpShl:   {"shl", machine.IU, 2, true},
	OpShr:   {"shr", machine.IU, 2, true},
	OpSlt:   {"slt", machine.IU, 2, true},
	OpSle:   {"sle", machine.IU, 2, true},
	OpSeq:   {"seq", machine.IU, 2, true},
	OpSne:   {"sne", machine.IU, 2, true},
	OpSgt:   {"sgt", machine.IU, 2, true},
	OpSge:   {"sge", machine.IU, 2, true},
	OpMov:   {"mov", machine.IU, 1, true},
	OpFAdd:  {"fadd", machine.FPU, 2, true},
	OpFSub:  {"fsub", machine.FPU, 2, true},
	OpFMul:  {"fmul", machine.FPU, 2, true},
	OpFDiv:  {"fdiv", machine.FPU, 2, true},
	OpFNeg:  {"fneg", machine.FPU, 1, true},
	OpFAbs:  {"fabs", machine.FPU, 1, true},
	OpFMov:  {"fmov", machine.FPU, 1, true},
	OpFlt:   {"flt", machine.FPU, 2, true},
	OpFle:   {"fle", machine.FPU, 2, true},
	OpFeq:   {"feq", machine.FPU, 2, true},
	OpFne:   {"fne", machine.FPU, 2, true},
	OpFgt:   {"fgt", machine.FPU, 2, true},
	OpFge:   {"fge", machine.FPU, 2, true},
	OpItoF:  {"itof", machine.FPU, 1, true},
	OpFtoI:  {"ftoi", machine.FPU, 1, true},
	OpLoad:  {"ld", machine.MEM, -1, false},
	OpStore: {"st", machine.MEM, -1, false},
	OpJmp:   {"jmp", machine.BR, 0, false},
	OpBt:    {"bt", machine.BR, 1, false},
	OpBf:    {"bf", machine.BR, 1, false},
	OpFork:  {"fork", machine.BR, 0, false},
	OpHalt:  {"halt", machine.BR, 0, false},
}

// info returns the opcode's descriptor (the zero descriptor for
// out-of-range or undefined opcodes, mirroring the former map lookup).
func (o Opcode) info() opcodeDesc {
	if o <= OpInvalid || o >= numOpcodes {
		return opcodeDesc{}
	}
	return opcodeInfo[o]
}

func (o Opcode) String() string {
	if info := o.info(); info.name != "" {
		return info.name
	}
	return fmt.Sprintf("Opcode(%d)", int(o))
}

// Unit returns the function unit class that executes the opcode.
func (o Opcode) Unit() machine.UnitKind { return o.info().unit }

// Pure reports whether the opcode is a side-effect-free value computation.
func (o Opcode) Pure() bool { return o.info().pure }

// NumSrcs returns the operand count required by the opcode, or -1 if
// variable.
func (o Opcode) NumSrcs() int { return o.info().nsrc }

// ParseOpcode converts an assembly mnemonic into an Opcode.
func ParseOpcode(name string) (Opcode, error) {
	for op := Opcode(1); op < numOpcodes; op++ {
		if opcodeInfo[op].name == name {
			return op, nil
		}
	}
	return OpInvalid, fmt.Errorf("isa: unknown opcode %q", name)
}

// Opcodes returns every defined opcode (for exhaustive tests).
func Opcodes() []Opcode {
	out := make([]Opcode, 0, int(numOpcodes))
	for op := Opcode(1); op < numOpcodes; op++ {
		if opcodeInfo[op].name != "" {
			out = append(out, op)
		}
	}
	return out
}

// SyncFlavor selects the presence-bit precondition and postcondition of a
// memory reference (Table 1 of the paper).
type SyncFlavor int

const (
	// SyncNone: unconditional; loads leave the bit as is, stores set full.
	SyncNone SyncFlavor = iota
	// SyncWaitFull: wait until full, leave full (loads and stores).
	SyncWaitFull
	// SyncConsume: loads only — wait until full, set empty.
	SyncConsume
	// SyncProduce: stores only — wait until empty, set full.
	SyncProduce
)

var syncNames = [...]string{"", "wf", "cons", "prod"}

func (s SyncFlavor) String() string {
	if s < 0 || int(s) >= len(syncNames) {
		return fmt.Sprintf("SyncFlavor(%d)", int(s))
	}
	return syncNames[s]
}

// ParseSyncFlavor parses the textual suffix of a memory opcode.
func ParseSyncFlavor(s string) (SyncFlavor, error) {
	for i, n := range syncNames {
		if s == n {
			return SyncFlavor(i), nil
		}
	}
	return 0, fmt.Errorf("isa: unknown sync flavor %q", s)
}

// Eval computes the result of a pure opcode applied to operand values.
// Memory, branch, and thread operations are not evaluable here. Integer
// division or modulus by zero yields zero (the simulated machine does not
// trap); float division by zero follows IEEE semantics.
func Eval(op Opcode, srcs []Value) (Value, error) {
	info := op.info()
	if !info.pure {
		return Value{}, fmt.Errorf("isa: opcode %s is not evaluable", op)
	}
	if info.nsrc >= 0 && len(srcs) != info.nsrc {
		return Value{}, fmt.Errorf("isa: opcode %s wants %d operands, got %d", op, info.nsrc, len(srcs))
	}
	a := srcs[0]
	var b Value
	if len(srcs) > 1 {
		b = srcs[1]
	}
	switch op {
	case OpAdd:
		return Int(a.AsInt() + b.AsInt()), nil
	case OpSub:
		return Int(a.AsInt() - b.AsInt()), nil
	case OpMul:
		return Int(a.AsInt() * b.AsInt()), nil
	case OpDiv:
		if b.AsInt() == 0 {
			return Int(0), nil
		}
		return Int(a.AsInt() / b.AsInt()), nil
	case OpMod:
		if b.AsInt() == 0 {
			return Int(0), nil
		}
		return Int(a.AsInt() % b.AsInt()), nil
	case OpNeg:
		return Int(-a.AsInt()), nil
	case OpAnd:
		return Int(a.AsInt() & b.AsInt()), nil
	case OpOr:
		return Int(a.AsInt() | b.AsInt()), nil
	case OpXor:
		return Int(a.AsInt() ^ b.AsInt()), nil
	case OpNot:
		return Int(^a.AsInt()), nil
	case OpShl:
		return Int(a.AsInt() << uint(b.AsInt()&63)), nil
	case OpShr:
		return Int(a.AsInt() >> uint(b.AsInt()&63)), nil
	case OpSlt:
		return Bool(a.AsInt() < b.AsInt()), nil
	case OpSle:
		return Bool(a.AsInt() <= b.AsInt()), nil
	case OpSeq:
		return Bool(a.AsInt() == b.AsInt()), nil
	case OpSne:
		return Bool(a.AsInt() != b.AsInt()), nil
	case OpSgt:
		return Bool(a.AsInt() > b.AsInt()), nil
	case OpSge:
		return Bool(a.AsInt() >= b.AsInt()), nil
	case OpMov, OpFMov:
		return a, nil
	case OpFAdd:
		return Float(a.AsFloat() + b.AsFloat()), nil
	case OpFSub:
		return Float(a.AsFloat() - b.AsFloat()), nil
	case OpFMul:
		return Float(a.AsFloat() * b.AsFloat()), nil
	case OpFDiv:
		return Float(a.AsFloat() / b.AsFloat()), nil
	case OpFNeg:
		return Float(-a.AsFloat()), nil
	case OpFAbs:
		return Float(math.Abs(a.AsFloat())), nil
	case OpFlt:
		return Bool(a.AsFloat() < b.AsFloat()), nil
	case OpFle:
		return Bool(a.AsFloat() <= b.AsFloat()), nil
	case OpFeq:
		return Bool(a.AsFloat() == b.AsFloat()), nil
	case OpFne:
		return Bool(a.AsFloat() != b.AsFloat()), nil
	case OpFgt:
		return Bool(a.AsFloat() > b.AsFloat()), nil
	case OpFge:
		return Bool(a.AsFloat() >= b.AsFloat()), nil
	case OpItoF:
		return Float(float64(a.AsInt())), nil
	case OpFtoI:
		return Int(int64(a.AsFloat())), nil
	}
	return Value{}, fmt.Errorf("isa: unhandled opcode %s", op)
}
