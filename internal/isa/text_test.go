package isa

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// sampleProgram exercises every operand form: immediates, registers,
// multiple destinations, sync flavors, offsets, branch and fork targets,
// and data segments in both presence states.
func sampleProgram() *Program {
	return &Program{
		Name:     "sample",
		MemWords: 256,
		Data: []DataSegment{
			{Name: "a", Addr: 8, Values: []Value{Int(1), Float(2.5), Int(-3)}, Full: true},
			{Name: "sync", Addr: 16, Values: []Value{Int(0)}, Full: false},
		},
		Segments: []*ThreadCode{
			{
				Name:     "main",
				RegCount: []int{3, 1},
				Instrs: []Instruction{
					{Ops: []*Op{
						{Code: OpAdd, Unit: 0, Srcs: []Operand{Reg(RegRef{0, 1}), ImmInt(4)}, Dests: []RegRef{{0, 2}, {1, 0}}},
						nil,
						{Code: OpLoad, Unit: 2, Sync: SyncConsume, Srcs: []Operand{Reg(RegRef{0, 0})}, Dests: []RegRef{{0, 0}}, Offset: 8},
					}},
					{Ops: []*Op{
						nil, nil, nil,
						{Code: OpStore, Unit: 3, Sync: SyncProduce, Srcs: []Operand{Imm(Float(1.5)), Reg(RegRef{1, 0})}, Offset: 16},
					}},
					{Ops: []*Op{nil, {Code: OpBt, Unit: 1, Srcs: []Operand{Reg(RegRef{0, 2})}, Target: 0}}},
					{Ops: []*Op{nil, {Code: OpFork, Unit: 1, Target: 1}}},
					{Ops: []*Op{nil, {Code: OpHalt, Unit: 1}}},
				},
			},
			{
				Name: "worker",
				Instrs: []Instruction{
					{Ops: []*Op{nil, {Code: OpHalt, Unit: 1}}},
				},
			},
		},
	}
}

func TestTextRoundTrip(t *testing.T) {
	p := sampleProgram()
	var buf bytes.Buffer
	if err := WriteText(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if back.Name != p.Name || back.MemWords != p.MemWords {
		t.Errorf("header mismatch: %q %d", back.Name, back.MemWords)
	}
	if !reflect.DeepEqual(back.Data, p.Data) {
		t.Errorf("data mismatch:\n got %+v\nwant %+v", back.Data, p.Data)
	}
	if len(back.Segments) != len(p.Segments) {
		t.Fatalf("segment count %d, want %d", len(back.Segments), len(p.Segments))
	}
	for si, seg := range p.Segments {
		bseg := back.Segments[si]
		if bseg.Name != seg.Name {
			t.Errorf("segment %d name %q", si, bseg.Name)
		}
		if !reflect.DeepEqual(bseg.RegCount, seg.RegCount) {
			t.Errorf("segment %s regcount %v, want %v", seg.Name, bseg.RegCount, seg.RegCount)
		}
		if len(bseg.Instrs) != len(seg.Instrs) {
			t.Fatalf("segment %s word count %d, want %d", seg.Name, len(bseg.Instrs), len(seg.Instrs))
		}
		for wi := range seg.Instrs {
			for slot, op := range seg.Instrs[wi].Ops {
				var bop *Op
				if slot < len(bseg.Instrs[wi].Ops) {
					bop = bseg.Instrs[wi].Ops[slot]
				}
				if (op == nil) != (bop == nil) {
					t.Errorf("%s word %d slot %d: nil mismatch", seg.Name, wi, slot)
					continue
				}
				if op == nil {
					continue
				}
				if !reflect.DeepEqual(*op, *bop) {
					t.Errorf("%s word %d slot %d:\n got %+v\nwant %+v", seg.Name, wi, slot, *bop, *op)
				}
			}
		}
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"no segments", ".program x\n"},
		{"op outside word", ".segment m\n0 halt <-\n"},
		{"word outside segment", ".word\n"},
		{"bad slot", ".segment m\n.word\nxx halt <-\n"},
		{"bad opcode", ".segment m\n.word\n0 zzz <-\n"},
		{"missing arrow", ".segment m\n.word\n0 add c0.r0 c0.r1 #2\n"},
		{"double slot", ".segment m\n.word\n0 halt <-\n0 halt <-\n"},
		{"bad register", ".segment m\n.word\n0 add x0.r1 <- #1 #2\n"},
		{"bad target", ".segment m\n.word\n0 jmp <- ->zz\n"},
		{"bad data addr", ".data a zz full\n.enddata\n.segment m\n.word\n0 halt <-\n"},
		{"regcount outside segment", ".regcount 1 2\n"},
	}
	for _, c := range cases {
		if _, err := ParseText(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: ParseText accepted malformed input", c.name)
		}
	}
}

func TestParseTextIgnoresCommentsAndBlanks(t *testing.T) {
	text := `
; a comment
.program p

.segment main
.word
; mid comment
1 halt <-
`
	p, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if p.Segments[0].Instrs[0].Ops[1].Code != OpHalt {
		t.Error("comment handling corrupted parse")
	}
}

func TestOpStringForms(t *testing.T) {
	op := &Op{Code: OpLoad, Sync: SyncWaitFull, Srcs: []Operand{Reg(RegRef{0, 1})}, Dests: []RegRef{{2, 3}}, Offset: 40}
	s := op.String()
	for _, want := range []string{"ld.wf", "c2.r3", "c0.r1", "@40"} {
		if !strings.Contains(s, want) {
			t.Errorf("op string %q missing %q", s, want)
		}
	}
	br := &Op{Code: OpJmp, TargetLabel: "loop"}
	if !strings.Contains(br.String(), "loop") {
		t.Errorf("branch string %q missing label", br.String())
	}
}
