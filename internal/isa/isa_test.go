package isa

import (
	"math"
	"testing"
	"testing/quick"

	"pcoup/internal/machine"
)

func TestValueRoundTrip(t *testing.T) {
	intCheck := func(i int64) bool {
		v, err := ParseValue(Int(i).String())
		return err == nil && !v.IsFloat && v.I == i
	}
	if err := quick.Check(intCheck, nil); err != nil {
		t.Errorf("int round trip: %v", err)
	}
	floatCheck := func(f float64) bool {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true // not representable in program text; skip
		}
		v, err := ParseValue(Float(f).String())
		return err == nil && v.IsFloat && v.F == f
	}
	if err := quick.Check(floatCheck, nil); err != nil {
		t.Errorf("float round trip: %v", err)
	}
}

func TestValueTagPreserved(t *testing.T) {
	// A float that happens to be integral must parse back as a float.
	v, err := ParseValue(Float(3).String())
	if err != nil || !v.IsFloat || v.F != 3 {
		t.Errorf("Float(3) round trip = %+v, %v", v, err)
	}
}

func TestValueConversions(t *testing.T) {
	if Int(7).AsFloat() != 7.0 {
		t.Error("Int.AsFloat")
	}
	if Float(7.9).AsInt() != 7 {
		t.Error("Float.AsInt should truncate")
	}
	if !Int(1).Truthy() || Int(0).Truthy() {
		t.Error("int Truthy")
	}
	if !Float(0.5).Truthy() || Float(0).Truthy() {
		t.Error("float Truthy")
	}
	if !Bool(true).Equal(Int(1)) || !Bool(false).Equal(Int(0)) {
		t.Error("Bool")
	}
	if Int(1).Equal(Float(1)) {
		t.Error("Equal must distinguish tags")
	}
}

func TestEvalIntegerOps(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b int64
		want int64
	}{
		{OpAdd, 3, 4, 7}, {OpSub, 3, 4, -1}, {OpMul, 3, 4, 12},
		{OpDiv, 12, 4, 3}, {OpDiv, 7, 2, 3}, {OpDiv, 7, 0, 0},
		{OpMod, 7, 3, 1}, {OpMod, 7, 0, 0},
		{OpAnd, 6, 3, 2}, {OpOr, 6, 3, 7}, {OpXor, 6, 3, 5},
		{OpShl, 1, 4, 16}, {OpShr, 16, 4, 1},
		{OpSlt, 1, 2, 1}, {OpSlt, 2, 2, 0},
		{OpSle, 2, 2, 1}, {OpSeq, 2, 2, 1}, {OpSne, 2, 2, 0},
		{OpSgt, 3, 2, 1}, {OpSge, 2, 3, 0},
	}
	for _, c := range cases {
		got, err := Eval(c.op, []Value{Int(c.a), Int(c.b)})
		if err != nil {
			t.Errorf("%v(%d,%d): %v", c.op, c.a, c.b, err)
			continue
		}
		if got.IsFloat || got.I != c.want {
			t.Errorf("%v(%d,%d) = %v, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalUnaryOps(t *testing.T) {
	if v, _ := Eval(OpNeg, []Value{Int(5)}); v.I != -5 {
		t.Errorf("neg = %v", v)
	}
	if v, _ := Eval(OpNot, []Value{Int(0)}); v.I != -1 {
		t.Errorf("not = %v", v)
	}
	if v, _ := Eval(OpFNeg, []Value{Float(2.5)}); v.F != -2.5 {
		t.Errorf("fneg = %v", v)
	}
	if v, _ := Eval(OpFAbs, []Value{Float(-2.5)}); v.F != 2.5 {
		t.Errorf("fabs = %v", v)
	}
	if v, _ := Eval(OpItoF, []Value{Int(3)}); !v.IsFloat || v.F != 3 {
		t.Errorf("itof = %v", v)
	}
	if v, _ := Eval(OpFtoI, []Value{Float(3.7)}); v.IsFloat || v.I != 3 {
		t.Errorf("ftoi = %v", v)
	}
	if v, _ := Eval(OpMov, []Value{Float(1.5)}); !v.IsFloat || v.F != 1.5 {
		t.Errorf("mov must preserve the tag: %v", v)
	}
}

func TestEvalFloatOps(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b float64
		want float64
	}{
		{OpFAdd, 1.5, 2.25, 3.75}, {OpFSub, 1.5, 2.25, -0.75},
		{OpFMul, 1.5, 2, 3}, {OpFDiv, 3, 2, 1.5},
	}
	for _, c := range cases {
		got, err := Eval(c.op, []Value{Float(c.a), Float(c.b)})
		if err != nil || !got.IsFloat || got.F != c.want {
			t.Errorf("%v(%v,%v) = %v, %v; want %v", c.op, c.a, c.b, got, err, c.want)
		}
	}
	// Float comparisons produce integer 0/1.
	if v, _ := Eval(OpFlt, []Value{Float(1), Float(2)}); v.IsFloat || v.I != 1 {
		t.Errorf("flt = %v", v)
	}
	if v, _ := Eval(OpFge, []Value{Float(1), Float(2)}); v.I != 0 {
		t.Errorf("fge = %v", v)
	}
}

func TestEvalRejectsNonPure(t *testing.T) {
	for _, op := range []Opcode{OpLoad, OpStore, OpJmp, OpBt, OpBf, OpFork, OpHalt} {
		if _, err := Eval(op, nil); err == nil {
			t.Errorf("Eval accepted non-pure opcode %v", op)
		}
	}
	if _, err := Eval(OpAdd, []Value{Int(1)}); err == nil {
		t.Error("Eval accepted wrong operand count")
	}
}

func TestOpcodeMetadata(t *testing.T) {
	for _, op := range Opcodes() {
		if op.String() == "" {
			t.Errorf("opcode %d has no name", op)
		}
		back, err := ParseOpcode(op.String())
		if err != nil || back != op {
			t.Errorf("ParseOpcode(%q) = %v, %v", op.String(), back, err)
		}
		switch op.Unit() {
		case machine.IU, machine.FPU, machine.MEM, machine.BR:
		default:
			t.Errorf("opcode %v has invalid unit %v", op, op.Unit())
		}
	}
	if _, err := ParseOpcode("nosuchop"); err == nil {
		t.Error("ParseOpcode accepted bogus name")
	}
}

func TestEvalDivModByZeroPolicy(t *testing.T) {
	// Integer division by zero yields zero (no trap); float division by
	// zero follows IEEE.
	if v, _ := Eval(OpDiv, []Value{Int(5), Int(0)}); v.I != 0 {
		t.Errorf("div by zero = %v", v)
	}
	v, _ := Eval(OpFDiv, []Value{Float(1), Float(0)})
	if !math.IsInf(v.F, 1) {
		t.Errorf("fdiv by zero = %v, want +Inf", v)
	}
}

func TestSyncFlavorRoundTrip(t *testing.T) {
	for _, s := range []SyncFlavor{SyncNone, SyncWaitFull, SyncConsume, SyncProduce} {
		back, err := ParseSyncFlavor(s.String())
		if err != nil || back != s {
			t.Errorf("sync flavor round trip failed for %v", s)
		}
	}
	if _, err := ParseSyncFlavor("zzz"); err == nil {
		t.Error("ParseSyncFlavor accepted bogus flavor")
	}
}

func TestOpAccessors(t *testing.T) {
	op := &Op{
		Code: OpLoad, Sync: SyncConsume,
		Srcs:   []Operand{Reg(RegRef{1, 2}), ImmInt(5)},
		Dests:  []RegRef{{0, 3}},
		Offset: 100,
	}
	if !op.IsMemory() || op.IsBranch() {
		t.Error("load classification")
	}
	if got := op.SrcRegs(); len(got) != 1 || got[0] != (RegRef{1, 2}) {
		t.Errorf("SrcRegs = %v", got)
	}
	clone := op.Clone()
	clone.Srcs[0] = ImmInt(9)
	clone.Dests[0] = RegRef{5, 5}
	if op.Srcs[0].Kind != OperandReg || op.Dests[0] != (RegRef{0, 3}) {
		t.Error("Clone shares storage")
	}
	br := &Op{Code: OpBt}
	if !br.IsBranch() || br.IsMemory() {
		t.Error("branch classification")
	}
}

func TestProgramValidate(t *testing.T) {
	mk := func() *Program {
		return &Program{
			Name: "p",
			Segments: []*ThreadCode{{
				Name: "main",
				Instrs: []Instruction{
					{Ops: []*Op{
						{Code: OpAdd, Unit: 0, Srcs: []Operand{ImmInt(1), ImmInt(2)}, Dests: []RegRef{{0, 0}}},
					}},
					{Ops: []*Op{nil, {Code: OpHalt, Unit: 1}}},
				},
			}},
			MemWords: 64,
		}
	}
	if err := mk().Validate(4, 2, 2); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}

	p := mk()
	p.Segments[0].Instrs[0].Ops[0].Unit = 3 // tag mismatch with slot
	if err := p.Validate(4, 2, 2); err == nil {
		t.Error("accepted op with mismatched unit tag")
	}

	p = mk()
	p.Segments[0].Instrs[0].Ops[0].Dests = []RegRef{{0, 0}, {1, 0}, {0, 1}}
	if err := p.Validate(4, 2, 2); err == nil {
		t.Error("accepted op exceeding MaxDests")
	}

	p = mk()
	p.Segments[0].Instrs[0].Ops[0].Dests = []RegRef{{7, 0}}
	if err := p.Validate(4, 2, 2); err == nil {
		t.Error("accepted destination in nonexistent cluster")
	}

	p = mk()
	p.Segments[0].Instrs[1].Ops[1] = &Op{Code: OpJmp, Unit: 1, Target: 99}
	if err := p.Validate(4, 2, 2); err == nil {
		t.Error("accepted branch target out of range")
	}

	p = mk()
	p.Segments[0].Instrs[1].Ops[1] = &Op{Code: OpFork, Unit: 1, Target: 5}
	if err := p.Validate(4, 2, 2); err == nil {
		t.Error("accepted fork target out of range")
	}

	p = &Program{Name: "empty"}
	if err := p.Validate(4, 2, 2); err == nil {
		t.Error("accepted program with no segments")
	}
}

func TestSegmentIndexAndTotals(t *testing.T) {
	p := &Program{Segments: []*ThreadCode{{Name: "main"}, {Name: "w"}}}
	if i, ok := p.SegmentIndex("w"); !ok || i != 1 {
		t.Errorf("SegmentIndex = %d, %v", i, ok)
	}
	if _, ok := p.SegmentIndex("zzz"); ok {
		t.Error("SegmentIndex found missing segment")
	}
	p.Segments[0].Instrs = []Instruction{{Ops: []*Op{{Code: OpHalt}, nil}}}
	if got := p.TotalOps(); got != 1 {
		t.Errorf("TotalOps = %d", got)
	}
}
