// Package progfuzz generates random, well-typed, race-free programs in
// the source language and checks them differentially: each program runs
// on the tree-walking reference interpreter (internal/oracle) and on the
// full compiler + simulator pipeline across all five machine modes, and
// every declared global's final contents must agree exactly.
//
// The generator is the repo's untrusted-input proving ground: it feeds
// the native Go fuzz targets, the checked-in corpus replayed by `go
// test`, the `pcbench -exp fuzzdiff` experiment, and `pcq flood
// -programs` synthetic traffic for fleet chaos/load runs.
package progfuzz

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenOptions shapes generated programs.
type GenOptions struct {
	// MaxArraySize caps array sizes (rounded to a power of two so index
	// masking stays valid). 0 means 16.
	MaxArraySize int64
	// WideForall lets parallel constructs span a whole array rather than
	// the first 8 elements — with MaxArraySize raised this produces
	// programs with hundreds of threads.
	WideForall bool
	// Stmts is the base number of top-level statements in main (a small
	// random count is added). 0 means 4.
	Stmts int
}

// progGen holds the generator state for one program.
type progGen struct {
	r        *rand.Rand
	opts     GenOptions
	intVars  []string // assignable integer variables
	fltVars  []string // assignable float variables
	roInts   []string // read-only integer names (loop indices)
	arrays   []genArray
	varSeq   int
	inForall string // forall index var when inside a parallel body
}

type genArray struct {
	name  string
	size  int64 // power of two, so (and idx size-1) bounds indices
	float bool
}

func (g *progGen) pick(xs []string) string { return xs[g.r.Intn(len(xs))] }

func (g *progGen) newVar(float bool) string {
	g.varSeq++
	name := fmt.Sprintf("v%d", g.varSeq)
	if float {
		g.fltVars = append(g.fltVars, name)
	} else {
		g.intVars = append(g.intVars, name)
	}
	return name
}

// intExpr produces an integer expression over in-scope names.
func (g *progGen) intExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(21)-10)
		case 1:
			pool := append(append([]string{}, g.intVars...), g.roInts...)
			if len(pool) > 0 {
				return g.pick(pool)
			}
			return fmt.Sprintf("%d", g.r.Intn(9))
		default:
			arr := g.intArrays()
			if len(arr) == 0 {
				return fmt.Sprintf("%d", g.r.Intn(9))
			}
			a := arr[g.r.Intn(len(arr))]
			return fmt.Sprintf("(aref %s %s)", a.name, g.index(a, depth-1))
		}
	}
	ops := []string{"+", "-", "*", "and", "or", "xor", "%", "/"}
	op := ops[g.r.Intn(len(ops))]
	return fmt.Sprintf("(%s %s %s)", op, g.intExpr(depth-1), g.intExpr(depth-1))
}

// fltExpr produces a float expression.
func (g *progGen) fltExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d.%d", g.r.Intn(9), 25*g.r.Intn(4))
		case 1:
			if len(g.fltVars) > 0 {
				return g.pick(g.fltVars)
			}
			return "1.5"
		default:
			arr := g.fltArrays()
			if len(arr) == 0 {
				return fmt.Sprintf("(float %s)", g.intExpr(depth-1))
			}
			a := arr[g.r.Intn(len(arr))]
			return fmt.Sprintf("(aref %s %s)", a.name, g.index(a, depth-1))
		}
	}
	ops := []string{"+", "-", "*"}
	op := ops[g.r.Intn(len(ops))]
	return fmt.Sprintf("(%s %s %s)", op, g.fltExpr(depth-1), g.fltExpr(depth-1))
}

// condExpr produces an int 0/1 expression.
func (g *progGen) condExpr(depth int) string {
	cmp := []string{"<", "<=", "=", "!=", ">", ">="}
	if g.r.Intn(2) == 0 && len(g.fltVars) > 0 {
		return fmt.Sprintf("(%s %s %s)", cmp[g.r.Intn(len(cmp))], g.fltExpr(depth-1), g.fltExpr(depth-1))
	}
	return fmt.Sprintf("(%s %s %s)", cmp[g.r.Intn(len(cmp))], g.intExpr(depth-1), g.intExpr(depth-1))
}

// exprAvoiding generates an expression that does not read v (used when v
// may be freshly declared by the enclosing assignment).
func (g *progGen) exprAvoiding(v string, float bool) string {
	pool := &g.intVars
	if float {
		pool = &g.fltVars
	}
	saved := *pool
	var filtered []string
	for _, x := range saved {
		if x != v {
			filtered = append(filtered, x)
		}
	}
	*pool = filtered
	var e string
	if float {
		e = g.fltExpr(2)
	} else {
		e = g.intExpr(2)
	}
	*pool = saved
	return e
}

// index produces a guaranteed-in-range index expression for the array.
func (g *progGen) index(a genArray, depth int) string {
	return fmt.Sprintf("(and %s %d)", g.intExpr(depth), a.size-1)
}

func (g *progGen) intArrays() []genArray {
	var out []genArray
	for _, a := range g.arrays {
		if !a.float {
			out = append(out, a)
		}
	}
	return out
}

func (g *progGen) fltArrays() []genArray {
	var out []genArray
	for _, a := range g.arrays {
		if a.float {
			out = append(out, a)
		}
	}
	return out
}

func (g *progGen) stmt(indent string, depth int) string {
	choice := g.r.Intn(10)
	switch {
	case choice < 3: // assignment
		if g.r.Intn(2) == 0 || len(g.fltVars) == 0 {
			var v string
			if g.r.Intn(3) != 0 && len(g.intVars) > 0 {
				v = g.pick(g.intVars)
			} else {
				v = g.newVar(false)
			}
			// The expression must not read the fresh variable itself.
			return fmt.Sprintf("%s(set %s %s)", indent, v, g.exprAvoiding(v, false))
		}
		var v string
		if g.r.Intn(3) != 0 && len(g.fltVars) > 0 {
			v = g.pick(g.fltVars)
		} else {
			v = g.newVar(true)
		}
		return fmt.Sprintf("%s(set %s %s)", indent, v, g.exprAvoiding(v, true))
	case choice < 6: // array store
		a := g.arrays[g.r.Intn(len(g.arrays))]
		val := g.intExpr(2)
		if a.float {
			val = g.fltExpr(2)
		}
		return fmt.Sprintf("%s(aset %s %s %s)", indent, a.name, g.index(a, 1), val)
	case choice < 7 && depth > 0: // if
		// Variables created inside conditional arms must not leak into
		// later statements (they may never be assigned at runtime).
		ni, nf := len(g.intVars), len(g.fltVars)
		cond := g.condExpr(2)
		thenS := g.stmt(indent+"    ", depth-1)
		g.intVars, g.fltVars = g.intVars[:ni], g.fltVars[:nf]
		s := fmt.Sprintf("%s(if %s\n%s\n", indent, cond, thenS)
		if g.r.Intn(2) == 0 {
			s += g.stmt(indent+"    ", depth-1) + "\n"
			g.intVars, g.fltVars = g.intVars[:ni], g.fltVars[:nf]
		}
		return s + indent + ")"
	case choice < 8 && depth > 0: // bounded for loop
		ni, nf, nr := len(g.intVars), len(g.fltVars), len(g.roInts)
		v := fmt.Sprintf("i%d", g.varSeq)
		g.varSeq++
		g.roInts = append(g.roInts, v)
		body := g.stmt(indent+"  ", depth-1)
		g.intVars, g.fltVars, g.roInts = g.intVars[:ni], g.fltVars[:nf], g.roInts[:nr]
		return fmt.Sprintf("%s(for (%s 0 %d)\n%s\n%s)", indent, v, 2+g.r.Intn(5), body, indent)
	case choice < 9 && depth > 0: // unroll
		ni, nf, nr := len(g.intVars), len(g.fltVars), len(g.roInts)
		v := fmt.Sprintf("u%d", g.varSeq)
		g.varSeq++
		g.roInts = append(g.roInts, v)
		body := g.stmt(indent+"  ", depth-1)
		g.intVars, g.fltVars, g.roInts = g.intVars[:ni], g.fltVars[:nf], g.roInts[:nr]
		return fmt.Sprintf("%s(unroll (%s 0 %d)\n%s\n%s)", indent, v, 2+g.r.Intn(3), body, indent)
	default: // while via bounded counter
		// Generate the body before registering the counter so nothing in
		// the body can reassign (or read) it — the loop must terminate.
		body := g.stmt(indent+"    ", depth-1)
		v := g.newVar(false)
		return fmt.Sprintf("%s(begin\n%s  (set %s 0)\n%s  (while (< %s %d)\n%s\n%s    (set %s (+ %s 1))))",
			indent, indent, v, indent, v, 2+g.r.Intn(4), body, indent, v, v)
	}
}

// forallStmt emits a race-free parallel construct: each iteration writes
// only out[i] for its own index i, reading any other arrays. In wide
// mode the span is the whole array — with large arrays this is where the
// hundreds-of-threads programs come from.
func (g *progGen) forallStmt(indent string) string {
	outs := g.arrays
	a := outs[g.r.Intn(len(outs))]
	n := a.size
	if !g.opts.WideForall && n > 8 {
		n = 8
	}
	saved := g.arrays
	// The body may read every array except the one it writes (write-write
	// races are excluded by indexing with the forall index, but
	// read-write races with other iterations must be avoided too).
	var readable []genArray
	for _, x := range g.arrays {
		if x.name != a.name {
			readable = append(readable, x)
		}
	}
	g.arrays = readable
	savedInt, savedFlt, savedRo := g.intVars, g.fltVars, g.roInts
	g.intVars = nil
	g.fltVars = nil
	g.roInts = []string{"pi"}
	val := g.intExpr(2)
	if a.float {
		val = g.fltExpr(2)
	}
	g.arrays = saved
	g.intVars, g.fltVars, g.roInts = savedInt, savedFlt, savedRo
	// Static foralls fork one thread per iteration; keep them at hardware
	// scale unless wide mode explicitly asks for a thread storm. Runtime
	// foralls feed iterations through the worker/mailbox protocol, so
	// width costs cycles, not segments.
	if g.r.Intn(2) == 0 {
		return fmt.Sprintf("%s(forall-static (pi 0 %d)\n%s  (aset %s pi %s))", indent, n, indent, a.name, val)
	}
	// Runtime forall: same race-free shape, but the bounds reach the
	// mailbox/worker protocol (the index arrives via a consume load).
	return fmt.Sprintf("%s(begin\n%s  (set fb %d)\n%s  (forall (pi 0 fb)\n%s    (aset %s pi %s)))",
		indent, indent, n, indent, indent, a.name, val)
}

// genProcs emits a few helper procedures over the declared arrays and
// registers call forms for the statement generator. Procedures exercise
// macro expansion, parameter binding, and (return ...).
func (g *progGen) genProcs(b *strings.Builder) (intCalls, fltCalls []string) {
	// An int-valued procedure of one int parameter.
	fmt.Fprintf(b, "  (def (ih x)\n    (return (+ (* x 3) (xor x 5))))\n")
	intCalls = append(intCalls, "(ih %INT%)")
	// A float-valued procedure of one float and one int parameter.
	fmt.Fprintf(b, "  (def (fh a k)\n    (set t (* a 0.5))\n    (return (+ t (float k))))\n")
	fltCalls = append(fltCalls, "(fh %FLT% %INT%)")
	return intCalls, fltCalls
}

// callExpr instantiates a procedure-call template with fresh operand
// expressions.
func (g *progGen) callExpr(tpl string) string {
	out := strings.ReplaceAll(tpl, "%INT%", g.intExpr(1))
	out = strings.ReplaceAll(out, "%FLT%", g.fltExpr(1))
	return out
}

// Generate builds one complete random program from the seed with default
// options. The same seed always yields the same program.
func Generate(seed int64) string { return GenerateOpts(seed, GenOptions{}) }

// GenerateOpts builds one complete random program under o.
func GenerateOpts(seed int64, o GenOptions) string {
	if o.MaxArraySize <= 0 {
		o.MaxArraySize = 16
	}
	if o.Stmts <= 0 {
		o.Stmts = 4
	}
	// Round the array cap down to a power of two ≥ 8.
	sizes := []int64{8}
	for s := int64(16); s <= o.MaxArraySize; s *= 2 {
		sizes = append(sizes, s)
	}
	r := rand.New(rand.NewSource(seed))
	g := &progGen{r: r, opts: o}
	var b strings.Builder
	b.WriteString("(program fuzz\n")
	nArrays := 2 + r.Intn(3)
	for i := 0; i < nArrays; i++ {
		a := genArray{
			name:  fmt.Sprintf("g%d", i),
			size:  sizes[r.Intn(len(sizes))],
			float: r.Intn(2) == 0,
		}
		g.arrays = append(g.arrays, a)
		typ := "int"
		if a.float {
			typ = "float"
		}
		fmt.Fprintf(&b, "  (global %s (array %s %d) (init", a.name, typ, a.size)
		for j := int64(0); j < a.size; j++ {
			if a.float {
				fmt.Fprintf(&b, " %d.%d", r.Intn(7), 5*r.Intn(2))
			} else {
				fmt.Fprintf(&b, " %d", r.Intn(13)-6)
			}
		}
		b.WriteString("))\n")
	}
	intCalls, fltCalls := g.genProcs(&b)
	b.WriteString("  (def (main)\n")
	// Seed a few variables so expressions have material.
	fmt.Fprintf(&b, "    (set s0 %d)\n", r.Intn(10))
	fmt.Fprintf(&b, "    (set f0 %s)\n", "2.25")
	g.intVars = append(g.intVars, "s0")
	g.fltVars = append(g.fltVars, "f0")
	nStmts := o.Stmts + r.Intn(6)
	for i := 0; i < nStmts; i++ {
		switch {
		case r.Intn(6) == 0:
			b.WriteString(g.forallStmt("    ") + "\n")
		case r.Intn(5) == 0:
			// Assignment from an inlined procedure call (build the call
			// before declaring the target so it cannot read it).
			if r.Intn(2) == 0 {
				call := g.callExpr(intCalls[0])
				fmt.Fprintf(&b, "    (set %s %s)\n", g.newVar(false), call)
			} else {
				call := g.callExpr(fltCalls[0])
				fmt.Fprintf(&b, "    (set %s %s)\n", g.newVar(true), call)
			}
		default:
			b.WriteString(g.stmt("    ", 2) + "\n")
		}
	}
	b.WriteString("))\n")
	return b.String()
}
