package progfuzz

import (
	"context"
	"testing"
)

// FuzzDiff is the native fuzz entry: any seed the fuzzer invents must
// generate a program whose simulated memory image matches the reference
// interpreter under every machine mode. The f.Add seeds double as a
// smoke corpus replayed in normal `go test` runs; the full checked-in
// corpus lives in corpus_test.go.
func FuzzDiff(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, false)
	}
	f.Add(int64(3), true)
	f.Fuzz(func(t *testing.T, seed int64, wide bool) {
		o := GenOptions{}
		if wide {
			o = GenOptions{MaxArraySize: 128, WideForall: true}
		}
		src, err := DiffSeed(context.Background(), seed, o, 0)
		if err != nil {
			t.Fatalf("seed %d (wide=%v): %v\n%s", seed, wide, err, src)
		}
	})
}
