package progfuzz

import (
	"context"
	"fmt"
	"testing"

	"pcoup/internal/machine"
)

// dynDiffPresets are the dynamic-scheduling machine presets the
// differential corpus must hold under: out-of-order windows, branch
// speculation, and prefetching are microarchitectural, so any memory-
// image divergence from the reference interpreter is a subsystem bug
// (wrong-path state leaking, hazard rules too weak, prefetcher touching
// architectural state).
var dynDiffPresets = []machine.DynamicModel{
	machine.DynOoO,
	machine.DynTAGE,
	machine.DynPrefetch,
	machine.DynAll,
}

// TestDiffCorpusCoupledDyn runs the seeded corpus against the dynamic
// presets, rotating the preset per seed so every preset sees a spread of
// program shapes. Every mode of every program must match the oracle.
func TestDiffCorpusCoupledDyn(t *testing.T) {
	n := int64(120)
	if testing.Short() {
		n = 16
	}
	const shards = 8
	for shard := int64(0); shard < shards; shard++ {
		shard := shard
		t.Run(fmt.Sprintf("shard%d", shard), func(t *testing.T) {
			t.Parallel()
			for seed := shard; seed < n; seed += shards {
				d := dynDiffPresets[seed%int64(len(dynDiffPresets))]
				cfg := machine.Baseline().WithDynamic(d)
				src := GenerateOpts(seed, GenOptions{})
				if err := DiffProgram(context.Background(), src, cfg, 0); err != nil {
					t.Fatalf("seed %d (dynamic %+v): %v\n%s", seed, d, err, src)
				}
			}
		})
	}
}

// TestDiffWideCoupledDyn pushes the hundreds-of-threads regime through
// the full CoupledDyn preset: every spawned thread gets its own window,
// and the shared predictor and prefetcher see heavily interleaved
// streams.
func TestDiffWideCoupledDyn(t *testing.T) {
	n := int64(8)
	if testing.Short() {
		n = 2
	}
	wide := GenOptions{MaxArraySize: 256, WideForall: true}
	cfg := machine.Baseline().WithDynamic(machine.DynAll)
	for seed := int64(0); seed < n; seed++ {
		src := GenerateOpts(2_000_000+seed, wide)
		if err := DiffProgram(context.Background(), src, cfg, 0); err != nil {
			t.Fatalf("wide seed %d: %v\n%s", seed, err, src)
		}
	}
}
