package progfuzz

import (
	"fmt"
	"io"

	"pcoup/internal/experiments"
	"pcoup/internal/machine"
)

// FuzzDiffResult summarizes one fuzzdiff experiment run.
type FuzzDiffResult struct {
	Seeds       int      `json:"seeds"`
	WideSeeds   int      `json:"wide_seeds"`
	Modes       int      `json:"modes"`
	Checks      int      `json:"checks"` // programs × modes simulated
	Divergences int      `json:"divergences"`
	Failures    []string `json:"failures,omitempty"`
}

// fuzzDiffSeeds is the per-run seed count of the pcbench experiment (the
// checked-in regression corpus in corpus_test.go is larger).
const fuzzDiffSeeds = 100

// init registers the fuzzdiff experiment. The registry lives in
// internal/experiments, which progfuzz imports, so the experiment cannot
// be defined there without a cycle; pcbench and pcserved link it in via
// a blank import.
func init() {
	experiments.Register(experiments.Experiment{
		Name:      "fuzzdiff",
		Brief:     "differential fuzz: generated programs, interpreter vs sim across all five modes (extension)",
		SkipInAll: true,
		Run: func(rc *experiments.RunContext) (any, error) {
			return DiffSweep(rc, fuzzDiffSeeds)
		},
		Write: func(w io.Writer, _ *machine.Config, rows any) {
			r := rows.(*FuzzDiffResult)
			fmt.Fprintf(w, "fuzzdiff: %d programs (%d wide) x %d modes = %d checks, %d divergences\n",
				r.Seeds+r.WideSeeds, r.WideSeeds, r.Modes, r.Checks, r.Divergences)
			for _, f := range r.Failures {
				fmt.Fprintf(w, "  FAIL %s\n", f)
			}
		},
	})
}

// DiffSweep generates n programs (plus n/10 wide hundreds-of-threads
// variants) and checks each differentially against the oracle across all
// machine modes on rc's machine configuration. A non-nil error means at
// least one divergence or pipeline failure — always a real bug.
func DiffSweep(rc *experiments.RunContext, n int) (*FuzzDiffResult, error) {
	ctx := rc.Context()
	modes := len(experiments.Modes())
	res := &FuzzDiffResult{Seeds: n, WideSeeds: n / 10, Modes: modes}
	run := func(seed int64, o GenOptions) error {
		src, err := DiffSeed(ctx, seed, o, 0)
		if err != nil {
			res.Divergences++
			res.Failures = append(res.Failures, fmt.Sprintf("seed %d: %v", seed, err))
			if len(res.Failures) >= 10 {
				return fmt.Errorf("progfuzz: %d failures (first: %s)\n%s", res.Divergences, res.Failures[0], src)
			}
		}
		res.Checks += modes
		return ctx.Err()
	}
	for seed := int64(0); seed < int64(n); seed++ {
		if err := run(seed, GenOptions{}); err != nil {
			return res, err
		}
	}
	wide := GenOptions{MaxArraySize: 512, WideForall: true}
	for seed := int64(0); seed < int64(res.WideSeeds); seed++ {
		if err := run(1_000_000+seed, wide); err != nil {
			return res, err
		}
	}
	if res.Divergences > 0 {
		return res, fmt.Errorf("progfuzz: %d divergences: %s", res.Divergences, res.Failures[0])
	}
	return res, nil
}
