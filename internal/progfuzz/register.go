package progfuzz

import (
	"context"
	"fmt"
	"io"

	"pcoup/internal/experiments"
	"pcoup/internal/machine"
	"pcoup/internal/parexec"
)

// FuzzDiffResult summarizes one fuzzdiff experiment run.
type FuzzDiffResult struct {
	Seeds       int      `json:"seeds"`
	WideSeeds   int      `json:"wide_seeds"`
	Modes       int      `json:"modes"`
	Checks      int      `json:"checks"` // programs × modes simulated
	Divergences int      `json:"divergences"`
	Failures    []string `json:"failures,omitempty"`
}

// fuzzDiffSeeds is the per-run seed count of the pcbench experiment (the
// checked-in regression corpus in corpus_test.go is larger).
const fuzzDiffSeeds = 100

// init registers the fuzzdiff experiment. The registry lives in
// internal/experiments, which progfuzz imports, so the experiment cannot
// be defined there without a cycle; pcbench and pcserved link it in via
// a blank import.
func init() {
	experiments.Register(experiments.Experiment{
		Name:      "fuzzdiff",
		Brief:     "differential fuzz: generated programs, interpreter vs sim across all five modes (extension)",
		SkipInAll: true,
		Run: func(rc *experiments.RunContext) (any, error) {
			return DiffSweep(rc, fuzzDiffSeeds)
		},
		Write: func(w io.Writer, _ *machine.Config, rows any) {
			r := rows.(*FuzzDiffResult)
			fmt.Fprintf(w, "fuzzdiff: %d programs (%d wide) x %d modes = %d checks, %d divergences\n",
				r.Seeds+r.WideSeeds, r.WideSeeds, r.Modes, r.Checks, r.Divergences)
			for _, f := range r.Failures {
				fmt.Fprintf(w, "  FAIL %s\n", f)
			}
		},
	})
}

// DiffSweep generates n programs (plus n/10 wide hundreds-of-threads
// variants) and checks each differentially against the oracle across all
// machine modes on rc's machine configuration. A non-nil error means at
// least one divergence or pipeline failure — always a real bug.
//
// Seeds execute through the shared parallel engine (width from rc's
// context: -j, -sweep-parallelism); outcomes fold into the result
// strictly in seed order, so counters, the failure list, and the
// stop-after-10-failures cutoff are identical to sequential execution.
func DiffSweep(rc *experiments.RunContext, n int) (*FuzzDiffResult, error) {
	ctx := rc.Context()
	modes := len(experiments.Modes())
	res := &FuzzDiffResult{Seeds: n, WideSeeds: n / 10, Modes: modes}

	type item struct {
		seed int64
		opts GenOptions
	}
	items := make([]item, 0, n+res.WideSeeds)
	for seed := int64(0); seed < int64(n); seed++ {
		items = append(items, item{seed: seed})
	}
	wide := GenOptions{MaxArraySize: 512, WideForall: true}
	for seed := int64(0); seed < int64(res.WideSeeds); seed++ {
		items = append(items, item{seed: 1_000_000 + seed, opts: wide})
	}

	type outcome struct {
		src string
		err error
	}
	err := parexec.Stream(ctx, len(items),
		func(ctx context.Context, i int) (outcome, error) {
			src, err := DiffSeed(ctx, items[i].seed, items[i].opts, 0)
			return outcome{src: src, err: err}, nil
		},
		func(i int, o outcome) error {
			if o.err != nil {
				res.Divergences++
				res.Failures = append(res.Failures, fmt.Sprintf("seed %d: %v", items[i].seed, o.err))
				if len(res.Failures) >= 10 {
					return fmt.Errorf("progfuzz: %d failures (first: %s)\n%s", res.Divergences, res.Failures[0], o.src)
				}
			}
			res.Checks += modes
			return ctx.Err()
		})
	if err != nil {
		return res, err
	}
	if res.Divergences > 0 {
		return res, fmt.Errorf("progfuzz: %d divergences: %s", res.Divergences, res.Failures[0])
	}
	return res, nil
}
