package progfuzz

import (
	"context"
	"fmt"
	"testing"
)

// corpusSeeds is the checked-in differential corpus: seeds 0..499 (plus
// the wide tail below) must produce identical memory images on the
// interpreter and the simulator across all five machine modes, with
// zero divergences. The generator is deterministic per seed, so the
// seed range IS the corpus.
const corpusSeeds = 500

// corpusShards bounds test wall-clock by running the corpus in parallel
// slices.
const corpusShards = 16

func TestDiffCorpus(t *testing.T) {
	n := int64(corpusSeeds)
	if testing.Short() {
		n = 48
	}
	for shard := int64(0); shard < corpusShards; shard++ {
		shard := shard
		t.Run(fmt.Sprintf("shard%02d", shard), func(t *testing.T) {
			t.Parallel()
			for seed := shard; seed < n; seed += corpusShards {
				src, err := DiffSeed(context.Background(), seed, GenOptions{}, 0)
				if err != nil {
					t.Fatalf("seed %d: %v\n%s", seed, err, src)
				}
			}
		})
	}
}

// TestDiffCorpusWide covers the hundreds-of-threads regime: wide foralls
// over large arrays, so forall-static fans out one thread per element
// and runtime foralls push long index streams through the mailboxes.
func TestDiffCorpusWide(t *testing.T) {
	n := int64(24)
	if testing.Short() {
		n = 4
	}
	wide := GenOptions{MaxArraySize: 256, WideForall: true}
	for shard := int64(0); shard < 8; shard++ {
		shard := shard
		t.Run(fmt.Sprintf("shard%d", shard), func(t *testing.T) {
			t.Parallel()
			for seed := shard; seed < n; seed += 8 {
				src, err := DiffSeed(context.Background(), 1_000_000+seed, wide, 0)
				if err != nil {
					t.Fatalf("wide seed %d: %v\n%s", seed, err, src)
				}
			}
		})
	}
}
