package progfuzz

import (
	"context"
	"fmt"
	"strings"

	"pcoup/internal/compiler"
	"pcoup/internal/experiments"
	"pcoup/internal/machine"
	"pcoup/internal/oracle"
	"pcoup/internal/sim"
)

// DefaultDiffBudget bounds each simulated mode of one differential
// check. Generated programs finish in thousands of cycles; the budget
// only exists so a pipeline bug cannot hang the fuzzer.
const DefaultDiffBudget = 5_000_000

// DivergenceError reports a differential mismatch: the simulator's final
// memory image differs from the reference interpreter's. Any occurrence
// is a compiler or simulator bug.
type DivergenceError struct {
	Mode   experiments.Mode
	Global string
	Index  int64
	Sim    string
	Oracle string
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("progfuzz: divergence under %s: %s[%d] = %s, oracle says %s",
		e.Mode, e.Global, e.Index, e.Sim, e.Oracle)
}

// DiffProgram runs src on the reference interpreter and on the compiler
// + simulator under every machine mode, comparing the final contents of
// each declared global. cfg selects the machine (nil = baseline);
// maxCycles ≤ 0 selects DefaultDiffBudget.
func DiffProgram(ctx context.Context, src string, cfg *machine.Config, maxCycles int64) error {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	if maxCycles <= 0 {
		maxCycles = DefaultDiffBudget
	}
	want, err := oracle.Run(src)
	if err != nil {
		return fmt.Errorf("progfuzz: oracle: %w", err)
	}
	for _, mode := range experiments.Modes() {
		if err := ctx.Err(); err != nil {
			return err
		}
		opts := compiler.Options{Mode: experiments.CompilerMode(mode)}
		prog, _, err := compiler.Compile(src, cfg, opts)
		if err != nil {
			return fmt.Errorf("progfuzz: compile under %s: %w", mode, err)
		}
		s, err := sim.New(cfg, prog, sim.WithContext(ctx))
		if err != nil {
			return fmt.Errorf("progfuzz: sim under %s: %w", mode, err)
		}
		if _, err := s.Run(maxCycles); err != nil {
			return fmt.Errorf("progfuzz: run under %s: %w", mode, err)
		}
		addrs := map[string]int64{}
		for _, d := range prog.Data {
			addrs[d.Name] = d.Addr
		}
		for name, vals := range want {
			if strings.HasPrefix(name, "_") {
				continue // hidden synchronization cells
			}
			base, ok := addrs[name]
			if !ok {
				return fmt.Errorf("progfuzz: global %q missing from program under %s", name, mode)
			}
			for i, w := range vals {
				got, _ := s.Memory().Peek(base + int64(i))
				if !got.Equal(w) {
					return &DivergenceError{
						Mode: mode, Global: name, Index: int64(i),
						Sim: got.String(), Oracle: w.String(),
					}
				}
			}
		}
		s.Release()
	}
	return nil
}

// DiffSeed generates the program for seed under o and checks it
// differentially. It returns the generated source alongside any error so
// callers can report the offending program.
func DiffSeed(ctx context.Context, seed int64, o GenOptions, maxCycles int64) (string, error) {
	src := GenerateOpts(seed, o)
	return src, DiffProgram(ctx, src, nil, maxCycles)
}
