package progfuzz

import (
	"strings"
	"testing"

	"pcoup/internal/compiler"
	"pcoup/internal/machine"
	"pcoup/internal/oracle"
	"pcoup/internal/sim"
)

// matrixConfigs are the machine/option combinations every fuzzed program
// must agree on — a wider net than the five modes: interconnects,
// arbitration, lock-step issue, bank conflicts, slow memory, and a
// lopsided cluster mix.
func matrixConfigs() []struct {
	name string
	cfg  *machine.Config
	opts compiler.Options
} {
	base := machine.Baseline()
	lock := machine.Baseline()
	lock.LockStepIssue = true
	rr := machine.Baseline()
	rr.Arbitration = machine.RoundRobinArbitration
	return []struct {
		name string
		cfg  *machine.Config
		opts compiler.Options
	}{
		{"coupled", base, compiler.Options{Mode: compiler.Unrestricted}},
		{"single", base, compiler.Options{Mode: compiler.SingleCluster}},
		{"noopt", base, compiler.Options{Mode: compiler.Unrestricted, DisableOpt: true}},
		{"triport", base.WithInterconnect(machine.TriPort), compiler.Options{Mode: compiler.Unrestricted}},
		{"sharedbus", base.WithInterconnect(machine.SharedBus), compiler.Options{Mode: compiler.Unrestricted}},
		{"lockstep", lock, compiler.Options{Mode: compiler.Unrestricted}},
		{"roundrobin", rr, compiler.Options{Mode: compiler.Unrestricted}},
		{"mem1", base.WithMemory(machine.Mem1).WithSeed(3), compiler.Options{Mode: compiler.Unrestricted}},
		{"mix22", machine.Mix(2, 2), compiler.Options{Mode: compiler.Unrestricted}},
	}
}

// TestDifferentialMatrix fuzzes the whole toolchain: random programs
// must compute identical global contents under every configuration,
// matching the oracle interpreter exactly.
func TestDifferentialMatrix(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 8
	}
	configs := matrixConfigs()
	for seed := int64(0); seed < int64(n); seed++ {
		src := Generate(seed)
		want, err := oracle.Run(src)
		if err != nil {
			t.Fatalf("seed %d: oracle: %v\n%s", seed, err, src)
		}
		for _, c := range configs {
			prog, _, err := compiler.Compile(src, c.cfg, c.opts)
			if err != nil {
				t.Fatalf("seed %d %s: compile: %v\n%s", seed, c.name, err, src)
			}
			s, err := sim.New(c.cfg, prog)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, c.name, err)
			}
			if _, err := s.Run(5_000_000); err != nil {
				t.Fatalf("seed %d %s: run: %v\n%s", seed, c.name, err, src)
			}
			addrs := map[string]int64{}
			for _, d := range prog.Data {
				addrs[d.Name] = d.Addr
			}
			for name, vals := range want {
				if strings.HasPrefix(name, "_") {
					continue // hidden synchronization cells
				}
				base, ok := addrs[name]
				if !ok {
					t.Fatalf("seed %d %s: global %q missing from program", seed, c.name, name)
				}
				for i, w := range vals {
					got, _ := s.Memory().Peek(base + int64(i))
					if !got.Equal(w) {
						t.Fatalf("seed %d %s: %s[%d] = %v, oracle says %v\n%s",
							seed, c.name, name, i, got, w, src)
					}
				}
			}
			s.Release()
		}
	}
}
