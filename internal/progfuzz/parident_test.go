package progfuzz

// DiffSweep folds seed outcomes in order through parexec.Stream; the
// result struct must therefore be identical at any parallelism width.

import (
	"context"
	"encoding/json"
	"testing"

	"pcoup/internal/experiments"
	"pcoup/internal/parexec"
)

func TestDiffSweepParallelIdentical(t *testing.T) {
	const seeds = 20
	runAt := func(width int) string {
		rc := &experiments.RunContext{Ctx: parexec.WithLimit(context.Background(), width)}
		res, err := DiffSweep(rc, seeds)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	seq := runAt(1)
	par := runAt(4)
	if seq != par {
		t.Errorf("DiffSweep result differs between widths:\nseq: %s\npar: %s", seq, par)
	}
}
