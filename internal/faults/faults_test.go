package faults

import "testing"

func TestParseSpec(t *testing.T) {
	m, err := ParseSpec("seed=7,mem-drop=0.01,mem-delay=0.02:40,port=0.001:10,unit=0.002:25")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want := Model{
		Seed: 7, MemDropRate: 0.01, MemDelayRate: 0.02, MemDelayMax: 40,
		PortOutageRate: 0.001, PortOutageCycles: 10,
		UnitOutageRate: 0.002, UnitOutageCycles: 25,
	}
	if m != want {
		t.Fatalf("ParseSpec = %+v, want %+v", m, want)
	}
	if !m.Enabled() {
		t.Fatal("model should be enabled")
	}

	if m, err := ParseSpec(""); err != nil || m.Enabled() {
		t.Fatalf("empty spec: %+v, %v", m, err)
	}
	for _, bad := range []string{
		"bogus=1", "mem-drop=2", "mem-delay=0.1", "mem-delay=0.1:0",
		"port=0.1:x", "seed=-1", "unit", "unit=0.1:-2",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestValidateBounds(t *testing.T) {
	m := Model{MemDelayRate: 0.5, MemDelayMax: 10}
	if err := m.Validate("faults."); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	m.MemDelayMax = 0
	if err := m.Validate("faults."); err == nil {
		t.Fatal("mem_delay_max=0 with rate>0 accepted")
	}
	m = Model{PortOutageRate: 1.5}
	if err := m.Validate("faults."); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

func TestCanonicalClearsUnused(t *testing.T) {
	m := Model{Seed: 9, MemDelayMax: 40, PortOutageCycles: 10, UnitOutageCycles: 5}
	c := m.Canonical()
	if c != (Model{}) {
		t.Fatalf("fully disabled model should canonicalize to zero, got %+v", c)
	}
	m = Model{Seed: 9, MemDropRate: 0.1, PortOutageCycles: 7}
	c = m.Canonical()
	if c.PortOutageCycles != 0 || c.Seed != 9 || c.MemDropRate != 0.1 {
		t.Fatalf("canonical = %+v", c)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	model := Model{
		Seed: 42, MemDropRate: 0.05, MemDelayRate: 0.1, MemDelayMax: 8,
		PortOutageRate: 0.01, PortOutageCycles: 5,
		UnitOutageRate: 0.01, UnitOutageCycles: 5,
	}
	run := func() ([]bool, []int, Stats) {
		inj := NewInjector(model, 3, 6)
		var downs []bool
		var delays []int
		for cycle := int64(0); cycle < 2000; cycle++ {
			for c := 0; c < 3; c++ {
				downs = append(downs, inj.PortDown(c, cycle))
			}
			for u := 0; u < 6; u++ {
				downs = append(downs, inj.UnitDown(u, cycle))
			}
			if cycle%3 == 0 {
				d, dropped := inj.ReactivationFault()
				if dropped {
					d = -1
				}
				delays = append(delays, d)
			}
		}
		return downs, delays, inj.Stats()
	}
	d1, dl1, s1 := run()
	d2, dl2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("outage schedule diverges at index %d", i)
		}
	}
	for i := range dl1 {
		if dl1[i] != dl2[i] {
			t.Fatalf("reactivation schedule diverges at index %d", i)
		}
	}
	if s1.MemDropped == 0 || s1.MemDelayed == 0 || s1.PortOutages == 0 || s1.UnitOutages == 0 {
		t.Fatalf("expected every fault class to fire at these rates: %+v", s1)
	}
}

func TestInjectorSnapshotRestore(t *testing.T) {
	model := Model{Seed: 1, MemDropRate: 0.1, UnitOutageRate: 0.05, UnitOutageCycles: 4}
	inj := NewInjector(model, 2, 4)
	for cycle := int64(0); cycle < 500; cycle++ {
		inj.UnitDown(int(cycle)%4, cycle)
		inj.ReactivationFault()
	}
	snap := inj.Snapshot()

	// Continue the original; replay a restored copy; both must match.
	cont := func(i *Injector) ([]bool, Stats) {
		var out []bool
		for cycle := int64(500); cycle < 1500; cycle++ {
			out = append(out, i.UnitDown(int(cycle)%4, cycle))
			_, dropped := i.ReactivationFault()
			out = append(out, dropped)
		}
		return out, i.Stats()
	}
	a, sa := cont(inj)

	inj2 := NewInjector(model, 2, 4)
	if err := inj2.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	b, sb := cont(inj2)
	if sa != sb {
		t.Fatalf("stats differ after restore: %+v vs %+v", sa, sb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored schedule diverges at index %d", i)
		}
	}

	bad := NewInjector(model, 1, 1)
	if err := bad.Restore(snap); err == nil {
		t.Fatal("shape-mismatched restore accepted")
	}
}

func TestWindowGenPeekIsReadOnly(t *testing.T) {
	model := Model{Seed: 3, UnitOutageRate: 0.2, UnitOutageCycles: 3}
	inj := NewInjector(model, 0, 1)
	for cycle := int64(0); cycle < 200; cycle++ {
		// Peek before sampling must not consume randomness: a fresh
		// injector driven only by down() must agree cycle for cycle.
		_ = inj.UnitDownQuiet(0, cycle)
		got := inj.UnitDown(0, cycle)
		if peek := inj.UnitDownQuiet(0, cycle); peek != got {
			t.Fatalf("cycle %d: peek %v after down %v", cycle, peek, got)
		}
	}
	ref := NewInjector(model, 0, 1)
	inj2 := NewInjector(model, 0, 1)
	for cycle := int64(0); cycle < 200; cycle++ {
		_ = inj2.UnitDownQuiet(0, cycle)
		if ref.UnitDown(0, cycle) != inj2.UnitDown(0, cycle) {
			t.Fatalf("peek perturbed the schedule at cycle %d", cycle)
		}
	}
}
