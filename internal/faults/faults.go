// Package faults is the deterministic fault-injection subsystem: a
// seeded model of the transient disturbances a coupled node must ride
// out — delayed or dropped split-transaction reactivations (lost
// presence-bit wakeups) in the memory system, per-cluster register-file
// port outages in the interconnect, and per-unit degradation windows
// during which a function unit is offline. Every fault is drawn from a
// splitmix64 stream derived from the model's seed, so two runs of the
// same program on the same configuration observe the identical fault
// schedule; the simulator's forward-progress watchdog provides the
// matching recovery (bounded deterministic retry of lost wakeups).
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"pcoup/internal/rng"
)

// Model configures fault injection. The zero value disables every fault
// class. It lives in machine.Config (JSON section "faults") so that a
// fault schedule is part of the machine description, participates in
// config canonicalization/hashing, and travels over the pcserved API
// like every other simulation knob.
type Model struct {
	// Seed seeds the injector's generators (decoupled from the memory
	// model's statistical seed so enabling faults does not perturb the
	// hit/miss sequence).
	Seed uint64
	// MemDelayRate is the probability that a split-transaction
	// reactivation (the wakeup servicing a parked reference after a
	// presence-bit transition) is delayed by up to MemDelayMax extra
	// cycles instead of the usual one-cycle latency.
	MemDelayRate float64
	// MemDelayMax is the maximum extra reactivation delay in cycles.
	MemDelayMax int
	// MemDropRate is the probability that a reactivation is lost
	// outright: the parked reference stays parked until the simulator's
	// watchdog retries the wakeup. Without recovery a dropped wakeup is
	// a livelock.
	MemDropRate float64
	// PortOutageRate is the per-queried-cycle probability that a
	// cluster's register-file write ports go down for PortOutageCycles
	// cycles (writebacks retry until the window passes).
	PortOutageRate   float64
	PortOutageCycles int
	// UnitOutageRate is the per-cycle probability that a function unit
	// goes offline for UnitOutageCycles cycles (an FPU losing cycles
	// [a,b): no operation issues on it during the window).
	UnitOutageRate   float64
	UnitOutageCycles int
}

// Enabled reports whether any fault class can fire.
func (m *Model) Enabled() bool {
	return m.MemDelayRate > 0 || m.MemDropRate > 0 || m.PortOutageRate > 0 || m.UnitOutageRate > 0
}

// Validate checks the model's bounds. Field names use the JSON config
// spelling under the given prefix (for example "faults.").
func (m *Model) Validate(prefix string) error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"mem_delay_rate", m.MemDelayRate},
		{"mem_drop_rate", m.MemDropRate},
		{"port_outage_rate", m.PortOutageRate},
		{"unit_outage_rate", m.UnitOutageRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("%s%s: %g (must be in [0,1])", prefix, r.name, r.v)
		}
	}
	if m.MemDelayRate > 0 && m.MemDelayMax < 1 {
		return fmt.Errorf("%smem_delay_max: %d (must be >= 1 when mem_delay_rate > 0)", prefix, m.MemDelayMax)
	}
	if m.PortOutageRate > 0 && m.PortOutageCycles < 1 {
		return fmt.Errorf("%sport_outage_cycles: %d (must be >= 1 when port_outage_rate > 0)", prefix, m.PortOutageCycles)
	}
	if m.UnitOutageRate > 0 && m.UnitOutageCycles < 1 {
		return fmt.Errorf("%sunit_outage_cycles: %d (must be >= 1 when unit_outage_rate > 0)", prefix, m.UnitOutageCycles)
	}
	const maxLen = 1 << 20
	for _, l := range []struct {
		name string
		v    int
	}{
		{"mem_delay_max", m.MemDelayMax},
		{"port_outage_cycles", m.PortOutageCycles},
		{"unit_outage_cycles", m.UnitOutageCycles},
	} {
		if l.v < 0 {
			return fmt.Errorf("%s%s: %d (must be >= 0)", prefix, l.name, l.v)
		}
		if l.v > maxLen {
			return fmt.Errorf("%s%s: %d (max %d)", prefix, l.name, l.v, maxLen)
		}
	}
	return nil
}

// Canonical normalizes the model for content addressing: lengths whose
// rate is zero can never be observed and are cleared, and a fully
// disabled model clears its seed.
func (m Model) Canonical() Model {
	if m.MemDelayRate == 0 {
		m.MemDelayMax = 0
	}
	if m.PortOutageRate == 0 {
		m.PortOutageCycles = 0
	}
	if m.UnitOutageRate == 0 {
		m.UnitOutageCycles = 0
	}
	if !m.Enabled() {
		m.Seed = 0
	}
	return m
}

// ParseSpec parses the CLI fault specification: a comma-separated list
// of key=value items. Keys:
//
//	seed=N            injector seed
//	mem-delay=R:MAX   delayed reactivations (rate, max extra cycles)
//	mem-drop=R        dropped reactivations (lost wakeups)
//	port=R:LEN        per-cluster write-port outages (rate, window)
//	unit=R:LEN        per-unit degradation windows (rate, window)
//
// Example: "mem-drop=0.01,unit=0.002:25,seed=7".
func ParseSpec(spec string) (Model, error) {
	var m Model
	if strings.TrimSpace(spec) == "" {
		return m, nil
	}
	for _, item := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return m, fmt.Errorf("faults: bad item %q (want key=value)", item)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return m, fmt.Errorf("faults: seed: %v", err)
			}
			m.Seed = n
		case "mem-delay":
			r, l, err := parseRateLen(val)
			if err != nil {
				return m, fmt.Errorf("faults: mem-delay: %v", err)
			}
			m.MemDelayRate, m.MemDelayMax = r, l
		case "mem-drop":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return m, fmt.Errorf("faults: mem-drop: %v", err)
			}
			m.MemDropRate = r
		case "port":
			r, l, err := parseRateLen(val)
			if err != nil {
				return m, fmt.Errorf("faults: port: %v", err)
			}
			m.PortOutageRate, m.PortOutageCycles = r, l
		case "unit":
			r, l, err := parseRateLen(val)
			if err != nil {
				return m, fmt.Errorf("faults: unit: %v", err)
			}
			m.UnitOutageRate, m.UnitOutageCycles = r, l
		default:
			return m, fmt.Errorf("faults: unknown key %q (valid: seed, mem-delay, mem-drop, port, unit)", key)
		}
	}
	if err := m.Validate("faults: "); err != nil {
		return m, err
	}
	return m, nil
}

// parseRateLen parses "RATE:LEN".
func parseRateLen(s string) (float64, int, error) {
	rs, ls, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad value %q (want rate:cycles)", s)
	}
	r, err := strconv.ParseFloat(rs, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad rate %q", rs)
	}
	l, err := strconv.Atoi(ls)
	if err != nil {
		return 0, 0, fmt.Errorf("bad cycle count %q", ls)
	}
	return r, l, nil
}

// Stats counts the faults actually injected over a run.
type Stats struct {
	// MemDelayed counts reactivations delayed beyond the normal
	// one-cycle split-transaction latency.
	MemDelayed int64 `json:"mem_delayed"`
	// MemDropped counts reactivations lost outright (each needs a
	// watchdog retry to recover).
	MemDropped int64 `json:"mem_dropped"`
	// PortOutages counts port-outage windows opened, per cluster sum.
	PortOutages int64 `json:"port_outages"`
	// UnitOutages counts unit degradation windows opened.
	UnitOutages int64 `json:"unit_outages"`
}

// windowGen produces deterministic outage windows for one resource: an
// alternating up/down process where each queried up-cycle goes down
// with the configured rate for a fixed-length window. Cycles are only
// sampled when queried, so the schedule depends solely on the seed and
// the (deterministic) query sequence.
type windowGen struct {
	rnd    rng.Source
	rate   float64
	length int64

	downUntil  int64 // resource is down for cycles [downUntil-length, downUntil)
	lastDraw   int64 // most recent cycle sampled (one draw per cycle)
	lastResult bool
	opened     int64 // windows opened
}

// GenState is a windowGen's serializable state (checkpointing).
type GenState struct {
	Rnd        uint64 `json:"rnd"`
	DownUntil  int64  `json:"down_until"`
	LastDraw   int64  `json:"last_draw"`
	LastResult bool   `json:"last_result"`
	Opened     int64  `json:"opened"`
}

func (g *windowGen) down(cycle int64) bool {
	if g.rate <= 0 {
		return false
	}
	if cycle < g.downUntil {
		return true
	}
	if cycle == g.lastDraw {
		return g.lastResult
	}
	g.lastDraw = cycle
	if g.rnd.Float64() < g.rate {
		g.downUntil = cycle + g.length
		g.opened++
		g.lastResult = true
		return true
	}
	g.lastResult = false
	return false
}

// peek reports whether the resource is down at cycle without sampling
// (read-only probe for stall attribution and deadlock diagnosis; valid
// for cycles already queried via down).
func (g *windowGen) peek(cycle int64) bool {
	if cycle < g.downUntil {
		return true
	}
	return cycle == g.lastDraw && g.lastResult
}

// Injector draws the fault schedule for one simulation. It is created
// per-Sim from the machine's fault model and consulted from the memory
// system, the interconnect arbiter, and the issue logic. All methods
// are deterministic given the seed and the caller's query order.
type Injector struct {
	model Model
	mem   *rng.Source // reactivation delay/drop draws
	ports []windowGen // per destination cluster
	units []windowGen // per global unit slot

	memDelayed int64
	memDropped int64
}

// NewInjector builds an injector for a machine of numClusters clusters
// and numUnits function units.
func NewInjector(model Model, numClusters, numUnits int) *Injector {
	// Derive independent sub-seeds so the fault domains do not share a
	// stream (adding a port fault must not reshuffle unit outages).
	seeder := rng.New(model.Seed ^ 0x666c745f70636f75) // "flt_pcou"
	inj := &Injector{
		model: model,
		mem:   rng.New(seeder.Uint64()),
		ports: make([]windowGen, numClusters),
		units: make([]windowGen, numUnits),
	}
	for i := range inj.ports {
		inj.ports[i] = windowGen{rnd: *rng.New(seeder.Uint64()), rate: model.PortOutageRate, length: int64(model.PortOutageCycles)}
	}
	for i := range inj.units {
		inj.units[i] = windowGen{rnd: *rng.New(seeder.Uint64()), rate: model.UnitOutageRate, length: int64(model.UnitOutageCycles)}
	}
	return inj
}

// Model returns the injector's configuration.
func (inj *Injector) Model() Model { return inj.model }

// ReactivationFault draws the fate of one split-transaction
// reactivation: dropped entirely, or delayed by extra cycles (0 means
// the wakeup proceeds normally).
func (inj *Injector) ReactivationFault() (extraDelay int, dropped bool) {
	if inj.model.MemDropRate > 0 && inj.mem.Float64() < inj.model.MemDropRate {
		inj.memDropped++
		return 0, true
	}
	if inj.model.MemDelayRate > 0 && inj.mem.Float64() < inj.model.MemDelayRate {
		inj.memDelayed++
		return inj.mem.Range(1, inj.model.MemDelayMax), false
	}
	return 0, false
}

// PortDown reports (sampling at most once per cycle per cluster)
// whether cluster's register-file write ports are inside an outage
// window at cycle.
func (inj *Injector) PortDown(cluster int, cycle int64) bool {
	if cluster < 0 || cluster >= len(inj.ports) {
		return false
	}
	return inj.ports[cluster].down(cycle)
}

// UnitDown reports (sampling at most once per cycle per unit) whether
// global unit slot is inside a degradation window at cycle.
func (inj *Injector) UnitDown(slot int, cycle int64) bool {
	if slot < 0 || slot >= len(inj.units) {
		return false
	}
	return inj.units[slot].down(cycle)
}

// UnitDownQuiet is the read-only probe of UnitDown: it never samples,
// so stall attribution and deadlock diagnosis may call it without
// perturbing the fault schedule.
func (inj *Injector) UnitDownQuiet(slot int, cycle int64) bool {
	if slot < 0 || slot >= len(inj.units) {
		return false
	}
	return inj.units[slot].peek(cycle)
}

// Stats returns the injected-fault counters.
func (inj *Injector) Stats() Stats {
	s := Stats{MemDelayed: inj.memDelayed, MemDropped: inj.memDropped}
	for i := range inj.ports {
		s.PortOutages += inj.ports[i].opened
	}
	for i := range inj.units {
		s.UnitOutages += inj.units[i].opened
	}
	return s
}

// State is the injector's complete serializable state (checkpointing).
type State struct {
	Mem        uint64     `json:"mem"`
	MemDelayed int64      `json:"mem_delayed"`
	MemDropped int64      `json:"mem_dropped"`
	Ports      []GenState `json:"ports"`
	Units      []GenState `json:"units"`
}

// Snapshot captures the injector's state.
func (inj *Injector) Snapshot() *State {
	st := &State{
		Mem:        inj.mem.State(),
		MemDelayed: inj.memDelayed,
		MemDropped: inj.memDropped,
		Ports:      make([]GenState, len(inj.ports)),
		Units:      make([]GenState, len(inj.units)),
	}
	for i := range inj.ports {
		st.Ports[i] = inj.ports[i].state()
	}
	for i := range inj.units {
		st.Units[i] = inj.units[i].state()
	}
	return st
}

// Restore resets the injector to a snapshotted state.
func (inj *Injector) Restore(st *State) error {
	if len(st.Ports) != len(inj.ports) || len(st.Units) != len(inj.units) {
		return fmt.Errorf("faults: snapshot shape %d ports/%d units, injector has %d/%d",
			len(st.Ports), len(st.Units), len(inj.ports), len(inj.units))
	}
	inj.mem.SetState(st.Mem)
	inj.memDelayed = st.MemDelayed
	inj.memDropped = st.MemDropped
	for i := range inj.ports {
		inj.ports[i].setState(st.Ports[i])
	}
	for i := range inj.units {
		inj.units[i].setState(st.Units[i])
	}
	return nil
}

func (g *windowGen) state() GenState {
	return GenState{Rnd: g.rnd.State(), DownUntil: g.downUntil, LastDraw: g.lastDraw, LastResult: g.lastResult, Opened: g.opened}
}

func (g *windowGen) setState(st GenState) {
	g.rnd.SetState(st.Rnd)
	g.downUntil = st.DownUntil
	g.lastDraw = st.LastDraw
	g.lastResult = st.LastResult
	g.opened = st.Opened
}
