package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestKnownSequence(t *testing.T) {
	// Pin the splitmix64 output so the statistical memory model is
	// reproducible across releases.
	s := New(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x6c45d188009454f}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("step %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit only %d distinct values", len(seen))
	}
}

func TestRangeInclusive(t *testing.T) {
	s := New(4)
	sawLo, sawHi := false, false
	for i := 0; i < 5000; i++ {
		v := s.Range(20, 100)
		if v < 20 || v > 100 {
			t.Fatalf("Range(20,100) = %d", v)
		}
		if v == 20 {
			sawLo = true
		}
		if v == 100 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Errorf("Range(20,100) never hit an endpoint (lo=%v hi=%v)", sawLo, sawHi)
	}
	if got := s.Range(5, 5); got != 5 {
		t.Errorf("Range(5,5) = %d, want 5", got)
	}
}

func TestPanics(t *testing.T) {
	s := New(1)
	mustPanic(t, "Intn(0)", func() { s.Intn(0) })
	mustPanic(t, "Range inverted", func() { s.Range(3, 2) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestSeedResets(t *testing.T) {
	check := func(seed uint64) bool {
		s := New(seed)
		first := s.Uint64()
		s.Uint64()
		s.Seed(seed)
		return s.Uint64() == first
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
