// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by the statistical memory model. The simulator must be
// exactly reproducible across runs and Go releases, so it does not depend
// on math/rand's generator or shuffling order.
package rng

// Source is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Seed resets the generator state.
func (s *Source) Seed(seed uint64) { s.state = seed }

// State exports the generator's internal state for checkpointing.
func (s *Source) State() uint64 { return s.state }

// SetState restores a state previously captured with State.
func (s *Source) SetState(state uint64) { s.state = state }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits -> [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi] inclusive. It panics if hi < lo.
func (s *Source) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}
