package tenant

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSpecDefaults(t *testing.T) {
	ten, err := New(Spec{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if ten.Weight() != 1 {
		t.Fatalf("default weight = %d, want 1", ten.Weight())
	}
	if ten.Class() != Interactive {
		t.Fatalf("default class = %q, want interactive", ten.Class())
	}
	if _, err := New(Spec{Name: "b", Class: "premium"}); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := New(Spec{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := New(Spec{Name: "c", Weight: -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(nil); err == nil {
		t.Fatal("empty registry accepted")
	}
	if _, err := NewRegistry([]Spec{{Name: "a"}}); err == nil {
		t.Fatal("missing key accepted")
	}
	if _, err := NewRegistry([]Spec{{Name: "a", Key: "k"}, {Name: "a", Key: "k2"}}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewRegistry([]Spec{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}}); err == nil {
		t.Fatal("duplicate key accepted")
	}
	r, err := NewRegistry([]Spec{{Name: "b", Key: "kb"}, {Name: "a", Key: "ka"}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Required() {
		t.Fatal("closed registry reports Required()=false")
	}
	all := r.All()
	if len(all) != 2 || all[0].Name() != "a" || all[1].Name() != "b" {
		t.Fatalf("All() not name-sorted: %v", all)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	data := `[
		{"name": "alice", "key": "alice-key", "weight": 8},
		{"name": "bob", "key": "bob-key", "class": "batch", "cells_per_sec": 5}
	]`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ten, ok := r.Lookup("alice-key")
	if !ok || ten.Name() != "alice" || ten.Weight() != 8 {
		t.Fatalf("alice lookup: %v %v", ten, ok)
	}
	bob, _ := r.Lookup("bob-key")
	if bob.Class() != Batch {
		t.Fatalf("bob class = %q", bob.Class())
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFromRequest(t *testing.T) {
	r, err := NewRegistry([]Spec{{Name: "a", Key: "secret"}})
	if err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest("GET", "/v1/jobs", nil)
	if _, err := r.FromRequest(req); err != ErrUnauthorized {
		t.Fatalf("no key: err = %v, want ErrUnauthorized", err)
	}

	req.Header.Set("Authorization", "Bearer wrong")
	if _, err := r.FromRequest(req); err != ErrUnauthorized {
		t.Fatalf("wrong key: err = %v, want ErrUnauthorized", err)
	}

	req.Header.Set("Authorization", "Bearer secret")
	ten, err := r.FromRequest(req)
	if err != nil || ten.Name() != "a" {
		t.Fatalf("bearer auth: %v %v", ten, err)
	}

	req2 := httptest.NewRequest("GET", "/v1/jobs", nil)
	req2.Header.Set("X-PC-Tenant-Key", "secret")
	ten, err = r.FromRequest(req2)
	if err != nil || ten.Name() != "a" {
		t.Fatalf("header auth: %v %v", ten, err)
	}

	open := Open()
	if open.Required() {
		t.Fatal("open registry reports Required()=true")
	}
	ten, err = open.FromRequest(req2)
	if err != nil || ten.Name() != "default" {
		t.Fatalf("open mode: %v %v", ten, err)
	}
}

func TestQueuedQuota(t *testing.T) {
	ten, err := New(Spec{Name: "a", MaxQueuedCells: 10})
	if err != nil {
		t.Fatal(err)
	}
	if qe := ten.Admit(8); qe != nil {
		t.Fatalf("admit 8: %v", qe)
	}
	qe := ten.Admit(3)
	if qe == nil {
		t.Fatal("admit over queued quota succeeded")
	}
	if qe.RetryAfterSeconds() < 1 {
		t.Fatalf("RetryAfterSeconds = %d, want >= 1", qe.RetryAfterSeconds())
	}
	if ten.Queued() != 8 {
		t.Fatalf("rejected admit changed queued count: %d", ten.Queued())
	}
	if qe := ten.Admit(2); qe != nil {
		t.Fatalf("admit to exactly the cap: %v", qe)
	}
	ten.SubQueued(10)
	if ten.Queued() != 0 {
		t.Fatalf("queued after release = %d", ten.Queued())
	}
}

func TestTokenBucket(t *testing.T) {
	ten, err := New(Spec{Name: "a", CellsPerSec: 10}) // burst defaults to 10
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1000, 0)
	ten.setNow(func() time.Time { return clock })

	// A sweep larger than the burst is still admitted (debit model)...
	if qe := ten.Admit(25); qe != nil {
		t.Fatalf("first oversized admit rejected: %v", qe)
	}
	// ...but leaves the bucket deep in debt, so the next admit waits.
	qe := ten.Admit(1)
	if qe == nil {
		t.Fatal("admit with bucket in debt succeeded")
	}
	// Debt is 15 tokens + 1 to reach a whole token = 1.6s at 10/s.
	if qe.RetryAfter < 1500*time.Millisecond || qe.RetryAfter > 1700*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want ~1.6s", qe.RetryAfter)
	}
	if ten.Queued() != 25 {
		t.Fatalf("rejected admit leaked queued cells: %d", ten.Queued())
	}

	// After the advertised wait the tenant is admitted again.
	clock = clock.Add(qe.RetryAfter + time.Millisecond)
	if qe := ten.Admit(1); qe != nil {
		t.Fatalf("admit after Retry-After rejected: %v", qe)
	}

	// Refill is capped at burst.
	clock = clock.Add(time.Hour)
	if qe := ten.Admit(10); qe != nil {
		t.Fatalf("burst-sized admit after idle: %v", qe)
	}
	if qe := ten.Admit(10); qe == nil {
		t.Fatal("second burst immediately after drain succeeded")
	}
}

func TestInflightGate(t *testing.T) {
	ten, err := New(Spec{Name: "a", MaxInflightCells: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ten.TryAcquireInflight() || !ten.TryAcquireInflight() {
		t.Fatal("acquire under cap failed")
	}
	if ten.TryAcquireInflight() {
		t.Fatal("acquire over cap succeeded")
	}
	ten.ReleaseInflight()
	if !ten.TryAcquireInflight() {
		t.Fatal("acquire after release failed")
	}
	if ten.Inflight() != 2 {
		t.Fatalf("inflight = %d, want 2", ten.Inflight())
	}

	// Unlimited tenants always acquire.
	free, _ := New(Spec{Name: "b"})
	for i := 0; i < 100; i++ {
		if !free.TryAcquireInflight() {
			t.Fatal("unlimited tenant blocked")
		}
	}
}
