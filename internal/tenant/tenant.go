// Package tenant is the multi-tenant identity and admission-control
// layer for the fleet gateway: API-key authentication, per-tenant
// fair-share weights and priority classes consumed by the gateway's
// deficit-round-robin dispatcher, and per-tenant quotas (queued cells,
// in-flight cells, a cells/sec token bucket) enforced at submission.
//
// The package mirrors the paper's split one level up: tenant placement
// is static (config file, loaded once), while the arbitration among
// tenants for shared backends happens at runtime, request by request.
package tenant

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Class is a tenant's scheduling priority class. Interactive work is
// always served before batch work; within a class, tenants share by
// DRR weight.
type Class string

const (
	// Interactive: latency-sensitive work, strictly prioritized.
	Interactive Class = "interactive"
	// Batch: throughput work, served from leftover capacity and shed
	// first under overload.
	Batch Class = "batch"
)

// NumClasses is the number of priority classes (array sizing).
const NumClasses = 2

// Index maps the class to its strict-priority rank (0 served first).
func (c Class) Index() int {
	if c == Batch {
		return 1
	}
	return 0
}

// Classes lists every class in priority order.
func Classes() []Class { return []Class{Interactive, Batch} }

// ErrUnauthorized: the request carries no API key, or an unknown one.
var ErrUnauthorized = errors.New("tenant: missing or unknown API key")

// Spec is one tenant's configuration entry in the tenants file (a JSON
// array of these objects, see configs/tenants.example.json).
type Spec struct {
	// Name labels the tenant in journal records, job views, and metrics.
	Name string `json:"name"`
	// Key is the API key presented as "Authorization: Bearer <key>" (or
	// the X-PC-Tenant-Key header).
	Key string `json:"key"`
	// Weight is the DRR fair share within the tenant's class (default 1).
	Weight int `json:"weight,omitempty"`
	// Class is "interactive" (default) or "batch".
	Class Class `json:"class,omitempty"`
	// MaxInflightCells caps the tenant's concurrently dispatched cells
	// (0: unlimited). Enforced by the dispatcher, not at admission, so a
	// burst queues rather than fails.
	MaxInflightCells int `json:"max_inflight_cells,omitempty"`
	// MaxQueuedCells caps the tenant's cells admitted but not yet
	// dispatched (0: unlimited). Exceeding it is a 429.
	MaxQueuedCells int `json:"max_queued_cells,omitempty"`
	// CellsPerSec is the token-bucket refill rate (0: unlimited).
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
	// Burst is the bucket capacity (default: max(1, ceil(CellsPerSec))).
	Burst float64 `json:"burst,omitempty"`
}

// QuotaError is an admission rejection: the HTTP layer renders it as
// 429 Too Many Requests with a Retry-After header.
type QuotaError struct {
	Tenant     string
	Class      Class
	Reason     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %s: %s (retry after %s)", e.Tenant, e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// RetryAfterSeconds renders the wait as whole seconds for the
// Retry-After header (minimum 1: zero would invite an immediate retry).
func (e *QuotaError) RetryAfterSeconds() int {
	s := int(math.Ceil(e.RetryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// Tenant is one authenticated principal: identity, fair-share
// parameters, and live accounting. All methods are safe for concurrent
// use.
type Tenant struct {
	name        string
	key         string
	weight      int
	class       Class
	maxInflight int
	maxQueued   int
	rate        float64 // cells/sec; 0 = unlimited
	burst       float64

	queued   atomic.Int64 // cells admitted, not yet dispatched
	inflight atomic.Int64 // cells currently dispatched

	mu     sync.Mutex // token bucket
	tokens float64
	last   time.Time
	now    func() time.Time // test hook
}

// New validates a spec and builds the tenant.
func New(s Spec) (*Tenant, error) {
	if s.Name == "" {
		return nil, errors.New("tenant: name is required")
	}
	if s.Weight < 0 || s.MaxInflightCells < 0 || s.MaxQueuedCells < 0 || s.CellsPerSec < 0 || s.Burst < 0 {
		return nil, fmt.Errorf("tenant %s: negative limits", s.Name)
	}
	switch s.Class {
	case "", Interactive, Batch:
	default:
		return nil, fmt.Errorf("tenant %s: unknown class %q (interactive|batch)", s.Name, s.Class)
	}
	t := &Tenant{
		name:        s.Name,
		key:         s.Key,
		weight:      s.Weight,
		class:       s.Class,
		maxInflight: s.MaxInflightCells,
		maxQueued:   s.MaxQueuedCells,
		rate:        s.CellsPerSec,
		burst:       s.Burst,
		now:         time.Now,
	}
	if t.weight == 0 {
		t.weight = 1
	}
	if t.class == "" {
		t.class = Interactive
	}
	if t.rate > 0 && t.burst == 0 {
		t.burst = math.Max(1, math.Ceil(t.rate))
	}
	t.tokens = t.burst
	t.last = t.now()
	return t, nil
}

// Name returns the tenant's label.
func (t *Tenant) Name() string { return t.name }

// Weight returns the DRR fair share within the class.
func (t *Tenant) Weight() int { return t.weight }

// Class returns the priority class.
func (t *Tenant) Class() Class { return t.class }

// Queued returns cells admitted but not yet dispatched.
func (t *Tenant) Queued() int { return int(t.queued.Load()) }

// Inflight returns cells currently dispatched.
func (t *Tenant) Inflight() int { return int(t.inflight.Load()) }

// Admit reserves n queued cells against the tenant's quotas: the queued
// cap, then the token bucket. On success the queued count is raised by n
// (release it cell by cell with SubQueued as work dispatches, or all at
// once on a failed launch). On rejection nothing is reserved.
func (t *Tenant) Admit(n int) *QuotaError {
	if n <= 0 {
		return nil
	}
	if t.maxQueued > 0 {
		for {
			q := t.queued.Load()
			if int(q)+n > t.maxQueued {
				return &QuotaError{
					Tenant: t.name, Class: t.class,
					Reason:     fmt.Sprintf("queued-cell quota: %d queued + %d requested > %d", q, n, t.maxQueued),
					RetryAfter: time.Second,
				}
			}
			if t.queued.CompareAndSwap(q, q+int64(n)) {
				break
			}
		}
	} else {
		t.queued.Add(int64(n))
	}
	if err := t.takeTokens(n); err != nil {
		t.queued.Add(-int64(n))
		return err
	}
	return nil
}

// takeTokens debits n cells from the token bucket. A submission is
// admitted whenever at least one whole token is available; the full n is
// then debited (the balance may go negative), so a large sweep is never
// unadmittable yet the long-run rate still converges to CellsPerSec.
func (t *Tenant) takeTokens(n int) *QuotaError {
	if t.rate <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.tokens += now.Sub(t.last).Seconds() * t.rate
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
	t.last = now
	if t.tokens < 1 {
		wait := time.Duration((1 - t.tokens) / t.rate * float64(time.Second))
		return &QuotaError{
			Tenant: t.name, Class: t.class,
			Reason:     fmt.Sprintf("rate limit: %.3g cells/sec", t.rate),
			RetryAfter: wait,
		}
	}
	t.tokens -= float64(n)
	return nil
}

// SubQueued releases n reserved queued cells (dispatch or abort).
func (t *Tenant) SubQueued(n int) {
	if n > 0 {
		t.queued.Add(-int64(n))
	}
}

// TryAcquireInflight reserves one in-flight cell slot, honoring
// MaxInflightCells; false means the tenant is at its cap and the cell
// must stay queued.
func (t *Tenant) TryAcquireInflight() bool {
	if t.maxInflight <= 0 {
		t.inflight.Add(1)
		return true
	}
	for {
		c := t.inflight.Load()
		if int(c) >= t.maxInflight {
			return false
		}
		if t.inflight.CompareAndSwap(c, c+1) {
			return true
		}
	}
}

// AcquireInflight reserves one in-flight slot unconditionally (FIFO
// scheduling, which does not gate on quotas, still keeps the gauge).
func (t *Tenant) AcquireInflight() { t.inflight.Add(1) }

// ReleaseInflight returns one in-flight slot.
func (t *Tenant) ReleaseInflight() { t.inflight.Add(-1) }

// setNow installs a fake clock (tests).
func (t *Tenant) setNow(now func() time.Time) {
	t.mu.Lock()
	t.now = now
	t.last = now()
	t.mu.Unlock()
}

// Registry resolves API keys to tenants. With no tenants configured it
// runs open: every request maps to a single unlimited "default" tenant
// and no key is required.
type Registry struct {
	byKey    map[string]*Tenant
	list     []*Tenant
	fallback *Tenant // open mode only
}

// Open returns the no-auth registry with one unlimited default tenant.
func Open() *Registry {
	def, _ := New(Spec{Name: "default"})
	return &Registry{byKey: map[string]*Tenant{}, list: []*Tenant{def}, fallback: def}
}

// NewRegistry builds a closed registry from specs: every request must
// present one of the configured keys.
func NewRegistry(specs []Spec) (*Registry, error) {
	if len(specs) == 0 {
		return nil, errors.New("tenant: empty tenant list")
	}
	r := &Registry{byKey: map[string]*Tenant{}}
	names := map[string]bool{}
	for _, s := range specs {
		t, err := New(s)
		if err != nil {
			return nil, err
		}
		if s.Key == "" {
			return nil, fmt.Errorf("tenant %s: key is required", s.Name)
		}
		if names[t.name] {
			return nil, fmt.Errorf("tenant %s: duplicate name", t.name)
		}
		if _, dup := r.byKey[s.Key]; dup {
			return nil, fmt.Errorf("tenant %s: key already assigned", t.name)
		}
		names[t.name] = true
		r.byKey[s.Key] = t
		r.list = append(r.list, t)
	}
	sort.Slice(r.list, func(i, j int) bool { return r.list[i].name < r.list[j].name })
	return r, nil
}

// Load reads a tenants JSON file (an array of Spec objects).
func Load(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var specs []Spec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("tenant: parsing %s: %w", path, err)
	}
	r, err := NewRegistry(specs)
	if err != nil {
		return nil, fmt.Errorf("tenant: %s: %w", path, err)
	}
	return r, nil
}

// Required reports whether requests must present an API key.
func (r *Registry) Required() bool { return r.fallback == nil }

// Default returns the open-mode fallback tenant (nil when keys are
// required).
func (r *Registry) Default() *Tenant { return r.fallback }

// All lists every tenant, name-sorted. The slice is shared; do not
// mutate.
func (r *Registry) All() []*Tenant { return r.list }

// Lookup resolves an API key.
func (r *Registry) Lookup(key string) (*Tenant, bool) {
	t, ok := r.byKey[key]
	return t, ok
}

// FromRequest authenticates an HTTP request: "Authorization: Bearer
// <key>" or "X-PC-Tenant-Key: <key>". In open mode the default tenant
// is returned regardless of headers; in closed mode a missing or
// unknown key is ErrUnauthorized.
func (r *Registry) FromRequest(req *http.Request) (*Tenant, error) {
	if r.fallback != nil {
		return r.fallback, nil
	}
	key := ""
	if auth := req.Header.Get("Authorization"); auth != "" {
		if rest, ok := strings.CutPrefix(auth, "Bearer "); ok {
			key = rest
		}
	}
	if key == "" {
		key = req.Header.Get("X-PC-Tenant-Key")
	}
	if key == "" {
		return nil, ErrUnauthorized
	}
	t, ok := r.byKey[key]
	if !ok {
		return nil, ErrUnauthorized
	}
	return t, nil
}

// ctxKey keys the authenticated tenant in a request context.
type ctxKey struct{}

// NewContext attaches the authenticated tenant to a request context.
func NewContext(ctx context.Context, t *Tenant) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the tenant attached by NewContext (nil if none).
func FromContext(ctx context.Context) *Tenant {
	t, _ := ctx.Value(ctxKey{}).(*Tenant)
	return t
}
