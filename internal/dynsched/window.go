package dynsched

import "pcoup/internal/isa"

// Sentinel successor IPs for window entries.
const (
	// IPEnd marks execution running off the end of the segment (or an
	// explicit halt): retiring an entry with this successor halts the
	// thread.
	IPEnd = -1
	// IPUnknown marks a conditional branch whose direction is neither
	// resolved nor predicted yet; extension stops here.
	IPUnknown = -2
)

// Entry is one instruction word in a thread's issue window. The head
// entry (index 0) is the architectural frontier: the simulator aliases
// its Issued slice as the thread's in-order issue bitmap, so the whole
// legacy classification/deadlock machinery keeps seeing a consistent
// "current word". Issued is always allocated at the word's full slot
// count so the alias survives any number of issues.
type Entry struct {
	IP        int
	Issued    []bool
	Spec      bool // fetched past an unresolved prediction: wrong-path candidate
	Resolved  bool // successor (NextIP) is architecturally known
	Predicted bool // NextIP was chosen by the branch predictor
	PredTaken bool
	BrSlot    int  // slot of the word's conditional branch, -1 if none
	Barrier   bool // word forks, halts, or has ambiguous control: no lookahead past it
	NextIP    int  // successor word, IPEnd, or IPUnknown
	Target    int  // taken successor of the conditional branch (empty words skipped)
}

// Window is a per-thread lookahead buffer of up to cap instruction
// words. Entries are fetched along the (possibly predicted) control
// path; the simulator issues ready operations from any entry subject to
// register-hazard and memory-order checks, and retires at most one
// fully-issued head per cycle.
type Window struct {
	seg     *isa.ThreadCode
	pcBase  uint64
	cap     int
	Entries []*Entry
}

// NewWindow builds an empty window over seg. pcBase disambiguates
// branch PCs across segments (the simulator passes segIdx<<20).
func NewWindow(seg *isa.ThreadCode, capWords int, pcBase uint64) *Window {
	if capWords < 1 {
		capWords = 1
	}
	return &Window{seg: seg, pcBase: pcBase, cap: capWords}
}

// Cap returns the window depth in words.
func (w *Window) Cap() int { return w.cap }

// PC returns the global branch-predictor PC for a word of this segment.
func (w *Window) PC(ip int) uint64 { return w.pcBase | uint64(ip) }

// Head returns the architectural head entry (nil when empty).
func (w *Window) Head() *Entry {
	if len(w.Entries) == 0 {
		return nil
	}
	return w.Entries[0]
}

// EffIP returns the first word at or after from that contains at least
// one operation, mirroring the in-order core's empty-word fallthrough.
// IPEnd means execution runs off the segment.
func (w *Window) EffIP(from int) int {
	for ip := from; ip < len(w.seg.Instrs); ip++ {
		if w.seg.Instrs[ip].NumOps() > 0 {
			return ip
		}
	}
	return IPEnd
}

// newEntry decodes the static control shape of word ip.
func (w *Window) newEntry(ip int, spec bool) *Entry {
	word := &w.seg.Instrs[ip]
	e := &Entry{IP: ip, Issued: make([]bool, len(word.Ops)), Spec: spec, BrSlot: -1}
	ctrl := 0
	for slot, op := range word.Ops {
		if op == nil {
			continue
		}
		switch op.Code {
		case isa.OpJmp:
			ctrl++
			e.NextIP = w.EffIP(op.Target)
			e.Resolved = true
		case isa.OpBt, isa.OpBf:
			ctrl++
			e.BrSlot = slot
			e.Target = w.EffIP(op.Target)
			e.NextIP = IPUnknown
		case isa.OpFork:
			// Forks spawn at issue; keep them at the head so thread-slot
			// arbitration stays in program order.
			e.Barrier = true
		case isa.OpHalt:
			e.Barrier = true
			e.NextIP = IPEnd
			e.Resolved = true
			ctrl++
		}
	}
	if ctrl == 0 {
		e.NextIP = w.EffIP(ip + 1)
		e.Resolved = true
	} else if ctrl > 1 {
		// Ambiguous multi-branch word (not emitted by our compiler):
		// degrade to in-order handling behind a barrier.
		e.Barrier = true
	}
	return e
}

// Reset seeds the window at the first non-empty word at or after ip.
// An empty window after Reset means the thread ran off its code.
func (w *Window) Reset(ip int) {
	w.Entries = w.Entries[:0]
	if eff := w.EffIP(ip); eff >= 0 {
		w.Entries = append(w.Entries, w.newEntry(eff, false))
	}
}

// HasUnresolvedPrediction reports whether a predicted branch is still
// in flight. At most one prediction is outstanding at a time.
func (w *Window) HasUnresolvedPrediction() bool {
	for _, e := range w.Entries {
		if e.Predicted && !e.Resolved {
			return true
		}
	}
	return false
}

// Extend fetches words along the known (or predicted) control path
// until the window is full, a barrier or unresolved branch blocks it,
// or the code ends. It is idempotent at maximal extension and Predict
// is pure, so calling it on quiet cycles never changes state — the
// event-driven skip core depends on that. Returns whether anything
// changed.
func (w *Window) Extend(pred Predictor) bool {
	changed := false
	for len(w.Entries) > 0 && len(w.Entries) < w.cap {
		last := w.Entries[len(w.Entries)-1]
		if last.Barrier {
			break
		}
		if last.NextIP == IPUnknown {
			if pred == nil || last.BrSlot < 0 || w.HasUnresolvedPrediction() {
				break
			}
			last.Predicted = true
			last.PredTaken = pred.Predict(w.PC(last.IP))
			if last.PredTaken {
				last.NextIP = last.Target
			} else {
				last.NextIP = w.EffIP(last.IP + 1)
			}
			changed = true
			continue
		}
		if last.NextIP < 0 {
			break
		}
		w.Entries = append(w.Entries, w.newEntry(last.NextIP, w.HasUnresolvedPrediction()))
		changed = true
	}
	return changed
}

// HeadDone reports whether every operation of the head word has issued.
func (w *Window) HeadDone() bool {
	head := w.Head()
	if head == nil {
		return false
	}
	for slot, op := range w.seg.Instrs[head.IP].Ops {
		if op != nil && !head.Issued[slot] {
			return false
		}
	}
	return true
}

// RetireHead pops the fully-issued head (the caller checks HeadDone;
// the head's successor is always resolved by then, since branches
// resolve at issue). When the window empties, it reseeds from the
// retired word's successor. Returns true when the thread ran off its
// code (implicit halt).
func (w *Window) RetireHead() bool {
	head := w.Entries[0]
	copy(w.Entries, w.Entries[1:])
	w.Entries[len(w.Entries)-1] = nil
	w.Entries = w.Entries[:len(w.Entries)-1]
	if len(w.Entries) > 0 {
		return false
	}
	if head.NextIP < 0 {
		return true
	}
	w.Entries = append(w.Entries, w.newEntry(head.NextIP, false))
	return false
}

// CommitSpec clears the speculative mark on every entry after a correct
// prediction: the fetched path is the architectural path.
func (w *Window) CommitSpec() {
	for _, e := range w.Entries {
		e.Spec = false
	}
}

// SquashAfter drops every entry after index k (the mispredicted
// branch's entry). All dropped entries are speculative by construction:
// only one prediction is outstanding, and everything fetched past it is
// marked Spec.
func (w *Window) SquashAfter(k int) {
	for i := k + 1; i < len(w.Entries); i++ {
		w.Entries[i] = nil
	}
	w.Entries = w.Entries[:k+1]
}

// Word returns the instruction word of an entry.
func (w *Window) Word(e *Entry) *isa.Instruction { return &w.seg.Instrs[e.IP] }
