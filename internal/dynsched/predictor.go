// Package dynsched implements the optional dynamic-scheduling subsystem
// layered over the paper-exact in-order core: a bounded per-thread
// out-of-order issue window, branch predictors (bimodal and TAGE-style),
// and a stride prefetcher feeding the statistical memory model. All
// state is deterministic (seeded via internal/rng) and snapshots to
// plain JSON-encodable structs so sim.Snapshot stays byte-identical
// across save/restore.
package dynsched

import (
	"fmt"

	"pcoup/internal/rng"
)

// Predictor is a branch direction predictor. Predict must be pure (no
// state change): the issue window calls it speculatively on quiet
// cycles, and the event-driven skip core relies on prediction being a
// function of frozen state. Update is called exactly once per resolved
// conditional branch, in program order.
type Predictor interface {
	Predict(pc uint64) bool
	Update(pc uint64, taken bool)
	State() *PredictorState
	Restore(st *PredictorState) error
}

// PredictorState is the JSON-encodable snapshot of a predictor. Counter
// tables are []int (not []uint8, which encoding/json would base64) so
// checkpoints stay readable and diffable.
type PredictorState struct {
	Kind    string  `json:"kind"`
	Base    []int   `json:"base"`
	Tables  [][]int `json:"tables,omitempty"`
	Tags    [][]int `json:"tags,omitempty"`
	Useful  [][]int `json:"useful,omitempty"`
	History uint64  `json:"history,omitempty"`
	Rng     uint64  `json:"rng,omitempty"`
}

// NewPredictor constructs the predictor named by kind ("bimodal" or
// "tage") with 1<<bits entries per table. The seed drives TAGE's
// allocation tie-breaks.
func NewPredictor(kind string, bits int, seed uint64) (Predictor, error) {
	switch kind {
	case "bimodal":
		return newBimodal(bits), nil
	case "tage":
		return newTAGE(bits, seed), nil
	}
	return nil, fmt.Errorf("dynsched: unknown predictor %q", kind)
}

// Bimodal is a table of 2-bit saturating counters indexed by PC.
type Bimodal struct {
	ctr  []int
	mask uint64
}

func newBimodal(bits int) *Bimodal {
	n := 1 << bits
	b := &Bimodal{ctr: make([]int, n), mask: uint64(n - 1)}
	// Initialize to weakly not-taken (1): loops train to taken in one
	// iteration, one-shot branches stay not-taken.
	for i := range b.ctr {
		b.ctr[i] = 1
	}
	return b
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.ctr[pc&b.mask] >= 2 }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := pc & b.mask
	if taken {
		if b.ctr[i] < 3 {
			b.ctr[i]++
		}
	} else if b.ctr[i] > 0 {
		b.ctr[i]--
	}
}

// State implements Predictor.
func (b *Bimodal) State() *PredictorState {
	return &PredictorState{Kind: "bimodal", Base: append([]int(nil), b.ctr...)}
}

// Restore implements Predictor.
func (b *Bimodal) Restore(st *PredictorState) error {
	if st == nil || st.Kind != "bimodal" {
		return fmt.Errorf("dynsched: bimodal restore: wrong kind")
	}
	if len(st.Base) != len(b.ctr) {
		return fmt.Errorf("dynsched: bimodal restore: table size %d != %d", len(st.Base), len(b.ctr))
	}
	copy(b.ctr, st.Base)
	return nil
}

// tageHists are the geometric global-history lengths of the tagged
// tables, shortest first.
var tageHists = []int{4, 8, 16, 32}

// TAGE is a TAGE-style predictor: a bimodal base plus tagged tables
// indexed by PC folded with geometrically longer slices of the global
// history. The longest-history tag match provides the prediction;
// mispredictions allocate an entry in a longer table, with a seeded
// random tie-break between allocation candidates.
type TAGE struct {
	base    *Bimodal
	ctr     [][]int // 3-bit counters, taken when >= 4
	tag     [][]int // ~8-bit partial tags
	useful  [][]int // 2-bit usefulness for allocation victimization
	mask    uint64
	history uint64
	rnd     *rng.Source
}

func newTAGE(bits int, seed uint64) *TAGE {
	n := 1 << bits
	t := &TAGE{
		base: newBimodal(bits),
		mask: uint64(n - 1),
		rnd:  rng.New(seed ^ 0x7a9e_7a9e_7a9e_7a9e),
	}
	for range tageHists {
		ctr := make([]int, n)
		for i := range ctr {
			ctr[i] = 3 // weakly not-taken (taken at >= 4)
		}
		t.ctr = append(t.ctr, ctr)
		t.tag = append(t.tag, make([]int, n))
		t.useful = append(t.useful, make([]int, n))
	}
	return t
}

// fold compresses the low histLen bits of h into width bits by XOR.
func fold(h uint64, histLen, width int) uint64 {
	if histLen < 64 {
		h &= (uint64(1) << histLen) - 1
	}
	var out uint64
	for h != 0 {
		out ^= h & ((uint64(1) << width) - 1)
		h >>= width
	}
	return out
}

func (t *TAGE) index(table int, pc uint64) uint64 {
	return (pc ^ fold(t.history, tageHists[table], 10) ^ (pc >> 4)) & t.mask
}

func (t *TAGE) tagOf(table int, pc uint64) int {
	return int((pc ^ fold(t.history, tageHists[table], 8) ^ (pc >> 6)) & 0xff)
}

// provider returns the longest-history matching table, or -1 for the
// bimodal base.
func (t *TAGE) provider(pc uint64) int {
	for i := len(tageHists) - 1; i >= 0; i-- {
		if t.tag[i][t.index(i, pc)] == t.tagOf(i, pc) {
			return i
		}
	}
	return -1
}

// Predict implements Predictor.
func (t *TAGE) Predict(pc uint64) bool {
	if p := t.provider(pc); p >= 0 {
		return t.ctr[p][t.index(p, pc)] >= 4
	}
	return t.base.Predict(pc)
}

// Update implements Predictor.
func (t *TAGE) Update(pc uint64, taken bool) {
	p := t.provider(pc)
	var correct bool
	if p >= 0 {
		i := t.index(p, pc)
		correct = (t.ctr[p][i] >= 4) == taken
		if taken {
			if t.ctr[p][i] < 7 {
				t.ctr[p][i]++
			}
		} else if t.ctr[p][i] > 0 {
			t.ctr[p][i]--
		}
		if correct {
			if t.useful[p][i] < 3 {
				t.useful[p][i]++
			}
		} else if t.useful[p][i] > 0 {
			t.useful[p][i]--
		}
	} else {
		correct = t.base.Predict(pc) == taken
	}
	t.base.Update(pc, taken)
	if !correct {
		t.allocate(p, pc, taken)
	}
	t.history = t.history<<1 | b2u(taken)
}

// allocate installs a new entry in a table with longer history than the
// provider, preferring a non-useful victim; with several candidate
// tables, a seeded coin flip keeps the shorter one half the time
// (standard TAGE anti-ping-pong).
func (t *TAGE) allocate(provider int, pc uint64, taken bool) {
	start := provider + 1
	if start >= len(tageHists) {
		return
	}
	for a := start; a < len(tageHists); a++ {
		i := t.index(a, pc)
		if t.useful[a][i] == 0 {
			if a+1 < len(tageHists) && t.rnd.Uint64()&1 == 1 {
				continue
			}
			t.tag[a][i] = t.tagOf(a, pc)
			t.ctr[a][i] = 3
			if taken {
				t.ctr[a][i] = 4
			}
			t.useful[a][i] = 0
			return
		}
	}
	// No victim: decay usefulness so a future allocation succeeds.
	for a := start; a < len(tageHists); a++ {
		i := t.index(a, pc)
		if t.useful[a][i] > 0 {
			t.useful[a][i]--
		}
	}
}

// State implements Predictor.
func (t *TAGE) State() *PredictorState {
	st := &PredictorState{
		Kind:    "tage",
		Base:    append([]int(nil), t.base.ctr...),
		History: t.history,
		Rng:     t.rnd.State(),
	}
	for i := range tageHists {
		st.Tables = append(st.Tables, append([]int(nil), t.ctr[i]...))
		st.Tags = append(st.Tags, append([]int(nil), t.tag[i]...))
		st.Useful = append(st.Useful, append([]int(nil), t.useful[i]...))
	}
	return st
}

// Restore implements Predictor.
func (t *TAGE) Restore(st *PredictorState) error {
	if st == nil || st.Kind != "tage" {
		return fmt.Errorf("dynsched: tage restore: wrong kind")
	}
	if len(st.Base) != len(t.base.ctr) || len(st.Tables) != len(tageHists) ||
		len(st.Tags) != len(tageHists) || len(st.Useful) != len(tageHists) {
		return fmt.Errorf("dynsched: tage restore: shape mismatch")
	}
	copy(t.base.ctr, st.Base)
	for i := range tageHists {
		if len(st.Tables[i]) != len(t.ctr[i]) || len(st.Tags[i]) != len(t.tag[i]) || len(st.Useful[i]) != len(t.useful[i]) {
			return fmt.Errorf("dynsched: tage restore: table %d size mismatch", i)
		}
		copy(t.ctr[i], st.Tables[i])
		copy(t.tag[i], st.Tags[i])
		copy(t.useful[i], st.Useful[i])
	}
	t.history = st.History
	t.rnd.SetState(st.Rng)
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
