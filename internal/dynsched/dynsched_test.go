package dynsched

import (
	"testing"

	"pcoup/internal/isa"
)

func TestBimodalTrains(t *testing.T) {
	b := newBimodal(4)
	pc := uint64(3)
	if b.Predict(pc) {
		t.Error("fresh bimodal predicts taken; init is weakly not-taken")
	}
	b.Update(pc, true)
	if !b.Predict(pc) {
		t.Error("one taken update should flip a weakly-not-taken counter")
	}
	b.Update(pc, true) // saturate at 3
	b.Update(pc, false)
	if !b.Predict(pc) {
		t.Error("strongly-taken counter should survive one not-taken")
	}
}

func TestTAGELearnsHistoryPattern(t *testing.T) {
	// A period-4 pattern (T T T N) at one PC: unlearnable by a bimodal
	// counter (3:1 bias keeps it saturated taken, 25% mispredicts) but
	// exactly learnable from 4 bits of history.
	pattern := []bool{true, true, true, false}
	tage := newTAGE(10, 42)
	bi := newBimodal(10)
	pc := uint64(0x55)
	warm := 400
	var tageMiss, biMiss int
	for i := 0; i < 2000; i++ {
		taken := pattern[i%len(pattern)]
		if i >= warm {
			if tage.Predict(pc) != taken {
				tageMiss++
			}
			if bi.Predict(pc) != taken {
				biMiss++
			}
		}
		tage.Update(pc, taken)
		bi.Update(pc, taken)
	}
	if tageMiss >= biMiss {
		t.Errorf("TAGE mispredicted %d of 1600, bimodal %d; TAGE should win on a history pattern", tageMiss, biMiss)
	}
	if tageMiss > 160 { // <10% after warmup
		t.Errorf("TAGE mispredicted %d of 1600 on a period-4 pattern", tageMiss)
	}
}

func TestPredictorStateRoundTrip(t *testing.T) {
	for _, kind := range []string{"bimodal", "tage"} {
		t.Run(kind, func(t *testing.T) {
			p, err := NewPredictor(kind, 8, 7)
			if err != nil {
				t.Fatal(err)
			}
			// Drive a deterministic but irregular training sequence.
			for i := 0; i < 500; i++ {
				pc := uint64(i*i) % 97
				p.Update(pc, i%3 == 0 || i%7 == 0)
			}
			q, err := NewPredictor(kind, 8, 7)
			if err != nil {
				t.Fatal(err)
			}
			if err := q.Restore(p.State()); err != nil {
				t.Fatal(err)
			}
			// Identical predictions and identical evolution afterwards.
			for i := 0; i < 200; i++ {
				pc := uint64(i * 13)
				if p.Predict(pc) != q.Predict(pc) {
					t.Fatalf("prediction diverges at pc %d after restore", pc)
				}
				p.Update(pc, i%2 == 0)
				q.Update(pc, i%2 == 0)
			}
		})
	}
	p, _ := NewPredictor("bimodal", 8, 0)
	q, _ := NewPredictor("tage", 8, 0)
	if err := p.Restore(q.State()); err == nil {
		t.Error("restoring tage state into bimodal should fail")
	}
	if _, err := NewPredictor("gshare", 8, 0); err == nil {
		t.Error("unknown predictor kind should fail")
	}
}

func TestPrefetcherStride(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{
		Streams: 8, Degree: 2, HitLatency: 1,
		Words: 4096, Banks: 4, Seed: 1,
	})
	pc := uint64(0x40)
	now := int64(0)
	// Walk a stride-3 stream; after two confirming deltas the prefetcher
	// must run ahead.
	for i := int64(0); i < 8; i++ {
		addr := 100 + 3*i
		if hit, _ := p.Lookup(addr, now); hit && i < 3 {
			t.Errorf("access %d hit before the stride was confident", i)
		}
		p.Observe(pc, addr, now)
		now += 2
	}
	st := p.Stats()
	if st.Issued == 0 {
		t.Fatal("no prefetches issued on a steady stride")
	}
	if st.Hits == 0 {
		t.Error("no demand load hit a prefetched line")
	}
	if st.Demand != 8 {
		t.Errorf("demand = %d, want 8", st.Demand)
	}
	// Out-of-image targets must be dropped.
	p2 := NewPrefetcher(PrefetchConfig{Streams: 4, Degree: 4, HitLatency: 1, Words: 16, Banks: 1, Seed: 1})
	for i := int64(0); i < 5; i++ {
		p2.Observe(7, 10+i, int64(i))
	}
	for _, l := range p2.buf {
		if l.valid && (l.addr < 0 || l.addr >= 16) {
			t.Errorf("prefetch outside memory image: addr %d", l.addr)
		}
	}
}

func TestPrefetcherPollutionCount(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Streams: 2, Degree: 2, HitLatency: 1, Words: 1 << 20, Banks: 1, Seed: 9})
	// Two interleaved strided streams overflow the 4-line buffer so
	// never-hit lines get evicted and counted useless.
	for i := int64(0); i < 64; i++ {
		p.Observe(1, 100+8*i, i)
		p.Observe(2, 5000+16*i, i)
	}
	if p.Stats().Useless == 0 {
		t.Error("no pollution counted despite guaranteed evictions of unhit lines")
	}
}

func TestPrefetcherStateRoundTrip(t *testing.T) {
	mk := func() *Prefetcher {
		return NewPrefetcher(PrefetchConfig{
			Streams: 8, Degree: 3, HitLatency: 2, MissRate: 0.3,
			PenaltyMin: 10, PenaltyMax: 40, Words: 1 << 16, Banks: 4, Seed: 77,
		})
	}
	p := mk()
	for i := int64(0); i < 40; i++ {
		p.Lookup(200+5*i, i)
		p.Observe(0x9, 200+5*i, i)
	}
	q := mk()
	if err := q.Restore(p.State()); err != nil {
		t.Fatal(err)
	}
	// Same evolution afterwards (exercises the restored rng stream).
	for i := int64(40); i < 80; i++ {
		ph, pr := p.Lookup(200+5*i, i)
		qh, qr := q.Lookup(200+5*i, i)
		if ph != qh || pr != qr {
			t.Fatalf("lookup diverges at %d: (%v,%d) vs (%v,%d)", i, ph, pr, qh, qr)
		}
		p.Observe(0x9, 200+5*i, i)
		q.Observe(0x9, 200+5*i, i)
	}
	a, b := p.Stats(), q.Stats()
	if a.Issued != b.Issued || a.Hits != b.Hits || a.Late != b.Late || a.Useless != b.Useless {
		t.Errorf("stats diverge after restore: %+v vs %+v", a, b)
	}
	if err := q.Restore(&PrefetcherState{}); err == nil {
		t.Error("shape-mismatched restore should fail")
	}
}

// seg builds a tiny thread segment for window tests. Ops only need Code
// and Target; slot 0 is compute, slot 1 control.
func seg(words ...[]*isa.Op) *isa.ThreadCode {
	tc := &isa.ThreadCode{Name: "w"}
	for _, ops := range words {
		tc.Instrs = append(tc.Instrs, isa.Instruction{Ops: ops})
	}
	return tc
}

func add() *isa.Op { return &isa.Op{Code: isa.OpAdd} }
func bt(ip int) *isa.Op {
	return &isa.Op{Code: isa.OpBt, Target: ip}
}

// constPred predicts a fixed direction.
type constPred bool

func (c constPred) Predict(uint64) bool           { return bool(c) }
func (c constPred) Update(uint64, bool)           {}
func (c constPred) State() *PredictorState        { return nil }
func (c constPred) Restore(*PredictorState) error { return nil }

func TestWindowExtendStopsAtUnresolvedBranch(t *testing.T) {
	// 0: add; 1: add+bt->0; 2: add
	code := seg(
		[]*isa.Op{add()},
		[]*isa.Op{add(), bt(0)},
		[]*isa.Op{add()},
	)
	w := NewWindow(code, 4, 0)
	w.Reset(0)
	w.Extend(nil)
	// No predictor: fetch stops after the branch word.
	if len(w.Entries) != 2 {
		t.Fatalf("window holds %d entries, want 2 (stop at unresolved branch)", len(w.Entries))
	}
	if w.Entries[1].NextIP != IPUnknown || w.Entries[1].BrSlot != 1 {
		t.Errorf("branch word decoded wrong: %+v", w.Entries[1])
	}
	// With a taken predictor the fetch continues speculatively at the
	// target, and everything past the branch is marked Spec.
	w2 := NewWindow(code, 4, 0)
	w2.Reset(0)
	w2.Extend(constPred(true))
	if len(w2.Entries) != 4 {
		t.Fatalf("predicted window holds %d entries, want 4", len(w2.Entries))
	}
	if !w2.Entries[1].Predicted || !w2.Entries[1].PredTaken || w2.Entries[1].NextIP != 0 {
		t.Errorf("prediction not recorded: %+v", w2.Entries[1])
	}
	if w2.Entries[0].Spec || w2.Entries[1].Spec || !w2.Entries[2].Spec || !w2.Entries[3].Spec {
		t.Error("speculative marking wrong across predicted branch")
	}
	// Only one outstanding prediction: entry 3 is the branch word again
	// and must NOT be predicted while entry 1 is unresolved.
	if w2.Entries[3].IP == 1 && w2.Entries[3].Predicted {
		t.Error("second prediction made while the first is outstanding")
	}
	// Idempotence at maximal extension (the skip core depends on it).
	if w2.Extend(constPred(true)) {
		t.Error("Extend reported change at maximal extension")
	}
}

func TestWindowRetireAndSquash(t *testing.T) {
	code := seg(
		[]*isa.Op{add()},
		[]*isa.Op{add(), bt(0)},
		[]*isa.Op{add()},
	)
	w := NewWindow(code, 4, 0)
	w.Reset(0)
	w.Extend(constPred(true))
	// Issue word 0's single op and retire it.
	w.Entries[0].Issued[0] = true
	if !w.HeadDone() {
		t.Fatal("head with all ops issued not done")
	}
	if w.RetireHead() {
		t.Fatal("retire of non-final word reported halt")
	}
	if w.Head().IP != 1 {
		t.Fatalf("head after retire is %d, want 1", w.Head().IP)
	}
	// Mispredict: squash everything after the branch entry (now index 0).
	w.SquashAfter(0)
	if len(w.Entries) != 1 {
		t.Fatalf("squash left %d entries, want 1", len(w.Entries))
	}
	// Resolve not-taken and refetch down the fall-through path.
	w.Entries[0].NextIP = 2
	w.Entries[0].Resolved = true
	w.Entries[0].Predicted = false
	w.Extend(nil)
	if len(w.Entries) != 2 || w.Entries[1].IP != 2 {
		t.Fatalf("refetch after squash wrong: %d entries", len(w.Entries))
	}
	if w.Entries[1].Spec {
		t.Error("post-resolution fetch still marked speculative")
	}
	// Run off the end: word 2 falls through to nothing.
	w.Entries[0].Issued[0], w.Entries[0].Issued[1] = true, true
	if w.RetireHead() {
		t.Fatal("halt reported while a successor entry exists")
	}
	w.Entries[0].Issued[0] = true
	if !w.RetireHead() {
		t.Error("running off the end must report implicit halt")
	}
}

func TestWindowBarriers(t *testing.T) {
	code := seg(
		[]*isa.Op{{Code: isa.OpFork, Target: 1}},
		[]*isa.Op{add()},
	)
	w := NewWindow(code, 4, 0)
	w.Reset(0)
	w.Extend(nil)
	if len(w.Entries) != 1 {
		t.Fatalf("fetch crossed a fork barrier: %d entries", len(w.Entries))
	}
	if !w.Entries[0].Barrier {
		t.Error("fork word not marked barrier")
	}
	halt := seg([]*isa.Op{{Code: isa.OpHalt}})
	wh := NewWindow(halt, 4, 0)
	wh.Reset(0)
	wh.Extend(nil)
	if len(wh.Entries) != 1 || wh.Entries[0].NextIP != IPEnd {
		t.Error("halt word should end the fetch path")
	}
}
