package dynsched

import (
	"fmt"

	"pcoup/internal/rng"
)

// PrefetchConfig sizes the stride prefetcher and mirrors the statistical
// memory model it front-runs: prefetch completion times are drawn from
// the same hit/miss distribution, but from the prefetcher's own rng
// stream so the demand stream's draws are untouched.
type PrefetchConfig struct {
	Streams    int // PC-indexed stride table entries
	Degree     int // addresses prefetched ahead per confident access
	HitLatency int
	MissRate   float64
	PenaltyMin int
	PenaltyMax int
	Words      int64 // memory image size; prefetches outside are dropped
	Banks      int
	Seed       uint64
}

// PrefetchStats counts coverage and pollution. Demand is the number of
// observed loads; Hits are demand loads that found a timely prefetch
// (ready within a hit latency), Late found one still in flight, Useless
// counts buffer entries evicted without ever being hit.
type PrefetchStats struct {
	Demand  int64   `json:"demand"`
	Issued  int64   `json:"issued"`
	Hits    int64   `json:"hits"`
	Late    int64   `json:"late"`
	Useless int64   `json:"useless"`
	ByBank  []int64 `json:"by_bank,omitempty"`
}

// stream is one entry of the PC-indexed stride table.
type stream struct {
	tag  uint64 // load PC (valid when touched)
	last int64  // last observed address
	strd int64  // current stride hypothesis
	conf int    // 0..3; prefetch at >= 2
	used bool
}

// pline is one prefetch buffer slot: an address and the cycle its data
// arrives. hit marks it as having served at least one demand load.
type pline struct {
	addr  int64
	ready int64
	hit   bool
	valid bool
}

// Prefetcher is a PC-indexed stride/delta prefetcher with a small FIFO
// prefetch buffer. It is timing-only: it never touches memory words or
// presence bits, so out-of-order or speculative issue cannot observe a
// prefetch architecturally (presence-bit safety by construction).
type Prefetcher struct {
	cfg   PrefetchConfig
	tab   []stream
	buf   []pline
	next  int // FIFO cursor into buf
	stats PrefetchStats
	rnd   *rng.Source
}

// NewPrefetcher builds the prefetcher. Streams and Degree must be
// positive (machine validation guarantees it).
func NewPrefetcher(cfg PrefetchConfig) *Prefetcher {
	bufCap := cfg.Streams * cfg.Degree
	if bufCap > 256 {
		bufCap = 256
	}
	p := &Prefetcher{
		cfg: cfg,
		tab: make([]stream, cfg.Streams),
		buf: make([]pline, bufCap),
		rnd: rng.New(cfg.Seed ^ 0x9e37_79b9_7f4a_7c15),
	}
	if cfg.Banks > 0 {
		p.stats.ByBank = make([]int64, cfg.Banks)
	}
	return p
}

// Stats returns a copy of the counters.
func (p *Prefetcher) Stats() PrefetchStats {
	out := p.stats
	out.ByBank = append([]int64(nil), p.stats.ByBank...)
	return out
}

// latency draws a completion latency from the mirrored memory
// distribution (same shape as memsys's demand draw, independent stream).
func (p *Prefetcher) latency() int64 {
	c := &p.cfg
	if c.MissRate > 0 && p.rnd.Float64() < c.MissRate {
		pen := c.PenaltyMin
		if c.PenaltyMax > c.PenaltyMin {
			pen = p.rnd.Range(c.PenaltyMin, c.PenaltyMax)
		}
		return int64(c.HitLatency + pen)
	}
	return int64(c.HitLatency)
}

// find returns the buffer slot holding addr, or -1.
func (p *Prefetcher) find(addr int64) int {
	for i := range p.buf {
		if p.buf[i].valid && p.buf[i].addr == addr {
			return i
		}
	}
	return -1
}

// Lookup consults the prefetch buffer for a demand load issued at now.
// It returns (true, readyCycle) on a buffer hit; the caller forwards
// the hint to the memory model, which guarantees the demand request is
// never slower than without the prefetch. The entry is not consumed:
// like a small cache line, later loads of the same address keep hitting.
func (p *Prefetcher) Lookup(addr, now int64) (bool, int64) {
	p.stats.Demand++
	i := p.find(addr)
	if i < 0 {
		return false, 0
	}
	p.buf[i].hit = true
	if p.buf[i].ready-now <= int64(p.cfg.HitLatency) {
		p.stats.Hits++
	} else {
		p.stats.Late++
	}
	return true, p.buf[i].ready
}

// Observe trains the stride table on a demand load of addr by the load
// at pc, and issues up to Degree prefetches once the stream's stride is
// confident. Called only on real issue events, so the event-driven skip
// core never needs to tick the prefetcher.
func (p *Prefetcher) Observe(pc uint64, addr, now int64) {
	s := &p.tab[pc%uint64(len(p.tab))]
	if !s.used || s.tag != pc {
		*s = stream{tag: pc, last: addr, used: true}
		return
	}
	d := addr - s.last
	switch {
	case d == s.strd && d != 0:
		if s.conf < 3 {
			s.conf++
		}
	case s.conf > 0:
		s.conf--
	default:
		s.strd = d
	}
	s.last = addr
	if s.conf < 2 || s.strd == 0 {
		return
	}
	for i := 1; i <= p.cfg.Degree; i++ {
		a := addr + s.strd*int64(i)
		if a < 0 || a >= p.cfg.Words {
			break
		}
		if p.find(a) >= 0 {
			continue
		}
		p.insert(a, now+p.latency())
	}
}

// insert places a prefetch in the FIFO buffer, evicting the oldest slot
// and counting pollution when the victim never served a hit.
func (p *Prefetcher) insert(addr, ready int64) {
	v := &p.buf[p.next]
	if v.valid && !v.hit {
		p.stats.Useless++
	}
	*v = pline{addr: addr, ready: ready, valid: true}
	p.next = (p.next + 1) % len(p.buf)
	p.stats.Issued++
	if len(p.stats.ByBank) > 0 {
		p.stats.ByBank[addr%int64(len(p.stats.ByBank))]++
	}
}

// PrefetcherState is the JSON-encodable snapshot of all mutable state.
type PrefetcherState struct {
	Streams []StreamState `json:"streams"`
	Buffer  []LineState   `json:"buffer"`
	Next    int           `json:"next"`
	Stats   PrefetchStats `json:"stats"`
	Rng     uint64        `json:"rng"`
}

// StreamState snapshots one stride-table entry.
type StreamState struct {
	Tag  uint64 `json:"tag"`
	Last int64  `json:"last"`
	Strd int64  `json:"strd"`
	Conf int    `json:"conf"`
	Used bool   `json:"used,omitempty"`
}

// LineState snapshots one prefetch buffer slot.
type LineState struct {
	Addr  int64 `json:"addr"`
	Ready int64 `json:"ready"`
	Hit   bool  `json:"hit,omitempty"`
	Valid bool  `json:"valid,omitempty"`
}

// State implements the snapshot side of checkpointing.
func (p *Prefetcher) State() *PrefetcherState {
	st := &PrefetcherState{Next: p.next, Stats: p.Stats(), Rng: p.rnd.State()}
	for _, s := range p.tab {
		st.Streams = append(st.Streams, StreamState{Tag: s.tag, Last: s.last, Strd: s.strd, Conf: s.conf, Used: s.used})
	}
	for _, l := range p.buf {
		st.Buffer = append(st.Buffer, LineState{Addr: l.addr, Ready: l.ready, Hit: l.hit, Valid: l.valid})
	}
	return st
}

// Restore implements the restore side of checkpointing.
func (p *Prefetcher) Restore(st *PrefetcherState) error {
	if st == nil {
		return fmt.Errorf("dynsched: prefetcher restore: nil state")
	}
	if len(st.Streams) != len(p.tab) || len(st.Buffer) != len(p.buf) {
		return fmt.Errorf("dynsched: prefetcher restore: shape mismatch (%d/%d streams, %d/%d lines)",
			len(st.Streams), len(p.tab), len(st.Buffer), len(p.buf))
	}
	for i, s := range st.Streams {
		p.tab[i] = stream{tag: s.Tag, last: s.Last, strd: s.Strd, conf: s.Conf, used: s.Used}
	}
	for i, l := range st.Buffer {
		p.buf[i] = pline{addr: l.Addr, ready: l.Ready, hit: l.Hit, valid: l.Valid}
	}
	p.next = st.Next
	p.stats = st.Stats
	p.stats.ByBank = append([]int64(nil), st.Stats.ByBank...)
	p.rnd.SetState(st.Rng)
	return nil
}
