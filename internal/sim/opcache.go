package sim

import "pcoup/internal/machine"

// opCache models one function unit's operation cache (extension; the
// paper's simulations assume no operation cache misses). The cache is
// direct-mapped over (segment, word) addresses with one outstanding fill
// per unit: an operation whose word is absent cannot issue until the
// fill completes.
type opCache struct {
	model machine.OpCacheModel
	// tags[slot] holds the resident word address + 1 (0 = empty).
	tags []int64
	// One outstanding fill: the address being fetched and when it lands.
	fillTag   int64
	fillReady int64
	filling   bool

	misses int64
}

func newOpCache(model machine.OpCacheModel) *opCache {
	return &opCache{model: model, tags: make([]int64, model.Entries)}
}

// addr packs a segment index and word index into a cache address.
func opCacheAddr(seg, word int) int64 { return int64(seg)<<32 | int64(word) }

// present reports residency without starting or installing fills (the
// read-only probe used by stall attribution; a word whose fill is still
// in flight counts as absent).
func (c *opCache) present(seg, word int) bool {
	addr := opCacheAddr(seg, word)
	return c.tags[addr%int64(len(c.tags))] == addr+1
}

// lookup reports whether the word is issuable from the cache this cycle,
// starting or completing a fill as needed.
func (c *opCache) lookup(seg, word int, now int64) bool {
	addr := opCacheAddr(seg, word)
	slot := addr % int64(len(c.tags))
	if c.tags[slot] == addr+1 {
		return true
	}
	if c.filling {
		if now >= c.fillReady {
			// Install the completed fill.
			fslot := c.fillTag % int64(len(c.tags))
			c.tags[fslot] = c.fillTag + 1
			c.filling = false
			return c.tags[slot] == addr+1
		}
		return false // a different fill is in flight
	}
	c.filling = true
	c.fillTag = addr
	c.fillReady = now + int64(c.model.MissPenalty)
	c.misses++
	return false
}
