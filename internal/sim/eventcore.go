package sim

// The event core: cycle skipping over provably idle stretches.
//
// The ticking kernel executes every cycle even when every thread is
// blocked on a memory presence bit or a long-latency reference — the
// common case on memory-bound cells (LUD, the Mem1/Mem2 latency models).
// The event core jumps over those cycles: immediately after a step in
// which nothing happened (no memory completion, no writeback
// arbitration, no issue), the machine state is frozen, so the next cycle
// that can possibly do work is computable in O(outstanding refs). Run
// then advances s.cycle (and the memory clock) there directly.
//
// Exactness argument, per input of step:
//
//   - Issue: issueCoupled/issueLockStep read only registers, presence
//     bits, thread counters, and word frontiers. A quiet cycle changes
//     none of them, and the exhaustive per-unit scan found no ready
//     (unit, thread) pair, so no arbitration order (including the
//     round-robin rotation, which varies by cycle) could issue anything
//     on any skipped cycle.
//   - Memory: memsys.SkipBudget bounds the jump to ticks with no
//     arrival, no parked-queue service, no delayed-reactivation
//     promotion, and no bank-queue start; memsys.SkipTicks ages the
//     in-flight references exactly as that many empty Ticks would.
//   - Writebacks: the jump stops one cycle before the earliest readyAt,
//     so drainWritebacks would have early-outed on every skipped cycle
//     (and a writeback that lost arbitration keeps readyAt <= cycle,
//     which forces the budget to 0 — port-outage windows therefore
//     retry cycle by cycle exactly as before).
//   - Stall attribution: classify() depends on the cycle number only
//     through `readyAt <= cycle` comparisons, whose verdicts the
//     writeback bound keeps constant across the skipped range, so one
//     classification per thread is credited k times (conservation:
//     every active thread still gets exactly one cause per cycle).
//   - Side channels: checkpoint cadence, the watchdog window, the
//     deadlock window, and the cycle budget are skip horizons, so those
//     events fire at exactly the cycle the ticking kernel fires them.
//
// Skipping is disabled by construction when a per-cycle observer or a
// per-cycle state mutation exists: text traces, issue hooks (the
// InterleaveRecorder), JSON tracers, operation caches (a lookup per
// probe mutates fill state), and unit-outage injection (issueCoupled
// draws the outage RNG for every slot every cycle, so the fault
// schedule itself is per-cycle). Memory delay/drop faults and port
// outages draw their RNG only at commits and active drains, which occur
// on identical cycles in both kernels, so they stay skippable.

// WithCycleSkipping enables or disables the event core's cycle skipping
// (default: enabled). Results are bit-identical either way; disabling is
// for differential tests and for measuring the ticking kernel.
func WithCycleSkipping(enabled bool) Option {
	return func(s *Sim) { s.skipDisabled = !enabled }
}

// SkippedCycles returns how many cycles the event core jumped over so
// far (0 when skipping is disabled or never engaged).
func (s *Sim) SkippedCycles() int64 { return s.skipped }

// probeBackoff is the adaptive-fallback threshold: after this many
// consecutive failed skip probes the core stops probing until memory
// activity re-arms it. Busy cells hit the ceiling within one dependence
// bubble and pay nothing afterwards; memory-bound cells re-arm on every
// issue/completion, so their long idle stretches are always probed.
const probeBackoff = 8

// rearmProbe re-enables quiet-cycle probing. Called on memory activity
// (a reference issued or completed), the only state transitions that
// open multi-cycle idle windows worth probing for.
func (s *Sim) rearmProbe() {
	s.probeMisses = 0
	s.probeOff = false
}

// skipAllowed decides once per Run whether cycle skipping is sound for
// this Sim's configuration and observers.
func (s *Sim) skipAllowed() bool {
	if s.skipDisabled {
		return false
	}
	if s.trace != nil || s.issueHook != nil || s.jsonTrace != nil {
		return false
	}
	if s.opCaches != nil {
		return false
	}
	if s.inj != nil && s.inj.Model().UnitOutageRate > 0 {
		return false
	}
	return true
}

// skipBudget computes, after a quiet step at s.cycle, how many
// immediately following cycles are provably idle and safe to jump. The
// next executed cycle is s.cycle + k + 1; every horizon below bounds k
// so that the first cycle that may do (or observe) work still executes.
//
// The cheap horizons run first: on busy cells (matrix, fft, model) the
// dominant quiet-cycle pattern is a dependence bubble with a compute
// writeback due next cycle, which the wbq scan rejects in a handful of
// comparisons — the O(outstanding refs) memory scan (memProbes) only
// runs once everything cheaper has admitted a jump.
func (s *Sim) skipBudget(stallLimit, maxCycles int64) int64 {
	s.probes++
	if len(s.pendingSpawns) > 0 {
		return 0
	}
	k := int64(1<<62 - 1)
	for i := range s.wbq {
		if b := s.wbq[i].readyAt - s.cycle - 1; b < k {
			k = b
		}
	}
	if k <= 0 {
		return 0
	}
	// Deadlock window: the first check that can fire does so at cycle
	// lastProgress + stallLimit + 1; executing it there reproduces the
	// ticking kernel's DeadlockError cycle and bounds every jump.
	if b := s.lastProgress + stallLimit - s.cycle; b < k {
		k = b
	}
	// Branch-squash suppression: a suppressed window thread resumes
	// issue (and its attribution changes) at cycle squashUntil+1, so
	// that cycle must execute. Within the jump every skipped cycle stays
	// suppressed, keeping the per-cycle classification constant.
	if s.dyn != nil {
		for _, t := range s.threads {
			if t.Halted || t.dyn == nil {
				continue
			}
			if b := t.dyn.squashUntil - s.cycle; b >= 0 && b < k {
				k = b
			}
		}
	}
	// Checkpoint boundary: land exactly on the next multiple so the
	// checkpoint stream stays byte-identical.
	if s.nextCkpt > 0 {
		if b := s.nextCkpt - s.cycle - 1; b < k {
			k = b
		}
	}
	// Cycle budget: the budget check must still observe cycle maxCycles.
	if b := maxCycles - s.cycle - 1; b < k {
		k = b
	}
	if k < 1 {
		return 0
	}
	// Memory: the O(outstanding refs) scan, only now that every cheap
	// horizon has admitted a jump.
	s.memProbes++
	if b := s.mem.SkipBudget(); b < k {
		k = b
	}
	if k < 1 {
		return 0
	}
	// Watchdog window: only a sweep that would recover something is an
	// event (a no-op sweep changes nothing and may be jumped over). The
	// parked-queue scan is deferred until the jump would actually cross
	// the window — with recent progress it never runs.
	if s.watchRetries > 0 {
		if b := s.lastProgress + s.watchWindow - s.cycle; b < k && s.mem.HasLostWakeups() {
			k = b
		}
	}
	if k < 1 {
		return 0
	}
	return k
}

// skipCycles jumps the machine over k provably idle cycles, crediting
// each skipped cycle's stall classification so the attribution
// histograms are identical to the ticking kernel's.
func (s *Sim) skipCycles(k int64) {
	if s.attrib != nil {
		for _, t := range s.threads {
			if t.Halted {
				continue
			}
			// The classification is constant across the skipped range:
			// machine state is frozen and every queued writeback's readyAt
			// lies beyond the jump (see the file comment).
			cause, slot, reg, hasReg := s.classify(t)
			s.attrib.slots += k
			t.stalls[cause] += k
			if slot >= 0 {
				s.attrib.perUnit[slot][cause] += k
			}
			if hasReg {
				s.attrib.waitRegs[reg.String()] += k
			}
		}
	}
	s.cycle += k
	s.mem.SkipTicks(k)
	s.skipped += k
}
