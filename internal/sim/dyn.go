package sim

import (
	"fmt"

	"pcoup/internal/dynsched"
	"pcoup/internal/isa"
	"pcoup/internal/memsys"
)

// This file plugs the optional dynamic-scheduling subsystem
// (internal/dynsched) into the cycle kernel. With cfg.Dynamic zero the
// simulator never reaches any code here beyond a nil check, so the
// paper-exact machine is byte-identical to before the subsystem
// existed.
//
// Design invariants (the event-driven skip core depends on all three):
//   - The per-thread issue window, the shared branch predictor, and the
//     prefetcher mutate only on real issue events or on cycles the
//     kernel already marks busy (retire/extend in dynAdvance marks the
//     cycle busy). On a quiet cycle everything is a pure function of
//     frozen state, so skipped cycles cannot diverge from ticked ones.
//   - Speculative entries issue only pure compute ops; their register
//     effects are undone exactly on squash (writeback removal + old
//     value restore), so a misprediction is architecturally invisible.
//   - The prefetcher is timing-only: it never touches memory words or
//     presence bits, only attaches completion-time hints to demand
//     loads, so OoO issue and prefetch preserve oracle semantics.

// DynStats summarizes the dynamic-scheduling subsystem over a run.
type DynStats struct {
	// Branches counts resolved conditional branches; Mispredicts the
	// subset whose predicted successor was wrong; Squashes the
	// mispredictions that triggered a window squash (every mispredict).
	Branches    int64 `json:"branches"`
	Mispredicts int64 `json:"mispredicts"`
	Squashes    int64 `json:"squashes"`
	// SquashedOps counts speculatively issued operations undone by
	// squashes (wrong-path work).
	SquashedOps int64 `json:"squashed_ops"`
	// WindowIssued counts operations issued from behind the head word
	// (the out-of-order benefit; head issues are the in-order baseline).
	WindowIssued int64 `json:"window_issued"`
	// Prefetch carries the stride prefetcher's coverage and pollution
	// counters; nil when prefetching is off.
	Prefetch *dynsched.PrefetchStats `json:"prefetch,omitempty"`
}

// dynState is the Sim-wide dynamic-scheduling state: one predictor and
// one prefetcher shared by all threads (they model per-node hardware),
// plus the run's counters.
type dynState struct {
	winCap int // issue-window depth in words; 0 = in-order issue
	pred   dynsched.Predictor
	pref   *dynsched.Prefetcher
	stats  DynStats
}

// dynThread is the per-thread window state.
type dynThread struct {
	win *dynsched.Window
	// squashUntil suppresses issue through this cycle after a
	// misprediction (re-fetch/re-decode charge).
	squashUntil int64
	// specIssued counts ops issued from speculative entries since the
	// last commit or squash.
	specIssued int64
	// undo records how to revert speculative register writes, in issue
	// order; applied in reverse on squash.
	undo []specUndo
}

// specUndo reverts one speculative register write: drop its queued
// writeback (or overwrite its drained value) and restore the previous
// register contents and presence bit.
type specUndo struct {
	reg   isa.RegRef
	old   isa.Value
	wbSeq int64
}

// initDyn builds the subsystem from cfg.Dynamic; called by New before
// the main thread spawns so the first window seeds correctly.
func (s *Sim) initDyn() error {
	d := s.cfg.Dynamic
	if !d.Enabled() {
		return nil
	}
	s.dyn = &dynState{winCap: d.Window}
	if d.Predictor != "" {
		p, err := dynsched.NewPredictor(d.Predictor, d.EffPredictorBits(), s.cfg.Seed)
		if err != nil {
			return err
		}
		s.dyn.pred = p
	}
	if d.PrefetchStreams > 0 {
		mm := s.cfg.Memory
		s.dyn.pref = dynsched.NewPrefetcher(dynsched.PrefetchConfig{
			Streams:    d.PrefetchStreams,
			Degree:     d.EffPrefetchDegree(),
			HitLatency: mm.HitLatency,
			MissRate:   mm.MissRate,
			PenaltyMin: mm.MissPenaltyMin,
			PenaltyMax: mm.MissPenaltyMax,
			Words:      s.mem.Size(),
			Banks:      mm.Banks,
			Seed:       s.cfg.Seed,
		})
	}
	return nil
}

// attachWindow gives a freshly spawned thread its issue window, aliasing
// the head entry's issue bitmap as the thread's in-order bitmap so the
// legacy word/classify/deadlock helpers keep working on the head.
func (s *Sim) attachWindow(t *Thread) {
	if s.dyn == nil || s.dyn.winCap == 0 || t.Halted {
		return
	}
	t.dyn = &dynThread{win: dynsched.NewWindow(t.Seg, s.dyn.winCap, uint64(t.SegIdx)<<20)}
	t.dyn.win.Reset(t.IP)
	t.dyn.win.Extend(s.dynPred())
	s.syncHead(t)
}

// dynPred returns the shared predictor (nil when prediction is off).
func (s *Sim) dynPred() dynsched.Predictor {
	if s.dyn == nil {
		return nil
	}
	return s.dyn.pred
}

// syncHead refreshes the thread's architectural view (IP, issued bitmap)
// from the window's head entry.
func (s *Sim) syncHead(t *Thread) {
	if h := t.dyn.win.Head(); h != nil {
		t.IP = h.IP
		t.issued = h.Issued
	}
}

// issueDyn is the windowed variant of issueCoupled: each unit scans
// threads in arbitration order, and within a thread scans window
// entries oldest-first for a ready, hazard-free operation.
func (s *Sim) issueDyn() {
	order := s.threadOrder()
	for slot := range s.units {
		if s.inj != nil && s.inj.UnitDown(slot, s.cycle) {
			continue
		}
		for _, ti := range order {
			t := s.threads[ti]
			if t.stalled || t.Halted || t.dyn == nil {
				continue
			}
			if s.cycle <= t.dyn.squashUntil {
				continue
			}
			if s.issueFromWindow(t, slot) {
				break // unit consumed this cycle
			}
		}
	}
}

// issueFromWindow tries to issue one op of thread t on unit slot.
func (s *Sim) issueFromWindow(t *Thread, slot int) bool {
	for k, e := range t.dyn.win.Entries {
		w := &t.Seg.Instrs[e.IP]
		if slot >= len(w.Ops) {
			continue
		}
		op := w.Ops[slot]
		if op == nil || e.Issued[slot] {
			continue
		}
		if !s.issueOK(t, k, e, slot, op) || !s.ready(t, op) {
			continue
		}
		s.issueDynOp(t, k, e, slot, op)
		return true
	}
	return false
}

// opReadsReg reports whether op reads register r.
func opReadsReg(op *isa.Op, r isa.RegRef) bool {
	for _, src := range op.Srcs {
		if src.Kind == isa.OperandReg && src.Reg == r {
			return true
		}
	}
	return false
}

// issueOK applies the window hazard rules for issuing op from entry k:
//   - speculative entries issue only pure compute (no memory, control,
//     or thread effects on a possibly wrong path);
//   - fork and halt issue only from the head (thread-management effects
//     stay in program order);
//   - against every unissued op of older entries: RAW/WAR/WAW register
//     hazards block, and memory ops keep program order among unissued
//     memory ops (issued in-flight references are covered by presence
//     bits and the memory system's same-address serialization).
func (s *Sim) issueOK(t *Thread, k int, e *dynsched.Entry, slot int, op *isa.Op) bool {
	if e.Spec && !op.Code.Pure() {
		return false
	}
	if k == 0 {
		return true
	}
	if op.Code == isa.OpFork || op.Code == isa.OpHalt {
		return false
	}
	win := t.dyn.win
	for j := 0; j < k; j++ {
		pe := win.Entries[j]
		pw := &t.Seg.Instrs[pe.IP]
		for ps, pop := range pw.Ops {
			if pop == nil || pe.Issued[ps] {
				continue
			}
			if op.IsMemory() && pop.IsMemory() {
				return false
			}
			for _, pd := range pop.Dests {
				if opReadsReg(op, pd) { // RAW
					return false
				}
			}
			for _, d := range op.Dests {
				if opReadsReg(pop, d) { // WAR
					return false
				}
				for _, pd := range pop.Dests {
					if d == pd { // WAW
						return false
					}
				}
			}
		}
	}
	return true
}

// issueDynOp commits the issue of op from window entry e (index k),
// mirroring issueOp with window-aware control flow: branches resolve
// here (against the prediction, if any) instead of recording a pending
// branch on the thread.
func (s *Sim) issueDynOp(t *Thread, k int, e *dynsched.Entry, slot int, op *isa.Op) {
	u := s.units[slot]
	d := t.dyn
	e.Issued[slot] = true
	t.OpsIssued++
	t.lastIssue = s.cycle
	s.stats.Ops++
	s.stats.IssuedByKind[u.Kind]++
	s.stats.IssuedByUnit[slot]++
	if k > 0 {
		s.dyn.stats.WindowIssued++
	}
	s.progress()

	vals := s.valScratch[:0]
	for _, src := range op.Srcs {
		vals = append(vals, t.Regs.OperandValue(src))
	}
	s.valScratch = vals[:0]
	if s.trace != nil {
		fmt.Fprintf(s.trace, "[%6d] t%d u%d issue %s (win+%d)\n", s.cycle, t.ID, slot, op, k)
	}
	if s.issueHook != nil {
		s.issueHook(s.cycle, slot, t.ID, op)
	}
	if s.jsonTrace != nil {
		s.jsonTrace.issue(s.cycle, slot, t.ID, op, u)
	}

	switch op.Code {
	case isa.OpLoad, isa.OpStore:
		for _, dst := range op.Dests {
			t.Regs.ClearValid(dst)
		}
		s.issueMemRef(t, slot, op, vals, e.IP)
	case isa.OpJmp:
		// Successor resolved statically at fetch; nothing to do.
	case isa.OpBt:
		s.resolveBranch(t, k, e, op, vals[0].Truthy())
	case isa.OpBf:
		s.resolveBranch(t, k, e, op, !vals[0].Truthy())
	case isa.OpFork:
		s.spawn(op.Target)
	case isa.OpHalt:
		t.Halted = true
		t.HaltAt = s.cycle
		for _, other := range s.threads {
			other.stalled = false
		}
	default:
		res, err := isa.Eval(op.Code, vals)
		if err != nil {
			panic(fmt.Sprintf("sim: cycle %d thread %d: %v", s.cycle, t.ID, err))
		}
		for _, dst := range op.Dests {
			old := t.Regs.Read(dst)
			t.Regs.ClearValid(dst)
			s.pushWriteback(t, dst, res, u.Cluster, s.cycle+int64(u.Latency))
			if e.Spec {
				d.undo = append(d.undo, specUndo{reg: dst, old: old, wbSeq: s.wbSeq})
			}
		}
		if e.Spec {
			d.specIssued++
		}
	}
}

// resolveBranch resolves a conditional branch at issue: trains the
// predictor, commits a correct speculative path, or squashes a wrong
// one (undoing speculative register writes in reverse issue order) and
// charges the squash penalty.
func (s *Sim) resolveBranch(t *Thread, k int, e *dynsched.Entry, op *isa.Op, taken bool) {
	d := t.dyn
	win := d.win
	actual := win.EffIP(e.IP + 1)
	if taken {
		actual = win.EffIP(op.Target)
	}
	s.dyn.stats.Branches++
	if s.dyn.pred != nil {
		s.dyn.pred.Update(win.PC(e.IP), taken)
	}
	switch {
	case e.Predicted && e.NextIP != actual:
		s.dyn.stats.Mispredicts++
		s.dyn.stats.Squashes++
		s.squashSpec(t, k)
		pen := int64(s.cfg.Dynamic.EffSquashPenalty())
		if until := s.cycle + pen; until > d.squashUntil {
			d.squashUntil = until
		}
	case e.Predicted:
		// Correct (or path-converging) prediction: the speculative
		// entries are the architectural path.
		win.CommitSpec()
		d.undo = d.undo[:0]
		d.specIssued = 0
	}
	e.NextIP = actual
	e.Resolved = true
}

// squashSpec undoes all speculative issue after the mispredicted branch
// at entry k and drops the wrong-path entries.
func (s *Sim) squashSpec(t *Thread, k int) {
	d := t.dyn
	s.dyn.stats.SquashedOps += d.specIssued
	for i := len(d.undo) - 1; i >= 0; i-- {
		u := d.undo[i]
		s.removeWriteback(u.wbSeq)
		t.Regs.Write(u.reg, u.old)
	}
	d.undo = d.undo[:0]
	d.specIssued = 0
	d.win.SquashAfter(k)
}

// removeWriteback drops a queued writeback by sequence number (no-op if
// it already drained; the squash then overwrites the drained value).
func (s *Sim) removeWriteback(seq int64) {
	for i := range s.wbq {
		if s.wbq[i].seq == seq {
			if i < s.wbqSorted {
				s.wbqSorted--
			}
			s.wbq = append(s.wbq[:i], s.wbq[i+1:]...)
			return
		}
	}
}

// issueMemRef issues a load or store to the memory system, tagging it
// with the issuing word's coordinates (ip is the window entry's word
// under dynamic issue, the head word otherwise) and threading the
// prefetcher's timing hints on loads.
func (s *Sim) issueMemRef(t *Thread, slot int, op *isa.Op, vals []isa.Value, ip int) {
	u := s.units[slot]
	req := s.allocReq()
	if op.Code == isa.OpStore {
		addr := op.Offset
		for _, v := range vals[1:] {
			addr += v.AsInt()
		}
		*req = memsys.Request{
			IsStore: true, Sync: op.Sync, Addr: addr, Store: vals[0],
			Tag: memsys.Tag{Thread: t.ID, SegIdx: t.SegIdx, IP: ip, Slot: slot, SrcCluster: u.Cluster},
		}
		t.storesOut++
	} else {
		addr := op.Offset
		for _, v := range vals {
			addr += v.AsInt()
		}
		*req = memsys.Request{
			Sync: op.Sync, Addr: addr,
			Tag: memsys.Tag{Thread: t.ID, SegIdx: t.SegIdx, IP: ip, Slot: slot, SrcCluster: u.Cluster},
		}
		if op.Sync != isa.SyncNone {
			t.syncLoadsOut++
		}
		if s.dyn != nil && s.dyn.pref != nil && addr >= 0 && addr < s.mem.Size() {
			now := s.mem.Now()
			if hit, ready := s.dyn.pref.Lookup(addr, now); hit {
				req.PrefHit, req.PrefReady = true, ready
			}
			// The stream key includes the thread: forked workers run the
			// same segment code, and their interleaved per-thread strides
			// would otherwise alias one PC-indexed entry and never gain
			// confidence.
			pc := uint64(t.ID)<<36 | uint64(t.SegIdx)<<28 | uint64(slot)<<20 | uint64(ip)
			s.dyn.pref.Observe(pc, addr, now)
		}
	}
	_ = s.mem.Issue(req)
	s.rearmProbe()
}

// dynAdvance is the window thread's frontier phase: retire at most one
// fully-issued head word per cycle (the commit width matches the
// in-order core's one-word-per-cycle frontier), then extend the fetch
// path. Any change marks the cycle busy so the event core never skips
// over a retire/extend step. On an unchanged window this is a pure
// no-op, which makes it safe (and idempotent) on quiet cycles.
func (s *Sim) dynAdvance(t *Thread) bool {
	d := t.dyn
	changed := false
	if d.win.HeadDone() {
		changed = true
		if d.win.RetireHead() {
			t.Halted = true
			t.HaltAt = s.cycle
			return true
		}
	}
	if d.win.Extend(s.dynPred()) {
		changed = true
	}
	if changed {
		s.syncHead(t)
		t.stalled = false
	}
	return changed
}

// anyReadyDyn reports whether any unissued op anywhere in the window is
// ready and hazard-free (the settle-phase predicate for dyn threads).
func (s *Sim) anyReadyDyn(t *Thread) bool {
	for k, e := range t.dyn.win.Entries {
		w := &t.Seg.Instrs[e.IP]
		for slot, op := range w.Ops {
			if op == nil || e.Issued[slot] {
				continue
			}
			if s.issueOK(t, k, e, slot, op) && s.ready(t, op) {
				return true
			}
		}
	}
	return false
}

// classifyDyn attributes a non-issuing cycle of a window thread:
// squash suppression first; then, if some op is ready but lost unit
// arbitration, the unit (fault or busy); otherwise the oldest entry
// with unissued work is classified like an in-order head word. A
// drained window (every fetched op issued, retire/fetch limited) is
// the window-full structural stall.
func (s *Sim) classifyDyn(t *Thread) (cause StallCause, slot int, reg isa.RegRef, hasReg bool) {
	d := t.dyn
	if s.cycle <= d.squashUntil {
		return CauseBranchSquash, -1, reg, false
	}
	for k, e := range d.win.Entries {
		w := &t.Seg.Instrs[e.IP]
		for sl, op := range w.Ops {
			if op == nil || e.Issued[sl] {
				continue
			}
			if s.issueOK(t, k, e, sl, op) && s.ready(t, op) {
				if s.inj != nil && s.inj.UnitDownQuiet(sl, s.cycle) {
					return CauseFault, sl, reg, false
				}
				return CauseFUBusy, sl, reg, false
			}
		}
	}
	// Nothing ready anywhere: blame the oldest entry with unissued work,
	// classified by the same word-local rules as an in-order head. When
	// the word-local scan finds nothing blocking (every unissued op was
	// ready by its own word's rules), the ops are hazard-blocked in the
	// window — speculative non-pure ops waiting on branch resolution,
	// fork/halt waiting to reach the head, or register/memory ordering
	// against older entries — all of which resolve through the window
	// draining, so the window is charged.
	for _, e := range d.win.Entries {
		w := &t.Seg.Instrs[e.IP]
		pending := false
		for sl, op := range w.Ops {
			if op != nil && !e.Issued[sl] {
				pending = true
				break
			}
		}
		if !pending {
			continue
		}
		cause, sl, wreg, hasReg, blocked := s.classifyWord(t, w, e.Issued)
		if blocked {
			return cause, sl, wreg, hasReg
		}
		return CauseWindowFull, sl, reg, false
	}
	// Every fetched op is in flight: the thread is limited by window
	// capacity / retire bandwidth.
	return CauseWindowFull, -1, reg, false
}
