package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pcoup/internal/isa"
)

// forkOp builds a fork to segment target on the mini machine's BR unit.
func forkOp(target int) *isa.Op {
	return &isa.Op{Code: isa.OpFork, Unit: uBR, Target: target}
}

// contended builds a program whose two forked workers fight over IU0, so
// the run exercises issued, fu-busy, and mem-sync classifications.
func contended() *isa.Program {
	seg := func(name string) *isa.ThreadCode {
		var words []isa.Instruction
		for i := 0; i < 10; i++ {
			words = append(words, word(opAdd(uIU0, r(0, 0), isa.ImmInt(int64(i)), isa.ImmInt(1))))
		}
		words = append(words, word(opHalt()))
		return &isa.ThreadCode{Name: name, Instrs: words}
	}
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(forkOp(1)),
		word(forkOp(2)),
		word(opHalt()),
	}}
	return prog(main, seg("a"), seg("b"))
}

func TestStallAttributionConservation(t *testing.T) {
	s, err := New(miniMachine(), contended(), WithStallAttribution())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(10000)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stalls
	if st == nil {
		t.Fatal("Result.Stalls nil with attribution enabled")
	}
	// Conservation: issued cycles plus per-cause stall cycles account for
	// every active thread-cycle, per thread and in aggregate.
	var want int64
	for _, th := range res.Threads {
		if th.Stalls == nil {
			t.Fatalf("t%d missing per-thread breakdown", th.ID)
		}
		active := th.HaltAt - th.SpawnAt
		if got := th.Stalls.Total(); got != active {
			t.Errorf("t%d: breakdown sums to %d, active %d cycles", th.ID, got, active)
		}
		want += active
	}
	if st.Slots != want {
		t.Errorf("Slots = %d, want %d (sum of active thread-cycles)", st.Slots, want)
	}
	if got := st.Total.Total(); got != st.Slots {
		t.Errorf("aggregate breakdown sums to %d, want Slots %d", got, st.Slots)
	}
	if st.Total[CauseIssued] == 0 {
		t.Error("no issued cycles recorded")
	}
	// Two identical threads on one IU: the loser's cycles must show up as
	// fu-busy arbitration losses on unit slot uIU0.
	if st.Total[CauseFUBusy] == 0 {
		t.Error("contended run recorded no fu-busy cycles")
	}
	if st.PerUnit[uIU0][CauseFUBusy] == 0 {
		t.Errorf("fu-busy not attributed to IU0: %v", st.PerUnit)
	}
}

func TestStallAttributionPresenceWait(t *testing.T) {
	// Main parks a synchronizing load until the worker's store lands; the
	// cycles main spends waiting on the loaded register must be classified
	// as memory-sync waits on that register.
	worker := &isa.ThreadCode{Name: "w", Instrs: []isa.Instruction{
		word(opAdd(uIU1, r(1, 0), isa.ImmInt(0), isa.ImmInt(0))),
		word(opAdd(uIU1, r(1, 0), isa.Reg(r(1, 0)), isa.ImmInt(1))),
		word(opAdd(uIU1, r(1, 0), isa.Reg(r(1, 0)), isa.ImmInt(1))),
		word(opStore(uMEM1, isa.Reg(r(1, 0)), 8)),
		word(opHalt()),
	}}
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(forkOp(1)),
		word(opLoad(uMEM0, r(0, 0), 8, isa.SyncWaitFull)), // parks
		word(opStore(uMEM0, isa.Reg(r(0, 0)), 9)),
		word(opHalt()),
	}}
	p := prog(main, worker)
	p.Data = []isa.DataSegment{{Name: "cell", Addr: 8, Values: []isa.Value{isa.Int(0)}, Full: false}}
	s, err := New(miniMachine(), p, WithStallAttribution())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(10000)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stalls
	if st.Total[CauseMemSync] == 0 {
		t.Error("parked load recorded no mem-sync cycles")
	}
	if st.WaitRegs["c0.r0"] == 0 {
		t.Errorf("wait on c0.r0 not recorded: %v", st.WaitRegs)
	}
}

// deadlocked builds a two-thread program that parks forever: both threads
// issue a synchronizing load from a cell nothing ever fills, then try to
// consume the loaded register.
func deadlocked() *isa.Program {
	worker := &isa.ThreadCode{Name: "w", Instrs: []isa.Instruction{
		word(opLoad(uMEM1, r(1, 0), 8, isa.SyncWaitFull)),
		word(opStore(uMEM1, isa.Reg(r(1, 0)), 9)),
		word(opHalt()),
	}}
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(forkOp(1)),
		word(opLoad(uMEM0, r(0, 0), 8, isa.SyncWaitFull)),
		word(opStore(uMEM0, isa.Reg(r(0, 0)), 10)),
		word(opHalt()),
	}}
	p := prog(main, worker)
	p.Data = []isa.DataSegment{{Name: "cell", Addr: 8, Values: []isa.Value{isa.Int(0)}, Full: false}}
	return p
}

func TestDeadlockNamesWaitingRegister(t *testing.T) {
	s, err := New(miniMachine(), deadlocked())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(100000)
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("error = %v (%T), want *DeadlockError", err, err)
	}
	// Each blocked thread's diagnostic must carry its PC, its stall
	// cause, and the blocking resource: the register it is waiting on
	// and the memory address its reference is parked at.
	all := strings.Join(de.Threads, "\n")
	for _, wantReg := range []string{"c0.r0", "c1.r0"} {
		if !strings.Contains(all, wantReg) {
			t.Errorf("thread diagnostics missing waiting register %s:\n%s", wantReg, all)
		}
	}
	if !strings.Contains(all, "mem-sync") {
		t.Errorf("thread diagnostics missing stall cause:\n%s", all)
	}
	if !strings.Contains(all, "pc=") {
		t.Errorf("thread diagnostics missing pc:\n%s", all)
	}
	if !strings.Contains(all, "waiting addr 8") {
		t.Errorf("thread diagnostics missing blocking memory address:\n%s", all)
	}
	if !strings.Contains(de.Detail, "stalls:") {
		t.Errorf("Detail missing stall summary: %s", de.Detail)
	}
}

func TestShortMaxCyclesStillDiagnosesDeadlock(t *testing.T) {
	// A -max budget smaller than the default 20k no-progress window must
	// still produce the deadlock diagnostic, not a generic budget error.
	s, err := New(miniMachine(), deadlocked())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(500)
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("error = %v (%T), want *DeadlockError", err, err)
	}
	if de.Cycle > 500 {
		t.Errorf("deadlock reported at cycle %d, beyond the %d budget", de.Cycle, 500)
	}
}

func TestJSONTraceOutput(t *testing.T) {
	tr := NewJSONTracer(miniMachine())
	s, err := New(miniMachine(), contended(), WithJSONTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(10000); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	var sawIssue, sawStall bool
	last := int64(-1 << 62)
	for i, ev := range doc.TraceEvents {
		if ev.Ts < last {
			t.Fatalf("event %d: timestamp %d decreases (previous %d)", i, ev.Ts, last)
		}
		last = ev.Ts
		switch {
		case ev.Ph == "X" && ev.Pid == tracePidUnits:
			sawIssue = true
		case ev.Ph == "X" && ev.Pid == tracePidThreads && ev.Name != "issued":
			sawStall = true
		}
	}
	if !sawIssue {
		t.Error("no issue events on unit tracks")
	}
	if !sawStall {
		t.Error("no stall spans on thread tracks")
	}
}
