package sim

import (
	"pcoup/internal/isa"
	"pcoup/internal/regfile"
)

// Thread is one active instruction stream. Each thread has its own
// instruction pointer and logical register set (distributed over the
// clusters) but shares the function units, interconnect, and memory with
// all other threads.
type Thread struct {
	ID       int
	Priority int // lower value wins arbitration; equals spawn order
	SegIdx   int
	Seg      *isa.ThreadCode
	Regs     *regfile.Set

	// IP indexes the current (partially issued) instruction word.
	IP int
	// issued[slot] marks operations of the current word already issued.
	issued []bool
	// branchTaken/branchTarget record the outcome of a branch operation
	// issued from the current word; applied when the word completes.
	branchTaken  bool
	branchTarget int

	Halted  bool
	SpawnAt int64 // cycle the thread became active
	HaltAt  int64 // cycle the thread issued halt

	OpsIssued int64
	// lastIssue is the most recent cycle in which the thread issued at
	// least one operation (stall attribution's "issued" test).
	lastIssue int64
	// stalls accumulates the thread's per-cycle classifications; nil
	// unless stall attribution is enabled.
	stalls *StallBreakdown
	// storesOut counts the thread's ordinary stores still in flight in
	// the memory system. Producing stores (SyncProduce) have release
	// semantics: they issue only once this count reaches zero, so a
	// completion flag is never visible before the data it covers. Fork
	// waits likewise, so a child always observes memory the parent wrote
	// before spawning it.
	storesOut int
	// syncLoadsOut counts outstanding synchronizing loads (waitfull or
	// consume). Such loads are acquire fences: no later memory operation
	// of this thread issues until they complete, so data guarded by a
	// flag is never read before the flag.
	syncLoadsOut int
	// dyn is the thread's dynamic-scheduling state (issue window and
	// squash bookkeeping); nil unless cfg.Dynamic.Window > 0. When set,
	// IP and issued alias the window's head entry, so the legacy
	// word-oriented helpers keep seeing the architectural frontier.
	dyn *dynThread
	// stalled caches "no unissued operation of the current word is
	// ready": issue arbitration skips the thread until an event that can
	// change its readiness clears the flag — a register writeback, a
	// memory completion, a frontier move, or any thread halting (halts
	// free a thread slot, which is what a blocked fork waits on).
	// Readiness depends on nothing else, so skipping a stalled thread
	// cannot change any arbitration outcome.
	stalled bool
}

// word returns the current instruction word, or nil if the thread has run
// off the end of its code.
func (t *Thread) word() *isa.Instruction {
	if t.IP < 0 || t.IP >= len(t.Seg.Instrs) {
		return nil
	}
	return &t.Seg.Instrs[t.IP]
}

// wordDone reports whether every operation of the current word has issued.
func (t *Thread) wordDone() bool {
	w := t.word()
	if w == nil {
		return true
	}
	for slot, op := range w.Ops {
		if op == nil {
			continue
		}
		if slot >= len(t.issued) || !t.issued[slot] {
			return false
		}
	}
	return true
}

// resetWord prepares issue bookkeeping for a new current word.
func (t *Thread) resetWord() {
	w := t.word()
	n := 0
	if w != nil {
		n = len(w.Ops)
	}
	if cap(t.issued) < n {
		t.issued = make([]bool, n)
	} else {
		t.issued = t.issued[:n]
		for i := range t.issued {
			t.issued[i] = false
		}
	}
	t.branchTaken = false
	t.branchTarget = -1
	t.stalled = false
}

// advance moves the thread to its next instruction word after the current
// word has fully issued, following any branch decision recorded for the
// word. Words containing no operations are skipped. It returns false when
// the thread has no more words (implicit halt).
func (t *Thread) advance() bool {
	for {
		next := t.IP + 1
		if t.branchTaken {
			next = t.branchTarget
		}
		t.IP = next
		t.resetWord()
		w := t.word()
		if w == nil {
			return false
		}
		if w.NumOps() > 0 {
			return true
		}
		// Empty word: fall through (it cannot contain a branch).
	}
}

// ThreadStats is the per-thread summary reported in a Result.
type ThreadStats struct {
	ID        int
	Segment   string
	SpawnAt   int64
	HaltAt    int64
	OpsIssued int64
	// PeakRegs is the peak register usage per cluster.
	PeakRegs []int
	// Stalls is the thread's per-cycle classification histogram; nil
	// unless stall attribution was enabled. Its Total() equals
	// HaltAt - SpawnAt (one classification per active cycle).
	Stalls *StallBreakdown
}
