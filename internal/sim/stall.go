package sim

import (
	"encoding/json"
	"fmt"

	"pcoup/internal/isa"
	"pcoup/internal/memsys"
)

// StallCause classifies what one non-halted thread did during one cycle:
// it either issued at least one operation, or it was held up for exactly
// one attributed reason. The attribution explains *where* cycles go —
// the paper's Section 4 argument (e.g. FFT's TPE mode losing to STS
// because sequential strands cluster idle) is visible only at this
// granularity, not in aggregate counters.
type StallCause int

const (
	// CauseIssued: the thread issued at least one operation this cycle.
	CauseIssued StallCause = iota
	// CausePresence: a source or destination register's presence bit is
	// clear and the producing result is still in a unit pipeline or
	// travelling through the memory system (plain latency wait).
	CausePresence
	// CauseFUBusy: every unissued operation of the word was ready but
	// its function unit was won by another thread this cycle (issue
	// arbitration loss; under lock-step issue, the word could not claim
	// all of its units at once).
	CauseFUBusy
	// CauseWriteback: the awaited result has left its pipeline but lost
	// register write-port or bus arbitration (interconnect contention).
	CauseWriteback
	// CauseMemBank: the awaited memory reference is queued behind a
	// busy memory bank (only when bank conflicts are modeled).
	CauseMemBank
	// CauseMemSync: blocked on memory synchronization — the awaited
	// reference is parked on a memory presence bit, or the operation is
	// fenced behind the thread's outstanding stores or synchronizing
	// loads (the acquire/release rules of DESIGN.md §6).
	CauseMemSync
	// CauseOpCache: the operation's instruction word is absent from its
	// unit's operation cache (fill in progress; extension model).
	CauseOpCache
	// CauseFork: a fork is throttled by the active-thread limit.
	CauseFork
	// CauseFault: the blocking operation was ready and resident but its
	// function unit is inside an injected degradation window (fault
	// injection only; never occurs on a healthy machine).
	CauseFault
	// CauseWindowFull: every fetched operation of a dynamic issue window
	// is in flight or hazard-blocked behind older window entries; the
	// thread is limited by window capacity / retire bandwidth (dynamic
	// scheduling only).
	CauseWindowFull
	// CauseBranchSquash: issue is suppressed while the thread re-fetches
	// after a branch misprediction (dynamic scheduling only).
	CauseBranchSquash

	// NumStallCauses is the number of distinct per-cycle classifications
	// (including CauseIssued).
	NumStallCauses = int(CauseBranchSquash) + 1
)

var stallCauseNames = [NumStallCauses]string{
	"issued", "presence", "fu-busy", "writeback", "mem-bank", "mem-sync", "opcache", "fork-throttle", "fault",
	"window-full", "branch-squash",
}

func (c StallCause) String() string {
	if c < 0 || int(c) >= NumStallCauses {
		return "unknown"
	}
	return stallCauseNames[c]
}

// StallCauses lists every classification in display order.
func StallCauses() []StallCause {
	out := make([]StallCause, NumStallCauses)
	for i := range out {
		out[i] = StallCause(i)
	}
	return out
}

// StallBreakdown is a histogram of thread-cycles by classification.
type StallBreakdown [NumStallCauses]int64

// Total sums all classifications (issued plus every stall cause).
func (b *StallBreakdown) Total() int64 {
	var n int64
	for _, v := range b {
		n += v
	}
	return n
}

// Stalled sums only the non-issued classifications.
func (b *StallBreakdown) Stalled() int64 { return b.Total() - b[CauseIssued] }

// MarshalJSON emits the histogram as a JSON array, truncated to the
// legacy nine causes while both dynamic-scheduling causes are zero, so
// paper-exact results, goldens, and checkpoints keep their exact bytes
// from before the dynamic subsystem existed.
func (b StallBreakdown) MarshalJSON() ([]byte, error) {
	n := NumStallCauses
	if b[CauseWindowFull] == 0 && b[CauseBranchSquash] == 0 {
		n = int(CauseFault) + 1
	}
	return json.Marshal(b[:n])
}

// UnmarshalJSON accepts both the legacy nine-element encoding and the
// full array; absent trailing causes are zero.
func (b *StallBreakdown) UnmarshalJSON(data []byte) error {
	var vals []int64
	if err := json.Unmarshal(data, &vals); err != nil {
		return err
	}
	if len(vals) > NumStallCauses {
		return fmt.Errorf("sim: stall breakdown has %d causes (max %d)", len(vals), NumStallCauses)
	}
	*b = StallBreakdown{}
	copy(b[:], vals)
	return nil
}

// StallStats is the run-wide stall attribution, populated on Result only
// when WithStallAttribution (or a JSON tracer) was enabled.
//
// Conservation invariant: every active (non-halted) thread contributes
// exactly one classification per cycle, so Total.Total() == Slots ==
// Σ over threads of (HaltAt - SpawnAt). Equivalently: issued cycles plus
// per-cause stall cycles sum to the number of active-thread slots
// integrated over the run.
type StallStats struct {
	// Slots is the number of classified thread-cycles.
	Slots int64
	// Total aggregates every thread's breakdown.
	Total StallBreakdown
	// PerUnit attributes each non-issued thread-cycle to the global
	// unit slot of the blocking operation (CauseIssued stays zero here;
	// per-unit issue counts are Result.IssuedByUnit).
	PerUnit []StallBreakdown
	// WaitRegs counts presence-wait thread-cycles by the register being
	// waited on (CausePresence, CauseWriteback, CauseMemBank, and
	// CauseMemSync register waits), keyed by the register's name.
	WaitRegs map[string]int64
}

// stallAttrib is the live accumulator; nil on the Sim unless enabled, so
// the hot path pays only a nil check per cycle.
type stallAttrib struct {
	slots    int64
	perUnit  []StallBreakdown
	waitRegs map[string]int64
}

// WithStallAttribution enables per-cycle stall-cause accounting. Every
// cycle each non-halted thread is classified into exactly one StallCause
// and the histograms are reported on Result.Stalls and
// ThreadStats.Stalls. Off by default: classification costs a scan of
// each blocked thread's current word per cycle, which the measurement
// paths (pcbench tables, go test -bench) must not pay.
func WithStallAttribution() Option {
	return func(s *Sim) { s.ensureAttrib() }
}

func (s *Sim) ensureAttrib() {
	if s.attrib == nil {
		s.attrib = &stallAttrib{
			perUnit:  make([]StallBreakdown, len(s.units)),
			waitRegs: map[string]int64{},
		}
	}
}

// classifyCycle records one classification for every thread active this
// cycle. Called at the end of step, after issue and frontier advance, so
// a thread that issued its halt this cycle still counts as issued.
func (s *Sim) classifyCycle() {
	for _, t := range s.threads {
		if t.Halted && !(t.HaltAt == s.cycle && t.lastIssue == s.cycle) {
			continue
		}
		s.attrib.slots++
		var cause StallCause
		var slot int
		var reg isa.RegRef
		var hasReg bool
		if t.lastIssue == s.cycle {
			cause, slot = CauseIssued, -1
		} else {
			cause, slot, reg, hasReg = s.classify(t)
		}
		t.stalls[cause]++
		if slot >= 0 {
			s.attrib.perUnit[slot][cause]++
		}
		if hasReg {
			s.attrib.waitRegs[reg.String()]++
		}
		if s.jsonTrace != nil {
			s.jsonTrace.classify(s.cycle, t.ID, cause)
		}
	}
}

// classify attributes a non-issuing thread's cycle to one stall cause.
// It returns the cause, the global unit slot of the blocking operation
// (-1 if none), and the register being waited on (valid when hasReg).
// The scan mirrors ready()'s checks in the same order, so the attributed
// cause is the one that actually gated issue. It never mutates machine
// state, so deadlock diagnosis may call it without attribution enabled.
func (s *Sim) classify(t *Thread) (cause StallCause, slot int, reg isa.RegRef, hasReg bool) {
	if t.dyn != nil {
		return s.classifyDyn(t)
	}
	w := t.word()
	if w == nil {
		return CausePresence, -1, isa.RegRef{}, false
	}
	cause, slot, reg, hasReg, _ = s.classifyWord(t, w, t.issued)
	return cause, slot, reg, hasReg
}

// classifyWord scans one instruction word's unissued operations in
// ready() order and attributes the first blocking condition. blocked is
// false when every unissued operation was ready and resident — the word
// lost unit arbitration (the returned cause is then CauseFUBusy with
// the first unissued slot); the dynamic-window classifier uses that
// distinction to charge hazard-blocked-but-ready words to the window.
func (s *Sim) classifyWord(t *Thread, w *isa.Instruction, issued []bool) (cause StallCause, slot int, reg isa.RegRef, hasReg bool, blocked bool) {
	firstUnissued := -1
	for si, op := range w.Ops {
		if op == nil || (si < len(issued) && issued[si]) {
			continue
		}
		if firstUnissued < 0 {
			firstUnissued = si
		}
		if op.Code == isa.OpHalt {
			// A halt waits only for the word's other operations; they
			// carry the real cause (or, alone and ready, it lost
			// arbitration — the fall-through below).
			continue
		}
		for _, src := range op.Srcs {
			if src.Kind == isa.OperandReg && !t.Regs.Valid(src.Reg) {
				return s.regWaitCause(t, src.Reg), si, src.Reg, true, true
			}
		}
		for _, d := range op.Dests {
			if !t.Regs.Valid(d) {
				return s.regWaitCause(t, d), si, d, true, true
			}
		}
		switch op.Code {
		case isa.OpFork:
			if s.activeCount() >= s.cfg.MaxActiveThreads() {
				return CauseFork, si, isa.RegRef{}, false, true
			}
			if t.storesOut > 0 || t.syncLoadsOut > 0 {
				return CauseMemSync, si, isa.RegRef{}, false, true
			}
		case isa.OpStore:
			if (op.Sync == isa.SyncProduce && t.storesOut > 0) || t.syncLoadsOut > 0 {
				return CauseMemSync, si, isa.RegRef{}, false, true
			}
		case isa.OpLoad:
			if t.syncLoadsOut > 0 {
				return CauseMemSync, si, isa.RegRef{}, false, true
			}
		}
		if !s.opCachePresent(si, t) {
			return CauseOpCache, si, isa.RegRef{}, false, true
		}
		// Ready and resident: if the unit is inside an injected
		// degradation window, that — not arbitration — gated issue.
		// UnitDownQuiet is a read-only probe of this cycle's already
		// sampled schedule, so classification stays side-effect free.
		if s.inj != nil && s.inj.UnitDownQuiet(si, s.cycle) {
			return CauseFault, si, isa.RegRef{}, false, true
		}
	}
	// Every unissued operation was ready and resident: the unit(s) went
	// to other threads this cycle.
	return CauseFUBusy, firstUnissued, isa.RegRef{}, false, false
}

// regWaitCause refines a presence-bit wait on reg: was the producing
// result stuck in writeback arbitration, a memory bank queue, a memory
// synchronization park, or simply still in flight?
func (s *Sim) regWaitCause(t *Thread, reg isa.RegRef) StallCause {
	// A queued writeback for this register that was eligible this cycle
	// (readyAt <= cycle survives drainWritebacks only by losing port/bus
	// arbitration) is interconnect contention.
	for i := range s.wbq {
		wb := &s.wbq[i]
		if wb.thread == t && wb.dst == reg {
			if wb.readyAt <= s.cycle {
				return CauseWriteback
			}
			return CausePresence // result still in a unit pipeline
		}
	}
	// No writeback queued: the producer is a memory reference.
	switch s.mem.FindWait(func(tag memsys.Tag) bool {
		if tag.Thread != t.ID {
			return false
		}
		for _, d := range s.opAt(tag).Dests {
			if d == reg {
				return true
			}
		}
		return false
	}) {
	case memsys.WaitParked:
		return CauseMemSync
	case memsys.WaitBank:
		return CauseMemBank
	}
	return CausePresence
}

// opCachePresent is the read-only counterpart of opCacheOK: it reports
// residency without starting or installing fills (classification must
// not perturb the machine).
func (s *Sim) opCachePresent(slot int, t *Thread) bool {
	if s.opCaches == nil {
		return true
	}
	return s.opCaches[slot].present(t.SegIdx, t.IP)
}
