package sim_test

// Steady-state kernel benchmarks. Run with:
//
//	go test ./internal/sim/ -bench . -benchmem
//
// Custom metrics: simcycles/s is simulated cycles per wall-clock second
// (higher is better); allocs/cycle is amortized heap allocations per
// simulated cycle including Sim construction (the regression budget is
// enforced by TestAllocBudget).

import (
	"runtime"
	"testing"

	"pcoup/internal/bench"
	"pcoup/internal/compiler"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

// compileFor compiles one benchmark variant on the baseline machine.
func compileFor(tb testing.TB, benchName string, kind bench.SourceKind, mode compiler.Mode) (*machine.Config, *isa.Program) {
	tb.Helper()
	return compileOn(tb, machine.Baseline(), benchName, kind, mode)
}

// compileOn compiles one benchmark variant on an arbitrary machine.
func compileOn(tb testing.TB, cfg *machine.Config, benchName string, kind bench.SourceKind, mode compiler.Mode) (*machine.Config, *isa.Program) {
	tb.Helper()
	bm, err := bench.Get(benchName, kind)
	if err != nil {
		tb.Fatal(err)
	}
	prog, _, err := compiler.Compile(bm.Source, cfg, compiler.Options{Mode: mode})
	if err != nil {
		tb.Fatal(err)
	}
	return cfg, prog
}

// runOnce builds a Sim, runs it to completion, and recycles its memory
// image — the exact per-cell work of a sweep with a warm program cache.
func runOnce(tb testing.TB, cfg *machine.Config, prog *isa.Program, opts ...sim.Option) int64 {
	s, err := sim.New(cfg, prog, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := s.Run(0)
	if err != nil {
		tb.Fatal(err)
	}
	s.Release()
	return res.Cycles
}

// BenchmarkSimulator measures the cycle kernel on matrix under Coupled
// mode (multithreaded issue, writeback arbitration, memory traffic).
func BenchmarkSimulator(b *testing.B) {
	cfg, prog := compileFor(b, "matrix", bench.Threaded, compiler.Unrestricted)
	cycles := runOnce(b, cfg, prog) // warm the memory-image pool
	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOnce(b, cfg, prog)
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	total := float64(cycles) * float64(b.N)
	b.ReportMetric(total/b.Elapsed().Seconds(), "simcycles/s")
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/total, "allocs/cycle")
}

// BenchmarkEventCore measures the cycle-skipping win on memory-bound
// cells: each case runs under the event core and under the ticking
// kernel (WithCycleSkipping(false)); both report simcycles/s for direct
// before/after comparison. lud@Mem2 (10% miss, 20-100 cycle penalty) is
// the paper's memory-bound regime; lud@Slow (200-1000 cycle tail) is the
// latency-dominated scaling regime and the event core's best case;
// matrix@Min is the busy-machine case that must not regress.
func BenchmarkEventCore(b *testing.B) {
	cases := []struct {
		name  string
		bench string
		cfg   *machine.Config
	}{
		{"lud@Min", "lud", machine.Baseline()},
		{"lud@Mem2", "lud", machine.Baseline().WithMemory(machine.Mem2)},
		{"lud@Slow", "lud", machine.Baseline().WithMemory(machine.MemSlow)},
		{"matrix@Min", "matrix", machine.Baseline()},
	}
	kernels := []struct {
		name string
		opts []sim.Option
	}{
		{"event", nil},
		{"ticking", []sim.Option{sim.WithCycleSkipping(false)}},
	}
	for _, c := range cases {
		cfg, prog := compileOn(b, c.cfg, c.bench, bench.Threaded, compiler.Unrestricted)
		for _, k := range kernels {
			b.Run(c.name+"/"+k.name, func(b *testing.B) {
				cycles := runOnce(b, cfg, prog, k.opts...)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runOnce(b, cfg, prog, k.opts...)
				}
				b.StopTimer()
				b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
			})
		}
	}
}

// BenchmarkModes times one full run of matrix under each machine mode.
func BenchmarkModes(b *testing.B) {
	cases := []struct {
		name string
		kind bench.SourceKind
		mode compiler.Mode
	}{
		{"SEQ", bench.Sequential, compiler.SingleCluster},
		{"STS", bench.Sequential, compiler.Unrestricted},
		{"TPE", bench.Threaded, compiler.SingleCluster},
		{"Coupled", bench.Threaded, compiler.Unrestricted},
		{"Ideal", bench.Ideal, compiler.Unrestricted},
	}
	for _, c := range cases {
		b.Run("matrix/"+c.name, func(b *testing.B) {
			cfg, prog := compileFor(b, "matrix", c.kind, c.mode)
			cycles := runOnce(b, cfg, prog)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runOnce(b, cfg, prog)
			}
			b.StopTimer()
			b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "simcycles/s")
		})
	}
}
