package sim

import (
	"fmt"
	"io"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

// TimelinePoint is one bucket of the utilization timeline: operation
// issues per unit class over a window of cycles.
type TimelinePoint struct {
	// StartCycle is the first cycle of the bucket (1-based).
	StartCycle int64
	// Cycles is the bucket width (the final bucket may be short).
	Cycles int64
	Issued [machine.NumUnitKinds]int64
	// Threads is the number of distinct threads that issued in the
	// bucket.
	Threads int
}

// Timeline records utilization over execution time — applications
// "exhibit an uneven amount of instruction-level parallelism during
// their execution" (the paper's opening motivation), and the timeline
// makes that unevenness measurable.
type Timeline struct {
	cfg    *machine.Config
	bucket int64
	points []TimelinePoint
	seen   map[int]bool
}

// NewTimeline buckets issues into windows of the given width.
func NewTimeline(cfg *machine.Config, bucket int64) *Timeline {
	if bucket < 1 {
		bucket = 1
	}
	return &Timeline{cfg: cfg, bucket: bucket, seen: map[int]bool{}}
}

// Hook returns the issue hook to install with WithIssueHook.
func (tl *Timeline) Hook() Option {
	units := tl.cfg.Units()
	return WithIssueHook(func(cycle int64, unit, thread int, _ *isa.Op) {
		idx := int((cycle - 1) / tl.bucket)
		for len(tl.points) <= idx {
			tl.points = append(tl.points, TimelinePoint{
				StartCycle: int64(len(tl.points))*tl.bucket + 1,
				Cycles:     tl.bucket,
			})
			tl.seen = map[int]bool{}
		}
		p := &tl.points[idx]
		p.Issued[units[unit].Kind]++
		if !tl.seen[thread] {
			tl.seen[thread] = true
			p.Threads++
		}
	})
}

// Points returns the recorded buckets, trimming the final bucket's width
// to the actual run length.
func (tl *Timeline) Points(totalCycles int64) []TimelinePoint {
	pts := append([]TimelinePoint{}, tl.points...)
	if n := len(pts); n > 0 {
		last := &pts[n-1]
		if end := last.StartCycle + last.Cycles - 1; end > totalCycles {
			last.Cycles = totalCycles - last.StartCycle + 1
		}
	}
	return pts
}

// Write renders the timeline as rows of per-class utilization with a
// total-issue bar.
func (tl *Timeline) Write(w io.Writer, totalCycles int64) {
	pts := tl.Points(totalCycles)
	fmt.Fprintf(w, "utilization timeline (bucket = %d cycles; ops/cycle per class)\n", tl.bucket)
	fmt.Fprintf(w, "%10s %7s %7s %7s %7s %8s  total\n", "cycle", "IU", "FPU", "MEM", "BR", "threads")
	maxUnits := tl.cfg.NumUnits()
	for _, p := range pts {
		if p.Cycles <= 0 {
			continue
		}
		c := float64(p.Cycles)
		total := int64(0)
		for _, n := range p.Issued {
			total += n
		}
		frac := float64(total) / c / float64(maxUnits)
		width := int(frac * 40)
		fmt.Fprintf(w, "%10d %7.2f %7.2f %7.2f %7.2f %8d  |%s\n",
			p.StartCycle,
			float64(p.Issued[machine.IU])/c, float64(p.Issued[machine.FPU])/c,
			float64(p.Issued[machine.MEM])/c, float64(p.Issued[machine.BR])/c,
			p.Threads, bar(width))
	}
}

func bar(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
