package sim

import (
	"fmt"
	"io"
	"sort"

	"pcoup/internal/machine"
	"pcoup/internal/memsys"
)

// WriteStallReport renders the run's stall attribution as a set of
// tables: the aggregate breakdown, per-thread and per-unit histograms,
// the most-waited-on registers, the memory latency histogram, and the
// writeback arbitration counters. res.Stalls must be non-nil (run with
// WithStallAttribution).
func WriteStallReport(w io.Writer, cfg *machine.Config, res *Result) {
	st := res.Stalls
	if st == nil {
		fmt.Fprintln(w, "stall attribution not enabled")
		return
	}
	pct := func(n int64) float64 {
		if st.Slots == 0 {
			return 0
		}
		return 100 * float64(n) / float64(st.Slots)
	}

	fmt.Fprintf(w, "\nstall attribution (%d thread-cycles over %d cycles)\n", st.Slots, res.Cycles)
	fmt.Fprintf(w, "  %-14s %12s %7s\n", "cause", "cycles", "%")
	for _, c := range StallCauses() {
		fmt.Fprintf(w, "  %-14s %12d %6.1f%%\n", c, st.Total[c], pct(st.Total[c]))
	}
	fmt.Fprintf(w, "  %-14s %12d\n", "total", st.Total.Total())

	fmt.Fprintf(w, "\nper-thread breakdown\n")
	fmt.Fprintf(w, "  %-4s %-20s", "tid", "segment")
	for _, c := range StallCauses() {
		fmt.Fprintf(w, " %12s", c)
	}
	fmt.Fprintln(w)
	for _, t := range res.Threads {
		if t.Stalls == nil {
			continue
		}
		fmt.Fprintf(w, "  t%-3d %-20s", t.ID, t.Segment)
		for _, c := range StallCauses() {
			fmt.Fprintf(w, " %12d", t.Stalls[c])
		}
		fmt.Fprintln(w)
	}

	units := cfg.Units()
	fmt.Fprintf(w, "\nper-unit blocking operation (stalled thread-cycles by the unit of the blocked op)\n")
	fmt.Fprintf(w, "  %-16s", "unit")
	for _, c := range StallCauses() {
		if c == CauseIssued {
			continue
		}
		fmt.Fprintf(w, " %12s", c)
	}
	fmt.Fprintln(w)
	for gi, b := range st.PerUnit {
		if b.Total() == 0 {
			continue
		}
		name := fmt.Sprintf("u%d", gi)
		if gi < len(units) {
			name = fmt.Sprintf("u%d %s c%d", gi, units[gi].Kind, units[gi].Cluster)
		}
		fmt.Fprintf(w, "  %-16s", name)
		for _, c := range StallCauses() {
			if c == CauseIssued {
				continue
			}
			fmt.Fprintf(w, " %12d", b[c])
		}
		fmt.Fprintln(w)
	}

	if len(st.WaitRegs) > 0 {
		type rw struct {
			reg string
			n   int64
		}
		regs := make([]rw, 0, len(st.WaitRegs))
		for r, n := range st.WaitRegs {
			regs = append(regs, rw{r, n})
		}
		sort.Slice(regs, func(i, j int) bool {
			if regs[i].n != regs[j].n {
				return regs[i].n > regs[j].n
			}
			return regs[i].reg < regs[j].reg
		})
		if len(regs) > 8 {
			regs = regs[:8]
		}
		fmt.Fprintf(w, "\nmost-waited registers\n")
		for _, r := range regs {
			fmt.Fprintf(w, "  %-8s %12d cycles\n", r.reg, r.n)
		}
	}

	fmt.Fprintf(w, "\nmemory latency (issue to presence-bit set, cycles)\n")
	for i := 0; i < memsys.NumLatencyBuckets; i++ {
		if res.Mem.LatencyHist[i] == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-8s %12d refs\n", memsys.LatencyBucketLabel(i), res.Mem.LatencyHist[i])
	}

	ic := res.Interconnect
	fmt.Fprintf(w, "\nwriteback arbitration: %d grants, %d rejects", ic.Grants, ic.Rejects)
	if ic.Rejects > 0 {
		fmt.Fprintf(w, " (by cluster: %v)", ic.RejectsByCluster)
	}
	fmt.Fprintln(w)
}
