package sim

import (
	"encoding/json"
	"fmt"
	"os"

	"pcoup/internal/dynsched"
	"pcoup/internal/faults"
	"pcoup/internal/interconnect"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/memsys"
	"pcoup/internal/regfile"
)

// CheckpointVersion identifies the checkpoint encoding; Restore rejects
// other versions.
const CheckpointVersion = 1

// Checkpoint is the complete simulator state at a cycle boundary. A run
// restored from a checkpoint is byte-identical (cycle counts and every
// statistic) to the uninterrupted run, provided the same machine
// configuration and program are supplied; Restore verifies both. Trace
// writers (WithTrace, the JSON tracer) are not part of the state: a
// resumed run re-emits events only from the resume point.
type Checkpoint struct {
	Version int    `json:"version"`
	Machine string `json:"machine"` // machine.Config.Hash()
	Program string `json:"program"`

	Cycle        int64 `json:"cycle"`
	LastProgress int64 `json:"last_progress"`
	NextTID      int   `json:"next_tid"`
	WbSeq        int64 `json:"wb_seq"`

	WatchWindow      int64 `json:"watch_window"`
	WatchRetries     int64 `json:"watch_retries"`
	WakeupRetries    int64 `json:"wakeup_retries"`
	WakeupsRecovered int64 `json:"wakeups_recovered"`

	Ops              int64                       `json:"ops"`
	IssuedByKind     [machine.NumUnitKinds]int64 `json:"issued_by_kind"`
	IssuedByUnit     []int64                     `json:"issued_by_unit"`
	WritebackRetries int64                       `json:"writeback_retries"`

	Threads []threadState `json:"threads"`
	// PendingSpawns lists (by thread ID, in spawn order) threads created
	// this cycle and not yet activated.
	PendingSpawns []int `json:"pending_spawns,omitempty"`

	Writebacks []wbState `json:"writebacks,omitempty"`

	Mem          *memsys.State      `json:"mem"`
	Interconnect interconnect.Stats `json:"interconnect"`
	Faults       *faults.State      `json:"faults,omitempty"`
	OpCaches     []opCacheState     `json:"op_caches,omitempty"`
	Attrib       *attribState       `json:"attrib,omitempty"`
	// Dyn carries the dynamic-scheduling subsystem (predictor tables,
	// prefetcher, per-thread issue windows, speculation bookkeeping);
	// absent for paper-exact machines, so their checkpoints keep their
	// exact bytes from before the subsystem existed.
	Dyn *dynCheckpointState `json:"dyn,omitempty"`
}

// dynCheckpointState is the dynamic-scheduling subsystem's serializable
// state: the shared predictor and prefetcher plus each thread's window.
type dynCheckpointState struct {
	Predictor *dynsched.PredictorState  `json:"predictor,omitempty"`
	Prefetch  *dynsched.PrefetcherState `json:"prefetch,omitempty"`
	Threads   []dynThreadState          `json:"threads,omitempty"`
	Stats     DynStats                  `json:"stats"`
}

// dynThreadState is one thread's issue-window state, keyed by thread ID.
type dynThreadState struct {
	Thread      int             `json:"thread"`
	SquashUntil int64           `json:"squash_until"`
	SpecIssued  int64           `json:"spec_issued"`
	Undo        []specUndoState `json:"undo,omitempty"`
	Entries     []dynEntryState `json:"entries"`
}

// specUndoState is one recorded speculative register write.
type specUndoState struct {
	Reg   isa.RegRef `json:"reg"`
	Old   isa.Value  `json:"old"`
	WbSeq int64      `json:"wb_seq"`
}

// dynEntryState is one window entry.
type dynEntryState struct {
	IP        int    `json:"ip"`
	Issued    []bool `json:"issued"`
	Spec      bool   `json:"spec,omitempty"`
	Resolved  bool   `json:"resolved,omitempty"`
	Predicted bool   `json:"predicted,omitempty"`
	PredTaken bool   `json:"pred_taken,omitempty"`
	BrSlot    int    `json:"br_slot"`
	Barrier   bool   `json:"barrier,omitempty"`
	NextIP    int    `json:"next_ip"`
	Target    int    `json:"target"`
}

// threadState is one thread's serializable state.
type threadState struct {
	ID           int                 `json:"id"`
	Priority     int                 `json:"priority"`
	SegIdx       int                 `json:"seg_idx"`
	IP           int                 `json:"ip"`
	Issued       []bool              `json:"issued,omitempty"`
	BranchTaken  bool                `json:"branch_taken,omitempty"`
	BranchTarget int                 `json:"branch_target"`
	Halted       bool                `json:"halted,omitempty"`
	SpawnAt      int64               `json:"spawn_at"`
	HaltAt       int64               `json:"halt_at"`
	OpsIssued    int64               `json:"ops_issued"`
	LastIssue    int64               `json:"last_issue"`
	StoresOut    int                 `json:"stores_out"`
	SyncLoadsOut int                 `json:"sync_loads_out"`
	Regs         []regfile.FileState `json:"regs"`
	Stalls       *StallBreakdown     `json:"stalls,omitempty"`
}

// wbState is one queued register writeback's serializable state.
type wbState struct {
	Thread     int        `json:"thread"`
	Dst        isa.RegRef `json:"dst"`
	Val        isa.Value  `json:"val"`
	SrcCluster int        `json:"src_cluster"`
	ReadyAt    int64      `json:"ready_at"`
	Seq        int64      `json:"seq"`
}

// opCacheState is one unit's operation-cache serializable state.
type opCacheState struct {
	Tags      []int64 `json:"tags"`
	FillTag   int64   `json:"fill_tag"`
	FillReady int64   `json:"fill_ready"`
	Filling   bool    `json:"filling,omitempty"`
	Misses    int64   `json:"misses"`
}

// attribState is the stall-attribution accumulator's serializable state.
type attribState struct {
	Slots    int64            `json:"slots"`
	PerUnit  []StallBreakdown `json:"per_unit"`
	WaitRegs map[string]int64 `json:"wait_regs"`
}

// validateTag checks a restored memory tag against the loaded program:
// the thread must exist and the (segment, word, slot) coordinates must
// name a real op.
func (s *Sim) validateTag(ts memsys.Tag, byID map[int]*Thread) error {
	if byID[ts.Thread] == nil {
		return fmt.Errorf("sim: checkpoint references unknown thread %d", ts.Thread)
	}
	if ts.SegIdx < 0 || ts.SegIdx >= len(s.prog.Segments) {
		return fmt.Errorf("sim: checkpoint tag segment %d out of range", ts.SegIdx)
	}
	seg := s.prog.Segments[ts.SegIdx]
	if ts.IP < 0 || ts.IP >= len(seg.Instrs) {
		return fmt.Errorf("sim: checkpoint tag word %d out of range in %s", ts.IP, seg.Name)
	}
	w := seg.Instrs[ts.IP]
	if ts.Slot < 0 || ts.Slot >= len(w.Ops) || w.Ops[ts.Slot] == nil {
		return fmt.Errorf("sim: checkpoint tag slot %d has no op at %s word %d", ts.Slot, seg.Name, ts.IP)
	}
	return nil
}

func snapshotThread(t *Thread) threadState {
	return threadState{
		ID: t.ID, Priority: t.Priority, SegIdx: t.SegIdx, IP: t.IP,
		Issued:      append([]bool(nil), t.issued...),
		BranchTaken: t.branchTaken, BranchTarget: t.branchTarget,
		Halted: t.Halted, SpawnAt: t.SpawnAt, HaltAt: t.HaltAt,
		OpsIssued: t.OpsIssued, LastIssue: t.lastIssue,
		StoresOut: t.storesOut, SyncLoadsOut: t.syncLoadsOut,
		Regs:   t.Regs.State(),
		Stalls: cloneBreakdown(t.stalls),
	}
}

func cloneBreakdown(b *StallBreakdown) *StallBreakdown {
	if b == nil {
		return nil
	}
	c := *b
	return &c
}

// Snapshot captures the simulator's complete state. Call it only at a
// cycle boundary (between Run steps); Run's WithCheckpointEvery hook
// guarantees this.
func (s *Sim) Snapshot() (*Checkpoint, error) {
	hash, err := s.cfg.Hash()
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{
		Version: CheckpointVersion,
		Machine: hash,
		Program: s.prog.Name,

		Cycle:        s.cycle,
		LastProgress: s.lastProgress,
		NextTID:      s.nextTID,
		WbSeq:        s.wbSeq,

		WatchWindow:      s.watchWindow,
		WatchRetries:     s.watchRetries,
		WakeupRetries:    s.wakeupRetries,
		WakeupsRecovered: s.wakeupsRecovered,

		Ops:              s.stats.Ops,
		IssuedByKind:     s.stats.IssuedByKind,
		IssuedByUnit:     append([]int64(nil), s.stats.IssuedByUnit...),
		WritebackRetries: s.stats.WritebackRetries,

		Interconnect: s.arb.Stats(),
	}
	for _, t := range s.threads {
		ck.Threads = append(ck.Threads, snapshotThread(t))
	}
	for _, t := range s.pendingSpawns {
		ck.Threads = append(ck.Threads, snapshotThread(t))
		ck.PendingSpawns = append(ck.PendingSpawns, t.ID)
	}
	// Settle the sort drainWritebacks deferred (when it skipped a cycle
	// with no ready writeback) so the checkpoint's queue order matches a
	// kernel that sorts every drain. The physical reorder is unobservable
	// to the simulation itself: the next full drain re-sorts.
	sortWbq(s.wbq[:s.wbqSorted])
	for i := range s.wbq {
		wb := &s.wbq[i]
		ck.Writebacks = append(ck.Writebacks, wbState{
			Thread: wb.thread.ID, Dst: wb.dst, Val: wb.val,
			SrcCluster: wb.srcCluster, ReadyAt: wb.readyAt, Seq: wb.seq,
		})
	}
	if ck.Mem, err = s.mem.Snapshot(); err != nil {
		return nil, err
	}
	if s.inj != nil {
		ck.Faults = s.inj.Snapshot()
	}
	for _, c := range s.opCaches {
		ck.OpCaches = append(ck.OpCaches, opCacheState{
			Tags:    append([]int64(nil), c.tags...),
			FillTag: c.fillTag, FillReady: c.fillReady, Filling: c.filling,
			Misses: c.misses,
		})
	}
	if s.attrib != nil {
		st := &attribState{
			Slots:    s.attrib.slots,
			PerUnit:  append([]StallBreakdown(nil), s.attrib.perUnit...),
			WaitRegs: make(map[string]int64, len(s.attrib.waitRegs)),
		}
		for k, v := range s.attrib.waitRegs {
			st.WaitRegs[k] = v
		}
		ck.Attrib = st
	}
	if s.dyn != nil {
		ds := &dynCheckpointState{Stats: s.dyn.stats}
		if s.dyn.pred != nil {
			ds.Predictor = s.dyn.pred.State()
		}
		if s.dyn.pref != nil {
			ds.Prefetch = s.dyn.pref.State()
		}
		for _, t := range s.threads {
			if t.dyn != nil {
				ds.Threads = append(ds.Threads, snapshotDynThread(t))
			}
		}
		for _, t := range s.pendingSpawns {
			if t.dyn != nil {
				ds.Threads = append(ds.Threads, snapshotDynThread(t))
			}
		}
		ck.Dyn = ds
	}
	return ck, nil
}

func snapshotDynThread(t *Thread) dynThreadState {
	d := t.dyn
	ds := dynThreadState{Thread: t.ID, SquashUntil: d.squashUntil, SpecIssued: d.specIssued}
	for _, u := range d.undo {
		ds.Undo = append(ds.Undo, specUndoState{Reg: u.reg, Old: u.old, WbSeq: u.wbSeq})
	}
	for _, e := range d.win.Entries {
		ds.Entries = append(ds.Entries, dynEntryState{
			IP: e.IP, Issued: append([]bool(nil), e.Issued...),
			Spec: e.Spec, Resolved: e.Resolved,
			Predicted: e.Predicted, PredTaken: e.PredTaken,
			BrSlot: e.BrSlot, Barrier: e.Barrier,
			NextIP: e.NextIP, Target: e.Target,
		})
	}
	return ds
}

// Restore resets the simulator to a checkpointed state. The Sim must
// have been built (via New) from the same machine configuration and
// program the checkpoint was taken from; both are verified. Stall
// attribution is restored exactly as recorded: a checkpoint taken with
// attribution carries it, one taken without does not, regardless of the
// restored Sim's own options.
func (s *Sim) Restore(ck *Checkpoint) error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("sim: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	hash, err := s.cfg.Hash()
	if err != nil {
		return err
	}
	if ck.Machine != hash {
		return fmt.Errorf("sim: checkpoint is for machine %.12s, this machine is %.12s", ck.Machine, hash)
	}
	if ck.Program != s.prog.Name {
		return fmt.Errorf("sim: checkpoint is for program %q, this program is %q", ck.Program, s.prog.Name)
	}
	if len(ck.IssuedByUnit) != len(s.units) {
		return fmt.Errorf("sim: checkpoint has %d units, machine has %d", len(ck.IssuedByUnit), len(s.units))
	}
	if (ck.Faults != nil) != (s.inj != nil) {
		return fmt.Errorf("sim: checkpoint and machine disagree on fault injection")
	}
	if len(ck.OpCaches) != len(s.opCaches) {
		return fmt.Errorf("sim: checkpoint has %d op caches, machine has %d", len(ck.OpCaches), len(s.opCaches))
	}

	// Attribution follows the checkpoint, not the restored Sim's options.
	if ck.Attrib != nil {
		if len(ck.Attrib.PerUnit) != len(s.units) {
			return fmt.Errorf("sim: checkpoint attribution has %d units, machine has %d", len(ck.Attrib.PerUnit), len(s.units))
		}
		s.attrib = &stallAttrib{
			slots:    ck.Attrib.Slots,
			perUnit:  append([]StallBreakdown(nil), ck.Attrib.PerUnit...),
			waitRegs: make(map[string]int64, len(ck.Attrib.WaitRegs)),
		}
		for k, v := range ck.Attrib.WaitRegs {
			s.attrib.waitRegs[k] = v
		}
	} else {
		s.attrib = nil
	}

	pending := make(map[int]bool, len(ck.PendingSpawns))
	for _, id := range ck.PendingSpawns {
		pending[id] = true
	}
	s.threads = nil
	s.pendingSpawns = nil
	byID := make(map[int]*Thread, len(ck.Threads))
	for _, ts := range ck.Threads {
		if ts.SegIdx < 0 || ts.SegIdx >= len(s.prog.Segments) {
			return fmt.Errorf("sim: checkpoint thread %d has segment %d out of range", ts.ID, ts.SegIdx)
		}
		t := &Thread{
			ID: ts.ID, Priority: ts.Priority, SegIdx: ts.SegIdx,
			Seg:  s.prog.Segments[ts.SegIdx],
			Regs: regfile.NewSet(len(s.cfg.Clusters)),
			IP:   ts.IP, issued: append([]bool(nil), ts.Issued...),
			branchTaken: ts.BranchTaken, branchTarget: ts.BranchTarget,
			Halted: ts.Halted, SpawnAt: ts.SpawnAt, HaltAt: ts.HaltAt,
			OpsIssued: ts.OpsIssued, lastIssue: ts.LastIssue,
			storesOut: ts.StoresOut, syncLoadsOut: ts.SyncLoadsOut,
			stalls: cloneBreakdown(ts.Stalls),
		}
		if err := t.Regs.SetState(ts.Regs); err != nil {
			return fmt.Errorf("sim: thread %d: %w", ts.ID, err)
		}
		if byID[t.ID] != nil {
			return fmt.Errorf("sim: checkpoint has duplicate thread %d", t.ID)
		}
		byID[t.ID] = t
		if pending[t.ID] {
			s.pendingSpawns = append(s.pendingSpawns, t)
		} else {
			s.threads = append(s.threads, t)
		}
	}
	s.byID = make([]*Thread, ck.NextTID)
	for id, t := range byID {
		if id < 0 || id >= ck.NextTID {
			return fmt.Errorf("sim: checkpoint thread %d outside next_tid %d", id, ck.NextTID)
		}
		s.byID[id] = t
	}

	s.wbq = nil
	s.wbqSorted = 0
	for _, ws := range ck.Writebacks {
		t := byID[ws.Thread]
		if t == nil {
			return fmt.Errorf("sim: checkpoint writeback references unknown thread %d", ws.Thread)
		}
		s.wbq = append(s.wbq, writeback{
			thread: t, dst: ws.Dst, val: ws.Val,
			srcCluster: ws.SrcCluster, readyAt: ws.ReadyAt, seq: ws.Seq,
		})
	}

	if err := s.mem.Restore(ck.Mem); err != nil {
		return err
	}
	if err := s.mem.ForEachRequest(func(r *memsys.Request) error {
		return s.validateTag(r.Tag, byID)
	}); err != nil {
		return err
	}
	if s.inj != nil {
		if err := s.inj.Restore(ck.Faults); err != nil {
			return err
		}
	}
	s.arb.RestoreStats(ck.Interconnect)
	for i, cs := range ck.OpCaches {
		c := s.opCaches[i]
		if len(cs.Tags) != len(c.tags) {
			return fmt.Errorf("sim: checkpoint op cache %d has %d entries, machine has %d", i, len(cs.Tags), len(c.tags))
		}
		copy(c.tags, cs.Tags)
		c.fillTag, c.fillReady, c.filling = cs.FillTag, cs.FillReady, cs.Filling
		c.misses = cs.Misses
	}

	if (ck.Dyn != nil) != (s.dyn != nil) {
		return fmt.Errorf("sim: checkpoint and machine disagree on dynamic scheduling")
	}
	if ck.Dyn != nil {
		if (ck.Dyn.Predictor != nil) != (s.dyn.pred != nil) {
			return fmt.Errorf("sim: checkpoint and machine disagree on branch prediction")
		}
		if s.dyn.pred != nil {
			if err := s.dyn.pred.Restore(ck.Dyn.Predictor); err != nil {
				return err
			}
		}
		if (ck.Dyn.Prefetch != nil) != (s.dyn.pref != nil) {
			return fmt.Errorf("sim: checkpoint and machine disagree on prefetching")
		}
		if s.dyn.pref != nil {
			if err := s.dyn.pref.Restore(ck.Dyn.Prefetch); err != nil {
				return err
			}
		}
		s.dyn.stats = ck.Dyn.Stats
		s.dyn.stats.Prefetch = nil
		for _, dts := range ck.Dyn.Threads {
			t := byID[dts.Thread]
			if t == nil {
				return fmt.Errorf("sim: checkpoint window references unknown thread %d", dts.Thread)
			}
			if len(dts.Entries) > s.dyn.winCap {
				return fmt.Errorf("sim: checkpoint thread %d window has %d entries, capacity is %d",
					dts.Thread, len(dts.Entries), s.dyn.winCap)
			}
			win := dynsched.NewWindow(t.Seg, s.dyn.winCap, uint64(t.SegIdx)<<20)
			for _, es := range dts.Entries {
				if es.IP < 0 || es.IP >= len(t.Seg.Instrs) {
					return fmt.Errorf("sim: checkpoint thread %d window entry ip %d out of range", dts.Thread, es.IP)
				}
				if len(es.Issued) != len(t.Seg.Instrs[es.IP].Ops) {
					return fmt.Errorf("sim: checkpoint thread %d window entry ip %d has %d issue slots, word has %d",
						dts.Thread, es.IP, len(es.Issued), len(t.Seg.Instrs[es.IP].Ops))
				}
				win.Entries = append(win.Entries, &dynsched.Entry{
					IP: es.IP, Issued: append([]bool(nil), es.Issued...),
					Spec: es.Spec, Resolved: es.Resolved,
					Predicted: es.Predicted, PredTaken: es.PredTaken,
					BrSlot: es.BrSlot, Barrier: es.Barrier,
					NextIP: es.NextIP, Target: es.Target,
				})
			}
			t.dyn = &dynThread{win: win, squashUntil: dts.SquashUntil, specIssued: dts.SpecIssued}
			for _, u := range dts.Undo {
				t.dyn.undo = append(t.dyn.undo, specUndo{reg: u.Reg, old: u.Old, wbSeq: u.WbSeq})
			}
			// Re-alias the thread's issue bitmap to the restored head entry.
			s.syncHead(t)
		}
	}

	s.cycle = ck.Cycle
	s.lastProgress = ck.LastProgress
	s.nextTID = ck.NextTID
	s.wbSeq = ck.WbSeq
	s.watchWindow = ck.WatchWindow
	s.watchRetries = ck.WatchRetries
	s.wakeupRetries = ck.WakeupRetries
	s.wakeupsRecovered = ck.WakeupsRecovered
	s.stats.Ops = ck.Ops
	s.stats.IssuedByKind = ck.IssuedByKind
	s.stats.IssuedByUnit = append([]int64(nil), ck.IssuedByUnit...)
	s.stats.WritebackRetries = ck.WritebackRetries
	return nil
}

// WriteFile serializes the checkpoint as JSON to path.
func (ck *Checkpoint) WriteFile(path string) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCheckpoint reads a checkpoint written by WriteFile.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("sim: parsing checkpoint %s: %w", path, err)
	}
	return &ck, nil
}
