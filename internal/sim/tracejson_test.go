package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"pcoup/internal/isa"
)

// traceDoc mirrors the Chrome trace-event envelope for shape checks.
type traceDoc struct {
	TraceEvents []map[string]any `json:"traceEvents"`
	DisplayUnit string           `json:"displayTimeUnit"`
}

// runTraced executes a small program with the JSON tracer attached and
// returns the parsed trace document.
func runTraced(t *testing.T) traceDoc {
	t.Helper()
	cfg := miniMachine()
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(opAdd(uIU0, r(0, 0), isa.ImmInt(1), isa.ImmInt(2))),
		word(opAdd(uIU0, r(0, 1), isa.Reg(r(0, 0)), isa.ImmInt(3))),
		word(opStore(uMEM0, isa.Reg(r(0, 1)), 8)),
		word(opHalt()),
	}}
	tr := NewJSONTracer(cfg)
	s, err := New(cfg, prog(main), WithJSONTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(10000); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

// TestJSONTraceShape asserts the emitted Chrome trace-event JSON is
// well-formed: it parses, every event carries the required keys, complete
// events have positive durations, metadata precedes spans, and span
// timestamps are monotonic (the viewer's assumption after Write's sort).
func TestJSONTraceShape(t *testing.T) {
	doc := runTraced(t)
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	seenSpan := false
	var lastTs float64
	var spans, metas int
	for i, ev := range doc.TraceEvents {
		ph, ok := ev["ph"].(string)
		if !ok {
			t.Fatalf("event %d: missing ph: %v", i, ev)
		}
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event %d: missing name: %v", i, ev)
		}
		for _, key := range []string{"pid", "tid"} {
			if _, ok := ev[key].(float64); !ok {
				t.Fatalf("event %d: missing %s: %v", i, key, ev)
			}
		}
		switch ph {
		case "M":
			metas++
			if seenSpan {
				t.Errorf("event %d: metadata after span events", i)
			}
			if _, ok := ev["args"].(map[string]any); !ok {
				t.Errorf("metadata event %d has no args: %v", i, ev)
			}
		case "X":
			spans++
			ts, ok := ev["ts"].(float64)
			if !ok {
				t.Fatalf("span event %d: missing ts: %v", i, ev)
			}
			if ts < 0 {
				t.Errorf("span event %d: negative ts %v", i, ts)
			}
			if seenSpan && ts < lastTs {
				t.Errorf("span event %d: ts %v below previous %v (not monotonic)", i, ts, lastTs)
			}
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 1 {
				t.Errorf("span event %d: dur %v, want >= 1", i, ev["dur"])
			}
			lastTs = ts
			seenSpan = true
		default:
			t.Errorf("event %d: unexpected phase %q", i, ph)
		}
	}
	if spans == 0 {
		t.Error("trace has no span (ph=X) events")
	}
	if metas == 0 {
		t.Error("trace has no metadata (ph=M) events")
	}
}

// TestJSONTraceContent pins the semantic content for the known program:
// unit tracks carry the issued opcodes, thread tracks carry stall
// classifications, and track-naming metadata covers every unit.
func TestJSONTraceContent(t *testing.T) {
	doc := runTraced(t)
	unitOps := map[string]int{}
	threadSpans := 0
	namedTracks := 0
	for _, ev := range doc.TraceEvents {
		name, _ := ev["name"].(string)
		pid, _ := ev["pid"].(float64)
		switch {
		case ev["ph"] == "M" && name == "thread_name":
			namedTracks++
		case ev["ph"] == "X" && int(pid) == tracePidUnits:
			unitOps[name]++
			args, ok := ev["args"].(map[string]any)
			if !ok {
				t.Errorf("unit span %v lacks args", ev)
				continue
			}
			if _, ok := args["thread"]; !ok {
				t.Errorf("unit span %v lacks issuing thread", ev)
			}
		case ev["ph"] == "X" && int(pid) == tracePidThreads:
			threadSpans++
		}
	}
	// The program issues two adds, a store, and a halt.
	if unitOps["add"] != 2 && unitOps["ADD"] != 2 && unitOps[isa.OpAdd.String()] != 2 {
		t.Errorf("expected 2 add spans, got %v", unitOps)
	}
	if threadSpans == 0 {
		t.Error("no per-thread classification spans emitted")
	}
	// 5 unit tracks + 1 thread track.
	if namedTracks < 6 {
		t.Errorf("expected >= 6 named tracks, got %d", namedTracks)
	}
}
