package sim

import (
	"encoding/json"
	"errors"
	"testing"

	"pcoup/internal/faults"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

// slowMachine is the mini machine with a uniform long memory latency, so
// a dependent chain through memory leaves the machine provably idle for
// thousands of cycles at a time — the event core's best case.
func slowMachine(latency int) *machine.Config {
	cfg := miniMachine()
	cfg.Memory = machine.MemoryModel{Name: "slow", HitLatency: latency, Banks: 4}
	return cfg
}

// loadChain builds a single-thread program whose critical path is one
// long-latency load: load r0, add r0+1, store the sum, halt.
func loadChain() *isa.Program {
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(opLoad(uMEM0, r(0, 0), 8, isa.SyncNone)),
		word(opAdd(uIU0, r(0, 1), isa.Reg(r(0, 0)), isa.ImmInt(1))),
		word(opStore(uMEM0, isa.Reg(r(0, 1)), 9)),
		word(opHalt()),
	}}
	return prog(main)
}

// TestEventCoreSkipsLongLatency: the event core must produce the
// bit-identical Result while actually jumping over the dead cycles, and
// a multi-thousand-cycle jump must not trip the deadlock window (the
// latency here is far below stallLimit, so a DeadlockError would be a
// false positive introduced by the jump).
func TestEventCoreSkipsLongLatency(t *testing.T) {
	run := func(opts ...Option) (*Result, *Sim) {
		s, err := New(slowMachine(5000), loadChain(), append([]Option{WithStallAttribution()}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(50_000)
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return res, s
	}
	want, ticking := run(WithCycleSkipping(false))
	got, event := run()
	if ticking.SkippedCycles() != 0 {
		t.Errorf("ticking kernel skipped %d cycles, want 0", ticking.SkippedCycles())
	}
	if event.SkippedCycles() < 4000 {
		t.Errorf("event core skipped %d cycles, want > 4000", event.SkippedCycles())
	}
	if jw, jg := resultJSON(t, want), resultJSON(t, got); jw != jg {
		t.Errorf("event core result differs from ticking kernel:\nwant %s\ngot  %s", jw, jg)
	}
	// Conservation across skips: every active thread-cycle — executed or
	// skipped — carries exactly one classification.
	var active int64
	for _, th := range got.Threads {
		active += th.HaltAt - th.SpawnAt
	}
	if got.Stalls == nil || got.Stalls.Slots != active {
		t.Fatalf("stall slots = %+v, want %d classified thread-cycles", got.Stalls, active)
	}
	if tot := got.Stalls.Total.Total(); tot != got.Stalls.Slots {
		t.Errorf("stall breakdown sums to %d, want Slots = %d", tot, got.Stalls.Slots)
	}
}

// TestEventCoreDeadlockIdentical: when the machine genuinely stalls past
// the window (latency beyond stallLimit), the event core must report the
// DeadlockError at exactly the cycle the ticking kernel reports it —
// the deadlock window is a skip horizon, not a casualty of the jump.
func TestEventCoreDeadlockIdentical(t *testing.T) {
	run := func(opts ...Option) error {
		s, err := New(slowMachine(30_000), loadChain(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Run(200_000)
		if err == nil {
			t.Fatal("run completed; want DeadlockError")
		}
		return err
	}
	errTick := run(WithCycleSkipping(false))
	errEvent := run()
	var dlTick, dlEvent *DeadlockError
	if !errors.As(errTick, &dlTick) || !errors.As(errEvent, &dlEvent) {
		t.Fatalf("want DeadlockError from both kernels, got ticking=%v event=%v", errTick, errEvent)
	}
	if dlTick.Cycle != dlEvent.Cycle || errTick.Error() != errEvent.Error() {
		t.Errorf("deadlock diverged:\nticking %v\nevent   %v", errTick, errEvent)
	}
}

// TestEventCoreCheckpointCadence: checkpoints must land on every multiple
// of ckptEvery even when the event core jumps across several boundaries'
// worth of idle cycles at once, and each checkpoint must be byte-identical
// to the ticking kernel's.
func TestEventCoreCheckpointCadence(t *testing.T) {
	const every = 64
	run := func(opts ...Option) (*Result, []*Checkpoint, *Sim) {
		var cks []*Checkpoint
		opts = append([]Option{WithCheckpointEvery(every, func(ck *Checkpoint) error {
			cks = append(cks, ck)
			return nil
		})}, opts...)
		s, err := New(slowMachine(5000), loadChain(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(50_000)
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return res, cks, s
	}
	want, ckTick, _ := run(WithCycleSkipping(false))
	got, ckEvent, event := run()
	if event.SkippedCycles() == 0 {
		t.Fatal("event core never skipped; cadence test is vacuous")
	}
	if len(ckEvent) != len(ckTick) {
		t.Fatalf("event core took %d checkpoints, ticking took %d", len(ckEvent), len(ckTick))
	}
	for i, ck := range ckEvent {
		if wantCycle := int64(every) * int64(i+1); ck.Cycle != wantCycle {
			t.Fatalf("checkpoint %d at cycle %d, want %d (skipped boundary)", i, ck.Cycle, wantCycle)
		}
		jt, err := json.Marshal(ckTick[i])
		if err != nil {
			t.Fatal(err)
		}
		je, err := json.Marshal(ck)
		if err != nil {
			t.Fatal(err)
		}
		if string(jt) != string(je) {
			t.Fatalf("checkpoint at cycle %d differs between kernels:\nticking %s\nevent   %s", ck.Cycle, jt, je)
		}
	}
	if jw, jg := resultJSON(t, want), resultJSON(t, got); jw != jg {
		t.Errorf("results diverged:\nwant %s\ngot  %s", jw, jg)
	}

	// Resume from a checkpoint taken across a skipped region (mid-run,
	// deep inside the load's latency) and finish byte-identically.
	mid := ckEvent[len(ckEvent)/2]
	data, err := json.Marshal(mid)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Checkpoint
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	resumed, err := New(slowMachine(5000), loadChain())
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(&loaded); err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if jw, jg := resultJSON(t, want), resultJSON(t, res); jw != jg {
		t.Errorf("resume from skipped-region checkpoint diverged:\nwant %s\ngot  %s", jw, jg)
	}
}

// TestEventCoreMatchesTickingWithFaults exercises delayed and dropped
// wakeups (plus port outages) across skips: the injected fault schedule
// draws RNG only at commits and active drains, so the event core must
// reproduce the ticking kernel's faulty run bit for bit — results and
// checkpoint stream both. Unit outages are absent so skipping stays
// enabled (issueCoupled draws outage RNG per slot per cycle, which
// forces per-cycle mode).
func TestEventCoreMatchesTickingWithFaults(t *testing.T) {
	memFaultMachine := func() *machine.Config {
		cfg := miniMachine()
		cfg.Faults = faults.Model{
			Seed:        7,
			MemDropRate: 0.3, MemDelayRate: 0.2, MemDelayMax: 5,
			PortOutageRate: 0.05, PortOutageCycles: 2,
		}
		return cfg
	}
	run := func(opts ...Option) (*Result, []*Checkpoint, *Sim) {
		var cks []*Checkpoint
		opts = append([]Option{
			WithWatchdog(8, 1<<20),
			WithStallAttribution(),
			WithCheckpointEvery(97, func(ck *Checkpoint) error {
				cks = append(cks, ck)
				return nil
			}),
		}, opts...)
		s, err := New(memFaultMachine(), pingPong(30), opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(200_000)
		if err != nil {
			t.Fatalf("faulty run failed: %v", err)
		}
		return res, cks, s
	}
	want, ckTick, _ := run(WithCycleSkipping(false))
	got, ckEvent, event := run()
	if jw, jg := resultJSON(t, want), resultJSON(t, got); jw != jg {
		t.Fatalf("faulty run diverged:\nwant %s\ngot  %s", jw, jg)
	}
	if len(ckEvent) != len(ckTick) {
		t.Fatalf("event core took %d checkpoints, ticking took %d", len(ckEvent), len(ckTick))
	}
	for i := range ckEvent {
		jt, err := json.Marshal(ckTick[i])
		if err != nil {
			t.Fatal(err)
		}
		je, err := json.Marshal(ckEvent[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(jt) != string(je) {
			t.Fatalf("checkpoint %d differs between kernels under faults", i)
		}
	}
	t.Logf("event core skipped %d of %d cycles under mem faults", event.SkippedCycles(), got.Cycles)
}

// TestEventCoreDisabledByObservers pins the disabled-by-construction
// rule: per-cycle observers and per-cycle fault draws force the ticking
// kernel.
func TestEventCoreDisabledByObservers(t *testing.T) {
	// Issue hooks (the InterleaveRecorder installs one) see every cycle.
	hooked, err := New(slowMachine(5000), loadChain(),
		WithIssueHook(func(int64, int, int, *isa.Op) {}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hooked.Run(50_000); err != nil {
		t.Fatal(err)
	}
	if hooked.SkippedCycles() != 0 {
		t.Errorf("skipped %d cycles with an issue hook installed, want 0", hooked.SkippedCycles())
	}
	// Unit outages draw RNG per slot per cycle.
	s, err := New(faultyMachine(), pingPong(5), WithWatchdog(8, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(200_000); err != nil {
		t.Fatal(err)
	}
	if s.SkippedCycles() != 0 {
		t.Errorf("skipped %d cycles with unit-outage injection, want 0", s.SkippedCycles())
	}
}
