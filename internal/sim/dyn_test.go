package sim_test

// Tests for the dynamic-scheduling subsystem (internal/dynsched wired
// through the cycle kernel): architectural correctness under every
// preset, event-core vs ticking-kernel bit-identity, stall-attribution
// conservation with the new causes, and mid-run checkpoint/resume
// byte-identity with live predictor/prefetcher/window state.

import (
	"encoding/json"
	"fmt"
	"testing"

	"pcoup/internal/bench"
	"pcoup/internal/compiler"
	"pcoup/internal/experiments"
	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

// dynPresets names the four dynamic presets as the experiments surface
// them.
var dynPresets = []struct {
	name string
	mdl  machine.DynamicModel
}{
	{"CoupledOoO", machine.DynOoO},
	{"CoupledTAGE", machine.DynTAGE},
	{"CoupledPrefetch", machine.DynPrefetch},
	{"CoupledDyn", machine.DynAll},
}

// TestDynCorrectness: every benchmark must compute the right answer
// under every dynamic preset (speculation, window reordering, and
// prefetching are microarchitectural only). experiments.Execute verifies
// the memory image against the Go reference.
func TestDynCorrectness(t *testing.T) {
	for _, p := range dynPresets {
		for _, b := range []string{"matrix", "fft", "model", "lud"} {
			t.Run(p.name+"/"+b, func(t *testing.T) {
				cfg := machine.Baseline().WithDynamic(p.mdl).WithMemory(machine.Mem2)
				if _, err := experiments.Execute(b, experiments.COUPLED, cfg); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestDynEventTickingIdentity: the event core must produce bit-identical
// results (including stall attribution and dynamic counters) on dynamic
// configurations — six cells: three presets by two benchmarks.
func TestDynEventTickingIdentity(t *testing.T) {
	for _, p := range dynPresets[:3] {
		for _, b := range []string{"matrix", "fft"} {
			t.Run(p.name+"/"+b, func(t *testing.T) {
				cfg := machine.Baseline().WithDynamic(p.mdl).WithMemory(machine.Mem2)
				cfg, prog := compileOn(t, cfg, b, bench.Threaded, compiler.Unrestricted)
				run := func(skip bool) []byte {
					s, err := sim.New(cfg, prog, sim.WithCycleSkipping(skip), sim.WithStallAttribution())
					if err != nil {
						t.Fatal(err)
					}
					res, err := s.Run(0)
					if err != nil {
						t.Fatal(err)
					}
					s.Release()
					data, err := json.Marshal(res)
					if err != nil {
						t.Fatal(err)
					}
					if skip && s.SkippedCycles() == 0 && cfg.Memory.MissRate > 0 {
						t.Logf("note: event core never engaged on %s/%s", p.name, b)
					}
					return data
				}
				event, ticking := run(true), run(false)
				if string(event) != string(ticking) {
					t.Errorf("event core result differs from ticking kernel\nevent:   %.200s\nticking: %.200s", event, ticking)
				}
			})
		}
	}
}

// TestDynConservation: on a CoupledDyn cell every active thread-cycle
// must be attributed to exactly one cause — the new window-full and
// branch-squash causes included — so the histogram total equals the
// integrated active-thread slots.
func TestDynConservation(t *testing.T) {
	cfg := machine.Baseline().WithDynamic(machine.DynAll).WithMemory(machine.Mem2)
	cfg, prog := compileOn(t, cfg, "lud", bench.Threaded, compiler.Unrestricted)
	s, err := sim.New(cfg, prog, sim.WithStallAttribution())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls == nil {
		t.Fatal("no stall stats")
	}
	if got := res.Stalls.Total.Total(); got != res.Stalls.Slots {
		t.Errorf("attributed thread-cycles %d != classified slots %d", got, res.Stalls.Slots)
	}
	var active int64
	for _, ts := range res.Threads {
		active += ts.HaltAt - ts.SpawnAt
		if ts.Stalls == nil {
			continue
		}
		if ts.Stalls.Total() != ts.HaltAt-ts.SpawnAt {
			t.Errorf("thread %d: attributed %d cycles, active %d", ts.ID, ts.Stalls.Total(), ts.HaltAt-ts.SpawnAt)
		}
	}
	if res.Stalls.Slots != active {
		t.Errorf("classified slots %d != integrated active thread-cycles %d", res.Stalls.Slots, active)
	}
	if res.Dyn == nil {
		t.Fatal("no dynamic stats on a CoupledDyn run")
	}
	if res.Dyn.Branches == 0 {
		t.Error("no branches resolved")
	}
	if res.Dyn.Prefetch == nil || res.Dyn.Prefetch.Demand == 0 {
		t.Error("prefetcher observed no demand loads")
	}
}

// TestDynDeterminism: identical runs of a CoupledDyn cell produce
// byte-identical results (seeded rng everywhere, no map iteration).
func TestDynDeterminism(t *testing.T) {
	cfg := machine.Baseline().WithDynamic(machine.DynAll).WithMemory(machine.Mem2)
	cfg, prog := compileOn(t, cfg, "fft", bench.Threaded, compiler.Unrestricted)
	var first []byte
	for i := 0; i < 3; i++ {
		s, err := sim.New(cfg, prog, sim.WithStallAttribution())
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		s.Release()
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = data
		} else if string(data) != string(first) {
			t.Fatalf("run %d differs from run 0", i)
		}
	}
}

// TestDynCheckpointResume: a run interrupted mid-flight and restored
// from a checkpoint — with live predictor tables, prefetcher streams,
// and partially issued windows — must finish byte-identical to the
// uninterrupted run, and a re-snapshot at the same cycle must be
// byte-identical to the original checkpoint.
func TestDynCheckpointResume(t *testing.T) {
	cfg := machine.Baseline().WithDynamic(machine.DynAll).WithMemory(machine.Mem2)
	cfg, prog := compileOn(t, cfg, "matrix", bench.Threaded, compiler.Unrestricted)

	full, err := sim.New(cfg, prog, sim.WithStallAttribution())
	if err != nil {
		t.Fatal(err)
	}
	var cks []*sim.Checkpoint
	fullRes, err := func() (*sim.Result, error) {
		s, err := sim.New(cfg, prog, sim.WithStallAttribution(),
			sim.WithCheckpointEvery(500, func(ck *sim.Checkpoint) error {
				cks = append(cks, ck)
				return nil
			}))
		if err != nil {
			return nil, err
		}
		return s.Run(0)
	}()
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) == 0 {
		t.Fatal("no checkpoints taken")
	}
	// Pick a mid-run checkpoint and require live dynamic state in it.
	ck := cks[len(cks)/2]
	if ck.Dyn == nil {
		t.Fatal("checkpoint carries no dynamic state")
	}
	if ck.Dyn.Predictor == nil || ck.Dyn.Prefetch == nil {
		t.Fatal("checkpoint missing predictor or prefetcher state")
	}
	live := false
	for _, dt := range ck.Dyn.Threads {
		if len(dt.Entries) > 0 {
			live = true
		}
	}
	if !live {
		t.Fatal("no live window entries in mid-run checkpoint")
	}

	// Round-trip through JSON (as the on-disk path would).
	data, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	var loaded sim.Checkpoint
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	if err := full.Restore(&loaded); err != nil {
		t.Fatal(err)
	}
	// Re-snapshot immediately: must reproduce the original bytes.
	again, err := full.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("re-snapshot differs from original checkpoint\n a: %.300s\n b: %.300s", data, data2)
	}
	resumedRes, err := full.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(fullRes)
	b, _ := json.Marshal(resumedRes)
	if string(a) != string(b) {
		t.Errorf("resumed result differs from uninterrupted run\nfull:    %.300s\nresumed: %.300s", a, b)
	}
}

// TestDynParityWithDynamicOff: a config whose dynamic section is the
// zero value must produce byte-identical results to one that never heard
// of the section (the subsystem must be invisible when disabled).
func TestDynParityWithDynamicOff(t *testing.T) {
	base := machine.Baseline().WithMemory(machine.Mem2)
	zeroed := base.WithDynamic(machine.DynamicModel{})
	_, prog := compileOn(t, base, "model", bench.Threaded, compiler.Unrestricted)
	run := func(cfg *machine.Config) []byte {
		s, err := sim.New(cfg, prog, sim.WithStallAttribution())
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		s.Release()
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := run(base), run(zeroed); string(a) != string(b) {
		t.Error("zero-valued dynamic section changed simulation results")
	}
}

// TestDynWindowBeatsInOrderSomewhere is a sanity lower bound: with a
// window, TAGE, and prefetching, at least one benchmark must get faster
// at a lossy memory model (the subsystem must buy something).
func TestDynWindowBeatsInOrderSomewhere(t *testing.T) {
	wins := 0
	for _, b := range []string{"matrix", "fft", "model", "lud"} {
		base := machine.Baseline().WithMemory(machine.Mem2)
		dyn := base.WithDynamic(machine.DynAll)
		_, prog := compileOn(t, base, b, bench.Threaded, compiler.Unrestricted)
		inOrder := runOnce(t, base, prog)
		windowed := runOnce(t, dyn, prog)
		t.Logf("%s: in-order %d cycles, CoupledDyn %d cycles", b, inOrder, windowed)
		if windowed < inOrder {
			wins++
		}
	}
	if wins == 0 {
		t.Error("CoupledDyn beat plain Coupled on no benchmark at Mem2")
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits
