// Package sim is the processor-coupling simulator: it executes compiled
// programs (isa.Program) on a configured node (machine.Config), modeling
// cycle-by-cycle arbitration of function units among multiple threads,
// register presence-bit synchronization, restricted writeback
// interconnects, and the split-transaction memory system. Simulation is
// functional (not register-transfer level) but cycle- and
// operation-accurate, as in the paper.
package sim

import (
	"context"
	"fmt"
	"io"
	"strings"

	"pcoup/internal/faults"
	"pcoup/internal/interconnect"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/memsys"
	"pcoup/internal/regfile"
)

// writeback is one register write waiting for (or travelling toward) its
// destination register file.
type writeback struct {
	thread     *Thread
	dst        isa.RegRef
	val        isa.Value
	srcCluster int
	readyAt    int64 // first cycle the write may claim a port
	seq        int64 // global order tiebreaker
}

// Memory requests carry a memsys.Tag whose (SegIdx, IP, Slot)
// coordinates locate the issuing op inside the program and whose Thread
// field names the issuing thread by ID, so completions re-link without
// boxing and checkpointed tags re-link on restore. opAt and s.byID
// resolve a tag back to the op and thread.

// Result summarizes one simulation run.
type Result struct {
	// Cycles is the total cycle count until all threads halted and all
	// state drained.
	Cycles int64
	// Ops is the dynamic operation count.
	Ops int64
	// IssuedByKind counts dynamic operations per function-unit class.
	IssuedByKind [machine.NumUnitKinds]int64
	// IssuedByUnit counts dynamic operations per global unit slot.
	IssuedByUnit []int64
	Threads      []ThreadStats
	Mem          memsys.Stats
	// WritebackRetries counts register writes that lost port/bus
	// arbitration at least once (interconnect contention).
	WritebackRetries int64
	// OpCacheMisses counts operation cache fills (0 unless the extension
	// model is enabled).
	OpCacheMisses int64
	// PeakRegsPerCluster is the maximum register usage of any thread, per
	// cluster.
	PeakRegsPerCluster []int
	// Interconnect summarizes writeback port/bus arbitration outcomes.
	Interconnect interconnect.Stats
	// Stalls is the per-cycle stall attribution; nil unless
	// WithStallAttribution (or a JSON tracer) was enabled.
	Stalls *StallStats
	// Faults summarizes injected faults and watchdog recoveries; nil
	// unless the machine's fault model is enabled.
	Faults *FaultStats
	// Dyn summarizes the dynamic-scheduling subsystem (branch prediction,
	// window issue, prefetching); nil unless cfg.Dynamic is enabled. The
	// explicit tag keeps the field invisible in JSON for paper-exact runs.
	Dyn *DynStats `json:"Dyn,omitempty"`
}

// FaultStats summarizes fault injection and recovery over a run.
type FaultStats struct {
	// MemDelayed/MemDropped count split-transaction reactivations
	// delayed or lost by injection.
	MemDelayed int64 `json:"mem_delayed"`
	MemDropped int64 `json:"mem_dropped"`
	// PortOutages/UnitOutages count outage windows opened.
	PortOutages int64 `json:"port_outages"`
	UnitOutages int64 `json:"unit_outages"`
	// OutageRejects counts writebacks turned away by port outages.
	OutageRejects int64 `json:"outage_rejects"`
	// WakeupRetries counts watchdog retry sweeps that recovered at
	// least one lost wakeup; WakeupsRecovered counts the addresses
	// recovered across them.
	WakeupRetries    int64 `json:"wakeup_retries"`
	WakeupsRecovered int64 `json:"wakeups_recovered"`
}

// Utilization returns the average operations per cycle executed by units
// of kind k (the utilization metric of Table 2 / Figure 5).
func (r *Result) Utilization(k machine.UnitKind) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.IssuedByKind[k]) / float64(r.Cycles)
}

// Sim is a single-node simulation instance.
type Sim struct {
	cfg   *machine.Config
	prog  *isa.Program
	units []machine.UnitRef
	mem   *memsys.Memory
	arb   *interconnect.Arbiter

	threads []*Thread
	// byID maps thread ID -> thread; IDs are dense spawn-order indices,
	// so a slice lookup resolves memory-completion tags.
	byID    []*Thread
	nextTID int

	wbq   []writeback
	wbSeq int64
	// wbqSorted counts the leading wbq entries already in (readyAt,
	// priority, seq) order; entries pushed since the last drain follow
	// unsorted. drainWritebacks and Snapshot use it to avoid (or defer)
	// re-sorting an already-ordered queue.
	wbqSorted int

	// Per-cycle scratch buffers, reused across cycles so the steady-state
	// kernel allocates nothing.
	orderScratch []int
	rotScratch   []int
	busyScratch  []bool
	valScratch   []isa.Value

	// reqFree recycles memsys.Request objects: a request completes
	// exactly once (via mem.Tick), after which nothing references it, so
	// issueOp reuses it instead of allocating one per memory operation.
	reqFree []*memsys.Request

	// opCaches models per-unit operation caches when enabled (extension).
	opCaches []*opCache

	// dyn is the dynamic-scheduling subsystem (issue windows, branch
	// prediction, prefetching); nil unless cfg.Dynamic is enabled.
	dyn *dynState

	cycle        int64
	lastProgress int64
	stats        Result

	// Event-core state (see eventcore.go): quiet records that the last
	// step executed no work; skipOK caches the per-Run soundness
	// decision; nextCkpt is the next checkpoint boundary (0 = none);
	// skipped counts jumped cycles for tests and benchmarks.
	skipDisabled bool
	skipOK       bool
	quiet        bool
	nextCkpt     int64
	skipped      int64
	// Adaptive probe fallback (busy cells): probeMisses counts
	// consecutive failed skip probes; once it reaches probeBackoff the
	// core stops probing (probeOff) until memory activity re-arms it.
	// probes/memProbes count probe attempts and the subset that reached
	// the O(outstanding-refs) memory scan, for tests and tuning.
	probeMisses int64
	probeOff    bool
	probes      int64
	memProbes   int64

	// pendingSpawns created this cycle become active next cycle.
	pendingSpawns []*Thread

	trace     io.Writer
	issueHook func(cycle int64, unit int, thread int, op *isa.Op)

	// ctx, when set, is polled by the cycle loop so long simulations can
	// be cancelled or deadlined from outside (the service layer's per-job
	// contexts). Nil means never cancelled.
	ctx context.Context

	// maxCycles, when positive, is the default cycle budget used by Run(0)
	// in place of the built-in default.
	maxCycles int64

	// attrib accumulates per-cycle stall attribution; nil unless
	// enabled, so the default path pays only a nil check per cycle.
	attrib *stallAttrib
	// jsonTrace receives structured trace events; nil unless enabled.
	jsonTrace *JSONTracer

	// inj injects deterministic faults; nil unless the machine's fault
	// model is enabled.
	inj *faults.Injector

	// Forward-progress watchdog: when no thread progresses for
	// watchWindow cycles, lost split-transaction wakeups are retried
	// (bounded by watchRetries). On a healthy machine retries are
	// provably no-ops, so the watchdog never perturbs fault-free runs.
	watchWindow      int64
	watchRetries     int64
	wakeupRetries    int64
	wakeupsRecovered int64

	// Checkpointing: every ckptEvery cycles Run snapshots the complete
	// simulator state and hands it to ckptSink.
	ckptEvery int64
	ckptSink  func(*Checkpoint) error
}

// Option configures a Sim.
type Option func(*Sim)

// WithTrace enables a per-event text trace written to w (debugging aid).
func WithTrace(w io.Writer) Option { return func(s *Sim) { s.trace = w } }

// WithIssueHook installs a callback invoked on every operation issue,
// with the cycle, global unit slot, issuing thread id, and the operation.
// Used by visualizations of the unit-to-thread interleaving (the paper's
// Figures 1 and 2).
func WithIssueHook(f func(cycle int64, unit int, thread int, op *isa.Op)) Option {
	return func(s *Sim) { s.issueHook = f }
}

// WithContext attaches a context to the simulation. Run polls it
// periodically (every cancelCheckMask+1 cycles, so the hot loop pays no
// per-cycle cost) and returns the context's error once it is cancelled or
// its deadline passes.
func WithContext(ctx context.Context) Option {
	return func(s *Sim) { s.ctx = ctx }
}

// WithMaxCycles sets the cycle budget Run uses when called with no
// explicit budget (Run's own positive argument still takes precedence).
// Callers that cannot reach the Run call directly — e.g. the service
// layer going through experiments.ExecuteCtx — use this to bound a cell.
func WithMaxCycles(n int64) Option {
	return func(s *Sim) { s.maxCycles = n }
}

// WithWatchdog configures the forward-progress watchdog: after window
// cycles with no progress, lost split-transaction wakeups are retried,
// up to retries total sweeps. retries == 0 disables the watchdog (lost
// wakeups then surface as DeadlockError). Defaults: window 1024,
// retries defaultWatchdogRetries.
func WithWatchdog(window int64, retries int64) Option {
	return func(s *Sim) {
		s.watchWindow = window
		s.watchRetries = retries
	}
}

// WithCheckpointEvery arranges for a full-state checkpoint every n
// cycles, delivered to sink. A sink error aborts the run.
func WithCheckpointEvery(n int64, sink func(*Checkpoint) error) Option {
	return func(s *Sim) {
		s.ckptEvery = n
		s.ckptSink = sink
	}
}

// Watchdog defaults: the window is several times the deepest plausible
// healthy latency chain (memory miss penalties reach ~100 cycles) so
// genuine waits never trigger a sweep, and the retry budget bounds the
// total recovery work on a persistently faulty machine.
const (
	defaultWatchdogWindow  = 1024
	defaultWatchdogRetries = 1 << 20
)

// cancelCheckMask controls how often Run polls the attached context: on
// cycles where cycle&cancelCheckMask == 0 (every 4096 cycles; well under
// a millisecond of host time even on slow machines).
const cancelCheckMask = 1<<12 - 1

// New prepares a simulation of prog on the machine cfg. The program must
// have been compiled for the same machine configuration.
func New(cfg *machine.Config, prog *isa.Program, opts ...Option) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(cfg.NumUnits(), len(cfg.Clusters), cfg.MaxDests); err != nil {
		return nil, err
	}
	memWords := prog.MemWords
	if memWords < 1 {
		memWords = 1
	}
	s := &Sim{
		cfg:          cfg,
		prog:         prog,
		units:        cfg.Units(),
		mem:          memsys.New(cfg.Memory, cfg.Seed, memWords),
		arb:          interconnect.New(cfg.Interconnect, len(cfg.Clusters)),
		watchWindow:  defaultWatchdogWindow,
		watchRetries: defaultWatchdogRetries,
	}
	if err := s.mem.LoadImage(prog.Data); err != nil {
		return nil, err
	}
	if err := s.checkLocality(); err != nil {
		return nil, err
	}
	if cfg.Faults.Enabled() {
		s.inj = faults.NewInjector(cfg.Faults, len(cfg.Clusters), len(s.units))
		s.mem.SetFaults(s.inj)
		if cfg.Faults.PortOutageRate > 0 {
			s.arb.SetOutage(s.inj.PortDown)
		}
	}
	for _, o := range opts {
		o(s)
	}
	s.stats.IssuedByUnit = make([]int64, len(s.units))
	s.busyScratch = make([]bool, len(s.units))
	if cfg.OpCache.Entries > 0 {
		s.opCaches = make([]*opCache, len(s.units))
		for i := range s.opCaches {
			s.opCaches[i] = newOpCache(cfg.OpCache)
		}
	}
	if err := s.initDyn(); err != nil {
		return nil, err
	}
	s.spawn(0) // main thread
	s.activateSpawns()
	return s, nil
}

// checkLocality verifies that every operation reads sources only from the
// register file of the cluster containing its unit slot (the hardware has
// no remote read paths; only writes cross clusters).
func (s *Sim) checkLocality() error {
	for _, seg := range s.prog.Segments {
		for wi := range seg.Instrs {
			for slot, op := range seg.Instrs[wi].Ops {
				if op == nil {
					continue
				}
				if slot >= len(s.units) {
					return fmt.Errorf("sim: %s word %d: slot %d beyond machine's %d units", seg.Name, wi, slot, len(s.units))
				}
				u := s.units[slot]
				if op.Code.Unit() != u.Kind {
					return fmt.Errorf("sim: %s word %d: op %s (%s) scheduled on %s unit", seg.Name, wi, op, op.Code.Unit(), u.Kind)
				}
				for _, src := range op.Srcs {
					if src.Kind == isa.OperandReg && src.Reg.Cluster != u.Cluster {
						return fmt.Errorf("sim: %s word %d: op %s on cluster %d reads remote register %s",
							seg.Name, wi, op, u.Cluster, src.Reg)
					}
				}
			}
		}
	}
	return nil
}

// Memory exposes the simulated memory for harness inspection.
func (s *Sim) Memory() *memsys.Memory { return s.mem }

// Release returns the simulation's large backing arrays (the memory
// image) to an internal pool for reuse by future Sims. The Sim and its
// Memory must not be used afterwards. Optional: sweeps that run many
// cells call it between cells to keep steady-state allocation flat.
func (s *Sim) Release() { s.mem.Recycle() }

// Cycle returns the current cycle number.
func (s *Sim) Cycle() int64 { return s.cycle }

// spawn creates a thread executing code segment segIdx.
func (s *Sim) spawn(segIdx int) *Thread {
	t := &Thread{
		ID:       s.nextTID,
		Priority: s.nextTID,
		SegIdx:   segIdx,
		Seg:      s.prog.Segments[segIdx],
		Regs:     regfile.NewSet(len(s.cfg.Clusters)),
		SpawnAt:  s.cycle,
		IP:       -1, // advance() moves to word 0
	}
	s.nextTID++
	s.byID = append(s.byID, t)
	if s.attrib != nil {
		t.stalls = new(StallBreakdown)
	}
	if s.jsonTrace != nil {
		s.jsonTrace.thread(t.ID, s.prog.Segments[segIdx].Name)
	}
	t.branchTarget = -1
	if !t.advanceFromStart() {
		t.Halted = true
		t.HaltAt = s.cycle
	}
	s.attachWindow(t)
	s.pendingSpawns = append(s.pendingSpawns, t)
	return t
}

// advanceFromStart positions a fresh thread at its first non-empty word.
func (t *Thread) advanceFromStart() bool {
	t.IP = -1
	t.branchTaken = false
	return t.advance()
}

func (s *Sim) activateSpawns() {
	s.threads = append(s.threads, s.pendingSpawns...)
	s.pendingSpawns = s.pendingSpawns[:0]
}

// activeCount returns the number of unhalted threads (including spawns
// activating next cycle).
func (s *Sim) activeCount() int {
	n := len(s.pendingSpawns)
	for _, t := range s.threads {
		if !t.Halted {
			n++
		}
	}
	return n
}

// BudgetError is returned when the cycle budget expires before the
// program completes. It is a typed error so services can report
// budget-exceeded as a distinct job outcome rather than a generic
// failure.
type BudgetError struct {
	MaxCycles int64
	Cycle     int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: exceeded %d cycles without completing", e.MaxCycles)
}

// ErrDeadlock is returned when the machine makes no progress for an
// extended period while threads remain active.
type DeadlockError struct {
	Cycle   int64
	Detail  string
	Threads []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d: %s", e.Cycle, e.Detail)
}

// Run executes the program until completion or until maxCycles elapse
// (0 means a large default). It returns the accumulated statistics.
func (s *Sim) Run(maxCycles int64) (*Result, error) {
	if maxCycles <= 0 {
		maxCycles = s.maxCycles
	}
	if maxCycles <= 0 {
		maxCycles = 100_000_000
	}
	// The no-progress window is clamped to half the cycle budget so that
	// a short -max run of a blocked program still yields the diagnostic
	// DeadlockError (with per-thread stall causes) instead of a generic
	// budget-exceeded failure: a program that blocks early is caught by
	// the window well before the budget expires.
	stallLimit := int64(20_000)
	if half := maxCycles / 2; half < stallLimit {
		stallLimit = half
		if stallLimit < 1 {
			stallLimit = 1
		}
	}
	s.skipOK = s.skipAllowed()
	// Cycle-granularity side channels are boundary-crossing thresholds,
	// not exact-modulo tests: the event core advances s.cycle by more
	// than 1, and a modulo test would silently miss its boundary. Under
	// the ticking kernel the thresholds fire at the identical cycles the
	// old modulo tests fired at.
	const cancelEvery = cancelCheckMask + 1
	nextCancel := (s.cycle/cancelEvery + 1) * cancelEvery
	s.nextCkpt = 0
	if s.ckptSink != nil && s.ckptEvery > 0 {
		s.nextCkpt = (s.cycle/s.ckptEvery + 1) * s.ckptEvery
	}
	for !s.finished() {
		s.step()
		if err := s.mem.Fault(); err != nil {
			return nil, fmt.Errorf("sim: cycle %d: %w", s.cycle, err)
		}
		if s.ctx != nil && s.cycle >= nextCancel {
			nextCancel = (s.cycle/cancelEvery + 1) * cancelEvery
			if err := s.ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: cancelled at cycle %d: %w", s.cycle, err)
			}
		}
		if s.nextCkpt > 0 && s.cycle >= s.nextCkpt {
			s.nextCkpt = (s.cycle/s.ckptEvery + 1) * s.ckptEvery
			ck, err := s.Snapshot()
			if err != nil {
				return nil, fmt.Errorf("sim: checkpoint at cycle %d: %w", s.cycle, err)
			}
			if err := s.ckptSink(ck); err != nil {
				return nil, fmt.Errorf("sim: checkpoint at cycle %d: %w", s.cycle, err)
			}
		}
		// Forward-progress watchdog: a stall past the window with parked
		// references but no scheduled reactivation is the signature of an
		// injection-dropped wakeup; retry it deterministically. On a
		// healthy machine the sweep finds nothing and changes nothing.
		if s.watchRetries > 0 && s.cycle-s.lastProgress > s.watchWindow {
			if n := s.mem.RecoverLostWakeups(); n > 0 {
				s.wakeupRetries++
				s.wakeupsRecovered += int64(n)
				s.watchRetries--
			}
		}
		if s.cycle-s.lastProgress > stallLimit {
			return nil, s.deadlock()
		}
		if s.cycle >= maxCycles {
			if s.finished() {
				break
			}
			return nil, &BudgetError{MaxCycles: maxCycles, Cycle: s.cycle}
		}
		if s.quiet && s.skipOK && !s.probeOff {
			if k := s.skipBudget(stallLimit, maxCycles); k > 0 {
				s.skipCycles(k)
				s.probeMisses = 0
			} else {
				// Adaptive fallback: a busy cell's quiet cycles are
				// dependence bubbles with work due immediately, so probes
				// keep failing. After probeBackoff consecutive misses stop
				// probing; memory activity (issue or completion) re-arms,
				// since that is what opens genuinely skippable windows.
				s.probeMisses++
				if s.probeMisses >= probeBackoff {
					s.probeOff = true
				}
			}
		}
	}
	s.finalize()
	res := s.stats
	return &res, nil
}

// finished reports whether all threads halted and all machine state
// drained.
func (s *Sim) finished() bool {
	if len(s.pendingSpawns) > 0 || len(s.wbq) > 0 || !s.mem.Quiescent() {
		return false
	}
	for _, t := range s.threads {
		if !t.Halted {
			return false
		}
	}
	return true
}

func (s *Sim) deadlock() error {
	var lines []string
	var causes []string
	for _, t := range s.threads {
		if t.Halted {
			continue
		}
		cause, _, reg, hasReg := s.classify(t)
		stall := cause.String()
		if hasReg {
			stall += fmt.Sprintf(" on %s", reg)
		}
		causes = append(causes, fmt.Sprintf("t%d=%s", t.ID, stall))
		w := t.word()
		desc := fmt.Sprintf("thread %d (%s) pc=%d [stall: %s]", t.ID, t.Seg.Name, t.IP, stall)
		// Name the blocking memory word, if the thread is waiting on one.
		if state, addr := s.mem.FindWaitAddr(func(tag memsys.Tag) bool {
			return tag.Thread == t.ID
		}); state == memsys.WaitParked {
			desc += fmt.Sprintf(" [waiting addr %d]", addr)
		}
		if w != nil {
			for slot, op := range w.Ops {
				if op == nil || (slot < len(t.issued) && t.issued[slot]) {
					continue
				}
				desc += fmt.Sprintf("; waiting op %s", op)
				for _, src := range op.Srcs {
					if src.Kind == isa.OperandReg && !t.Regs.Valid(src.Reg) {
						desc += fmt.Sprintf(" [src %s invalid]", src.Reg)
					}
				}
				for _, d := range op.Dests {
					if !t.Regs.Valid(d) {
						desc += fmt.Sprintf(" [dst %s pending]", d)
					}
				}
			}
		}
		lines = append(lines, desc)
	}
	detail := fmt.Sprintf("%d parked memory refs, %d queued writebacks; %d active threads; stalls: %s",
		s.mem.ParkedCount(), len(s.wbq), s.activeCount(), strings.Join(causes, ", "))
	return &DeadlockError{Cycle: s.cycle, Detail: detail, Threads: lines}
}

// step advances the machine by one cycle. It records in s.quiet whether
// the cycle did any work at all (memory completion, writeback
// arbitration, issue); after a quiet cycle the machine state is frozen
// and the event core may jump to the next interesting cycle.
func (s *Sim) step() {
	s.cycle++
	s.activateSpawns()
	busy := false

	// 1. Memory completions become writeback candidates this cycle.
	for _, c := range s.mem.Tick() {
		busy = true
		s.rearmProbe()
		tag := c.Req.Tag
		th := s.byID[tag.Thread]
		th.stalled = false
		if c.Req.IsStore {
			th.storesOut--
		} else {
			if c.Req.Sync != isa.SyncNone {
				th.syncLoadsOut--
			}
			for _, d := range s.opAt(tag).Dests {
				s.pushWriteback(th, d, c.Value, tag.SrcCluster, s.cycle)
			}
		}
		s.reqFree = append(s.reqFree, c.Req)
		s.progress()
	}

	// 2. Writeback: completed results contend for register write ports.
	if s.drainWritebacks() {
		busy = true
	}

	// 3. Issue: per-unit arbitration among ready operations of all
	// active threads.
	opsBefore := s.stats.Ops
	if s.dyn != nil && s.dyn.winCap > 0 {
		s.issueDyn()
	} else if s.cfg.LockStepIssue {
		s.issueLockStep()
	} else {
		s.issueCoupled()
	}
	if s.stats.Ops != opsBefore {
		busy = true
	}

	// 4. Stall attribution: classify what every active thread did (or
	// why it could not issue) this cycle, before frontiers move.
	if s.attrib != nil {
		s.classifyCycle()
	}

	// 5. Advance instruction frontiers. Window threads retire/extend in
	// dynAdvance, which reports any structural change so the cycle is
	// marked busy (the event core must never skip a retire or fetch).
	for _, t := range s.threads {
		if t.Halted {
			continue
		}
		if t.dyn != nil {
			if s.dynAdvance(t) {
				busy = true
			}
			continue
		}
		if !t.wordDone() {
			continue
		}
		if !t.advance() {
			t.Halted = true
			t.HaltAt = s.cycle
		}
	}
	s.quiet = !busy

	// 6. Settle the per-thread ready caches: a thread that did not issue
	// and has no ready unissued operation is marked stalled and drops
	// out of issue arbitration until an event clears the flag (see
	// Thread.stalled). Threads that issued (or just advanced — advance
	// only fires on the final issue's cycle) stay hot.
	for _, t := range s.threads {
		if t.stalled || t.lastIssue == s.cycle {
			continue
		}
		if t.dyn != nil {
			// A squash-suppressed thread stays hot: no later event marks
			// the end of suppression, so it must keep getting scanned.
			if s.cycle <= t.dyn.squashUntil {
				t.stalled = false
			} else {
				t.stalled = !s.anyReadyDyn(t)
			}
			continue
		}
		t.stalled = !s.anyReady(t)
	}
}

// anyReady reports whether any unissued operation of the thread's
// current word is ready to issue. Operation-cache misses are deliberately
// ignored: a fill completes on its own schedule, so a fill-blocked thread
// must keep getting scanned.
func (s *Sim) anyReady(t *Thread) bool {
	w := t.word()
	if w == nil {
		return false
	}
	for slot, op := range w.Ops {
		if op == nil || (slot < len(t.issued) && t.issued[slot]) {
			continue
		}
		if s.ready(t, op) {
			return true
		}
	}
	return false
}

func (s *Sim) progress() { s.lastProgress = s.cycle }

// opAt resolves a memory tag's program coordinates back to its op.
func (s *Sim) opAt(tag memsys.Tag) *isa.Op {
	return s.prog.Segments[tag.SegIdx].Instrs[tag.IP].Ops[tag.Slot]
}

// allocReq returns a recycled (or fresh) request; the caller overwrites
// every field.
func (s *Sim) allocReq() *memsys.Request {
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree = s.reqFree[:n-1]
		return r
	}
	return new(memsys.Request)
}

func (s *Sim) pushWriteback(t *Thread, dst isa.RegRef, v isa.Value, srcCluster int, readyAt int64) {
	s.wbSeq++
	s.wbq = append(s.wbq, writeback{
		thread: t, dst: dst, val: v, srcCluster: srcCluster,
		readyAt: readyAt, seq: s.wbSeq,
	})
}

// wbLess orders writebacks by (readyAt, priority, seq). seq is globally
// unique, so this is a strict total order: every sort of a queue yields
// the same permutation, regardless of algorithm or starting order.
func wbLess(a, b *writeback) bool {
	if a.readyAt != b.readyAt {
		return a.readyAt < b.readyAt
	}
	if a.thread.Priority != b.thread.Priority {
		return a.thread.Priority < b.thread.Priority
	}
	return a.seq < b.seq
}

// sortWbq insertion-sorts q in wbLess order. The queue is nearly sorted
// every cycle (a sorted prefix of survivors plus a few fresh pushes), so
// insertion sort beats sort.SliceStable and allocates nothing.
func sortWbq(q []writeback) {
	for i := 1; i < len(q); i++ {
		for j := i; j > 0 && wbLess(&q[j], &q[j-1]); j-- {
			q[j], q[j-1] = q[j-1], q[j]
		}
	}
}

// drainWritebacks grants register-file ports in (readyAt, priority, seq)
// order; ungranted writes retry next cycle. When no queued write is ready
// this cycle (fault-delayed wakeups, long-latency results in flight),
// arbitration setup and the sort are skipped entirely; wbqSorted records
// that the queue still owes a sort, which Snapshot settles if a
// checkpoint intervenes before the next full drain. The return value
// reports whether arbitration ran at all (the event core treats both
// early-outs as idle).
func (s *Sim) drainWritebacks() bool {
	if len(s.wbq) == 0 {
		s.wbqSorted = 0
		return false
	}
	ready := false
	for i := range s.wbq {
		if s.wbq[i].readyAt <= s.cycle {
			ready = true
			break
		}
	}
	if !ready {
		s.wbqSorted = len(s.wbq)
		return false
	}
	s.arb.BeginCycle(s.cycle)
	sortWbq(s.wbq)
	kept := s.wbq[:0]
	for i := range s.wbq {
		wb := s.wbq[i]
		if wb.readyAt > s.cycle {
			kept = append(kept, wb)
			continue
		}
		if s.arb.TryGrant(interconnect.Request{SrcCluster: wb.srcCluster, DstCluster: wb.dst.Cluster}) {
			wb.thread.Regs.Write(wb.dst, wb.val)
			wb.thread.stalled = false
			if s.trace != nil {
				fmt.Fprintf(s.trace, "[%6d] t%d wb %s = %s\n", s.cycle, wb.thread.ID, wb.dst, wb.val)
			}
			s.progress()
		} else {
			s.stats.WritebackRetries++
			kept = append(kept, wb)
		}
	}
	s.wbq = kept
	s.wbqSorted = len(kept)
	return true
}

// threadOrder returns thread indices in arbitration order for this cycle.
// The returned slice is scratch owned by the Sim, valid until the next
// call.
func (s *Sim) threadOrder() []int {
	order := s.orderScratch[:0]
	for i := range s.threads {
		if !s.threads[i].Halted {
			order = append(order, i)
		}
	}
	s.orderScratch = order
	// Threads are appended in spawn order and Priority == spawn order, so
	// order is already priority-sorted; the insertion sort below is a
	// guard for future priority schemes and costs one pass when sorted.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && s.threads[order[j]].Priority < s.threads[order[j-1]].Priority; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	if s.cfg.Arbitration == machine.RoundRobinArbitration && len(order) > 1 {
		rot := int(s.cycle) % len(order)
		rotated := append(s.rotScratch[:0], order[rot:]...)
		rotated = append(rotated, order[:rot]...)
		s.rotScratch = order
		s.orderScratch = rotated
		return rotated
	}
	return order
}

// ready reports whether op may issue for thread t this cycle: every source
// register present, every destination register present (no outstanding
// write), and thread-management constraints satisfied.
func (s *Sim) ready(t *Thread, op *isa.Op) bool {
	for _, src := range op.Srcs {
		if !t.Regs.OperandValid(src) {
			return false
		}
	}
	for _, d := range op.Dests {
		if !t.Regs.Valid(d) {
			return false
		}
	}
	switch op.Code {
	case isa.OpHalt:
		// Halt retires the thread, abandoning any unissued operations of
		// the current word; it must therefore be the last operation of
		// the word to issue. (Under lock-step issue the whole word issues
		// atomically, so nothing can be abandoned.)
		if w := t.word(); w != nil && !s.cfg.LockStepIssue {
			for slot, other := range w.Ops {
				if other == nil || other.Code == isa.OpHalt {
					continue
				}
				if slot >= len(t.issued) || !t.issued[slot] {
					return false
				}
			}
		}
	case isa.OpFork:
		// Fork waits for a thread slot, for the parent's stores to
		// complete (release, so the child observes pre-fork memory), and
		// for outstanding synchronizing loads (acquire, so a join really
		// separates one wave of children from the next).
		if s.activeCount() >= s.cfg.MaxActiveThreads() || t.storesOut > 0 || t.syncLoadsOut > 0 {
			return false
		}
	case isa.OpStore:
		// Producing stores have release semantics: all of the thread's
		// ordinary stores must have completed so that a completion flag
		// never becomes visible before the data it guards.
		if op.Sync == isa.SyncProduce && t.storesOut > 0 {
			return false
		}
		// Outstanding synchronizing loads are acquire fences.
		if t.syncLoadsOut > 0 {
			return false
		}
	case isa.OpLoad:
		if t.syncLoadsOut > 0 {
			return false
		}
	}
	return true
}

// opCacheOK reports whether the operation's instruction word is present
// in the unit's operation cache (always true when the model is off).
func (s *Sim) opCacheOK(slot int, t *Thread) bool {
	if s.opCaches == nil {
		return true
	}
	return s.opCaches[slot].lookup(t.SegIdx, t.IP, s.cycle)
}

// issueCoupled performs normal processor-coupled issue: each function unit
// independently selects one ready operation among all active threads'
// current words, favoring threads in arbitration order.
func (s *Sim) issueCoupled() {
	order := s.threadOrder()
	for slot := range s.units {
		// Degradation windows: a down unit issues nothing this cycle.
		// Every slot is probed every cycle, so the injector's per-cycle
		// cache is always populated before stall classification reads it.
		if s.inj != nil && s.inj.UnitDown(slot, s.cycle) {
			continue
		}
		for _, ti := range order {
			t := s.threads[ti]
			if t.stalled {
				continue
			}
			w := t.word()
			if w == nil || slot >= len(w.Ops) {
				continue
			}
			op := w.Ops[slot]
			if op == nil || (slot < len(t.issued) && t.issued[slot]) {
				continue
			}
			if !s.ready(t, op) || !s.opCacheOK(slot, t) {
				continue
			}
			s.issueOp(t, slot, op)
			break // unit consumed this cycle
		}
	}
}

// issueLockStep is the VLIW-style ablation: a thread's entire instruction
// word must issue atomically in a single cycle.
func (s *Sim) issueLockStep() {
	order := s.threadOrder()
	unitBusy := s.busyScratch
	for slot := range unitBusy {
		unitBusy[slot] = s.inj != nil && s.inj.UnitDown(slot, s.cycle)
	}
	for _, ti := range order {
		t := s.threads[ti]
		if t.stalled {
			continue
		}
		w := t.word()
		if w == nil {
			continue
		}
		ok := true
		for slot, op := range w.Ops {
			if op == nil {
				continue
			}
			if unitBusy[slot] || !s.ready(t, op) || !s.opCacheOK(slot, t) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for slot, op := range w.Ops {
			if op == nil {
				continue
			}
			unitBusy[slot] = true
			s.issueOp(t, slot, op)
		}
	}
}

// issueOp commits the issue of op on unit slot for thread t: operands are
// read, destination presence bits cleared, and the operation enters its
// unit's pipeline (or the memory system, or takes control effect).
func (s *Sim) issueOp(t *Thread, slot int, op *isa.Op) {
	u := s.units[slot]
	for len(t.issued) <= slot {
		t.issued = append(t.issued, false)
	}
	t.issued[slot] = true
	t.OpsIssued++
	t.lastIssue = s.cycle
	s.stats.Ops++
	s.stats.IssuedByKind[u.Kind]++
	s.stats.IssuedByUnit[slot]++
	s.progress()

	vals := s.valScratch[:0]
	for _, src := range op.Srcs {
		vals = append(vals, t.Regs.OperandValue(src))
	}
	s.valScratch = vals[:0]
	for _, d := range op.Dests {
		t.Regs.ClearValid(d)
	}
	if s.trace != nil {
		fmt.Fprintf(s.trace, "[%6d] t%d u%d issue %s\n", s.cycle, t.ID, slot, op)
	}
	if s.issueHook != nil {
		s.issueHook(s.cycle, slot, t.ID, op)
	}
	if s.jsonTrace != nil {
		s.jsonTrace.issue(s.cycle, slot, t.ID, op, u)
	}

	switch op.Code {
	case isa.OpLoad, isa.OpStore:
		s.issueMemRef(t, slot, op, vals, t.IP)
	case isa.OpJmp:
		t.branchTaken = true
		t.branchTarget = op.Target
	case isa.OpBt:
		if vals[0].Truthy() {
			t.branchTaken = true
			t.branchTarget = op.Target
		}
	case isa.OpBf:
		if !vals[0].Truthy() {
			t.branchTaken = true
			t.branchTarget = op.Target
		}
	case isa.OpFork:
		s.spawn(op.Target)
	case isa.OpHalt:
		t.Halted = true
		t.HaltAt = s.cycle
		// A halt frees a thread slot mid-cycle: forks blocked on
		// MaxActiveThreads become ready for the units arbitrated after
		// this one, exactly as under the uncached scan.
		for _, other := range s.threads {
			other.stalled = false
		}
	default:
		// Pure compute: result known now, written back after the unit's
		// pipeline latency.
		res, err := isa.Eval(op.Code, vals)
		if err != nil {
			panic(fmt.Sprintf("sim: cycle %d thread %d: %v", s.cycle, t.ID, err))
		}
		for _, d := range op.Dests {
			s.pushWriteback(t, d, res, u.Cluster, s.cycle+int64(u.Latency))
		}
	}
}

// finalize computes summary statistics after the run completes.
func (s *Sim) finalize() {
	s.stats.Cycles = s.cycle
	s.stats.Mem = s.mem.Stats()
	s.stats.Interconnect = s.arb.Stats()
	if s.inj != nil {
		fs := s.inj.Stats()
		s.stats.Faults = &FaultStats{
			MemDelayed: fs.MemDelayed, MemDropped: fs.MemDropped,
			PortOutages: fs.PortOutages, UnitOutages: fs.UnitOutages,
			OutageRejects:    s.stats.Interconnect.OutageRejects,
			WakeupRetries:    s.wakeupRetries,
			WakeupsRecovered: s.wakeupsRecovered,
		}
	}
	for _, c := range s.opCaches {
		s.stats.OpCacheMisses += c.misses
	}
	if s.dyn != nil {
		d := s.dyn.stats
		if s.dyn.pref != nil {
			st := s.dyn.pref.Stats()
			d.Prefetch = &st
		}
		s.stats.Dyn = &d
	}
	s.stats.PeakRegsPerCluster = make([]int, len(s.cfg.Clusters))
	for _, t := range s.threads {
		peaks := t.Regs.PeakPerCluster()
		for c, p := range peaks {
			if p > s.stats.PeakRegsPerCluster[c] {
				s.stats.PeakRegsPerCluster[c] = p
			}
		}
		s.stats.Threads = append(s.stats.Threads, ThreadStats{
			ID: t.ID, Segment: t.Seg.Name, SpawnAt: t.SpawnAt, HaltAt: t.HaltAt,
			OpsIssued: t.OpsIssued, PeakRegs: peaks, Stalls: t.stalls,
		})
	}
	if s.attrib != nil {
		st := &StallStats{
			Slots:    s.attrib.slots,
			PerUnit:  s.attrib.perUnit,
			WaitRegs: s.attrib.waitRegs,
		}
		for _, t := range s.threads {
			if t.stalls == nil {
				continue
			}
			for c, n := range t.stalls {
				st.Total[c] += n
			}
		}
		s.stats.Stalls = st
	}
	if s.jsonTrace != nil {
		s.jsonTrace.finish(s.cycle)
	}
}
