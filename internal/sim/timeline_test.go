package sim

import (
	"strings"
	"testing"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

func TestTimeline(t *testing.T) {
	// A burst of IU work followed by a quiet tail: the first bucket must
	// show higher utilization than the last.
	var words []isa.Instruction
	for i := 0; i < 8; i++ {
		words = append(words, word(
			opAdd(uIU0, r(0, i), isa.ImmInt(int64(i)), isa.ImmInt(1)),
			opAdd(uIU1, r(1, i), isa.ImmInt(int64(i)), isa.ImmInt(2)),
		))
	}
	// Quiet dependent chain.
	words = append(words, word(opAdd(uIU0, r(0, 20), isa.ImmInt(0), isa.ImmInt(0))))
	for i := 0; i < 8; i++ {
		words = append(words, word(opAdd(uIU0, r(0, 20), isa.Reg(r(0, 20)), isa.ImmInt(1))))
	}
	words = append(words, word(opHalt()))
	main := &isa.ThreadCode{Name: "main", Instrs: words}

	cfg := miniMachine()
	tl := NewTimeline(cfg, 8)
	s, err := New(cfg, prog(main), tl.Hook())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	pts := tl.Points(res.Cycles)
	if len(pts) < 2 {
		t.Fatalf("timeline has %d buckets", len(pts))
	}
	total := int64(0)
	for _, p := range pts {
		for _, n := range p.Issued {
			total += n
		}
		if p.Threads < 1 {
			t.Errorf("bucket at %d saw no threads", p.StartCycle)
		}
	}
	if total != res.Ops {
		t.Errorf("timeline counted %d issues, run had %d", total, res.Ops)
	}
	firstIU := pts[0].Issued[machine.IU]
	lastIU := pts[len(pts)-1].Issued[machine.IU]
	if firstIU <= lastIU {
		t.Errorf("burst bucket (%d IU ops) should exceed tail bucket (%d)", firstIU, lastIU)
	}

	var buf strings.Builder
	tl.Write(&buf, res.Cycles)
	if !strings.Contains(buf.String(), "utilization timeline") {
		t.Error("render missing header")
	}
}

func TestTimelineBucketClamp(t *testing.T) {
	tl := NewTimeline(miniMachine(), 0)
	if tl.bucket != 1 {
		t.Errorf("zero bucket not clamped: %d", tl.bucket)
	}
}
