package sim

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"pcoup/internal/faults"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/memsys"
)

// pingPong builds a straight-line two-thread program that bounces
// ownership of two synchronization cells back and forth rounds times:
// main produces cell 8 and consumes cell 9; the worker consumes cell 8
// and produces cell 9. Every round parks references and exercises the
// split-transaction reactivation path, which is where memory wakeup
// faults are injected.
func pingPong(rounds int) *isa.Program {
	var mainWords, workerWords []isa.Instruction
	mainWords = append(mainWords, word(forkOp(1)))
	for i := 0; i < rounds; i++ {
		mainWords = append(mainWords,
			word(&isa.Op{Code: isa.OpStore, Unit: uMEM0, Sync: isa.SyncProduce,
				Srcs: []isa.Operand{isa.ImmInt(int64(i))}, Offset: 8}),
			word(&isa.Op{Code: isa.OpLoad, Unit: uMEM0, Sync: isa.SyncConsume,
				Dests: []isa.RegRef{r(0, 0)}, Offset: 9}),
		)
		workerWords = append(workerWords,
			word(&isa.Op{Code: isa.OpLoad, Unit: uMEM1, Sync: isa.SyncConsume,
				Dests: []isa.RegRef{r(1, 0)}, Offset: 8}),
			word(&isa.Op{Code: isa.OpStore, Unit: uMEM1, Sync: isa.SyncProduce,
				Srcs: []isa.Operand{isa.Reg(r(1, 0))}, Offset: 9}),
		)
	}
	mainWords = append(mainWords, word(opHalt()))
	workerWords = append(workerWords, word(opHalt()))
	p := prog(
		&isa.ThreadCode{Name: "main", Instrs: mainWords},
		&isa.ThreadCode{Name: "w", Instrs: workerWords},
	)
	p.Data = []isa.DataSegment{{Name: "cells", Addr: 8, Values: []isa.Value{isa.Int(0), isa.Int(0)}, Full: false}}
	return p
}

// faultyMachine is the mini machine with every fault class enabled at
// rates high enough that a ping-pong run observes all of them.
func faultyMachine() *machine.Config {
	cfg := miniMachine()
	cfg.Faults = faults.Model{
		Seed:        7,
		MemDropRate: 0.3, MemDelayRate: 0.2, MemDelayMax: 5,
		PortOutageRate: 0.05, PortOutageCycles: 2,
		UnitOutageRate: 0.02, UnitOutageCycles: 3,
	}
	return cfg
}

func resultJSON(t *testing.T, res *Result) string {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestFaultInjectionDeterministic(t *testing.T) {
	run := func() *Result {
		s, err := New(faultyMachine(), pingPong(30), WithWatchdog(8, 1<<20), WithStallAttribution())
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(200_000)
		if err != nil {
			t.Fatalf("faulty run failed: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if ja, jb := resultJSON(t, a), resultJSON(t, b); ja != jb {
		t.Fatalf("two runs with the same fault seed differ:\n%s\n%s", ja, jb)
	}
	if a.Faults == nil {
		t.Fatal("Result.Faults nil with fault model enabled")
	}
	if a.Faults.MemDropped == 0 {
		t.Errorf("expected dropped wakeups at rate 0.3: %+v", a.Faults)
	}
	if a.Faults.WakeupsRecovered < a.Faults.MemDropped {
		t.Errorf("dropped %d wakeups but recovered only %d — run should not have completed",
			a.Faults.MemDropped, a.Faults.WakeupsRecovered)
	}
	if a.Faults.MemDelayed == 0 {
		t.Errorf("expected delayed wakeups at rate 0.2: %+v", a.Faults)
	}
}

func TestFaultSeedChangesSchedule(t *testing.T) {
	run := func(seed uint64) *Result {
		cfg := faultyMachine()
		cfg.Faults.Seed = seed
		s, err := New(cfg, pingPong(30), WithWatchdog(8, 1<<20))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(200_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return res
	}
	a, b := run(1), run(2)
	if a.Cycles == b.Cycles && a.Faults.MemDropped == b.Faults.MemDropped && a.Faults.MemDelayed == b.Faults.MemDelayed {
		t.Errorf("different fault seeds produced an identical run: %+v vs %+v", a.Faults, b.Faults)
	}
}

func TestWatchdogDisabledFaultsDeadlock(t *testing.T) {
	// Dropped wakeups with no recovery must surface as a DeadlockError
	// rather than hanging or completing wrongly.
	cfg := miniMachine()
	cfg.Faults = faults.Model{Seed: 7, MemDropRate: 1.0}
	s, err := New(cfg, pingPong(5), WithWatchdog(8, 0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(100_000)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error = %v (%T), want *DeadlockError", err, err)
	}
}

func TestWatchdogNoOpOnHealthyMachine(t *testing.T) {
	// The lost-wakeup retry must be provably inert without faults: the
	// same healthy program with the watchdog disabled and with an
	// aggressive watchdog (window 2, so it fires during every legitimate
	// synchronization park) produces byte-identical results.
	run := func(opts ...Option) *Result {
		s, err := New(miniMachine(), pingPong(20), opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(100_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	disabled := run(WithWatchdog(2, 0))
	enabled := run(WithWatchdog(2, 1<<20))
	if jd, je := resultJSON(t, disabled), resultJSON(t, enabled); jd != je {
		t.Fatalf("watchdog perturbed a healthy run:\ndisabled: %s\nenabled:  %s", jd, je)
	}
}

// crossDeadlocked builds the classic inter-thread synchronization
// deadlock: each thread waits on a cell that only the other thread's
// later (postcondition) store would fill.
func crossDeadlocked() *isa.Program {
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(forkOp(1)),
		word(opLoad(uMEM0, r(0, 0), 8, isa.SyncWaitFull)), // filled only by w's store
		word(opStore(uMEM0, isa.Reg(r(0, 0)), 9)),         // would fill w's wait
		word(opHalt()),
	}}
	worker := &isa.ThreadCode{Name: "w", Instrs: []isa.Instruction{
		word(opLoad(uMEM1, r(1, 0), 9, isa.SyncWaitFull)), // filled only by main's store
		word(opStore(uMEM1, isa.Reg(r(1, 0)), 8)),         // would fill main's wait
		word(opHalt()),
	}}
	p := prog(main, worker)
	p.Data = []isa.DataSegment{{Name: "cells", Addr: 8, Values: []isa.Value{isa.Int(0), isa.Int(0)}, Full: false}}
	return p
}

func TestCrossThreadSyncDeadlockNamesBothThreads(t *testing.T) {
	s, err := New(miniMachine(), crossDeadlocked())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(100_000)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error = %v (%T), want *DeadlockError", err, err)
	}
	all := strings.Join(de.Threads, "\n")
	for _, want := range []string{"thread 0 (main)", "thread 1 (w)", "waiting addr 8", "waiting addr 9", "pc="} {
		if !strings.Contains(all, want) {
			t.Errorf("diagnostics missing %q:\n%s", want, all)
		}
	}
}

func TestCrossThreadDeadlockIdenticalWithWatchdog(t *testing.T) {
	// A genuine deadlock is not a lost wakeup: the watchdog's retry must
	// not change the diagnosis (the parked queues' directions are all
	// disabled, so recovery finds nothing).
	diag := func(opts ...Option) *DeadlockError {
		s, err := New(miniMachine(), crossDeadlocked(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Run(100_000)
		var de *DeadlockError
		if !errors.As(err, &de) {
			t.Fatalf("error = %v (%T), want *DeadlockError", err, err)
		}
		return de
	}
	a := diag(WithWatchdog(2, 0))
	b := diag(WithWatchdog(2, 1<<20))
	if a.Cycle != b.Cycle || a.Detail != b.Detail || strings.Join(a.Threads, "\n") != strings.Join(b.Threads, "\n") {
		t.Errorf("watchdog changed deadlock diagnosis:\n%v\nvs\n%v", a, b)
	}
}

func TestAddressFaultTyped(t *testing.T) {
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(opStore(uMEM0, isa.ImmInt(1), 1000)), // MemWords is 64
		word(opHalt()),
	}}
	s, err := New(miniMachine(), prog(main))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(10_000)
	var ae *memsys.AddressError
	if !errors.As(err, &ae) {
		t.Fatalf("error = %v (%T), want wrapped *memsys.AddressError", err, err)
	}
	if ae.Addr != 1000 || !ae.IsStore || ae.Size != 64 {
		t.Errorf("AddressError = %+v, want addr 1000, store, size 64", ae)
	}
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  func() *machine.Config
		opts []Option
	}{
		{"healthy", miniMachine, nil},
		{"healthy-attrib", miniMachine, []Option{WithStallAttribution()}},
		{"faulty", faultyMachine, []Option{WithWatchdog(8, 1<<20)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := pingPong(30)

			// Uninterrupted reference run.
			ref, err := New(tc.cfg(), p, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Run(200_000)
			if err != nil {
				t.Fatal(err)
			}

			// Checkpointing run: capture a snapshot mid-execution.
			var cks []*Checkpoint
			every := want.Cycles / 3
			if every < 1 {
				every = 1
			}
			opts := append([]Option{WithCheckpointEvery(every, func(ck *Checkpoint) error {
				cks = append(cks, ck)
				return nil
			})}, tc.opts...)
			ck1, err := New(tc.cfg(), p, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ck1.Run(200_000); err != nil {
				t.Fatal(err)
			}
			if len(cks) == 0 {
				t.Fatal("no checkpoints captured")
			}
			mid := cks[len(cks)/2]

			// Round-trip the checkpoint through JSON (the wire format).
			data, err := json.Marshal(mid)
			if err != nil {
				t.Fatal(err)
			}
			var loaded Checkpoint
			if err := json.Unmarshal(data, &loaded); err != nil {
				t.Fatal(err)
			}

			// Resume from the checkpoint; the final result must be
			// byte-identical to the uninterrupted run.
			res, err := New(tc.cfg(), p, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Restore(&loaded); err != nil {
				t.Fatal(err)
			}
			got, err := res.Run(200_000)
			if err != nil {
				t.Fatal(err)
			}
			if jw, jg := resultJSON(t, want), resultJSON(t, got); jw != jg {
				t.Fatalf("resumed run differs from uninterrupted run:\nwant %s\ngot  %s", jw, jg)
			}
		})
	}
}

func TestRestoreRejectsMismatchedMachine(t *testing.T) {
	p := pingPong(5)
	s, err := New(miniMachine(), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(100_000); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other := miniMachine()
	other.Interconnect = machine.SinglePort
	s2, err := New(other, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(ck); err == nil {
		t.Fatal("restore onto a different machine accepted")
	}
	s3, err := New(faultyMachine(), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.Restore(ck); err == nil {
		t.Fatal("restore of a fault-free checkpoint onto a faulty machine accepted")
	}
}

func TestUnitOutagesStallAttribution(t *testing.T) {
	// With only unit degradation windows enabled, stalled cycles behind a
	// down unit must be classified as CauseFault.
	cfg := miniMachine()
	cfg.Faults = faults.Model{Seed: 3, UnitOutageRate: 0.2, UnitOutageCycles: 4}
	var wordsA []isa.Instruction
	for i := 0; i < 40; i++ {
		wordsA = append(wordsA, word(opAdd(uIU0, r(0, 0), isa.ImmInt(int64(i)), isa.ImmInt(1))))
	}
	wordsA = append(wordsA, word(opHalt()))
	p := prog(&isa.ThreadCode{Name: "main", Instrs: wordsA})
	s, err := New(cfg, p, WithStallAttribution())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil || res.Faults.UnitOutages == 0 {
		t.Fatalf("expected unit outages at rate 0.2: %+v", res.Faults)
	}
	if res.Stalls.Total[CauseFault] == 0 {
		t.Errorf("no cycles classified as fault stalls: %v", res.Stalls.Total)
	}
}
