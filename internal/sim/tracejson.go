package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

// Pseudo-process ids in the emitted trace: one "process" groups the
// function-unit tracks, the other the per-thread stall tracks.
const (
	tracePidUnits   = 1
	tracePidThreads = 2
)

// traceEvent is one record of the Chrome trace-event format ("X"
// complete events and "M" metadata), as consumed by chrome://tracing and
// Perfetto. Timestamps are in microseconds; the tracer maps one
// simulated cycle to one microsecond.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// stallSpan is an open run of identical per-cycle classifications for
// one thread, flushed as a single span when the classification changes.
type stallSpan struct {
	cause StallCause
	start int64
	last  int64
}

// JSONTracer records a machine-readable execution trace in Chrome
// trace-event format: one track per function unit (each issued operation
// is a span of the unit's pipeline occupancy) and one track per thread
// (contiguous spans of the thread's per-cycle stall classification).
// Install it with WithJSONTrace — which also enables stall attribution —
// and call Write after the run.
type JSONTracer struct {
	events []traceEvent
	open   map[int]*stallSpan
	end    int64
}

// NewJSONTracer prepares a tracer for a machine configuration (the
// configuration provides the unit-track names).
func NewJSONTracer(cfg *machine.Config) *JSONTracer {
	tr := &JSONTracer{open: map[int]*stallSpan{}}
	tr.meta("process_name", tracePidUnits, 0, map[string]any{"name": "function units"})
	tr.meta("process_name", tracePidThreads, 0, map[string]any{"name": "threads"})
	for _, u := range cfg.Units() {
		tr.meta("thread_name", tracePidUnits, u.Global,
			map[string]any{"name": fmt.Sprintf("u%d %s (cluster %d)", u.Global, u.Kind, u.Cluster)})
	}
	return tr
}

// WithJSONTrace installs tr on the simulation and enables the stall
// attribution that feeds its per-thread tracks.
func WithJSONTrace(tr *JSONTracer) Option {
	return func(s *Sim) {
		s.jsonTrace = tr
		s.ensureAttrib()
	}
}

func (tr *JSONTracer) meta(name string, pid, tid int, args map[string]any) {
	tr.events = append(tr.events, traceEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args})
}

// thread names a thread's track as the thread spawns.
func (tr *JSONTracer) thread(id int, segment string) {
	tr.meta("thread_name", tracePidThreads, id,
		map[string]any{"name": fmt.Sprintf("t%d %s", id, segment)})
}

// issue records one operation issue on its unit's track. Compute
// operations span their unit's pipeline latency; memory, branch, and
// thread operations span their single issue cycle.
func (tr *JSONTracer) issue(cycle int64, slot, thread int, op *isa.Op, u machine.UnitRef) {
	dur := int64(1)
	if op.Code.Pure() {
		dur = int64(u.Latency)
	}
	tr.events = append(tr.events, traceEvent{
		Name: op.Code.String(), Ph: "X", Ts: cycle, Dur: dur,
		Pid: tracePidUnits, Tid: slot,
		Args: map[string]any{"thread": thread, "op": op.String()},
	})
}

// classify extends or rolls the thread's current classification span.
func (tr *JSONTracer) classify(cycle int64, thread int, cause StallCause) {
	sp := tr.open[thread]
	if sp != nil && sp.cause == cause && sp.last == cycle-1 {
		sp.last = cycle
		return
	}
	if sp != nil {
		tr.closeSpan(thread, sp)
	}
	tr.open[thread] = &stallSpan{cause: cause, start: cycle, last: cycle}
}

func (tr *JSONTracer) closeSpan(thread int, sp *stallSpan) {
	tr.events = append(tr.events, traceEvent{
		Name: sp.cause.String(), Ph: "X", Ts: sp.start, Dur: sp.last - sp.start + 1,
		Pid: tracePidThreads, Tid: thread,
	})
}

// finish flushes open spans at the end of the run.
func (tr *JSONTracer) finish(finalCycle int64) {
	tr.end = finalCycle
	for id, sp := range tr.open {
		tr.closeSpan(id, sp)
		delete(tr.open, id)
	}
}

// Write emits the collected trace as a JSON object with a
// "traceEvents" array, sorted by timestamp (metadata first), ready for
// chrome://tracing or Perfetto.
func (tr *JSONTracer) Write(w io.Writer) error {
	events := append([]traceEvent(nil), tr.events...)
	sort.SliceStable(events, func(i, j int) bool {
		mi, mj := events[i].Ph == "M", events[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return events[i].Ts < events[j].Ts
	})
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
