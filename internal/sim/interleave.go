package sim

import (
	"fmt"
	"io"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

// InterleaveRecorder captures the per-cycle mapping of function units to
// threads — the view of the paper's Figures 1 and 2, where several
// threads' statically scheduled instruction streams interleave over the
// shared units at runtime.
type InterleaveRecorder struct {
	cfg      *machine.Config
	maxCycle int64
	// grid[cycle][unit] = thread id + 1 (0 = idle).
	grid map[int64][]int
}

// NewInterleaveRecorder records the first maxCycle cycles (0 = all; be
// careful with long runs).
func NewInterleaveRecorder(cfg *machine.Config, maxCycle int64) *InterleaveRecorder {
	return &InterleaveRecorder{cfg: cfg, maxCycle: maxCycle, grid: map[int64][]int{}}
}

// Hook returns the issue hook to install with WithIssueHook.
func (ir *InterleaveRecorder) Hook() Option {
	return WithIssueHook(func(cycle int64, unit, thread int, _ *isa.Op) {
		if ir.maxCycle > 0 && cycle > ir.maxCycle {
			return
		}
		row := ir.grid[cycle]
		if row == nil {
			row = make([]int, ir.cfg.NumUnits())
			ir.grid[cycle] = row
		}
		row[unit] = thread + 1
	})
}

// Write renders the recorded interleaving: one row per cycle, one column
// per function unit, each cell naming the thread granted the unit.
func (ir *InterleaveRecorder) Write(w io.Writer) {
	units := ir.cfg.Units()
	fmt.Fprintf(w, "unit-to-thread interleaving (rows: cycles; columns: units; cells: thread id, . = idle)\n")
	fmt.Fprintf(w, "%7s", "cycle")
	counts := map[machine.UnitKind]int{}
	for _, u := range units {
		fmt.Fprintf(w, " %5s", fmt.Sprintf("%s%d", u.Kind, counts[u.Kind]))
		counts[u.Kind]++
	}
	fmt.Fprintln(w)
	var last int64
	for c := range ir.grid {
		if c > last {
			last = c
		}
	}
	for c := int64(1); c <= last; c++ {
		fmt.Fprintf(w, "%7d", c)
		row := ir.grid[c]
		for u := range units {
			cell := "."
			if row != nil && row[u] != 0 {
				cell = fmt.Sprintf("%d", row[u]-1)
			}
			fmt.Fprintf(w, " %5s", cell)
		}
		fmt.Fprintln(w)
	}
}

// Busy returns, for a cycle, how many units issued operations.
func (ir *InterleaveRecorder) Busy(cycle int64) int {
	n := 0
	for _, t := range ir.grid[cycle] {
		if t != 0 {
			n++
		}
	}
	return n
}

// ThreadsActive returns the distinct threads that issued in a cycle.
func (ir *InterleaveRecorder) ThreadsActive(cycle int64) []int {
	seen := map[int]bool{}
	var out []int
	for _, t := range ir.grid[cycle] {
		if t != 0 && !seen[t-1] {
			seen[t-1] = true
			out = append(out, t-1)
		}
	}
	return out
}
