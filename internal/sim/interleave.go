package sim

import (
	"fmt"
	"io"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

// InterleaveRecorder captures the per-cycle mapping of function units to
// threads — the view of the paper's Figures 1 and 2, where several
// threads' statically scheduled instruction streams interleave over the
// shared units at runtime. Installing its hook forces the ticking kernel
// (skipAllowed): the recorder is a per-cycle observer.
type InterleaveRecorder struct {
	cfg      *machine.Config
	maxCycle int64
	stride   int
	// grid holds one row per recorded cycle, flattened: the row for
	// cycle c (cycles are 1-based; step increments before issue) is
	// grid[(c-1)*stride : c*stride], each cell thread id + 1 (0 = idle).
	// A flat slice replaces the old map[int64][]int, which allocated a
	// fresh row per cycle and hashed on every probe.
	grid []int
	// recorded is the highest cycle with a recorded row; the guard in
	// Hook keeps it <= maxCycle when a cap is set.
	recorded int64
}

// NewInterleaveRecorder records the first maxCycle cycles — exactly
// cycles 1..maxCycle, never maxCycle+1 rows (0 = all; be careful with
// long runs).
func NewInterleaveRecorder(cfg *machine.Config, maxCycle int64) *InterleaveRecorder {
	return &InterleaveRecorder{cfg: cfg, maxCycle: maxCycle, stride: cfg.NumUnits()}
}

// RecordedCycles returns how many cycles have recorded rows (trailing
// all-idle cycles never reach the hook and are not counted).
func (ir *InterleaveRecorder) RecordedCycles() int64 { return ir.recorded }

// Hook returns the issue hook to install with WithIssueHook.
func (ir *InterleaveRecorder) Hook() Option {
	return WithIssueHook(func(cycle int64, unit, thread int, _ *isa.Op) {
		if cycle < 1 || (ir.maxCycle > 0 && cycle > ir.maxCycle) {
			return
		}
		if need := int(cycle) * ir.stride; len(ir.grid) < need {
			if cap(ir.grid) < need {
				grown := make([]int, need, need*2)
				copy(grown, ir.grid)
				ir.grid = grown
			} else {
				ir.grid = ir.grid[:need]
			}
		}
		if cycle > ir.recorded {
			ir.recorded = cycle
		}
		ir.grid[(int(cycle)-1)*ir.stride+unit] = thread + 1
	})
}

// row returns the recorded row for a cycle, or nil.
func (ir *InterleaveRecorder) row(cycle int64) []int {
	if cycle < 1 || cycle > ir.recorded {
		return nil
	}
	return ir.grid[(int(cycle)-1)*ir.stride : int(cycle)*ir.stride]
}

// Write renders the recorded interleaving: one row per cycle, one column
// per function unit, each cell naming the thread granted the unit.
func (ir *InterleaveRecorder) Write(w io.Writer) {
	units := ir.cfg.Units()
	fmt.Fprintf(w, "unit-to-thread interleaving (rows: cycles; columns: units; cells: thread id, . = idle)\n")
	fmt.Fprintf(w, "%7s", "cycle")
	counts := map[machine.UnitKind]int{}
	for _, u := range units {
		fmt.Fprintf(w, " %5s", fmt.Sprintf("%s%d", u.Kind, counts[u.Kind]))
		counts[u.Kind]++
	}
	fmt.Fprintln(w)
	for c := int64(1); c <= ir.recorded; c++ {
		fmt.Fprintf(w, "%7d", c)
		row := ir.row(c)
		for u := range units {
			cell := "."
			if row[u] != 0 {
				cell = fmt.Sprintf("%d", row[u]-1)
			}
			fmt.Fprintf(w, " %5s", cell)
		}
		fmt.Fprintln(w)
	}
}

// Busy returns, for a cycle, how many units issued operations.
func (ir *InterleaveRecorder) Busy(cycle int64) int {
	n := 0
	for _, t := range ir.row(cycle) {
		if t != 0 {
			n++
		}
	}
	return n
}

// ThreadsActive returns the distinct threads that issued in a cycle.
func (ir *InterleaveRecorder) ThreadsActive(cycle int64) []int {
	seen := map[int]bool{}
	var out []int
	for _, t := range ir.row(cycle) {
		if t != 0 && !seen[t-1] {
			seen[t-1] = true
			out = append(out, t-1)
		}
	}
	return out
}
