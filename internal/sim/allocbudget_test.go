//go:build !race

package sim_test

// The allocation budget for the steady-state cycle kernel: amortized
// heap allocations per simulated cycle, measured over a complete run of
// matrix/Coupled including Sim construction (with a warm memory-image
// pool, as in a sweep). CI fails if an optimization regresses past the
// budget. Excluded under -race because race instrumentation changes
// allocation counts.

import (
	"testing"

	"pcoup/internal/bench"
	"pcoup/internal/compiler"
)

// allocBudgetPerCycle is the checked-in regression budget. The optimized
// kernel measures ~0.7 allocs/cycle (the residual is per-run Sim and
// thread construction amortized over the run, not per-cycle work); the
// pre-optimization kernel measured ~20.
const allocBudgetPerCycle = 1.0

func TestAllocBudget(t *testing.T) {
	cfg, prog := compileFor(t, "matrix", bench.Threaded, compiler.Unrestricted)
	cycles := runOnce(t, cfg, prog) // warm the memory-image pool
	avg := testing.AllocsPerRun(5, func() {
		runOnce(t, cfg, prog)
	})
	perCycle := avg / float64(cycles)
	t.Logf("allocs/run = %.1f over %d cycles = %.3f allocs/cycle (budget %.2f)",
		avg, cycles, perCycle, allocBudgetPerCycle)
	if perCycle > allocBudgetPerCycle {
		t.Errorf("steady-state kernel allocates %.3f/cycle, budget is %.2f", perCycle, allocBudgetPerCycle)
	}
}
