package sim

// Regression tests for the adaptive probe fallback: busy cells must not
// pay for the event core, and memory-bound cells must keep their
// cycle-skipping win.
//
// The busy-cell budget from the issue ("within 2% of the ticking
// kernel") is asserted structurally rather than by wall clock: repeated
// perf runs show the wall-clock ratio on these sub-10k-cycle cells
// swings ±8% run to run from construction and scheduling noise, so a 2%
// timing assertion would flake. With zero probes the two kernels execute
// identical per-cycle work — the event core's only remaining overhead is
// the quiet-flag branch in Run — so probes==0 is the deterministic form
// of the same guarantee.

import (
	"testing"

	"pcoup/internal/bench"
	"pcoup/internal/compiler"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

// chainMachine is the mini machine with 2-cycle integer units: a
// dependent add chain then has a one-cycle bubble per op in which the
// machine is quiet but the next writeback is due immediately, so every
// skip probe fails — the adaptive fallback's target pattern.
func chainMachine() *machine.Config {
	cfg := miniMachine()
	cfg.Clusters[0].Units[0].Latency = 2
	return cfg
}

// addChain builds n dependent adds on the latency-2 IU (ping-ponging two
// registers so the chain depth is unbounded by the register file).
func addChain(n int) []isa.Instruction {
	instrs := []isa.Instruction{
		word(opAdd(uIU0, r(0, 0), isa.ImmInt(1), isa.ImmInt(1))),
	}
	for i := 1; i < n; i++ {
		instrs = append(instrs,
			word(opAdd(uIU0, r(0, (i+1)%2), isa.Reg(r(0, i%2)), isa.ImmInt(1))))
	}
	return instrs
}

// TestAdaptiveProbeBackoffEngages: on a pure compute chain every probe
// fails (the next writeback is always due on the very next cycle), so
// the core must stop probing after exactly probeBackoff misses — and the
// result must still be bit-identical to the ticking kernel.
func TestAdaptiveProbeBackoffEngages(t *testing.T) {
	const chainLen = 3 * probeBackoff
	p := prog(&isa.ThreadCode{Name: "main",
		Instrs: append(addChain(chainLen), word(opHalt()))})
	run := func(opts ...Option) (*Result, *Sim) {
		s, err := New(chainMachine(), p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(10_000)
		if err != nil {
			t.Fatal(err)
		}
		return res, s
	}
	want, _ := run(WithCycleSkipping(false))
	got, event := run()
	if jw, jg := resultJSON(t, want), resultJSON(t, got); jw != jg {
		t.Errorf("event core diverged from ticking kernel:\nwant %s\ngot  %s", jw, jg)
	}
	// The chain has ~chainLen quiet bubbles; without the fallback the
	// core would probe every one of them.
	if event.probes != probeBackoff {
		t.Errorf("probes = %d, want exactly probeBackoff = %d (fallback must cap failed probes)",
			event.probes, probeBackoff)
	}
	if !event.probeOff {
		t.Error("probeOff = false after a chain of failed probes, want true")
	}
	if event.skipped != 0 {
		t.Errorf("skipped = %d on a chain with no skippable window, want 0", event.skipped)
	}
}

// TestAdaptiveProbeRearmsOnMemory: after the fallback disengages probing
// on a compute chain, a long-latency load must re-arm it — otherwise the
// load's idle window (the event core's whole reason to exist) would be
// ticked cycle by cycle.
func TestAdaptiveProbeRearmsOnMemory(t *testing.T) {
	const memLatency = 500
	cfg := chainMachine()
	cfg.Memory = machine.MemoryModel{Name: "slow", HitLatency: memLatency, Banks: 4}
	instrs := append(addChain(2*probeBackoff),
		word(opLoad(uMEM0, r(0, 2), 8, isa.SyncNone)),
		word(opAdd(uIU0, r(0, 3), isa.Reg(r(0, 2)), isa.ImmInt(1))),
		word(opStore(uMEM0, isa.Reg(r(0, 3)), 9)),
		word(opHalt()))
	p := prog(&isa.ThreadCode{Name: "main", Instrs: instrs})
	run := func(opts ...Option) (*Result, *Sim) {
		s, err := New(cfg, p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(50_000)
		if err != nil {
			t.Fatal(err)
		}
		return res, s
	}
	want, _ := run(WithCycleSkipping(false))
	got, event := run()
	if jw, jg := resultJSON(t, want), resultJSON(t, got); jw != jg {
		t.Errorf("event core diverged from ticking kernel:\nwant %s\ngot  %s", jw, jg)
	}
	// The compute prefix is long enough to engage the fallback; if the
	// load issue failed to re-arm probing, the load's ~memLatency idle
	// cycles would all be ticked and skipped would stay 0.
	if event.skipped < memLatency*3/5 {
		t.Errorf("skipped = %d, want >= %d (load window must be skipped after re-arm)",
			event.skipped, memLatency*3/5)
	}
}

// compileBaseline compiles a benchmark for a config (Unrestricted mode,
// the perf experiment's Coupled cell).
func compileBaseline(t *testing.T, name string, cfg *machine.Config) *isa.Program {
	t.Helper()
	b, err := bench.Get(name, bench.Threaded)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := compiler.Compile(b.Source, cfg, compiler.Options{Mode: compiler.Unrestricted})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBusyCellsPayNothing: the four baseline-latency benchmarks keep
// every unit busy enough that no quiet cycle ever opens; the event core
// must therefore do zero probe work on them (the deterministic form of
// "within 2% of the ticking kernel" — see the file comment) while
// producing the bit-identical result.
func TestBusyCellsPayNothing(t *testing.T) {
	for _, name := range []string{"matrix", "fft", "model", "lud"} {
		cfg := machine.Baseline()
		p := compileBaseline(t, name, cfg)
		run := func(opts ...Option) (*Result, *Sim) {
			s, err := New(cfg, p, opts...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			return res, s
		}
		want, _ := run(WithCycleSkipping(false))
		got, event := run()
		if jw, jg := resultJSON(t, want), resultJSON(t, got); jw != jg {
			t.Errorf("%s: event core diverged from ticking kernel", name)
		}
		if event.probes != 0 || event.memProbes != 0 {
			t.Errorf("%s: probes = %d, memProbes = %d; busy cell must never probe",
				name, event.probes, event.memProbes)
		}
	}
}

// TestMemoryBoundKeepsSkipWin: lud on the statistical slow memory is the
// event core's headline case (~3.8x over ticking in BENCH_sim.json).
// That win is the skip fraction: ~85% of its cycles are provably idle
// and jumped over. The adaptive fallback must not erode it — memory
// activity re-arms probing before every idle window.
func TestMemoryBoundKeepsSkipWin(t *testing.T) {
	cfg := machine.Baseline().WithMemory(machine.MemSlow)
	p := compileBaseline(t, "lud", cfg)
	s, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(s.skipped) / float64(res.Cycles); frac < 0.8 {
		t.Errorf("skip fraction = %.3f (%d of %d cycles), want >= 0.8 — the ~3.8x event-core win depends on it",
			frac, s.skipped, res.Cycles)
	}
}
