package sim

import (
	"strings"
	"testing"

	"pcoup/internal/isa"
)

func TestInterleaveRecorder(t *testing.T) {
	// Two threads sharing the mini machine's units: the recorder must
	// show both thread ids, never double-book a unit, and agree with the
	// run's op count.
	seg := func(name string, unit int) *isa.ThreadCode {
		var words []isa.Instruction
		for i := 0; i < 5; i++ {
			words = append(words, word(opAdd(unit, r(unit/2, 0), isa.ImmInt(int64(i)), isa.ImmInt(1))))
		}
		words = append(words, word(opHalt()))
		return &isa.ThreadCode{Name: name, Instrs: words}
	}
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(&isa.Op{Code: isa.OpFork, Unit: uBR, Target: 1}),
		word(&isa.Op{Code: isa.OpFork, Unit: uBR, Target: 2}),
		word(opHalt()),
	}}
	cfg := miniMachine()
	p := prog(main, seg("a", uIU0), seg("b", uIU1))
	rec := NewInterleaveRecorder(cfg, 100)
	s, err := New(cfg, p, rec.Hook())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1000)
	if err != nil {
		t.Fatal(err)
	}

	// Total recorded issues must equal the dynamic op count.
	recorded := 0
	for c := int64(1); c <= res.Cycles; c++ {
		recorded += rec.Busy(c)
	}
	if int64(recorded) != res.Ops {
		t.Errorf("recorded %d issues, run had %d ops", recorded, res.Ops)
	}

	// Some cycle must have had both worker threads active at once
	// (thread 1 on IU0 and thread 2 on IU1 can overlap).
	overlap := false
	for c := int64(1); c <= res.Cycles; c++ {
		if len(rec.ThreadsActive(c)) >= 2 {
			overlap = true
		}
	}
	if !overlap {
		t.Error("no cycle showed two threads interleaved")
	}

	var buf strings.Builder
	rec.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "IU0") || !strings.Contains(out, "BR0") {
		t.Errorf("render missing unit headers:\n%s", out)
	}
	if !strings.Contains(out, "cycle") {
		t.Errorf("render missing header:\n%s", out)
	}
}

func TestInterleaveRecorderCap(t *testing.T) {
	cfg := miniMachine()
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(opAdd(uIU0, r(0, 0), isa.ImmInt(1), isa.ImmInt(1))),
		word(opAdd(uIU0, r(0, 1), isa.ImmInt(1), isa.ImmInt(1))),
		word(opAdd(uIU0, r(0, 2), isa.ImmInt(1), isa.ImmInt(1))),
		word(opHalt()),
	}}
	rec := NewInterleaveRecorder(cfg, 2)
	s, err := New(cfg, prog(main), rec.Hook())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if rec.Busy(3) != 0 {
		t.Error("recorder captured beyond its cycle cap")
	}
	if rec.Busy(1) == 0 {
		t.Error("recorder missed cycle 1")
	}
	// Pin the contract: a cap of maxCycle records exactly maxCycle
	// cycles (1..maxCycle), never maxCycle+1.
	if got := rec.RecordedCycles(); got != 2 {
		t.Errorf("RecordedCycles() = %d with cap 2, want exactly 2", got)
	}
}

func TestInterleaveRecorderCountPinned(t *testing.T) {
	// An uncapped recorder on a busy run records exactly the cycles that
	// issued — here a dependent chain issues every cycle through the
	// halt, so RecordedCycles must equal the halt cycle and the recorded
	// issue total must equal the op count.
	cfg := miniMachine()
	instrs := []isa.Instruction{word(opAdd(uIU0, r(0, 0), isa.ImmInt(1), isa.ImmInt(1)))}
	for i := 1; i < 20; i++ {
		instrs = append(instrs, word(opAdd(uIU0, r(0, i%4), isa.Reg(r(0, (i-1)%4)), isa.ImmInt(1))))
	}
	instrs = append(instrs, word(opHalt()))
	main := &isa.ThreadCode{Name: "main", Instrs: instrs}
	rec := NewInterleaveRecorder(cfg, 0)
	s, err := New(cfg, prog(main), rec.Hook())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	var lastIssue int64
	total := 0
	for c := int64(1); c <= res.Cycles; c++ {
		if n := rec.Busy(c); n > 0 {
			lastIssue = c
			total += n
		}
	}
	if got := rec.RecordedCycles(); got != lastIssue {
		t.Errorf("RecordedCycles() = %d, want last issuing cycle %d", got, lastIssue)
	}
	if int64(total) != res.Ops {
		t.Errorf("recorded %d issues, run had %d ops", total, res.Ops)
	}
}
