package sim

import (
	"fmt"
	"strings"
	"testing"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

// miniMachine builds a small test machine: two clusters of IU+MEM and one
// branch cluster. Global unit slots: 0=IU/c0 1=MEM/c0 2=IU/c1 3=MEM/c1
// 4=BR/c2.
func miniMachine() *machine.Config {
	return &machine.Config{
		Name: "mini",
		Clusters: []machine.ClusterSpec{
			{Units: []machine.UnitSpec{{Kind: machine.IU, Latency: 1}, {Kind: machine.MEM, Latency: 1}}},
			{Units: []machine.UnitSpec{{Kind: machine.IU, Latency: 1}, {Kind: machine.MEM, Latency: 1}}},
			{Units: []machine.UnitSpec{{Kind: machine.BR, Latency: 1}}},
		},
		Interconnect: machine.Full,
		Memory:       machine.MemMin,
		MaxDests:     2,
		Arbitration:  machine.PriorityArbitration,
	}
}

const (
	uIU0  = 0
	uMEM0 = 1
	uIU1  = 2
	uMEM1 = 3
	uBR   = 4
)

// word builds an instruction word for the mini machine.
func word(ops ...*isa.Op) isa.Instruction {
	in := isa.Instruction{Ops: make([]*isa.Op, 5)}
	for _, op := range ops {
		in.Ops[op.Unit] = op
	}
	return in
}

func r(c, i int) isa.RegRef { return isa.RegRef{Cluster: c, Index: i} }

func opAdd(unit int, dst isa.RegRef, a, b isa.Operand) *isa.Op {
	return &isa.Op{Code: isa.OpAdd, Unit: unit, Dests: []isa.RegRef{dst}, Srcs: []isa.Operand{a, b}}
}

func opHalt() *isa.Op { return &isa.Op{Code: isa.OpHalt, Unit: uBR} }

func opStore(unit int, val isa.Operand, addr int64) *isa.Op {
	return &isa.Op{Code: isa.OpStore, Unit: unit, Srcs: []isa.Operand{val}, Offset: addr}
}

func opLoad(unit int, dst isa.RegRef, addr int64, sync isa.SyncFlavor) *isa.Op {
	return &isa.Op{Code: isa.OpLoad, Unit: unit, Sync: sync, Dests: []isa.RegRef{dst}, Offset: addr}
}

func prog(segs ...*isa.ThreadCode) *isa.Program {
	return &isa.Program{Name: "test", Segments: segs, MemWords: 64}
}

func mustRun(t *testing.T, cfg *machine.Config, p *isa.Program) (*Result, *Sim) {
	t.Helper()
	s, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(10000)
	if err != nil {
		t.Fatal(err)
	}
	return res, s
}

func TestDependentChainLatency(t *testing.T) {
	// r0=1+1 ; r1=r0+1 ; r2=r1+1 ; store r2 ; halt — a pure chain should
	// issue one op per cycle (1-cycle units, writeback then issue).
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(opAdd(uIU0, r(0, 0), isa.ImmInt(1), isa.ImmInt(1))),
		word(opAdd(uIU0, r(0, 1), isa.Reg(r(0, 0)), isa.ImmInt(1))),
		word(opAdd(uIU0, r(0, 2), isa.Reg(r(0, 1)), isa.ImmInt(1))),
		word(opStore(uMEM0, isa.Reg(r(0, 2)), 8)),
		word(opHalt()),
	}}
	res, s := mustRun(t, miniMachine(), prog(main))
	if v, _ := s.Memory().Peek(8); v.AsInt() != 4 {
		t.Errorf("mem[8] = %v, want 4", v)
	}
	// chain: issue at cycles 1,2,3; store issues 4, completes 5; halt 5.
	if res.Cycles > 7 {
		t.Errorf("chain took %d cycles, expected <= 7", res.Cycles)
	}
	if res.Ops != 5 {
		t.Errorf("ops = %d, want 5", res.Ops)
	}
}

func TestInstructionSlip(t *testing.T) {
	// The paper's Figure 1 semantics: operations scheduled in one wide
	// instruction word need not issue simultaneously. Word 1 holds a
	// dependent op (waiting on a parked synchronizing load) and an
	// independent op; the independent op must issue cycles earlier, and
	// word 2 must wait for the whole word.
	worker := &isa.ThreadCode{Name: "w", Instrs: []isa.Instruction{
		word(opAdd(uIU1, r(1, 1), isa.ImmInt(0), isa.ImmInt(0))),
		word(opAdd(uIU1, r(1, 1), isa.Reg(r(1, 1)), isa.ImmInt(1))),
		word(opAdd(uIU1, r(1, 1), isa.Reg(r(1, 1)), isa.ImmInt(1))),
		word(opAdd(uIU1, r(1, 1), isa.Reg(r(1, 1)), isa.ImmInt(1))),
		word(opStore(uMEM1, isa.ImmInt(77), 8)), // wakes main's load
		word(opHalt()),
	}}
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(&isa.Op{Code: isa.OpFork, Unit: uBR, Target: 1}),
		word(opLoad(uMEM0, r(0, 0), 8, isa.SyncWaitFull)), // parks
		word(
			opAdd(uIU0, r(0, 1), isa.Reg(r(0, 0)), isa.ImmInt(1)), // dependent
			// Independent: runs on IU1 with immediate sources, writing
			// its result remotely into cluster 0 for the next word.
			opAdd(uIU1, r(0, 2), isa.ImmInt(5), isa.ImmInt(5)),
		),
		word(opAdd(uIU0, r(0, 3), isa.Reg(r(0, 2)), isa.ImmInt(1))), // next word
		word(opStore(uMEM0, isa.Reg(r(0, 1)), 9)),
		word(opHalt()),
	}}
	p := prog(main, worker)
	p.Data = []isa.DataSegment{{Name: "cell", Addr: 8, Values: []isa.Value{isa.Int(0)}, Full: false}}

	var trace strings.Builder
	s, err := New(miniMachine(), p, WithTrace(&trace))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(10000); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Memory().Peek(9); v.AsInt() != 78 {
		t.Errorf("mem[9] = %v, want 78", v)
	}
	// Extract issue cycles from the trace.
	issueCycle := func(substr string) int {
		for _, line := range strings.Split(trace.String(), "\n") {
			if strings.Contains(line, "issue") && strings.Contains(line, substr) && strings.Contains(line, "t0 ") {
				var c int
				if _, err := fmt.Sscanf(line, "[%d]", &c); err == nil {
					return c
				}
			}
		}
		t.Fatalf("trace missing %q:\n%s", substr, trace.String())
		return -1
	}
	depCycle := issueCycle("add c0.r1")
	indepCycle := issueCycle("add c0.r2")
	nextCycle := issueCycle("add c0.r3")
	if !(indepCycle < depCycle) {
		t.Errorf("independent op issued at %d, dependent at %d: schedule did not slip", indepCycle, depCycle)
	}
	if !(nextCycle > depCycle) {
		t.Errorf("word 3 issued at %d before word 2 completed at %d", nextCycle, depCycle)
	}
}

func TestLockStepDisallowsSlip(t *testing.T) {
	// Same program, lock-step issue: word 2's independent ops cannot
	// issue ahead of the dependent one, so the run takes longer.
	build := func() *isa.Program {
		main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
			word(opStore(uMEM1, isa.ImmInt(77), 8)),
			word(opLoad(uMEM0, r(0, 0), 8, isa.SyncWaitFull)),
			word(
				opAdd(uIU0, r(0, 1), isa.Reg(r(0, 0)), isa.ImmInt(1)),
				opAdd(uIU1, r(1, 0), isa.ImmInt(5), isa.ImmInt(5)),
			),
			word(opStore(uMEM0, isa.Reg(r(0, 1)), 9)),
			word(opHalt()),
		}}
		return prog(main)
	}
	coupled := miniMachine()
	res1, _ := mustRun(t, coupled, build())
	lock := miniMachine()
	lock.LockStepIssue = true
	res2, s2 := mustRun(t, lock, build())
	if v, _ := s2.Memory().Peek(9); v.AsInt() != 78 {
		t.Errorf("lock-step mem[9] = %v", v)
	}
	if res2.Cycles < res1.Cycles {
		t.Errorf("lock-step (%d) faster than slipped issue (%d)", res2.Cycles, res1.Cycles)
	}
}

func TestWAWGuard(t *testing.T) {
	// Two writes to r0 with a slow consumer between them: the second
	// write must wait for the first to land (presence bit), keeping the
	// reader's value correct.
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(opAdd(uIU0, r(0, 0), isa.ImmInt(10), isa.ImmInt(0))),
		word(opStore(uMEM0, isa.Reg(r(0, 0)), 8)),
		word(opAdd(uIU0, r(0, 0), isa.ImmInt(20), isa.ImmInt(0))),
		word(opStore(uMEM0, isa.Reg(r(0, 0)), 9)),
		word(opHalt()),
	}}
	_, s := mustRun(t, miniMachine(), prog(main))
	if v, _ := s.Memory().Peek(8); v.AsInt() != 10 {
		t.Errorf("mem[8] = %v, want 10", v)
	}
	if v, _ := s.Memory().Peek(9); v.AsInt() != 20 {
		t.Errorf("mem[9] = %v, want 20", v)
	}
}

func TestBranching(t *testing.T) {
	// Count down from 3 with a loop: r0=3; loop: r0--; bt r0 -> loop;
	// store; halt. The branch condition register lives in the branch
	// cluster (cluster 2).
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(&isa.Op{Code: isa.OpMov, Unit: uIU0, Dests: []isa.RegRef{r(0, 0)}, Srcs: []isa.Operand{isa.ImmInt(3)}}),
		word(&isa.Op{Code: isa.OpSub, Unit: uIU0, Dests: []isa.RegRef{r(0, 0), r(2, 0)}, Srcs: []isa.Operand{isa.Reg(r(0, 0)), isa.ImmInt(1)}}),
		word(&isa.Op{Code: isa.OpBt, Unit: uBR, Srcs: []isa.Operand{isa.Reg(r(2, 0))}, Target: 1}),
		word(opStore(uMEM0, isa.Reg(r(0, 0)), 8)),
		word(opHalt()),
	}}
	_, s := mustRun(t, miniMachine(), prog(main))
	if v, _ := s.Memory().Peek(8); v.AsInt() != 0 {
		t.Errorf("mem[8] = %v, want 0", v)
	}
}

func TestPriorityArbitration(t *testing.T) {
	// Two identical threads compete for the single IU in cluster 0
	// (single-cluster code). The lower-numbered thread must finish first.
	seg := func(name string) *isa.ThreadCode {
		var words []isa.Instruction
		for i := 0; i < 10; i++ {
			words = append(words, word(opAdd(uIU0, r(0, 0), isa.ImmInt(int64(i)), isa.ImmInt(1))))
		}
		words = append(words, word(opHalt()))
		return &isa.ThreadCode{Name: name, Instrs: words}
	}
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(&isa.Op{Code: isa.OpFork, Unit: uBR, Target: 1}),
		word(&isa.Op{Code: isa.OpFork, Unit: uBR, Target: 2}),
		word(opHalt()),
	}}
	res, _ := mustRun(t, miniMachine(), prog(main, seg("a"), seg("b")))
	var haltA, haltB int64
	for _, th := range res.Threads {
		switch th.Segment {
		case "a":
			haltA = th.HaltAt
		case "b":
			haltB = th.HaltAt
		}
	}
	if haltA >= haltB {
		t.Errorf("priority violated: thread a halted at %d, b at %d", haltA, haltB)
	}
}

func TestRoundRobinSharesFairly(t *testing.T) {
	seg := func(name string) *isa.ThreadCode {
		var words []isa.Instruction
		for i := 0; i < 20; i++ {
			words = append(words, word(opAdd(uIU0, r(0, 0), isa.ImmInt(int64(i)), isa.ImmInt(1))))
		}
		words = append(words, word(opHalt()))
		return &isa.ThreadCode{Name: name, Instrs: words}
	}
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(&isa.Op{Code: isa.OpFork, Unit: uBR, Target: 1}),
		word(&isa.Op{Code: isa.OpFork, Unit: uBR, Target: 2}),
		word(opHalt()),
	}}
	cfg := miniMachine()
	cfg.Arbitration = machine.RoundRobinArbitration
	res, _ := mustRun(t, cfg, prog(main, seg("a"), seg("b")))
	var haltA, haltB int64
	for _, th := range res.Threads {
		switch th.Segment {
		case "a":
			haltA = th.HaltAt
		case "b":
			haltB = th.HaltAt
		}
	}
	diff := haltA - haltB
	if diff < 0 {
		diff = -diff
	}
	// Under round-robin the two equal threads should finish within a few
	// cycles of each other (under priority, thread a wins by ~20).
	if diff > 5 {
		t.Errorf("round-robin imbalance: a=%d b=%d", haltA, haltB)
	}
}

func TestMaxThreadsBlocksFork(t *testing.T) {
	worker := &isa.ThreadCode{Name: "w", Instrs: []isa.Instruction{
		word(opLoad(uMEM0, r(0, 0), 8, isa.SyncWaitFull)), // blocks until main stores
		word(opHalt()),
	}}
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(&isa.Op{Code: isa.OpFork, Unit: uBR, Target: 1}),
		word(&isa.Op{Code: isa.OpFork, Unit: uBR, Target: 1}),
		word(&isa.Op{Code: isa.OpFork, Unit: uBR, Target: 1}),
		word(opStore(uMEM0, isa.ImmInt(1), 8)),
		word(opHalt()),
	}}
	cfg := miniMachine()
	cfg.MaxThreads = 2 // main + 1 worker
	res, _ := mustRun(t, cfg, prog(main, worker))
	if len(res.Threads) != 4 {
		t.Fatalf("threads = %d, want 4", len(res.Threads))
	}
	// The run completes because forks stall until workers halt; workers
	// halt only after the store, which main reaches only after... the
	// store comes after the forks, so the first two workers block on the
	// flag until main stores. With MaxThreads=2 the second fork waits for
	// worker 1 to halt. Deadlock is avoided because the store is what
	// releases them — verify ordering: worker spawn times are separated.
	var spawns []int64
	for _, th := range res.Threads {
		if th.Segment == "w" {
			spawns = append(spawns, th.SpawnAt)
		}
	}
	if len(spawns) != 3 {
		t.Fatalf("worker count %d", len(spawns))
	}
	if !(spawns[0] < spawns[1] && spawns[1] < spawns[2]) {
		t.Errorf("spawns not serialized: %v", spawns)
	}
}

func TestDeadlockDetection(t *testing.T) {
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(opLoad(uMEM0, r(0, 0), 8, isa.SyncConsume)), // nothing ever stores
		word(opStore(uMEM0, isa.Reg(r(0, 0)), 9)),
		word(opHalt()),
	}}
	p := prog(main)
	p.Data = []isa.DataSegment{{Name: "cell", Addr: 8, Values: []isa.Value{isa.Int(0)}, Full: false}}
	s, err := New(miniMachine(), p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(100000)
	if err == nil {
		t.Fatal("expected a deadlock error")
	}
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if len(de.Threads) == 0 || !strings.Contains(de.Error(), "deadlock") {
		t.Errorf("deadlock diagnostics missing: %v", de)
	}
}

func TestLocalityValidation(t *testing.T) {
	// An op on cluster 0 reading a cluster-1 register must be rejected.
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(opAdd(uIU0, r(0, 0), isa.Reg(r(1, 0)), isa.ImmInt(1))),
		word(opHalt()),
	}}
	if _, err := New(miniMachine(), prog(main)); err == nil {
		t.Error("accepted op with remote source register")
	}
}

func TestWrongUnitValidation(t *testing.T) {
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(&isa.Op{Code: isa.OpAdd, Unit: uMEM0, Dests: []isa.RegRef{r(0, 0)}, Srcs: []isa.Operand{isa.ImmInt(1), isa.ImmInt(1)}}),
		word(opHalt()),
	}}
	if _, err := New(miniMachine(), prog(main)); err == nil {
		t.Error("accepted IU op scheduled on MEM unit")
	}
}

func TestStatsAccounting(t *testing.T) {
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(
			opAdd(uIU0, r(0, 0), isa.ImmInt(1), isa.ImmInt(2)),
			opAdd(uIU1, r(1, 0), isa.ImmInt(3), isa.ImmInt(4)),
		),
		word(opStore(uMEM0, isa.Reg(r(0, 0)), 8)),
		word(opHalt()),
	}}
	res, _ := mustRun(t, miniMachine(), prog(main))
	if res.IssuedByKind[machine.IU] != 2 {
		t.Errorf("IU ops = %d", res.IssuedByKind[machine.IU])
	}
	if res.IssuedByKind[machine.MEM] != 1 {
		t.Errorf("MEM ops = %d", res.IssuedByKind[machine.MEM])
	}
	if res.IssuedByKind[machine.BR] != 1 {
		t.Errorf("BR ops = %d", res.IssuedByKind[machine.BR])
	}
	if res.IssuedByUnit[uIU0] != 1 || res.IssuedByUnit[uIU1] != 1 {
		t.Errorf("per-unit counts = %v", res.IssuedByUnit)
	}
	if res.Utilization(machine.IU) <= 0 {
		t.Error("utilization not computed")
	}
	if len(res.Threads) != 1 || res.Threads[0].OpsIssued != 4 {
		t.Errorf("thread stats = %+v", res.Threads)
	}
	if res.PeakRegsPerCluster[0] < 1 || res.PeakRegsPerCluster[1] < 1 {
		t.Errorf("peak regs = %v", res.PeakRegsPerCluster)
	}
}

func TestWritebackContention(t *testing.T) {
	// Many independent ops writing to the same cluster: under a
	// single-port file they serialize, under full they do not.
	build := func() *isa.Program {
		var words []isa.Instruction
		for i := 0; i < 8; i++ {
			words = append(words, word(
				opAdd(uIU0, r(0, i), isa.ImmInt(int64(i)), isa.ImmInt(1)),
				opAdd(uIU1, r(0, i+8), isa.ImmInt(int64(i)), isa.ImmInt(2)),
			))
		}
		words = append(words, word(opStore(uMEM0, isa.Reg(r(0, 0)), 8)))
		words = append(words, word(opHalt()))
		return prog(&isa.ThreadCode{Name: "main", Instrs: words})
	}
	full, _ := mustRun(t, miniMachine(), build())
	cfgSP := miniMachine()
	cfgSP.Interconnect = machine.SinglePort
	single, _ := mustRun(t, cfgSP, build())
	if single.WritebackRetries == 0 {
		t.Error("single-port run recorded no writeback retries")
	}
	if single.Cycles <= full.Cycles {
		t.Errorf("single-port (%d) not slower than full (%d)", single.Cycles, full.Cycles)
	}
}

func TestHaltLastInWord(t *testing.T) {
	// A halt sharing a word with another op must not retire the thread
	// until that op has issued (regression test for the abandoned-word
	// bug): main's final store waits a long time for its operand, and the
	// halt in the same word must wait with it.
	worker := &isa.ThreadCode{Name: "w", Instrs: []isa.Instruction{
		word(opAdd(uIU1, r(1, 0), isa.ImmInt(30), isa.ImmInt(0))),
		word(opAdd(uIU1, r(1, 0), isa.Reg(r(1, 0)), isa.ImmInt(1))),
		word(opStore(uMEM1, isa.Reg(r(1, 0)), 8)), // fills the cell with 31
		word(opHalt()),
	}}
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(&isa.Op{Code: isa.OpFork, Unit: uBR, Target: 1}),
		word(opLoad(uMEM0, r(0, 0), 8, isa.SyncWaitFull)), // parks until worker stores
		word(
			opStore(uMEM0, isa.Reg(r(0, 0)), 9),
			opHalt(),
		),
	}}
	p := prog(main, worker)
	p.Data = []isa.DataSegment{{Name: "cell", Addr: 8, Values: []isa.Value{isa.Int(0)}, Full: false}}
	_, s := mustRun(t, miniMachine(), p)
	if v, _ := s.Memory().Peek(9); v.AsInt() != 31 {
		t.Errorf("store abandoned by early halt: mem[9] = %v", v)
	}
}

func TestMultiDestWrite(t *testing.T) {
	// One op writing two clusters: both copies must land.
	main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
		word(&isa.Op{Code: isa.OpAdd, Unit: uIU0, Dests: []isa.RegRef{r(0, 0), r(1, 0)},
			Srcs: []isa.Operand{isa.ImmInt(20), isa.ImmInt(3)}}),
		word(
			opStore(uMEM0, isa.Reg(r(0, 0)), 8),
			opStore(uMEM1, isa.Reg(r(1, 0)), 9),
		),
		word(opHalt()),
	}}
	_, s := mustRun(t, miniMachine(), prog(main))
	for _, addr := range []int64{8, 9} {
		if v, _ := s.Memory().Peek(addr); v.AsInt() != 23 {
			t.Errorf("mem[%d] = %v, want 23", addr, v)
		}
	}
}

func TestOpCacheModel(t *testing.T) {
	// A loop executed many times: with a large cache, misses happen only
	// on first touch; with the model off, none at all. The miss penalty
	// must slow the run down without changing results.
	build := func() *isa.Program {
		// The loop body has two words on IU0 so a one-entry cache
		// thrashes between their addresses every iteration.
		main := &isa.ThreadCode{Name: "main", Instrs: []isa.Instruction{
			word(&isa.Op{Code: isa.OpMov, Unit: uIU0, Dests: []isa.RegRef{r(0, 0)}, Srcs: []isa.Operand{isa.ImmInt(6)}}),
			word(&isa.Op{Code: isa.OpSub, Unit: uIU0, Dests: []isa.RegRef{r(0, 0), r(2, 0)}, Srcs: []isa.Operand{isa.Reg(r(0, 0)), isa.ImmInt(1)}}),
			word(&isa.Op{Code: isa.OpAdd, Unit: uIU0, Dests: []isa.RegRef{r(0, 1)}, Srcs: []isa.Operand{isa.Reg(r(0, 0)), isa.ImmInt(100)}}),
			word(&isa.Op{Code: isa.OpBt, Unit: uBR, Srcs: []isa.Operand{isa.Reg(r(2, 0))}, Target: 1}),
			word(opStore(uMEM0, isa.Reg(r(0, 0)), 8)),
			word(opHalt()),
		}}
		return prog(main)
	}
	base := miniMachine()
	plain, _ := mustRun(t, base, build())
	if plain.OpCacheMisses != 0 {
		t.Errorf("misses recorded with model off: %d", plain.OpCacheMisses)
	}

	cached := miniMachine()
	cached.OpCache = machine.OpCacheModel{Entries: 64, MissPenalty: 4}
	res, s := mustRun(t, cached, build())
	if v, _ := s.Memory().Peek(8); v.AsInt() != 0 {
		t.Errorf("mem[8] = %v, want 0", v)
	}
	// First touch of each (unit, word) pair misses; loop iterations after
	// that hit.
	if res.OpCacheMisses == 0 {
		t.Error("no cold misses recorded")
	}
	if res.OpCacheMisses > 8 {
		t.Errorf("misses = %d, expected only cold misses", res.OpCacheMisses)
	}
	if res.Cycles <= plain.Cycles {
		t.Errorf("op cache penalty did not slow the run (%d vs %d)", res.Cycles, plain.Cycles)
	}

	// A one-entry cache thrashes: far more misses, far slower.
	tiny := miniMachine()
	tiny.OpCache = machine.OpCacheModel{Entries: 1, MissPenalty: 4}
	res2, _ := mustRun(t, tiny, build())
	if res2.OpCacheMisses <= res.OpCacheMisses {
		t.Errorf("thrashing cache misses %d <= cold misses %d", res2.OpCacheMisses, res.OpCacheMisses)
	}
	if res2.Cycles <= res.Cycles {
		t.Errorf("thrashing cache not slower (%d vs %d)", res2.Cycles, res.Cycles)
	}
}
