package parexec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAllCellsByIndex(t *testing.T) {
	const n = 100
	got := make([]int, n)
	ctx := WithLimit(context.Background(), 8)
	err := Run(ctx, n, func(i int) error {
		got[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("cell %d: got %d", i, v)
		}
	}
}

func TestRunLowestIndexErrorWins(t *testing.T) {
	// Two failing cells: the higher-index one finishes first (the lower
	// one sleeps), but the returned error must be the lower-index one —
	// the error sequential execution would have reported.
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 20; trial++ {
		err := Run(WithLimit(context.Background(), 4), 8, func(i int) error {
			switch i {
			case 2:
				time.Sleep(5 * time.Millisecond)
				return errLow
			case 3:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want %v", trial, err, errLow)
		}
	}
}

func TestRunStopsDispatchAfterError(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	err := Run(WithLimit(context.Background(), 2), 1000, func(i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if n := started.Load(); n > 100 {
		t.Fatalf("dispatch did not stop: %d cells started", n)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- Run(WithLimit(ctx, 2), 1000, func(i int) error {
			ran.Add(1)
			time.Sleep(time.Millisecond)
			return nil
		})
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancel had no effect: %d cells ran", n)
	}
}

func TestStreamEmitsInOrder(t *testing.T) {
	const n = 64
	var emitted []int
	ctx := WithLimit(context.Background(), 8)
	err := Stream(ctx, n, func(_ context.Context, i int) (int, error) {
		// Reverse the natural completion order so the merge has to buffer.
		time.Sleep(time.Duration(n-i) * 50 * time.Microsecond)
		return i * 10, nil
	}, func(i, v int) error {
		if v != i*10 {
			return fmt.Errorf("cell %d: got %d", i, v)
		}
		emitted = append(emitted, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != n {
		t.Fatalf("emitted %d cells, want %d", len(emitted), n)
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("emit order broken at %d: got %d", i, v)
		}
	}
}

func TestStreamErrorEmitsExactPrefix(t *testing.T) {
	boom := errors.New("boom")
	const failAt = 13
	var emitted []int
	err := Stream(WithLimit(context.Background(), 8), 64,
		func(_ context.Context, i int) (int, error) {
			if i == failAt {
				return 0, boom
			}
			return i, nil
		},
		func(i, v int) error {
			emitted = append(emitted, i)
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if len(emitted) != failAt {
		t.Fatalf("emitted %d cells, want exactly %d", len(emitted), failAt)
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("prefix broken at %d: got %d", i, v)
		}
	}
}

func TestStreamEmitErrorStops(t *testing.T) {
	stop := errors.New("consumer full")
	count := 0
	err := Stream(WithLimit(context.Background(), 4), 32,
		func(_ context.Context, i int) (int, error) { return i, nil },
		func(i, v int) error {
			if i == 5 {
				return stop
			}
			count++
			return nil
		})
	if !errors.Is(err, stop) {
		t.Fatalf("got %v", err)
	}
	if count != 5 {
		t.Fatalf("emitted %d cells before consumer error, want 5", count)
	}
}

func TestStreamCancelEmitsContiguousPrefix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	var emitted []int
	errc := make(chan error, 1)
	go func() {
		errc <- Stream(WithLimit(ctx, 4), 1000,
			func(c context.Context, i int) (int, error) {
				time.Sleep(time.Millisecond)
				return i, c.Err()
			},
			func(i, v int) error {
				mu.Lock()
				emitted = append(emitted, i)
				mu.Unlock()
				return nil
			})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(emitted) >= 1000 {
		t.Fatal("cancel had no effect")
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("prefix broken at %d: got %d", i, v)
		}
	}
}

func TestLimiterBoundsAcrossStreams(t *testing.T) {
	lim := NewLimiter(2)
	var inflight, peak atomic.Int64
	cell := func(_ context.Context, i int) (int, error) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inflight.Add(-1)
		return i, nil
	}
	ctx := WithLimiter(WithLimit(context.Background(), 8), lim)
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := Stream(ctx, 16, cell, func(int, int) error { return nil }); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("limiter breached: peak concurrency %d > 2", p)
	}
}

func TestWithLimitResolution(t *testing.T) {
	SetDefault(3)
	defer SetDefault(0)
	if got := LimitFrom(context.Background()); got != 3 {
		t.Fatalf("process default not honored: %d", got)
	}
	if got := LimitFrom(WithLimit(context.Background(), 7)); got != 7 {
		t.Fatalf("context override not honored: %d", got)
	}
	if got := LimitFrom(WithLimit(context.Background(), 0)); got != 3 {
		t.Fatalf("zero override should fall back to default: %d", got)
	}
}

func TestRunSequentialFastPathChecksContext(t *testing.T) {
	ctx, cancel := context.WithCancel(WithLimit(context.Background(), 1))
	ran := 0
	err := Run(ctx, 10, func(i int) error {
		ran++
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
	if ran != 3 {
		t.Fatalf("sequential path ran %d cells after cancel, want 3", ran)
	}
}
