// Package parexec is the shared parallel cell-execution engine: every
// sweep in the tree — the experiment drivers, pcserved sweep jobs, the
// progfuzz differential corpus, pcbench — executes its independent,
// deterministic cells through this package's bounded worker pool.
//
// The engine's contract is byte-identity with sequential execution:
//
//   - Run fans cells out by index; callers write results into an
//     index-addressed slice, so row order never depends on completion
//     order. When cells fail, the error of the lowest-index failing
//     cell is returned (the error sequential execution would have hit),
//     not whichever failure happened to finish first.
//   - Stream additionally serializes the consumption of results: emit
//     is invoked strictly in submission order from the calling
//     goroutine, so streaming consumers (NDJSON sweeps, result caches
//     with LRU order) observe exactly the sequence sequential execution
//     would have produced. A cancelled or failed stream emits a
//     contiguous prefix of that sequence and nothing else.
//
// Parallelism resolves in three layers: an explicit per-call width
// carried on the context (WithLimit — the -j flag, pcserved's
// -sweep-parallelism), else the process default (SetDefault), else
// GOMAXPROCS. A shared Limiter (WithLimiter) additionally bounds
// in-flight cells across concurrent sweeps, so a daemon running many
// sweep jobs under its own worker pool keeps a global cap on
// simulation concurrency instead of multiplying the two pools.
package parexec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultLimit holds the process-wide parallelism default; 0 selects
// GOMAXPROCS at call time.
var defaultLimit atomic.Int64

// SetDefault sets the process-wide default parallelism for Run and
// Stream calls whose context carries no explicit limit. n <= 0 restores
// the built-in default (GOMAXPROCS). CLI -j flags call this once at
// startup.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultLimit.Store(int64(n))
}

// Default returns the effective process-wide parallelism default.
func Default() int {
	if v := defaultLimit.Load(); v > 0 {
		return int(v)
	}
	return runtime.GOMAXPROCS(0)
}

type limitKey struct{}
type limiterKey struct{}

// WithLimit returns a context carrying an explicit parallelism width
// for Run/Stream calls beneath it. n <= 0 removes the override (the
// process default applies again).
func WithLimit(ctx context.Context, n int) context.Context {
	if n <= 0 {
		n = 0
	}
	return context.WithValue(ctx, limitKey{}, n)
}

// LimitFrom resolves the effective parallelism for a call under ctx:
// the context's explicit width if set, else the process default.
func LimitFrom(ctx context.Context) int {
	if v, ok := ctx.Value(limitKey{}).(int); ok && v > 0 {
		return v
	}
	return Default()
}

// Limiter is a counting semaphore bounding in-flight cells across
// many concurrent Run/Stream calls. A nil *Limiter never blocks.
type Limiter struct {
	sem chan struct{}
}

// NewLimiter builds a Limiter admitting up to capacity concurrent
// cells (capacity < 1 is clamped to 1).
func NewLimiter(capacity int) *Limiter {
	if capacity < 1 {
		capacity = 1
	}
	return &Limiter{sem: make(chan struct{}, capacity)}
}

// Capacity returns the limiter's concurrency bound.
func (l *Limiter) Capacity() int { return cap(l.sem) }

// acquire takes a token, abandoning the wait if ctx is cancelled.
func (l *Limiter) acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *Limiter) release() {
	if l != nil {
		<-l.sem
	}
}

// WithLimiter returns a context whose Run/Stream calls additionally
// acquire a token from lim around every cell. The service layer shares
// one limiter across all jobs so intra-job parallelism composes fairly
// with the job worker pool.
func WithLimiter(ctx context.Context, lim *Limiter) context.Context {
	return context.WithValue(ctx, limiterKey{}, lim)
}

func limiterFrom(ctx context.Context) *Limiter {
	lim, _ := ctx.Value(limiterKey{}).(*Limiter)
	return lim
}

// Run executes fn(i) for every i in [0, n) over a bounded pool of
// goroutines sized by LimitFrom(ctx) (never more than n). Cells must be
// independent; callers record results by index so output order is
// completion-order-free. The first failure stops dispatch (cells
// already running finish), and among all recorded failures the
// lowest-index one is returned — the same error sequential execution
// returns, since cells are deterministic. If no cell failed and ctx was
// cancelled, ctx.Err() is returned.
func Run(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := LimitFrom(ctx)
	if workers > n {
		workers = n
	}
	lim := limiterFrom(ctx)
	if workers <= 1 && lim == nil {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx int
		first  error
	)
	done := make(chan struct{})
	record := func(i int, err error) {
		mu.Lock()
		if first == nil {
			errIdx, first = i, err
			close(done)
		} else if i < errIdx {
			errIdx, first = i, err
		}
		mu.Unlock()
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := lim.acquire(ctx); err != nil {
					record(i, err)
					continue
				}
				err := fn(i)
				lim.release()
				if err != nil {
					record(i, err)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if first != nil {
		return first
	}
	return ctx.Err()
}

// streamResult carries one cell's outcome to the merging coordinator.
type streamResult[T any] struct {
	i   int
	v   T
	err error
}

// Stream executes run(ctx, i) for every i in [0, n) in parallel and
// delivers results to emit strictly in index order, from the calling
// goroutine. The emitted sequence is byte-identical to sequential
// execution: on the first error (a cell's, or emit's own), exactly the
// cells before the failing index have been emitted, and that error is
// returned after in-flight cells drain. Cancellation likewise yields a
// contiguous prefix and ctx.Err().
func Stream[T any](ctx context.Context, n int, run func(ctx context.Context, i int) (T, error), emit func(i int, v T) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := LimitFrom(ctx)
	if workers > n {
		workers = n
	}
	lim := limiterFrom(ctx)
	if workers <= 1 && lim == nil {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			v, err := run(ctx, i)
			if err != nil {
				return err
			}
			if err := emit(i, v); err != nil {
				return err
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	var closeDone sync.Once
	stop := func() { closeDone.Do(func() { close(done) }) }
	next := make(chan int)
	results := make(chan streamResult[T], workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := lim.acquire(ctx); err != nil {
					results <- streamResult[T]{i: i, err: err}
					continue
				}
				v, err := run(ctx, i)
				lim.release()
				results <- streamResult[T]{i: i, v: v, err: err}
			}
		}()
	}
	go func() {
	feed:
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-done:
				break feed
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
		close(results)
	}()

	// Ordered merge: buffer out-of-order completions, emit the
	// contiguous prefix. The first error at the emission frontier stops
	// both dispatch and emission; later-index results drain unemitted,
	// exactly as sequential execution would never have run them.
	pending := make(map[int]streamResult[T])
	nextEmit := 0
	var streamErr error
	for r := range results {
		pending[r.i] = r
		for {
			pr, ok := pending[nextEmit]
			if !ok || streamErr != nil {
				break
			}
			delete(pending, nextEmit)
			if pr.err != nil {
				streamErr = pr.err
				stop()
				break
			}
			if err := emit(pr.i, pr.v); err != nil {
				streamErr = err
				stop()
				break
			}
			nextEmit++
		}
	}
	if streamErr != nil {
		return streamErr
	}
	return ctx.Err()
}
