package regfile

import (
	"testing"
	"testing/quick"

	"pcoup/internal/isa"
)

func TestPresenceProtocol(t *testing.T) {
	f := NewFile()
	// Unwritten registers read as valid (presence bits reset to full).
	if !f.Valid(5) {
		t.Error("fresh register should be valid")
	}
	f.ClearValid(5)
	if f.Valid(5) {
		t.Error("ClearValid did not clear")
	}
	f.Write(5, isa.Int(9))
	if !f.Valid(5) || f.Read(5).AsInt() != 9 {
		t.Error("Write did not set value and presence")
	}
}

func TestPeakTracksHighWater(t *testing.T) {
	f := NewFile()
	f.Write(0, isa.Int(1))
	f.Write(9, isa.Int(1))
	f.Write(3, isa.Int(1))
	if f.Peak() != 10 {
		t.Errorf("Peak = %d, want 10", f.Peak())
	}
}

func TestPendingCount(t *testing.T) {
	f := NewFile()
	f.ClearValid(0)
	f.ClearValid(1)
	f.Write(0, isa.Int(1))
	if f.PendingCount() != 1 {
		t.Errorf("PendingCount = %d, want 1", f.PendingCount())
	}
}

func TestSetRouting(t *testing.T) {
	s := NewSet(3)
	r0 := isa.RegRef{Cluster: 0, Index: 2}
	r2 := isa.RegRef{Cluster: 2, Index: 2}
	s.Write(r0, isa.Int(10))
	s.Write(r2, isa.Float(2.5))
	if s.Read(r0).AsInt() != 10 {
		t.Error("cluster 0 read")
	}
	if s.Read(r2).AsFloat() != 2.5 {
		t.Error("cluster 2 read")
	}
	// Same index, different cluster: distinct storage.
	if s.Read(isa.RegRef{Cluster: 1, Index: 2}).AsInt() != 0 {
		t.Error("clusters share storage")
	}
	s.ClearValid(r0)
	if s.Valid(r0) || !s.Valid(r2) {
		t.Error("ClearValid crossed clusters")
	}
	if got := s.PeakPerCluster(); got[0] != 3 || got[1] != 0 || got[2] != 3 {
		t.Errorf("PeakPerCluster = %v", got)
	}
	if s.PendingCount() != 1 {
		t.Errorf("PendingCount = %d", s.PendingCount())
	}
}

func TestOperands(t *testing.T) {
	s := NewSet(1)
	imm := isa.ImmInt(7)
	if !s.OperandValid(imm) || s.OperandValue(imm).AsInt() != 7 {
		t.Error("immediate operand")
	}
	reg := isa.Reg(isa.RegRef{Cluster: 0, Index: 1})
	s.ClearValid(reg.Reg)
	if s.OperandValid(reg) {
		t.Error("pending register reported valid")
	}
	s.Write(reg.Reg, isa.Int(3))
	if !s.OperandValid(reg) || s.OperandValue(reg).AsInt() != 3 {
		t.Error("register operand")
	}
}

func TestClusterRangePanics(t *testing.T) {
	s := NewSet(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range cluster did not panic")
		}
	}()
	s.File(2)
}

// TestWriteReadProperty: a write is always observed by the next read of
// the same register and never disturbs other registers.
func TestWriteReadProperty(t *testing.T) {
	f := NewFile()
	shadow := map[int]int64{}
	check := func(idxRaw uint8, val int64) bool {
		idx := int(idxRaw % 64)
		f.Write(idx, isa.Int(val))
		shadow[idx] = val
		for k, v := range shadow {
			if f.Read(k).AsInt() != v {
				return false
			}
			if !f.Valid(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
