// Package regfile implements per-thread register state with data presence
// bits. Each thread owns one logical register file per cluster; an
// operation's sources must be valid (present) before it may issue, issuing
// clears the destination's presence bit, and writeback sets it (Section 2
// of the paper, "Intra-thread Synchronization").
package regfile

import (
	"fmt"

	"pcoup/internal/isa"
)

// File is one thread's logical register file in one cluster. Registers
// are allocated on demand; the compiler assumes an unbounded register
// space and reports peak usage.
type File struct {
	vals  []isa.Value
	valid []bool
	peak  int
}

// NewFile returns an empty register file.
func NewFile() *File { return &File{} }

func (f *File) grow(idx int) {
	for len(f.vals) <= idx {
		f.vals = append(f.vals, isa.Value{})
		f.valid = append(f.valid, true)
	}
	if idx+1 > f.peak {
		f.peak = idx + 1
	}
}

// Valid reports whether register idx holds valid data. Registers never
// written are considered valid (they hold an undefined zero), matching a
// machine whose presence bits reset to full.
func (f *File) Valid(idx int) bool {
	if idx >= len(f.valid) {
		return true
	}
	return f.valid[idx]
}

// Read returns the value of register idx. Reading an invalid register is
// a scoreboard violation; callers must check Valid first.
func (f *File) Read(idx int) isa.Value {
	if idx >= len(f.vals) {
		return isa.Value{}
	}
	return f.vals[idx]
}

// ClearValid marks register idx as pending (issued but not written back).
func (f *File) ClearValid(idx int) {
	f.grow(idx)
	f.valid[idx] = false
}

// Write stores v into register idx and sets its presence bit.
func (f *File) Write(idx int, v isa.Value) {
	f.grow(idx)
	f.vals[idx] = v
	f.valid[idx] = true
}

// Peak returns the highest register index used plus one.
func (f *File) Peak() int { return f.peak }

// PendingCount returns the number of registers with cleared presence bits
// (results still in flight).
func (f *File) PendingCount() int {
	n := 0
	for _, v := range f.valid {
		if !v {
			n++
		}
	}
	return n
}

// FileState is a File's complete serializable state (checkpointing).
type FileState struct {
	Vals  []isa.Value `json:"vals,omitempty"`
	Valid []bool      `json:"valid,omitempty"`
	Peak  int         `json:"peak,omitempty"`
}

// State captures the file's state.
func (f *File) State() FileState {
	return FileState{
		Vals:  append([]isa.Value(nil), f.vals...),
		Valid: append([]bool(nil), f.valid...),
		Peak:  f.peak,
	}
}

// SetState restores state previously captured with State.
func (f *File) SetState(st FileState) {
	f.vals = append([]isa.Value(nil), st.Vals...)
	f.valid = append([]bool(nil), st.Valid...)
	f.peak = st.Peak
}

// Set is one thread's complete register state: one File per cluster.
type Set struct {
	files []*File
}

// NewSet creates register files for numClusters clusters.
func NewSet(numClusters int) *Set {
	s := &Set{files: make([]*File, numClusters)}
	for i := range s.files {
		s.files[i] = NewFile()
	}
	return s
}

// File returns the register file for a cluster.
func (s *Set) File(cluster int) *File {
	if cluster < 0 || cluster >= len(s.files) {
		panic(fmt.Sprintf("regfile: cluster %d out of range", cluster))
	}
	return s.files[cluster]
}

// Valid reports whether the referenced register is present.
func (s *Set) Valid(r isa.RegRef) bool { return s.File(r.Cluster).Valid(r.Index) }

// Read returns the referenced register's value.
func (s *Set) Read(r isa.RegRef) isa.Value { return s.File(r.Cluster).Read(r.Index) }

// ClearValid clears the referenced register's presence bit.
func (s *Set) ClearValid(r isa.RegRef) { s.File(r.Cluster).ClearValid(r.Index) }

// Write writes the referenced register and sets its presence bit.
func (s *Set) Write(r isa.RegRef, v isa.Value) { s.File(r.Cluster).Write(r.Index, v) }

// OperandValid reports whether an operand is readable (immediates always
// are).
func (s *Set) OperandValid(o isa.Operand) bool {
	if o.Kind == isa.OperandImm {
		return true
	}
	return s.Valid(o.Reg)
}

// OperandValue reads an operand's value.
func (s *Set) OperandValue(o isa.Operand) isa.Value {
	if o.Kind == isa.OperandImm {
		return o.Imm
	}
	return s.Read(o.Reg)
}

// PeakPerCluster returns peak register usage per cluster.
func (s *Set) PeakPerCluster() []int {
	out := make([]int, len(s.files))
	for i, f := range s.files {
		out[i] = f.Peak()
	}
	return out
}

// PendingCount returns the total number of registers awaiting writeback
// across all clusters.
func (s *Set) PendingCount() int {
	n := 0
	for _, f := range s.files {
		n += f.PendingCount()
	}
	return n
}

// State captures every cluster file's state.
func (s *Set) State() []FileState {
	out := make([]FileState, len(s.files))
	for i, f := range s.files {
		out[i] = f.State()
	}
	return out
}

// SetState restores a state previously captured with State.
func (s *Set) SetState(states []FileState) error {
	if len(states) != len(s.files) {
		return fmt.Errorf("regfile: snapshot has %d clusters, set has %d", len(states), len(s.files))
	}
	for i := range s.files {
		s.files[i].SetState(states[i])
	}
	return nil
}
