package feasibility

import (
	"bytes"
	"testing"

	"pcoup/internal/machine"
)

func TestAreaOrdering(t *testing.T) {
	cfg := machine.Baseline()
	reports := Compare(cfg, DefaultParams())
	area := map[machine.InterconnectKind]float64{}
	for _, r := range reports {
		area[r.Interconnect] = r.Total
		if r.Total <= 0 || r.RegFileArea <= 0 {
			t.Errorf("%v: non-positive area", r.Interconnect)
		}
	}
	if !(area[machine.Full] > area[machine.TriPort] &&
		area[machine.TriPort] > area[machine.DualPort] &&
		area[machine.DualPort] > area[machine.SinglePort]) {
		t.Errorf("area ordering wrong: %v", area)
	}
	if area[machine.SharedBus] >= area[machine.TriPort] {
		t.Errorf("shared bus (%v) should be cheaper than tri-port (%v)",
			area[machine.SharedBus], area[machine.TriPort])
	}
}

// TestTriPortRatioMatchesPaper: Section 4 of the paper states that in a
// four-cluster system the interconnection and register file area of the
// Tri-Port scheme is 28% that of complete connection. The model should
// land in that neighborhood.
func TestTriPortRatioMatchesPaper(t *testing.T) {
	reports := Compare(machine.Baseline(), DefaultParams())
	for _, r := range reports {
		if r.Interconnect != machine.TriPort {
			continue
		}
		if r.CommVsFull < 0.10 || r.CommVsFull > 0.45 {
			t.Errorf("tri-port comm area ratio = %.2f, paper says ~0.28", r.CommVsFull)
		}
		return
	}
	t.Fatal("tri-port report missing")
}

func TestFullIsBaseline(t *testing.T) {
	reports := Compare(machine.Baseline(), DefaultParams())
	for _, r := range reports {
		if r.Interconnect == machine.Full {
			if r.VsFull != 1 || r.CommVsFull != 1 {
				t.Errorf("full ratios = %v / %v, want 1", r.VsFull, r.CommVsFull)
			}
		}
		if r.VsFull > 1.0001 {
			t.Errorf("%v costs more than full connectivity", r.Interconnect)
		}
	}
}

func TestCacheAreaSchemeIndependent(t *testing.T) {
	cfg := machine.Baseline()
	p := DefaultParams()
	a := Estimate(cfg, machine.Full, p)
	b := Estimate(cfg, machine.SharedBus, p)
	if a.OpCacheArea != b.OpCacheArea || a.OpBufArea != b.OpBufArea {
		t.Error("operation cache/buffer area must not depend on the interconnect")
	}
}

func TestScalesWithMachine(t *testing.T) {
	p := DefaultParams()
	small := Estimate(machine.Mix(1, 1), machine.Full, p)
	big := Estimate(machine.Mix(4, 4), machine.Full, p)
	if big.Total <= small.Total {
		t.Errorf("bigger machine must cost more: %v vs %v", big.Total, small.Total)
	}
}

func TestWriteOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := machine.Baseline()
	Write(&buf, cfg, Compare(cfg, DefaultParams()))
	if buf.Len() == 0 {
		t.Error("no output")
	}
}
