// Package feasibility models the silicon cost of a processor-coupled
// node, following the implementation and feasibility discussion of the
// paper (Sections 5 and 6). The model is deliberately simple and
// parametric — register file area grows with the square of the port
// count (each port adds a wordline and a bitline pair per cell), buses
// cost wiring proportional to their span, and each function unit carries
// an operation cache and a per-thread operation buffer. Its purpose is
// the paper's comparison: the relative area of the restricted
// communication schemes against full connectivity (Section 4 puts
// Tri-Port at 28% of complete connection for a four-cluster machine).
package feasibility

import (
	"fmt"
	"io"

	"pcoup/internal/machine"
)

// Params are the technology/sizing assumptions of the model, in
// normalized cell-area units (a single-ported SRAM bit = 1).
type Params struct {
	// WordBits is the register and memory word width.
	WordBits int
	// RegsPerThread is the register file capacity provisioned per
	// cluster per resident thread.
	RegsPerThread int
	// ResidentThreads is the number of thread contexts held per cluster.
	ResidentThreads int
	// OpCacheEntries is the per-unit operation cache size (the operation
	// caches summed over units form the instruction cache).
	OpCacheEntries int
	// OpBits is the encoded size of one operation.
	OpBits int
	// BusUnitArea is the wiring area of one bus crossing one cluster.
	BusUnitArea float64
}

// DefaultParams mirrors the paper's node sketch: 64-bit words, four
// resident threads, room for 64 registers per thread per cluster, and a
// 1K-operation cache per unit.
func DefaultParams() Params {
	return Params{
		WordBits:        64,
		RegsPerThread:   64,
		ResidentThreads: 4,
		OpCacheEntries:  1024,
		OpBits:          32,
		BusUnitArea:     2048,
	}
}

// Report is the area breakdown of one machine/interconnect combination.
type Report struct {
	Interconnect machine.InterconnectKind

	// Per-file port provisioning.
	ReadPortsPerFile  int
	WritePortsPerFile int
	GlobalBuses       int

	RegFileArea float64
	BusArea     float64
	OpCacheArea float64
	OpBufArea   float64

	Total float64
	// VsFull is Total relative to the fully connected configuration of
	// the same machine (communication-dependent area only: register
	// files and buses; caches and buffers are identical across schemes).
	VsFull float64
	// CommVsFull compares only the interconnect-dependent area (register
	// files + buses), the ratio quoted by the paper.
	CommVsFull float64
}

// writePorts returns the per-file write port count and the machine-wide
// bus count for an interconnect scheme on the given machine.
func writePorts(kind machine.InterconnectKind, cfg *machine.Config) (ports, buses int) {
	n := len(cfg.Clusters)
	switch kind {
	case machine.Full:
		// Any unit may write any file: one port per potential writer.
		return cfg.NumUnits(), cfg.NumUnits() * n
	case machine.TriPort:
		// One local port plus two global ports, each with its own bus.
		return 3, 2 * n
	case machine.DualPort:
		return 2, n
	case machine.SinglePort:
		return 1, n
	case machine.SharedBus:
		// One local port plus one port on the single machine-wide bus.
		return 2, 1
	}
	return 1, 0
}

// maxUnitsPerCluster returns the largest unit count in any cluster.
func maxUnitsPerCluster(cfg *machine.Config) int {
	m := 0
	for _, cl := range cfg.Clusters {
		if len(cl.Units) > m {
			m = len(cl.Units)
		}
	}
	return m
}

// Estimate computes the area report for one interconnect scheme.
func Estimate(cfg *machine.Config, kind machine.InterconnectKind, p Params) Report {
	n := len(cfg.Clusters)
	r := Report{Interconnect: kind}

	// Each unit reads two operands per cycle from its local file.
	r.ReadPortsPerFile = 2 * maxUnitsPerCluster(cfg)
	r.WritePortsPerFile, r.GlobalBuses = writePorts(kind, cfg)

	// Multi-ported SRAM: cell area grows quadratically with total ports.
	ports := float64(r.ReadPortsPerFile + r.WritePortsPerFile)
	bits := float64(p.RegsPerThread*p.ResidentThreads) * float64(p.WordBits)
	r.RegFileArea = float64(n) * bits * ports * ports

	// Buses span the cluster array.
	r.BusArea = float64(r.GlobalBuses) * float64(n) * p.BusUnitArea

	// Operation caches and buffers are per unit and independent of the
	// communication scheme.
	r.OpCacheArea = float64(cfg.NumUnits()) * float64(p.OpCacheEntries) * float64(p.OpBits)
	r.OpBufArea = float64(cfg.NumUnits()) * float64(p.ResidentThreads) * float64(p.OpBits) * 4

	r.Total = r.RegFileArea + r.BusArea + r.OpCacheArea + r.OpBufArea
	return r
}

// Compare estimates every interconnect scheme for the machine and fills
// in the ratios against full connectivity.
func Compare(cfg *machine.Config, p Params) []Report {
	full := Estimate(cfg, machine.Full, p)
	fullComm := full.RegFileArea + full.BusArea
	var out []Report
	for _, kind := range machine.Interconnects() {
		rep := Estimate(cfg, kind, p)
		rep.VsFull = rep.Total / full.Total
		rep.CommVsFull = (rep.RegFileArea + rep.BusArea) / fullComm
		out = append(out, rep)
	}
	return out
}

// Write prints the comparison in a Section 6 style table.
func Write(w io.Writer, cfg *machine.Config, reports []Report) {
	fmt.Fprintf(w, "Feasibility: interconnect and register file area for %s\n", cfg)
	fmt.Fprintf(w, "%-12s %6s %6s %6s %14s %12s %8s %9s\n",
		"Scheme", "rports", "wports", "buses", "regfile", "bus", "total", "comm/full")
	for _, r := range reports {
		fmt.Fprintf(w, "%-12s %6d %6d %6d %14.0f %12.0f %8.2e %9.2f\n",
			r.Interconnect, r.ReadPortsPerFile, r.WritePortsPerFile, r.GlobalBuses,
			r.RegFileArea, r.BusArea, r.Total, r.CommVsFull)
	}
}
