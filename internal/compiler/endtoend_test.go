package compiler_test

import (
	"testing"

	"pcoup/internal/compiler"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

// run compiles src for the baseline machine and executes it, returning
// the result and the simulator (for memory inspection).
func run(t *testing.T, src string, mode compiler.Mode) (*sim.Result, *sim.Sim, *isa.Program) {
	t.Helper()
	cfg := machine.Baseline()
	prog, _, err := compiler.Compile(src, cfg, compiler.Options{Mode: mode})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s, err := sim.New(cfg, prog)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res, err := s.Run(0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, s, prog
}

// peekInt reads memory at the named global plus offset.
func peekInt(t *testing.T, s *sim.Sim, prog *isa.Program, name string, off int64) int64 {
	t.Helper()
	for _, d := range prog.Data {
		if d.Name == name {
			v, _ := s.Memory().Peek(d.Addr + off)
			return v.AsInt()
		}
	}
	t.Fatalf("global %q not found", name)
	return 0
}

func peekFloat(t *testing.T, s *sim.Sim, prog *isa.Program, name string, off int64) float64 {
	t.Helper()
	for _, d := range prog.Data {
		if d.Name == name {
			v, _ := s.Memory().Peek(d.Addr + off)
			return v.AsFloat()
		}
	}
	t.Fatalf("global %q not found", name)
	return 0
}

func TestStraightLine(t *testing.T) {
	src := `
(program t1
  (global out (array int 4))
  (def (main)
    (set x 3)
    (set y 4)
    (aset out 0 (+ x y))
    (aset out 1 (* x 6))
    (aset out 2 (- y x))
    (aset out 3 (% 17 5))))`
	for _, mode := range []compiler.Mode{compiler.Unrestricted, compiler.SingleCluster} {
		_, s, prog := run(t, src, mode)
		for i, want := range []int64{7, 18, 1, 2} {
			if got := peekInt(t, s, prog, "out", int64(i)); got != want {
				t.Errorf("mode %v: out[%d] = %d, want %d", mode, i, got, want)
			}
		}
	}
}

func TestRuntimeLoop(t *testing.T) {
	src := `
(program t2
  (global out (array int 10))
  (def (main)
    (for (i 0 10)
      (aset out i (* i i)))))`
	_, s, prog := run(t, src, compiler.Unrestricted)
	for i := int64(0); i < 10; i++ {
		if got := peekInt(t, s, prog, "out", i); got != i*i {
			t.Errorf("out[%d] = %d, want %d", i, got, i*i)
		}
	}
}

func TestWhileAndIf(t *testing.T) {
	src := `
(program t3
  (global out (array int 3))
  (def (main)
    (set n 0)
    (set sum 0)
    (while (< n 20)
      (if (= (% n 2) 0)
          (set sum (+ sum n)))
      (set n (+ n 1)))
    (aset out 0 sum)
    (if (> sum 50)
        (aset out 1 1)
        (aset out 1 2))
    (aset out 2 42)))`
	_, s, prog := run(t, src, compiler.Unrestricted)
	if got := peekInt(t, s, prog, "out", 0); got != 90 {
		t.Errorf("sum = %d, want 90", got)
	}
	if got := peekInt(t, s, prog, "out", 1); got != 1 {
		t.Errorf("out[1] = %d, want 1", got)
	}
	if got := peekInt(t, s, prog, "out", 2); got != 42 {
		t.Errorf("out[2] = %d, want 42", got)
	}
}

func TestFloatArithmetic(t *testing.T) {
	src := `
(program t4
  (global a (array float 4) (init 1.5 2.5 3.0 4.0))
  (global out (array float 3))
  (def (main)
    (set s 0.0)
    (unroll (i 0 4)
      (set s (+ s (aref a i))))
    (aset out 0 s)
    (aset out 1 (* (aref a 0) (aref a 1)))
    (aset out 2 (/ (aref a 3) 2.0))))`
	_, s, prog := run(t, src, compiler.Unrestricted)
	if got := peekFloat(t, s, prog, "out", 0); got != 11.0 {
		t.Errorf("out[0] = %v, want 11", got)
	}
	if got := peekFloat(t, s, prog, "out", 1); got != 3.75 {
		t.Errorf("out[1] = %v, want 3.75", got)
	}
	if got := peekFloat(t, s, prog, "out", 2); got != 2.0 {
		t.Errorf("out[2] = %v, want 2", got)
	}
}

func TestProcedureInline(t *testing.T) {
	src := `
(program t5
  (global out (array int 4))
  (def (square x) (return (* x x)))
  (def (store2 i v)
    (aset out i v)
    (aset out (+ i 1) (+ v 1)))
  (def (main)
    (aset out 0 (square 5))
    (aset out 1 (square (square 2)))
    (store2 2 (square 3))))`
	_, s, prog := run(t, src, compiler.Unrestricted)
	for i, want := range []int64{25, 16, 9, 10} {
		if got := peekInt(t, s, prog, "out", int64(i)); got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestForkJoin(t *testing.T) {
	src := `
(program t6
  (global out (array int 4))
  (def (main)
    (fork (aset out 0 11))
    (fork (aset out 1 22))
    (join)
    (aset out 2 (+ (aref out 0) (aref out 1)))))`
	res, s, prog := run(t, src, compiler.Unrestricted)
	if got := peekInt(t, s, prog, "out", 2); got != 33 {
		t.Errorf("out[2] = %d, want 33", got)
	}
	if len(res.Threads) != 3 {
		t.Errorf("expected 3 threads, got %d", len(res.Threads))
	}
}

func TestForallStatic(t *testing.T) {
	src := `
(program t7
  (global out (array int 8))
  (def (main)
    (forall-static (i 0 8)
      (aset out i (* i 3)))
    (set s 0)
    (unroll (i 0 8)
      (set s (+ s (aref out i))))
    (aset out 0 s)))`
	_, s, prog := run(t, src, compiler.Unrestricted)
	// s = 3*(0+1+...+7) = 84
	if got := peekInt(t, s, prog, "out", 0); got != 84 {
		t.Errorf("out[0] = %d, want 84", got)
	}
	for i := int64(1); i < 8; i++ {
		if got := peekInt(t, s, prog, "out", i); got != i*3 {
			t.Errorf("out[%d] = %d, want %d", i, got, i*3)
		}
	}
}

func TestForallRuntime(t *testing.T) {
	src := `
(program t8
  (global n int (init 12))
  (global out (array int 16))
  (def (main)
    (set lim (aref n 0))
    (forall (i 0 lim)
      (aset out i (+ (* i i) 1)))
    (aset out 15 99)))`
	for _, mode := range []compiler.Mode{compiler.Unrestricted, compiler.SingleCluster} {
		_, s, prog := run(t, src, mode)
		for i := int64(0); i < 12; i++ {
			if got := peekInt(t, s, prog, "out", i); got != i*i+1 {
				t.Errorf("mode %v: out[%d] = %d, want %d", mode, i, got, i*i+1)
			}
		}
		if got := peekInt(t, s, prog, "out", 15); got != 99 {
			t.Errorf("mode %v: out[15] = %d, want 99", mode, got)
		}
	}
}

func TestSyncQueue(t *testing.T) {
	// Two workers drain a shared counter with consume/produce atomicity.
	src := `
(program t9
  (global next int (init 0))
  (global marks (array int 10))
  (global counts (array int 2))
  (def (worker tid)
    (set cnt 0)
    (set idx (aref next 0 consume))
    (aset next 0 (+ idx 1) produce)
    (while (< idx 10)
      (aset marks idx 1)
      (set cnt (+ cnt 1))
      (set idx (aref next 0 consume))
      (aset next 0 (+ idx 1) produce))
    (aset counts tid cnt))
  (def (main)
    (fork (worker 0))
    (fork (worker 1))
    (join)))`
	_, s, prog := run(t, src, compiler.Unrestricted)
	total := int64(0)
	for i := int64(0); i < 10; i++ {
		if got := peekInt(t, s, prog, "marks", i); got != 1 {
			t.Errorf("marks[%d] = %d, want 1", i, got)
		}
	}
	for i := int64(0); i < 2; i++ {
		total += peekInt(t, s, prog, "counts", i)
	}
	if total != 10 {
		t.Errorf("total evaluated = %d, want 10", total)
	}
}

func TestNestedLoopsMatmulSmall(t *testing.T) {
	// 3x3 integer matmul, checked exactly.
	src := `
(program t10
  (global a (array int 9) (init 1 2 3 4 5 6 7 8 9))
  (global b (array int 9) (init 9 8 7 6 5 4 3 2 1))
  (global c (array int 9))
  (def (main)
    (for (i 0 3)
      (for (j 0 3)
        (set s 0)
        (unroll (k 0 3)
          (set s (+ s (* (aref a (+ (* i 3) k)) (aref b (+ (* k 3) j))))))
        (aset c (+ (* i 3) j) s)))))`
	want := []int64{30, 24, 18, 84, 69, 54, 138, 114, 90}
	for _, mode := range []compiler.Mode{compiler.Unrestricted, compiler.SingleCluster} {
		_, s, prog := run(t, src, mode)
		for i, w := range want {
			if got := peekInt(t, s, prog, "c", int64(i)); got != w {
				t.Errorf("mode %v: c[%d] = %d, want %d", mode, i, got, w)
			}
		}
	}
}

func TestModeCycleOrdering(t *testing.T) {
	// A compute-heavy unrolled kernel should run faster unrestricted
	// (STS-like) than on a single cluster (SEQ-like).
	src := `
(program t11
  (global a (array float 64))
  (global out (array float 64))
  (def (main)
    (unroll (i 0 64)
      (aset a i (+ (float i) 1.0)))
    (unroll (i 0 64)
      (aset out i (* (aref a i) (aref a i))))))`
	cfg := machine.Baseline()
	var cycles [2]int64
	for m, mode := range []compiler.Mode{compiler.Unrestricted, compiler.SingleCluster} {
		prog, _, err := compiler.Compile(src, cfg, compiler.Options{Mode: mode})
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		s, err := sim.New(cfg, prog)
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		res, err := s.Run(0)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		cycles[m] = res.Cycles
	}
	if cycles[0] >= cycles[1] {
		t.Errorf("unrestricted (%d cycles) should beat single-cluster (%d cycles)", cycles[0], cycles[1])
	}
}

// runWith compiles with explicit options and runs on the baseline machine.
func runWith(t *testing.T, src string, opts compiler.Options) (*sim.Result, *sim.Sim, *isa.Program) {
	t.Helper()
	cfg := machine.Baseline()
	prog, _, err := compiler.Compile(src, cfg, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s, err := sim.New(cfg, prog)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res, err := s.Run(0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, s, prog
}

// TestAutoUnroll verifies the extension's semantics: correct results,
// conservative handling of assigned loop variables, and no expansion
// beyond the limit.
func TestAutoUnroll(t *testing.T) {
	src := `
(program p
  (global out (array int 20))
  (def (main)
    (for (i 0 6)
      (aset out i (* i i)))
    (for (j 0 12)
      (aset out (+ j 6) j))))`
	cfg := machine.Baseline()
	prog, _, err := compiler.Compile(src, cfg, compiler.Options{Mode: compiler.Unrestricted, AutoUnroll: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The first loop (6 trips) unrolls: its stores become constant-
	// addressed. The second (12 trips) exceeds the limit and stays a
	// runtime loop, so at least one branch remains.
	branches := 0
	for _, in := range prog.Segments[0].Instrs {
		for _, op := range in.Ops {
			if op != nil && op.IsBranch() {
				branches++
			}
		}
	}
	if branches == 0 {
		t.Error("second loop should have stayed rolled")
	}
	// Results must be identical with and without unrolling.
	for _, unroll := range []int{0, 8, 64} {
		res, s, p := runWith(t, src, compiler.Options{Mode: compiler.Unrestricted, AutoUnroll: unroll})
		_ = res
		for i := int64(0); i < 6; i++ {
			if got := peekAt(t, s, p, "out", i); got != i*i {
				t.Errorf("unroll=%d: out[%d] = %d", unroll, i, got)
			}
		}
		for j := int64(0); j < 12; j++ {
			if got := peekAt(t, s, p, "out", j+6); got != j {
				t.Errorf("unroll=%d: out[%d] = %d", unroll, j+6, got)
			}
		}
	}
	// A loop that assigns its own variable must not unroll (and must
	// still compile and run correctly).
	src2 := `
(program p
  (global out (array int 1))
  (def (main)
    (set n 0)
    (for (i 0 10)
      (begin
        (set i (+ i 1))
        (set n (+ n 1))))
    (aset out 0 n)))`
	_, s2, p2 := runWith(t, src2, compiler.Options{Mode: compiler.Unrestricted, AutoUnroll: 64})
	if got := peekAt(t, s2, p2, "out", 0); got != 5 {
		t.Errorf("self-assigning loop ran %d times, want 5", got)
	}
}

// peekAt reads an int from the named global.
func peekAt(t *testing.T, s *sim.Sim, prog *isa.Program, name string, off int64) int64 {
	t.Helper()
	return peekInt(t, s, prog, name, off)
}
