// Package compiler translates the source language (simplified C semantics
// with Lisp syntax, read by package sexpr) into compiled isa.Programs for
// a particular machine configuration. It mirrors the prototype compiler of
// Section 3 of the paper: procedures are macro-expanded, loops may be
// unrolled explicitly, threads are carved out by fork/forall constructs,
// classic scalar optimizations run on a basic-block IR (constant
// propagation, common subexpression elimination, static evaluation of
// constant expressions, dead code elimination), and each thread body is
// statically scheduled into wide instruction words by critical-path list
// scheduling. Live variables are kept in registers across basic block
// boundaries; register allocation is not performed (an unbounded register
// space is assumed and peak usage reported).
package compiler

import (
	"fmt"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/sexpr"
)

// Mode selects the cluster restriction applied to each thread (the
// compiler's "mode flag" in the paper).
type Mode int

const (
	// Unrestricted lets every thread use any function unit (STS, Ideal,
	// and Coupled machine modes).
	Unrestricted Mode = iota
	// SingleCluster schedules each thread onto the function units of a
	// single arithmetic cluster, chosen by the compiler with static load
	// balancing (SEQ and TPE machine modes). Branch clusters remain
	// shared.
	SingleCluster
)

func (m Mode) String() string {
	if m == SingleCluster {
		return "single"
	}
	return "unrestricted"
}

// Options controls a compilation.
type Options struct {
	Mode Mode
	// DisableOpt turns off the scalar optimization passes (ablation).
	DisableOpt bool
	// AutoUnroll expands counted loops with compile-time-constant bounds
	// whose body replication stays within AutoUnroll expanded iterations
	// (extension: the paper's compiler required hand unrolling and notes
	// that better compilation "should benefit processor coupling at
	// least as much" as other organizations). Zero disables.
	AutoUnroll int
}

// SegDiag reports per-segment compile diagnostics.
type SegDiag struct {
	Name  string
	Words int
	Ops   int
	// Moves counts inter-cluster transfer operations inserted by the
	// scheduler.
	Moves int
	// RegsPerCluster is the number of registers used in each cluster.
	RegsPerCluster []int
	// LoopWords is the total schedule length (in words) of the blocks
	// lying on CFG cycles — the compile-time schedule length of the
	// segment's loop body (used by the Table 3 experiment).
	LoopWords int
	// BlockWords is the schedule length of each basic block.
	BlockWords []int
}

// Diagnostics is the compiler's diagnostic output (the paper's compiler
// emits a diagnostic file alongside the assembly).
type Diagnostics struct {
	Segments []SegDiag
}

// Diag returns diagnostics for the named segment.
func (d *Diagnostics) Diag(name string) (SegDiag, bool) {
	for _, s := range d.Segments {
		if s.Name == name {
			return s, true
		}
	}
	return SegDiag{}, false
}

// CompileError is a source-level compilation failure.
type CompileError struct {
	Pos string
	Msg string
}

func (e *CompileError) Error() string {
	if e.Pos == "" {
		return "compile: " + e.Msg
	}
	return fmt.Sprintf("compile: %s: %s", e.Pos, e.Msg)
}

func errAt(n *sexpr.Node, format string, args ...any) error {
	pos := ""
	if n != nil {
		pos = n.Pos()
	}
	return &CompileError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Compile parses and compiles source for the given machine configuration.
func Compile(src string, cfg *machine.Config, opts Options) (*isa.Program, *Diagnostics, error) {
	forms, err := sexpr.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return CompileForms(forms, cfg, opts)
}

// CompileForms compiles pre-parsed top-level forms.
func CompileForms(forms []*sexpr.Node, cfg *machine.Config, opts Options) (*isa.Program, *Diagnostics, error) {
	return compileForms(forms, cfg, opts, nil)
}

// compileForms is the shared compile body; lim, when non-nil, bounds the
// work performed (see CompileBounded).
func compileForms(forms []*sexpr.Node, cfg *machine.Config, opts Options, lim *Limits) (*isa.Program, *Diagnostics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	env, err := newEnv(forms, cfg, opts)
	if err != nil {
		return nil, nil, err
	}
	env.lim = lim
	if err := env.lowerAll(); err != nil {
		return nil, nil, err
	}
	if !opts.DisableOpt {
		for _, fn := range env.fns {
			optimize(fn)
		}
	}
	prog, diags, err := env.emit()
	if err != nil {
		return nil, nil, err
	}
	if err := prog.Validate(cfg.NumUnits(), len(cfg.Clusters), cfg.MaxDests); err != nil {
		return nil, nil, fmt.Errorf("compiler: internal error: generated invalid program: %w", err)
	}
	return prog, diags, nil
}
