package compiler

import (
	"pcoup/internal/isa"
	"pcoup/internal/sexpr"
)

// constApply evaluates an arithmetic/comparison form over constant
// operands at compile time, mirroring lowerArith's typing rules.
func constApply(n *sexpr.Node, head string, vals []isa.Value) (isa.Value, error) {
	h, ok := arithTable[head]
	if !ok {
		return isa.Value{}, errAt(n, "not a constant operator %q", head)
	}
	if len(vals) == 0 {
		return isa.Value{}, errAt(n, "%s wants operands", head)
	}
	anyFloat := false
	for _, v := range vals {
		if v.IsFloat {
			anyFloat = true
		}
	}
	switch head {
	case "not":
		if len(vals) != 1 || anyFloat {
			return isa.Value{}, errAt(n, "not wants one int operand")
		}
		return isa.Eval(isa.OpSeq, []isa.Value{vals[0], isa.Int(0)})
	case "abs", "fabs":
		if len(vals) != 1 {
			return isa.Value{}, errAt(n, "%s wants one operand", head)
		}
		return isa.Eval(isa.OpFAbs, []isa.Value{isa.Float(vals[0].AsFloat())})
	case "-":
		if len(vals) == 1 {
			if anyFloat {
				return isa.Eval(isa.OpFNeg, vals)
			}
			return isa.Eval(isa.OpNeg, vals)
		}
	}
	if h.intOnly && anyFloat {
		return isa.Value{}, errAt(n, "%s wants int operands", head)
	}
	op := h.intOp
	if anyFloat && !h.intOnly {
		op = h.floatOp
		for i := range vals {
			vals[i] = isa.Float(vals[i].AsFloat())
		}
	}
	if len(vals) == 1 {
		return vals[0], nil // unary + or *
	}
	if (h.compare || !h.nary) && len(vals) != 2 {
		return isa.Value{}, errAt(n, "%s wants two operands", head)
	}
	acc := vals[0]
	for i := 1; i < len(vals); i++ {
		v, err := isa.Eval(op, []isa.Value{acc, vals[i]})
		if err != nil {
			return isa.Value{}, errAt(n, "%v", err)
		}
		acc = v
	}
	return acc, nil
}
