package compiler

import (
	"fmt"

	"pcoup/internal/isa"
)

// optimize runs the scalar optimization passes to a fixpoint: static
// evaluation of constant expressions, constant propagation, local common
// subexpression elimination (including redundant loads and store-to-load
// forwarding), copy propagation, branch folding, and dead code
// elimination — the optimizations attributed to the paper's compiler.
func optimize(fn *Fn) {
	for round := 0; round < 8; round++ {
		changed := false
		if constProp(fn) {
			changed = true
		}
		if foldAddrAdds(fn) {
			changed = true
		}
		if localCSE(fn) {
			changed = true
		}
		if copyProp(fn) {
			changed = true
		}
		if simplifyControl(fn) {
			changed = true
		}
		if dce(fn) {
			changed = true
		}
		if !changed {
			return
		}
	}
}

// defCounts returns, per vreg, how many instructions define it.
func defCounts(fn *Fn) map[VReg]int {
	counts := map[VReg]int{}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Dst != 0 {
				counts[in.Dst]++
			}
		}
	}
	return counts
}

// constProp finds single-assignment vregs whose definitions fold to
// constants and substitutes them into all uses. Constant address
// components of memory operations fold into the instruction offset.
func constProp(fn *Fn) bool {
	defs := defCounts(fn)
	known := map[VReg]isa.Value{}
	// Iterate to propagate through chains.
	for {
		grew := false
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Dst == 0 || defs[in.Dst] != 1 || !in.Op.Pure() {
					continue
				}
				if _, done := known[in.Dst]; done {
					continue
				}
				vals := make([]isa.Value, len(in.Srcs))
				ok := true
				for i, s := range in.Srcs {
					switch {
					case s.IsConst:
						vals[i] = s.Const
					default:
						v, has := known[s.VReg]
						if !has {
							ok = false
						}
						vals[i] = v
					}
					if !ok {
						break
					}
				}
				if !ok {
					continue
				}
				v, err := isa.Eval(in.Op, vals)
				if err != nil {
					continue
				}
				known[in.Dst] = v
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	if len(known) == 0 {
		return false
	}
	changed := false
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			for i, s := range in.Srcs {
				if s.IsConst {
					continue
				}
				if v, ok := known[s.VReg]; ok {
					in.Srcs[i] = csrc(v)
					changed = true
				}
			}
			// Rewrite folded definitions into constant moves so DCE can
			// drop them once unused.
			if in.Dst != 0 && defs[in.Dst] == 1 && in.Op.Pure() {
				if v, ok := known[in.Dst]; ok && !(isMovOp(in.Op) && len(in.Srcs) == 1 && in.Srcs[0].IsConst) {
					in.Op = movOp(in.Type)
					in.Srcs = []Src{csrc(v)}
					changed = true
				}
			}
			changed = foldMemAddress(in) || changed
		}
	}
	return changed
}

func isMovOp(op isa.Opcode) bool { return op == isa.OpMov || op == isa.OpFMov }

// foldMemAddress moves constant address components of loads/stores into
// the offset field.
func foldMemAddress(in *Instr) bool {
	if in.Op != isa.OpLoad && in.Op != isa.OpStore {
		return false
	}
	start := 0
	if in.Op == isa.OpStore {
		start = 1 // Srcs[0] is the stored value
	}
	changed := false
	kept := in.Srcs[:start]
	for _, s := range in.Srcs[start:] {
		if s.IsConst {
			in.Offset += s.Const.AsInt()
			changed = true
			continue
		}
		kept = append(kept, s)
	}
	in.Srcs = kept
	if len(in.Srcs) == start && !in.AddrConst {
		in.AddrConst = true
		changed = true
	}
	return changed
}

// foldAddrAdds absorbs single-assignment integer additions feeding a
// memory operation's address into the operation itself: the memory units
// perform the arithmetic required for address calculation (base + index +
// offset), as in the paper's machine. Up to two register components are
// allowed per address.
func foldAddrAdds(fn *Fn) bool {
	defs := defCounts(fn)
	defInstr := map[VReg]*Instr{}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Dst != 0 && defs[in.Dst] == 1 {
				defInstr[in.Dst] = in
			}
		}
	}
	changed := false
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != isa.OpLoad && in.Op != isa.OpStore {
				continue
			}
			start := 0
			if in.Op == isa.OpStore {
				start = 1
			}
			for again := true; again; {
				again = false
				regComps := 0
				for _, s := range in.Srcs[start:] {
					if !s.IsConst {
						regComps++
					}
				}
				for i := start; i < len(in.Srcs); i++ {
					s := in.Srcs[i]
					if s.IsConst {
						continue
					}
					d, ok := defInstr[s.VReg]
					if !ok || d.Op != isa.OpAdd {
						continue
					}
					extra := 0
					for _, ds := range d.Srcs {
						if !ds.IsConst {
							extra++
						}
					}
					if regComps-1+extra > 2 {
						continue
					}
					// Replace the component with the addition's operands.
					repl := append([]Src{}, in.Srcs[:i]...)
					repl = append(repl, d.Srcs...)
					repl = append(repl, in.Srcs[i+1:]...)
					in.Srcs = repl
					changed = true
					again = true
					break
				}
				foldMemAddress(in)
			}
		}
	}
	return changed
}

// cseEntry is one available expression or memory value.
type cseEntry struct {
	key  string
	reg  VReg
	uses []VReg // vregs the key depends on (invalidated on redefinition)
}

// localCSE eliminates common subexpressions, redundant loads, and loads
// that can be forwarded from a prior store, within each basic block.
func localCSE(fn *Fn) bool {
	changed := false
	for _, b := range fn.Blocks {
		var exprs []cseEntry
		var loads []cseEntry       // key -> loaded reg, per alias/addr
		stores := map[string]Src{} // const-addr store forwarding
		aliasOf := map[string]string{}

		invalidateReg := func(v VReg) {
			keep := exprs[:0]
			for _, e := range exprs {
				dead := e.reg == v
				for _, u := range e.uses {
					if u == v {
						dead = true
					}
				}
				if !dead {
					keep = append(keep, e)
				}
			}
			exprs = keep
			keepL := loads[:0]
			for _, e := range loads {
				dead := e.reg == v
				for _, u := range e.uses {
					if u == v {
						dead = true
					}
				}
				if !dead {
					keepL = append(keepL, e)
				}
			}
			loads = keepL
			for k, s := range stores {
				if !s.IsConst && s.VReg == v {
					delete(stores, k)
				}
			}
		}
		invalidateAlias := func(alias string) {
			keep := loads[:0]
			for _, e := range loads {
				if alias == "" || aliasOf[e.key] == alias || aliasOf[e.key] == "" {
					continue
				}
				keep = append(keep, e)
			}
			loads = keep
			for k := range stores {
				if alias == "" || aliasOf[k] == alias || aliasOf[k] == "" {
					delete(stores, k)
				}
			}
		}

		for _, in := range b.Instrs {
			switch {
			case in.Op == isa.OpLoad && in.Sync == isa.SyncNone && in.Dst != 0:
				key := memKey(in)
				if in.AddrConst {
					if v, ok := stores[key]; ok {
						// Store-to-load forwarding.
						in.Op = movOp(in.Type)
						in.Srcs = []Src{v}
						in.Alias = ""
						in.AddrConst = false
						in.Offset = 0
						changed = true
						if in.Dst != 0 {
							invalidateReg(in.Dst)
						}
						continue
					}
				}
				found := false
				for _, e := range loads {
					if e.key == key {
						in.Op = movOp(in.Type)
						in.Srcs = []Src{vsrc(e.reg)}
						in.Alias = ""
						in.AddrConst = false
						in.Offset = 0
						changed = true
						found = true
						break
					}
				}
				invalidateReg(in.Dst)
				if !found && in.Op == isa.OpLoad && !selfReferencing(in) {
					aliasOf[key] = in.Alias
					loads = append(loads, cseEntry{key: key, reg: in.Dst, uses: srcVRegs(in.Srcs)})
				}
			case in.Op == isa.OpLoad:
				// Synchronizing load: never reused, kills its alias.
				invalidateAlias(in.Alias)
				if in.Dst != 0 {
					invalidateReg(in.Dst)
				}
			case in.Op == isa.OpStore:
				invalidateAlias(in.Alias)
				if in.Sync == isa.SyncNone && in.AddrConst {
					key := memKey(in)
					aliasOf[key] = in.Alias
					stores[key] = in.Srcs[0]
				}
			case in.Op == isa.OpFork, in.Op == isa.OpHalt:
				invalidateAlias("")
			case in.Dst != 0 && in.Op.Pure():
				key := exprKey(in)
				replaced := false
				for _, e := range exprs {
					if e.key == key {
						in.Op = movOp(in.Type)
						in.Srcs = []Src{vsrc(e.reg)}
						changed = true
						replaced = true
						break
					}
				}
				invalidateReg(in.Dst)
				if !replaced && !isMovOp(in.Op) && !selfReferencing(in) {
					exprs = append(exprs, cseEntry{key: key, reg: in.Dst, uses: srcVRegs(in.Srcs)})
				}
			default:
				if in.Dst != 0 {
					invalidateReg(in.Dst)
				}
			}
		}
	}
	return changed
}

// selfReferencing reports whether the instruction reads its own
// destination register.
func selfReferencing(in *Instr) bool {
	for _, s := range in.Srcs {
		if !s.IsConst && s.VReg == in.Dst {
			return true
		}
	}
	return false
}

func srcVRegs(srcs []Src) []VReg {
	var out []VReg
	for _, s := range srcs {
		if !s.IsConst {
			out = append(out, s.VReg)
		}
	}
	return out
}

func exprKey(in *Instr) string {
	key := in.Op.String()
	for _, s := range in.Srcs {
		key += "," + s.String()
	}
	return key
}

func memKey(in *Instr) string {
	key := fmt.Sprintf("%s@%d", in.Alias, in.Offset)
	start := 0
	if in.Op == isa.OpStore {
		start = 1
	}
	for _, s := range in.Srcs[start:] {
		key += "+" + s.String()
	}
	return key
}

// copyProp replaces uses of single-assignment vregs defined by a move
// from another single-assignment vreg.
func copyProp(fn *Fn) bool {
	defs := defCounts(fn)
	repl := map[VReg]VReg{}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if isMovOp(in.Op) && in.Dst != 0 && len(in.Srcs) == 1 && !in.Srcs[0].IsConst {
				src := in.Srcs[0].VReg
				if defs[in.Dst] == 1 && defs[src] == 1 {
					repl[in.Dst] = src
				}
			}
		}
	}
	if len(repl) == 0 {
		return false
	}
	resolve := func(v VReg) VReg {
		for i := 0; i < 64; i++ {
			n, ok := repl[v]
			if !ok {
				return v
			}
			v = n
		}
		return v
	}
	changed := false
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			for i, s := range in.Srcs {
				if s.IsConst {
					continue
				}
				if r := resolve(s.VReg); r != s.VReg {
					in.Srcs[i] = vsrc(r)
					changed = true
				}
			}
		}
	}
	return changed
}

// simplifyControl folds constant conditional branches, removes jumps to
// the next block, and prunes unreachable blocks.
func simplifyControl(fn *Fn) bool {
	changed := false
	for i, b := range fn.Blocks {
		term := b.terminator()
		if term == nil {
			continue
		}
		switch term.Op {
		case isa.OpBt, isa.OpBf:
			if len(term.Srcs) == 1 && term.Srcs[0].IsConst {
				taken := term.Srcs[0].Const.Truthy() == (term.Op == isa.OpBt)
				if taken {
					term.Op = isa.OpJmp
					term.Srcs = nil
				} else {
					b.Instrs = b.Instrs[:len(b.Instrs)-1]
				}
				changed = true
			}
		}
		term = b.terminator()
		if term != nil && term.Op == isa.OpJmp && i+1 < len(fn.Blocks) && term.Target == fn.Blocks[i+1] {
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
			changed = true
		}
	}
	// Prune unreachable blocks.
	reach := map[*Block]bool{}
	var stack []*Block
	if len(fn.Blocks) > 0 {
		reach[fn.Blocks[0]] = true
		stack = append(stack, fn.Blocks[0])
	}
	index := map[*Block]int{}
	for i, b := range fn.Blocks {
		index[b] = i
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range fn.succs(index[b]) {
			if s != nil && !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	if len(reach) != len(fn.Blocks) {
		var kept []*Block
		for _, b := range fn.Blocks {
			if reach[b] {
				kept = append(kept, b)
			}
		}
		fn.Blocks = kept
		for i, b := range fn.Blocks {
			b.ID = i
		}
		changed = true
	} else {
		for i, b := range fn.Blocks {
			b.ID = i
		}
	}
	return changed
}

// dce removes pure instructions (and ordinary loads) whose results are
// never used. Synchronizing loads, stores, branches, forks, and halts are
// always preserved.
func dce(fn *Fn) bool {
	changed := false
	for {
		uses := map[VReg]int{}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				for _, s := range in.Srcs {
					if !s.IsConst {
						uses[s.VReg]++
					}
				}
			}
		}
		removed := false
		for _, b := range fn.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				dead := false
				if in.Dst != 0 && uses[in.Dst] == 0 {
					if in.Op.Pure() {
						dead = true
					}
					if in.Op == isa.OpLoad && in.Sync == isa.SyncNone {
						dead = true
					}
				}
				if dead {
					removed = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if !removed {
			return changed
		}
		changed = true
	}
}
