package compiler

import (
	"fmt"

	"pcoup/internal/isa"
	"pcoup/internal/sexpr"
)

// varInfo is a local variable bound to a virtual register.
type varInfo struct {
	reg VReg
	typ Type
}

// frame is one lexical scope: runtime variables and compile-time constant
// bindings (unroll / forall-static indices, constant-valued inline
// arguments).
type frame struct {
	vars   map[string]varInfo
	consts map[string]isa.Value
}

// retSlot captures the (return ...) value during procedure inlining.
type retSlot struct {
	src Src
	typ Type
	set bool
}

// lowerCtx lowers one segment's body to IR.
type lowerCtx struct {
	env  *env
	fn   *Fn
	work *segWork
	cur  *Block

	frames []*frame
	ret    *retSlot // non-nil while inlining a procedure body

	// forkFlags are the completion cells of forks issued so far and not
	// yet joined, in spawn order.
	forkFlags   []int64
	inlineDepth int
}

// maxInlineDepth bounds procedure expansion; procedures are macros, so
// recursion cannot be supported (as in the paper's compiler).
const maxInlineDepth = 64

func (e *env) lowerSegment(w *segWork) (*Fn, error) {
	fn := newFn(w.name)
	lc := &lowerCtx{env: e, fn: fn, work: w}
	lc.pushFrame(&frame{vars: map[string]varInfo{}, consts: w.consts})
	lc.place(&Block{})

	if w.mailboxAddr >= 0 {
		// Runtime forall worker: consume the loop index from the mailbox.
		v := fn.newVReg(TInt)
		lc.emit(&Instr{
			Op: isa.OpLoad, Dst: v, Sync: isa.SyncConsume,
			Offset: w.mailboxAddr, AddrConst: true, Alias: lc.env.cellAlias(w.mailboxAddr),
			Type: TInt,
		})
		lc.bindVar(w.mailboxVar, varInfo{reg: v, typ: TInt})
	}
	if err := lc.stmts(w.body); err != nil {
		return nil, err
	}
	if w.doneAddr >= 0 {
		lc.emit(&Instr{
			Op: isa.OpStore, Sync: isa.SyncProduce,
			Srcs: []Src{cint(1)}, Offset: w.doneAddr, AddrConst: true,
			Alias: lc.env.cellAlias(w.doneAddr),
		})
	}
	lc.emit(&Instr{Op: isa.OpHalt})
	return fn, nil
}

// cellAlias returns the global name owning addr (hidden sync cells get
// their own alias so the scheduler orders accesses conservatively).
func (e *env) cellAlias(addr int64) string {
	for _, name := range e.globalOrder {
		g := e.globals[name]
		if addr >= g.addr && addr < g.addr+g.size {
			return g.name
		}
	}
	return ""
}

// --- scope helpers ---

func (lc *lowerCtx) pushFrame(f *frame) {
	if f.vars == nil {
		f.vars = map[string]varInfo{}
	}
	if f.consts == nil {
		f.consts = map[string]isa.Value{}
	}
	lc.frames = append(lc.frames, f)
}

func (lc *lowerCtx) popFrame() { lc.frames = lc.frames[:len(lc.frames)-1] }

func (lc *lowerCtx) bindVar(name string, vi varInfo) {
	lc.frames[len(lc.frames)-1].vars[name] = vi
}

// lookup resolves a name to a local variable or compile-time constant.
func (lc *lowerCtx) lookup(name string) (varInfo, isa.Value, int) {
	for i := len(lc.frames) - 1; i >= 0; i-- {
		if vi, ok := lc.frames[i].vars[name]; ok {
			return vi, isa.Value{}, lookupVar
		}
		if v, ok := lc.frames[i].consts[name]; ok {
			return varInfo{}, v, lookupConst
		}
	}
	if v, ok := lc.env.consts[name]; ok {
		return varInfo{}, v, lookupConst
	}
	return varInfo{}, isa.Value{}, lookupMissing
}

const (
	lookupVar = iota
	lookupConst
	lookupMissing
)

// flattenConsts snapshots every visible compile-time binding (for fork
// bodies, which may reference enclosing constants but not runtime
// locals).
func (lc *lowerCtx) flattenConsts() map[string]isa.Value {
	out := map[string]isa.Value{}
	for _, f := range lc.frames {
		for k, v := range f.consts {
			out[k] = v
		}
	}
	return out
}

// --- block helpers ---

func (lc *lowerCtx) place(b *Block) {
	b.ID = len(lc.fn.Blocks)
	lc.fn.Blocks = append(lc.fn.Blocks, b)
	lc.cur = b
}

func (lc *lowerCtx) emit(in *Instr) {
	lc.env.irOps++
	lc.cur.Instrs = append(lc.cur.Instrs, in)
}

func (lc *lowerCtx) newTemp(t Type) VReg { return lc.fn.newVReg(t) }

// --- statements ---

func (lc *lowerCtx) stmts(nodes []*sexpr.Node) error {
	for i, n := range nodes {
		if err := lc.env.checkLowerBudget(); err != nil {
			return err
		}
		if lc.ret != nil && lc.ret.set {
			return errAt(n, "statement after (return ...)")
		}
		if n.Head() == "return" {
			if err := lc.lowerReturn(n); err != nil {
				return err
			}
			if i != len(nodes)-1 {
				return errAt(n, "(return ...) must be the last statement")
			}
			continue
		}
		if err := lc.stmt(n); err != nil {
			return err
		}
	}
	return nil
}

func (lc *lowerCtx) stmt(n *sexpr.Node) error {
	if n.Kind != sexpr.KList || len(n.List) == 0 {
		return errAt(n, "expected a statement, found %s", n)
	}
	switch n.Head() {
	case "set":
		return lc.lowerSet(n)
	case "let":
		return lc.lowerLet(n)
	case "if":
		return lc.lowerIf(n)
	case "while":
		return lc.lowerWhile(n)
	case "for":
		return lc.lowerFor(n)
	case "unroll":
		return lc.lowerUnroll(n)
	case "begin":
		return lc.stmts(n.List[1:])
	case "aset":
		return lc.lowerAset(n)
	case "fork":
		return lc.lowerFork(n.List[1:], n)
	case "join":
		return lc.lowerJoin(n)
	case "forall-static":
		return lc.lowerForallStatic(n)
	case "forall":
		return lc.lowerForallRuntime(n)
	case "return":
		return errAt(n, "(return ...) outside procedure body")
	default:
		// Procedure call as a statement.
		if fd, ok := lc.env.funcs[n.Head()]; ok {
			_, _, err := lc.inlineCall(fd, n)
			return err
		}
		return errAt(n, "unknown statement %q", n.Head())
	}
}

func (lc *lowerCtx) lowerReturn(n *sexpr.Node) error {
	if lc.ret == nil {
		return errAt(n, "(return ...) outside procedure body")
	}
	if len(n.List) != 2 {
		return errAt(n, "return wants one value")
	}
	src, typ, err := lc.expr(n.List[1])
	if err != nil {
		return err
	}
	lc.ret.src, lc.ret.typ, lc.ret.set = src, typ, true
	return nil
}

// lowerSet handles (set name expr): assignment to a local (creating it on
// first use) or to a scalar global (a store).
func (lc *lowerCtx) lowerSet(n *sexpr.Node) error {
	if len(n.List) != 3 || n.List[1].Kind != sexpr.KSymbol {
		return errAt(n, "set wants (set name expr)")
	}
	name := n.List[1].Sym
	mark := lc.fn.nextVReg
	src, typ, err := lc.expr(n.List[2])
	if err != nil {
		return err
	}
	vi, _, kind := lc.lookup(name)
	switch kind {
	case lookupConst:
		return errAt(n, "cannot set compile-time constant %q", name)
	case lookupVar:
		src, err = lc.coerce(n, src, typ, vi.typ)
		if err != nil {
			return err
		}
		if lc.retarget(mark, src, vi.reg) {
			return nil
		}
		lc.emit(&Instr{Op: movOp(vi.typ), Dst: vi.reg, Srcs: []Src{src}, Type: vi.typ})
		return nil
	}
	if g, ok := lc.env.globals[name]; ok {
		if g.size != 1 {
			return errAt(n, "cannot set array %q directly; use aset", name)
		}
		src, err = lc.coerce(n, src, typ, g.typ)
		if err != nil {
			return err
		}
		lc.emit(&Instr{
			Op: isa.OpStore, Srcs: []Src{src},
			Offset: g.addr, AddrConst: true, Alias: g.name,
		})
		return nil
	}
	// Implicit local declaration.
	v := lc.newTemp(typ)
	lc.bindVar(name, varInfo{reg: v, typ: typ})
	lc.emit(&Instr{Op: movOp(typ), Dst: v, Srcs: []Src{src}, Type: typ})
	return nil
}

// retarget avoids a copy when assigning an expression to a variable: if
// the expression's value is a fresh temporary produced by the last
// instruction of the current block, that instruction writes the variable
// directly. This keeps accumulator updates like (set s (+ s x)) to a
// single operation.
func (lc *lowerCtx) retarget(mark VReg, src Src, dst VReg) bool {
	if src.IsConst || src.VReg < mark || len(lc.cur.Instrs) == 0 {
		return false
	}
	last := lc.cur.Instrs[len(lc.cur.Instrs)-1]
	if last.Dst != src.VReg || last.isTerminator() {
		return false
	}
	last.Dst = dst
	return true
}

func movOp(t Type) isa.Opcode {
	if t == TFloat {
		return isa.OpFMov
	}
	return isa.OpMov
}

func (lc *lowerCtx) lowerLet(n *sexpr.Node) error {
	if len(n.List) < 3 || n.List[1].Kind != sexpr.KList {
		return errAt(n, "let wants (let ((name expr)...) body...)")
	}
	f := &frame{}
	lc.pushFrame(f)
	defer lc.popFrame()
	for _, bind := range n.List[1].List {
		if bind.Kind != sexpr.KList || len(bind.List) != 2 || bind.List[0].Kind != sexpr.KSymbol {
			return errAt(bind, "let binding wants (name expr)")
		}
		src, typ, err := lc.expr(bind.List[1])
		if err != nil {
			return err
		}
		v := lc.newTemp(typ)
		lc.emit(&Instr{Op: movOp(typ), Dst: v, Srcs: []Src{src}, Type: typ})
		f.vars[bind.List[0].Sym] = varInfo{reg: v, typ: typ}
	}
	return lc.stmts(n.List[2:])
}

func (lc *lowerCtx) lowerIf(n *sexpr.Node) error {
	if len(n.List) < 3 || len(n.List) > 4 {
		return errAt(n, "if wants (if cond then [else])")
	}
	cond, _, err := lc.expr(n.List[1])
	if err != nil {
		return err
	}
	if cond.IsConst {
		// Fold constant conditions at compile time.
		if cond.Const.Truthy() {
			return lc.stmt(n.List[2])
		}
		if len(n.List) == 4 {
			return lc.stmt(n.List[3])
		}
		return nil
	}
	thenB, endB := &Block{}, &Block{}
	if len(n.List) == 4 {
		elseB := &Block{}
		lc.emit(&Instr{Op: isa.OpBf, Srcs: []Src{cond}, Target: elseB})
		lc.place(thenB)
		if err := lc.stmt(n.List[2]); err != nil {
			return err
		}
		lc.emit(&Instr{Op: isa.OpJmp, Target: endB})
		lc.place(elseB)
		if err := lc.stmt(n.List[3]); err != nil {
			return err
		}
		lc.place(endB)
		return nil
	}
	lc.emit(&Instr{Op: isa.OpBf, Srcs: []Src{cond}, Target: endB})
	lc.place(thenB)
	if err := lc.stmt(n.List[2]); err != nil {
		return err
	}
	lc.place(endB)
	return nil
}

func (lc *lowerCtx) lowerWhile(n *sexpr.Node) error {
	if len(n.List) < 3 {
		return errAt(n, "while wants (while cond body...)")
	}
	header, body, exit := &Block{}, &Block{}, &Block{}
	lc.place(header)
	cond, _, err := lc.expr(n.List[1])
	if err != nil {
		return err
	}
	if cond.IsConst && !cond.Const.Truthy() {
		// while(false): drop the loop; the header's side effects stay.
		lc.place(exit)
		return nil
	}
	if !cond.IsConst {
		lc.emit(&Instr{Op: isa.OpBf, Srcs: []Src{cond}, Target: exit})
	}
	lc.place(body)
	if err := lc.stmts(n.List[2:]); err != nil {
		return err
	}
	lc.emit(&Instr{Op: isa.OpJmp, Target: header})
	lc.place(exit)
	return nil
}

// lowerFor handles (for (v lo hi [step]) body...): v runs from lo while
// v < hi, advancing by step (default 1). Bounds are evaluated once.
func (lc *lowerCtx) lowerFor(n *sexpr.Node) error {
	v, lo, hi, step, body, err := lc.loopParts(n)
	if err != nil {
		return err
	}
	// Automatic unrolling (extension): a counted loop whose trip count is
	// known at compile time and small enough expands like (unroll ...),
	// turning its body into straight-line code the scheduler can pack.
	if lim := lc.env.opts.AutoUnroll; lim > 0 && lo.IsConst && hi.IsConst && step.IsConst && !assignsVar(body, v) {
		stepN := step.Const.AsInt()
		if stepN > 0 {
			trips := (hi.Const.AsInt() - lo.Const.AsInt() + stepN - 1) / stepN
			if trips >= 0 && trips <= int64(lim) {
				for i := lo.Const.AsInt(); i < hi.Const.AsInt(); i += stepN {
					lc.pushFrame(&frame{consts: map[string]isa.Value{v: isa.Int(i)}})
					err := lc.stmts(body)
					lc.popFrame()
					if err != nil {
						return err
					}
				}
				return nil
			}
		}
	}
	f := &frame{}
	lc.pushFrame(f)
	defer lc.popFrame()

	iv := lc.newTemp(TInt)
	f.vars[v] = varInfo{reg: iv, typ: TInt}
	lc.emit(&Instr{Op: isa.OpMov, Dst: iv, Srcs: []Src{lo}, Type: TInt})
	// Hoist a non-constant bound into a register.
	hiSrc := hi
	if !hi.IsConst {
		hv := lc.newTemp(TInt)
		lc.emit(&Instr{Op: isa.OpMov, Dst: hv, Srcs: []Src{hi}, Type: TInt})
		hiSrc = vsrc(hv)
	}
	header, bodyB, exit := &Block{}, &Block{}, &Block{}
	lc.place(header)
	cond := lc.newTemp(TInt)
	lc.emit(&Instr{Op: isa.OpSlt, Dst: cond, Srcs: []Src{vsrc(iv), hiSrc}, Type: TInt})
	lc.emit(&Instr{Op: isa.OpBf, Srcs: []Src{vsrc(cond)}, Target: exit})
	lc.place(bodyB)
	if err := lc.stmts(body); err != nil {
		return err
	}
	lc.emit(&Instr{Op: isa.OpAdd, Dst: iv, Srcs: []Src{vsrc(iv), step}, Type: TInt})
	lc.emit(&Instr{Op: isa.OpJmp, Target: header})
	lc.place(exit)
	return nil
}

// lowerUnroll handles (unroll (v lo hi [step]) body...): the loop is
// fully expanded at compile time with v bound to each constant value
// ("loops must be unrolled by hand" in the paper — unroll is the
// mechanical form of that hand expansion).
func (lc *lowerCtx) lowerUnroll(n *sexpr.Node) error {
	v, lo, hi, step, body, err := lc.loopParts(n)
	if err != nil {
		return err
	}
	if !lo.IsConst || !hi.IsConst || !step.IsConst {
		return errAt(n, "unroll bounds must be compile-time constants")
	}
	stepN := step.Const.AsInt()
	if stepN == 0 {
		return errAt(n, "unroll step must be non-zero")
	}
	count := 0
	for i := lo.Const.AsInt(); i < hi.Const.AsInt(); i += stepN {
		if count++; count > 1_000_000 {
			return errAt(n, "unroll expansion too large")
		}
		lc.pushFrame(&frame{consts: map[string]isa.Value{v: isa.Int(i)}})
		err := lc.stmts(body)
		lc.popFrame()
		if err != nil {
			return err
		}
	}
	return nil
}

// assignsVar reports whether any statement in the trees assigns name
// (used to keep automatic unrolling conservative: an assigned loop
// variable cannot become a compile-time constant).
func assignsVar(nodes []*sexpr.Node, name string) bool {
	for _, n := range nodes {
		if n == nil || n.Kind != sexpr.KList {
			continue
		}
		if n.Head() == "set" && len(n.List) >= 2 && n.List[1].IsSym(name) {
			return true
		}
		if assignsVar(n.List, name) {
			return true
		}
	}
	return false
}

// loopParts parses the (v lo hi [step]) loop head shared by for/unroll/
// forall variants.
func (lc *lowerCtx) loopParts(n *sexpr.Node) (v string, lo, hi, step Src, body []*sexpr.Node, err error) {
	if len(n.List) < 3 || n.List[1].Kind != sexpr.KList || len(n.List[1].List) < 3 {
		err = errAt(n, "%s wants (%s (var lo hi [step]) body...)", n.Head(), n.Head())
		return
	}
	head := n.List[1].List
	if head[0].Kind != sexpr.KSymbol {
		err = errAt(n, "loop variable must be a symbol")
		return
	}
	v = head[0].Sym
	var t Type
	if lo, t, err = lc.expr(head[1]); err != nil {
		return
	}
	if t != TInt {
		err = errAt(head[1], "loop bound must be an int")
		return
	}
	if hi, t, err = lc.expr(head[2]); err != nil {
		return
	}
	if t != TInt {
		err = errAt(head[2], "loop bound must be an int")
		return
	}
	step = cint(1)
	if len(head) == 4 {
		if step, t, err = lc.expr(head[3]); err != nil {
			return
		}
		if t != TInt {
			err = errAt(head[3], "loop step must be an int")
			return
		}
	}
	body = n.List[2:]
	return
}

// lowerAset handles (aset A idx val [sync]).
func (lc *lowerCtx) lowerAset(n *sexpr.Node) error {
	if len(n.List) < 4 || len(n.List) > 5 {
		return errAt(n, "aset wants (aset array index value [sync])")
	}
	if n.List[1].Kind != sexpr.KSymbol {
		return errAt(n, "aset array must be a global name")
	}
	g, ok := lc.env.globals[n.List[1].Sym]
	if !ok {
		return errAt(n, "unknown global %q", n.List[1].Sym)
	}
	idx, it, err := lc.expr(n.List[2])
	if err != nil {
		return err
	}
	if it != TInt {
		return errAt(n.List[2], "array index must be an int")
	}
	val, vt, err := lc.expr(n.List[3])
	if err != nil {
		return err
	}
	val, err = lc.coerce(n, val, vt, g.typ)
	if err != nil {
		return err
	}
	sync := isa.SyncNone
	if len(n.List) == 5 {
		switch {
		case n.List[4].IsSym("produce"):
			sync = isa.SyncProduce
		case n.List[4].IsSym("waitfull"):
			sync = isa.SyncWaitFull
		default:
			return errAt(n.List[4], "store sync must be produce or waitfull")
		}
	}
	in := &Instr{Op: isa.OpStore, Sync: sync, Srcs: []Src{val}, Alias: g.name}
	if idx.IsConst {
		in.Offset = g.addr + idx.Const.AsInt()
		in.AddrConst = true
	} else {
		in.Offset = g.addr
		in.Srcs = append(in.Srcs, idx)
	}
	lc.emit(in)
	return nil
}

// lowerFork compiles (fork body...) — the body becomes a separately
// compiled segment running concurrently with this thread. Fork bodies may
// reference globals and compile-time constants, not the parent's runtime
// locals (threads communicate through memory, as in the paper).
func (lc *lowerCtx) lowerFork(body []*sexpr.Node, n *sexpr.Node) error {
	if len(body) == 0 {
		return errAt(n, "fork wants a body")
	}
	flag := lc.env.newSyncCell("fk")
	name := lc.env.genName(lc.work.name, "f")
	lc.env.nextRotation++
	lc.env.segs = append(lc.env.segs, segWork{
		name: name, body: body, consts: lc.flattenConsts(),
		doneAddr: flag, mailboxAddr: -1, rotation: lc.env.nextRotation,
	})
	lc.forkFlags = append(lc.forkFlags, flag)
	lc.emit(&Instr{Op: isa.OpFork, ForkSeg: name})
	return nil
}

// lowerJoin waits (via consuming loads of completion cells) for every
// fork issued so far by this segment.
func (lc *lowerCtx) lowerJoin(n *sexpr.Node) error {
	if len(n.List) != 1 {
		return errAt(n, "join takes no arguments")
	}
	lc.joinFlags(lc.forkFlags)
	lc.forkFlags = nil
	return nil
}

func (lc *lowerCtx) joinFlags(flags []int64) {
	for _, flag := range flags {
		d := lc.newTemp(TInt)
		lc.emit(&Instr{
			Op: isa.OpLoad, Dst: d, Sync: isa.SyncConsume,
			Offset: flag, AddrConst: true, Alias: lc.env.cellAlias(flag), Type: TInt,
		})
	}
}

// lowerForallStatic expands (forall-static (v lo hi) body...) into one
// fork per iteration with v bound to a compile-time constant, followed by
// a join of exactly those forks.
func (lc *lowerCtx) lowerForallStatic(n *sexpr.Node) error {
	v, lo, hi, step, body, err := lc.loopParts(n)
	if err != nil {
		return err
	}
	if !lo.IsConst || !hi.IsConst || !step.IsConst {
		return errAt(n, "forall-static bounds must be compile-time constants")
	}
	mark := len(lc.forkFlags)
	stepN := step.Const.AsInt()
	if stepN <= 0 {
		return errAt(n, "forall-static step must be positive")
	}
	for i := lo.Const.AsInt(); i < hi.Const.AsInt(); i += stepN {
		lc.pushFrame(&frame{consts: map[string]isa.Value{v: isa.Int(i)}})
		err := lc.lowerFork(body, n)
		lc.popFrame()
		if err != nil {
			return err
		}
	}
	lc.joinFlags(lc.forkFlags[mark:])
	lc.forkFlags = lc.forkFlags[:mark]
	return nil
}

// lowerForallRuntime handles (forall (v lo hi) body...) with bounds known
// only at runtime. The iteration space is partitioned over K worker
// segments (K = number of arithmetic clusters, giving static load
// balance in single-cluster mode); each spawned worker thread receives
// one index through a produce/consume mailbox and signals one completion
// through a shared done cell, which the parent consumes (hi-lo) times.
func (lc *lowerCtx) lowerForallRuntime(n *sexpr.Node) error {
	v, lo, hi, step, body, err := lc.loopParts(n)
	if err != nil {
		return err
	}
	if step.IsConst && step.Const.AsInt() != 1 {
		return errAt(n, "forall supports only step 1")
	}
	k := len(lc.env.cfg.ArithClusters())
	if k < 1 {
		k = 1
	}
	done := lc.env.newSyncCell("dn")
	doneAlias := lc.env.cellAlias(done)

	// Hoist bounds.
	loV := lc.newTemp(TInt)
	lc.emit(&Instr{Op: isa.OpMov, Dst: loV, Srcs: []Src{lo}, Type: TInt})
	hiV := lc.newTemp(TInt)
	lc.emit(&Instr{Op: isa.OpMov, Dst: hiV, Srcs: []Src{hi}, Type: TInt})

	consts := lc.flattenConsts()
	for r := 0; r < k; r++ {
		mb := lc.env.newSyncCell("mb")
		name := lc.env.genName(lc.work.name, fmt.Sprintf("w%d_", r))
		lc.env.segs = append(lc.env.segs, segWork{
			name: name, body: body, consts: consts,
			doneAddr: done, mailboxAddr: mb, mailboxVar: v, rotation: r,
		})
		// for t = lo+r; t < hi; t += k { produce(mb, t); fork worker }
		iv := lc.newTemp(TInt)
		lc.emit(&Instr{Op: isa.OpAdd, Dst: iv, Srcs: []Src{vsrc(loV), cint(int64(r))}, Type: TInt})
		header, bodyB, exit := &Block{}, &Block{}, &Block{}
		lc.place(header)
		cond := lc.newTemp(TInt)
		lc.emit(&Instr{Op: isa.OpSlt, Dst: cond, Srcs: []Src{vsrc(iv), vsrc(hiV)}, Type: TInt})
		lc.emit(&Instr{Op: isa.OpBf, Srcs: []Src{vsrc(cond)}, Target: exit})
		lc.place(bodyB)
		lc.emit(&Instr{
			Op: isa.OpStore, Sync: isa.SyncProduce,
			Srcs: []Src{vsrc(iv)}, Offset: mb, AddrConst: true, Alias: lc.env.cellAlias(mb),
		})
		lc.emit(&Instr{Op: isa.OpFork, ForkSeg: name})
		lc.emit(&Instr{Op: isa.OpAdd, Dst: iv, Srcs: []Src{vsrc(iv), cint(int64(k))}, Type: TInt})
		lc.emit(&Instr{Op: isa.OpJmp, Target: header})
		lc.place(exit)
	}
	// Join: consume (hi-lo) completions.
	cnt := lc.newTemp(TInt)
	lc.emit(&Instr{Op: isa.OpSub, Dst: cnt, Srcs: []Src{vsrc(hiV), vsrc(loV)}, Type: TInt})
	jv := lc.newTemp(TInt)
	lc.emit(&Instr{Op: isa.OpMov, Dst: jv, Srcs: []Src{cint(0)}, Type: TInt})
	header, bodyB, exit := &Block{}, &Block{}, &Block{}
	lc.place(header)
	cond := lc.newTemp(TInt)
	lc.emit(&Instr{Op: isa.OpSlt, Dst: cond, Srcs: []Src{vsrc(jv), vsrc(cnt)}, Type: TInt})
	lc.emit(&Instr{Op: isa.OpBf, Srcs: []Src{vsrc(cond)}, Target: exit})
	lc.place(bodyB)
	d := lc.newTemp(TInt)
	lc.emit(&Instr{
		Op: isa.OpLoad, Dst: d, Sync: isa.SyncConsume,
		Offset: done, AddrConst: true, Alias: doneAlias, Type: TInt,
	})
	lc.emit(&Instr{Op: isa.OpAdd, Dst: jv, Srcs: []Src{vsrc(jv), cint(1)}, Type: TInt})
	lc.emit(&Instr{Op: isa.OpJmp, Target: header})
	lc.place(exit)
	return nil
}
