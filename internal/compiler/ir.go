package compiler

import (
	"fmt"
	"strings"

	"pcoup/internal/isa"
)

// Type is the static type of an expression or virtual register.
type Type int

const (
	// TInt is the 64-bit integer type.
	TInt Type = iota
	// TFloat is the 64-bit floating-point type.
	TFloat
)

func (t Type) String() string {
	if t == TFloat {
		return "float"
	}
	return "int"
}

// VReg names a virtual register; 0 is "none". The compiler assumes an
// unbounded register space (as in the paper) and reports peak usage.
type VReg int

// Src is one operand of an IR instruction: a virtual register or a
// constant.
type Src struct {
	VReg    VReg
	Const   isa.Value
	IsConst bool
}

func vsrc(v VReg) Src      { return Src{VReg: v} }
func csrc(v isa.Value) Src { return Src{Const: v, IsConst: true} }
func cint(i int64) Src     { return csrc(isa.Int(i)) }

func (s Src) String() string {
	if s.IsConst {
		return "#" + s.Const.String()
	}
	return fmt.Sprintf("v%d", s.VReg)
}

// Instr is one IR instruction in three-address form. Control instructions
// (jmp/bt/bf) appear only as block terminators; fork and halt are ordinary
// instructions executed by branch units.
type Instr struct {
	Op   isa.Opcode
	Dst  VReg // 0 when the instruction produces no value
	Srcs []Src

	// Memory instruction fields.
	Offset int64          // constant part of the effective address
	Sync   isa.SyncFlavor // presence-bit discipline
	Alias  string         // global the address is within ("" = unknown)
	// AddrConst reports that the address is entirely in Offset (no
	// register components), enabling exact alias disambiguation.
	AddrConst bool

	// Control fields.
	Target  *Block // branch target
	ForkSeg string // fork target segment name

	Type Type // result type of Dst
}

func (in *Instr) isTerminator() bool {
	switch in.Op {
	case isa.OpJmp, isa.OpBt, isa.OpBf:
		return true
	}
	return false
}

func (in *Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Sync != isa.SyncNone {
		b.WriteString("." + in.Sync.String())
	}
	if in.Dst != 0 {
		fmt.Fprintf(&b, " v%d <-", in.Dst)
	}
	for _, s := range in.Srcs {
		b.WriteString(" " + s.String())
	}
	if in.Op == isa.OpLoad || in.Op == isa.OpStore {
		fmt.Fprintf(&b, " @%d[%s]", in.Offset, in.Alias)
	}
	if in.Target != nil {
		fmt.Fprintf(&b, " ->b%d", in.Target.ID)
	}
	if in.ForkSeg != "" {
		fmt.Fprintf(&b, " ->%s", in.ForkSeg)
	}
	return b.String()
}

// Block is a basic block: straight-line instructions with at most one
// terminator (jmp/bt/bf) as the final instruction. When the final
// instruction is a conditional branch (or the block has no terminator),
// control falls through to the next block in layout order.
type Block struct {
	ID     int
	Instrs []*Instr
}

// terminator returns the block's terminator instruction, or nil.
func (b *Block) terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.isTerminator() {
		return last
	}
	return nil
}

// Fn is one compiled thread body in IR form.
type Fn struct {
	Name   string
	Blocks []*Block // layout order; fallthrough goes to the next entry
	// nextVReg allocates virtual registers.
	nextVReg VReg
	// vregType records the type of each allocated vreg.
	vregType map[VReg]Type
}

func newFn(name string) *Fn {
	return &Fn{Name: name, nextVReg: 1, vregType: make(map[VReg]Type)}
}

func (f *Fn) newVReg(t Type) VReg {
	v := f.nextVReg
	f.nextVReg++
	f.vregType[v] = t
	return v
}

func (f *Fn) typeOf(v VReg) Type { return f.vregType[v] }

func (f *Fn) newBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// succs returns the blocks control may reach from block index i.
func (f *Fn) succs(i int) []*Block {
	b := f.Blocks[i]
	var out []*Block
	term := b.terminator()
	if term != nil {
		out = append(out, term.Target)
		if term.Op == isa.OpJmp {
			return out
		}
	} else if len(b.Instrs) > 0 && b.Instrs[len(b.Instrs)-1].Op == isa.OpHalt {
		return nil
	}
	if i+1 < len(f.Blocks) {
		out = append(out, f.Blocks[i+1])
	}
	return out
}

// String renders the function's IR (debugging aid).
func (f *Fn) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fn %s:\n", f.Name)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, " b%d:\n", blk.ID)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "   %s\n", in)
		}
	}
	return b.String()
}

// liveness computes, for each block index, the set of vregs live on entry.
// Standard backward dataflow over the CFG.
func (f *Fn) liveness() []map[VReg]bool {
	n := len(f.Blocks)
	use := make([]map[VReg]bool, n)
	def := make([]map[VReg]bool, n)
	for i, b := range f.Blocks {
		use[i] = map[VReg]bool{}
		def[i] = map[VReg]bool{}
		for _, in := range b.Instrs {
			for _, s := range in.Srcs {
				if !s.IsConst && !def[i][s.VReg] {
					use[i][s.VReg] = true
				}
			}
			if in.Dst != 0 {
				def[i][in.Dst] = true
			}
		}
	}
	liveIn := make([]map[VReg]bool, n)
	liveOut := make([]map[VReg]bool, n)
	for i := range liveIn {
		liveIn[i] = map[VReg]bool{}
		liveOut[i] = map[VReg]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := map[VReg]bool{}
			for _, s := range f.succs(i) {
				for v := range liveIn[s.ID] {
					out[v] = true
				}
			}
			in := map[VReg]bool{}
			for v := range use[i] {
				in[v] = true
			}
			for v := range out {
				if !def[i][v] {
					in[v] = true
				}
			}
			if len(in) != len(liveIn[i]) || len(out) != len(liveOut[i]) {
				changed = true
			} else {
				for v := range in {
					if !liveIn[i][v] {
						changed = true
						break
					}
				}
			}
			liveIn[i] = in
			liveOut[i] = out
		}
	}
	return liveIn
}

// crossBlockVRegs returns the set of vregs that are live across a block
// boundary (live-in to some block). These must reside in a stable home
// cluster between blocks.
func (f *Fn) crossBlockVRegs() map[VReg]bool {
	out := map[VReg]bool{}
	for _, in := range f.liveness() {
		for v := range in {
			out[v] = true
		}
	}
	return out
}

// loopBlocks returns the set of block IDs that lie on a CFG cycle
// (used to report the compile-time schedule length of loop bodies,
// Table 3).
func (f *Fn) loopBlocks() map[int]bool {
	n := len(f.Blocks)
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		for _, s := range f.succs(i) {
			reach[i][s.ID] = true
		}
	}
	// Floyd-Warshall style closure (n is small).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	out := map[int]bool{}
	for i := 0; i < n; i++ {
		if reach[i][i] {
			out[i] = true
		}
	}
	return out
}
