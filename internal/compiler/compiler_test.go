package compiler

import (
	"strings"
	"testing"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

func compileOK(t *testing.T, src string, opts Options) (*isa.Program, *Diagnostics) {
	t.Helper()
	prog, diags, err := Compile(src, machine.Baseline(), opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog, diags
}

func compileErr(t *testing.T, src string) error {
	t.Helper()
	_, _, err := Compile(src, machine.Baseline(), Options{})
	if err == nil {
		t.Fatalf("compile accepted invalid program:\n%s", src)
	}
	return err
}

func TestErrorCases(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no main", `(program p (def (f) (set x 1)))`, "no (def (main)"},
		{"unknown var", `(program p (def (main) (set x y)))`, "unknown variable"},
		{"unknown stmt", `(program p (def (main) (frobnicate 1)))`, "unknown statement"},
		{"set const", `(program p (const k 3) (def (main) (set k 4)))`, "compile-time constant"},
		{"float to int", `(program p (def (main) (set x 1) (set x 2.5)))`, "convert float to int"},
		{"array as value", `(program p (global a (array int 4)) (def (main) (set x a)))`, "used as a value"},
		{"set array", `(program p (global a (array int 4)) (def (main) (set a 1)))`, "use aset"},
		{"recursion", `(program p (def (f x) (f x)) (def (main) (f 1)))`, "macro-expanded"},
		{"bad unroll bounds", `(program p (def (main) (set n 3) (unroll (i 0 n) (set x i))))`, "compile-time constants"},
		{"float index", `(program p (global a (array int 4)) (def (main) (set x (aref a 1.5))))`, "index must be an int"},
		{"bad sync", `(program p (global a (array int 4)) (def (main) (set x (aref a 0 bogus))))`, "waitfull or consume"},
		{"mod float", `(program p (def (main) (set x (% 3.5 2))))`, "int operands"},
		{"return outside", `(program p (def (main) (return 3)))`, "outside procedure"},
		{"wrong arity", `(program p (def (f a b) (return (+ a b))) (def (main) (set x (f 1))))`, "wants 2 arguments"},
		{"fork captures local", `(program p (def (main) (set x 1) (fork (aset q 0 x))))`, ""},
		{"dup global", `(program p (global a int) (global a int) (def (main) (set x 1)))`, "duplicate global"},
		{"dup const", `(program p (const k 1) (const k 2) (def (main) (set x 1)))`, "duplicate const"},
		{"init too long", `(program p (global a (array int 2) (init 1 2 3)) (def (main) (set x 1)))`, "init has"},
		{"main with params", `(program p (def (main x) (set y x)))`, "no parameters"},
		{"stmt after return", `(program p (def (f) (return 1) (set x 2)) (def (main) (set z (f))))`, ""},
	}
	for _, c := range cases {
		err := compileErr(t, c.src)
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	// A program of pure constant arithmetic must compile to stores of
	// immediates: no IU or FPU operations at all.
	src := `
(program p
  (const n 6)
  (global out (array float 2))
  (def (main)
    (set a (* n 7))
    (set b (+ a 1 2))
    (aset out 0 (float b))
    (aset out 1 (* 2.5 (+ 1.5 0.5)))))`
	prog, diags := compileOK(t, src, Options{})
	d, _ := diags.Diag("main")
	// Expect only two stores plus a halt.
	if d.Ops != 3 {
		t.Errorf("ops = %d, want 3 (two stores + halt)", d.Ops)
	}
	found := false
	for _, in := range prog.Segments[0].Instrs {
		for _, op := range in.Ops {
			if op == nil {
				continue
			}
			if op.Code == isa.OpStore && op.Srcs[0].Kind == isa.OperandImm && op.Srcs[0].Imm.AsInt() == 45 {
				found = true
			}
			switch op.Code.Unit() {
			case machine.IU, machine.FPU:
				t.Errorf("residual arithmetic op %s", op)
			}
		}
	}
	if !found {
		t.Error("folded store of 45 not found")
	}
}

func TestCSEEliminatesRedundantLoads(t *testing.T) {
	// Loading the same element twice in a block must produce one load.
	src := `
(program p
  (global a (array float 8) (init 1.0 2.0))
  (global out (array float 1))
  (def (main)
    (aset out 0 (* (aref a 1) (aref a 1)))))`
	prog, _ := compileOK(t, src, Options{})
	loads := 0
	for _, in := range prog.Segments[0].Instrs {
		for _, op := range in.Ops {
			if op != nil && op.Code == isa.OpLoad {
				loads++
			}
		}
	}
	if loads != 1 {
		t.Errorf("loads = %d, want 1 (CSE)", loads)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	src := `
(program p
  (global a (array int 4))
  (global out (array int 1))
  (def (main)
    (aset a 2 41)
    (aset out 0 (+ (aref a 2) 1))))`
	prog, _ := compileOK(t, src, Options{})
	loads := 0
	var storedImm []int64
	for _, in := range prog.Segments[0].Instrs {
		for _, op := range in.Ops {
			if op == nil {
				continue
			}
			if op.Code == isa.OpLoad {
				loads++
			}
			if op.Code == isa.OpStore && op.Srcs[0].Kind == isa.OperandImm {
				storedImm = append(storedImm, op.Srcs[0].Imm.AsInt())
			}
		}
	}
	if loads != 0 {
		t.Errorf("loads = %d, want 0 (store-to-load forwarding)", loads)
	}
	// The forwarded value folds to an immediate 42 store.
	has42 := false
	for _, v := range storedImm {
		if v == 42 {
			has42 = true
		}
	}
	if !has42 {
		t.Errorf("stores = %v, want one of 42", storedImm)
	}
}

func TestDCERemovesDeadCode(t *testing.T) {
	src := `
(program p
  (global out (array int 1))
  (def (main)
    (set unused (* 3 4))
    (set dead (+ unused 1))
    (aset out 0 7)))`
	_, diags := compileOK(t, src, Options{})
	d, _ := diags.Diag("main")
	if d.Ops != 2 {
		t.Errorf("ops = %d, want 2 (store + halt)", d.Ops)
	}
}

func TestSyncLoadsSurviveDCE(t *testing.T) {
	// A consuming load whose value is unused still synchronizes and must
	// not be eliminated.
	src := `
(program p
  (global flag int empty)
  (global out (array int 1))
  (def (main)
    (fork (aset flag 0 1))
    (set x (aref flag 0 waitfull))
    (aset out 0 5)))`
	prog, _ := compileOK(t, src, Options{})
	syncLoads := 0
	for _, seg := range prog.Segments {
		for _, in := range seg.Instrs {
			for _, op := range in.Ops {
				if op != nil && op.Code == isa.OpLoad && op.Sync != isa.SyncNone {
					syncLoads++
				}
			}
		}
	}
	if syncLoads == 0 {
		t.Error("synchronizing load was eliminated")
	}
}

func TestAddressFoldingIntoMemoryOps(t *testing.T) {
	// The memory units perform address arithmetic: (aref a (+ x y)) must
	// compile to a load with two register address components, not an IU
	// add feeding the load.
	src := `
(program p
  (global a (array int 100))
  (global out (array int 1))
  (def (main)
    (set x 3)
    (set y 4)
    (aset out 0 (aref a (+ x y)))))`
	prog, _ := compileOK(t, src, Options{DisableOpt: false})
	for _, in := range prog.Segments[0].Instrs {
		for _, op := range in.Ops {
			if op != nil && op.Code == isa.OpLoad && len(op.SrcRegs()) >= 1 {
				return // folded form found (constants propagate x,y here, so any load suffices)
			}
			if op != nil && op.Code == isa.OpLoad && op.Srcs == nil {
				return // fully constant-folded address is even better
			}
		}
	}
	// With constant propagation x+y folds entirely; accept either.
}

func TestDisableOpt(t *testing.T) {
	src := `
(program p
  (global out (array int 1))
  (def (main)
    (set a (* 3 4))
    (aset out 0 (+ a a))))`
	_, d1 := compileOK(t, src, Options{})
	_, d2 := compileOK(t, src, Options{DisableOpt: true})
	o1, _ := d1.Diag("main")
	o2, _ := d2.Diag("main")
	if o2.Ops <= o1.Ops {
		t.Errorf("unoptimized ops (%d) should exceed optimized (%d)", o2.Ops, o1.Ops)
	}
}

func TestBranchFoldingRemovesDeadArm(t *testing.T) {
	src := `
(program p
  (global out (array int 1))
  (def (main)
    (if (< 1 2)
        (aset out 0 1)
        (aset out 0 2))))`
	prog, _ := compileOK(t, src, Options{})
	for _, in := range prog.Segments[0].Instrs {
		for _, op := range in.Ops {
			if op != nil && (op.IsBranch() || (op.Code == isa.OpStore && op.Srcs[0].Kind == isa.OperandImm && op.Srcs[0].Imm.AsInt() == 2)) {
				t.Errorf("dead branch arm survived: %s", op)
			}
		}
	}
}

func TestSingleClusterRestriction(t *testing.T) {
	// In single-cluster mode every non-branch op must sit in one cluster.
	src := `
(program p
  (global a (array float 16) (init 1.0 2.0 3.0 4.0))
  (global out (array float 16))
  (def (main)
    (for (i 0 16)
      (aset out i (* (aref a i) 2.0)))))`
	cfg := machine.Baseline()
	prog, _, err := Compile(src, cfg, Options{Mode: SingleCluster})
	if err != nil {
		t.Fatal(err)
	}
	units := cfg.Units()
	clusters := map[int]bool{}
	for _, in := range prog.Segments[0].Instrs {
		for slot, op := range in.Ops {
			if op == nil || op.Code.Unit() == machine.BR {
				continue
			}
			clusters[units[slot].Cluster] = true
		}
	}
	if len(clusters) != 1 {
		t.Errorf("single-cluster code spread over clusters %v", clusters)
	}
}

func TestRotationSpreadsThreads(t *testing.T) {
	// Different forked segments must get different cluster assignments in
	// single-cluster mode (static load balancing).
	src := `
(program p
  (global out (array int 8))
  (def (main)
    (forall-static (i 0 4)
      (aset out i (* i 2)))))`
	cfg := machine.Baseline()
	prog, _, err := Compile(src, cfg, Options{Mode: SingleCluster})
	if err != nil {
		t.Fatal(err)
	}
	units := cfg.Units()
	segCluster := map[string]int{}
	for _, seg := range prog.Segments[1:] {
		for _, in := range seg.Instrs {
			for slot, op := range in.Ops {
				if op == nil || op.Code.Unit() == machine.BR {
					continue
				}
				segCluster[seg.Name] = units[slot].Cluster
			}
		}
	}
	used := map[int]bool{}
	for _, c := range segCluster {
		used[c] = true
	}
	if len(used) < 3 {
		t.Errorf("forked threads concentrated on clusters %v", segCluster)
	}
}

func TestMaxDestsRespected(t *testing.T) {
	// A value consumed in many clusters must be distributed with explicit
	// moves once the producer's destination slots are exhausted; the
	// emitted program must satisfy MaxDests (checked by Validate inside
	// Compile) and still be correct.
	src := `
(program p
  (global out (array float 8))
  (def (main)
    (set x (* 1.5 2.0))
    (unroll (i 0 8)
      (aset out i (+ x (float i))))))`
	prog, diags := compileOK(t, src, Options{})
	_ = prog
	d, _ := diags.Diag("main")
	if d.Ops == 0 {
		t.Fatal("no ops")
	}
}

func TestDiagnosticsShape(t *testing.T) {
	src := `
(program p
  (global out (array int 4))
  (def (main)
    (for (i 0 4)
      (aset out i i))))`
	_, diags := compileOK(t, src, Options{})
	d, ok := diags.Diag("main")
	if !ok {
		t.Fatal("main diagnostics missing")
	}
	if d.Words <= 0 || d.Ops <= 0 {
		t.Errorf("diag = %+v", d)
	}
	if d.LoopWords <= 0 {
		t.Errorf("loop words = %d, want > 0 for a loop", d.LoopWords)
	}
	if len(d.BlockWords) == 0 {
		t.Error("block words missing")
	}
	sum := 0
	for _, w := range d.BlockWords {
		sum += w
	}
	if sum != d.Words {
		t.Errorf("block words sum %d != total %d", sum, d.Words)
	}
	if _, ok := diags.Diag("nonexistent"); ok {
		t.Error("Diag found nonexistent segment")
	}
}

func TestRegCountReported(t *testing.T) {
	src := `
(program p
  (global in (array float 2) (init 1.0 2.0))
  (global out (array float 1))
  (def (main)
    (set a (aref in 0)) (set b (aref in 1)) (set c (+ a b))
    (aset out 0 c)))`
	prog, diags := compileOK(t, src, Options{})
	d, _ := diags.Diag("main")
	total := 0
	for _, n := range d.RegsPerCluster {
		total += n
	}
	if total == 0 {
		t.Error("register usage not reported")
	}
	if len(prog.Segments[0].RegCount) != len(machine.Baseline().Clusters) {
		t.Errorf("RegCount length %d", len(prog.Segments[0].RegCount))
	}
}
