package compiler

import (
	"fmt"

	"pcoup/internal/isa"
)

// emit schedules every lowered function and assembles the final program:
// wide instruction words per segment, resolved branch and fork targets,
// physical register assignment per cluster, and the initial data image.
func (e *env) emit() (*isa.Program, *Diagnostics, error) {
	prog := &isa.Program{Name: e.progName, MemWords: e.memWords()}
	diags := &Diagnostics{}

	segIdx := map[string]int{}
	for i := range e.segs {
		segIdx[e.segs[i].name] = i
	}

	for i, fn := range e.fns {
		seg, d, err := e.emitSegment(fn, &e.segs[i], segIdx)
		if err != nil {
			return nil, nil, err
		}
		prog.Segments = append(prog.Segments, seg)
		diags.Segments = append(diags.Segments, d)
	}

	for _, name := range e.globalOrder {
		g := e.globals[name]
		vals := make([]isa.Value, g.size)
		if g.typ == TFloat {
			for i := range vals {
				vals[i] = isa.Float(0)
			}
		}
		copy(vals, g.init)
		prog.Data = append(prog.Data, isa.DataSegment{
			Name: g.name, Addr: g.addr, Values: vals, Full: !g.empty,
		})
	}
	return prog, diags, nil
}

// regAlloc assigns physical register indices per (vreg, cluster) pair.
type regAlloc struct {
	index map[VReg]map[int]int
	next  []int
}

func newRegAlloc(numClusters int) *regAlloc {
	return &regAlloc{index: map[VReg]map[int]int{}, next: make([]int, numClusters)}
}

func (ra *regAlloc) reg(v VReg, cluster int) isa.RegRef {
	m := ra.index[v]
	if m == nil {
		m = map[int]int{}
		ra.index[v] = m
	}
	idx, ok := m[cluster]
	if !ok {
		idx = ra.next[cluster]
		ra.next[cluster]++
		m[cluster] = idx
	}
	return isa.RegRef{Cluster: cluster, Index: idx}
}

func (e *env) emitSegment(fn *Fn, w *segWork, segIdx map[string]int) (*isa.ThreadCode, SegDiag, error) {
	sc := newScheduler(e, fn, w)
	ra := newRegAlloc(len(e.cfg.Clusters))
	numUnits := e.cfg.NumUnits()

	// Pass 1: schedule all blocks and record start word indexes.
	scheds := make([]*blockSched, len(fn.Blocks))
	blockStart := make([]int, len(fn.Blocks)+1)
	words := 0
	for i, b := range fn.Blocks {
		blockStart[i] = words
		scheds[i] = sc.scheduleBlock(b)
		words += len(scheds[i].words)
	}
	blockStart[len(fn.Blocks)] = words

	loop := fn.loopBlocks()
	diag := SegDiag{Name: fn.Name, Moves: sc.moves}

	seg := &isa.ThreadCode{Name: fn.Name}
	for bi, bs := range scheds {
		diag.BlockWords = append(diag.BlockWords, len(bs.words))
		if loop[bi] {
			diag.LoopWords += len(bs.words)
		}
		for _, word := range bs.words {
			instr := isa.Instruction{Ops: make([]*isa.Op, numUnits)}
			for _, po := range word {
				op, err := e.buildOp(po, sc, ra, blockStart, segIdx)
				if err != nil {
					return nil, SegDiag{}, err
				}
				if instr.Ops[po.unit] != nil {
					return nil, SegDiag{}, fmt.Errorf("compiler: internal: %s: double-booked unit %d", fn.Name, po.unit)
				}
				instr.Ops[po.unit] = op
				diag.Ops++
			}
			seg.Instrs = append(seg.Instrs, instr)
		}
	}
	seg.ScheduleLen = len(seg.Instrs)
	seg.RegCount = append([]int{}, ra.next...)
	diag.Words = len(seg.Instrs)
	diag.RegsPerCluster = append([]int{}, ra.next...)
	return seg, diag, nil
}

// buildOp converts one placed IR instruction into an ISA operation.
func (e *env) buildOp(po *placedOp, sc *scheduler, ra *regAlloc, blockStart []int, segIdx map[string]int) (*isa.Op, error) {
	in := po.ir
	cu := sc.cluster(po.unit)
	op := &isa.Op{Code: in.Op, Sync: in.Sync, Unit: po.unit, Offset: in.Offset}

	for _, s := range in.Srcs {
		if s.IsConst {
			op.Srcs = append(op.Srcs, isa.Imm(s.Const))
		} else {
			op.Srcs = append(op.Srcs, isa.Reg(ra.reg(s.VReg, cu)))
		}
	}
	if in.Dst != 0 {
		if len(po.destClusters) == 0 {
			return nil, fmt.Errorf("compiler: internal: op %s has no destination cluster", in)
		}
		if len(po.destClusters) > e.cfg.MaxDests {
			return nil, fmt.Errorf("compiler: internal: op %s exceeds %d destinations", in, e.cfg.MaxDests)
		}
		seen := map[int]bool{}
		for _, c := range po.destClusters {
			if seen[c] {
				continue
			}
			seen[c] = true
			op.Dests = append(op.Dests, ra.reg(in.Dst, c))
		}
	}
	switch in.Op {
	case isa.OpJmp, isa.OpBt, isa.OpBf:
		if in.Target == nil {
			return nil, fmt.Errorf("compiler: internal: branch without target")
		}
		op.Target = blockStart[in.Target.ID]
		op.TargetLabel = ""
	case isa.OpFork:
		idx, ok := segIdx[in.ForkSeg]
		if !ok {
			return nil, fmt.Errorf("compiler: internal: unknown fork segment %q", in.ForkSeg)
		}
		op.Target = idx
	}
	return op, nil
}
