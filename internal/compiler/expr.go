package compiler

import (
	"pcoup/internal/isa"
	"pcoup/internal/sexpr"
)

// expr lowers an expression, returning its value as a Src (virtual
// register or compile-time constant) and its static type. Expressions
// with constant operands are evaluated statically (one of the paper
// compiler's optimizations).
func (lc *lowerCtx) expr(n *sexpr.Node) (Src, Type, error) {
	switch n.Kind {
	case sexpr.KInt:
		return cint(n.Int), TInt, nil
	case sexpr.KFloat:
		return csrc(isa.Float(n.Float)), TFloat, nil
	case sexpr.KSymbol:
		return lc.symbolExpr(n)
	case sexpr.KList:
		return lc.listExpr(n)
	}
	return Src{}, TInt, errAt(n, "invalid expression %s", n)
}

func (lc *lowerCtx) symbolExpr(n *sexpr.Node) (Src, Type, error) {
	vi, cv, kind := lc.lookup(n.Sym)
	switch kind {
	case lookupVar:
		return vsrc(vi.reg), vi.typ, nil
	case lookupConst:
		t := TInt
		if cv.IsFloat {
			t = TFloat
		}
		return csrc(cv), t, nil
	}
	if g, ok := lc.env.globals[n.Sym]; ok {
		if g.size != 1 {
			return Src{}, TInt, errAt(n, "array %q used as a value (use aref or addr)", n.Sym)
		}
		dst := lc.newTemp(g.typ)
		lc.emit(&Instr{
			Op: isa.OpLoad, Dst: dst, Offset: g.addr, AddrConst: true,
			Alias: g.name, Type: g.typ,
		})
		return vsrc(dst), g.typ, nil
	}
	return Src{}, TInt, errAt(n, "unknown variable %q (fork bodies cannot capture parent locals; use globals)", n.Sym)
}

func (lc *lowerCtx) listExpr(n *sexpr.Node) (Src, Type, error) {
	head := n.Head()
	switch head {
	case "aref":
		return lc.lowerAref(n)
	case "addr":
		if len(n.List) != 2 || n.List[1].Kind != sexpr.KSymbol {
			return Src{}, TInt, errAt(n, "addr wants a global name")
		}
		g, ok := lc.env.globals[n.List[1].Sym]
		if !ok {
			return Src{}, TInt, errAt(n, "unknown global %q", n.List[1].Sym)
		}
		return cint(g.addr), TInt, nil
	case "float":
		if len(n.List) != 2 {
			return Src{}, TInt, errAt(n, "float wants one argument")
		}
		s, t, err := lc.expr(n.List[1])
		if err != nil {
			return Src{}, TInt, err
		}
		s, err = lc.coerce(n, s, t, TFloat)
		return s, TFloat, err
	case "int":
		if len(n.List) != 2 {
			return Src{}, TInt, errAt(n, "int wants one argument")
		}
		s, t, err := lc.expr(n.List[1])
		if err != nil {
			return Src{}, TInt, err
		}
		if t == TInt {
			return s, TInt, nil
		}
		if s.IsConst {
			return cint(s.Const.AsInt()), TInt, nil
		}
		dst := lc.newTemp(TInt)
		lc.emit(&Instr{Op: isa.OpFtoI, Dst: dst, Srcs: []Src{s}, Type: TInt})
		return vsrc(dst), TInt, nil
	}
	if _, ok := arithOpcode(head); ok {
		return lc.lowerArith(n)
	}
	if fd, ok := lc.env.funcs[head]; ok {
		src, typ, err := lc.inlineCall(fd, n)
		if err != nil {
			return Src{}, TInt, err
		}
		if !src.IsConst && src.VReg == 0 {
			return Src{}, TInt, errAt(n, "procedure %q returns no value", head)
		}
		return src, typ, nil
	}
	return Src{}, TInt, errAt(n, "unknown expression %q", head)
}

// lowerAref handles (aref A idx [sync]).
func (lc *lowerCtx) lowerAref(n *sexpr.Node) (Src, Type, error) {
	if len(n.List) < 3 || len(n.List) > 4 {
		return Src{}, TInt, errAt(n, "aref wants (aref array index [sync])")
	}
	if n.List[1].Kind != sexpr.KSymbol {
		return Src{}, TInt, errAt(n, "aref array must be a global name")
	}
	g, ok := lc.env.globals[n.List[1].Sym]
	if !ok {
		return Src{}, TInt, errAt(n, "unknown global %q", n.List[1].Sym)
	}
	idx, it, err := lc.expr(n.List[2])
	if err != nil {
		return Src{}, TInt, err
	}
	if it != TInt {
		return Src{}, TInt, errAt(n.List[2], "array index must be an int")
	}
	sync := isa.SyncNone
	if len(n.List) == 4 {
		switch {
		case n.List[3].IsSym("waitfull"):
			sync = isa.SyncWaitFull
		case n.List[3].IsSym("consume"):
			sync = isa.SyncConsume
		default:
			return Src{}, TInt, errAt(n.List[3], "load sync must be waitfull or consume")
		}
	}
	dst := lc.newTemp(g.typ)
	in := &Instr{Op: isa.OpLoad, Dst: dst, Sync: sync, Alias: g.name, Type: g.typ}
	if idx.IsConst {
		in.Offset = g.addr + idx.Const.AsInt()
		in.AddrConst = true
	} else {
		in.Offset = g.addr
		in.Srcs = []Src{idx}
	}
	lc.emit(in)
	return vsrc(dst), g.typ, nil
}

// coerce converts src from type `from` to type `to`, inserting an itof
// when promoting. Demoting float to int requires an explicit (int ...)
// conversion.
func (lc *lowerCtx) coerce(n *sexpr.Node, src Src, from, to Type) (Src, error) {
	if from == to {
		return src, nil
	}
	if from == TInt && to == TFloat {
		if src.IsConst {
			return csrc(isa.Float(src.Const.AsFloat())), nil
		}
		dst := lc.newTemp(TFloat)
		lc.emit(&Instr{Op: isa.OpItoF, Dst: dst, Srcs: []Src{src}, Type: TFloat})
		return vsrc(dst), nil
	}
	return Src{}, errAt(n, "cannot implicitly convert float to int (use (int ...))")
}

// arithHead describes a recognized arithmetic/comparison form.
type arithHead struct {
	intOp   isa.Opcode
	floatOp isa.Opcode // OpInvalid when the form is int-only
	// nary: fold-left over 2+ operands; unary allowed for "-".
	nary    bool
	compare bool // result is always int
	intOnly bool
}

var arithTable = map[string]arithHead{
	"+":    {intOp: isa.OpAdd, floatOp: isa.OpFAdd, nary: true},
	"-":    {intOp: isa.OpSub, floatOp: isa.OpFSub},
	"*":    {intOp: isa.OpMul, floatOp: isa.OpFMul, nary: true},
	"/":    {intOp: isa.OpDiv, floatOp: isa.OpFDiv},
	"%":    {intOp: isa.OpMod, intOnly: true},
	"<":    {intOp: isa.OpSlt, floatOp: isa.OpFlt, compare: true},
	"<=":   {intOp: isa.OpSle, floatOp: isa.OpFle, compare: true},
	"=":    {intOp: isa.OpSeq, floatOp: isa.OpFeq, compare: true},
	"!=":   {intOp: isa.OpSne, floatOp: isa.OpFne, compare: true},
	">":    {intOp: isa.OpSgt, floatOp: isa.OpFgt, compare: true},
	">=":   {intOp: isa.OpSge, floatOp: isa.OpFge, compare: true},
	"and":  {intOp: isa.OpAnd, intOnly: true, nary: true},
	"or":   {intOp: isa.OpOr, intOnly: true, nary: true},
	"xor":  {intOp: isa.OpXor, intOnly: true},
	"shl":  {intOp: isa.OpShl, intOnly: true},
	"shr":  {intOp: isa.OpShr, intOnly: true},
	"abs":  {intOp: isa.OpInvalid, floatOp: isa.OpFAbs},
	"not":  {intOp: isa.OpSeq, intOnly: true}, // (not x) => (= x 0)
	"fabs": {intOp: isa.OpInvalid, floatOp: isa.OpFAbs},
}

func arithOpcode(head string) (arithHead, bool) {
	h, ok := arithTable[head]
	return h, ok
}

// lowerArith lowers arithmetic, comparison, and logical forms. Mixed
// int/float operands promote to float.
func (lc *lowerCtx) lowerArith(n *sexpr.Node) (Src, Type, error) {
	head := arithTable[n.Head()]
	args := n.List[1:]
	if len(args) == 0 {
		return Src{}, TInt, errAt(n, "%s wants operands", n.Head())
	}
	srcs := make([]Src, len(args))
	typs := make([]Type, len(args))
	anyFloat := false
	for i, a := range args {
		s, t, err := lc.expr(a)
		if err != nil {
			return Src{}, TInt, err
		}
		srcs[i], typs[i] = s, t
		if t == TFloat {
			anyFloat = true
		}
	}

	switch n.Head() {
	case "not":
		if len(args) != 1 || typs[0] == TFloat {
			return Src{}, TInt, errAt(n, "not wants one int operand")
		}
		return lc.binop(isa.OpSeq, TInt, srcs[0], cint(0))
	case "abs", "fabs":
		if len(args) != 1 {
			return Src{}, TInt, errAt(n, "%s wants one operand", n.Head())
		}
		s, err := lc.coerce(n, srcs[0], typs[0], TFloat)
		if err != nil {
			return Src{}, TInt, err
		}
		return lc.unop(isa.OpFAbs, TFloat, s)
	case "-":
		if len(args) == 1 {
			if anyFloat {
				return lc.unop(isa.OpFNeg, TFloat, srcs[0])
			}
			return lc.unop(isa.OpNeg, TInt, srcs[0])
		}
	}

	if head.intOnly {
		if anyFloat {
			return Src{}, TInt, errAt(n, "%s wants int operands", n.Head())
		}
	}
	opType := TInt
	op := head.intOp
	if anyFloat && !head.intOnly {
		opType = TFloat
		op = head.floatOp
		for i := range srcs {
			var err error
			srcs[i], err = lc.coerce(args[i], srcs[i], typs[i], TFloat)
			if err != nil {
				return Src{}, TInt, err
			}
		}
	}
	resType := opType
	if head.compare {
		resType = TInt
	}

	if !head.nary && !head.compare && len(args) != 2 {
		return Src{}, TInt, errAt(n, "%s wants two operands", n.Head())
	}
	if head.compare && len(args) != 2 {
		return Src{}, TInt, errAt(n, "%s wants two operands", n.Head())
	}

	acc := srcs[0]
	for i := 1; i < len(srcs); i++ {
		s, t, err := lc.binop(op, opType, acc, srcs[i])
		if err != nil {
			return Src{}, TInt, err
		}
		acc = s
		_ = t
	}
	if len(srcs) == 1 {
		// Unary + or * with one operand: identity.
		return acc, resType, nil
	}
	if head.compare {
		return acc, TInt, nil
	}
	return acc, resType, nil
}

// binop emits (or folds) a two-operand pure operation.
func (lc *lowerCtx) binop(op isa.Opcode, t Type, a, b Src) (Src, Type, error) {
	if a.IsConst && b.IsConst {
		v, err := isa.Eval(op, []isa.Value{a.Const, b.Const})
		if err == nil {
			rt := TInt
			if v.IsFloat {
				rt = TFloat
			}
			return csrc(v), rt, nil
		}
	}
	rt := t
	if isCompareOp(op) {
		rt = TInt
	}
	dst := lc.newTemp(rt)
	lc.emit(&Instr{Op: op, Dst: dst, Srcs: []Src{a, b}, Type: rt})
	return vsrc(dst), rt, nil
}

func (lc *lowerCtx) unop(op isa.Opcode, t Type, a Src) (Src, Type, error) {
	if a.IsConst {
		v, err := isa.Eval(op, []isa.Value{a.Const})
		if err == nil {
			rt := TInt
			if v.IsFloat {
				rt = TFloat
			}
			return csrc(v), rt, nil
		}
	}
	dst := lc.newTemp(t)
	lc.emit(&Instr{Op: op, Dst: dst, Srcs: []Src{a}, Type: t})
	return vsrc(dst), t, nil
}

func isCompareOp(op isa.Opcode) bool {
	switch op {
	case isa.OpSlt, isa.OpSle, isa.OpSeq, isa.OpSne, isa.OpSgt, isa.OpSge,
		isa.OpFlt, isa.OpFle, isa.OpFeq, isa.OpFne, isa.OpFgt, isa.OpFge:
		return true
	}
	return false
}

// inlineCall macro-expands a procedure call (def bodies are inlined, as
// in the paper: "procedures are implemented as macro-expansions").
// Constant arguments become compile-time bindings so that indices
// propagate into address computations.
func (lc *lowerCtx) inlineCall(fd *funcDef, n *sexpr.Node) (Src, Type, error) {
	if lc.inlineDepth >= maxInlineDepth {
		return Src{}, TInt, errAt(n, "procedure expansion too deep (recursion is not supported; procedures are macro-expanded)")
	}
	args := n.List[1:]
	if len(args) != len(fd.params) {
		return Src{}, TInt, errAt(n, "%s wants %d arguments, got %d", fd.name, len(fd.params), len(args))
	}
	f := &frame{}
	for i, p := range fd.params {
		src, typ, err := lc.expr(args[i])
		if err != nil {
			return Src{}, TInt, err
		}
		if src.IsConst {
			if f.consts == nil {
				f.consts = map[string]isa.Value{}
			}
			f.consts[p] = src.Const
			continue
		}
		// Call by value: copy into a fresh register.
		v := lc.newTemp(typ)
		lc.emit(&Instr{Op: movOp(typ), Dst: v, Srcs: []Src{src}, Type: typ})
		if f.vars == nil {
			f.vars = map[string]varInfo{}
		}
		f.vars[p] = varInfo{reg: v, typ: typ}
	}
	savedRet := lc.ret
	savedFrames := lc.frames
	// Procedures see only their own parameters plus program-level
	// constants/globals (no dynamic scoping into the caller).
	lc.frames = nil
	lc.pushFrame(&frame{consts: lc.work.consts})
	lc.pushFrame(f)
	lc.ret = &retSlot{}
	lc.inlineDepth++
	err := lc.stmts(fd.body)
	lc.inlineDepth--
	ret := lc.ret
	lc.frames = savedFrames
	lc.ret = savedRet
	if err != nil {
		return Src{}, TInt, err
	}
	if !ret.set {
		return Src{}, TInt, nil // procedure with no return value
	}
	return ret.src, ret.typ, nil
}
