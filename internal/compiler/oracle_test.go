package compiler

import (
	"fmt"

	"pcoup/internal/isa"
	"pcoup/internal/sexpr"
)

// oracle is a direct tree-walking evaluator for the source language,
// used as an independent reference for differential testing. Arithmetic
// is delegated to constApply, so its typing and operation semantics are
// by construction the same rules the compiler folds with and the
// simulator executes with. The oracle runs threads sequentially (fork
// bodies execute inline at the fork site), so it is a valid reference
// only for race-free programs — which the differential test generator
// guarantees by writing disjoint locations from parallel constructs.
type oracle struct {
	env *env
	mem map[string][]isa.Value
}

// oracleRun parses and evaluates a program, returning the final contents
// of every declared global.
func oracleRun(src string) (map[string][]isa.Value, error) {
	forms, err := sexpr.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(forms) == 1 && forms[0].Head() == "program" {
		// newEnv handles the unwrapping.
	}
	// A minimal machine is irrelevant to the oracle; newEnv only needs
	// the forms. Pass a permissive dummy config through the public entry
	// used by the compiler.
	e, err := newEnv(forms, oracleMachine(), Options{})
	if err != nil {
		return nil, err
	}
	o := &oracle{env: e, mem: map[string][]isa.Value{}}
	for name, g := range e.globals {
		vals := make([]isa.Value, g.size)
		if g.typ == TFloat {
			for i := range vals {
				vals[i] = isa.Float(0)
			}
		}
		copy(vals, g.init)
		o.mem[name] = vals
	}
	main := e.funcs["main"]
	if main == nil {
		return nil, fmt.Errorf("oracle: no main")
	}
	sc := &oracleScope{vars: map[string]isa.Value{}, consts: map[string]isa.Value{}}
	if _, err := o.stmts(main.body, sc, 0); err != nil {
		return nil, err
	}
	out := map[string][]isa.Value{}
	for name, vals := range o.mem {
		out[name] = vals
	}
	return out, nil
}

type oracleScope struct {
	parent *oracleScope
	vars   map[string]isa.Value
	consts map[string]isa.Value
}

func (s *oracleScope) lookupVar(name string) (*oracleScope, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if _, ok := sc.vars[name]; ok {
			return sc, true
		}
		if _, ok := sc.consts[name]; ok {
			return nil, false
		}
	}
	return nil, false
}

func (s *oracleScope) lookupConst(name string) (isa.Value, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.consts[name]; ok {
			return v, true
		}
		if _, ok := sc.vars[name]; ok {
			return isa.Value{}, false
		}
	}
	return isa.Value{}, false
}

const oracleMaxSteps = 10_000_000

type oracleReturn struct{ val isa.Value }

func (o *oracle) stmts(nodes []*sexpr.Node, sc *oracleScope, depth int) (*oracleReturn, error) {
	for _, n := range nodes {
		ret, err := o.stmt(n, sc, depth)
		if err != nil {
			return nil, err
		}
		if ret != nil {
			return ret, nil
		}
	}
	return nil, nil
}

func (o *oracle) stmt(n *sexpr.Node, sc *oracleScope, depth int) (*oracleReturn, error) {
	if depth > maxInlineDepth {
		return nil, fmt.Errorf("oracle: expansion too deep")
	}
	switch n.Head() {
	case "set":
		name := n.List[1].Sym
		v, err := o.expr(n.List[2], sc, depth)
		if err != nil {
			return nil, err
		}
		if owner, ok := sc.lookupVar(name); ok {
			old := owner.vars[name]
			if old.IsFloat && !v.IsFloat {
				v = isa.Float(v.AsFloat())
			}
			owner.vars[name] = v
			return nil, nil
		}
		if g, ok := o.env.globals[name]; ok {
			if g.typ == TFloat && !v.IsFloat {
				v = isa.Float(v.AsFloat())
			}
			o.mem[name][0] = v
			return nil, nil
		}
		sc.vars[name] = v
		return nil, nil
	case "let":
		inner := &oracleScope{parent: sc, vars: map[string]isa.Value{}, consts: map[string]isa.Value{}}
		for _, bind := range n.List[1].List {
			v, err := o.expr(bind.List[1], sc, depth)
			if err != nil {
				return nil, err
			}
			inner.vars[bind.List[0].Sym] = v
		}
		return o.stmts(n.List[2:], inner, depth)
	case "if":
		c, err := o.expr(n.List[1], sc, depth)
		if err != nil {
			return nil, err
		}
		if c.Truthy() {
			return o.stmt(n.List[2], sc, depth)
		}
		if len(n.List) == 4 {
			return o.stmt(n.List[3], sc, depth)
		}
		return nil, nil
	case "while":
		for steps := 0; ; steps++ {
			if steps > oracleMaxSteps {
				return nil, fmt.Errorf("oracle: while did not terminate")
			}
			c, err := o.expr(n.List[1], sc, depth)
			if err != nil {
				return nil, err
			}
			if !c.Truthy() {
				return nil, nil
			}
			if ret, err := o.stmts(n.List[2:], sc, depth); err != nil || ret != nil {
				return ret, err
			}
		}
	case "for", "unroll", "forall-static", "forall":
		// All loop forms run sequentially in the oracle.
		head := n.List[1].List
		name := head[0].Sym
		lo, err := o.expr(head[1], sc, depth)
		if err != nil {
			return nil, err
		}
		hi, err := o.expr(head[2], sc, depth)
		if err != nil {
			return nil, err
		}
		step := int64(1)
		if len(head) == 4 {
			sv, err := o.expr(head[3], sc, depth)
			if err != nil {
				return nil, err
			}
			step = sv.AsInt()
			if step == 0 {
				return nil, fmt.Errorf("oracle: zero step")
			}
		}
		for i := lo.AsInt(); i < hi.AsInt(); i += step {
			inner := &oracleScope{parent: sc, vars: map[string]isa.Value{}, consts: map[string]isa.Value{}}
			inner.vars[name] = isa.Int(i)
			if ret, err := o.stmts(n.List[2:], inner, depth); err != nil || ret != nil {
				return ret, err
			}
		}
		return nil, nil
	case "begin":
		return o.stmts(n.List[1:], sc, depth)
	case "aset":
		g, ok := o.env.globals[n.List[1].Sym]
		if !ok {
			return nil, fmt.Errorf("oracle: unknown global %q", n.List[1].Sym)
		}
		idx, err := o.expr(n.List[2], sc, depth)
		if err != nil {
			return nil, err
		}
		v, err := o.expr(n.List[3], sc, depth)
		if err != nil {
			return nil, err
		}
		if g.typ == TFloat && !v.IsFloat {
			v = isa.Float(v.AsFloat())
		}
		i := idx.AsInt()
		if i < 0 || i >= g.size {
			return nil, fmt.Errorf("oracle: %s[%d] out of range", g.name, i)
		}
		o.mem[g.name][i] = v
		return nil, nil
	case "fork":
		// Sequential execution of the forked body (race-free programs
		// only). Fork bodies see no parent locals.
		inner := &oracleScope{vars: map[string]isa.Value{}, consts: flattenOracleConsts(sc)}
		_, err := o.stmts(n.List[1:], inner, depth)
		return nil, err
	case "join":
		return nil, nil
	case "return":
		v, err := o.expr(n.List[1], sc, depth)
		if err != nil {
			return nil, err
		}
		return &oracleReturn{val: v}, nil
	default:
		if fd, ok := o.env.funcs[n.Head()]; ok {
			_, err := o.call(fd, n, sc, depth)
			return nil, err
		}
		return nil, fmt.Errorf("oracle: unknown statement %q", n.Head())
	}
}

func flattenOracleConsts(sc *oracleScope) map[string]isa.Value {
	out := map[string]isa.Value{}
	var walk func(*oracleScope)
	walk = func(s *oracleScope) {
		if s == nil {
			return
		}
		walk(s.parent)
		for k, v := range s.consts {
			out[k] = v
		}
		// Loop indices are vars in the oracle but compile-time constants
		// for unroll/forall-static; fork bodies may reference them.
		for k, v := range s.vars {
			out[k] = v
		}
	}
	walk(sc)
	return out
}

func (o *oracle) call(fd *funcDef, n *sexpr.Node, sc *oracleScope, depth int) (isa.Value, error) {
	if len(n.List)-1 != len(fd.params) {
		return isa.Value{}, fmt.Errorf("oracle: %s arity", fd.name)
	}
	inner := &oracleScope{vars: map[string]isa.Value{}, consts: map[string]isa.Value{}}
	for i, p := range fd.params {
		v, err := o.expr(n.List[i+1], sc, depth)
		if err != nil {
			return isa.Value{}, err
		}
		inner.vars[p] = v
	}
	ret, err := o.stmts(fd.body, inner, depth+1)
	if err != nil {
		return isa.Value{}, err
	}
	if ret != nil {
		return ret.val, nil
	}
	return isa.Value{}, nil
}

func (o *oracle) expr(n *sexpr.Node, sc *oracleScope, depth int) (isa.Value, error) {
	switch n.Kind {
	case sexpr.KInt:
		return isa.Int(n.Int), nil
	case sexpr.KFloat:
		return isa.Float(n.Float), nil
	case sexpr.KSymbol:
		if owner, ok := sc.lookupVar(n.Sym); ok {
			return owner.vars[n.Sym], nil
		}
		if v, ok := sc.lookupConst(n.Sym); ok {
			return v, nil
		}
		if v, ok := o.env.consts[n.Sym]; ok {
			return v, nil
		}
		if g, ok := o.env.globals[n.Sym]; ok {
			if g.size != 1 {
				return isa.Value{}, fmt.Errorf("oracle: array %q as value", n.Sym)
			}
			return o.mem[n.Sym][0], nil
		}
		return isa.Value{}, fmt.Errorf("oracle: unknown name %q", n.Sym)
	case sexpr.KList:
		switch n.Head() {
		case "aref":
			g, ok := o.env.globals[n.List[1].Sym]
			if !ok {
				return isa.Value{}, fmt.Errorf("oracle: unknown global %q", n.List[1].Sym)
			}
			idx, err := o.expr(n.List[2], sc, depth)
			if err != nil {
				return isa.Value{}, err
			}
			i := idx.AsInt()
			if i < 0 || i >= g.size {
				return isa.Value{}, fmt.Errorf("oracle: %s[%d] out of range", g.name, i)
			}
			return o.mem[g.name][i], nil
		case "addr":
			g, ok := o.env.globals[n.List[1].Sym]
			if !ok {
				return isa.Value{}, fmt.Errorf("oracle: unknown global")
			}
			return isa.Int(g.addr), nil
		case "float":
			v, err := o.expr(n.List[1], sc, depth)
			if err != nil {
				return isa.Value{}, err
			}
			return isa.Float(v.AsFloat()), nil
		case "int":
			v, err := o.expr(n.List[1], sc, depth)
			if err != nil {
				return isa.Value{}, err
			}
			return isa.Int(v.AsInt()), nil
		}
		if _, ok := arithOpcode(n.Head()); ok {
			vals := make([]isa.Value, len(n.List)-1)
			for i, c := range n.List[1:] {
				v, err := o.expr(c, sc, depth)
				if err != nil {
					return isa.Value{}, err
				}
				vals[i] = v
			}
			return constApply(n, n.Head(), vals)
		}
		if fd, ok := o.env.funcs[n.Head()]; ok {
			return o.call(fd, n, sc, depth)
		}
	}
	return isa.Value{}, fmt.Errorf("oracle: bad expression %s", n)
}
