package compiler

import (
	"strings"
	"testing"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/sexpr"
)

func envFor(t *testing.T, src string) *env {
	t.Helper()
	forms, err := sexpr.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	e, err := newEnv(forms, machine.Baseline(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConstEval(t *testing.T) {
	e := envFor(t, `
(program p
  (const n 6)
  (const half (/ n 2))
  (global a (array int 16))
  (def (main) (set x 1)))`)
	cases := []struct {
		src  string
		want isa.Value
	}{
		{"42", isa.Int(42)},
		{"2.5", isa.Float(2.5)},
		{"n", isa.Int(6)},
		{"half", isa.Int(3)},
		{"(+ n 1 2)", isa.Int(9)},
		{"(* n half)", isa.Int(18)},
		{"(- n)", isa.Int(-6)},
		{"(shl 1 n)", isa.Int(64)},
		{"(< half n)", isa.Int(1)},
		{"(float n)", isa.Int(6)}, // float is not a constEval operator...
	}
	for _, c := range cases[:9] {
		n, err := sexpr.ParseOne(c.src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.constEval(n, nil)
		if err != nil {
			t.Errorf("constEval(%s): %v", c.src, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("constEval(%s) = %v, want %v", c.src, got, c.want)
		}
	}
	// (addr a) resolves the global's address.
	n, _ := sexpr.ParseOne("(addr a)")
	got, err := e.constEval(n, nil)
	if err != nil || got.AsInt() != e.globals["a"].addr {
		t.Errorf("(addr a) = %v, %v", got, err)
	}
	// Scoped bindings shadow program constants.
	n, _ = sexpr.ParseOne("(+ n k)")
	got, err = e.constEval(n, map[string]isa.Value{"k": isa.Int(100)})
	if err != nil || got.AsInt() != 106 {
		t.Errorf("scoped constEval = %v, %v", got, err)
	}
	// Non-constant expressions are rejected.
	for _, bad := range []string{"x", "(aref a 0)", "q", "(+ n q)"} {
		n, _ := sexpr.ParseOne(bad)
		if _, err := e.constEval(n, nil); err == nil {
			t.Errorf("constEval accepted %q", bad)
		}
	}
}

func TestGlobalLayout(t *testing.T) {
	e := envFor(t, `
(program p
  (global a (array int 10))
  (global b float)
  (global c (array float 3) (init 1.0 2.0))
  (def (main) (set x 1)))`)
	a, b, c := e.globals["a"], e.globals["b"], e.globals["c"]
	if a.addr != dataBase {
		t.Errorf("first global at %d, want %d", a.addr, dataBase)
	}
	if b.addr != a.addr+10 || c.addr != b.addr+1 {
		t.Errorf("layout: a=%d b=%d c=%d", a.addr, b.addr, c.addr)
	}
	if e.memWords() <= c.addr+3 {
		t.Errorf("memWords %d too small", e.memWords())
	}
	if len(c.init) != 2 || c.init[0].AsFloat() != 1.0 {
		t.Errorf("init values: %v", c.init)
	}
	if c.typ != TFloat || a.typ != TInt {
		t.Error("types wrong")
	}
}

func TestSyncCellAllocation(t *testing.T) {
	e := envFor(t, `(program p (global g int) (def (main) (set x 1)))`)
	before := e.nextAddr
	addr := e.newSyncCell("fk")
	if addr != before || e.nextAddr != before+1 {
		t.Errorf("sync cell at %d, next %d", addr, e.nextAddr)
	}
	name := e.cellAlias(addr)
	if !strings.HasPrefix(name, "_fk") {
		t.Errorf("cell alias %q", name)
	}
	if !e.globals[name].empty {
		t.Error("sync cell must start empty")
	}
	if e.cellAlias(9999) != "" {
		t.Error("cellAlias found a ghost")
	}
}

func TestGenNameUnique(t *testing.T) {
	e := envFor(t, `(program p (def (main) (set x 1)))`)
	a := e.genName("main", "f")
	b := e.genName("main", "f")
	if a == b {
		t.Errorf("names collide: %q", a)
	}
}

func TestBareTopLevelForms(t *testing.T) {
	// Programs without the (program ...) wrapper are accepted.
	e := envFor(t, `(global g int) (def (main) (set g 1))`)
	if e.progName != "program" {
		t.Errorf("default name %q", e.progName)
	}
	if _, ok := e.globals["g"]; !ok {
		t.Error("bare global missing")
	}
}

func TestConstApplyTypeRules(t *testing.T) {
	n, _ := sexpr.ParseOne("(+ 1 2)")
	// Mixed int/float promotes.
	v, err := constApply(n, "+", []isa.Value{isa.Int(1), isa.Float(2.5)})
	if err != nil || !v.IsFloat || v.F != 3.5 {
		t.Errorf("mixed + = %v, %v", v, err)
	}
	// Comparisons yield ints even for float operands.
	v, err = constApply(n, "<", []isa.Value{isa.Float(1), isa.Float(2)})
	if err != nil || v.IsFloat || v.I != 1 {
		t.Errorf("float < = %v, %v", v, err)
	}
	// Int-only ops reject floats.
	if _, err := constApply(n, "%", []isa.Value{isa.Float(1), isa.Int(2)}); err == nil {
		t.Error("%% accepted float")
	}
	// not / abs forms.
	v, _ = constApply(n, "not", []isa.Value{isa.Int(0)})
	if v.I != 1 {
		t.Errorf("not 0 = %v", v)
	}
	v, _ = constApply(n, "abs", []isa.Value{isa.Float(-2)})
	if v.F != 2 {
		t.Errorf("abs -2 = %v", v)
	}
	// Unary minus on each type.
	v, _ = constApply(n, "-", []isa.Value{isa.Int(5)})
	if v.I != -5 {
		t.Errorf("neg = %v", v)
	}
	v, _ = constApply(n, "-", []isa.Value{isa.Float(5)})
	if v.F != -5 {
		t.Errorf("fneg = %v", v)
	}
}

func TestDeclErrors(t *testing.T) {
	bads := []string{
		`(program p (global a (array int 0)) (def (main) (set x 1)))`,
		`(program p (global a (array bogus 4)) (def (main) (set x 1)))`,
		`(program p (global a int (frobnicate)) (def (main) (set x 1)))`,
		`(program p (const k (aref q 0)) (def (main) (set x 1)))`,
		`(program p (def main (set x 1)))`,
		`(program p (whatisthis 3) (def (main) (set x 1)))`,
		`(program p (def (f 3) (set x 1)) (def (main) (set x 1)))`,
		`(program p (def (f) (set x 1)) (def (f) (set x 2)) (def (main) (set x 1)))`,
	}
	for _, src := range bads {
		forms, err := sexpr.Parse(src)
		if err != nil {
			continue // reader-level rejection also counts
		}
		if _, err := newEnv(forms, machine.Baseline(), Options{}); err == nil {
			t.Errorf("accepted invalid program:\n%s", src)
		}
	}
}

func TestStringers(t *testing.T) {
	// Mode, Type, Src, Instr, Fn string forms (used in diagnostics).
	if Unrestricted.String() != "unrestricted" || SingleCluster.String() != "single" {
		t.Error("Mode.String")
	}
	if TInt.String() != "int" || TFloat.String() != "float" {
		t.Error("Type.String")
	}
	fn := newFn("demo")
	v := fn.newVReg(TFloat)
	b := fn.newBlock()
	tgt := fn.newBlock()
	b.Instrs = append(b.Instrs,
		&Instr{Op: isa.OpFMul, Dst: v, Srcs: []Src{vsrc(v), csrc(isa.Float(2))}, Type: TFloat},
		&Instr{Op: isa.OpLoad, Dst: v, Alias: "a", Offset: 8, Sync: isa.SyncConsume, Type: TFloat},
		&Instr{Op: isa.OpBf, Srcs: []Src{vsrc(v)}, Target: tgt},
		&Instr{Op: isa.OpFork, ForkSeg: "w"},
	)
	out := fn.String()
	for _, want := range []string{"fn demo", "fmul", "#2.0", "ld.cons", "@8[a]", "->b1", "->w"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fn.String missing %q:\n%s", want, out)
		}
	}
}

func TestListExprForms(t *testing.T) {
	// Exercise addr/float/int/abs in runtime (non-constant) positions.
	src := `
(program p
  (global a (array float 4) (init 1.5 -2.5 3.0 4.0))
  (global ptr (array int 2))
  (global out (array float 4))
  (def (main)
    (aset ptr 0 (addr a))
    (set i 1)
    (aset out 0 (abs (aref a i)))
    (aset out 1 (float (int (aref a 2))))
    (set j (int (aref a 3)))
    (aset out 2 (float (* j 2)))))`
	prog, diags := compileOK(t, src, Options{})
	_, _ = prog, diags
}
