package compiler

import (
	"fmt"
	"sort"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

// placedOp is one operation fixed to a unit slot and a schedule cycle
// within its basic block.
type placedOp struct {
	ir           *Instr
	unit         int // global unit slot
	cycle        int
	destClusters []int // clusters receiving the result
	isMove       bool  // synthesized inter-cluster transfer
}

// blockSched is the schedule of one basic block: operations grouped into
// instruction words (empty cycles compressed away — the runtime's
// presence bits enforce latency, so words encode only issue order).
type blockSched struct {
	words [][]*placedOp
}

// scheduler performs critical-path list scheduling of one function for
// one machine configuration and mode.
type scheduler struct {
	env  *env
	fn   *Fn
	work *segWork

	units []machine.UnitRef
	// unitsByKind lists unit slots usable for each op class, in the
	// thread's cluster preference order.
	unitsByKind [][]int
	// moverUnits[c] lists transfer-capable unit slots (IU/FPU) in cluster c.
	moverUnits [][]int

	cross map[VReg]bool
	home  map[VReg]int

	// occupancy[slot] marks claimed cycles (grown on demand).
	occupancy [][]bool

	moves int
}

// rotate returns xs rotated left by k.
func rotate(xs []int, k int) []int {
	if len(xs) == 0 {
		return xs
	}
	k = k % len(xs)
	out := make([]int, 0, len(xs))
	out = append(out, xs[k:]...)
	out = append(out, xs[:k]...)
	return out
}

func newScheduler(e *env, fn *Fn, w *segWork) *scheduler {
	cfg := e.cfg
	sc := &scheduler{env: e, fn: fn, work: w, units: cfg.Units()}
	arith := rotate(cfg.ArithClusters(), w.rotation)
	branch := rotate(cfg.BranchClusters(), w.rotation)

	// Cluster preference order: rotated arithmetic clusters, then branch
	// clusters (a simple form of static load balancing between threads).
	prefOrder := append(append([]int{}, arith...), branch...)
	prefRank := map[int]int{}
	for i, c := range prefOrder {
		prefRank[c] = i
	}

	sc.unitsByKind = make([][]int, machine.NumUnitKinds)
	single := e.opts.Mode == SingleCluster
	for _, u := range sc.units {
		k := int(u.Kind)
		switch {
		case u.Kind == machine.BR:
			if single && u.Cluster != branch[0] {
				continue
			}
		case single && u.Cluster != arith[0]:
			continue
		}
		sc.unitsByKind[k] = append(sc.unitsByKind[k], u.Global)
	}
	// Fallback: if single-cluster mode left a class empty (the assigned
	// cluster lacks such a unit), allow all units of the class.
	for k := range sc.unitsByKind {
		if len(sc.unitsByKind[k]) == 0 {
			for _, u := range sc.units {
				if int(u.Kind) == k {
					sc.unitsByKind[k] = append(sc.unitsByKind[k], u.Global)
				}
			}
		}
		slots := sc.unitsByKind[k]
		sort.SliceStable(slots, func(a, b int) bool {
			ca, cb := sc.units[slots[a]].Cluster, sc.units[slots[b]].Cluster
			if prefRank[ca] != prefRank[cb] {
				return prefRank[ca] < prefRank[cb]
			}
			return slots[a] < slots[b]
		})
	}

	sc.moverUnits = make([][]int, len(cfg.Clusters))
	for _, u := range sc.units {
		if u.Kind == machine.IU || u.Kind == machine.FPU {
			sc.moverUnits[u.Cluster] = append(sc.moverUnits[u.Cluster], u.Global)
		}
	}

	sc.occupancy = make([][]bool, len(sc.units))

	// Values that live across basic blocks reside in the thread's primary
	// cluster between blocks. Concentrating them minimizes inter-cluster
	// communication ("operations are placed to minimize the amount of
	// communication between function units"); in-block temporaries are
	// still placed wherever their producer and consumers schedule.
	sc.cross = fn.crossBlockVRegs()
	sc.home = map[VReg]int{}
	for v := range sc.cross {
		sc.home[v] = arith[0]
	}
	return sc
}

func (sc *scheduler) cluster(slot int) int { return sc.units[slot].Cluster }
func (sc *scheduler) latency(slot int) int { return sc.units[slot].Latency }

// free finds the first unoccupied cycle >= from on a unit and claims it.
func (sc *scheduler) claim(slot, from int) int {
	occ := sc.occupancy[slot]
	c := from
	for c < len(occ) && occ[c] {
		c++
	}
	for len(sc.occupancy[slot]) <= c {
		sc.occupancy[slot] = append(sc.occupancy[slot], false)
	}
	sc.occupancy[slot][c] = true
	return c
}

// probe returns the first unoccupied cycle >= from without claiming.
func (sc *scheduler) probe(slot, from int) int {
	occ := sc.occupancy[slot]
	c := from
	for c < len(occ) && occ[c] {
		c++
	}
	return c
}

// node wraps an instruction for dependence-graph scheduling.
type node struct {
	in    *Instr
	index int
	preds []dep
	succs []dep
	nPred int

	prio      int
	scheduled bool
	cycle     int
	unit      int
	placed    *placedOp
}

type dep struct {
	n   *node
	lat int
}

// irLatency estimates the latency of a producing instruction for
// dependence edges (units of a kind may differ per cluster; the estimate
// uses the machine's minimum for the class; actual placement times are
// tracked separately).
func (sc *scheduler) irLatency(in *Instr) int {
	if in.Op == isa.OpLoad {
		return sc.env.cfg.Memory.HitLatency
	}
	kind := in.Op.Unit()
	lat := 1
	first := true
	for _, u := range sc.units {
		if u.Kind == kind {
			if first || u.Latency < lat {
				lat = u.Latency
				first = false
			}
		}
	}
	return lat
}

// buildDeps constructs the intra-block dependence graph: register RAW,
// WAR, and WAW edges; conservative memory ordering (by alias, with exact
// disambiguation for constant addresses); fork ordering; and control
// edges keeping the terminator (and halt) last.
func (sc *scheduler) buildDeps(b *Block) []*node {
	nodes := make([]*node, len(b.Instrs))
	for i, in := range b.Instrs {
		nodes[i] = &node{in: in, index: i}
	}
	addEdge := func(from, to *node, lat int) {
		if from == to {
			return
		}
		from.succs = append(from.succs, dep{to, lat})
		to.preds = append(to.preds, dep{from, lat})
		to.nPred++
	}
	lastDef := map[VReg]*node{}
	lastUses := map[VReg][]*node{}
	var memNodes []*node
	var forkish []*node

	memConflict := func(a, bI *Instr) bool {
		// Synchronizing references are barriers: a consuming load
		// (acquire) must precede later references, and a producing store
		// (release) must follow earlier ones, regardless of alias.
		if a.Sync != isa.SyncNone || bI.Sync != isa.SyncNone {
			return true
		}
		if a.Alias != "" && bI.Alias != "" && a.Alias != bI.Alias {
			return false
		}
		if a.Op == isa.OpLoad && bI.Op == isa.OpLoad && a.Sync == isa.SyncNone && bI.Sync == isa.SyncNone {
			return false
		}
		if a.AddrConst && bI.AddrConst && a.Offset != bI.Offset && a.Sync == isa.SyncNone && bI.Sync == isa.SyncNone {
			return false
		}
		return true
	}

	for _, n := range nodes {
		in := n.in
		for _, s := range in.Srcs {
			if s.IsConst {
				continue
			}
			if d, ok := lastDef[s.VReg]; ok {
				addEdge(d, n, sc.irLatency(d.in))
			}
			lastUses[s.VReg] = append(lastUses[s.VReg], n)
		}
		if in.Dst != 0 {
			if d, ok := lastDef[in.Dst]; ok {
				addEdge(d, n, 1) // WAW
			}
			for _, u := range lastUses[in.Dst] {
				addEdge(u, n, 1) // WAR
			}
			lastDef[in.Dst] = n
			lastUses[in.Dst] = nil
		}
		if in.Op == isa.OpLoad || in.Op == isa.OpStore {
			for _, m := range memNodes {
				if memConflict(m.in, in) {
					addEdge(m, n, 1)
				}
			}
			memNodes = append(memNodes, n)
			// Forks order against memory operations (children observe
			// memory), and vice versa.
			for _, f := range forkish {
				addEdge(f, n, 1)
			}
		}
		if in.Op == isa.OpFork {
			for _, m := range memNodes {
				addEdge(m, n, 1)
			}
			for _, f := range forkish {
				addEdge(f, n, 1) // forks keep program (priority) order
			}
			forkish = append(forkish, n)
		}
	}
	// Critical-path priorities (longest path to a sink).
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		for _, s := range n.succs {
			if p := s.n.prio + s.lat; p > n.prio {
				n.prio = p
			}
		}
	}
	return nodes
}

// avail tracks, per vreg, the clusters where its value will be present
// and the cycle it becomes readable there.
type availMap map[VReg]map[int]int

func (a availMap) set(v VReg, cluster, cycle int) {
	m := a[v]
	if m == nil {
		m = map[int]int{}
		a[v] = m
	}
	if old, ok := m[cluster]; !ok || cycle < old {
		m[cluster] = cycle
	}
}

// scheduleBlock schedules one block, returning its placed operations.
func (sc *scheduler) scheduleBlock(b *Block) *blockSched {
	// Reset per-block unit occupancy (words are per-block).
	for i := range sc.occupancy {
		sc.occupancy[i] = sc.occupancy[i][:0]
	}
	nodes := sc.buildDeps(b)
	avail := availMap{}
	// producers[v] is the in-block node defining v (for retroactive
	// destination placement).
	producers := map[VReg]*node{}

	// Live-in cross-block values reside in their home clusters.
	for _, n := range nodes {
		for _, s := range n.in.Srcs {
			if s.IsConst {
				continue
			}
			if _, isLocal := producersWillDefine(nodes, s.VReg, n.index); !isLocal {
				if h, ok := sc.home[s.VReg]; ok {
					avail.set(s.VReg, h, 0)
				}
			}
		}
	}

	var placed []*placedOp
	ready := make([]*node, 0, len(nodes))
	for _, n := range nodes {
		if n.nPred == 0 {
			ready = append(ready, n)
		}
	}
	scheduledCount := 0
	maxCycle := 0
	var terminator *node
	for scheduledCount < len(nodes) {
		if len(ready) == 0 {
			panic(fmt.Sprintf("compiler: scheduler wedged in %s block %d", sc.fn.Name, b.ID))
		}
		// Pick the highest-priority ready node; the terminator (and halt)
		// must wait until everything else has been scheduled.
		sort.SliceStable(ready, func(i, j int) bool {
			if ready[i].prio != ready[j].prio {
				return ready[i].prio > ready[j].prio
			}
			return ready[i].index < ready[j].index
		})
		var n *node
		pickIdx := -1
		for i, cand := range ready {
			if (cand.in.isTerminator() || cand.in.Op == isa.OpHalt) && scheduledCount < len(nodes)-1 {
				continue
			}
			n = cand
			pickIdx = i
			break
		}
		if n == nil {
			// Only control-final nodes remain but more than one node is
			// unscheduled — schedule them anyway in index order.
			n = ready[0]
			pickIdx = 0
		}
		ready = append(ready[:pickIdx], ready[pickIdx+1:]...)

		lower := 0
		for _, p := range n.preds {
			if c := p.n.cycle + p.lat; c > lower {
				lower = c
			}
		}
		isFinal := n.in.isTerminator() || n.in.Op == isa.OpHalt
		if isFinal && maxCycle > lower {
			lower = maxCycle
		}
		po, movs := sc.placeOp(n, lower, avail, producers)
		placed = append(placed, movs...)
		placed = append(placed, po)
		if po.cycle > maxCycle {
			maxCycle = po.cycle
		}
		if isFinal {
			terminator = n
		}
		scheduledCount++
		for _, s := range n.succs {
			s.n.nPred--
			if s.n.nPred == 0 {
				ready = append(ready, s.n)
			}
		}
	}
	_ = terminator

	// Assign destination clusters for values produced but never consumed
	// locally (live-out temps and unused results): default to the
	// producing unit's own cluster.
	for _, po := range placed {
		if po.ir.Dst != 0 && len(po.destClusters) == 0 {
			po.destClusters = append(po.destClusters, sc.cluster(po.unit))
		}
	}

	// Group by cycle and compress empty cycles into words.
	byCycle := map[int][]*placedOp{}
	var cycles []int
	for _, po := range placed {
		if _, ok := byCycle[po.cycle]; !ok {
			cycles = append(cycles, po.cycle)
		}
		byCycle[po.cycle] = append(byCycle[po.cycle], po)
	}
	sort.Ints(cycles)
	bs := &blockSched{}
	for _, c := range cycles {
		bs.words = append(bs.words, byCycle[c])
	}
	return bs
}

// producersWillDefine reports whether v is defined by some node of the
// block before index i (i.e. the use is of an in-block value).
func producersWillDefine(nodes []*node, v VReg, i int) (*node, bool) {
	for j := 0; j < i; j++ {
		if nodes[j].in.Dst == v {
			return nodes[j], true
		}
	}
	return nil, false
}

// sortedClusters returns the keys of a cluster->cycle map in ascending
// order (map iteration order must never influence generated code).
func sortedClusters(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// transferPenalty is the scheduling cost (in cycles) charged per source
// value that must be copied into a candidate cluster: a transfer costs an
// extra operation plus latency, but a congested preferred cluster can
// justify spilling work to a neighbor.
const transferPenalty = 1

// placeOp chooses a unit and cycle for node n, inserting inter-cluster
// transfers for sources not present in the chosen cluster. Results are
// written to the home cluster of cross-block values; destinations for
// in-block consumers are added retroactively (up to the machine's
// per-operation destination limit) or satisfied with explicit moves.
func (sc *scheduler) placeOp(n *node, lower int, avail availMap, producers map[VReg]*node) (*placedOp, []*placedOp) {
	kind := int(n.in.Op.Unit())
	candidates := sc.unitsByKind[kind]
	if len(candidates) == 0 {
		panic(fmt.Sprintf("compiler: no %v units available", n.in.Op.Unit()))
	}

	type plan struct {
		slot      int
		cycle     int
		transfers int
	}
	best := plan{slot: -1}
	for _, slot := range candidates {
		cu := sc.cluster(slot)
		t := lower
		transfers := 0
		feasible := true
		for _, s := range n.in.Srcs {
			if s.IsConst {
				continue
			}
			v := s.VReg
			m := avail[v]
			if c, ok := m[cu]; ok {
				if c > t {
					t = c
				}
				continue
			}
			// Value absent from cu. A producer with spare destination
			// slots costs nothing extra; otherwise estimate a one-cycle
			// transfer from its earliest location.
			if p, ok := producers[v]; ok && len(p.placed.destClusters) < sc.env.cfg.MaxDests {
				if c := p.cycle + sc.latency(p.unit); c > t {
					t = c
				}
				continue
			}
			bestSrc := -1
			for _, c := range sortedClusters(m) {
				if len(sc.moverUnits[c]) == 0 {
					continue
				}
				if cyc := m[c]; bestSrc < 0 || cyc < bestSrc {
					bestSrc = cyc
				}
			}
			if bestSrc < 0 {
				feasible = false
				break
			}
			transfers++
			if c := bestSrc + 2; c > t { // mov issue + mov latency estimate
				t = c
			}
		}
		if !feasible {
			continue
		}
		cyc := sc.probe(slot, t)
		// Combined cost: a transfer costs an extra operation and about
		// two cycles of latency, but a congested preferred cluster can
		// justify spilling work to a neighbor.
		if best.slot < 0 || cyc+transferPenalty*transfers < best.cycle+transferPenalty*best.transfers {
			best = plan{slot: slot, cycle: cyc, transfers: transfers}
		}
	}
	if best.slot < 0 {
		panic(fmt.Sprintf("compiler: cannot place op %s in %s", n.in, sc.fn.Name))
	}

	cu := sc.cluster(best.slot)
	var movs []*placedOp
	t := lower
	for _, s := range n.in.Srcs {
		if s.IsConst {
			continue
		}
		v := s.VReg
		if c, ok := avail[v][cu]; ok {
			if c > t {
				t = c
			}
			continue
		}
		if p, ok := producers[v]; ok && len(p.placed.destClusters) < sc.env.cfg.MaxDests {
			p.placed.destClusters = append(p.placed.destClusters, cu)
			c := p.cycle + sc.latency(p.unit)
			avail.set(v, cu, c)
			if c > t {
				t = c
			}
			continue
		}
		// Explicit transfer.
		mov, readyAt := sc.insertMove(v, cu, avail)
		movs = append(movs, mov)
		if readyAt > t {
			t = readyAt
		}
	}

	cycle := sc.claim(best.slot, t)
	po := &placedOp{ir: n.in, unit: best.slot, cycle: cycle}
	n.cycle = cycle
	n.unit = best.slot
	n.scheduled = true
	n.placed = po

	if n.in.Dst != 0 {
		dst := n.in.Dst
		producers[dst] = n
		if h, ok := sc.home[dst]; ok {
			po.destClusters = append(po.destClusters, h)
			avail[dst] = map[int]int{h: cycle + sc.latency(best.slot)}
		} else {
			// Lazy placement: the first consumer picks the cluster.
			avail[dst] = map[int]int{}
		}
	}
	return po, movs
}

// insertMove schedules an explicit inter-cluster register transfer of v
// into cluster dst. It returns the transfer and the cycle the value
// becomes readable in dst.
func (sc *scheduler) insertMove(v VReg, dst int, avail availMap) (*placedOp, int) {
	bestC, bestCyc := -1, 0
	// Iterate clusters in a fixed order so transfer placement (and hence
	// the generated code) is deterministic.
	for _, c := range sortedClusters(avail[v]) {
		cyc := avail[v][c]
		if len(sc.moverUnits[c]) == 0 {
			continue
		}
		if bestC < 0 || cyc < bestCyc {
			bestC, bestCyc = c, cyc
		}
	}
	if bestC < 0 {
		panic(fmt.Sprintf("compiler: value v%d has no transferable location", v))
	}
	typ := sc.fn.typeOf(v)
	// Prefer a type-matched mover, falling back to any in the cluster.
	var slot = -1
	wantKind := machine.IU
	if typ == TFloat {
		wantKind = machine.FPU
	}
	bestCycle := 1 << 30
	for _, s := range sc.moverUnits[bestC] {
		c := sc.probe(s, bestCyc)
		match := sc.units[s].Kind == wantKind
		cost := c*2 + map[bool]int{true: 0, false: 1}[match]
		if cost < bestCycle {
			bestCycle = cost
			slot = s
		}
	}
	cycle := sc.claim(slot, bestCyc)
	// The move opcode must match the executing unit's class (an integer
	// unit transfers float words unchanged, and vice versa).
	op := isa.OpMov
	if sc.units[slot].Kind == machine.FPU {
		op = isa.OpFMov
	}
	ir := &Instr{Op: op, Dst: v, Srcs: []Src{vsrc(v)}, Type: typ}
	po := &placedOp{ir: ir, unit: slot, cycle: cycle, destClusters: []int{dst}, isMove: true}
	ready := cycle + sc.latency(slot)
	avail.set(v, dst, ready)
	sc.moves++
	return po, ready
}
