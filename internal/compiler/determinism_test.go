package compiler

import (
	"bytes"
	"testing"

	"pcoup/internal/bench"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

// TestCodegenDeterministic compiles every benchmark several times and
// requires byte-identical assembly: the compiler must not leak Go map
// iteration order into unit choices or schedules (reproducible builds
// are a prerequisite for reproducible experiments).
func TestCodegenDeterministic(t *testing.T) {
	cfg := machine.Baseline()
	for _, name := range bench.Names() {
		for _, kind := range []bench.SourceKind{bench.Sequential, bench.Threaded} {
			b, err := bench.Get(name, kind)
			if err != nil {
				t.Fatal(err)
			}
			var first []byte
			for trial := 0; trial < 3; trial++ {
				prog, _, err := Compile(b.Source, cfg, Options{Mode: Unrestricted})
				if err != nil {
					t.Fatalf("%s/%v: %v", name, kind, err)
				}
				var buf bytes.Buffer
				if err := isa.WriteText(&buf, prog); err != nil {
					t.Fatal(err)
				}
				if trial == 0 {
					first = append([]byte{}, buf.Bytes()...)
					continue
				}
				if !bytes.Equal(first, buf.Bytes()) {
					t.Fatalf("%s/%v: compilation is nondeterministic", name, kind)
				}
			}
		}
	}
}
