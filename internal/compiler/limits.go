package compiler

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/sexpr"
)

// Limits bounds the resources a single compilation may consume. The
// compiler macro-expands procedures and unrolls loops, so small sources
// can demand large amounts of compile work; services compiling untrusted
// programs must cap every dimension. Zero values leave a dimension
// unlimited (sexpr's stack-safety nesting ceiling still applies).
type Limits struct {
	// MaxSourceBytes bounds the raw source length.
	MaxSourceBytes int
	// MaxNodes bounds the number of parse-tree nodes.
	MaxNodes int
	// MaxDepth bounds list nesting in the source.
	MaxDepth int
	// MaxThreads bounds the number of thread segments the program carves
	// out (fork sites, forall-static iterations, runtime forall workers).
	MaxThreads int
	// MaxIROps bounds the total IR operations across all segments after
	// lowering — the knob that stops macro-expansion/unrolling bombs.
	MaxIROps int
	// MaxMemWords bounds the program's memory image (globals + hidden
	// synchronization cells).
	MaxMemWords int64
	// Deadline, when non-zero, aborts compilation once passed. Checked at
	// segment boundaries, so enforcement granularity is one segment.
	Deadline time.Time
}

// ServiceLimits are the defaults applied to untrusted program
// submissions. Generous enough for every benchmark in the repo and for
// generated fuzz programs with hundreds of threads, tight enough that a
// hostile source cannot pin a worker or exhaust memory.
func ServiceLimits() Limits {
	return Limits{
		MaxSourceBytes: 64 << 10,
		MaxNodes:       100_000,
		MaxDepth:       200,
		MaxThreads:     512,
		MaxIROps:       500_000,
		MaxMemWords:    1 << 20,
		// Deadline is set per-request by the caller.
	}
}

// LimitError reports that compilation stopped because a Limits bound was
// exceeded. Typed so services can return 422 rather than 500.
type LimitError struct {
	What  string // "threads", "irops", or "memwords"
	Limit int64
	Got   int64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("compile: program exceeds %s limit %d (needs ≥ %d)", e.What, e.Limit, e.Got)
}

// DeadlineError reports that the compile deadline expired.
type DeadlineError struct{ Deadline time.Time }

func (e *DeadlineError) Error() string { return "compile: deadline exceeded" }

// IsResourceLimit reports whether err is any of the typed bounds
// violations a hardened endpoint should surface as a client error:
// sexpr parse limits, compiler limits, or a compile deadline.
func IsResourceLimit(err error) bool {
	var (
		pe *sexpr.LimitError
		ce *LimitError
		de *DeadlineError
	)
	return errors.As(err, &pe) || errors.As(err, &ce) || errors.As(err, &de)
}

// CompileBounded parses and compiles source under lim, honoring ctx
// cancellation (a ctx deadline tightens lim.Deadline). It is the entry
// point for untrusted input; Compile remains the trusted-input path with
// only stack-safety bounds.
func CompileBounded(ctx context.Context, src string, cfg *machine.Config, opts Options, lim Limits) (*isa.Program, *Diagnostics, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	if dl, ok := ctx.Deadline(); ok && (lim.Deadline.IsZero() || dl.Before(lim.Deadline)) {
		lim.Deadline = dl
	}
	forms, err := sexpr.ParseLimits(src, sexpr.Limits{
		MaxBytes: lim.MaxSourceBytes,
		MaxNodes: lim.MaxNodes,
		MaxDepth: lim.MaxDepth,
	})
	if err != nil {
		return nil, nil, err
	}
	return compileForms(forms, cfg, opts, &lim)
}

// checkThreads enforces the segment-count and memory-image bounds; it
// runs once per lowered segment, so it sees fork/forall expansion as it
// happens.
func (e *env) checkThreads() error {
	if e.lim == nil {
		return nil
	}
	if e.lim.MaxThreads > 0 && len(e.segs) > e.lim.MaxThreads {
		return &LimitError{What: "threads", Limit: int64(e.lim.MaxThreads), Got: int64(len(e.segs))}
	}
	if e.lim.MaxMemWords > 0 && e.memWords() > e.lim.MaxMemWords {
		return &LimitError{What: "memwords", Limit: e.lim.MaxMemWords, Got: e.memWords()}
	}
	return nil
}

// checkLowerBudget enforces the IR-op cap and compile deadline. It is
// called once per lowered statement (including every macro-expanded and
// unrolled copy), so expansion bombs are caught at statement granularity
// rather than after the fact.
func (e *env) checkLowerBudget() error {
	if e.lim == nil {
		return nil
	}
	if e.lim.MaxIROps > 0 && e.irOps > int64(e.lim.MaxIROps) {
		return &LimitError{What: "irops", Limit: int64(e.lim.MaxIROps), Got: e.irOps}
	}
	e.stmtCount++
	if !e.lim.Deadline.IsZero() && e.stmtCount%64 == 0 && time.Now().After(e.lim.Deadline) {
		return &DeadlineError{Deadline: e.lim.Deadline}
	}
	return nil
}
