package compiler

import (
	"testing"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/sexpr"
)

func TestRotate(t *testing.T) {
	xs := []int{0, 1, 2, 3}
	if got := rotate(xs, 1); got[0] != 1 || got[3] != 0 {
		t.Errorf("rotate by 1 = %v", got)
	}
	if got := rotate(xs, 6); got[0] != 2 {
		t.Errorf("rotate wraps: %v", got)
	}
	if got := rotate(nil, 3); len(got) != 0 {
		t.Errorf("rotate nil = %v", got)
	}
	// The original must not be mutated.
	if xs[0] != 0 {
		t.Error("rotate mutated its input")
	}
}

// testEnv builds a minimal environment for white-box scheduler tests.
func testEnv(t *testing.T) *env {
	t.Helper()
	forms, err := sexpr.Parse("(program t (def (main) (set x 1)))")
	if err != nil {
		t.Fatal(err)
	}
	e, err := newEnv(forms, machine.Baseline(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestClaimProbe(t *testing.T) {
	e := testEnv(t)
	fn := newFn("t")
	sc := newScheduler(e, fn, &segWork{name: "t"})
	if c := sc.probe(0, 0); c != 0 {
		t.Errorf("probe empty = %d", c)
	}
	if c := sc.claim(0, 0); c != 0 {
		t.Errorf("first claim = %d", c)
	}
	if c := sc.claim(0, 0); c != 1 {
		t.Errorf("second claim = %d", c)
	}
	if c := sc.probe(0, 0); c != 2 {
		t.Errorf("probe after claims = %d", c)
	}
	if c := sc.claim(0, 5); c != 5 {
		t.Errorf("claim at 5 = %d", c)
	}
	if c := sc.claim(0, 2); c != 2 {
		t.Errorf("claim fills gap = %d", c)
	}
}

// buildTestBlock assembles a block from instructions for dependence tests.
func buildTestBlock(ins ...*Instr) *Block { return &Block{Instrs: ins} }

func TestBuildDepsRAWandWAR(t *testing.T) {
	e := testEnv(t)
	fn := newFn("t")
	v1 := fn.newVReg(TInt)
	v2 := fn.newVReg(TInt)
	sc := newScheduler(e, fn, &segWork{name: "t"})
	def := &Instr{Op: isa.OpAdd, Dst: v1, Srcs: []Src{cint(1), cint(2)}, Type: TInt}
	use := &Instr{Op: isa.OpAdd, Dst: v2, Srcs: []Src{vsrc(v1), cint(1)}, Type: TInt}
	redef := &Instr{Op: isa.OpMov, Dst: v1, Srcs: []Src{cint(9)}, Type: TInt}
	nodes := sc.buildDeps(buildTestBlock(def, use, redef))
	hasEdge := func(from, to int) bool {
		for _, s := range nodes[from].succs {
			if s.n == nodes[to] {
				return true
			}
		}
		return false
	}
	if !hasEdge(0, 1) {
		t.Error("missing RAW edge def->use")
	}
	if !hasEdge(1, 2) {
		t.Error("missing WAR edge use->redef")
	}
	if !hasEdge(0, 2) {
		t.Error("missing WAW edge def->redef")
	}
	if hasEdge(1, 0) || hasEdge(2, 1) {
		t.Error("backward edges present")
	}
}

func TestBuildDepsMemoryOrdering(t *testing.T) {
	e := testEnv(t)
	fn := newFn("t")
	v := fn.newVReg(TInt)
	sc := newScheduler(e, fn, &segWork{name: "t"})

	ldA := &Instr{Op: isa.OpLoad, Dst: v, Alias: "a", Offset: 8, AddrConst: true, Type: TInt}
	ldA2 := &Instr{Op: isa.OpLoad, Dst: fn.newVReg(TInt), Alias: "a", Offset: 9, AddrConst: true, Type: TInt}
	stB := &Instr{Op: isa.OpStore, Srcs: []Src{cint(1)}, Alias: "b", Offset: 20, AddrConst: true}
	stA := &Instr{Op: isa.OpStore, Srcs: []Src{cint(2)}, Alias: "a", Offset: 8, AddrConst: true}
	stADiff := &Instr{Op: isa.OpStore, Srcs: []Src{cint(3)}, Alias: "a", Offset: 9, AddrConst: true}
	sync := &Instr{Op: isa.OpLoad, Dst: fn.newVReg(TInt), Alias: "f", Offset: 30, AddrConst: true, Sync: isa.SyncConsume, Type: TInt}
	after := &Instr{Op: isa.OpLoad, Dst: fn.newVReg(TInt), Alias: "b", Offset: 21, AddrConst: true, Type: TInt}

	nodes := sc.buildDeps(buildTestBlock(ldA, ldA2, stB, stA, stADiff, sync, after))
	hasEdge := func(from, to int) bool {
		for _, s := range nodes[from].succs {
			if s.n == nodes[to] {
				return true
			}
		}
		return false
	}
	if hasEdge(0, 1) {
		t.Error("two loads must not be ordered")
	}
	if hasEdge(0, 2) {
		t.Error("different aliases must not be ordered (load a vs store b)")
	}
	if !hasEdge(0, 3) {
		t.Error("store to a@8 must follow load of a@8")
	}
	if hasEdge(0, 4) {
		t.Error("store a@9 must not be ordered against load a@8 (distinct constant addresses)")
	}
	// The synchronizing load is a barrier in both directions.
	for i := 0; i < 5; i++ {
		if !hasEdge(i, 5) {
			t.Errorf("sync load missing barrier edge from op %d", i)
		}
	}
	if !hasEdge(5, 6) {
		t.Error("load after sync must be ordered behind it")
	}
}

func TestBuildDepsForkOrdering(t *testing.T) {
	e := testEnv(t)
	fn := newFn("t")
	sc := newScheduler(e, fn, &segWork{name: "t"})
	st := &Instr{Op: isa.OpStore, Srcs: []Src{cint(1)}, Alias: "a", Offset: 8, AddrConst: true}
	fork1 := &Instr{Op: isa.OpFork, ForkSeg: "w1"}
	fork2 := &Instr{Op: isa.OpFork, ForkSeg: "w2"}
	ld := &Instr{Op: isa.OpLoad, Dst: fn.newVReg(TInt), Alias: "a", Offset: 8, AddrConst: true, Type: TInt}
	nodes := sc.buildDeps(buildTestBlock(st, fork1, fork2, ld))
	hasEdge := func(from, to int) bool {
		for _, s := range nodes[from].succs {
			if s.n == nodes[to] {
				return true
			}
		}
		return false
	}
	if !hasEdge(0, 1) {
		t.Error("fork must follow earlier stores")
	}
	if !hasEdge(1, 2) {
		t.Error("forks must stay in program (priority) order")
	}
	if !hasEdge(1, 3) || !hasEdge(2, 3) {
		t.Error("memory ops must follow earlier forks")
	}
}

func TestSortedClusters(t *testing.T) {
	m := map[int]int{3: 9, 0: 1, 2: 5}
	got := sortedClusters(m)
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Errorf("sortedClusters = %v", got)
	}
}

func TestLoopBlocksDetection(t *testing.T) {
	fn := newFn("t")
	// b0 -> b1 (loop header) -> b2 (body, jmp b1) ; b3 exit
	b0 := fn.newBlock()
	b1 := fn.newBlock()
	b2 := fn.newBlock()
	b3 := fn.newBlock()
	_ = b0
	cond := fn.newVReg(TInt)
	b1.Instrs = append(b1.Instrs, &Instr{Op: isa.OpBf, Srcs: []Src{vsrc(cond)}, Target: b3})
	b2.Instrs = append(b2.Instrs, &Instr{Op: isa.OpJmp, Target: b1})
	b3.Instrs = append(b3.Instrs, &Instr{Op: isa.OpHalt})
	loops := fn.loopBlocks()
	if !loops[1] || !loops[2] {
		t.Errorf("loop blocks = %v, want b1 and b2", loops)
	}
	if loops[0] || loops[3] {
		t.Errorf("non-loop blocks flagged: %v", loops)
	}
}

func TestLivenessCrossBlock(t *testing.T) {
	fn := newFn("t")
	v := fn.newVReg(TInt)
	local := fn.newVReg(TInt)
	b0 := fn.newBlock()
	b1 := fn.newBlock()
	b0.Instrs = append(b0.Instrs,
		&Instr{Op: isa.OpMov, Dst: v, Srcs: []Src{cint(1)}, Type: TInt},
		&Instr{Op: isa.OpMov, Dst: local, Srcs: []Src{cint(2)}, Type: TInt},
		&Instr{Op: isa.OpAdd, Dst: local, Srcs: []Src{vsrc(local), cint(1)}, Type: TInt},
	)
	b1.Instrs = append(b1.Instrs,
		&Instr{Op: isa.OpStore, Srcs: []Src{vsrc(v)}, Alias: "a", Offset: 8, AddrConst: true},
		&Instr{Op: isa.OpHalt},
	)
	cross := fn.crossBlockVRegs()
	if !cross[v] {
		t.Error("v used in a later block must be cross-block")
	}
	if cross[local] {
		t.Error("block-local value flagged as cross-block")
	}
}

// TestScheduleRespectsMaxDests compiles code forcing wide fan-out and
// checks no emitted op exceeds the destination budget (also validated by
// Program.Validate, but asserted here against a tighter machine).
func TestScheduleRespectsMaxDests(t *testing.T) {
	cfg := machine.Baseline()
	cfg.MaxDests = 1
	src := `
(program p
  (global a (array float 4) (init 1.0 2.0 3.0 4.0))
  (global out (array float 8))
  (def (main)
    (set x (aref a 0))
    (unroll (i 0 8)
      (aset out i (+ x (aref a (% i 4)))))))`
	prog, _, err := Compile(src, cfg, Options{Mode: Unrestricted})
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range prog.Segments {
		for _, in := range seg.Instrs {
			for _, op := range in.Ops {
				if op != nil && len(op.Dests) > 1 {
					t.Fatalf("op %s has %d dests with MaxDests=1", op, len(op.Dests))
				}
			}
		}
	}
}
