package compiler

import (
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/sexpr"
)

// This file exports the compiler's front-end view of a program —
// declarations, constants, and the shared arithmetic evaluation rules —
// so independent consumers (the internal/oracle reference interpreter)
// can evaluate source programs under exactly the semantics the compiler
// folds with and the simulator executes with, without reaching into the
// lowering pipeline.

// GlobalDecl describes one declared memory-resident variable or array.
type GlobalDecl struct {
	Name  string
	Float bool
	Size  int64
	Addr  int64
	Init  []isa.Value
	Empty bool
}

// FuncDecl is a user procedure. Procedures are macros: calls are
// expanded inline, so recursion is not supported.
type FuncDecl struct {
	Name   string
	Params []string
	Body   []*sexpr.Node
}

// Declarations is the front end's resolved view of a program's top-level
// forms: constants folded, globals laid out at their final addresses,
// and procedures collected. Statement bodies remain raw parse trees.
type Declarations struct {
	Name        string
	Consts      map[string]isa.Value
	Globals     map[string]*GlobalDecl
	GlobalOrder []string
	Funcs       map[string]*FuncDecl
}

// MaxExpandDepth is the procedure macro-expansion bound shared by the
// compiler and the reference interpreter.
const MaxExpandDepth = maxInlineDepth

// Analyze resolves the declarations of pre-parsed top-level forms.
// Global addresses match what any compilation of the same forms assigns.
func Analyze(forms []*sexpr.Node) (*Declarations, error) {
	// Address layout depends only on the forms, not the machine, so the
	// baseline config suffices for environment construction.
	e, err := newEnv(forms, machine.Baseline(), Options{})
	if err != nil {
		return nil, err
	}
	d := &Declarations{
		Name:        e.progName,
		Consts:      e.consts,
		Globals:     map[string]*GlobalDecl{},
		GlobalOrder: append([]string(nil), e.globalOrder...),
		Funcs:       map[string]*FuncDecl{},
	}
	for name, g := range e.globals {
		d.Globals[name] = &GlobalDecl{
			Name:  g.name,
			Float: g.typ == TFloat,
			Size:  g.size,
			Addr:  g.addr,
			Init:  g.init,
			Empty: g.empty,
		}
	}
	for name, f := range e.funcs {
		d.Funcs[name] = &FuncDecl{Name: f.name, Params: f.params, Body: f.body}
	}
	return d, nil
}

// AnalyzeSource parses src (under stack-safety bounds only) and resolves
// its declarations.
func AnalyzeSource(src string) (*Declarations, error) {
	forms, err := sexpr.Parse(src)
	if err != nil {
		return nil, err
	}
	return Analyze(forms)
}

// IsArithOp reports whether op is a primitive arithmetic/comparison
// operator of the source language.
func IsArithOp(op string) bool {
	_, ok := arithOpcode(op)
	return ok
}

// EvalArith applies a primitive operator to evaluated operands using the
// same rules the compiler constant-folds with (and the simulator
// executes with). n is used for error positions and may be nil.
func EvalArith(n *sexpr.Node, op string, operands []isa.Value) (isa.Value, error) {
	return constApply(n, op, operands)
}
