package compiler

import (
	"fmt"

	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/sexpr"
)

// global describes one memory-resident variable or array.
type global struct {
	name  string
	typ   Type
	size  int64
	addr  int64
	init  []isa.Value
	empty bool // presence bits start empty (synchronization cells)
}

// funcDef is a user procedure; calls are macro-expanded (inlined).
type funcDef struct {
	name   string
	params []string
	body   []*sexpr.Node
}

// segWork is one thread body awaiting lowering.
type segWork struct {
	name string
	body []*sexpr.Node
	// consts carries compile-time bindings captured at the fork site
	// (unroll and forall-static indices).
	consts map[string]isa.Value
	// doneAddr is the synchronization cell this segment produces to when
	// it finishes (-1 for the main segment).
	doneAddr int64
	// mailboxAddr, when >= 0, is a cell the segment consumes its loop
	// index from at startup (runtime forall workers); mailboxVar names
	// the index variable.
	mailboxAddr int64
	mailboxVar  string
	// rotation selects the segment's cluster preference (static load
	// balancing: different threads get different cluster orderings).
	rotation int
}

// env is the whole-program compilation environment.
type env struct {
	cfg  *machine.Config
	opts Options

	progName    string
	consts      map[string]isa.Value
	globals     map[string]*global
	globalOrder []string
	funcs       map[string]*funcDef

	segs         []segWork
	fns          []*Fn
	nextAddr     int64
	nextGen      int // generator for hidden cell / segment names
	nextRotation int // static load-balancing counter for spawned threads

	// lim, when non-nil, bounds compile work (untrusted input); irOps and
	// stmtCount are the running totals checked against it.
	lim       *Limits
	irOps     int64
	stmtCount int64
}

// dataBase is the first address assigned to globals (address 0 is
// reserved so that stray zero addresses fault visibly in tests).
const dataBase = 8

// newEnv scans top-level forms and builds the program environment.
func newEnv(forms []*sexpr.Node, cfg *machine.Config, opts Options) (*env, error) {
	e := &env{
		cfg:      cfg,
		opts:     opts,
		consts:   map[string]isa.Value{},
		globals:  map[string]*global{},
		funcs:    map[string]*funcDef{},
		nextAddr: dataBase,
	}
	// Accept either a single (program name form...) wrapper or bare
	// top-level forms.
	if len(forms) == 1 && forms[0].Head() == "program" {
		w := forms[0]
		if len(w.List) < 2 || w.List[1].Kind != sexpr.KSymbol {
			return nil, errAt(w, "program wants a name")
		}
		e.progName = w.List[1].Sym
		forms = w.List[2:]
	} else {
		e.progName = "program"
	}
	for _, f := range forms {
		switch f.Head() {
		case "const":
			if err := e.declConst(f); err != nil {
				return nil, err
			}
		case "global":
			if err := e.declGlobal(f); err != nil {
				return nil, err
			}
		case "def":
			if err := e.declFunc(f); err != nil {
				return nil, err
			}
		default:
			return nil, errAt(f, "unknown top-level form %q", f.Head())
		}
	}
	main, ok := e.funcs["main"]
	if !ok {
		return nil, &CompileError{Msg: "no (def (main) ...) found"}
	}
	if len(main.params) != 0 {
		return nil, &CompileError{Msg: "main must take no parameters"}
	}
	e.segs = append(e.segs, segWork{
		name: "main", body: main.body, consts: map[string]isa.Value{},
		doneAddr: -1, mailboxAddr: -1,
	})
	return e, nil
}

func (e *env) declConst(f *sexpr.Node) error {
	if len(f.List) != 3 || f.List[1].Kind != sexpr.KSymbol {
		return errAt(f, "const wants (const name value)")
	}
	name := f.List[1].Sym
	v, err := e.constEval(f.List[2], nil)
	if err != nil {
		return err
	}
	if _, dup := e.consts[name]; dup {
		return errAt(f, "duplicate const %q", name)
	}
	e.consts[name] = v
	return nil
}

// declGlobal parses (global name type option...) where type is one of
// int, float, (array int N), (array float N) and options are
// (init v...) or (empty).
func (e *env) declGlobal(f *sexpr.Node) error {
	if len(f.List) < 3 || f.List[1].Kind != sexpr.KSymbol {
		return errAt(f, "global wants (global name type [options])")
	}
	g := &global{name: f.List[1].Sym, size: 1}
	tn := f.List[2]
	switch {
	case tn.IsSym("int"):
		g.typ = TInt
	case tn.IsSym("float"):
		g.typ = TFloat
	case tn.Head() == "array":
		if len(tn.List) != 3 {
			return errAt(tn, "array wants (array type size)")
		}
		switch {
		case tn.List[1].IsSym("int"):
			g.typ = TInt
		case tn.List[1].IsSym("float"):
			g.typ = TFloat
		default:
			return errAt(tn, "array element type must be int or float")
		}
		n, err := e.constEval(tn.List[2], nil)
		if err != nil {
			return err
		}
		if n.AsInt() < 1 {
			return errAt(tn, "array size must be positive")
		}
		g.size = n.AsInt()
	default:
		return errAt(tn, "unknown type %s", tn)
	}
	for _, opt := range f.List[3:] {
		if opt.IsSym("empty") {
			g.empty = true
			continue
		}
		switch opt.Head() {
		case "init":
			for _, vn := range opt.List[1:] {
				v, err := e.constEval(vn, nil)
				if err != nil {
					return err
				}
				if g.typ == TFloat && !v.IsFloat {
					v = isa.Float(v.AsFloat())
				}
				g.init = append(g.init, v)
			}
			if int64(len(g.init)) > g.size {
				return errAt(opt, "init has %d values for size %d", len(g.init), g.size)
			}
		case "empty":
			g.empty = true
		default:
			return errAt(opt, "unknown global option %s", opt)
		}
	}
	if _, dup := e.globals[g.name]; dup {
		return errAt(f, "duplicate global %q", g.name)
	}
	g.addr = e.nextAddr
	e.nextAddr += g.size
	e.globals[g.name] = g
	e.globalOrder = append(e.globalOrder, g.name)
	return nil
}

func (e *env) declFunc(f *sexpr.Node) error {
	if len(f.List) < 3 || f.List[1].Kind != sexpr.KList || len(f.List[1].List) == 0 {
		return errAt(f, "def wants (def (name params...) body...)")
	}
	sig := f.List[1].List
	fd := &funcDef{name: sig[0].Sym}
	if sig[0].Kind != sexpr.KSymbol {
		return errAt(f, "function name must be a symbol")
	}
	for _, p := range sig[1:] {
		if p.Kind != sexpr.KSymbol {
			return errAt(p, "parameter must be a symbol")
		}
		fd.params = append(fd.params, p.Sym)
	}
	fd.body = f.List[2:]
	if _, dup := e.funcs[fd.name]; dup {
		return errAt(f, "duplicate function %q", fd.name)
	}
	e.funcs[fd.name] = fd
	return nil
}

// newSyncCell allocates a hidden one-word synchronization cell whose
// presence bit starts empty.
func (e *env) newSyncCell(kind string) int64 {
	e.nextGen++
	name := fmt.Sprintf("_%s%d", kind, e.nextGen)
	g := &global{name: name, typ: TInt, size: 1, addr: e.nextAddr, empty: true}
	e.nextAddr++
	e.globals[name] = g
	e.globalOrder = append(e.globalOrder, name)
	return g.addr
}

// genName produces a unique hidden segment name.
func (e *env) genName(base, kind string) string {
	e.nextGen++
	return fmt.Sprintf("%s#%s%d", base, kind, e.nextGen)
}

// constEval evaluates a compile-time constant expression. scope provides
// extra bindings (unroll indices); it may be nil.
func (e *env) constEval(n *sexpr.Node, scope map[string]isa.Value) (isa.Value, error) {
	switch n.Kind {
	case sexpr.KInt:
		return isa.Int(n.Int), nil
	case sexpr.KFloat:
		return isa.Float(n.Float), nil
	case sexpr.KSymbol:
		if scope != nil {
			if v, ok := scope[n.Sym]; ok {
				return v, nil
			}
		}
		if v, ok := e.consts[n.Sym]; ok {
			return v, nil
		}
		if g, ok := e.globals[n.Sym]; ok {
			_ = g
			return isa.Value{}, errAt(n, "global %q is not a compile-time constant", n.Sym)
		}
		return isa.Value{}, errAt(n, "unknown constant %q", n.Sym)
	case sexpr.KList:
		if n.Head() == "addr" && len(n.List) == 2 && n.List[1].Kind == sexpr.KSymbol {
			g, ok := e.globals[n.List[1].Sym]
			if !ok {
				return isa.Value{}, errAt(n, "unknown global %q", n.List[1].Sym)
			}
			return isa.Int(g.addr), nil
		}
		if _, ok := arithOpcode(n.Head()); !ok {
			return isa.Value{}, errAt(n, "not a constant expression: %s", n)
		}
		var vals []isa.Value
		for _, c := range n.List[1:] {
			v, err := e.constEval(c, scope)
			if err != nil {
				return isa.Value{}, err
			}
			vals = append(vals, v)
		}
		return constApply(n, n.Head(), vals)
	}
	return isa.Value{}, errAt(n, "not a constant expression")
}

// lowerAll lowers every segment (including fork bodies discovered during
// lowering) to IR. Under Limits, the segment count and memory image are
// re-checked each iteration because both grow as lowering discovers
// forks and allocates synchronization cells.
func (e *env) lowerAll() error {
	for i := 0; i < len(e.segs); i++ {
		if err := e.checkThreads(); err != nil {
			return err
		}
		fn, err := e.lowerSegment(&e.segs[i])
		if err != nil {
			return err
		}
		e.fns = append(e.fns, fn)
	}
	return e.checkThreads()
}

// memWords returns the total memory image size required.
func (e *env) memWords() int64 { return e.nextAddr + 16 }
