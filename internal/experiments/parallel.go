package experiments

import (
	"context"
	"runtime"
	"sync"
)

// runParallel is runParallelCtx without external cancellation.
func runParallel(n int, fn func(i int) error) error {
	return runParallelCtx(context.Background(), n, fn)
}

// runParallelCtx executes fn(i) for every i in [0, n) over a bounded pool
// of host goroutines. Each experiment cell is an independent
// deterministic simulation, so fan-out changes wall-clock time only;
// results are written by index, keeping output order stable. The first
// error wins and cancels the sweep: no new cells are dispatched after it
// is recorded (cells already running finish, since in-cell cancellation
// is the simulator context's job). Cancelling ctx likewise stops
// dispatch; if no cell failed first, ctx.Err() is returned.
func runParallelCtx(ctx context.Context, n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	done := make(chan struct{})
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
						close(done)
					}
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if first != nil {
		return first
	}
	return ctx.Err()
}

// cell identifies one (benchmark, mode, config) execution of a sweep.
type cell struct {
	bench string
	mode  Mode
}

// benchModeCells enumerates benchmark x mode combinations that exist.
func benchModeCells(modes []Mode) []cell {
	var out []cell
	for _, b := range []string{"matrix", "fft", "model", "lud"} {
		for _, m := range modes {
			if ModeSupported(b, m) {
				out = append(out, cell{b, m})
			}
		}
	}
	return out
}
