package experiments

import (
	"context"

	"pcoup/internal/parexec"
)

// runParallel is runParallelCtx without external cancellation.
func runParallel(n int, fn func(i int) error) error {
	return runParallelCtx(context.Background(), n, fn)
}

// runParallelCtx executes fn(i) for every i in [0, n) through the shared
// parallel cell-execution engine (internal/parexec). Each experiment
// cell is an independent deterministic simulation, so fan-out changes
// wall-clock time only; results are written by index, keeping output
// order stable, and on failure the lowest-index cell error is returned —
// the same error sequential execution reports. The pool width comes
// from the context (parexec.WithLimit, set by pcbench -j and pcserved's
// -sweep-parallelism) and defaults to GOMAXPROCS; a context-carried
// parexec.Limiter additionally bounds cells across concurrent jobs.
func runParallelCtx(ctx context.Context, n int, fn func(i int) error) error {
	return parexec.Run(ctx, n, fn)
}

// cell identifies one (benchmark, mode, config) execution of a sweep.
type cell struct {
	bench string
	mode  Mode
}

// benchModeCells enumerates benchmark x mode combinations that exist.
func benchModeCells(modes []Mode) []cell {
	var out []cell
	for _, b := range []string{"matrix", "fft", "model", "lud"} {
		for _, m := range modes {
			if ModeSupported(b, m) {
				out = append(out, cell{b, m})
			}
		}
	}
	return out
}
