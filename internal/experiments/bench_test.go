package experiments

// Sweep-level benchmarks: the full Table 2 grid (every benchmark x mode
// cell) and a bare compile. BenchmarkTable2 exercises the compiled-
// program cache: after the first iteration every cell reuses its cached
// program, so the steady state measures pure simulation.
//
//	go test ./internal/experiments/ -bench . -benchmem

import (
	"testing"

	"pcoup/internal/bench"
	"pcoup/internal/compiler"
	"pcoup/internal/machine"
)

// BenchmarkTable2 runs the complete Table 2 sweep per iteration (18
// cells, warm program cache after the first iteration).
func BenchmarkTable2(b *testing.B) {
	cfg := machine.Baseline()
	if _, err := Table2(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiler measures one cold compile (LUD, the largest
// benchmark program) — the cost the program cache saves per warm cell.
func BenchmarkCompiler(b *testing.B) {
	cfg := machine.Baseline()
	bm, err := bench.Get("lud", bench.Threaded)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := compiler.Compile(bm.Source, cfg, compiler.Options{Mode: compiler.Unrestricted}); err != nil {
			b.Fatal(err)
		}
	}
}
