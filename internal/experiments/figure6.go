package experiments

import (
	"context"
	"fmt"
	"io"

	"pcoup/internal/machine"
)

// Figure6Row is one point of Figure 6: cycle count of a benchmark in
// Coupled mode under one inter-cluster communication scheme.
type Figure6Row struct {
	Bench        string
	Interconnect machine.InterconnectKind
	Cycles       int64
	VsFull       float64
	// WritebackRetries counts register writes delayed by port/bus
	// arbitration (a direct measure of communication contention).
	WritebackRetries int64
}

// Figure6 reproduces the restricted-communication experiment: each
// benchmark runs in Coupled mode under the Full, Tri-Port, Dual-Port,
// Single-Port, and Shared-Bus interconnection schemes.
func Figure6(cfg *machine.Config) ([]Figure6Row, error) {
	return Figure6Ctx(context.Background(), cfg)
}

// Figure6Ctx is Figure6 under a cancellation context.
func Figure6Ctx(ctx context.Context, cfg *machine.Config) ([]Figure6Row, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	type f6cell struct {
		bench string
		ic    machine.InterconnectKind
	}
	var cells []f6cell
	for _, b := range []string{"matrix", "fft", "model", "lud"} {
		for _, ic := range machine.Interconnects() {
			cells = append(cells, f6cell{b, ic})
		}
	}
	rows := make([]Figure6Row, len(cells))
	err := runParallelCtx(ctx, len(cells), func(i int) error {
		c := cells[i]
		r, err := ExecuteCtx(ctx, c.bench, COUPLED, cfg.WithInterconnect(c.ic))
		if err != nil {
			return err
		}
		rows[i] = Figure6Row{
			Bench: c.bench, Interconnect: c.ic, Cycles: r.Cycles,
			WritebackRetries: r.Result.WritebackRetries,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	full := map[string]int64{}
	for _, r := range rows {
		if r.Interconnect == machine.Full {
			full[r.Bench] = r.Cycles
		}
	}
	for i := range rows {
		rows[i].VsFull = float64(rows[i].Cycles) / float64(full[rows[i].Bench])
	}
	return rows, nil
}

// WriteFigure6 prints the restricted-communication chart data.
func WriteFigure6(w io.Writer, rows []Figure6Row) {
	fmt.Fprintf(w, "Figure 6: coupled-mode cycle counts under restricted communication\n")
	fmt.Fprintf(w, "%-10s %-12s %9s %8s %10s\n", "Benchmark", "Scheme", "#Cycles", "vs Full", "WBRetries")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-12s %9d %8.3f %10d\n",
			r.Bench, r.Interconnect, r.Cycles, r.VsFull, r.WritebackRetries)
	}
}
