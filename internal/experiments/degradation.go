package experiments

import (
	"context"
	"fmt"
	"io"

	"pcoup/internal/faults"
	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

// DegradationRow is one point of the fault-degradation sweep: a benchmark
// on one machine configuration under one fault intensity, with the
// slowdown relative to the fault-free run of the same cell and the fault
// events the injector actually delivered.
type DegradationRow struct {
	Config string
	Bench  string
	// Rate is the sweep's base fault rate; the injector's individual
	// rates are derived from it (see degradationModel).
	Rate   float64
	Cycles int64
	// Slowdown is Cycles relative to the Rate == 0 run of the same
	// (Config, Bench) cell.
	Slowdown float64
	// Faults reports what the injector delivered and what recovery did
	// (zero-valued for the fault-free baseline).
	Faults sim.FaultStats
}

// degradationRates are the swept base fault rates. Zero is the baseline
// every other point is normalized against.
var degradationRates = []float64{0, 0.001, 0.005, 0.02}

// degradationSeed fixes the injector's random streams so the sweep is
// exactly reproducible.
const degradationSeed = 17

// degradationModel derives a full fault model from one base rate: memory
// wakeups are dropped and delayed at the base rate, function units and
// writeback ports suffer short outage windows at half of it.
func degradationModel(rate float64) faults.Model {
	if rate == 0 {
		return faults.Model{}
	}
	return faults.Model{
		Seed:        degradationSeed,
		MemDropRate: rate, MemDelayRate: rate, MemDelayMax: 8,
		UnitOutageRate: rate / 2, UnitOutageCycles: 4,
		PortOutageRate: rate / 2, PortOutageCycles: 2,
	}
}

// degradationConfigs returns the machine configurations the sweep
// contrasts: the base machine and the same machine behind a shared
// writeback bus, whose single arbitration point amplifies port outages.
func degradationConfigs(cfg *machine.Config) []struct {
	name string
	cfg  *machine.Config
} {
	return []struct {
		name string
		cfg  *machine.Config
	}{
		{cfg.Interconnect.String(), cfg},
		{machine.SharedBus.String(), cfg.WithInterconnect(machine.SharedBus)},
	}
}

// Degradation sweeps fault intensity against slowdown on the coupled
// machine. Every run still verifies its computed results: injected
// faults (lost and delayed wakeups, unit and port outages) cost cycles
// but — with the forward-progress watchdog recovering lost wakeups —
// never correctness.
func Degradation(cfg *machine.Config) ([]DegradationRow, error) {
	return DegradationCtx(context.Background(), cfg)
}

// DegradationCtx is Degradation under a cancellation context.
func DegradationCtx(ctx context.Context, cfg *machine.Config) ([]DegradationRow, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	if cfg.Interconnect == machine.SharedBus {
		// The contrast configuration must differ from the base.
		cfg = cfg.WithInterconnect(machine.Full)
	}
	type dcell struct {
		config string
		bench  string
		rate   float64
		cfg    *machine.Config
	}
	var cells []dcell
	for _, cc := range degradationConfigs(cfg) {
		for _, b := range []string{"matrix", "fft", "model", "lud"} {
			for _, rate := range degradationRates {
				cells = append(cells, dcell{cc.name, b, rate, cc.cfg.WithFaults(degradationModel(rate))})
			}
		}
	}
	rows := make([]DegradationRow, len(cells))
	err := runParallelCtx(ctx, len(cells), func(i int) error {
		c := cells[i]
		r, err := ExecuteCtx(ctx, c.bench, COUPLED, c.cfg)
		if err != nil {
			return fmt.Errorf("degradation: %s rate %g: %w", c.config, c.rate, err)
		}
		row := DegradationRow{Config: c.config, Bench: c.bench, Rate: c.rate, Cycles: r.Cycles}
		if r.Result.Faults != nil {
			row.Faults = *r.Result.Faults
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := map[string]int64{}
	for _, r := range rows {
		if r.Rate == 0 {
			base[r.Config+"/"+r.Bench] = r.Cycles
		}
	}
	for i := range rows {
		rows[i].Slowdown = float64(rows[i].Cycles) / float64(base[rows[i].Config+"/"+rows[i].Bench])
	}
	return rows, nil
}

// WriteDegradation prints the sweep: per configuration and benchmark, the
// cycle cost of rising fault intensity, with the injector's event counts
// and the watchdog's recoveries.
func WriteDegradation(w io.Writer, rows []DegradationRow) {
	fmt.Fprintf(w, "Degradation: fault rate vs slowdown (Coupled mode; results verified on every run)\n")
	fmt.Fprintf(w, "%-10s %-10s %7s %9s %9s %8s %8s %8s %8s %8s\n",
		"Config", "Benchmark", "Rate", "#Cycles", "Slowdown",
		"Dropped", "Recov", "Delayed", "UnitOut", "PortRej")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-10s %7.3f %9d %8.2fx %8d %8d %8d %8d %8d\n",
			r.Config, r.Bench, r.Rate, r.Cycles, r.Slowdown,
			r.Faults.MemDropped, r.Faults.WakeupsRecovered, r.Faults.MemDelayed,
			r.Faults.UnitOutages, r.Faults.OutageRejects)
	}
}
