package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

// StallRow is one benchmark x mode cell of the stall-attribution report:
// where every active thread-cycle of the run went, by cause.
type StallRow struct {
	Bench  string
	Mode   Mode
	Cycles int64
	// Slots is the number of classified thread-cycles (active threads
	// integrated over the run); Breakdown's causes sum to it.
	Slots     int64
	Breakdown sim.StallBreakdown
	// TopWaitReg is the register with the most presence-wait cycles
	// ("" when nothing waited on a register).
	TopWaitReg       string
	TopWaitRegCycles int64
}

// Stalls runs every benchmark x mode cell on the baseline machine with
// stall attribution enabled. It explains the evaluation's cycle-count
// differences (Table 2) by cause: where SEQ and STS lose their cycles,
// and what the coupled machine's threads hide.
func Stalls(cfg *machine.Config) ([]StallRow, error) {
	return StallsCtx(context.Background(), cfg)
}

// StallsCtx is Stalls under a cancellation context.
func StallsCtx(ctx context.Context, cfg *machine.Config) ([]StallRow, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	cells := benchModeCells(Modes())
	rows := make([]StallRow, len(cells))
	err := runParallelCtx(ctx, len(cells), func(i int) error {
		r, err := ExecuteCtx(ctx, cells[i].bench, cells[i].mode, cfg, sim.WithStallAttribution())
		if err != nil {
			return err
		}
		st := r.Result.Stalls
		row := StallRow{
			Bench: cells[i].bench, Mode: cells[i].mode,
			Cycles: r.Cycles, Slots: st.Slots, Breakdown: st.Total,
		}
		for reg, n := range st.WaitRegs {
			if n > row.TopWaitRegCycles || (n == row.TopWaitRegCycles && reg < row.TopWaitReg) {
				row.TopWaitReg, row.TopWaitRegCycles = reg, n
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Bench < rows[j].Bench })
	return rows, nil
}

// WriteStalls prints the report: one row per cell, one column per cause,
// as percentages of the cell's active thread-cycles.
func WriteStalls(w io.Writer, rows []StallRow) {
	fmt.Fprintf(w, "Stall attribution: %% of active thread-cycles by cause (baseline machine)\n")
	fmt.Fprintf(w, "%-10s %-8s %9s %9s", "Benchmark", "Mode", "#Cycles", "Slots")
	for _, c := range sim.StallCauses() {
		fmt.Fprintf(w, " %9s", c)
	}
	fmt.Fprintf(w, "  top-wait\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %9d %9d", r.Bench, r.Mode, r.Cycles, r.Slots)
		for _, c := range sim.StallCauses() {
			fmt.Fprintf(w, " %8.1f%%", 100*float64(r.Breakdown[c])/float64(r.Slots))
		}
		if r.TopWaitReg != "" {
			fmt.Fprintf(w, "  %s (%d)", r.TopWaitReg, r.TopWaitRegCycles)
		}
		fmt.Fprintln(w)
	}
}
