package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pcoup/internal/feasibility"
	"pcoup/internal/machine"
)

// Experiment is one registry entry: a named, self-describing driver that
// produces JSON-encodable rows plus a formatter for the paper's textual
// layout. The registry is the single source of truth for the experiment
// names exposed by pcbench's -exp flag, the pcserved job API, and both
// tools' usage text.
type Experiment struct {
	// Name is the stable identifier (the -exp value and job-spec field).
	Name string
	// Brief is a one-line description for usage text.
	Brief string
	// Run produces the experiment's rows. The returned value is
	// JSON-encodable (a row slice, or a result struct).
	Run func(rc *RunContext) (any, error)
	// Write formats rows (as returned by Run) for terminals. cfg is the
	// base configuration the rows were produced under.
	Write func(w io.Writer, cfg *machine.Config, rows any)
	// SkipInAll excludes the experiment from "-exp all" runs (heavy
	// meta-experiments that spawn their own daemons, like fleetscale).
	SkipInAll bool
}

// registry lists every experiment in the paper's presentation order.
// Names here are the only copy: pcbench's flag help, its dispatch, and
// pcserved's job validation all derive from this slice.
var registry = []Experiment{
	{
		Name:  "table2",
		Brief: "baseline cycle counts and utilization per mode (Table 2)",
		Run:   func(rc *RunContext) (any, error) { return Table2Ctx(rc.Context(), rc.Config()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteTable2(w, rows.([]Table2Row)) },
	},
	{
		Name:  "figure4",
		Brief: "baseline cycle counts as a bar chart (Figure 4)",
		Run:   func(rc *RunContext) (any, error) { return Table2Ctx(rc.Context(), rc.Config()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteFigure4(w, rows.([]Table2Row)) },
	},
	{
		Name:  "figure5",
		Brief: "function-unit utilization per benchmark and mode (Figure 5)",
		Run:   func(rc *RunContext) (any, error) { return Figure5Ctx(rc.Context(), rc.Config()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteFigure5(w, rows.([]Figure5Row)) },
	},
	{
		Name:  "table3",
		Brief: "interference between coupled threads on a shared queue (Table 3)",
		Run:   func(rc *RunContext) (any, error) { return Table3Ctx(rc.Context(), rc.Config()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteTable3(w, rows.(*Table3Result)) },
	},
	{
		Name:  "figure6",
		Brief: "restricted inter-cluster communication schemes (Figure 6)",
		Run:   func(rc *RunContext) (any, error) { return Figure6Ctx(rc.Context(), rc.Config()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteFigure6(w, rows.([]Figure6Row)) },
	},
	{
		Name:  "figure7",
		Brief: "variable memory latency models (Figure 7)",
		Run:   func(rc *RunContext) (any, error) { return Figure7Ctx(rc.Context(), rc.Config()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteFigure7(w, rows.([]Figure7Row)) },
	},
	{
		Name:  "figure8",
		Brief: "function-unit count and mix sweep (Figure 8; ignores -machine)",
		Run:   func(rc *RunContext) (any, error) { return Figure8Ctx(rc.Context()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteFigure8(w, rows.([]Figure8Row)) },
	},
	{
		Name:  "registers",
		Brief: "compile-time peak register usage (Section 3)",
		Run:   func(rc *RunContext) (any, error) { return RegistersCtx(rc.Context(), rc.Config()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteRegisters(w, rows.([]RegisterRow)) },
	},
	{
		Name:  "scaling",
		Brief: "problem-size scaling of STS vs Coupled (extension)",
		Run:   func(rc *RunContext) (any, error) { return ScalingCtx(rc.Context(), rc.Config()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteScaling(w, rows.([]ScalingRow)) },
	},
	{
		Name:  "unroll",
		Brief: "automatic loop unrolling (extension)",
		Run:   func(rc *RunContext) (any, error) { return UnrollingCtx(rc.Context(), rc.Config()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteUnrolling(w, rows.([]UnrollRow)) },
	},
	{
		Name:  "threadcap",
		Brief: "active-thread limit sweep under long memory latency (extension)",
		Run:   func(rc *RunContext) (any, error) { return ThreadCapCtx(rc.Context(), rc.Cfg) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteThreadCap(w, rows.([]ThreadCapRow)) },
	},
	{
		Name:  "stalls",
		Brief: "cycle-level stall attribution by cause (extension)",
		Run:   func(rc *RunContext) (any, error) { return StallsCtx(rc.Context(), rc.Config()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteStalls(w, rows.([]StallRow)) },
	},
	{
		Name:  "dynsched",
		Brief: "dynamic scheduling: OoO window, branch prediction, prefetching (extension)",
		Run:   func(rc *RunContext) (any, error) { return DynSchedCtx(rc.Context(), rc.Config()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteDynSched(w, rows.([]DynSchedRow)) },
	},
	{
		Name:  "degradation",
		Brief: "fault-injection rate vs slowdown per configuration (extension)",
		Run:   func(rc *RunContext) (any, error) { return DegradationCtx(rc.Context(), rc.Config()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WriteDegradation(w, rows.([]DegradationRow)) },
	},
	{
		Name:  "feasibility",
		Brief: "silicon-cost model of the communication schemes (Sections 5-6)",
		Run: func(rc *RunContext) (any, error) {
			cfg := rc.Config()
			if cfg == nil {
				cfg = machine.Baseline()
			}
			return feasibility.Compare(cfg, feasibility.DefaultParams()), nil
		},
		Write: func(w io.Writer, cfg *machine.Config, rows any) {
			if cfg == nil {
				cfg = machine.Baseline()
			}
			feasibility.Write(w, cfg, rows.([]feasibility.Report))
		},
	},
	{
		Name:  "perf",
		Brief: "simulator throughput: cycles/sec, sweep wall-clock, allocs/cycle",
		Run:   func(rc *RunContext) (any, error) { return PerfCtx(rc.Context(), rc.Config()) },
		Write: func(w io.Writer, _ *machine.Config, rows any) { WritePerf(w, rows.(*PerfResult)) },
	},
}

// Registry returns all experiments in presentation order. The returned
// slice is shared; callers must not modify it.
func Registry() []Experiment { return registry }

// Register appends an experiment contributed by another package (used
// by packages that cannot live in this one without an import cycle,
// e.g. internal/fleet's fleetscale, which drives the service layer and
// the service layer imports experiments). Call from init; duplicate or
// unnamed registrations panic.
func Register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("experiments: Register: experiment needs a Name and a Run")
	}
	if _, ok := Lookup(e.Name); ok {
		panic(fmt.Sprintf("experiments: Register: duplicate experiment %q", e.Name))
	}
	registry = append(registry, e)
}

// Lookup finds an experiment by name.
func Lookup(name string) (*Experiment, bool) {
	for i := range registry {
		if registry[i].Name == name {
			return &registry[i], true
		}
	}
	return nil, false
}

// ExperimentNames lists the registered experiment names in order.
func ExperimentNames() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	return names
}

// UsageNames renders the names for flag help ("table2|figure4|...|all").
func UsageNames() string {
	return strings.Join(append(ExperimentNames(), "all"), "|")
}

// UnknownExperimentError is returned (by callers dispatching on names)
// when a requested experiment does not exist; its message lists the valid
// names so CLI and API users see the whole menu.
func UnknownExperimentError(name string) error {
	valid := ExperimentNames()
	sorted := append([]string(nil), valid...)
	sort.Strings(sorted)
	return fmt.Errorf("unknown experiment %q (valid: %s)", name, strings.Join(sorted, ", "))
}
