package experiments

// The perf experiment measures the simulator itself rather than the
// simulated machine: per-benchmark kernel throughput (simulated cycles
// per wall-clock second under Coupled mode), the wall-clock cost of the
// full Table 2 sweep (first pass compiles, warm passes hit the compiled-
// program cache), and amortized heap allocations per simulated cycle.
// `pcbench -exp perf -json` emits the machine-readable form recorded in
// BENCH_sim.json.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"pcoup/internal/compiler"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/parexec"
	"pcoup/internal/sim"
)

// PerfBench is one benchmark's kernel throughput under Coupled mode.
// CyclesPerSec is measured with the event core (the default kernel);
// TickingCyclesPerSec re-measures the same cell with cycle skipping
// disabled, making each row a before/after pair.
type PerfBench struct {
	Bench        string  `json:"bench"`
	Cycles       int64   `json:"cycles"`         // simulated cycles per run
	Runs         int     `json:"runs"`           // timed repetitions
	NsPerRun     float64 `json:"ns_per_run"`     // wall-clock per run
	CyclesPerSec float64 `json:"cycles_per_sec"` // simulated cycles per second
	// TickingCyclesPerSec is the same cell under the ticking kernel
	// (sim.WithCycleSkipping(false)); Speedup = CyclesPerSec over it.
	TickingCyclesPerSec float64 `json:"ticking_cycles_per_sec,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
}

// ParallelSweepRow is the warm Table 2 sweep wall-clock at one parallel
// cell-execution width (the -j value), with its speedup over width 1.
// The rows make BENCH_sim.json record per-core scaling of the sweep
// engine on the measuring host.
type ParallelSweepRow struct {
	Jobs    int     `json:"jobs"`
	WarmMs  float64 `json:"warm_ms"`
	Speedup float64 `json:"speedup"`
}

// ProgCacheTraffic snapshots the sharded compiled-program cache's
// counters at the end of the perf run: how many lookups the sweeps made
// and how few distinct compiles (fills) served them.
type ProgCacheTraffic struct {
	Lookups int64 `json:"lookups"`
	Fills   int64 `json:"fills"`
	Shards  int   `json:"shards"`
}

// PerfResult is the perf experiment's machine-readable output.
type PerfResult struct {
	// GOMAXPROCS and NumCPU record the measuring host's parallelism so
	// BENCH_*.json trajectories stay comparable across machines: a
	// parallel-sweep speedup is only meaningful relative to the cores
	// that were available.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`

	Benches []PerfBench `json:"benches"`
	// Table2FirstMs is the wall-clock of the first full Table 2 sweep in
	// this process (includes any compiles the program cache has not seen).
	Table2FirstMs float64 `json:"table2_first_ms"`
	// Table2WarmMs is the best warm-cache sweep wall-clock.
	Table2WarmMs float64 `json:"table2_warm_ms"`
	// ParallelSweep measures the warm Table 2 sweep at explicit engine
	// widths (1, 2, 4), independent of the process -j default.
	ParallelSweep []ParallelSweepRow `json:"parallel_sweep"`
	// ProgCache records compiled-program cache traffic over the run.
	ProgCache ProgCacheTraffic `json:"prog_cache"`
	// AllocsPerCycle is amortized heap allocations per simulated cycle
	// over repeated matrix/Coupled runs (includes Sim construction).
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// perfReps picks a repetition count that keeps each timing section
// around ~100ms without unbounded work on slow machines.
func perfReps(perRun time.Duration) int {
	if perRun <= 0 {
		return 50
	}
	n := int(100 * time.Millisecond / perRun)
	if n < 3 {
		return 3
	}
	if n > 200 {
		return 200
	}
	return n
}

// Perf runs the simulator performance measurements on cfg (nil = the
// baseline machine).
func Perf(cfg *machine.Config) (*PerfResult, error) {
	return PerfCtx(context.Background(), cfg)
}

// PerfCtx is Perf under a cancellation context.
func PerfCtx(ctx context.Context, cfg *machine.Config) (*PerfResult, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	res := &PerfResult{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}

	// Table 2 sweep wall-clock: the first pass compiles whatever the
	// program cache is missing; subsequent passes are fully warm.
	start := time.Now()
	if _, err := Table2Ctx(ctx, cfg); err != nil {
		return nil, err
	}
	res.Table2FirstMs = float64(time.Since(start).Nanoseconds()) / 1e6
	res.Table2WarmMs = res.Table2FirstMs
	for i := 0; i < 3; i++ {
		start = time.Now()
		if _, err := Table2Ctx(ctx, cfg); err != nil {
			return nil, err
		}
		if ms := float64(time.Since(start).Nanoseconds()) / 1e6; ms < res.Table2WarmMs {
			res.Table2WarmMs = ms
		}
	}

	// Parallel sweep scaling: the same warm sweep at explicit engine
	// widths. Width 1 is the sequential baseline every speedup is
	// relative to; the 2- and 4-wide rows show how close the engine gets
	// to linear scaling on this host (see GOMAXPROCS/NumCPU — on a
	// single-core host all widths collapse to ~1x by construction).
	var seqWarmMs float64
	for _, jobs := range []int{1, 2, 4} {
		jctx := parexec.WithLimit(ctx, jobs)
		row := ParallelSweepRow{Jobs: jobs}
		for i := 0; i < 3; i++ {
			start = time.Now()
			if _, err := Table2Ctx(jctx, cfg); err != nil {
				return nil, err
			}
			if ms := float64(time.Since(start).Nanoseconds()) / 1e6; i == 0 || ms < row.WarmMs {
				row.WarmMs = ms
			}
		}
		if jobs == 1 {
			seqWarmMs = row.WarmMs
		}
		row.Speedup = seqWarmMs / row.WarmMs
		res.ParallelSweep = append(res.ParallelSweep, row)
	}

	// Per-benchmark kernel throughput under Coupled mode: simulation
	// only (the program is cached; verification is excluded). Each cell
	// is measured twice — event core, then ticking kernel — so the rows
	// are before/after pairs. The @Mem2 and @Slow cells put lud on the
	// statistical long-latency memories, where most cycles are idle and
	// the event core's jumps dominate.
	perfCells := []struct {
		name  string
		bench string
		mem   *machine.MemoryModel
		dyn   *machine.DynamicModel
	}{
		{"matrix", "matrix", nil, nil},
		{"fft", "fft", nil, nil},
		{"model", "model", nil, nil},
		{"lud", "lud", nil, nil},
		{"lud@Mem2", "lud", &machine.Mem2, nil},
		{"lud@Slow", "lud", &machine.MemSlow, nil},
		// The CoupledDyn cell: the window, predictor, and prefetcher all
		// live on the issue path, so this row guards the dynamic
		// subsystem's overhead (and its event-core compatibility — the
		// skip horizons must still engage on the idle stretches).
		{"lud@Dyn", "lud", &machine.Mem2, &machine.DynAll},
	}
	for _, c := range perfCells {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cellCfg := cfg
		if c.mem != nil {
			cellCfg = cfg.WithMemory(*c.mem)
		}
		if c.dyn != nil {
			cellCfg = cellCfg.WithDynamic(*c.dyn)
		}
		_, prog, _, err := compileCached(c.bench, sourceKind(COUPLED), 0, cellCfg, compiler.Options{Mode: compilerMode(COUPLED)})
		if err != nil {
			return nil, err
		}
		pb := PerfBench{Bench: c.name}
		for _, kernel := range []struct {
			ticking bool
			opts    []sim.Option
		}{
			{false, nil},
			{true, []sim.Option{sim.WithCycleSkipping(false)}},
		} {
			cycles, elapsed, err := timedRun(cellCfg, prog, kernel.opts...)
			if err != nil {
				return nil, fmt.Errorf("perf %s: %w", c.name, err)
			}
			reps := perfReps(elapsed)
			start = time.Now()
			for i := 0; i < reps; i++ {
				if _, _, err := timedRun(cellCfg, prog, kernel.opts...); err != nil {
					return nil, fmt.Errorf("perf %s: %w", c.name, err)
				}
			}
			perRun := float64(time.Since(start).Nanoseconds()) / float64(reps)
			cps := float64(cycles) / (perRun / 1e9)
			if kernel.ticking {
				pb.TickingCyclesPerSec = cps
			} else {
				pb.Cycles, pb.Runs, pb.NsPerRun, pb.CyclesPerSec = cycles, reps, perRun, cps
			}
		}
		pb.Speedup = pb.CyclesPerSec / pb.TickingCyclesPerSec
		res.Benches = append(res.Benches, pb)
	}

	// Amortized allocations per simulated cycle (matrix/Coupled).
	_, prog, _, err := compileCached("matrix", sourceKind(COUPLED), 0, cfg, compiler.Options{Mode: compilerMode(COUPLED)})
	if err != nil {
		return nil, err
	}
	cycles, _, err := timedRun(cfg, prog) // warm the memory-image pool
	if err != nil {
		return nil, err
	}
	const allocReps = 10
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < allocReps; i++ {
		if _, _, err := timedRun(cfg, prog); err != nil {
			return nil, err
		}
	}
	runtime.ReadMemStats(&after)
	res.AllocsPerCycle = float64(after.Mallocs-before.Mallocs) / (float64(cycles) * allocReps)

	lookups, fills, shards := ProgCacheStats()
	res.ProgCache = ProgCacheTraffic{Lookups: lookups, Fills: fills, Shards: shards}
	return res, nil
}

// timedRun is one cell's simulation work: build, run, recycle.
func timedRun(cfg *machine.Config, prog *isa.Program, opts ...sim.Option) (int64, time.Duration, error) {
	start := time.Now()
	s, err := sim.New(cfg, prog, opts...)
	if err != nil {
		return 0, 0, err
	}
	r, err := s.Run(0)
	if err != nil {
		return 0, 0, err
	}
	s.Release()
	return r.Cycles, time.Since(start), nil
}

// WritePerf renders the perf measurements for terminals.
func WritePerf(w io.Writer, res *PerfResult) {
	fmt.Fprintln(w, "Simulator performance (this build, this machine):")
	fmt.Fprintf(w, "  %-9s %10s %8s %14s %14s %8s\n", "bench", "cycles", "runs", "simcycles/s", "ticking", "speedup")
	for _, b := range res.Benches {
		fmt.Fprintf(w, "  %-9s %10d %8d %14.0f", b.Bench, b.Cycles, b.Runs, b.CyclesPerSec)
		if b.TickingCyclesPerSec > 0 {
			fmt.Fprintf(w, " %14.0f %7.2fx", b.TickingCyclesPerSec, b.Speedup)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  Table 2 sweep: %.1f ms first pass, %.1f ms warm (compiled-program cache)\n",
		res.Table2FirstMs, res.Table2WarmMs)
	if len(res.ParallelSweep) > 0 {
		fmt.Fprintf(w, "  parallel sweep (warm Table 2; host: GOMAXPROCS=%d, %d CPUs):\n",
			res.GOMAXPROCS, res.NumCPU)
		for _, p := range res.ParallelSweep {
			fmt.Fprintf(w, "    -j %d: %8.1f ms  %5.2fx\n", p.Jobs, p.WarmMs, p.Speedup)
		}
	}
	fmt.Fprintf(w, "  program cache: %d lookups, %d fills over %d shards\n",
		res.ProgCache.Lookups, res.ProgCache.Fills, res.ProgCache.Shards)
	fmt.Fprintf(w, "  allocations:   %.3f per simulated cycle (matrix/Coupled, steady state)\n",
		res.AllocsPerCycle)
}
