package experiments

// Golden determinism guard for the simulator kernel: every benchmark x
// mode cell is run on the baseline machine with stall attribution and
// periodic full-state checkpoints, and a SHA-256 over (Result JSON,
// first checkpoint bytes, last checkpoint bytes) is compared against
// hashes recorded from the pre-optimization kernel. Any optimization
// that changes cycle counts, stall attribution, statistics, or the
// checkpoint encoding — even by reordering a queue — fails this test.
//
// Regenerate (only when an intentional semantic change is made):
//
//	go test ./internal/experiments/ -run TestGoldenDeterminism -update-golden
//
// Each cell is executed twice (the second run hits the compiled-program
// cache), in parallel across cells, so `go test -race` also exercises
// concurrent sweeps sharing cached programs.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_determinism.json from this kernel's behavior")

const goldenPath = "testdata/golden_determinism.json"

// goldenCheckpointEvery is chosen so even the shortest cell (model
// Coupled, under 100 cycles) produces at least one mid-run checkpoint
// with in-flight machine state.
const goldenCheckpointEvery = 64

// goldenHash runs one cell and folds its observable behavior into a hash.
func goldenHash(t *testing.T, benchName string, mode Mode) string {
	t.Helper()
	return goldenHashOn(t, benchName, mode, machine.Baseline())
}

// goldenHashOn is goldenHash on an arbitrary machine with extra sim
// options (the event-core differential suite runs cells on both kernels
// and on non-baseline memory models).
func goldenHashOn(t *testing.T, benchName string, mode Mode, cfg *machine.Config, extra ...sim.Option) string {
	t.Helper()
	var first, last *sim.Checkpoint
	opts := []sim.Option{
		sim.WithStallAttribution(),
		sim.WithCheckpointEvery(goldenCheckpointEvery, func(ck *sim.Checkpoint) error {
			if first == nil {
				first = ck
			}
			last = ck
			return nil
		}),
	}
	opts = append(opts, extra...)
	r, err := Execute(benchName, mode, cfg, opts...)
	if err != nil {
		t.Fatalf("%s/%s: %v", benchName, mode, err)
	}
	resJSON, err := json.Marshal(r.Result)
	if err != nil {
		t.Fatalf("%s/%s: marshal result: %v", benchName, mode, err)
	}
	if first == nil || last == nil {
		t.Fatalf("%s/%s: no checkpoint was taken (run too short for interval %d?)", benchName, mode, goldenCheckpointEvery)
	}
	firstJSON, err := json.Marshal(first)
	if err != nil {
		t.Fatalf("%s/%s: marshal first checkpoint: %v", benchName, mode, err)
	}
	lastJSON, err := json.Marshal(last)
	if err != nil {
		t.Fatalf("%s/%s: marshal last checkpoint: %v", benchName, mode, err)
	}
	h := sha256.New()
	h.Write(resJSON)
	h.Write([]byte{'|'})
	h.Write(firstJSON)
	h.Write([]byte{'|'})
	h.Write(lastJSON)
	return hex.EncodeToString(h.Sum(nil))
}

func loadGolden(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden to create): %v", err)
	}
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	return m
}

func TestGoldenDeterminism(t *testing.T) {
	cells := benchModeCells(Modes())
	var want map[string]string
	if !*updateGolden {
		want = loadGolden(t)
	}
	var mu sync.Mutex
	got := make(map[string]string, len(cells))
	// The inner group returns only after every parallel subtest finished,
	// so the update path below sees the complete map.
	t.Run("cells", func(t *testing.T) {
		for _, c := range cells {
			c := c
			key := fmt.Sprintf("%s/%s", c.bench, c.mode)
			t.Run(key, func(t *testing.T) {
				t.Parallel()
				h1 := goldenHash(t, c.bench, c.mode)
				// Second run shares the cached compiled program; it must
				// reproduce the first run exactly.
				h2 := goldenHash(t, c.bench, c.mode)
				if h1 != h2 {
					t.Fatalf("%s: warm-cache rerun hash %s != first run %s", key, h2, h1)
				}
				mu.Lock()
				got[key] = h1
				mu.Unlock()
				if !*updateGolden {
					if w, ok := want[key]; !ok {
						t.Errorf("%s: no golden hash recorded (run -update-golden)", key)
					} else if h1 != w {
						t.Errorf("%s: behavior diverged from golden kernel:\n  got  %s\n  want %s", key, h1, w)
					}
				}
			})
		}
	})
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden hashes to %s", len(got), goldenPath)
	}
}
