package experiments

import (
	"context"
	"fmt"
	"io"

	"pcoup/internal/compiler"
	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

// ScalingRow is one point of the problem-size scaling study (an extension
// beyond the paper): cycle counts of STS and Coupled at one benchmark
// size, and the resulting coupling speedup.
type ScalingRow struct {
	Bench   string
	Size    int
	STS     int64
	Coupled int64
	Speedup float64
}

// scalingSizes lists the sweep per benchmark (the middle entry is the
// paper's size).
var scalingSizes = map[string][]int{
	"matrix": {5, 9, 14},
	"fft":    {16, 32, 64},
	"lud":    {4, 8, 10},
	"model":  {10, 20, 40},
}

// Scaling sweeps benchmark problem sizes and compares statically
// scheduled (STS) against coupled execution. The coupling advantage
// persists across sizes: it comes from interleaving threads over shared
// units, not from a particular problem dimension.
func Scaling(cfg *machine.Config) ([]ScalingRow, error) {
	return ScalingCtx(context.Background(), cfg)
}

// ScalingCtx is Scaling under a cancellation context.
func ScalingCtx(ctx context.Context, cfg *machine.Config) ([]ScalingRow, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	type scell struct {
		bench string
		size  int
		mode  Mode
	}
	var cells []scell
	for _, b := range []string{"matrix", "fft", "model", "lud"} {
		for _, size := range scalingSizes[b] {
			cells = append(cells, scell{b, size, STS}, scell{b, size, COUPLED})
		}
	}
	cycles := make([]int64, len(cells))
	err := runParallelCtx(ctx, len(cells), func(i int) error {
		c := cells[i]
		bm, prog, _, err := compileCached(c.bench, sourceKind(c.mode), c.size, cfg, compiler.Options{Mode: compilerMode(c.mode)})
		if err != nil {
			return fmt.Errorf("scaling %s/%d/%s: %w", c.bench, c.size, c.mode, err)
		}
		s, err := sim.New(cfg, prog, sim.WithContext(ctx))
		if err != nil {
			return err
		}
		res, err := s.Run(0)
		if err != nil {
			return fmt.Errorf("scaling %s/%d/%s: %w", c.bench, c.size, c.mode, err)
		}
		if err := bm.Verify(peeker(s, prog)); err != nil {
			return fmt.Errorf("scaling %s/%d/%s: wrong result: %w", c.bench, c.size, c.mode, err)
		}
		s.Release()
		cycles[i] = res.Cycles
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	for i := 0; i < len(cells); i += 2 {
		sts, coupled := cycles[i], cycles[i+1]
		rows = append(rows, ScalingRow{
			Bench: cells[i].bench, Size: cells[i].size,
			STS: sts, Coupled: coupled,
			Speedup: float64(sts) / float64(coupled),
		})
	}
	return rows, nil
}

// WriteScaling prints the scaling study.
func WriteScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintf(w, "Scaling study (extension): STS vs Coupled across problem sizes\n")
	fmt.Fprintf(w, "%-10s %6s %10s %10s %9s\n", "Benchmark", "Size", "STS", "Coupled", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %10d %10d %9.2f\n", r.Bench, r.Size, r.STS, r.Coupled, r.Speedup)
	}
}
