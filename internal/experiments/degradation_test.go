package experiments

import (
	"strings"
	"testing"
)

// TestDegradationShape runs the full sweep and checks its invariants:
// every (config, benchmark, rate) cell is present, the fault-free
// baseline of each cell has slowdown exactly 1.0, every faulty run still
// verified its results (ExecuteCtx fails otherwise), and at least one
// cell actually observed injected faults.
func TestDegradationShape(t *testing.T) {
	rows, err := Degradation(nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 4 * len(degradationRates); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	configs := map[string]bool{}
	var sawFaults, sawSlowdown bool
	for _, r := range rows {
		configs[r.Config] = true
		if r.Rate == 0 {
			if r.Slowdown != 1.0 {
				t.Errorf("%s/%s: fault-free baseline slowdown %.3f, want 1.0", r.Config, r.Bench, r.Slowdown)
			}
			if r.Faults != (rows[0].Faults) && r.Faults.MemDropped != 0 {
				t.Errorf("%s/%s: fault-free run reported fault events: %+v", r.Config, r.Bench, r.Faults)
			}
			continue
		}
		if r.Slowdown <= 0 {
			t.Errorf("%s/%s rate %g: non-positive slowdown %.3f", r.Config, r.Bench, r.Rate, r.Slowdown)
		}
		total := r.Faults.MemDropped + r.Faults.MemDelayed + r.Faults.UnitOutages + r.Faults.PortOutages
		if total > 0 {
			sawFaults = true
		}
		if r.Slowdown > 1.0 {
			sawSlowdown = true
		}
		if r.Faults.MemDropped > 0 && r.Faults.WakeupsRecovered == 0 {
			// A dropped wakeup must be healed either by the watchdog or by
			// a later service of the same address; the run completing and
			// verifying proves the latter, so only flag the clearly
			// inconsistent case of drops with recovery disabled.
			t.Logf("%s/%s rate %g: %d drops healed without watchdog retries",
				r.Config, r.Bench, r.Rate, r.Faults.MemDropped)
		}
	}
	if len(configs) < 2 {
		t.Errorf("sweep covered %d configurations, want >= 2: %v", len(configs), configs)
	}
	if !sawFaults {
		t.Error("no cell observed any injected fault")
	}
	if !sawSlowdown {
		t.Error("no cell slowed down under injected faults")
	}
}

func TestWriteDegradation(t *testing.T) {
	rows := []DegradationRow{
		{Config: "Full", Bench: "fft", Rate: 0, Cycles: 1000, Slowdown: 1.0},
		{Config: "Full", Bench: "fft", Rate: 0.02, Cycles: 2500, Slowdown: 2.5},
	}
	rows[1].Faults.MemDropped = 4
	rows[1].Faults.WakeupsRecovered = 4
	var b strings.Builder
	WriteDegradation(&b, rows)
	out := b.String()
	for _, want := range []string{"Full", "fft", "0.020", "2.50x", "Dropped", "Recov"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
