package experiments

import (
	"context"
	"fmt"
	"io"

	"pcoup/internal/machine"
)

// RegisterRow reports compile-time register usage for one benchmark and
// mode: the paper's compiler "does not perform register allocation,
// assuming that an infinite number of registers are available", and
// Section 3 reports the peak usage that assumption produced (fewer than
// 60 live registers per cluster for realistic configurations, average
// peak 27, and up to 490 for ideal-mode Matrix).
type RegisterRow struct {
	Bench string
	Mode  Mode
	// PeakPerCluster is the largest per-cluster register count over all
	// of the program's thread segments.
	PeakPerCluster int
	// TotalPeak is the largest total (sum over clusters) of any segment.
	TotalPeak int
}

// Registers reports register usage for every benchmark and mode.
func Registers(cfg *machine.Config) ([]RegisterRow, error) {
	return RegistersCtx(context.Background(), cfg)
}

// RegistersCtx is Registers under a cancellation context.
func RegistersCtx(ctx context.Context, cfg *machine.Config) ([]RegisterRow, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	cells := benchModeCells([]Mode{SEQ, STS, TPE, COUPLED, IDEAL})
	rows := make([]RegisterRow, len(cells))
	err := runParallelCtx(ctx, len(cells), func(i int) error {
		r, err := ExecuteCtx(ctx, cells[i].bench, cells[i].mode, cfg)
		if err != nil {
			return err
		}
		row := RegisterRow{Bench: cells[i].bench, Mode: cells[i].mode}
		for _, d := range r.Diags.Segments {
			total := 0
			for _, n := range d.RegsPerCluster {
				total += n
				if n > row.PeakPerCluster {
					row.PeakPerCluster = n
				}
			}
			if total > row.TotalPeak {
				row.TotalPeak = total
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// WriteRegisters prints the register usage report.
func WriteRegisters(w io.Writer, rows []RegisterRow) {
	fmt.Fprintf(w, "Register usage (compiler assumes unbounded registers and reports the peak)\n")
	fmt.Fprintf(w, "%-10s %-8s %18s %12s\n", "Benchmark", "Mode", "peak per cluster", "total peak")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %18d %12d\n", r.Bench, r.Mode, r.PeakPerCluster, r.TotalPeak)
	}
}
