package experiments

import (
	"context"
	"fmt"
	"io"

	"pcoup/internal/bench"
	"pcoup/internal/compiler"
	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

// Table3Row is one row of Table 3: for one thread, the compile-time
// schedule length of the inner loop, the average runtime cycles per
// device evaluation, and the number of devices the thread evaluated.
type Table3Row struct {
	Mode            Mode
	Thread          int
	CompileSchedule int
	RuntimeCycles   float64
	Devices         int64
}

// Table3Result is the complete interference experiment.
type Table3Result struct {
	Rows []Table3Row
	// Aggregate running time of each variant.
	STSCycles     int64
	CoupledCycles int64
	// Weighted average cycles per evaluation in Coupled mode.
	CoupledWeighted float64
}

// Table3 reproduces the interference experiment: the ModelQ workload (a
// shared priority queue of 20 identical devices) run once as a single
// statically scheduled thread and once as four coupled threads with
// different priorities. Lower-priority threads dilate relative to their
// compile-time schedule; the aggregate coupled run is still shorter.
func Table3(cfg *machine.Config) (*Table3Result, error) {
	return Table3Ctx(context.Background(), cfg)
}

// Table3Ctx is Table3 under a cancellation context.
func Table3Ctx(ctx context.Context, cfg *machine.Config) (*Table3Result, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	out := &Table3Result{}

	// STS: single thread; the inner loop of main is the whole workload.
	{
		b, err := bench.Get("modelq", bench.Sequential)
		if err != nil {
			return nil, err
		}
		prog, diags, err := compiler.Compile(b.Source, cfg, compiler.Options{Mode: compiler.Unrestricted})
		if err != nil {
			return nil, err
		}
		s, err := sim.New(cfg, prog, sim.WithContext(ctx))
		if err != nil {
			return nil, err
		}
		res, err := s.Run(0)
		if err != nil {
			return nil, err
		}
		if err := b.Verify(peeker(s, prog)); err != nil {
			return nil, err
		}
		d, _ := diags.Diag("main")
		out.STSCycles = res.Cycles
		out.Rows = append(out.Rows, Table3Row{
			Mode: STS, Thread: 1,
			CompileSchedule: d.LoopWords,
			RuntimeCycles:   float64(res.Cycles) / 20,
			Devices:         20,
		})
	}

	// Coupled: four worker threads drawing from the shared queue.
	{
		b, err := bench.Get("modelq", bench.Threaded)
		if err != nil {
			return nil, err
		}
		prog, diags, err := compiler.Compile(b.Source, cfg, compiler.Options{Mode: compiler.Unrestricted})
		if err != nil {
			return nil, err
		}
		s, err := sim.New(cfg, prog, sim.WithContext(ctx))
		if err != nil {
			return nil, err
		}
		res, err := s.Run(0)
		if err != nil {
			return nil, err
		}
		if err := b.Verify(peeker(s, prog)); err != nil {
			return nil, err
		}
		out.CoupledCycles = res.Cycles
		peek := peeker(s, prog)
		worker := 0
		var totalCycles float64
		var totalDevices int64
		for _, t := range res.Threads {
			if t.Segment == "main" {
				continue
			}
			d, _ := diags.Diag(t.Segment)
			count, _ := peek("counts", int64(worker))
			devices := count.AsInt()
			dur := float64(t.HaltAt - t.SpawnAt)
			per := 0.0
			if devices > 0 {
				per = dur / float64(devices)
			}
			out.Rows = append(out.Rows, Table3Row{
				Mode: COUPLED, Thread: worker + 1,
				CompileSchedule: d.LoopWords,
				RuntimeCycles:   per,
				Devices:         devices,
			})
			totalCycles += dur
			totalDevices += devices
			worker++
		}
		if totalDevices > 0 {
			out.CoupledWeighted = totalCycles / float64(totalDevices)
		}
	}
	return out, nil
}

// WriteTable3 prints the experiment in the paper's layout.
func WriteTable3(w io.Writer, res *Table3Result) {
	fmt.Fprintf(w, "Table 3: average cycles per inner-loop iteration (Model with shared queue)\n")
	fmt.Fprintf(w, "%-8s %-7s %14s %13s %9s\n", "Mode", "Thread", "CompileSched", "RuntimeCycle", "Devices")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-8s %-7d %14d %13.1f %9d\n",
			r.Mode, r.Thread, r.CompileSchedule, r.RuntimeCycles, r.Devices)
	}
	fmt.Fprintf(w, "aggregate: Coupled %d cycles vs STS %d cycles (weighted coupled avg %.1f cycles/eval)\n",
		res.CoupledCycles, res.STSCycles, res.CoupledWeighted)
}
