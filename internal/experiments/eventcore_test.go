package experiments

// Event-core differential suite: every Table 2 cell (benchmark x mode on
// the baseline machine) is run under the event core and under the ticking
// kernel (sim.WithCycleSkipping(false)), and the goldenHash digests —
// Result JSON plus first and last checkpoint bytes — must be identical.
// Memory-bound Mem2 variants and a fault-injection cell (delayed and
// dropped wakeups, no unit outages so skipping stays enabled) extend the
// grid to the regimes where the event core actually jumps.

import (
	"fmt"
	"testing"

	"pcoup/internal/faults"
	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

func TestEventCoreDifferential(t *testing.T) {
	type cell struct {
		name  string
		bench string
		mode  Mode
		cfg   *machine.Config
	}
	var cells []cell
	for _, c := range benchModeCells(Modes()) {
		cells = append(cells, cell{
			name:  fmt.Sprintf("%s/%s", c.bench, c.mode),
			bench: c.bench,
			mode:  c.mode,
			cfg:   machine.Baseline(),
		})
	}
	// Long-latency memory: the event core's common case.
	for _, b := range []string{"lud", "matrix"} {
		cells = append(cells, cell{
			name:  b + "/Coupled@Mem2",
			bench: b,
			mode:  COUPLED,
			cfg:   machine.Baseline().WithMemory(machine.Mem2),
		})
	}
	// Fault injection: delayed/dropped wakeups and port outages must
	// reproduce bit-for-bit across skips. Unit outages are deliberately
	// absent — they force per-cycle mode (see sim.skipAllowed).
	cells = append(cells, cell{
		name:  "model/Coupled@memfaults",
		bench: "model",
		mode:  COUPLED,
		cfg: machine.Baseline().WithFaults(faults.Model{
			Seed:        11,
			MemDropRate: 0.05, MemDelayRate: 0.05, MemDelayMax: 8,
			PortOutageRate: 0.02, PortOutageCycles: 2,
		}),
	})
	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			event := goldenHashOn(t, c.bench, c.mode, c.cfg)
			ticking := goldenHashOn(t, c.bench, c.mode, c.cfg, sim.WithCycleSkipping(false))
			if event != ticking {
				t.Errorf("event core diverged from ticking kernel:\n  event   %s\n  ticking %s", event, ticking)
			}
		})
	}
}
