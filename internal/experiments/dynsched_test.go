package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"pcoup/internal/parexec"
)

// TestDynSchedShape runs the full dynamic-scheduling sweep and checks
// the grid's shape, normalization, and the headline claim: the combined
// CoupledDyn preset beats plain Coupled on at least two benchmarks at
// each lossy memory model.
func TestDynSchedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	rows, err := DynSched(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 60 {
		t.Fatalf("dynsched rows = %d, want 60 (4 benches x 5 presets x 3 memories)", len(rows))
	}
	for _, r := range rows {
		if r.Cycles <= 0 {
			t.Errorf("%s/%s/%s: nonpositive cycles %d", r.Bench, r.Preset, r.Memory, r.Cycles)
		}
		if r.Preset == "Coupled" && r.VsCoupled != 1.0 {
			t.Errorf("%s/%s: Coupled normalization %v, want 1.0", r.Bench, r.Memory, r.VsCoupled)
		}
	}
	for _, mem := range []string{"Mem2", "Slow"} {
		wins := 0
		for _, r := range rows {
			if r.Preset == "CoupledDyn" && r.Memory == mem && r.VsCoupled < 1.0 {
				wins++
			}
		}
		if wins < 2 {
			t.Errorf("CoupledDyn beats Coupled on %d benchmarks at %s, want >= 2", wins, mem)
		}
	}
	// The predictor and prefetcher must actually engage somewhere.
	var predicted, covered bool
	for _, r := range rows {
		if r.Preset == "CoupledDyn" && r.MispredictRate > 0 {
			predicted = true
		}
		if r.Preset == "CoupledPrefetch" && r.PrefetchCoverage > 0 {
			covered = true
		}
	}
	if !predicted {
		t.Error("no CoupledDyn cell resolved a mispredicted branch")
	}
	if !covered {
		t.Error("no CoupledPrefetch cell covered a demand load")
	}

	var buf bytes.Buffer
	WriteDynSched(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Coupled", "+OoO", "+TAGE", "+Pref", "+Dyn", "matrix", "lud", "Slow"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestDynSchedParallelIdentity: the sweep's rows are byte-identical
// whether cells run sequentially (-j 1) or fanned out (-j 4) — the
// ordered-merge property extended to the dynamic subsystem.
func TestDynSchedParallelIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep twice")
	}
	run := func(workers int) []byte {
		rows, err := DynSchedCtx(parexec.WithLimit(context.Background(), workers), nil)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	seq, par := run(1), run(4)
	if !bytes.Equal(seq, par) {
		t.Error("dynsched rows differ between -j 1 and -j 4")
	}
}
