package experiments

import (
	"context"
	"fmt"
	"io"

	"pcoup/internal/machine"
)

// Figure8Row is one point of the function-unit mix sweep: coupled-mode
// cycle count with a given number of integer and floating-point units
// (four memory units, one branch unit).
type Figure8Row struct {
	Bench  string
	IUs    int
	FPUs   int
	Cycles int64
}

// Figure8 reproduces the number-and-mix-of-function-units experiment:
// all Coupled configurations with 1-4 IUs and 1-4 FPUs, keeping four
// memory units and a single branch unit.
func Figure8() ([]Figure8Row, error) {
	return Figure8Ctx(context.Background())
}

// Figure8Ctx is Figure8 under a cancellation context.
func Figure8Ctx(ctx context.Context) ([]Figure8Row, error) {
	type f8cell struct {
		bench   string
		iu, fpu int
	}
	var cells []f8cell
	for _, b := range []string{"matrix", "fft", "model", "lud"} {
		for iu := 1; iu <= 4; iu++ {
			for fpu := 1; fpu <= 4; fpu++ {
				cells = append(cells, f8cell{b, iu, fpu})
			}
		}
	}
	rows := make([]Figure8Row, len(cells))
	err := runParallelCtx(ctx, len(cells), func(i int) error {
		c := cells[i]
		r, err := ExecuteCtx(ctx, c.bench, COUPLED, machine.Mix(c.iu, c.fpu))
		if err != nil {
			return fmt.Errorf("figure8 %s %diu %dfpu: %w", c.bench, c.iu, c.fpu, err)
		}
		rows[i] = Figure8Row{Bench: c.bench, IUs: c.iu, FPUs: c.fpu, Cycles: r.Cycles}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// WriteFigure8 prints one cycle-count surface per benchmark (the paper
// draws these as 3-D surfaces; here each benchmark is a 4x4 grid with
// FPUs across and IUs down).
func WriteFigure8(w io.Writer, rows []Figure8Row) {
	fmt.Fprintf(w, "Figure 8: coupled cycle counts vs function unit mix (4 MEM units, 1 BR unit)\n")
	byBench := map[string][]Figure8Row{}
	var order []string
	for _, r := range rows {
		if len(byBench[r.Bench]) == 0 {
			order = append(order, r.Bench)
		}
		byBench[r.Bench] = append(byBench[r.Bench], r)
	}
	for _, b := range order {
		fmt.Fprintf(w, "%s:\n          1 FPU    2 FPU    3 FPU    4 FPU\n", b)
		grid := map[[2]int]int64{}
		for _, r := range byBench[b] {
			grid[[2]int{r.IUs, r.FPUs}] = r.Cycles
		}
		for iu := 1; iu <= 4; iu++ {
			fmt.Fprintf(w, "  %d IU ", iu)
			for fpu := 1; fpu <= 4; fpu++ {
				fmt.Fprintf(w, " %8d", grid[[2]int{iu, fpu}])
			}
			fmt.Fprintln(w)
		}
	}
}
