package experiments

import (
	"math/rand"
	"testing"

	"pcoup/internal/machine"
)

// randomMachine builds a structurally valid random configuration:
// 1-5 arithmetic clusters with random unit subsets, random pipeline
// latencies (1-3 cycles), a branch cluster, and random interconnect,
// memory model, and arbitration.
func randomMachine(r *rand.Rand) *machine.Config {
	nArith := 1 + r.Intn(4)
	var clusters []machine.ClusterSpec
	haveIU, haveFPU, haveMEM := false, false, false
	for i := 0; i < nArith; i++ {
		var units []machine.UnitSpec
		lat := func() int { return 1 + r.Intn(3) }
		if r.Intn(3) != 0 {
			units = append(units, machine.UnitSpec{Kind: machine.IU, Latency: lat()})
			haveIU = true
		}
		if r.Intn(3) != 0 {
			units = append(units, machine.UnitSpec{Kind: machine.FPU, Latency: lat()})
			haveFPU = true
		}
		// Memory units require an arithmetic unit in the same cluster
		// (loaded values must be forwardable), so only add MEM where one
		// exists.
		if len(units) > 0 && r.Intn(3) != 0 {
			units = append(units, machine.UnitSpec{Kind: machine.MEM, Latency: lat()})
			haveMEM = true
		}
		if len(units) == 0 {
			units = append(units, machine.UnitSpec{Kind: machine.IU, Latency: lat()})
			haveIU = true
		}
		clusters = append(clusters, machine.ClusterSpec{Units: units})
	}
	// Guarantee at least one unit of each class (the compiler needs
	// somewhere to put every operation, and clusters without IU or FPU
	// cannot forward values).
	if !haveIU {
		clusters[0].Units = append(clusters[0].Units, machine.UnitSpec{Kind: machine.IU, Latency: 1 + r.Intn(3)})
	}
	if !haveFPU {
		clusters[0].Units = append(clusters[0].Units, machine.UnitSpec{Kind: machine.FPU, Latency: 1 + r.Intn(3)})
	}
	if !haveMEM {
		clusters[0].Units = append(clusters[0].Units, machine.UnitSpec{Kind: machine.MEM, Latency: 1 + r.Intn(3)})
	}
	clusters = append(clusters, machine.ClusterSpec{Units: []machine.UnitSpec{{Kind: machine.BR, Latency: 1}}})

	ics := machine.Interconnects()
	mems := machine.MemoryModels()
	cfg := &machine.Config{
		Name:         "random",
		Clusters:     clusters,
		Interconnect: ics[r.Intn(len(ics))],
		Memory:       mems[r.Intn(len(mems))],
		MaxDests:     2,
		Seed:         uint64(r.Int63()),
	}
	if r.Intn(2) == 0 {
		cfg.Arbitration = machine.RoundRobinArbitration
	}
	if r.Intn(4) == 0 {
		cfg.LockStepIssue = true
	}
	return cfg
}

// TestRandomMachines compiles and runs benchmarks on randomized machine
// shapes — odd unit mixes, multi-cycle pipelines, every interconnect and
// memory model — and requires bit-exact results everywhere. This
// exercises paths the paper's fixed configurations never touch
// (latencies > 1, clusters lacking unit classes).
func TestRandomMachines(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 6
	}
	r := rand.New(rand.NewSource(2026))
	benches := []string{"matrix", "model", "fft"}
	for i := 0; i < n; i++ {
		cfg := randomMachine(r)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("machine %d invalid: %v", i, err)
		}
		b := benches[i%len(benches)]
		for _, mode := range []Mode{STS, COUPLED} {
			run, err := Execute(b, mode, cfg)
			if err != nil {
				data, _ := cfg.MarshalJSON()
				t.Fatalf("machine %d %s/%s: %v\n%s", i, b, mode, err, data)
			}
			if run.Cycles <= 0 {
				t.Errorf("machine %d %s/%s: empty run", i, b, mode)
			}
		}
	}
}

// TestMultiCycleUnits pins a specific deep-pipeline machine: FPUs with
// 3-cycle latency must still compute correct results, and the run must
// take longer than with single-cycle FPUs.
func TestMultiCycleUnits(t *testing.T) {
	fast := machine.Baseline()
	slow := machine.Baseline()
	for ci := range slow.Clusters {
		for ui := range slow.Clusters[ci].Units {
			if slow.Clusters[ci].Units[ui].Kind == machine.FPU {
				slow.Clusters[ci].Units[ui].Latency = 3
			}
		}
	}
	f, err := Execute("matrix", STS, fast)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Execute("matrix", STS, slow)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cycles <= f.Cycles {
		t.Errorf("3-cycle FPUs (%d) should be slower than 1-cycle (%d)", s.Cycles, f.Cycles)
	}
	// Coupling should hide part of the deeper pipelines.
	fc, err := Execute("matrix", COUPLED, slow)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Cycles >= s.Cycles {
		t.Errorf("coupled (%d) should beat STS (%d) on deep pipelines", fc.Cycles, s.Cycles)
	}
}
