package experiments

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunParallelStopsAfterError is a regression test: a failing cell
// must stop the sweep instead of dispatching all remaining cells (an
// early compile error used to still run every simulation).
func TestRunParallelStopsAfterError(t *testing.T) {
	const n = 1000
	boom := errors.New("boom")
	var calls int64
	err := runParallel(n, func(i int) error {
		atomic.AddInt64(&calls, 1)
		if i == 0 {
			return boom
		}
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Cells already dispatched when the error lands may finish; nothing
	// new is fed afterwards, so the count stays within a few per worker.
	got := atomic.LoadInt64(&calls)
	if limit := int64(4 * runtime.GOMAXPROCS(0)); got > limit {
		t.Errorf("ran %d cells after a failing first cell (limit %d)", got, limit)
	}
}

// TestRunParallelCompletes checks the happy path visits every index once.
func TestRunParallelCompletes(t *testing.T) {
	const n = 100
	var calls int64
	if err := runParallel(n, func(i int) error {
		atomic.AddInt64(&calls, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != n {
		t.Errorf("calls = %d, want %d", got, n)
	}
}
