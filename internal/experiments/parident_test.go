package experiments

// The parallel engine's contract is that it is invisible in the output:
// every registered experiment must produce byte-identical rows and
// byte-identical formatted text at any parallelism width. This suite
// runs the whole registry at width 1 and width 4 and diffs the bytes;
// it runs under -race in CI, so it doubles as the data-race check on
// everything the parallel cells share (the sharded program cache, the
// memory-image pool, per-Sim free lists).

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"pcoup/internal/machine"
	"pcoup/internal/parexec"
)

// TestParallelExperimentsByteIdentical: rows and formatted output of
// every registry experiment are identical at -j 1 and -j 4. perf is
// excluded (its rows are wall-clock timings, inherently run-to-run
// noisy); SkipInAll experiments are excluded as in "-exp all".
func TestParallelExperimentsByteIdentical(t *testing.T) {
	for _, e := range Registry() {
		if e.SkipInAll || e.Name == "perf" {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			type out struct {
				rows []byte
				text string
			}
			runAt := func(width int) out {
				rc := &RunContext{Ctx: parexec.WithLimit(context.Background(), width)}
				rows, err := e.Run(rc)
				if err != nil {
					t.Fatalf("width %d: %v", width, err)
				}
				data, err := json.Marshal(rows)
				if err != nil {
					t.Fatalf("width %d: marshal: %v", width, err)
				}
				var buf bytes.Buffer
				e.Write(&buf, nil, rows)
				return out{rows: data, text: buf.String()}
			}
			seq := runAt(1)
			par := runAt(4)
			if !bytes.Equal(seq.rows, par.rows) {
				t.Errorf("rows differ between -j 1 and -j 4:\nseq: %s\npar: %s", seq.rows, par.rows)
			}
			if seq.text != par.text {
				t.Errorf("formatted output differs between -j 1 and -j 4:\nseq:\n%s\npar:\n%s", seq.text, par.text)
			}
		})
	}
}

// TestConcurrentCellLifecycle is the shared-state stress test: many
// goroutines construct, run, verify, and release the same cells at
// once — hammering the sharded compiled-program cache, the memory-image
// sync.Pool, and the per-Sim request free lists — while every result
// must still equal the sequential reference. Run under -race this is
// the cross-goroutine safety audit in executable form.
func TestConcurrentCellLifecycle(t *testing.T) {
	cfg := machine.Baseline()
	type cellID struct {
		bench string
		mode  Mode
	}
	var cells []cellID
	for _, b := range []string{"matrix", "fft", "model", "lud"} {
		for _, m := range Modes() {
			if ModeSupported(b, m) {
				cells = append(cells, cellID{b, m})
			}
		}
	}

	ref := make(map[cellID]string, len(cells))
	for _, c := range cells {
		r, err := Execute(c.bench, c.mode, cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.bench, c.mode, err)
		}
		data, err := json.Marshal(r.Result)
		if err != nil {
			t.Fatal(err)
		}
		ref[c] = string(data)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the cells at a different offset so
			// construction, simulation, and release of distinct cells
			// overlap in every combination.
			for i := range cells {
				c := cells[(i+g)%len(cells)]
				r, err := Execute(c.bench, c.mode, cfg)
				if err != nil {
					errs <- err
					return
				}
				data, err := json.Marshal(r.Result)
				if err != nil {
					errs <- err
					return
				}
				if string(data) != ref[c] {
					errs <- &nondeterministicCellError{bench: c.bench, mode: c.mode}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type nondeterministicCellError struct {
	bench string
	mode  Mode
}

func (e *nondeterministicCellError) Error() string {
	return "concurrent run of " + e.bench + "/" + string(e.mode) + " diverged from sequential reference"
}
