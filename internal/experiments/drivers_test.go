package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllDrivers runs every table/figure driver end to end and renders
// its output — the same code path as cmd/pcbench. Sanity checks are
// lighter than the shape tests; this test is about exercising the full
// sweeps (including their parallel fan-out) and the formatters on real
// rows.
func TestAllDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps")
	}
	var buf bytes.Buffer

	t2, err := Table2(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 18 {
		t.Errorf("table2 rows = %d, want 18", len(t2))
	}
	WriteTable2(&buf, t2)
	WriteFigure4(&buf, t2)

	f5, err := Figure5(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5) != 18 {
		t.Errorf("figure5 rows = %d, want 18", len(f5))
	}
	WriteFigure5(&buf, f5)

	t3, err := Table3(nil)
	if err != nil {
		t.Fatal(err)
	}
	WriteTable3(&buf, t3)

	f6, err := Figure6(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6) != 20 {
		t.Errorf("figure6 rows = %d, want 20", len(f6))
	}
	WriteFigure6(&buf, f6)

	f7, err := Figure7(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7) != 42 {
		t.Errorf("figure7 rows = %d, want 42 (14 cells x 3 memories)", len(f7))
	}
	WriteFigure7(&buf, f7)
	for _, r := range f7 {
		if r.Memory == "Min" && r.VsMin != 1.0 {
			t.Errorf("%s/%s Min ratio = %v", r.Bench, r.Mode, r.VsMin)
		}
	}

	f8, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(f8) != 64 {
		t.Errorf("figure8 rows = %d, want 64", len(f8))
	}
	WriteFigure8(&buf, f8)

	regs, err := Registers(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 18 {
		t.Errorf("registers rows = %d, want 18", len(regs))
	}
	WriteRegisters(&buf, regs)

	out := buf.String()
	for _, want := range []string{"Table 2", "Figure 4", "Figure 5", "Table 3", "Figure 6", "Figure 7", "Figure 8", "Register usage"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}
