package experiments

import (
	"bytes"
	"context"
	"testing"

	"pcoup/internal/bench"
	"pcoup/internal/compiler"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

// TestAssemblyRoundTripAllBenchmarks compiles every benchmark, serializes
// it through the textual assembly format, reloads it, and re-simulates —
// results must stay bit-exact and cycle counts identical (the pcc→pcsim
// pipeline must be lossless).
func TestAssemblyRoundTripAllBenchmarks(t *testing.T) {
	cfg := machine.Baseline()
	for _, name := range bench.Names() {
		b, err := bench.Get(name, bench.Threaded)
		if err != nil {
			t.Fatal(err)
		}
		prog, _, err := compiler.Compile(b.Source, cfg, compiler.Options{Mode: compiler.Unrestricted})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := isa.WriteText(&buf, prog); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		back, err := isa.ParseText(&buf)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}

		run := func(p *isa.Program) (*sim.Result, *sim.Sim) {
			s, err := sim.New(cfg, p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			res, err := s.Run(0)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return res, s
		}
		res1, _ := run(prog)
		res2, s2 := run(back)
		if res1.Cycles != res2.Cycles || res1.Ops != res2.Ops {
			t.Errorf("%s: round trip changed behavior: %d/%d cycles, %d/%d ops",
				name, res1.Cycles, res2.Cycles, res1.Ops, res2.Ops)
		}
		if err := b.Verify(peeker(s2, back)); err != nil {
			t.Errorf("%s: round-tripped program computed wrong results: %v", name, err)
		}
	}
}

// TestDeterminism: identical runs must produce identical cycle counts,
// including under the statistical memory model.
func TestDeterminism(t *testing.T) {
	cfg := machine.Baseline().WithMemory(machine.Mem1).WithSeed(99)
	a, err := Execute("fft", COUPLED, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute("fft", COUPLED, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Result.Ops != b.Result.Ops {
		t.Errorf("nondeterministic: %d/%d cycles", a.Cycles, b.Cycles)
	}
	c, err := Execute("fft", COUPLED, cfg.WithSeed(100))
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles == a.Cycles {
		t.Log("different seed produced the same cycle count (possible but unlikely)")
	}
}

// TestTable3Shape verifies the interference experiment's qualitative
// claims.
func TestTable3Shape(t *testing.T) {
	res, err := Table3(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoupledCycles >= res.STSCycles {
		t.Errorf("coupled aggregate (%d) not faster than STS (%d)", res.CoupledCycles, res.STSCycles)
	}
	var sts, coupled []Table3Row
	for _, r := range res.Rows {
		if r.Mode == STS {
			sts = append(sts, r)
		} else {
			coupled = append(coupled, r)
		}
	}
	if len(sts) != 1 || len(coupled) != 4 {
		t.Fatalf("rows: %d STS, %d coupled", len(sts), len(coupled))
	}
	// STS runs close to its compile-time schedule.
	if ratio := sts[0].RuntimeCycles / float64(sts[0].CompileSchedule); ratio > 1.3 {
		t.Errorf("STS dilation %.2f, expected near 1.0", ratio)
	}
	// All coupled workers must have evaluated at least one device, the
	// counts must sum to 20, and dilation must grow with falling
	// priority.
	total := int64(0)
	for i, r := range coupled {
		total += r.Devices
		if r.Devices == 0 {
			t.Errorf("worker %d starved", i+1)
		}
		if r.RuntimeCycles < float64(r.CompileSchedule) {
			t.Errorf("worker %d ran faster than its schedule (%v < %d)", i+1, r.RuntimeCycles, r.CompileSchedule)
		}
		if i > 0 && r.RuntimeCycles < coupled[i-1].RuntimeCycles {
			t.Errorf("dilation not monotone with priority: worker %d %.1f < worker %d %.1f",
				i+1, r.RuntimeCycles, i, coupled[i-1].RuntimeCycles)
		}
	}
	if total != 20 {
		t.Errorf("devices evaluated = %d, want 20", total)
	}
}

// TestFigure6Shape verifies the restricted-communication claims on the
// two benchmarks with the sharpest signal.
func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	cfg := machine.Baseline()
	cell := func(b string, ic machine.InterconnectKind) int64 {
		r, err := Execute(b, COUPLED, cfg.WithInterconnect(ic))
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	full := cell("matrix", machine.Full)
	tri := cell("matrix", machine.TriPort)
	shared := cell("matrix", machine.SharedBus)
	if float64(tri) > 1.15*float64(full) {
		t.Errorf("matrix tri-port %d should be within ~15%% of full %d", tri, full)
	}
	if float64(shared) < 1.5*float64(full) {
		t.Errorf("matrix shared-bus %d should be sharply worse than full %d", shared, full)
	}
	mFull := cell("model", machine.Full)
	mTri := cell("model", machine.TriPort)
	if float64(mTri) > 1.1*float64(mFull) {
		t.Errorf("model tri-port %d should be nearly unaffected vs full %d", mTri, mFull)
	}
}

// TestFigure7Shape verifies the latency-tolerance claims for matrix.
func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	cfg := machine.Baseline()
	cell := func(m Mode, mem machine.MemoryModel) int64 {
		cycles, err := averageCycles(context.Background(), "matrix", m, cfg.WithMemory(mem))
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	stsDeg := float64(cell(STS, machine.Mem2)) / float64(cell(STS, machine.MemMin))
	coupledDeg := float64(cell(COUPLED, machine.Mem2)) / float64(cell(COUPLED, machine.MemMin))
	idealDeg := float64(cell(IDEAL, machine.Mem2)) / float64(cell(IDEAL, machine.MemMin))
	if stsDeg < 2*coupledDeg {
		t.Errorf("STS degradation %.2f should dwarf Coupled's %.2f", stsDeg, coupledDeg)
	}
	if idealDeg > 2 {
		t.Errorf("matrix Ideal degradation %.2f should be small (registers hold the data)", idealDeg)
	}
}

// TestFigure8Corner verifies the mix sweep's endpoints for matrix.
func TestFigure8Corner(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	small, err := Execute("matrix", COUPLED, machine.Mix(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Execute("matrix", COUPLED, machine.Mix(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if big.Cycles >= small.Cycles {
		t.Errorf("4x4 (%d) should beat 1x1 (%d)", big.Cycles, small.Cycles)
	}
}

// TestWriteFunctions smoke-tests the table/figure formatters.
func TestWriteFunctions(t *testing.T) {
	var buf bytes.Buffer
	WriteTable2(&buf, []Table2Row{{Bench: "matrix", Mode: SEQ, Cycles: 100, VsCouple: 2, FPU: 1, IU: 0.5}})
	WriteFigure4(&buf, []Table2Row{{Bench: "matrix", Mode: SEQ, Cycles: 100}})
	WriteFigure5(&buf, []Figure5Row{{Bench: "fft", Mode: COUPLED}})
	WriteTable3(&buf, &Table3Result{Rows: []Table3Row{{Mode: STS, Thread: 1, CompileSchedule: 9, RuntimeCycles: 9.2, Devices: 20}}})
	WriteFigure6(&buf, []Figure6Row{{Bench: "lud", Interconnect: machine.TriPort, Cycles: 5, VsFull: 1.2}})
	WriteFigure7(&buf, []Figure7Row{{Bench: "lud", Mode: TPE, Memory: "Mem1", Cycles: 7, VsMin: 1.5}})
	WriteFigure8(&buf, []Figure8Row{{Bench: "lud", IUs: 1, FPUs: 1, Cycles: 9}})
	if buf.Len() == 0 {
		t.Error("formatters produced no output")
	}
}

// TestRegistersShape verifies the paper's register usage claims: modest
// peaks for realistic modes, hundreds for Ideal.
func TestRegistersShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rows, err := Registers(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Mode == IDEAL {
			if r.PeakPerCluster < 100 {
				t.Errorf("%s ideal peak %d, expected hundreds (paper: up to 490)", r.Bench, r.PeakPerCluster)
			}
			continue
		}
		if r.PeakPerCluster > 150 {
			t.Errorf("%s/%s peak %d registers per cluster, expected modest usage", r.Bench, r.Mode, r.PeakPerCluster)
		}
	}
}

// TestScalingShape: the coupled advantage must persist at every size.
func TestScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rows, err := Scaling(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1.0 {
			t.Errorf("%s size %d: coupled (%d) not faster than STS (%d)", r.Bench, r.Size, r.Coupled, r.STS)
		}
	}
}

// TestUnrollingShape: automatic unrolling must recover the Ideal numbers
// from rolled sources and must help STS at least as much as Coupled.
func TestUnrollingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rows, err := Unrolling(nil)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]UnrollRow{}
	for _, r := range rows {
		byKey[r.Bench+string(r.Mode)] = r
		if r.Gain < 0.99 {
			t.Errorf("%s/%s: unrolling hurt (%.2f)", r.Bench, r.Mode, r.Gain)
		}
	}
	// Unrolled STS matrix should match the hand-unrolled Ideal run.
	ideal, err := Execute("matrix", IDEAL, machine.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if got := byKey["matrix"+string(STS)].Unrolled; got != ideal.Cycles {
		t.Errorf("auto-unrolled STS matrix = %d, hand-unrolled Ideal = %d", got, ideal.Cycles)
	}
	if byKey["matrix"+string(STS)].Gain < byKey["matrix"+string(COUPLED)].Gain {
		t.Error("unrolling should help STS at least as much as Coupled")
	}
}

// TestThreadCapShape: more resident threads must never hurt, and a tiny
// thread set must clearly underperform under long latencies.
func TestThreadCapShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rows, err := ThreadCap(nil)
	if err != nil {
		t.Fatal(err)
	}
	byBench := map[string][]ThreadCapRow{}
	for _, r := range rows {
		byBench[r.Bench] = append(byBench[r.Bench], r)
	}
	for b, rs := range byBench {
		for i := 1; i < len(rs); i++ {
			if rs[i].Cycles > rs[i-1].Cycles+rs[i-1].Cycles/10 {
				t.Errorf("%s: cap %d (%d cycles) much worse than cap %d (%d)",
					b, rs[i].Cap, rs[i].Cycles, rs[i-1].Cap, rs[i-1].Cycles)
			}
		}
		first, last := rs[0], rs[len(rs)-1]
		if float64(first.Cycles) < 1.5*float64(last.Cycles) {
			t.Errorf("%s: cap %d should clearly underperform cap %d (%d vs %d)",
				b, first.Cap, last.Cap, first.Cycles, last.Cycles)
		}
	}
}
