package experiments

import (
	"sync"
	"sync/atomic"

	"pcoup/internal/bench"
	"pcoup/internal/compiler"
	"pcoup/internal/faults"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

// Compiled-program cache. Sweeps run thousands of cells that differ only
// in simulation parameters (seed, arbitration, fault model, memory
// latency model, thread cap) while compiling the exact same program;
// this cache keys compiles on the benchmark instance plus only the
// configuration inputs the compiler actually reads, so a full sweep
// compiles each program once and all cells share the immutable result.
//
// Sharing is safe because isa.Program (and compiler.Diagnostics) are
// never mutated after compilation: the simulator treats segments,
// instruction words, and data segments as read-only, copying data into
// its own memory image. The golden determinism test runs warm-cache
// cells under -race to enforce this.
//
// The cache is sharded for the parallel cell-execution engine: a warm
// sweep does one cache lookup per cell from every pool worker at once,
// so entries spread over progShards independently-locked maps keyed by
// an FNV-1a hash of the key. The read path takes only a shard RLock;
// the compile itself runs under the entry's sync.Once, never under a
// shard lock, so a slow compile on one shard cannot stall lookups (or
// fills) elsewhere. Lookups/Fills counters expose the traffic for the
// perf experiment's contention accounting.

// progKey identifies one compile: the benchmark source instance and
// every compiler-visible parameter.
type progKey struct {
	bench string
	kind  bench.SourceKind
	size  int // 0 = the benchmark's default size
	opts  compiler.Options
	cfg   string // compileFingerprint of the machine config
}

// shard maps the key onto a cache shard via FNV-1a over its fields.
func (k progKey) shard() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint32(s[i])) * prime32
		}
	}
	mixInt := func(v int) {
		for b := 0; b < 4; b++ {
			h = (h ^ (uint32(v>>(8*b)) & 0xff)) * prime32
		}
	}
	mixStr(k.bench)
	mixInt(int(k.kind))
	mixInt(k.size)
	mixInt(int(k.opts.Mode))
	if k.opts.DisableOpt {
		mixInt(1)
	} else {
		mixInt(0)
	}
	mixInt(k.opts.AutoUnroll)
	mixStr(k.cfg)
	return h % progShards
}

type progEntry struct {
	once  sync.Once
	prog  *isa.Program
	diags *compiler.Diagnostics
	err   error
}

const progShards = 16

// progShard is one independently locked slice of the cache.
type progShard struct {
	mu sync.RWMutex
	m  map[progKey]*progEntry
}

// progCacheT is the process-wide sharded compiled-program cache.
type progCacheT struct {
	shards  [progShards]progShard
	lookups atomic.Int64 // total entry() calls
	fills   atomic.Int64 // entries created (write-lock path taken for a new key)
}

var progCache progCacheT

// entry returns the cache entry for key, creating it if absent. The
// common warm path is a single shard RLock; only the first arrival for
// a key upgrades to the write lock.
func (c *progCacheT) entry(key progKey) *progEntry {
	c.lookups.Add(1)
	sh := &c.shards[key.shard()]
	sh.mu.RLock()
	e := sh.m[key]
	sh.mu.RUnlock()
	if e != nil {
		return e
	}
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = map[progKey]*progEntry{}
	}
	if e = sh.m[key]; e == nil {
		e = &progEntry{}
		sh.m[key] = e
		c.fills.Add(1)
	}
	sh.mu.Unlock()
	return e
}

// ProgCacheStats reports the compiled-program cache's traffic: total
// lookups, entry fills (distinct compiles), and the shard count. The
// perf experiment records it so BENCH_sim.json trajectories show how
// much lookup traffic the parallel sweep engine puts on the cache.
func ProgCacheStats() (lookups, fills int64, shards int) {
	return progCache.lookups.Load(), progCache.fills.Load(), progShards
}

// compileFingerprint hashes only the configuration the compiler reads:
// the cluster/unit topology (schedules, latencies, slot assignment),
// MaxDests, and the memory hit latency (load scheduling distance).
// Runtime-only knobs — seed, interconnect, arbitration, issue policy,
// op caches, thread cap, fault injection, miss-rate modeling — are
// zeroed so cells differing only in them share one compile.
func compileFingerprint(cfg *machine.Config) (string, error) {
	c := cfg.Canonical()
	c.Seed = 0
	c.Interconnect = 0
	c.Arbitration = 0
	c.LockStepIssue = false
	c.OpCache = machine.OpCacheModel{}
	c.MaxThreads = 0
	c.Faults = faults.Model{}
	c.Memory = machine.MemoryModel{HitLatency: cfg.Memory.HitLatency}
	return c.Hash()
}

// compileCached compiles (bench instance, options, machine) once and
// returns the shared immutable program. size 0 selects the benchmark's
// default problem size (bench.Get); other sizes go through bench.GetN.
func compileCached(benchName string, kind bench.SourceKind, size int, cfg *machine.Config, opts compiler.Options) (*bench.Benchmark, *isa.Program, *compiler.Diagnostics, error) {
	var b *bench.Benchmark
	var err error
	if size == 0 {
		b, err = bench.Get(benchName, kind)
	} else {
		b, err = bench.GetN(benchName, kind, size)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	fp, err := compileFingerprint(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	key := progKey{bench: benchName, kind: kind, size: size, opts: opts, cfg: fp}
	e := progCache.entry(key)
	e.once.Do(func() {
		e.prog, e.diags, e.err = compiler.Compile(b.Source, cfg, opts)
	})
	if e.err != nil {
		return nil, nil, nil, e.err
	}
	return b, e.prog, e.diags, nil
}
