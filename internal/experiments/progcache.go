package experiments

import (
	"sync"

	"pcoup/internal/bench"
	"pcoup/internal/compiler"
	"pcoup/internal/faults"
	"pcoup/internal/isa"
	"pcoup/internal/machine"
)

// Compiled-program cache. Sweeps run thousands of cells that differ only
// in simulation parameters (seed, arbitration, fault model, memory
// latency model, thread cap) while compiling the exact same program;
// this cache keys compiles on the benchmark instance plus only the
// configuration inputs the compiler actually reads, so a full sweep
// compiles each program once and all cells share the immutable result.
//
// Sharing is safe because isa.Program (and compiler.Diagnostics) are
// never mutated after compilation: the simulator treats segments,
// instruction words, and data segments as read-only, copying data into
// its own memory image. The golden determinism test runs warm-cache
// cells under -race to enforce this.

// progKey identifies one compile: the benchmark source instance and
// every compiler-visible parameter.
type progKey struct {
	bench string
	kind  bench.SourceKind
	size  int // 0 = the benchmark's default size
	opts  compiler.Options
	cfg   string // compileFingerprint of the machine config
}

type progEntry struct {
	once  sync.Once
	prog  *isa.Program
	diags *compiler.Diagnostics
	err   error
}

var progCache sync.Map // progKey -> *progEntry

// compileFingerprint hashes only the configuration the compiler reads:
// the cluster/unit topology (schedules, latencies, slot assignment),
// MaxDests, and the memory hit latency (load scheduling distance).
// Runtime-only knobs — seed, interconnect, arbitration, issue policy,
// op caches, thread cap, fault injection, miss-rate modeling — are
// zeroed so cells differing only in them share one compile.
func compileFingerprint(cfg *machine.Config) (string, error) {
	c := cfg.Canonical()
	c.Seed = 0
	c.Interconnect = 0
	c.Arbitration = 0
	c.LockStepIssue = false
	c.OpCache = machine.OpCacheModel{}
	c.MaxThreads = 0
	c.Faults = faults.Model{}
	c.Memory = machine.MemoryModel{HitLatency: cfg.Memory.HitLatency}
	return c.Hash()
}

// compileCached compiles (bench instance, options, machine) once and
// returns the shared immutable program. size 0 selects the benchmark's
// default problem size (bench.Get); other sizes go through bench.GetN.
func compileCached(benchName string, kind bench.SourceKind, size int, cfg *machine.Config, opts compiler.Options) (*bench.Benchmark, *isa.Program, *compiler.Diagnostics, error) {
	var b *bench.Benchmark
	var err error
	if size == 0 {
		b, err = bench.Get(benchName, kind)
	} else {
		b, err = bench.GetN(benchName, kind, size)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	fp, err := compileFingerprint(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	key := progKey{bench: benchName, kind: kind, size: size, opts: opts, cfg: fp}
	ei, _ := progCache.LoadOrStore(key, &progEntry{})
	e := ei.(*progEntry)
	e.once.Do(func() {
		e.prog, e.diags, e.err = compiler.Compile(b.Source, cfg, opts)
	})
	if e.err != nil {
		return nil, nil, nil, e.err
	}
	return b, e.prog, e.diags, nil
}
