package experiments

import (
	"context"
	"fmt"
	"io"

	"pcoup/internal/machine"
)

// DynSchedRow is one cell of the dynamic-scheduling extension: a
// benchmark under one memory model and one dynamic preset, in Coupled
// mode. Cycles are seed-averaged like Figure 7; the predictor and
// prefetcher rates come from the same runs.
type DynSchedRow struct {
	Bench  string
	Preset string
	Memory string
	Cycles int64
	// VsCoupled is cycles relative to plain Coupled on the same
	// benchmark and memory model (< 1 means the preset helped).
	VsCoupled float64
	// MispredictRate is mispredicted branches / resolved branches
	// (0 when the preset has no predictor or nothing branched).
	MispredictRate float64 `json:",omitempty"`
	// PrefetchCoverage is prefetch-buffer hits / demand loads
	// (0 when the preset has no prefetcher).
	PrefetchCoverage float64 `json:",omitempty"`
}

// dynPresets are the dynamic-scheduling machine presets in presentation
// order. The nil model is the plain Coupled baseline the others are
// normalized against.
var dynPresets = []struct {
	Name  string
	Model *machine.DynamicModel
}{
	{"Coupled", nil},
	{"CoupledOoO", &machine.DynOoO},
	{"CoupledTAGE", &machine.DynTAGE},
	{"CoupledPrefetch", &machine.DynPrefetch},
	{"CoupledDyn", &machine.DynAll},
}

// dynSchedMemories are the memory models swept: the deterministic Min
// model isolates the window's reordering benefit, Mem2 is the paper's
// lossiest Figure 7 model, and Slow makes latency tolerance dominate.
func dynSchedMemories() []machine.MemoryModel {
	return []machine.MemoryModel{machine.MemMin, machine.Mem2, machine.MemSlow}
}

// DynSched runs the dynamic-scheduling experiment: every benchmark under
// every memory model and preset, extending Table 2 / Figure 7 with the
// CoupledOoO, CoupledTAGE, CoupledPrefetch, and CoupledDyn columns.
func DynSched(cfg *machine.Config) ([]DynSchedRow, error) {
	return DynSchedCtx(context.Background(), cfg)
}

// DynSchedCtx is DynSched under a cancellation context.
func DynSchedCtx(ctx context.Context, cfg *machine.Config) ([]DynSchedRow, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	type dsCell struct {
		bench  string
		preset int
		mem    machine.MemoryModel
	}
	var cells []dsCell
	for _, b := range []string{"matrix", "fft", "model", "lud"} {
		for p := range dynPresets {
			for _, mem := range dynSchedMemories() {
				cells = append(cells, dsCell{b, p, mem})
			}
		}
	}
	rows := make([]DynSchedRow, len(cells))
	err := runParallelCtx(ctx, len(cells), func(i int) error {
		c := cells[i]
		p := dynPresets[c.preset]
		cell := cfg.WithMemory(c.mem)
		if p.Model != nil {
			cell = cell.WithDynamic(*p.Model)
		}
		row, err := dynSchedCell(ctx, c.bench, cell)
		if err != nil {
			return fmt.Errorf("%s/%s/%s: %w", c.bench, p.Name, c.mem.Name, err)
		}
		row.Bench, row.Preset, row.Memory = c.bench, p.Name, c.mem.Name
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := map[string]int64{}
	for _, r := range rows {
		if r.Preset == "Coupled" {
			base[r.Bench+"/"+r.Memory] = r.Cycles
		}
	}
	for i := range rows {
		rows[i].VsCoupled = float64(rows[i].Cycles) / float64(base[rows[i].Bench+"/"+rows[i].Memory])
	}
	return rows, nil
}

// dynSchedCell runs one cell, averaging cycles and dynamic counters over
// the Figure 7 seeds when the memory model is statistical (every run
// still verifies the benchmark's result against the Go reference).
func dynSchedCell(ctx context.Context, b string, cfg *machine.Config) (DynSchedRow, error) {
	seeds := []uint64{cfg.Seed}
	if cfg.Memory.MissRate > 0 {
		seeds = figure7Seeds
	}
	var row DynSchedRow
	var cycles, branches, mispredicts, demand, hits int64
	for _, seed := range seeds {
		r, err := ExecuteCtx(ctx, b, COUPLED, cfg.WithSeed(seed))
		if err != nil {
			return row, err
		}
		cycles += r.Cycles
		if d := r.Result.Dyn; d != nil {
			branches += d.Branches
			mispredicts += d.Mispredicts
			if d.Prefetch != nil {
				demand += d.Prefetch.Demand
				hits += d.Prefetch.Hits
			}
		}
	}
	row.Cycles = cycles / int64(len(seeds))
	if branches > 0 {
		row.MispredictRate = float64(mispredicts) / float64(branches)
	}
	if demand > 0 {
		row.PrefetchCoverage = float64(hits) / float64(demand)
	}
	return row, nil
}

// WriteDynSched prints the Table-2-style grid: one line per benchmark
// and memory model, one cycle column per preset, plus CoupledDyn's
// ratio to plain Coupled and its predictor/prefetcher rates.
func WriteDynSched(w io.Writer, rows []DynSchedRow) {
	fmt.Fprintf(w, "Dynamic scheduling: cycle counts per preset (Coupled mode)\n")
	fmt.Fprintf(w, "%-10s %-6s %9s %9s %9s %9s %9s %7s %6s %6s\n",
		"Benchmark", "Memory", "Coupled", "+OoO", "+TAGE", "+Pref", "+Dyn", "Dyn/Cpl", "mispr", "cover")
	cell := map[string]DynSchedRow{}
	var order []string
	for _, r := range rows {
		key := r.Bench + "/" + r.Memory
		if _, ok := cell[key+"/Coupled"]; !ok && r.Preset == "Coupled" {
			order = append(order, key)
		}
		cell[key+"/"+r.Preset] = r
	}
	for _, key := range order {
		c := cell[key+"/Coupled"]
		dyn := cell[key+"/CoupledDyn"]
		fmt.Fprintf(w, "%-10s %-6s %9d %9d %9d %9d %9d %7.2f %5.1f%% %5.1f%%\n",
			c.Bench, c.Memory, c.Cycles,
			cell[key+"/CoupledOoO"].Cycles,
			cell[key+"/CoupledTAGE"].Cycles,
			cell[key+"/CoupledPrefetch"].Cycles,
			dyn.Cycles, dyn.VsCoupled,
			100*dyn.MispredictRate, 100*dyn.PrefetchCoverage)
	}
}
