package experiments

import (
	"strings"
	"testing"

	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

// TestStallsConservation runs the full stalls report and checks the
// attribution invariant on every cell: issued cycles plus per-cause
// stall cycles sum exactly to the cell's active thread-cycles.
func TestStallsConservation(t *testing.T) {
	rows, err := Stalls(nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(benchModeCells(Modes())); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if got := r.Breakdown.Total(); got != r.Slots {
			t.Errorf("%s/%s: breakdown sums to %d, want %d thread-cycles", r.Bench, r.Mode, got, r.Slots)
		}
		if r.Breakdown[sim.CauseIssued] == 0 {
			t.Errorf("%s/%s: no issued cycles", r.Bench, r.Mode)
		}
		if r.Slots < r.Cycles-1 {
			t.Errorf("%s/%s: %d slots over %d cycles: main thread not covering the run", r.Bench, r.Mode, r.Slots, r.Cycles)
		}
	}
}

// TestStallsPerThreadConservation cross-checks one cell against the
// per-thread statistics: every thread's breakdown must cover exactly its
// active window.
func TestStallsPerThreadConservation(t *testing.T) {
	r, err := Execute("matrix", COUPLED, machine.Baseline(), sim.WithStallAttribution())
	if err != nil {
		t.Fatal(err)
	}
	st := r.Result.Stalls
	var sum int64
	for _, th := range r.Result.Threads {
		if th.Stalls == nil {
			t.Fatalf("t%d has no breakdown", th.ID)
		}
		if got, want := th.Stalls.Total(), th.HaltAt-th.SpawnAt; got != want {
			t.Errorf("t%d: breakdown %d != active cycles %d", th.ID, got, want)
		}
		sum += th.Stalls.Total()
	}
	if st.Slots != sum {
		t.Errorf("Slots %d != per-thread sum %d", st.Slots, sum)
	}
}

func TestWriteStalls(t *testing.T) {
	rows := []StallRow{{Bench: "matrix", Mode: COUPLED, Cycles: 100, Slots: 400,
		TopWaitReg: "c0.r1", TopWaitRegCycles: 7}}
	rows[0].Breakdown[sim.CauseIssued] = 300
	rows[0].Breakdown[sim.CauseFUBusy] = 100
	var b strings.Builder
	WriteStalls(&b, rows)
	out := b.String()
	for _, want := range []string{"matrix", "Coupled", "75.0%", "25.0%", "c0.r1 (7)"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
