package experiments

import (
	"testing"

	"pcoup/internal/machine"
)

// TestAllBenchModeCombos is the core integration test: every benchmark in
// every supported machine mode on the baseline machine must compile,
// simulate to completion, and compute bit-exact results.
func TestAllBenchModeCombos(t *testing.T) {
	cfg := machine.Baseline()
	type cell struct {
		bench string
		mode  Mode
		run   *Run
	}
	var cells []cell
	for _, b := range []string{"matrix", "fft", "model", "lud"} {
		for _, m := range Modes() {
			if !ModeSupported(b, m) {
				continue
			}
			r, err := Execute(b, m, cfg)
			if err != nil {
				t.Errorf("%s/%s: %v", b, m, err)
				continue
			}
			t.Logf("%s %-7s cycles=%6d ops=%6d fpu=%.2f iu=%.2f mem=%.2f br=%.2f",
				b, m, r.Cycles, r.Result.Ops,
				r.Utilization(machine.FPU), r.Utilization(machine.IU),
				r.Utilization(machine.MEM), r.Utilization(machine.BR))
			cells = append(cells, cell{b, m, r})
		}
	}
	get := func(b string, m Mode) *Run {
		for _, c := range cells {
			if c.bench == b && c.mode == m {
				return c.run
			}
		}
		return nil
	}
	// Shape checks from the paper's Table 2.
	for _, b := range []string{"matrix", "fft", "model", "lud"} {
		seq, sts, coupled := get(b, SEQ), get(b, STS), get(b, COUPLED)
		if seq == nil || sts == nil || coupled == nil {
			continue
		}
		if !(seq.Cycles > sts.Cycles) {
			t.Errorf("%s: SEQ (%d) should be slower than STS (%d)", b, seq.Cycles, sts.Cycles)
		}
		if !(sts.Cycles > coupled.Cycles) {
			t.Errorf("%s: STS (%d) should be slower than Coupled (%d)", b, sts.Cycles, coupled.Cycles)
		}
		if ideal := get(b, IDEAL); ideal != nil && !(coupled.Cycles > ideal.Cycles) {
			t.Errorf("%s: Coupled (%d) should be slower than Ideal (%d)", b, coupled.Cycles, ideal.Cycles)
		}
	}
	// FFT's sequential section should make TPE worse than Coupled.
	if fftT, fftC := get("fft", TPE), get("fft", COUPLED); fftT != nil && fftC != nil {
		if !(fftT.Cycles > fftC.Cycles) {
			t.Errorf("fft: TPE (%d) should be slower than Coupled (%d)", fftT.Cycles, fftC.Cycles)
		}
	}
}

// TestModelQ runs the Table 3 workload in both variants.
func TestModelQ(t *testing.T) {
	cfg := machine.Baseline()
	for _, m := range []Mode{STS, COUPLED} {
		r, err := Execute("modelq", m, cfg)
		if err != nil {
			t.Fatalf("modelq/%s: %v", m, err)
		}
		t.Logf("modelq %-7s cycles=%d threads=%d", m, r.Cycles, len(r.Result.Threads))
		if m == COUPLED && len(r.Result.Threads) != 5 {
			t.Errorf("modelq coupled: want 5 threads, got %d", len(r.Result.Threads))
		}
	}
}
