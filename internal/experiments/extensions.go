package experiments

import (
	"context"
	"fmt"
	"io"

	"pcoup/internal/compiler"
	"pcoup/internal/machine"
	"pcoup/internal/sim"
)

// UnrollRow is one point of the automatic-unrolling extension: cycle
// counts with and without compiler loop unrolling for one benchmark and
// mode. The paper's compiler required hand unrolling and argues that
// "using more sophisticated scheduling techniques should benefit
// processor coupling at least as much [as] other machine organizations"
// — this experiment tests that claim.
type UnrollRow struct {
	Bench    string
	Mode     Mode
	Baseline int64 // hand-written loops only
	Unrolled int64 // automatic unrolling of constant-trip loops
	Gain     float64
}

// executeWith runs one cell with explicit compiler options.
func executeWith(ctx context.Context, benchName string, mode Mode, cfg *machine.Config, opts compiler.Options) (int64, error) {
	b, prog, _, err := compileCached(benchName, sourceKind(mode), 0, cfg, opts)
	if err != nil {
		return 0, err
	}
	s, err := sim.New(cfg, prog, sim.WithContext(ctx))
	if err != nil {
		return 0, err
	}
	res, err := s.Run(0)
	if err != nil {
		return 0, err
	}
	if err := b.Verify(peeker(s, prog)); err != nil {
		return 0, fmt.Errorf("%s/%s: wrong result: %w", benchName, mode, err)
	}
	s.Release()
	return res.Cycles, nil
}

// Unrolling measures the effect of automatic loop unrolling (up to 32
// expanded iterations per loop) on STS and Coupled execution.
func Unrolling(cfg *machine.Config) ([]UnrollRow, error) {
	return UnrollingCtx(context.Background(), cfg)
}

// UnrollingCtx is Unrolling under a cancellation context.
func UnrollingCtx(ctx context.Context, cfg *machine.Config) ([]UnrollRow, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	type ucell struct {
		bench  string
		mode   Mode
		unroll int
	}
	var cells []ucell
	for _, b := range []string{"matrix", "fft", "model"} {
		for _, m := range []Mode{STS, COUPLED} {
			cells = append(cells, ucell{b, m, 0}, ucell{b, m, 32})
		}
	}
	cycles := make([]int64, len(cells))
	err := runParallelCtx(ctx, len(cells), func(i int) error {
		c := cells[i]
		opts := compiler.Options{Mode: compilerMode(c.mode), AutoUnroll: c.unroll}
		n, err := executeWith(ctx, c.bench, c.mode, cfg, opts)
		cycles[i] = n
		return err
	})
	if err != nil {
		return nil, err
	}
	var rows []UnrollRow
	for i := 0; i < len(cells); i += 2 {
		rows = append(rows, UnrollRow{
			Bench: cells[i].bench, Mode: cells[i].mode,
			Baseline: cycles[i], Unrolled: cycles[i+1],
			Gain: float64(cycles[i]) / float64(cycles[i+1]),
		})
	}
	return rows, nil
}

// WriteUnrolling prints the unrolling extension results.
func WriteUnrolling(w io.Writer, rows []UnrollRow) {
	fmt.Fprintf(w, "Automatic loop unrolling (extension; paper compiled rolled loops only)\n")
	fmt.Fprintf(w, "%-10s %-8s %10s %10s %7s\n", "Benchmark", "Mode", "rolled", "unrolled", "gain")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %10d %10d %7.2f\n", r.Bench, r.Mode, r.Baseline, r.Unrolled, r.Gain)
	}
}

// ThreadCapRow is one point of the active-thread-limit sweep: coupled
// cycle count with the hardware's thread set bounded.
type ThreadCapRow struct {
	Bench  string
	Cap    int
	Cycles int64
}

// ThreadCap sweeps the active-thread limit for coupled execution under
// the long-latency Mem1 memory model — how many resident threads does
// latency hiding actually need?
func ThreadCap(cfg *machine.Config) ([]ThreadCapRow, error) {
	return ThreadCapCtx(context.Background(), cfg)
}

// ThreadCapCtx is ThreadCap under a cancellation context.
func ThreadCapCtx(ctx context.Context, cfg *machine.Config) ([]ThreadCapRow, error) {
	if cfg == nil {
		cfg = machine.Baseline().WithMemory(machine.Mem1).WithSeed(17)
	}
	caps := []int{2, 4, 8, 16, 64}
	type tcell struct {
		bench string
		cap   int
	}
	var cells []tcell
	for _, b := range []string{"matrix", "fft", "model"} {
		for _, c := range caps {
			cells = append(cells, tcell{b, c})
		}
	}
	rows := make([]ThreadCapRow, len(cells))
	err := runParallelCtx(ctx, len(cells), func(i int) error {
		c := cells[i]
		cc := cfg.Clone()
		cc.MaxThreads = c.cap
		r, err := ExecuteCtx(ctx, c.bench, COUPLED, cc)
		if err != nil {
			return fmt.Errorf("threadcap %s/%d: %w", c.bench, c.cap, err)
		}
		rows[i] = ThreadCapRow{Bench: c.bench, Cap: c.cap, Cycles: r.Cycles}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// WriteThreadCap prints the thread-limit sweep.
func WriteThreadCap(w io.Writer, rows []ThreadCapRow) {
	fmt.Fprintf(w, "Active-thread limit sweep (extension; coupled mode, Mem1 latencies)\n")
	fmt.Fprintf(w, "%-10s %6s %10s\n", "Benchmark", "Cap", "Cycles")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %10d\n", r.Bench, r.Cap, r.Cycles)
	}
}
