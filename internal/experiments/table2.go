package experiments

import (
	"context"
	"fmt"
	"io"

	"pcoup/internal/machine"
)

// Table2Row is one row of Table 2: baseline cycle counts and FPU/IU
// utilization for a benchmark under one machine mode.
type Table2Row struct {
	Bench    string
	Mode     Mode
	Cycles   int64
	VsCouple float64 // cycle count relative to Coupled mode
	FPU      float64 // average FP operations per cycle
	IU       float64 // average integer operations per cycle
	MEM      float64
	BR       float64
}

// Table2 reproduces Table 2 (and the data behind Figure 4): cycle counts
// for each benchmark under SEQ, STS, TPE, Coupled, and Ideal on the
// baseline machine.
func Table2(cfg *machine.Config) ([]Table2Row, error) {
	return Table2Ctx(context.Background(), cfg)
}

// Table2Ctx is Table2 under a cancellation context.
func Table2Ctx(ctx context.Context, cfg *machine.Config) ([]Table2Row, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	cells := benchModeCells([]Mode{SEQ, STS, TPE, COUPLED, IDEAL})
	runs := make([]*Run, len(cells))
	err := runParallelCtx(ctx, len(cells), func(i int) error {
		r, err := ExecuteCtx(ctx, cells[i].bench, cells[i].mode, cfg)
		runs[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	coupled := map[string]int64{}
	for i, c := range cells {
		if c.mode == COUPLED {
			coupled[c.bench] = runs[i].Cycles
		}
	}
	rows := make([]Table2Row, len(cells))
	for i, c := range cells {
		r := runs[i]
		rows[i] = Table2Row{
			Bench: c.bench, Mode: c.mode, Cycles: r.Cycles,
			VsCouple: float64(r.Cycles) / float64(coupled[c.bench]),
			FPU:      r.Utilization(machine.FPU), IU: r.Utilization(machine.IU),
			MEM: r.Utilization(machine.MEM), BR: r.Utilization(machine.BR),
		}
	}
	return rows, nil
}

// WriteTable2 prints the rows in the paper's layout.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: cycle count comparison of machine organizations (baseline machine)\n")
	fmt.Fprintf(w, "%-10s %-8s %9s %11s %7s %7s\n", "Benchmark", "Mode", "#Cycles", "vs Coupled", "FPU", "IU")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %9d %11.2f %7.2f %7.2f\n",
			r.Bench, r.Mode, r.Cycles, r.VsCouple, r.FPU, r.IU)
	}
}

// WriteFigure4 renders the same data as a textual bar chart (the paper's
// Figure 4 is a bar chart of Table 2's cycle counts).
func WriteFigure4(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Figure 4: baseline cycle counts by mode (bars normalized per benchmark)\n")
	maxByBench := map[string]int64{}
	for _, r := range rows {
		if r.Cycles > maxByBench[r.Bench] {
			maxByBench[r.Bench] = r.Cycles
		}
	}
	cur := ""
	for _, r := range rows {
		if r.Bench != cur {
			cur = r.Bench
			fmt.Fprintf(w, "%s:\n", cur)
		}
		width := int(float64(r.Cycles) / float64(maxByBench[r.Bench]) * 50)
		if width < 1 {
			width = 1
		}
		fmt.Fprintf(w, "  %-8s %9d |%s\n", r.Mode, r.Cycles, bar(width))
	}
}

func bar(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
