package experiments

import (
	"context"
	"fmt"
	"io"

	"pcoup/internal/machine"
)

// Figure7Row is one point of Figure 7: cycle count of a benchmark in one
// machine mode under one memory latency model.
type Figure7Row struct {
	Bench  string
	Mode   Mode
	Memory string
	Cycles int64
	VsMin  float64 // cycles relative to the Min model for the same mode
}

// figure7Seeds are the statistical-memory seeds averaged per cell (the
// miss pattern is random; a few seeds stabilize the estimate while
// remaining exactly reproducible).
var figure7Seeds = []uint64{11, 23, 47}

// Figure7 reproduces the variable-memory-latency experiment: STS, Ideal,
// TPE, and Coupled modes under the Min, Mem1 (5% miss, 20-100 cycle
// penalty), and Mem2 (10% miss) memory models. Multithreaded modes hide
// the long latencies; statically scheduled modes stall.
func Figure7(cfg *machine.Config) ([]Figure7Row, error) {
	return Figure7Ctx(context.Background(), cfg)
}

// Figure7Ctx is Figure7 under a cancellation context.
func Figure7Ctx(ctx context.Context, cfg *machine.Config) ([]Figure7Row, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	type f7cell struct {
		bench string
		mode  Mode
		mem   machine.MemoryModel
	}
	var cells []f7cell
	for _, b := range []string{"matrix", "fft", "model", "lud"} {
		for _, m := range []Mode{STS, IDEAL, TPE, COUPLED} {
			if !ModeSupported(b, m) {
				continue
			}
			for _, mem := range machine.MemoryModels() {
				cells = append(cells, f7cell{b, m, mem})
			}
		}
	}
	rows := make([]Figure7Row, len(cells))
	err := runParallelCtx(ctx, len(cells), func(i int) error {
		c := cells[i]
		cycles, err := averageCycles(ctx, c.bench, c.mode, cfg.WithMemory(c.mem))
		if err != nil {
			return err
		}
		rows[i] = Figure7Row{Bench: c.bench, Mode: c.mode, Memory: c.mem.Name, Cycles: cycles}
		return nil
	})
	if err != nil {
		return nil, err
	}
	min := map[string]int64{}
	for _, r := range rows {
		if r.Memory == "Min" {
			min[r.Bench+string(r.Mode)] = r.Cycles
		}
	}
	for i := range rows {
		rows[i].VsMin = float64(rows[i].Cycles) / float64(min[rows[i].Bench+string(rows[i].Mode)])
	}
	return rows, nil
}

// averageCycles runs one cell under each seed and averages the cycle
// counts (results are verified on every run).
func averageCycles(ctx context.Context, b string, m Mode, cfg *machine.Config) (int64, error) {
	if cfg.Memory.MissRate == 0 {
		r, err := ExecuteCtx(ctx, b, m, cfg)
		if err != nil {
			return 0, err
		}
		return r.Cycles, nil
	}
	var sum int64
	for _, seed := range figure7Seeds {
		r, err := ExecuteCtx(ctx, b, m, cfg.WithSeed(seed))
		if err != nil {
			return 0, err
		}
		sum += r.Cycles
	}
	return sum / int64(len(figure7Seeds)), nil
}

// WriteFigure7 prints the memory-latency chart data.
func WriteFigure7(w io.Writer, rows []Figure7Row) {
	fmt.Fprintf(w, "Figure 7: cycle counts under variable memory latency\n")
	fmt.Fprintf(w, "%-10s %-8s %-6s %9s %7s\n", "Benchmark", "Mode", "Memory", "#Cycles", "vs Min")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %-6s %9d %7.2f\n", r.Bench, r.Mode, r.Memory, r.Cycles, r.VsMin)
	}
}
