package experiments

import (
	"context"
	"fmt"
	"io"

	"pcoup/internal/machine"
)

// Figure5Row is one bar group of Figure 5: function-unit utilization (in
// average operations per cycle per unit class) for one benchmark and
// mode.
type Figure5Row struct {
	Bench string
	Mode  Mode
	Util  [machine.NumUnitKinds]float64
}

// Figure5 reproduces Figure 5: FPU, IU, MEM, and BR utilization for every
// benchmark and machine mode on the baseline machine.
func Figure5(cfg *machine.Config) ([]Figure5Row, error) {
	return Figure5Ctx(context.Background(), cfg)
}

// Figure5Ctx is Figure5 under a cancellation context.
func Figure5Ctx(ctx context.Context, cfg *machine.Config) ([]Figure5Row, error) {
	if cfg == nil {
		cfg = machine.Baseline()
	}
	cells := benchModeCells([]Mode{SEQ, STS, TPE, COUPLED, IDEAL})
	rows := make([]Figure5Row, len(cells))
	err := runParallelCtx(ctx, len(cells), func(i int) error {
		r, err := ExecuteCtx(ctx, cells[i].bench, cells[i].mode, cfg)
		if err != nil {
			return err
		}
		row := Figure5Row{Bench: cells[i].bench, Mode: cells[i].mode}
		for k := 0; k < machine.NumUnitKinds; k++ {
			row.Util[k] = r.Utilization(machine.UnitKind(k))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// WriteFigure5 prints the utilization chart data.
func WriteFigure5(w io.Writer, rows []Figure5Row) {
	fmt.Fprintf(w, "Figure 5: function unit utilization (average operations per cycle)\n")
	fmt.Fprintf(w, "%-10s %-8s %7s %7s %7s %7s\n", "Benchmark", "Mode", "FPU", "IU", "MEM", "BR")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %7.2f %7.2f %7.2f %7.2f\n",
			r.Bench, r.Mode,
			r.Util[machine.FPU], r.Util[machine.IU], r.Util[machine.MEM], r.Util[machine.BR])
	}
}
